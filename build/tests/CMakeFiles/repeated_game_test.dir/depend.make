# Empty dependencies file for repeated_game_test.
# This may be replaced when dependencies are built.
