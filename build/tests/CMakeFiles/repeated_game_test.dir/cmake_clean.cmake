file(REMOVE_RECURSE
  "CMakeFiles/repeated_game_test.dir/repeated_game_test.cpp.o"
  "CMakeFiles/repeated_game_test.dir/repeated_game_test.cpp.o.d"
  "repeated_game_test"
  "repeated_game_test.pdb"
  "repeated_game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeated_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
