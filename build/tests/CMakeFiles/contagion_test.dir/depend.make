# Empty dependencies file for contagion_test.
# This may be replaced when dependencies are built.
