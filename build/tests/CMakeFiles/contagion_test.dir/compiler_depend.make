# Empty compiler generated dependencies file for contagion_test.
# This may be replaced when dependencies are built.
