file(REMOVE_RECURSE
  "CMakeFiles/contagion_test.dir/contagion_test.cpp.o"
  "CMakeFiles/contagion_test.dir/contagion_test.cpp.o.d"
  "contagion_test"
  "contagion_test.pdb"
  "contagion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contagion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
