file(REMOVE_RECURSE
  "CMakeFiles/stackelberg_test.dir/stackelberg_test.cpp.o"
  "CMakeFiles/stackelberg_test.dir/stackelberg_test.cpp.o.d"
  "stackelberg_test"
  "stackelberg_test.pdb"
  "stackelberg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackelberg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
