# Empty compiler generated dependencies file for stackelberg_test.
# This may be replaced when dependencies are built.
