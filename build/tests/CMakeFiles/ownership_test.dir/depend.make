# Empty dependencies file for ownership_test.
# This may be replaced when dependencies are built.
