# Empty dependencies file for western_us_attack_sweep_test.
# This may be replaced when dependencies are built.
