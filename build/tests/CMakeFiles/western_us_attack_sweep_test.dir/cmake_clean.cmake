file(REMOVE_RECURSE
  "CMakeFiles/western_us_attack_sweep_test.dir/western_us_attack_sweep_test.cpp.o"
  "CMakeFiles/western_us_attack_sweep_test.dir/western_us_attack_sweep_test.cpp.o.d"
  "western_us_attack_sweep_test"
  "western_us_attack_sweep_test.pdb"
  "western_us_attack_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/western_us_attack_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
