file(REMOVE_RECURSE
  "CMakeFiles/marginal_cost_test.dir/marginal_cost_test.cpp.o"
  "CMakeFiles/marginal_cost_test.dir/marginal_cost_test.cpp.o.d"
  "marginal_cost_test"
  "marginal_cost_test.pdb"
  "marginal_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marginal_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
