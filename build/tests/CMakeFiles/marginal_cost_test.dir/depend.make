# Empty dependencies file for marginal_cost_test.
# This may be replaced when dependencies are built.
