file(REMOVE_RECURSE
  "CMakeFiles/defender_test.dir/defender_test.cpp.o"
  "CMakeFiles/defender_test.dir/defender_test.cpp.o.d"
  "defender_test"
  "defender_test.pdb"
  "defender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
