# Empty dependencies file for defender_test.
# This may be replaced when dependencies are built.
