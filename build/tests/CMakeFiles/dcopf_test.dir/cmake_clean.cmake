file(REMOVE_RECURSE
  "CMakeFiles/dcopf_test.dir/dcopf_test.cpp.o"
  "CMakeFiles/dcopf_test.dir/dcopf_test.cpp.o.d"
  "dcopf_test"
  "dcopf_test.pdb"
  "dcopf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcopf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
