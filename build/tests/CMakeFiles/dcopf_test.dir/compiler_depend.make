# Empty compiler generated dependencies file for dcopf_test.
# This may be replaced when dependencies are built.
