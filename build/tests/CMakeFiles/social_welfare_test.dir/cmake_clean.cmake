file(REMOVE_RECURSE
  "CMakeFiles/social_welfare_test.dir/social_welfare_test.cpp.o"
  "CMakeFiles/social_welfare_test.dir/social_welfare_test.cpp.o.d"
  "social_welfare_test"
  "social_welfare_test.pdb"
  "social_welfare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_welfare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
