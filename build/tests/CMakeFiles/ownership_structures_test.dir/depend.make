# Empty dependencies file for ownership_structures_test.
# This may be replaced when dependencies are built.
