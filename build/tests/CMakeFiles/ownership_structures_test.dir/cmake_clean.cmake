file(REMOVE_RECURSE
  "CMakeFiles/ownership_structures_test.dir/ownership_structures_test.cpp.o"
  "CMakeFiles/ownership_structures_test.dir/ownership_structures_test.cpp.o.d"
  "ownership_structures_test"
  "ownership_structures_test.pdb"
  "ownership_structures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ownership_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
