file(REMOVE_RECURSE
  "CMakeFiles/gulf_coast_test.dir/gulf_coast_test.cpp.o"
  "CMakeFiles/gulf_coast_test.dir/gulf_coast_test.cpp.o.d"
  "gulf_coast_test"
  "gulf_coast_test.pdb"
  "gulf_coast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gulf_coast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
