# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gulf_coast_test.
