# Empty dependencies file for gulf_coast_test.
# This may be replaced when dependencies are built.
