# Empty compiler generated dependencies file for western_us_test.
# This may be replaced when dependencies are built.
