# Empty compiler generated dependencies file for deception_test.
# This may be replaced when dependencies are built.
