file(REMOVE_RECURSE
  "CMakeFiles/deception_test.dir/deception_test.cpp.o"
  "CMakeFiles/deception_test.dir/deception_test.cpp.o.d"
  "deception_test"
  "deception_test.pdb"
  "deception_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deception_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
