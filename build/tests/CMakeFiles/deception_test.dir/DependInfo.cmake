
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deception_test.cpp" "tests/CMakeFiles/deception_test.dir/deception_test.cpp.o" "gcc" "tests/CMakeFiles/deception_test.dir/deception_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gridsec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gridsec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/gridsec_cps.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gridsec_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/gridsec_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
