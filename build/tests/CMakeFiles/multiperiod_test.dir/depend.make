# Empty dependencies file for multiperiod_test.
# This may be replaced when dependencies are built.
