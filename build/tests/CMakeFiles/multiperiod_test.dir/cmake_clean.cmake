file(REMOVE_RECURSE
  "CMakeFiles/multiperiod_test.dir/multiperiod_test.cpp.o"
  "CMakeFiles/multiperiod_test.dir/multiperiod_test.cpp.o.d"
  "multiperiod_test"
  "multiperiod_test.pdb"
  "multiperiod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiperiod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
