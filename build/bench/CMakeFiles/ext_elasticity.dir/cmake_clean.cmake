file(REMOVE_RECURSE
  "CMakeFiles/ext_elasticity.dir/ext_elasticity.cpp.o"
  "CMakeFiles/ext_elasticity.dir/ext_elasticity.cpp.o.d"
  "ext_elasticity"
  "ext_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
