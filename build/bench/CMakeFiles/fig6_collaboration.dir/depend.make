# Empty dependencies file for fig6_collaboration.
# This may be replaced when dependencies are built.
