file(REMOVE_RECURSE
  "CMakeFiles/fig6_collaboration.dir/fig6_collaboration.cpp.o"
  "CMakeFiles/fig6_collaboration.dir/fig6_collaboration.cpp.o.d"
  "fig6_collaboration"
  "fig6_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
