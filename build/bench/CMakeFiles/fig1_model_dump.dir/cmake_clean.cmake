file(REMOVE_RECURSE
  "CMakeFiles/fig1_model_dump.dir/fig1_model_dump.cpp.o"
  "CMakeFiles/fig1_model_dump.dir/fig1_model_dump.cpp.o.d"
  "fig1_model_dump"
  "fig1_model_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_model_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
