# Empty compiler generated dependencies file for fig1_model_dump.
# This may be replaced when dependencies are built.
