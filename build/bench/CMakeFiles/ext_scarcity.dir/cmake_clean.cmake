file(REMOVE_RECURSE
  "CMakeFiles/ext_scarcity.dir/ext_scarcity.cpp.o"
  "CMakeFiles/ext_scarcity.dir/ext_scarcity.cpp.o.d"
  "ext_scarcity"
  "ext_scarcity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scarcity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
