# Empty compiler generated dependencies file for ext_scarcity.
# This may be replaced when dependencies are built.
