file(REMOVE_RECURSE
  "CMakeFiles/ext_ownership.dir/ext_ownership.cpp.o"
  "CMakeFiles/ext_ownership.dir/ext_ownership.cpp.o.d"
  "ext_ownership"
  "ext_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
