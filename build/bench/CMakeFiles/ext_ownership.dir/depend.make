# Empty dependencies file for ext_ownership.
# This may be replaced when dependencies are built.
