file(REMOVE_RECURSE
  "CMakeFiles/fig3_adversary_noise.dir/fig3_adversary_noise.cpp.o"
  "CMakeFiles/fig3_adversary_noise.dir/fig3_adversary_noise.cpp.o.d"
  "fig3_adversary_noise"
  "fig3_adversary_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_adversary_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
