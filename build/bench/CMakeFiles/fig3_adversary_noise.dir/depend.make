# Empty dependencies file for fig3_adversary_noise.
# This may be replaced when dependencies are built.
