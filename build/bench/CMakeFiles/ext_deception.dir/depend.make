# Empty dependencies file for ext_deception.
# This may be replaced when dependencies are built.
