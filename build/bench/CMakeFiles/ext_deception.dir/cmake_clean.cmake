file(REMOVE_RECURSE
  "CMakeFiles/ext_deception.dir/ext_deception.cpp.o"
  "CMakeFiles/ext_deception.dir/ext_deception.cpp.o.d"
  "ext_deception"
  "ext_deception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
