file(REMOVE_RECURSE
  "CMakeFiles/ext_learning.dir/ext_learning.cpp.o"
  "CMakeFiles/ext_learning.dir/ext_learning.cpp.o.d"
  "ext_learning"
  "ext_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
