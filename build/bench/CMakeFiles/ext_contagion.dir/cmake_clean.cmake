file(REMOVE_RECURSE
  "CMakeFiles/ext_contagion.dir/ext_contagion.cpp.o"
  "CMakeFiles/ext_contagion.dir/ext_contagion.cpp.o.d"
  "ext_contagion"
  "ext_contagion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_contagion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
