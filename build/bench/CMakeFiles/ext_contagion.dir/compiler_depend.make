# Empty compiler generated dependencies file for ext_contagion.
# This may be replaced when dependencies are built.
