# Empty compiler generated dependencies file for fig7_collaboration_actors.
# This may be replaced when dependencies are built.
