file(REMOVE_RECURSE
  "CMakeFiles/fig7_collaboration_actors.dir/fig7_collaboration_actors.cpp.o"
  "CMakeFiles/fig7_collaboration_actors.dir/fig7_collaboration_actors.cpp.o.d"
  "fig7_collaboration_actors"
  "fig7_collaboration_actors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_collaboration_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
