# Empty compiler generated dependencies file for fig5_defense_effectiveness.
# This may be replaced when dependencies are built.
