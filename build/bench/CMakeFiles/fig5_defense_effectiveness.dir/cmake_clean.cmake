file(REMOVE_RECURSE
  "CMakeFiles/fig5_defense_effectiveness.dir/fig5_defense_effectiveness.cpp.o"
  "CMakeFiles/fig5_defense_effectiveness.dir/fig5_defense_effectiveness.cpp.o.d"
  "fig5_defense_effectiveness"
  "fig5_defense_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_defense_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
