# Empty compiler generated dependencies file for ext_layers.
# This may be replaced when dependencies are built.
