file(REMOVE_RECURSE
  "CMakeFiles/ext_layers.dir/ext_layers.cpp.o"
  "CMakeFiles/ext_layers.dir/ext_layers.cpp.o.d"
  "ext_layers"
  "ext_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
