file(REMOVE_RECURSE
  "CMakeFiles/fig4_anticipated_vs_observed.dir/fig4_anticipated_vs_observed.cpp.o"
  "CMakeFiles/fig4_anticipated_vs_observed.dir/fig4_anticipated_vs_observed.cpp.o.d"
  "fig4_anticipated_vs_observed"
  "fig4_anticipated_vs_observed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_anticipated_vs_observed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
