# Empty dependencies file for fig4_anticipated_vs_observed.
# This may be replaced when dependencies are built.
