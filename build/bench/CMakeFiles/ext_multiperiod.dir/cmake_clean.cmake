file(REMOVE_RECURSE
  "CMakeFiles/ext_multiperiod.dir/ext_multiperiod.cpp.o"
  "CMakeFiles/ext_multiperiod.dir/ext_multiperiod.cpp.o.d"
  "ext_multiperiod"
  "ext_multiperiod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiperiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
