# Empty dependencies file for ext_multiperiod.
# This may be replaced when dependencies are built.
