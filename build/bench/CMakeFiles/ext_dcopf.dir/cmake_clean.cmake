file(REMOVE_RECURSE
  "CMakeFiles/ext_dcopf.dir/ext_dcopf.cpp.o"
  "CMakeFiles/ext_dcopf.dir/ext_dcopf.cpp.o.d"
  "ext_dcopf"
  "ext_dcopf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dcopf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
