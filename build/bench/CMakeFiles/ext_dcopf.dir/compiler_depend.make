# Empty compiler generated dependencies file for ext_dcopf.
# This may be replaced when dependencies are built.
