# Empty compiler generated dependencies file for ext_stackelberg.
# This may be replaced when dependencies are built.
