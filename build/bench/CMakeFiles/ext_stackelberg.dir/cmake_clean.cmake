file(REMOVE_RECURSE
  "CMakeFiles/ext_stackelberg.dir/ext_stackelberg.cpp.o"
  "CMakeFiles/ext_stackelberg.dir/ext_stackelberg.cpp.o.d"
  "ext_stackelberg"
  "ext_stackelberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_stackelberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
