file(REMOVE_RECURSE
  "CMakeFiles/fig2_interdependent.dir/fig2_interdependent.cpp.o"
  "CMakeFiles/fig2_interdependent.dir/fig2_interdependent.cpp.o.d"
  "fig2_interdependent"
  "fig2_interdependent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_interdependent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
