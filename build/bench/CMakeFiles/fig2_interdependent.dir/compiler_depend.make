# Empty compiler generated dependencies file for fig2_interdependent.
# This may be replaced when dependencies are built.
