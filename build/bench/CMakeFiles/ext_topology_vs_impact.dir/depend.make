# Empty dependencies file for ext_topology_vs_impact.
# This may be replaced when dependencies are built.
