file(REMOVE_RECURSE
  "CMakeFiles/ext_topology_vs_impact.dir/ext_topology_vs_impact.cpp.o"
  "CMakeFiles/ext_topology_vs_impact.dir/ext_topology_vs_impact.cpp.o.d"
  "ext_topology_vs_impact"
  "ext_topology_vs_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_topology_vs_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
