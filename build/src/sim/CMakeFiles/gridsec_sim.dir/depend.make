# Empty dependencies file for gridsec_sim.
# This may be replaced when dependencies are built.
