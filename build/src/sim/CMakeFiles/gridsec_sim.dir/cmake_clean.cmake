file(REMOVE_RECURSE
  "CMakeFiles/gridsec_sim.dir/experiments.cpp.o"
  "CMakeFiles/gridsec_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/gridsec_sim.dir/gulf_coast.cpp.o"
  "CMakeFiles/gridsec_sim.dir/gulf_coast.cpp.o.d"
  "CMakeFiles/gridsec_sim.dir/montecarlo.cpp.o"
  "CMakeFiles/gridsec_sim.dir/montecarlo.cpp.o.d"
  "CMakeFiles/gridsec_sim.dir/ownership_structures.cpp.o"
  "CMakeFiles/gridsec_sim.dir/ownership_structures.cpp.o.d"
  "CMakeFiles/gridsec_sim.dir/scenario.cpp.o"
  "CMakeFiles/gridsec_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/gridsec_sim.dir/western_us.cpp.o"
  "CMakeFiles/gridsec_sim.dir/western_us.cpp.o.d"
  "libgridsec_sim.a"
  "libgridsec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
