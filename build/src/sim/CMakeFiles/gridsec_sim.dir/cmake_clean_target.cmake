file(REMOVE_RECURSE
  "libgridsec_sim.a"
)
