# Empty dependencies file for gridsec_flow.
# This may be replaced when dependencies are built.
