file(REMOVE_RECURSE
  "libgridsec_flow.a"
)
