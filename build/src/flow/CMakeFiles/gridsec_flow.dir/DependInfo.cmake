
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/allocation.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/allocation.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/allocation.cpp.o.d"
  "/root/repo/src/flow/analysis.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/analysis.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/analysis.cpp.o.d"
  "/root/repo/src/flow/dcopf.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/dcopf.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/dcopf.cpp.o.d"
  "/root/repo/src/flow/elastic.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/elastic.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/elastic.cpp.o.d"
  "/root/repo/src/flow/io.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/io.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/io.cpp.o.d"
  "/root/repo/src/flow/marginal_cost.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/marginal_cost.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/marginal_cost.cpp.o.d"
  "/root/repo/src/flow/multiperiod.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/multiperiod.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/multiperiod.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/network.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/network.cpp.o.d"
  "/root/repo/src/flow/series.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/series.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/series.cpp.o.d"
  "/root/repo/src/flow/social_welfare.cpp" "src/flow/CMakeFiles/gridsec_flow.dir/social_welfare.cpp.o" "gcc" "src/flow/CMakeFiles/gridsec_flow.dir/social_welfare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/gridsec_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
