file(REMOVE_RECURSE
  "CMakeFiles/gridsec_flow.dir/allocation.cpp.o"
  "CMakeFiles/gridsec_flow.dir/allocation.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/analysis.cpp.o"
  "CMakeFiles/gridsec_flow.dir/analysis.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/dcopf.cpp.o"
  "CMakeFiles/gridsec_flow.dir/dcopf.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/elastic.cpp.o"
  "CMakeFiles/gridsec_flow.dir/elastic.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/io.cpp.o"
  "CMakeFiles/gridsec_flow.dir/io.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/marginal_cost.cpp.o"
  "CMakeFiles/gridsec_flow.dir/marginal_cost.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/multiperiod.cpp.o"
  "CMakeFiles/gridsec_flow.dir/multiperiod.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/network.cpp.o"
  "CMakeFiles/gridsec_flow.dir/network.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/series.cpp.o"
  "CMakeFiles/gridsec_flow.dir/series.cpp.o.d"
  "CMakeFiles/gridsec_flow.dir/social_welfare.cpp.o"
  "CMakeFiles/gridsec_flow.dir/social_welfare.cpp.o.d"
  "libgridsec_flow.a"
  "libgridsec_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
