file(REMOVE_RECURSE
  "CMakeFiles/gridsec_core.dir/adversary.cpp.o"
  "CMakeFiles/gridsec_core.dir/adversary.cpp.o.d"
  "CMakeFiles/gridsec_core.dir/deception.cpp.o"
  "CMakeFiles/gridsec_core.dir/deception.cpp.o.d"
  "CMakeFiles/gridsec_core.dir/defender.cpp.o"
  "CMakeFiles/gridsec_core.dir/defender.cpp.o.d"
  "CMakeFiles/gridsec_core.dir/game.cpp.o"
  "CMakeFiles/gridsec_core.dir/game.cpp.o.d"
  "CMakeFiles/gridsec_core.dir/partition.cpp.o"
  "CMakeFiles/gridsec_core.dir/partition.cpp.o.d"
  "CMakeFiles/gridsec_core.dir/repeated_game.cpp.o"
  "CMakeFiles/gridsec_core.dir/repeated_game.cpp.o.d"
  "CMakeFiles/gridsec_core.dir/stackelberg.cpp.o"
  "CMakeFiles/gridsec_core.dir/stackelberg.cpp.o.d"
  "libgridsec_core.a"
  "libgridsec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
