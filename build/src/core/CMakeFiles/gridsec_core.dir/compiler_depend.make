# Empty compiler generated dependencies file for gridsec_core.
# This may be replaced when dependencies are built.
