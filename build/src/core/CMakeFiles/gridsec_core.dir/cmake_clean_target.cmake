file(REMOVE_RECURSE
  "libgridsec_core.a"
)
