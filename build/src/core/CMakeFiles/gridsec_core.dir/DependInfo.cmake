
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/core/CMakeFiles/gridsec_core.dir/adversary.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/adversary.cpp.o.d"
  "/root/repo/src/core/deception.cpp" "src/core/CMakeFiles/gridsec_core.dir/deception.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/deception.cpp.o.d"
  "/root/repo/src/core/defender.cpp" "src/core/CMakeFiles/gridsec_core.dir/defender.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/defender.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/core/CMakeFiles/gridsec_core.dir/game.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/game.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/gridsec_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/repeated_game.cpp" "src/core/CMakeFiles/gridsec_core.dir/repeated_game.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/repeated_game.cpp.o.d"
  "/root/repo/src/core/stackelberg.cpp" "src/core/CMakeFiles/gridsec_core.dir/stackelberg.cpp.o" "gcc" "src/core/CMakeFiles/gridsec_core.dir/stackelberg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cps/CMakeFiles/gridsec_cps.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gridsec_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/gridsec_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
