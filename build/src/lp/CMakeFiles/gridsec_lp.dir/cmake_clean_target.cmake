file(REMOVE_RECURSE
  "libgridsec_lp.a"
)
