# Empty compiler generated dependencies file for gridsec_lp.
# This may be replaced when dependencies are built.
