file(REMOVE_RECURSE
  "CMakeFiles/gridsec_lp.dir/lp_io.cpp.o"
  "CMakeFiles/gridsec_lp.dir/lp_io.cpp.o.d"
  "CMakeFiles/gridsec_lp.dir/milp.cpp.o"
  "CMakeFiles/gridsec_lp.dir/milp.cpp.o.d"
  "CMakeFiles/gridsec_lp.dir/presolve.cpp.o"
  "CMakeFiles/gridsec_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/gridsec_lp.dir/problem.cpp.o"
  "CMakeFiles/gridsec_lp.dir/problem.cpp.o.d"
  "CMakeFiles/gridsec_lp.dir/simplex.cpp.o"
  "CMakeFiles/gridsec_lp.dir/simplex.cpp.o.d"
  "libgridsec_lp.a"
  "libgridsec_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
