
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cps/contagion.cpp" "src/cps/CMakeFiles/gridsec_cps.dir/contagion.cpp.o" "gcc" "src/cps/CMakeFiles/gridsec_cps.dir/contagion.cpp.o.d"
  "/root/repo/src/cps/impact.cpp" "src/cps/CMakeFiles/gridsec_cps.dir/impact.cpp.o" "gcc" "src/cps/CMakeFiles/gridsec_cps.dir/impact.cpp.o.d"
  "/root/repo/src/cps/ownership.cpp" "src/cps/CMakeFiles/gridsec_cps.dir/ownership.cpp.o" "gcc" "src/cps/CMakeFiles/gridsec_cps.dir/ownership.cpp.o.d"
  "/root/repo/src/cps/perturbation.cpp" "src/cps/CMakeFiles/gridsec_cps.dir/perturbation.cpp.o" "gcc" "src/cps/CMakeFiles/gridsec_cps.dir/perturbation.cpp.o.d"
  "/root/repo/src/cps/security.cpp" "src/cps/CMakeFiles/gridsec_cps.dir/security.cpp.o" "gcc" "src/cps/CMakeFiles/gridsec_cps.dir/security.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/gridsec_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/gridsec_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
