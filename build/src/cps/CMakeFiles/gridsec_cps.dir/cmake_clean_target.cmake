file(REMOVE_RECURSE
  "libgridsec_cps.a"
)
