file(REMOVE_RECURSE
  "CMakeFiles/gridsec_cps.dir/contagion.cpp.o"
  "CMakeFiles/gridsec_cps.dir/contagion.cpp.o.d"
  "CMakeFiles/gridsec_cps.dir/impact.cpp.o"
  "CMakeFiles/gridsec_cps.dir/impact.cpp.o.d"
  "CMakeFiles/gridsec_cps.dir/ownership.cpp.o"
  "CMakeFiles/gridsec_cps.dir/ownership.cpp.o.d"
  "CMakeFiles/gridsec_cps.dir/perturbation.cpp.o"
  "CMakeFiles/gridsec_cps.dir/perturbation.cpp.o.d"
  "CMakeFiles/gridsec_cps.dir/security.cpp.o"
  "CMakeFiles/gridsec_cps.dir/security.cpp.o.d"
  "libgridsec_cps.a"
  "libgridsec_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
