# Empty compiler generated dependencies file for gridsec_cps.
# This may be replaced when dependencies are built.
