# Empty dependencies file for gridsec_util.
# This may be replaced when dependencies are built.
