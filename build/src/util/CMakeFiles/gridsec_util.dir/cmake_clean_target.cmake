file(REMOVE_RECURSE
  "libgridsec_util.a"
)
