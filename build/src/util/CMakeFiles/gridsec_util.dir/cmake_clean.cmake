file(REMOVE_RECURSE
  "CMakeFiles/gridsec_util.dir/error.cpp.o"
  "CMakeFiles/gridsec_util.dir/error.cpp.o.d"
  "CMakeFiles/gridsec_util.dir/matrix.cpp.o"
  "CMakeFiles/gridsec_util.dir/matrix.cpp.o.d"
  "CMakeFiles/gridsec_util.dir/rng.cpp.o"
  "CMakeFiles/gridsec_util.dir/rng.cpp.o.d"
  "CMakeFiles/gridsec_util.dir/stats.cpp.o"
  "CMakeFiles/gridsec_util.dir/stats.cpp.o.d"
  "CMakeFiles/gridsec_util.dir/table.cpp.o"
  "CMakeFiles/gridsec_util.dir/table.cpp.o.d"
  "CMakeFiles/gridsec_util.dir/thread_pool.cpp.o"
  "CMakeFiles/gridsec_util.dir/thread_pool.cpp.o.d"
  "libgridsec_util.a"
  "libgridsec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
