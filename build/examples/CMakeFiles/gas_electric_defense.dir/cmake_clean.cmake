file(REMOVE_RECURSE
  "CMakeFiles/gas_electric_defense.dir/gas_electric_defense.cpp.o"
  "CMakeFiles/gas_electric_defense.dir/gas_electric_defense.cpp.o.d"
  "gas_electric_defense"
  "gas_electric_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_electric_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
