# Empty compiler generated dependencies file for gas_electric_defense.
# This may be replaced when dependencies are built.
