file(REMOVE_RECURSE
  "CMakeFiles/series_market.dir/series_market.cpp.o"
  "CMakeFiles/series_market.dir/series_market.cpp.o.d"
  "series_market"
  "series_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/series_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
