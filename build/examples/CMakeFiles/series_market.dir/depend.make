# Empty dependencies file for series_market.
# This may be replaced when dependencies are built.
