# Empty dependencies file for market_sensitivity.
# This may be replaced when dependencies are built.
