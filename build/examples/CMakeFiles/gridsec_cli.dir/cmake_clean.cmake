file(REMOVE_RECURSE
  "CMakeFiles/gridsec_cli.dir/gridsec_cli.cpp.o"
  "CMakeFiles/gridsec_cli.dir/gridsec_cli.cpp.o.d"
  "gridsec_cli"
  "gridsec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridsec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
