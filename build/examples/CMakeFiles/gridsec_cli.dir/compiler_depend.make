# Empty compiler generated dependencies file for gridsec_cli.
# This may be replaced when dependencies are built.
