# Empty compiler generated dependencies file for adversary_probe.
# This may be replaced when dependencies are built.
