file(REMOVE_RECURSE
  "CMakeFiles/adversary_probe.dir/adversary_probe.cpp.o"
  "CMakeFiles/adversary_probe.dir/adversary_probe.cpp.o.d"
  "adversary_probe"
  "adversary_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
