#include "gridsec/robust/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "gridsec/lp/basis.hpp"
#include "gridsec/lp/presolve.hpp"
#include "gridsec/obs/audit.hpp"
#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/robust/faultinject.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::robust {
namespace {

std::mutex g_policy_mutex;
RecoveryPolicy g_policy;  // guarded by g_policy_mutex
std::atomic<bool> g_enabled{true};

// Re-entrancy guard: the ladder's inner solves go through the same
// SimplexSolver entry point that invokes the hook; without this a failing
// rung would recurse into another ladder.
thread_local int g_in_recovery = 0;
thread_local int g_disabled_depth = 0;

struct InRecoveryGuard {
  InRecoveryGuard() { ++g_in_recovery; }
  ~InRecoveryGuard() { --g_in_recovery; }
};

RecoveryPolicy current_policy() {
  std::lock_guard<std::mutex> lock(g_policy_mutex);
  return g_policy;
}

lp::Solution plain_solve(const lp::Problem& problem,
                         const lp::SimplexOptions& options) {
  // solve_lp skips the options/basis copy a SimplexSolver construction
  // adds; each rung reuses the calling thread's solver workspace (the
  // rungs run sequentially, after the failing solve's lease is released).
  return lp::solve_lp(problem, options);
}

/// Certification tiers. kStrict (1e-9 tolerances) is the acceptance bar
/// a rung must clear to stop the escalation: on ill-conditioned data,
/// wrong answers routinely pass the default 1e-6 tolerances (a dual-sign
/// or equality violation at ~1e-7 relative looks "verified") while the
/// tight certificate still discriminates. kLoose (the defaults) is the
/// fallback bar: when no rung certifies strictly, a loosely certified
/// answer is still far better than a kNumericalError verdict.
enum class CertTier { kLoose, kStrict };

bool certified_optimum(const lp::Problem& problem,
                       const lp::Equilibrated& eq,
                       const lp::Solution& candidate, CertTier tier);

/// Runs one rung. Returns true when the rung was structurally applicable
/// (a solve actually happened); `*out` then holds the rung's answer for
/// the ORIGINAL problem. `eq` is the problem's equilibration, computed
/// once per ladder engagement.
bool attempt_rung(RecoveryRung rung, const lp::Problem& problem,
                  const lp::Equilibrated& eq,
                  const lp::SimplexOptions& base,
                  const RecoveryPolicy& policy, lp::Solution* out) {
  const bool have_warm =
      lp::warm_start_enabled() && !base.warm_start.empty();
  switch (rung) {
    case RecoveryRung::kWarm: {
      if (!have_warm) return false;
      *out = plain_solve(problem, base);
      return true;
    }
    case RecoveryRung::kRepairedBasis: {
      if (!have_warm) return false;
      lp::SimplexOptions o = base;
      // Keep the variable statuses (the economically meaningful part of a
      // stale basis) but hand every row back to its slack — the row block
      // is where drifted bases go rank-deficient; the crash repair then
      // rebuilds a consistent basis around the surviving variable info.
      for (auto& s : o.warm_start.rows) s = lp::VarStatus::kBasic;
      *out = plain_solve(problem, o);
      return true;
    }
    case RecoveryRung::kCold: {
      lp::SimplexOptions o = base;
      o.warm_start = {};
      *out = plain_solve(problem, o);
      return true;
    }
    case RecoveryRung::kBland: {
      lp::SimplexOptions o = base;
      o.warm_start = {};
      o.bland_after = -1;  // Bland's rule from the first pivot
      *out = plain_solve(problem, o);
      return true;
    }
    case RecoveryRung::kEquilibrated: {
      if (!eq.scaled_any()) return false;  // already well-scaled: no-op rung
      lp::SimplexOptions o = base;
      o.warm_start = {};
      *out = eq.unscale(plain_solve(eq.scaled(), o));
      if (certified_optimum(problem, eq, *out, CertTier::kStrict)) {
        return true;
      }
      // The rung of last refuge before cost perturbation: Bland's rule on
      // the equilibrated data — slow, cycling-proof, well-scaled. This is
      // the same path the stress fuzzer's oracle takes.
      o.bland_after = -1;
      *out = eq.unscale(plain_solve(eq.scaled(), o));
      return true;
    }
    case RecoveryRung::kPerturbed: {
      lp::Problem jittered = problem;
      // Deterministic seed from the problem shape: the rung reproduces
      // without threading an Rng through the solver plumbing.
      const auto n = static_cast<std::uint64_t>(problem.num_variables());
      const auto m = static_cast<std::uint64_t>(problem.num_constraints());
      Rng rng(0x5EC0C0DEULL ^ (n << 16 | m));
      jitter_costs(jittered, rng, policy.perturbation_scale);
      lp::SimplexOptions o = base;
      o.warm_start = {};
      const lp::Solution jsol = plain_solve(jittered, o);
      if (!jsol.optimal() || jsol.basis.empty()) {
        *out = jsol;
        out->x.clear();  // the jittered point must not leak as an answer
        return true;
      }
      // Remove the perturbation: warm-start the ORIGINAL problem from the
      // jittered optimal basis. The certified answer is always for the
      // original costs.
      o.warm_start = jsol.basis;
      *out = plain_solve(problem, o);
      return true;
    }
  }
  return false;
}

struct LadderOutcome {
  lp::Solution solution;
  bool recovered = false;
};

/// Scale-invariant certification: the answer must verify against the
/// original problem AND (when equilibration found anything to do) against
/// the equilibrated problem, where every row is O(1). The second check is
/// what keeps pathologically scaled rows honest — a row scaled to ~1e-12
/// can hide an arbitrarily wrong primal point below certify()'s relative
/// tolerances on the original data alone.
/// True when equilibration had to span more than ~2^20 of dynamic range —
/// the regime where simplex tolerances (feasibility 1e-7, pivot 1e-11)
/// start to blur hard verdicts: a row scaled to the noise floor can make
/// phase-1 report infeasibility that isn't there.
bool severely_scaled(const lp::Equilibrated& eq) {
  if (!eq.scaled_any()) return false;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const double f : eq.row_scale()) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  for (const double f : eq.col_scale()) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  return hi > lo * 0x1p20;
}

obs::CertifyOptions tier_options(CertTier tier) {
  obs::CertifyOptions cert{.relaxation = true};
  if (tier == CertTier::kStrict) {
    cert.feasibility_tol = 1e-9;
    cert.dual_tol = 1e-9;
    cert.duality_gap_tol = 1e-9;
  }
  return cert;
}

bool certified_optimum(const lp::Problem& problem,
                       const lp::Equilibrated& eq,
                       const lp::Solution& candidate, CertTier tier) {
  if (!candidate.optimal()) return false;
  const obs::CertifyOptions cert = tier_options(tier);
  if (!obs::certify(problem, candidate, cert).ok()) return false;
  if (eq.scaled_any() &&
      !obs::certify(eq.scaled(), eq.rescale(candidate), cert).ok()) {
    return false;
  }
  return true;
}

/// Escalates through policy.rungs. `trail` already carries the failed
/// original attempt(s); `skip_attempted` removes kWarm/kCold rungs the
/// solver itself already ran (the hook path — re-running them bit-identical
/// would waste pivots).
LadderOutcome run_ladder(const lp::Problem& problem,
                         const lp::SimplexOptions& options,
                         const RecoveryPolicy& policy,
                         std::vector<lp::RecoveryStepInfo> trail,
                         bool skip_attempted) {
  auto& reg = obs::default_registry();
  static obs::Counter& c_attempts = reg.counter("robust.recovery.attempts");
  static obs::Counter& c_resolved = reg.counter("robust.recovery.resolved");
  c_attempts.add(1);
  GRIDSEC_LOG(kWarn, "robust.recovery")
      .field("rows", problem.num_constraints())
      .field("cols", problem.num_variables())
      .field("rungs", static_cast<std::int64_t>(policy.rungs.size()))
      .message("numerical failure: recovery ladder engaged");

  // The rung attempts are diagnostics: they routinely produce uncertifiable
  // "optima" on the way to a certified one, and an armed audit hook would
  // count each as a product defect. The ladder certifies every candidate
  // itself (scale-invariantly, tighter than the audit default) before
  // adopting it; the original failing solve already reported normally.
  lp::ScopedSolveHookSuppress no_audit;
  const lp::Equilibrated eq = lp::equilibrate(problem);
  // A rung's answer stops the escalation only when it clears the STRICT
  // certificate — on ill-conditioned data, wrong optima routinely pass the
  // loose (default-tolerance) check. A loosely certified answer is kept as
  // a fallback: if no rung certifies strictly, it is still a far better
  // verdict than the original numerical failure.
  lp::Solution fallback;
  std::size_t fallback_entry = 0;
  bool have_fallback = false;
  for (const RecoveryRung rung : policy.rungs) {
    if (skip_attempted &&
        (rung == RecoveryRung::kWarm || rung == RecoveryRung::kCold)) {
      continue;  // already in the trail from the solver's own attempts
    }
    lp::Solution candidate;
    if (!attempt_rung(rung, problem, eq, options, policy, &candidate)) {
      continue;  // structurally unavailable (no warm basis / no-op scaling)
    }
    const bool certified =
        certified_optimum(problem, eq, candidate, CertTier::kStrict);
    trail.push_back({std::string(to_string(rung)), candidate.status,
                     certified});
    reg.counter("robust.recovery.rung." + std::string(to_string(rung)))
        .add(1);
    GRIDSEC_LOG(kInfo, "robust.recovery")
        .field("rung", to_string(rung))
        .field("status", lp::to_string(candidate.status))
        .field("certified", certified)
        .message("recovery rung attempted");
    if (certified) {
      c_resolved.add(1);
      GRIDSEC_LOG(kWarn, "robust.recovery")
          .field("rung", to_string(rung))
          .field("objective", candidate.objective)
          .field("steps", static_cast<std::int64_t>(trail.size()))
          .message("recovery ladder resolved the solve");
      candidate.recovery_trail = std::move(trail);
      return {std::move(candidate), true};
    }
    if (!have_fallback &&
        certified_optimum(problem, eq, candidate, CertTier::kLoose)) {
      fallback = std::move(candidate);
      fallback_entry = trail.size() - 1;
      have_fallback = true;
    }
  }
  if (have_fallback) {
    c_resolved.add(1);
    trail[fallback_entry].certified = true;  // adopted under the loose tier
    GRIDSEC_LOG(kWarn, "robust.recovery")
        .field("rung", trail[fallback_entry].rung)
        .field("objective", fallback.objective)
        .field("steps", static_cast<std::int64_t>(trail.size()))
        .message(
            "recovery ladder resolved the solve (loose-tier certificate)");
    fallback.recovery_trail = std::move(trail);
    return {std::move(fallback), true};
  }
  GRIDSEC_LOG(kWarn, "robust.recovery")
      .field("steps", static_cast<std::int64_t>(trail.size()))
      .message("recovery ladder exhausted without a certified optimum");
  LadderOutcome out;
  out.solution.recovery_trail = std::move(trail);
  out.recovered = false;
  return out;
}

/// Trail entries for what the solver already tried before recovery ran:
/// the warm attempt (when one was configured) and the built-in cold retry.
std::vector<lp::RecoveryStepInfo> failed_attempt_trail(
    const lp::SimplexOptions& options, lp::SolveStatus status) {
  std::vector<lp::RecoveryStepInfo> trail;
  if (lp::warm_start_enabled() && !options.warm_start.empty()) {
    trail.push_back({std::string(to_string(RecoveryRung::kWarm)), status,
                     false});
  }
  trail.push_back({std::string(to_string(RecoveryRung::kCold)), status,
                   false});
  return trail;
}

/// The lp::RecoveryHook body: runs the installed policy's ladder in place.
bool recovery_hook_fn(const lp::Problem& problem,
                      const lp::SimplexOptions& options,
                      lp::Solution* solution) {
  if (g_in_recovery > 0 || g_disabled_depth > 0) return false;
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  const RecoveryPolicy policy = current_policy();
  if (!policy.enabled || policy.rungs.empty()) return false;
  // Invalid input is rejected, not recovered: the kNumericalError verdict
  // for NaN/Inf/magnitude-cap data is the correct final answer.
  if (!lp::validate_problem(problem).is_ok()) return false;
  InRecoveryGuard guard;
  LadderOutcome outcome =
      run_ladder(problem, options, policy,
                 failed_attempt_trail(options, solution->status),
                 /*skip_attempted=*/true);
  if (outcome.recovered) {
    *solution = std::move(outcome.solution);
    return true;
  }
  // Leave the failed solution in place but attach the trail documenting
  // what was tried — audit bundles of the failure show the whole ladder.
  solution->recovery_trail = std::move(outcome.solution.recovery_trail);
  return false;
}

}  // namespace

std::string_view to_string(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kWarm:
      return "warm";
    case RecoveryRung::kRepairedBasis:
      return "repaired_basis";
    case RecoveryRung::kCold:
      return "cold";
    case RecoveryRung::kBland:
      return "bland";
    case RecoveryRung::kEquilibrated:
      return "equilibrated";
    case RecoveryRung::kPerturbed:
      return "perturbed";
  }
  return "unknown";
}

RecoveryPolicy RecoveryPolicy::ladder() {
  RecoveryPolicy p;
  p.rungs = {RecoveryRung::kRepairedBasis, RecoveryRung::kCold,
             RecoveryRung::kBland, RecoveryRung::kEquilibrated,
             RecoveryRung::kPerturbed};
  return p;
}

RecoveryPolicy RecoveryPolicy::off() {
  RecoveryPolicy p;
  p.enabled = false;
  return p;
}

lp::Solution solve_with_recovery(const lp::Problem& problem,
                                 const lp::SimplexOptions& options,
                                 const RecoveryPolicy& policy) {
  // Suppress any installed hook for the whole call: the explicit policy
  // is in charge, and the initial solve must not run a second ladder.
  InRecoveryGuard guard;
  lp::Solution sol = plain_solve(problem, options);
  if (!policy.enabled || policy.rungs.empty()) return sol;
  // Engage on a numerically wedged verdict, an optimal claim that fails
  // scale-invariant certification, or — on severely scaled data only — a
  // hard infeasible/unbounded verdict, which extreme dynamic range can
  // fake (a row at the feasibility-tolerance noise floor convinces
  // phase-1 of an infeasibility that is not there). Conditioning failures
  // surface all three ways; the hook path only sees the first.
  bool engage = false;
  if (sol.status == lp::SolveStatus::kNumericalError) {
    engage = lp::validate_problem(problem).is_ok();
  } else if (sol.status == lp::SolveStatus::kOptimal) {
    engage = !certified_optimum(problem, lp::equilibrate(problem), sol,
                                CertTier::kStrict);
  } else if (sol.status == lp::SolveStatus::kInfeasible ||
             sol.status == lp::SolveStatus::kUnbounded) {
    engage = severely_scaled(lp::equilibrate(problem));
  }
  if (!engage) return sol;
  LadderOutcome outcome =
      run_ladder(problem, options, policy,
                 failed_attempt_trail(options, sol.status),
                 /*skip_attempted=*/false);
  if (outcome.recovered) return std::move(outcome.solution);
  sol.recovery_trail = std::move(outcome.solution.recovery_trail);
  return sol;
}

void install_recovery(const RecoveryPolicy& policy) {
  {
    std::lock_guard<std::mutex> lock(g_policy_mutex);
    g_policy = policy;
  }
  lp::set_recovery_hook(&recovery_hook_fn);
}

void uninstall_recovery() { lp::set_recovery_hook(nullptr); }

bool recovery_installed() {
  return lp::recovery_hook() == &recovery_hook_fn;
}

void set_recovery_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool recovery_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

ScopedRecoveryDisable::ScopedRecoveryDisable() { ++g_disabled_depth; }
ScopedRecoveryDisable::~ScopedRecoveryDisable() { --g_disabled_depth; }

}  // namespace gridsec::robust
