#include "gridsec/robust/faultinject.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>

#include "gridsec/core/adversary.hpp"
#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/lp/presolve.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/audit.hpp"
#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/robust/recovery.hpp"
#include "gridsec/sim/scenario.hpp"

namespace gridsec::robust {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr FaultKind kAllKinds[] = {
    FaultKind::kNanCost,          FaultKind::kInfCost,
    FaultKind::kZeroCapacity,     FaultKind::kNegativeCapacity,
    FaultKind::kDisconnectedHub,  FaultKind::kDegenerateTies,
    FaultKind::kExtremeRange,
};

// The numerical-stress pool is deliberately NOT merged into kAllKinds:
// inject_random draws from kAllKinds by index, so growing that array would
// silently reshuffle every historical fuzz seed.
constexpr FaultKind kStressKinds[] = {
    FaultKind::kExtremeDynamicRange,
    FaultKind::kNearDegenerateScaling,
    FaultKind::kBasisDrift,
};

int pick_index(Rng& rng, int n) {
  return static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNanCost: return "nan_cost";
    case FaultKind::kInfCost: return "inf_cost";
    case FaultKind::kZeroCapacity: return "zero_capacity";
    case FaultKind::kNegativeCapacity: return "negative_capacity";
    case FaultKind::kDisconnectedHub: return "disconnected_hub";
    case FaultKind::kDegenerateTies: return "degenerate_ties";
    case FaultKind::kExtremeRange: return "extreme_range";
    case FaultKind::kExtremeDynamicRange: return "extreme_dynamic_range";
    case FaultKind::kNearDegenerateScaling: return "near_degenerate_scaling";
    case FaultKind::kBasisDrift: return "basis_drift";
  }
  return "unknown_fault";
}

bool FaultReport::has(FaultKind kind) const {
  return std::find(applied.begin(), applied.end(), kind) != applied.end();
}

std::string to_string(const FaultReport& report) {
  if (report.applied.empty()) return "(no faults)";
  std::string out;
  for (FaultKind k : report.applied) {
    if (!out.empty()) out += "+";
    out += to_string(k);
  }
  return out;
}

bool FaultInjector::inject(lp::Problem& p, FaultKind kind) {
  const bool applied = do_inject(p, kind);
  if (applied) {
    GRIDSEC_LOG(kInfo, "robust.faultinject")
        .field("target", "lp.problem")
        .field("kind", to_string(kind))
        .field("seed", seed_)
        .message("fault injected");
  }
  return applied;
}

bool FaultInjector::inject(flow::Network& net, FaultKind kind) {
  const bool applied = do_inject(net, kind);
  if (applied) {
    GRIDSEC_LOG(kInfo, "robust.faultinject")
        .field("target", "flow.network")
        .field("kind", to_string(kind))
        .field("seed", seed_)
        .message("fault injected");
  }
  return applied;
}

bool FaultInjector::do_inject(lp::Problem& p, FaultKind kind) {
  const int nv = p.num_variables();
  if (nv == 0) return false;
  switch (kind) {
    case FaultKind::kNanCost:
      p.set_objective_coef(pick_index(rng_, nv), kNan);
      return true;
    case FaultKind::kInfCost:
      p.set_objective_coef(pick_index(rng_, nv),
                           rng_.bernoulli(0.5) ? kInf : -kInf);
      return true;
    case FaultKind::kZeroCapacity: {
      // Collapse a variable's range to a point: the LP analogue of a
      // resource whose capacity has been zeroed out.
      const int j = pick_index(rng_, nv);
      p.set_bounds(j, p.variable(j).lower, p.variable(j).lower);
      return true;
    }
    case FaultKind::kNegativeCapacity: {
      // A negative capacity is not representable as bounds (lower > upper
      // is rejected at construction), so inject its semantic equivalent: a
      // row demanding that a variable stay strictly below its own lower
      // bound. Solvers must answer kInfeasible, not misbehave.
      const int j = pick_index(rng_, nv);
      p.add_constraint("fault.negcap", lp::LinearExpr().add(j, 1.0),
                       lp::Sense::kLessEqual,
                       p.variable(j).lower - 1.0 - rng_.uniform(0.0, 10.0));
      return true;
    }
    case FaultKind::kDisconnectedHub:
      return false;  // graph-structural; meaningless for a bare LP
    case FaultKind::kDegenerateTies: {
      if (nv < 2) return false;
      const int a = pick_index(rng_, nv);
      int b = pick_index(rng_, nv - 1);
      if (b >= a) ++b;
      p.set_objective_coef(b, p.variable(a).objective);
      return true;
    }
    case FaultKind::kExtremeRange: {
      const int a = pick_index(rng_, nv);
      const double ca = p.variable(a).objective;
      p.set_objective_coef(a, (ca == 0.0 ? 1.0 : ca) * 1e9);
      const int b = pick_index(rng_, nv);
      p.set_objective_coef(b, p.variable(b).objective * 1e-9);
      return true;
    }
    case FaultKind::kExtremeDynamicRange: {
      // ~1e18 of dynamic range inside one tableau: alternate objective
      // coefficients across 2^±30 and push two rows to opposite extremes.
      // Powers of two keep the mantissas exact, so the conditioning — not
      // representation error — is what the solver fights.
      for (int j = 0; j < nv; ++j) {
        const double c = p.variable(j).objective;
        p.set_objective_coef(j, (c == 0.0 ? 1.0 : c) *
                                    ((j % 2 == 0) ? 0x1p30 : 0x1p-30));
      }
      const int nc = p.num_constraints();
      if (nc > 0) p.scale_constraint(pick_index(rng_, nc), 0x1p30);
      if (nc > 1) {
        int r = pick_index(rng_, nc - 1);
        p.scale_constraint(r, 0x1p-30);
      }
      return true;
    }
    case FaultKind::kNearDegenerateScaling: {
      const int nc = p.num_constraints();
      if (nc == 0) return false;
      // A row whose coefficients sit at ~1e-12–1e-11 parks its candidate
      // pivots at BasisFactorization's 1e-11 pivot tolerance: eta updates
      // get refused, refactorizations churn, and sloppier codes wedge.
      p.scale_constraint(pick_index(rng_, nc),
                         rng_.bernoulli(0.5) ? 1e-12 : 1e12);
      return true;
    }
    case FaultKind::kBasisDrift: {
      const int nc = p.num_constraints();
      if (nc == 0) return false;
      // Append a near-duplicate of an existing row: the pair is linearly
      // dependent to within 1e-12, so bases containing both slacks are
      // numerically singular and warm-started bases drift.
      const lp::Constraint& row = p.constraint(pick_index(rng_, nc));
      lp::LinearExpr expr;
      for (const lp::Term& t : row.terms) {
        expr.add(t.var, t.coef * (1.0 + 1e-12 * rng_.uniform(-1.0, 1.0)));
      }
      if (expr.empty()) return false;
      p.add_constraint("fault.drift", std::move(expr), row.sense,
                       row.rhs * (1.0 + 1e-12 * rng_.uniform(-1.0, 1.0)));
      return true;
    }
  }
  return false;
}

bool FaultInjector::do_inject(flow::Network& net, FaultKind kind) {
  const int ne = net.num_edges();
  if (ne == 0) return false;
  switch (kind) {
    case FaultKind::kNanCost:
      net.set_cost(pick_index(rng_, ne), kNan);
      return true;
    case FaultKind::kInfCost:
      net.set_cost(pick_index(rng_, ne), rng_.bernoulli(0.5) ? kInf : -kInf);
      return true;
    case FaultKind::kZeroCapacity:
      net.set_capacity(pick_index(rng_, ne), 0.0);
      return true;
    case FaultKind::kNegativeCapacity:
      net.set_capacity(pick_index(rng_, ne), -rng_.uniform(1.0, 50.0));
      return true;
    case FaultKind::kDisconnectedHub: {
      // Sever one hub by zeroing every incident capacity — flow-wise
      // isolation without touching the (immutable) topology.
      std::vector<flow::NodeId> hubs;
      for (int n = 0; n < net.num_nodes(); ++n) {
        if (net.node(n).kind != flow::NodeKind::kHub) continue;
        if (net.out_edges(n).empty() && net.in_edges(n).empty()) continue;
        hubs.push_back(n);
      }
      if (hubs.empty()) return false;
      const flow::NodeId h =
          hubs[static_cast<std::size_t>(pick_index(
              rng_, static_cast<int>(hubs.size())))];
      for (flow::EdgeId e : net.out_edges(h)) net.set_capacity(e, 0.0);
      for (flow::EdgeId e : net.in_edges(h)) net.set_capacity(e, 0.0);
      return true;
    }
    case FaultKind::kDegenerateTies: {
      if (ne < 2) return false;
      const int a = pick_index(rng_, ne);
      int b = pick_index(rng_, ne - 1);
      if (b >= a) ++b;
      net.set_cost(b, net.edge(a).cost);
      return true;
    }
    case FaultKind::kExtremeRange: {
      const int a = pick_index(rng_, ne);
      const double ca = net.edge(a).cost;
      net.set_cost(a, (ca == 0.0 ? 1.0 : ca) * 1e9);
      const int b = pick_index(rng_, ne);
      net.set_capacity(b, net.edge(b).capacity * 1e6);
      return true;
    }
    case FaultKind::kExtremeDynamicRange:
    case FaultKind::kNearDegenerateScaling:
    case FaultKind::kBasisDrift:
      return false;  // tableau-conditioning faults; meaningless on a graph
  }
  return false;
}

FaultReport FaultInjector::inject_random(lp::Problem& p, int count) {
  FaultReport report;
  for (int i = 0; i < count; ++i) {
    const FaultKind kind =
        kAllKinds[pick_index(rng_, static_cast<int>(std::size(kAllKinds)))];
    if (inject(p, kind)) report.applied.push_back(kind);
  }
  return report;
}

FaultReport FaultInjector::inject_random(flow::Network& net, int count) {
  FaultReport report;
  for (int i = 0; i < count; ++i) {
    const FaultKind kind =
        kAllKinds[pick_index(rng_, static_cast<int>(std::size(kAllKinds)))];
    if (inject(net, kind)) report.applied.push_back(kind);
  }
  return report;
}

void jitter_costs(lp::Problem& p, Rng& rng, double rel_scale) {
  for (int j = 0; j < p.num_variables(); ++j) {
    const double c = p.variable(j).objective;
    p.set_objective_coef(j, c * (1.0 + rel_scale * rng.uniform(-1.0, 1.0)));
  }
}

void jitter_costs(flow::Network& net, Rng& rng, double rel_scale) {
  for (int e = 0; e < net.num_edges(); ++e) {
    const double c = net.edge(e).cost;
    net.set_cost(e, c * (1.0 + rel_scale * rng.uniform(-1.0, 1.0)));
  }
}

namespace {

// ---------------------------------------------------------------------------
// Differential fuzz harness.

/// Coarse verdict classes for cross-solver agreement. Hard verdicts
/// (optimal / infeasible / unbounded) must agree pairwise; soft verdicts
/// (budget exhaustion, numerical bail-out) are conservative and excused.
enum class VerdictClass { kHardOptimal, kHardInfeasible, kHardUnbounded, kSoft };

VerdictClass classify(lp::SolveStatus s) {
  switch (s) {
    case lp::SolveStatus::kOptimal: return VerdictClass::kHardOptimal;
    case lp::SolveStatus::kInfeasible: return VerdictClass::kHardInfeasible;
    case lp::SolveStatus::kUnbounded: return VerdictClass::kHardUnbounded;
    case lp::SolveStatus::kIterationLimit:
    case lp::SolveStatus::kTimeLimit:
    case lp::SolveStatus::kNumericalError: return VerdictClass::kSoft;
  }
  return VerdictClass::kSoft;
}

struct FuzzContext {
  const FuzzOptions& options;
  FuzzStats& stats;
  std::map<std::string, int> status_tally;

  void tally(lp::SolveStatus s) {
    ++status_tally[std::string(lp::to_string(s))];
  }

  void fail(std::uint64_t seed, const std::string& what) {
    if (stats.failures.size() < 64) {
      std::ostringstream os;
      os << "[seed " << seed << "] " << what;
      stats.failures.push_back(os.str());
    } else if (stats.failures.size() == 64) {
      stats.failures.push_back("... further failures suppressed");
    }
  }
};

/// A generic random LP: unlike the always-feasible social-welfare builds,
/// these hit the infeasible and unbounded verdict paths naturally.
lp::Problem make_random_lp(Rng& rng) {
  lp::Problem p(rng.bernoulli(0.5) ? lp::Objective::kMinimize
                                   : lp::Objective::kMaximize);
  const int nv = 2 + pick_index(rng, 9);
  const int nc = 1 + pick_index(rng, 8);
  for (int j = 0; j < nv; ++j) {
    const double lower = rng.bernoulli(0.7) ? 0.0 : rng.uniform(-5.0, 0.0);
    const double upper =
        rng.bernoulli(0.2) ? lp::kInfinity : lower + rng.uniform(0.0, 30.0);
    p.add_variable("x" + std::to_string(j), lower, upper,
                   rng.uniform(-10.0, 10.0));
  }
  for (int i = 0; i < nc; ++i) {
    lp::LinearExpr expr;
    for (int j = 0; j < nv; ++j) {
      if (rng.bernoulli(0.6)) expr.add(j, rng.uniform(-10.0, 10.0));
    }
    if (expr.empty()) expr.add(pick_index(rng, nv), 1.0);
    const lp::Sense sense = rng.bernoulli(0.4)   ? lp::Sense::kLessEqual
                            : rng.bernoulli(0.5) ? lp::Sense::kGreaterEqual
                                                 : lp::Sense::kEqual;
    p.add_constraint("c" + std::to_string(i), std::move(expr), sense,
                     rng.uniform(-20.0, 20.0));
  }
  return p;
}

flow::Network make_fuzz_grid(Rng& rng) {
  sim::RandomGridOptions grid;
  grid.hubs = 3 + pick_index(rng, 6);
  grid.extra_edge_prob = rng.uniform(0.1, 0.5);
  grid.supply_density = rng.uniform(0.5, 1.0);
  grid.demand_density = rng.uniform(0.5, 1.0);
  return sim::make_random_grid(grid, rng);
}

/// Leg 1: hardened simplex vs. presolve path on the same (possibly
/// faulted) problem.
void fuzz_lp_instance(FuzzContext& ctx, std::uint64_t seed, Rng& rng) {
  lp::Problem p =
      rng.bernoulli(0.5)
          ? flow::build_social_welfare_lp(make_fuzz_grid(rng))
          : make_random_lp(rng);

  FaultReport report;
  if (rng.bernoulli(ctx.options.fault_prob)) {
    FaultInjector injector(rng.next());
    report = injector.inject_random(p, 1 + pick_index(rng,
                                            ctx.options.max_faults));
    if (!report.applied.empty()) ++ctx.stats.faulted;
  }

  lp::SimplexOptions so;
  so.time_limit_ms = ctx.options.time_limit_ms;
  const lp::Solution direct = lp::SimplexSolver(so).solve(p);
  const lp::Solution presolved = lp::solve_lp_with_presolve(p, so);
  ++ctx.stats.lp_checks;
  ctx.tally(direct.status);
  ctx.tally(presolved.status);

  // Judge from the problem's final state, not the injection history — a
  // later fault may overwrite an earlier one (e.g. a tie copied over the
  // injected NaN).
  if (!lp::validate_problem(p).is_ok()) {
    // NaN/Inf data must be caught by validation on both paths.
    if (direct.status != lp::SolveStatus::kNumericalError ||
        presolved.status != lp::SolveStatus::kNumericalError) {
      ctx.fail(seed, "poisoned LP (" + to_string(report) +
                         ") not rejected: direct=" +
                         std::string(lp::to_string(direct.status)) +
                         " presolved=" +
                         std::string(lp::to_string(presolved.status)));
    }
    return;
  }

  const VerdictClass a = classify(direct.status);
  const VerdictClass b = classify(presolved.status);
  if (a != VerdictClass::kSoft && b != VerdictClass::kSoft && a != b) {
    ctx.fail(seed, "LP verdict disagreement (" + to_string(report) +
                       "): direct=" +
                       std::string(lp::to_string(direct.status)) +
                       " presolved=" +
                       std::string(lp::to_string(presolved.status)));
    return;
  }
  if (a == VerdictClass::kHardOptimal && b == VerdictClass::kHardOptimal) {
    const double tol =
        ctx.options.objective_tol * (1.0 + std::fabs(direct.objective));
    if (std::fabs(direct.objective - presolved.objective) > tol) {
      std::ostringstream os;
      os << "LP objective mismatch (" << to_string(report)
         << "): direct=" << direct.objective
         << " presolved=" << presolved.objective;
      ctx.fail(seed, os.str());
    }
    if (!p.is_feasible(direct.x, 1e-5)) {
      ctx.fail(seed, "direct simplex returned infeasible point (" +
                         to_string(report) + ")");
    }
    if (!p.is_feasible(presolved.x, 1e-5)) {
      ctx.fail(seed, "presolve path returned infeasible point (" +
                         to_string(report) + ")");
    }
  }
}

/// Leg 2: the specialized adversary branch-and-bound and the linearized
/// MILP against the brute-force subset enumerator.
void fuzz_adversary_instance(FuzzContext& ctx, std::uint64_t seed, Rng& rng) {
  const int na = 2 + pick_index(rng, 4);
  const int nt = 3 + pick_index(rng, 6);
  cps::ImpactMatrix im(na, nt);
  const double scale = rng.bernoulli(0.1) ? 1e9 : 50.0;  // range stress
  double previous = 0.0;
  for (int a = 0; a < na; ++a) {
    for (int t = 0; t < nt; ++t) {
      double v = rng.uniform(-scale, scale);
      if (rng.bernoulli(0.2)) v = 0.0;
      if (rng.bernoulli(0.15)) v = previous;  // exact degenerate ties
      im.set(a, t, v);
      previous = v;
    }
  }

  core::AdversaryConfig config;
  if (rng.bernoulli(0.7)) {
    config.attack_cost.resize(static_cast<std::size_t>(nt));
    for (double& c : config.attack_cost) c = rng.uniform(0.0, scale / 5.0);
  }
  if (rng.bernoulli(0.7)) {
    config.success_prob.resize(static_cast<std::size_t>(nt));
    for (double& pr : config.success_prob) pr = rng.uniform(0.3, 1.0);
  }
  if (rng.bernoulli(0.5)) config.budget = rng.uniform(0.0, scale / 2.0);
  if (rng.bernoulli(0.5)) config.max_targets = 1 + pick_index(rng, nt);

  const core::StrategicAdversary sa(config);
  const core::AttackPlan exact = sa.plan(im);
  const core::AttackPlan milp = sa.plan_milp(im);
  const core::AttackPlan brute = sa.plan_enumerate(im);
  ++ctx.stats.adversary_checks;
  ctx.tally(exact.status);
  ctx.tally(milp.status);
  ctx.tally(brute.status);

  if (!brute.optimal()) {
    ctx.fail(seed, "enumerator did not report optimal: " +
                       std::string(lp::to_string(brute.status)));
    return;
  }
  const double tol = 1e-6 * (1.0 + std::fabs(brute.anticipated_return));
  if (exact.optimal() &&
      std::fabs(exact.anticipated_return - brute.anticipated_return) > tol) {
    std::ostringstream os;
    os << "plan() vs enumerate mismatch: " << exact.anticipated_return
       << " vs " << brute.anticipated_return;
    ctx.fail(seed, os.str());
  }
  if (milp.optimal() &&
      std::fabs(milp.anticipated_return - brute.anticipated_return) > tol) {
    std::ostringstream os;
    os << "plan_milp() vs enumerate mismatch: " << milp.anticipated_return
       << " vs " << brute.anticipated_return;
    ctx.fail(seed, os.str());
  }
  if (!exact.optimal() && classify(exact.status) != VerdictClass::kSoft) {
    ctx.fail(seed, "plan() hard non-optimal verdict: " +
                       std::string(lp::to_string(exact.status)));
  }
}

/// Same out-of-domain predicate as the solve_social_welfare gate; judged
/// on the network's final state because faults may overwrite each other.
bool network_out_of_domain(const flow::Network& net) {
  for (int e = 0; e < net.num_edges(); ++e) {
    const flow::Edge& edge = net.edge(e);
    if (!std::isfinite(edge.cost) || std::isnan(edge.capacity) ||
        edge.capacity < 0.0 || !(edge.loss >= 0.0 && edge.loss < 1.0)) {
      return true;
    }
  }
  return false;
}

/// Leg 3: end-to-end network pipeline — validate() must agree with the
/// solve gate, and no faulted grid may crash the solve.
void fuzz_network_instance(FuzzContext& ctx, std::uint64_t seed, Rng& rng) {
  flow::Network net = make_fuzz_grid(rng);

  FaultReport report;
  if (rng.bernoulli(ctx.options.fault_prob)) {
    FaultInjector injector(rng.next());
    report = injector.inject_random(net, 1 + pick_index(rng,
                                             ctx.options.max_faults));
    if (!report.applied.empty()) ++ctx.stats.faulted;
  }

  const Status valid = net.validate();
  flow::SocialWelfareOptions options;
  options.simplex.time_limit_ms = ctx.options.time_limit_ms;
  const flow::FlowSolution sol = solve_social_welfare(net, options);
  ++ctx.stats.network_checks;
  ctx.tally(sol.status);

  if (network_out_of_domain(net)) {
    if (valid.is_ok()) {
      ctx.fail(seed, "validate() accepted out-of-domain network (" +
                         to_string(report) + ")");
    }
    if (sol.status != lp::SolveStatus::kNumericalError) {
      ctx.fail(seed, "solve accepted out-of-domain network (" +
                         to_string(report) + "): " +
                         std::string(lp::to_string(sol.status)));
    }
    return;
  }
  // In-domain data (possibly Eq-3-inconsistent): the solve must reach a
  // verdict, and an optimal one must be internally consistent.
  if (sol.status == lp::SolveStatus::kNumericalError) {
    ctx.fail(seed, "in-domain network (" + to_string(report) +
                       ") reported kNumericalError");
  }
  if (sol.optimal()) {
    if (!std::isfinite(sol.welfare)) {
      ctx.fail(seed, "optimal solve with non-finite welfare (" +
                         to_string(report) + ")");
    }
    if (sol.flow.size() != static_cast<std::size_t>(net.num_edges())) {
      ctx.fail(seed, "optimal solve with wrong flow dimension");
    }
  }
}

/// Leg 4: warm-started vs. cold simplex. Two comparisons per instance:
/// re-solving the identical problem from its own optimal basis must be an
/// exact (zero-pivot) confirmation of the cold optimum, and solving a
/// cost-jittered sibling warm from the now-stale basis must agree with the
/// sibling's cold solve. Warm starts change the path, never the answer.
void fuzz_warm_start_instance(FuzzContext& ctx, std::uint64_t seed, Rng& rng) {
  lp::Problem p =
      rng.bernoulli(0.5)
          ? flow::build_social_welfare_lp(make_fuzz_grid(rng))
          : make_random_lp(rng);

  FaultReport report;
  if (rng.bernoulli(ctx.options.fault_prob)) {
    FaultInjector injector(rng.next());
    report = injector.inject_random(p, 1 + pick_index(rng,
                                            ctx.options.max_faults));
    if (!report.applied.empty()) ++ctx.stats.faulted;
  }

  lp::SimplexOptions cold_options;
  cold_options.time_limit_ms = ctx.options.time_limit_ms;
  const lp::Solution cold = lp::SimplexSolver(cold_options).solve(p);
  ++ctx.stats.warm_checks;
  ctx.tally(cold.status);
  if (!cold.optimal()) return;  // no basis to warm-start from

  lp::SimplexOptions warm_options = cold_options;
  warm_options.warm_start = cold.basis;
  obs::Counter& warm_cold_retries =
      obs::default_registry().counter("lp.simplex.warm_cold_retries");
  const std::int64_t retries_before = warm_cold_retries.value();
  const lp::Solution warm = lp::SimplexSolver(warm_options).solve(p);
  ctx.tally(warm.status);
  const double tol =
      ctx.options.objective_tol * (1.0 + std::fabs(cold.objective));
  if (!warm.optimal() ||
      std::fabs(warm.objective - cold.objective) > tol) {
    std::ostringstream os;
    os << "warm re-solve diverged (" << to_string(report)
       << "): cold=" << cold.objective << "/" << lp::to_string(cold.status)
       << " warm=" << warm.objective << "/" << lp::to_string(warm.status);
    ctx.fail(seed, os.str());
    return;
  }
  // A solve that wedged on the warm trajectory and took the documented
  // warm→cold numerical retry legitimately reports the cold path; the
  // retry counter distinguishes it from warm-start plumbing going dead.
  if (!warm.warm_started && !cold.basis.empty() &&
      lp::warm_start_enabled() &&
      warm_cold_retries.value() == retries_before) {
    ctx.fail(seed, "warm basis supplied but solve reported cold path (" +
                       to_string(report) + ")");
  }

  // Jittered sibling: the stale basis must repair into the same verdict
  // the cold solve reaches.
  lp::Problem sibling = p;
  jitter_costs(sibling, rng, 1e-4);
  const lp::Solution sib_cold = lp::SimplexSolver(cold_options).solve(sibling);
  const lp::Solution sib_warm = lp::SimplexSolver(warm_options).solve(sibling);
  ctx.tally(sib_cold.status);
  ctx.tally(sib_warm.status);
  const VerdictClass a = classify(sib_cold.status);
  const VerdictClass b = classify(sib_warm.status);
  if (a != VerdictClass::kSoft && b != VerdictClass::kSoft && a != b) {
    ctx.fail(seed, "warm vs cold verdict disagreement on jittered sibling (" +
                       to_string(report) + "): cold=" +
                       std::string(lp::to_string(sib_cold.status)) +
                       " warm=" +
                       std::string(lp::to_string(sib_warm.status)));
    return;
  }
  if (a == VerdictClass::kHardOptimal && b == VerdictClass::kHardOptimal) {
    const double sib_tol =
        ctx.options.objective_tol * (1.0 + std::fabs(sib_cold.objective));
    if (std::fabs(sib_cold.objective - sib_warm.objective) > sib_tol) {
      std::ostringstream os;
      os << "warm vs cold objective mismatch on jittered sibling ("
         << to_string(report) << "): cold=" << sib_cold.objective
         << " warm=" << sib_warm.objective;
      ctx.fail(seed, os.str());
    }
  }
}

/// Stress leg (options.stress_numerics): instances faulted from the
/// numerical-stress pool, solved three ways and cross-checked.
///   reference — cold start, Bland's rule from the first pivot: slow but
///               numerically boring; its certified optimum is the oracle.
///   plain     — default solve with the recovery ladder suppressed
///               (ScopedRecoveryDisable): measures how often the stress
///               faults actually hurt.
///   ladder    — solve_with_recovery(): must certify the same optimum as
///               the reference, and must resolve (acceptance: >= 80% of)
///               the instances the plain solve loses.
void fuzz_stress_instance(FuzzContext& ctx, std::uint64_t seed, Rng& rng) {
  // Every solve below runs on a deliberately ill-conditioned instance;
  // an armed audit hook (tests link certify_all) would book the resulting
  // uncertifiable "optima" as product defects. This leg carries its own
  // stronger (scale-invariant, tight-tier) cross-checks instead.
  lp::ScopedSolveHookSuppress no_audit;
  lp::Problem p = make_random_lp(rng);
  FaultInjector injector(rng.next());
  FaultReport report;
  const int count = 1 + pick_index(rng, 3);
  for (int f = 0; f < count; ++f) {
    const FaultKind kind = kStressKinds[pick_index(
        rng, static_cast<int>(std::size(kStressKinds)))];
    if (injector.inject(p, kind)) report.applied.push_back(kind);
  }
  if (!report.applied.empty()) ++ctx.stats.faulted;
  if (!lp::validate_problem(p).is_ok()) return;  // stacked scalings can
                                                 // trip the magnitude cap

  // Scale-invariant certificate: verified against the original AND the
  // equilibrated problem, where a 1e-12-scaled row can no longer hide its
  // violations below certify()'s relative tolerances.
  const lp::Equilibrated eq = lp::equilibrate(p);
  const obs::CertifyOptions cert{.relaxation = true};
  const auto certified_with = [&](const lp::Solution& sol,
                                  const obs::CertifyOptions& c) {
    if (!sol.optimal() || !obs::certify(p, sol, c).ok()) return false;
    return !eq.scaled_any() ||
           obs::certify(eq.scaled(), eq.rescale(sol), c).ok();
  };
  const auto strongly_certified = [&](const lp::Solution& sol) {
    return certified_with(sol, cert);
  };
  // Two answers can disagree by O(1) while both certify with ~1e-16
  // residuals — e.g. a pair of near-duplicate equality rows whose 1e-12
  // difference implies an O(1) constraint no tolerance can see. Such an
  // instance is ill-posed below every certificate's discriminating power:
  // neither answer is "wrong", so an objective mismatch only counts as a
  // failure when the suspect answer stops certifying at tight (1e-9)
  // tolerances.
  obs::CertifyOptions tight = cert;
  tight.feasibility_tol = 1e-9;
  tight.dual_tol = 1e-9;
  tight.duality_gap_tol = 1e-9;
  const auto ambiguous_mismatch = [&](const lp::Solution& sol) {
    return certified_with(sol, tight);
  };

  // Oracle: cold-start Bland's rule on the equilibrated data — slow,
  // cycling-proof, and well-scaled by construction.
  lp::SimplexOptions ref_options;
  ref_options.time_limit_ms = ctx.options.time_limit_ms;
  ref_options.bland_after = -1;
  lp::Solution reference;
  {
    ScopedRecoveryDisable off;
    reference = eq.scaled_any()
                    ? eq.unscale(lp::SimplexSolver(ref_options)
                                     .solve(eq.scaled()))
                    : lp::SimplexSolver(ref_options).solve(p);
  }
  // The oracle must itself clear the tight certificate — an answer that
  // only certifies loosely cannot adjudicate the tight bar the ladder is
  // held to. Instances with no tightly certifiable optimum (genuinely
  // infeasible/unbounded, wedged, or conditioned beyond 1e-9) are skipped.
  if (!certified_with(reference, tight)) {
    return;
  }
  ++ctx.stats.recovery_checks;

  lp::SimplexOptions so;
  so.time_limit_ms = ctx.options.time_limit_ms;
  lp::Solution plain;
  {
    ScopedRecoveryDisable off;
    plain = lp::SimplexSolver(so).solve(p);
  }
  ctx.tally(plain.status);
  // The plain solve counts as OK only under the tight certificate — the
  // ladder's own acceptance bar. A plain answer that certifies loosely but
  // not tightly can be arbitrarily wrong (the loose tolerances are what a
  // ~1e-7 dual-sign or equality violation hides beneath); that is the
  // baseline defect the ladder exists to fix, so it tallies as a plain
  // failure rather than a fuzz failure.
  const bool plain_ok = certified_with(plain, tight);
  if (!plain_ok) ++ctx.stats.recovery_failed_plain;

  const lp::Solution laddered = solve_with_recovery(p, so);
  ctx.tally(laddered.status);
  const bool ladder_strict = certified_with(laddered, tight);
  const bool ladder_loose = strongly_certified(laddered);
  const double tol =
      ctx.options.objective_tol * (1.0 + std::fabs(reference.objective));
  // Wrong certified optimum: the ladder adopted an answer (at either
  // tier) whose objective contradicts the oracle AND which the tight
  // certificate rejects. (When both answers tightly certify despite
  // disagreeing, the instance is ill-posed below every certificate's
  // discriminating power — see ambiguous_mismatch above.)
  if (ladder_loose &&
      std::fabs(laddered.objective - reference.objective) > tol &&
      !ambiguous_mismatch(laddered)) {
    std::ostringstream os;
    os << "stress (" << to_string(report)
       << "): ladder certified a wrong optimum: " << laddered.objective
       << " vs reference " << reference.objective;
    ctx.fail(seed, os.str());
    return;
  }
  if (!plain_ok && ladder_strict) ++ctx.stats.recovery_resolved;
  if (plain_ok && !ladder_strict) {
    ctx.fail(seed, "stress (" + to_string(report) +
                       "): ladder lost an instance the plain solve "
                       "certifies: " +
                       std::string(lp::to_string(laddered.status)));
  }
}

}  // namespace

std::string to_string(const FuzzStats& stats) {
  std::ostringstream os;
  os << "fuzz: " << stats.instances << " instances (" << stats.faulted
     << " faulted), " << stats.lp_checks << " LP checks, "
     << stats.adversary_checks << " adversary checks, "
     << stats.network_checks << " network checks, "
     << stats.warm_checks << " warm-start checks, "
     << stats.recovery_checks << " recovery checks ("
     << stats.recovery_resolved << "/" << stats.recovery_failed_plain
     << " plain failures resolved), "
     << stats.failures.size() << " failures\n";
  for (const auto& [status, count] : stats.status_counts) {
    os << "  status " << status << ": " << count << "\n";
  }
  for (const std::string& f : stats.failures) os << "  FAIL " << f << "\n";
  return os.str();
}

FuzzStats run_differential_fuzz(const FuzzOptions& options) {
  FuzzStats stats;
  FuzzContext ctx{options, stats, {}};
  const Rng parent(options.seed);

  // Instances are seeded independently of each other and of execution
  // order, so any failure reproduces from its printed seed alone.
  for (int i = 0; i < options.instances; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    Rng rng = parent.derive_stream(4 * seed);
    fuzz_lp_instance(ctx, seed, rng);
    ++stats.instances;
  }
  for (int i = 0; i < options.instances; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    Rng rng = parent.derive_stream(4 * seed + 1);
    fuzz_adversary_instance(ctx, seed, rng);
    ++stats.instances;
  }
  for (int i = 0; i < options.instances; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    Rng rng = parent.derive_stream(4 * seed + 2);
    fuzz_network_instance(ctx, seed, rng);
    ++stats.instances;
  }
  for (int i = 0; i < options.instances; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    Rng rng = parent.derive_stream(4 * seed + 3);
    fuzz_warm_start_instance(ctx, seed, rng);
    ++stats.instances;
  }
  if (options.stress_numerics) {
    // Independent parent stream: enabling the stress leg must not perturb
    // the four classic legs' historical seed → instance mapping.
    const Rng stress_parent(options.seed ^ 0x9E3779B97F4A7C15ULL);
    for (int i = 0; i < options.instances; ++i) {
      const auto seed = static_cast<std::uint64_t>(i);
      Rng rng = stress_parent.derive_stream(seed);
      fuzz_stress_instance(ctx, seed, rng);
      ++stats.instances;
    }
  }

  stats.status_counts.assign(ctx.status_tally.begin(), ctx.status_tally.end());

  auto& reg = obs::default_registry();
  reg.counter("robust.fuzz.instances").add(stats.instances);
  reg.counter("robust.fuzz.faulted").add(stats.faulted);
  reg.counter("robust.fuzz.failures").add(
      static_cast<long>(stats.failures.size()));
  return stats;
}

}  // namespace gridsec::robust
