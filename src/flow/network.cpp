#include "gridsec/flow/network.hpp"

#include <cmath>

namespace gridsec::flow {

NodeId Network::add_node(std::string name, NodeKind kind) {
  nodes_.push_back({std::move(name), kind});
  out_.emplace_back();
  in_.emplace_back();
  return num_nodes() - 1;
}

NodeId Network::add_hub(std::string name) {
  return add_node(std::move(name), NodeKind::kHub);
}

NodeId Network::add_source(std::string name) {
  return add_node(std::move(name), NodeKind::kSource);
}

NodeId Network::add_sink(std::string name) {
  return add_node(std::move(name), NodeKind::kSink);
}

EdgeId Network::add_edge(std::string name, EdgeKind kind, NodeId from,
                         NodeId to, double capacity, double cost,
                         double loss) {
  GRIDSEC_ASSERT(from >= 0 && from < num_nodes());
  GRIDSEC_ASSERT(to >= 0 && to < num_nodes());
  GRIDSEC_ASSERT_MSG(from != to, "self-loop edge");
  GRIDSEC_ASSERT_MSG(capacity >= 0.0, "negative capacity");
  GRIDSEC_ASSERT_MSG(loss >= 0.0 && loss < 1.0, "loss outside [0,1)");
  switch (kind) {
    case EdgeKind::kSupply:
      GRIDSEC_ASSERT_MSG(node(from).kind == NodeKind::kSource &&
                             node(to).kind == NodeKind::kHub,
                         "supply edge must run source->hub");
      break;
    case EdgeKind::kDemand:
      GRIDSEC_ASSERT_MSG(node(from).kind == NodeKind::kHub &&
                             node(to).kind == NodeKind::kSink,
                         "demand edge must run hub->sink");
      break;
    case EdgeKind::kTransmission:
    case EdgeKind::kConversion:
      GRIDSEC_ASSERT_MSG(node(from).kind == NodeKind::kHub &&
                             node(to).kind == NodeKind::kHub,
                         "transport edge must run hub->hub");
      break;
  }
  edges_.push_back({std::move(name), kind, from, to, capacity, cost, loss});
  const EdgeId id = num_edges() - 1;
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

EdgeId Network::add_supply(std::string name, NodeId hub, double capacity,
                           double unit_cost, double loss) {
  const NodeId src = add_source(name + ".src");
  return add_edge(std::move(name), EdgeKind::kSupply, src, hub, capacity,
                  unit_cost, loss);
}

EdgeId Network::add_demand(std::string name, NodeId hub, double capacity,
                           double unit_price, double loss) {
  const NodeId snk = add_sink(name + ".snk");
  return add_edge(std::move(name), EdgeKind::kDemand, hub, snk, capacity,
                  -unit_price, loss);
}

// The perturbation mutators intentionally accept out-of-domain values
// (negative capacity, NaN cost, loss >= 1): attack/noise models and the
// fault injector may drive edges into invalid states, and the contract is
// that validate() / solve_social_welfare reject such data with a typed
// status rather than the process aborting inside a setter.
void Network::set_capacity(EdgeId id, double capacity) {
  GRIDSEC_ASSERT(id >= 0 && id < num_edges());
  edges_[static_cast<std::size_t>(id)].capacity = capacity;
}

void Network::set_cost(EdgeId id, double cost) {
  GRIDSEC_ASSERT(id >= 0 && id < num_edges());
  edges_[static_cast<std::size_t>(id)].cost = cost;
}

void Network::set_loss(EdgeId id, double loss) {
  GRIDSEC_ASSERT(id >= 0 && id < num_edges());
  edges_[static_cast<std::size_t>(id)].loss = loss;
}

double Network::total_demand_capacity() const {
  double total = 0.0;
  for (const auto& e : edges_) {
    if (e.kind == EdgeKind::kDemand) total += e.capacity;
  }
  return total;
}

double Network::total_supply_capacity() const {
  double total = 0.0;
  for (const auto& e : edges_) {
    if (e.kind == EdgeKind::kSupply) total += e.capacity;
  }
  return total;
}

Status Network::validate() const {
  for (int i = 0; i < num_edges(); ++i) {
    const Edge& e = edge(i);
    if (!(e.capacity >= 0.0) || !std::isfinite(e.capacity)) {
      return Status::invalid_argument("edge '" + e.name + "': bad capacity");
    }
    if (!(e.loss >= 0.0 && e.loss < 1.0)) {
      return Status::invalid_argument("edge '" + e.name + "': bad loss");
    }
    if (!std::isfinite(e.cost)) {
      return Status::invalid_argument("edge '" + e.name + "': bad cost");
    }
  }
  // Paper Eq 3 analogue: each demand edge's hub must have incident inbound
  // capacity able to cover the demand (otherwise the data is inconsistent —
  // a consumer that can never be served).
  for (int i = 0; i < num_edges(); ++i) {
    const Edge& e = edge(i);
    if (e.kind != EdgeKind::kDemand) continue;
    double inbound = 0.0;
    for (EdgeId in : in_edges(e.from)) inbound += edge(in).capacity;
    if (inbound + 1e-9 < e.capacity) {
      return Status::invalid_argument(
          "demand edge '" + e.name +
          "' exceeds total inbound capacity at its hub (Eq 3 violated)");
    }
  }
  // Paper Eq 4 analogue is enforced by construction: supply edges carry at
  // most their own capacity, which is the source's s(v).
  return Status::ok();
}

StatusOr<EdgeId> Network::find_edge(std::string_view name) const {
  for (int i = 0; i < num_edges(); ++i) {
    if (edge(i).name == name) return i;
  }
  return Status::not_found("edge '" + std::string(name) + "' not found");
}

}  // namespace gridsec::flow
