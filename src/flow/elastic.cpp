#include "gridsec/flow/elastic.hpp"

namespace gridsec::flow {

std::vector<EdgeId> add_elastic_demand(Network& net, const std::string& name,
                                       NodeId hub,
                                       std::span<const DemandTier> tiers) {
  GRIDSEC_ASSERT(!tiers.empty());
  std::vector<EdgeId> out;
  out.reserve(tiers.size());
  int i = 0;
  for (const DemandTier& tier : tiers) {
    GRIDSEC_ASSERT(tier.quantity >= 0.0);
    out.push_back(net.add_demand(name + ".t" + std::to_string(i++), hub,
                                 tier.quantity, tier.price));
  }
  return out;
}

std::vector<DemandTier> linear_demand_curve(double max_price,
                                            double max_quantity,
                                            int num_tiers) {
  GRIDSEC_ASSERT(num_tiers > 0);
  GRIDSEC_ASSERT(max_price >= 0.0 && max_quantity >= 0.0);
  std::vector<DemandTier> tiers;
  tiers.reserve(static_cast<std::size_t>(num_tiers));
  const double step = max_quantity / num_tiers;
  for (int i = 0; i < num_tiers; ++i) {
    // Midpoint price of the i-th quantity slice of the linear curve.
    const double mid = (static_cast<double>(i) + 0.5) / num_tiers;
    tiers.push_back({step, max_price * (1.0 - mid)});
  }
  return tiers;
}

}  // namespace gridsec::flow
