#include "gridsec/flow/allocation.hpp"

#include <algorithm>
#include <cmath>

#include "gridsec/obs/trace.hpp"

namespace gridsec::flow {

std::vector<double> edge_profits_from_prices(
    const Network& net, std::span<const double> flow,
    std::span<const double> node_price) {
  GRIDSEC_ASSERT(flow.size() == static_cast<std::size_t>(net.num_edges()));
  GRIDSEC_ASSERT(node_price.size() ==
                 static_cast<std::size_t>(net.num_nodes()));
  std::vector<double> profit(flow.size(), 0.0);
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    const auto es = static_cast<std::size_t>(e);
    const double f = flow[es];
    if (f <= 0.0) continue;
    const double price_to =
        net.node(edge.to).kind == NodeKind::kHub
            ? node_price[static_cast<std::size_t>(edge.to)]
            : 0.0;
    const double price_from =
        net.node(edge.from).kind == NodeKind::kHub
            ? node_price[static_cast<std::size_t>(edge.from)]
            : 0.0;
    profit[es] =
        price_to * f - price_from * f / (1.0 - edge.loss) - edge.cost * f;
  }
  return profit;
}

StatusOr<std::vector<double>> probe_node_prices(
    const Network& net, const FlowSolution& base, double probe_fraction,
    const SocialWelfareOptions& options) {
  if (!base.optimal()) {
    return Status::invalid_argument("probe_node_prices: base not optimal");
  }
  // Probe size: a fraction of the mean positive flow, floored so the LP
  // actually moves, capped so we stay in the local pricing regime.
  double mean_flow = 0.0;
  int positive = 0;
  for (double f : base.flow) {
    if (f > 1e-9) {
      mean_flow += f;
      ++positive;
    }
  }
  mean_flow = positive ? mean_flow / positive : 1.0;
  const double delta = std::max(1e-6, probe_fraction * mean_flow);

  std::vector<double> price(static_cast<std::size_t>(net.num_nodes()), 0.0);
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != NodeKind::kHub) continue;
    if (net.out_edges(n).empty() && net.in_edges(n).empty()) continue;
    // Free injection of `delta` at hub n: a zero-cost supply edge. The
    // welfare gain per unit is the price of energy at that hub — the
    // paper's "price of the alternative" at that point in the system.
    // The probe LP is the base LP plus one column (the injection edge
    // adds a variable but no hub row), so the base basis warm-starts it:
    // a warm basis may cover a prefix of the columns.
    Network probe = net;
    probe.add_supply("probe.injection", n, delta, 0.0);
    SocialWelfareOptions probe_options = options;
    probe_options.simplex.warm_start = base.basis;
    FlowSolution sol = solve_social_welfare(probe, probe_options);
    if (!sol.optimal()) {
      return Status::internal("probe_node_prices: probe LP failed at hub " +
                              net.node(n).name);
    }
    price[static_cast<std::size_t>(n)] = (sol.welfare - base.welfare) / delta;
  }
  return price;
}

AllocationResult allocate_profits(const Network& net,
                                  std::span<const int> owners,
                                  int num_actors,
                                  const AllocationOptions& options) {
  GRIDSEC_TRACE_SPAN("flow.allocation.profits");
  AllocationResult out;
  SocialWelfareOptions welfare_options = options.welfare;
  if (!options.warm_start.empty()) {
    welfare_options.simplex.warm_start = options.warm_start;
  }
  FlowSolution base =
      options.model != nullptr
          ? solve_social_welfare(net, *options.model, welfare_options)
          : solve_social_welfare(net, welfare_options);
  out.status = base.status;
  out.recovered = base.recovered;
  if (!base.optimal()) return out;
  out.welfare = base.welfare;

  if (options.kind == AllocatorKind::kLmp) {
    out.basis = std::move(base.basis);
    out.node_price = std::move(base.node_price);
  } else {
    // The probe solves below warm-start from base.basis, so it must stay
    // put; copy rather than move.
    out.basis = base.basis;
    auto probed =
        probe_node_prices(net, base, options.probe_fraction, options.welfare);
    if (!probed.is_ok()) {
      // Preserve the failure class so callers can distinguish a wall-clock
      // or numerical bail-out from plain budget exhaustion.
      switch (probed.status().code()) {
        case ErrorCode::kTimeLimit:
          out.status = lp::SolveStatus::kTimeLimit;
          break;
        case ErrorCode::kNumericalError:
          out.status = lp::SolveStatus::kNumericalError;
          break;
        default:
          out.status = lp::SolveStatus::kIterationLimit;
      }
      return out;
    }
    out.node_price = std::move(probed.value());
  }

  out.edge_profit = edge_profits_from_prices(net, base.flow, out.node_price);
  out.flow = std::move(base.flow);

  if (!owners.empty()) {
    GRIDSEC_ASSERT(owners.size() == static_cast<std::size_t>(net.num_edges()));
    GRIDSEC_ASSERT(num_actors > 0);
    out.actor_profit.assign(static_cast<std::size_t>(num_actors), 0.0);
    for (std::size_t e = 0; e < owners.size(); ++e) {
      const int a = owners[e];
      GRIDSEC_ASSERT_MSG(a >= 0 && a < num_actors, "owner out of range");
      out.actor_profit[static_cast<std::size_t>(a)] += out.edge_profit[e];
    }
  }
  return out;
}

}  // namespace gridsec::flow
