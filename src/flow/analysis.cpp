#include "gridsec/flow/analysis.hpp"

#include <limits>
#include <queue>

#include "gridsec/lp/simplex.hpp"

namespace gridsec::flow {
namespace {

constexpr int kUnreached = std::numeric_limits<int>::max();

/// Directed BFS over edges from `start`; fills hop distance and the number
/// of distinct shortest paths per node.
void bfs_forward(const Network& net, NodeId start, std::vector<int>& dist,
                 std::vector<double>& paths) {
  dist.assign(static_cast<std::size_t>(net.num_nodes()), kUnreached);
  paths.assign(static_cast<std::size_t>(net.num_nodes()), 0.0);
  dist[static_cast<std::size_t>(start)] = 0;
  paths[static_cast<std::size_t>(start)] = 1.0;
  std::queue<NodeId> queue;
  queue.push(start);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (EdgeId e : net.out_edges(u)) {
      const NodeId v = net.edge(e).to;
      const auto us = static_cast<std::size_t>(u);
      const auto vs = static_cast<std::size_t>(v);
      if (dist[vs] == kUnreached) {
        dist[vs] = dist[us] + 1;
        queue.push(v);
      }
      if (dist[vs] == dist[us] + 1) paths[vs] += paths[us];
    }
  }
}

/// Reverse-direction BFS (paths *to* `target` along edge directions).
void bfs_backward(const Network& net, NodeId target, std::vector<int>& dist,
                  std::vector<double>& paths) {
  dist.assign(static_cast<std::size_t>(net.num_nodes()), kUnreached);
  paths.assign(static_cast<std::size_t>(net.num_nodes()), 0.0);
  dist[static_cast<std::size_t>(target)] = 0;
  paths[static_cast<std::size_t>(target)] = 1.0;
  std::queue<NodeId> queue;
  queue.push(target);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (EdgeId e : net.in_edges(v)) {
      const NodeId u = net.edge(e).from;
      const auto us = static_cast<std::size_t>(u);
      const auto vs = static_cast<std::size_t>(v);
      if (dist[us] == kUnreached) {
        dist[us] = dist[vs] + 1;
        queue.push(u);
      }
      if (dist[us] == dist[vs] + 1) paths[us] += paths[vs];
    }
  }
}

}  // namespace

std::vector<double> source_sink_betweenness(const Network& net) {
  std::vector<double> score(static_cast<std::size_t>(net.num_edges()), 0.0);
  std::vector<NodeId> sources, sinks;
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind == NodeKind::kSource) sources.push_back(n);
    if (net.node(n).kind == NodeKind::kSink) sinks.push_back(n);
  }
  std::vector<int> dist_s, dist_t;
  std::vector<double> paths_s, paths_t;
  for (NodeId s : sources) {
    bfs_forward(net, s, dist_s, paths_s);
    for (NodeId t : sinks) {
      const auto ts = static_cast<std::size_t>(t);
      if (dist_s[ts] == kUnreached) continue;
      bfs_backward(net, t, dist_t, paths_t);
      const int d_total = dist_s[ts];
      const double total_paths = paths_s[ts];
      if (total_paths <= 0.0) continue;
      for (int e = 0; e < net.num_edges(); ++e) {
        const Edge& edge = net.edge(e);
        const auto us = static_cast<std::size_t>(edge.from);
        const auto vs = static_cast<std::size_t>(edge.to);
        if (dist_s[us] == kUnreached || dist_t[vs] == kUnreached) continue;
        if (dist_s[us] + 1 + dist_t[vs] == d_total) {
          score[static_cast<std::size_t>(e)] +=
              paths_s[us] * paths_t[vs] / total_paths;
        }
      }
    }
  }
  return score;
}

bool all_consumers_reachable(const Network& net) {
  // Multi-source BFS from every source terminal.
  std::vector<bool> reached(static_cast<std::size_t>(net.num_nodes()), false);
  std::queue<NodeId> queue;
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind == NodeKind::kSource) {
      reached[static_cast<std::size_t>(n)] = true;
      queue.push(n);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (EdgeId e : net.out_edges(u)) {
      const NodeId v = net.edge(e).to;
      if (!reached[static_cast<std::size_t>(v)]) {
        reached[static_cast<std::size_t>(v)] = true;
        queue.push(v);
      }
    }
  }
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind == NodeKind::kSink &&
        !reached[static_cast<std::size_t>(n)]) {
      return false;
    }
  }
  return true;
}

StatusOr<double> max_deliverable(const Network& net, EdgeId demand_edge) {
  if (demand_edge < 0 || demand_edge >= net.num_edges() ||
      net.edge(demand_edge).kind != EdgeKind::kDemand) {
    return Status::invalid_argument("max_deliverable: not a demand edge");
  }
  // Re-cost: the chosen demand edge pays 1 per delivered unit, everything
  // else is free, and competing demand edges are closed.
  Network probe = net;
  for (int e = 0; e < probe.num_edges(); ++e) {
    probe.set_cost(e, e == demand_edge ? -1.0 : 0.0);
    if (e != demand_edge && probe.edge(e).kind == EdgeKind::kDemand) {
      probe.set_capacity(e, 0.0);
    }
  }
  FlowSolution sol = solve_social_welfare(probe);
  if (!sol.optimal()) {
    return Status::internal("max_deliverable: LP failed");
  }
  return sol.flow[static_cast<std::size_t>(demand_edge)];
}

}  // namespace gridsec::flow
