#include "gridsec/flow/series.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gridsec::flow {

SeriesShareResult negotiate_series_profits(
    const SeriesChain& chain, const SeriesNegotiationOptions& options) {
  SeriesShareResult out;
  const std::size_t n = chain.segment_cost.size();
  GRIDSEC_ASSERT(n > 0);
  const double transport =
      std::accumulate(chain.segment_cost.begin(), chain.segment_cost.end(),
                      0.0);
  const double margin = chain.consumer_price - chain.supply_cost - transport;
  out.chain_margin = margin;
  out.markup.assign(n, 0.0);
  out.actor_profit.assign(n, 0.0);
  if (margin <= 0.0 || chain.flow <= 0.0) {
    out.converged = true;  // nothing to divide
    return out;
  }

  // Lock-step growth with back-off: each actor tries to raise its markup by
  // `step`; a raise that would make the chain uncompetitive (Σ m > M — the
  // flow would be perturbed) is rejected, and once nobody can grow, the step
  // halves (the "reduce until flow is restored" refinement). From zero
  // markups this terminates at the equal split within tolerance·M.
  // Grow / perturb / restore: the actor taking the smallest margin raises
  // its markup by the current step (it has the most competitive headroom).
  // If that pushes the delivered price past the consumer's willingness to
  // pay (Σ m > M — flow perturbed), the actor charging the most backs off
  // until the flow is restored. Each grow+restore pair shrinks the markup
  // spread by one step; once the spread is dissipated at a step level, the
  // step halves. Terminates at the equal split within tolerance·M.
  double total = 0.0;
  double step = margin * options.initial_step_fraction;
  const double final_step = margin * options.tolerance * 0.5;
  const double overshoot_tol = 1e-12 * margin;
  int iter = 0;
  while (step > final_step && iter < options.max_iterations) {
    // Enough sweeps at this step level to dissipate spread left over from
    // the previous (2x larger) level across all n actors.
    const int sweeps = 6 * static_cast<int>(n) + 8;
    for (int s = 0; s < sweeps && iter < options.max_iterations; ++s) {
      ++iter;
      const std::size_t lowest = static_cast<std::size_t>(
          std::min_element(out.markup.begin(), out.markup.end()) -
          out.markup.begin());
      out.markup[lowest] += step;
      total += step;
      while (total > margin + overshoot_tol) {
        const std::size_t highest = static_cast<std::size_t>(
            std::max_element(out.markup.begin(), out.markup.end()) -
            out.markup.begin());
        const double shed = std::min(step, out.markup[highest]);
        out.markup[highest] -= shed;
        total -= shed;
        if (shed <= 0.0) break;  // defensive: cannot restore further
      }
    }
    step *= 0.5;
  }
  out.iterations = iter;
  out.converged = step <= final_step;
  for (std::size_t i = 0; i < n; ++i) {
    out.actor_profit[i] = out.markup[i] * chain.flow;
  }
  return out;
}

StatusOr<SeriesChain> extract_series_chain(const Network& net,
                                           std::span<const int> owners,
                                           std::vector<int>* chain_actors) {
  if (owners.size() != static_cast<std::size_t>(net.num_edges())) {
    return Status::invalid_argument("extract_series_chain: owners size");
  }
  // Locate the unique supply and demand edges.
  EdgeId supply = -1, demand = -1;
  for (int e = 0; e < net.num_edges(); ++e) {
    switch (net.edge(e).kind) {
      case EdgeKind::kSupply:
        if (supply >= 0) {
          return Status::invalid_argument("chain needs exactly one supply");
        }
        supply = e;
        break;
      case EdgeKind::kDemand:
        if (demand >= 0) {
          return Status::invalid_argument("chain needs exactly one demand");
        }
        demand = e;
        break;
      default:
        break;
    }
  }
  if (supply < 0 || demand < 0) {
    return Status::invalid_argument("chain needs one supply and one demand");
  }

  // Walk hub-to-hub from the supply's head to the demand's tail.
  std::vector<EdgeId> path{supply};
  NodeId at = net.edge(supply).to;
  while (at != net.edge(demand).from) {
    EdgeId next = -1;
    for (EdgeId e : net.out_edges(at)) {
      if (net.edge(e).kind == EdgeKind::kTransmission ||
          net.edge(e).kind == EdgeKind::kConversion) {
        if (next >= 0) {
          return Status::invalid_argument("hub '" + net.node(at).name +
                                          "' branches; not a chain");
        }
        next = e;
      }
    }
    if (next < 0) {
      return Status::invalid_argument("chain breaks at hub '" +
                                      net.node(at).name + "'");
    }
    path.push_back(next);
    at = net.edge(next).to;
    if (path.size() > static_cast<std::size_t>(net.num_edges())) {
      return Status::invalid_argument("cycle detected; not a chain");
    }
  }
  path.push_back(demand);

  // Group consecutive path edges by owner.
  SeriesChain chain;
  chain.supply_cost = net.edge(supply).cost;
  chain.consumer_price = -net.edge(demand).cost;
  double flow_cap = net.edge(supply).capacity;
  std::vector<int> actors;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {  // interior segments
    const Edge& e = net.edge(path[i]);
    flow_cap = std::min(flow_cap, e.capacity);
    const int owner = owners[static_cast<std::size_t>(path[i])];
    if (actors.empty() || actors.back() != owner) {
      actors.push_back(owner);
      chain.segment_cost.push_back(0.0);
    }
    chain.segment_cost.back() += e.cost;
  }
  flow_cap = std::min(flow_cap, net.edge(demand).capacity);
  if (chain.segment_cost.empty()) {
    // Producer sells straight to the consumer: a single "segment" owned by
    // the supply edge's owner.
    actors.push_back(owners[static_cast<std::size_t>(supply)]);
    chain.segment_cost.push_back(0.0);
  }
  chain.flow = flow_cap;
  if (chain_actors != nullptr) *chain_actors = std::move(actors);
  return chain;
}

}  // namespace gridsec::flow
