#include "gridsec/flow/io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace gridsec::flow {
namespace {

/// Quotes a name if it contains whitespace (names in practice do not, but
/// the parser must never silently mis-tokenize).
std::string token(const std::string& name) {
  for (char c : name) {
    GRIDSEC_ASSERT_MSG(!std::isspace(static_cast<unsigned char>(c)),
                       "names must not contain whitespace");
  }
  return name;
}

}  // namespace

void write_network(std::ostream& os, const Network& net,
                   std::span<const int> owners) {
  GRIDSEC_ASSERT(owners.empty() ||
                 owners.size() == static_cast<std::size_t>(net.num_edges()));
  os.precision(17);  // exact double round-trip
  os << "# gridsec network: " << net.num_nodes() << " nodes, "
     << net.num_edges() << " edges\n";
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind == NodeKind::kHub) {
      os << "hub " << token(net.node(n).name) << '\n';
    }
  }
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    switch (edge.kind) {
      case EdgeKind::kSupply:
        os << "supply " << token(edge.name) << ' '
           << token(net.node(edge.to).name) << ' ' << edge.capacity << ' '
           << edge.cost << ' ' << edge.loss << '\n';
        break;
      case EdgeKind::kDemand:
        os << "demand " << token(edge.name) << ' '
           << token(net.node(edge.from).name) << ' ' << edge.capacity << ' '
           << -edge.cost << ' ' << edge.loss << '\n';
        break;
      case EdgeKind::kTransmission:
      case EdgeKind::kConversion:
        os << (edge.kind == EdgeKind::kTransmission ? "edge " : "conv ")
           << token(edge.name) << ' ' << token(net.node(edge.from).name)
           << ' ' << token(net.node(edge.to).name) << ' ' << edge.capacity
           << ' ' << edge.cost << ' ' << edge.loss << '\n';
        break;
    }
  }
  if (!owners.empty()) {
    for (int e = 0; e < net.num_edges(); ++e) {
      os << "owner " << token(net.edge(e).name) << ' '
         << owners[static_cast<std::size_t>(e)] << '\n';
    }
  }
}

std::string to_text(const Network& net, std::span<const int> owners) {
  std::ostringstream ss;
  write_network(ss, net, owners);
  return ss.str();
}

StatusOr<ParsedNetwork> parse_network(std::istream& is) {
  ParsedNetwork out;
  std::map<std::string, NodeId> hubs;
  std::map<std::string, int> owner_lines;  // edge name -> actor
  std::string line;
  int lineno = 0;

  const auto fail = [&lineno](const std::string& msg) {
    return Status::invalid_argument("line " + std::to_string(lineno) + ": " +
                                    msg);
  };

  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank

    if (kind == "hub") {
      std::string name;
      if (!(ls >> name)) return fail("hub needs a name");
      if (hubs.count(name) != 0) return fail("duplicate hub '" + name + "'");
      hubs[name] = out.network.add_hub(name);
    } else if (kind == "supply" || kind == "demand") {
      std::string name, hub;
      double capacity, price;
      double loss = 0.0;
      if (!(ls >> name >> hub >> capacity >> price)) {
        return fail(kind + " needs: name hub capacity price");
      }
      ls >> loss;  // optional
      auto it = hubs.find(hub);
      if (it == hubs.end()) return fail("unknown hub '" + hub + "'");
      if (capacity < 0.0) return fail("negative capacity");
      if (loss < 0.0 || loss >= 1.0) return fail("loss outside [0,1)");
      if (kind == "supply") {
        out.network.add_supply(name, it->second, capacity, price, loss);
      } else {
        out.network.add_demand(name, it->second, capacity, price, loss);
      }
    } else if (kind == "edge" || kind == "conv") {
      std::string name, from, to;
      double capacity, cost;
      double loss = 0.0;
      if (!(ls >> name >> from >> to >> capacity >> cost)) {
        return fail(kind + " needs: name from to capacity cost");
      }
      ls >> loss;
      auto fit = hubs.find(from);
      auto tit = hubs.find(to);
      if (fit == hubs.end()) return fail("unknown hub '" + from + "'");
      if (tit == hubs.end()) return fail("unknown hub '" + to + "'");
      if (fit->second == tit->second) return fail("self-loop edge");
      if (capacity < 0.0) return fail("negative capacity");
      if (loss < 0.0 || loss >= 1.0) return fail("loss outside [0,1)");
      out.network.add_edge(name,
                           kind == "edge" ? EdgeKind::kTransmission
                                          : EdgeKind::kConversion,
                           fit->second, tit->second, capacity, cost, loss);
    } else if (kind == "owner") {
      std::string edge;
      int actor;
      if (!(ls >> edge >> actor)) return fail("owner needs: edge actor");
      if (actor < 0) return fail("negative actor index");
      owner_lines[edge] = actor;
    } else {
      return fail("unknown declaration '" + kind + "'");
    }
  }

  if (!owner_lines.empty()) {
    out.owners.assign(static_cast<std::size_t>(out.network.num_edges()), -1);
    for (const auto& [edge, actor] : owner_lines) {
      auto id = out.network.find_edge(edge);
      if (!id.is_ok()) {
        return Status::invalid_argument("owner references unknown edge '" +
                                        edge + "'");
      }
      out.owners[static_cast<std::size_t>(id.value())] = actor;
    }
  }
  return out;
}

StatusOr<ParsedNetwork> parse_network_text(const std::string& text) {
  std::istringstream ss(text);
  return parse_network(ss);
}

Status write_network_file(const std::string& path, const Network& net,
                          std::span<const int> owners) {
  std::ofstream f(path);
  if (!f) return Status::invalid_argument("cannot open '" + path + "'");
  write_network(f, net, owners);
  return f.good() ? Status::ok()
                  : Status::internal("write failed for '" + path + "'");
}

StatusOr<ParsedNetwork> read_network_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::not_found("cannot open '" + path + "'");
  return parse_network(f);
}

}  // namespace gridsec::flow
