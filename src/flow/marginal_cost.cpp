#include "gridsec/flow/marginal_cost.hpp"

#include <algorithm>
#include <cmath>

namespace gridsec::flow {

StatusOr<std::vector<CapacityRent>> probe_capacity_rents(
    const Network& net, const FlowSolution& base,
    const CapacityProbeOptions& options) {
  if (!base.optimal()) {
    return Status::invalid_argument("probe_capacity_rents: base not optimal");
  }
  if (base.flow.size() != static_cast<std::size_t>(net.num_edges())) {
    return Status::invalid_argument("probe_capacity_rents: stale solution");
  }
  std::vector<CapacityRent> out(static_cast<std::size_t>(net.num_edges()));
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto es = static_cast<std::size_t>(e);
    const Edge& edge = net.edge(e);
    const double f = base.flow[es];
    out[es].saturated = f >= edge.capacity - 1e-7;
    if (f <= options.flow_tol) continue;  // the paper probes flowing edges
    const double delta = std::min(
        options.relative ? options.delta * edge.capacity : options.delta,
        edge.capacity);
    if (delta <= 0.0) continue;
    Network probe = net;
    probe.set_capacity(e, edge.capacity - delta);
    FlowSolution sol = solve_social_welfare(probe, options.welfare);
    if (!sol.optimal()) {
      return Status::internal("probe_capacity_rents: probe failed at " +
                              edge.name);
    }
    out[es].marginal_value = (base.welfare - sol.welfare) / delta;
  }
  return out;
}

}  // namespace gridsec::flow
