#include "gridsec/flow/multiperiod.hpp"

#include <string>

namespace gridsec::flow {
namespace {

double scaled_capacity(const Edge& e, const PeriodSpec& p) {
  switch (e.kind) {
    case EdgeKind::kSupply:
      return e.capacity * p.supply_scale;
    case EdgeKind::kDemand:
      return e.capacity * p.demand_scale;
    case EdgeKind::kTransmission:
    case EdgeKind::kConversion:
      return e.capacity;
  }
  return e.capacity;
}

}  // namespace

lp::Problem build_multi_period_lp(const Network& net,
                                  std::span<const PeriodSpec> periods,
                                  const RampSpec& ramp) {
  GRIDSEC_ASSERT(!periods.empty());
  lp::Problem p(lp::Objective::kMinimize);
  const int ne = net.num_edges();

  // Variable layout: flow[t * ne + e]. Objective weights by duration.
  for (std::size_t t = 0; t < periods.size(); ++t) {
    for (int e = 0; e < ne; ++e) {
      const Edge& edge = net.edge(e);
      p.add_variable(periods[t].name + "." + edge.name, 0.0,
                     scaled_capacity(edge, periods[t]),
                     edge.cost * periods[t].duration_hours);
    }
  }
  // Per-period lossy conservation.
  for (std::size_t t = 0; t < periods.size(); ++t) {
    const int base = static_cast<int>(t) * ne;
    for (int n = 0; n < net.num_nodes(); ++n) {
      if (net.node(n).kind != NodeKind::kHub) continue;
      lp::LinearExpr expr;
      for (EdgeId e : net.out_edges(n)) {
        expr.add(base + e, 1.0 / (1.0 - net.edge(e).loss));
      }
      for (EdgeId e : net.in_edges(n)) {
        expr.add(base + e, -1.0);
      }
      if (expr.empty()) continue;
      p.add_constraint("conserve." + periods[t].name + "." + net.node(n).name,
                       std::move(expr), lp::Sense::kEqual, 0.0);
    }
  }
  // Ramp coupling on supply edges between consecutive periods.
  if (ramp.limit_fraction < 1.0) {
    for (std::size_t t = 1; t < periods.size(); ++t) {
      const int prev = static_cast<int>(t - 1) * ne;
      const int cur = static_cast<int>(t) * ne;
      for (int e = 0; e < ne; ++e) {
        const Edge& edge = net.edge(e);
        if (edge.kind != EdgeKind::kSupply) continue;
        const double limit = ramp.limit_fraction * edge.capacity;
        p.add_constraint(
            "ramp_up." + periods[t].name + "." + edge.name,
            lp::LinearExpr().add(cur + e, 1.0).add(prev + e, -1.0),
            lp::Sense::kLessEqual, limit);
        p.add_constraint(
            "ramp_dn." + periods[t].name + "." + edge.name,
            lp::LinearExpr().add(cur + e, -1.0).add(prev + e, 1.0),
            lp::Sense::kLessEqual, limit);
      }
    }
  }
  return p;
}

MultiPeriodSolution solve_multi_period(const Network& net,
                                       std::span<const PeriodSpec> periods,
                                       const RampSpec& ramp,
                                       const SocialWelfareOptions& opt) {
  MultiPeriodSolution out;
  lp::Problem p = build_multi_period_lp(net, periods, ramp);
  lp::SimplexSolver solver(opt.simplex);
  lp::Solution sol = solver.solve(p);
  out.status = sol.status;
  if (!sol.optimal()) return out;

  const int ne = net.num_edges();
  out.total_welfare = -sol.objective;
  out.period_welfare.resize(periods.size(), 0.0);
  out.period_flow.resize(periods.size());
  for (std::size_t t = 0; t < periods.size(); ++t) {
    auto& flows = out.period_flow[t];
    flows.resize(static_cast<std::size_t>(ne));
    double cost = 0.0;
    for (int e = 0; e < ne; ++e) {
      const double f =
          sol.x[t * static_cast<std::size_t>(ne) + static_cast<std::size_t>(e)];
      flows[static_cast<std::size_t>(e)] = f;
      cost += net.edge(e).cost * periods[t].duration_hours * f;
    }
    out.period_welfare[t] = -cost;
  }
  return out;
}

std::vector<PeriodSpec> daily_periods() {
  return {
      {"night", 8.0, 0.6, 1.0},
      {"morning", 4.0, 0.9, 1.0},
      {"peak", 6.0, 1.0, 1.0},
      {"evening", 6.0, 0.85, 1.0},
  };
}

}  // namespace gridsec::flow
