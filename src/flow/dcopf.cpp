#include "gridsec/flow/dcopf.hpp"

#include "gridsec/lp/simplex.hpp"

namespace gridsec::flow {
namespace {

constexpr double kThetaBound = 1e5;  // effectively free angles

/// Shared LP construction; `with_angles` toggles the B-θ coupling.
DcSolution solve_impl(const DcNetwork& net, bool with_angles) {
  DcSolution out;
  GRIDSEC_ASSERT(net.num_buses() > 0);
  lp::Problem p(lp::Objective::kMinimize);

  const int nb = net.num_buses();
  const int nl = static_cast<int>(net.lines().size());
  const int ng = static_cast<int>(net.generators().size());
  const int nd = static_cast<int>(net.loads().size());

  // Variables: theta per bus (slack pinned), flow per line, g, d.
  std::vector<int> theta(static_cast<std::size_t>(nb), -1);
  if (with_angles) {
    for (int b = 0; b < nb; ++b) {
      const double bound = b == 0 ? 0.0 : kThetaBound;
      theta[static_cast<std::size_t>(b)] = p.add_variable(
          "theta." + net.buses()[static_cast<std::size_t>(b)], -bound, bound,
          0.0);
    }
  }
  std::vector<int> fvar(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    const DcLine& line = net.lines()[static_cast<std::size_t>(l)];
    GRIDSEC_ASSERT(line.from >= 0 && line.from < nb);
    GRIDSEC_ASSERT(line.to >= 0 && line.to < nb);
    fvar[static_cast<std::size_t>(l)] =
        p.add_variable("f." + line.name, -line.capacity, line.capacity, 0.0);
  }
  std::vector<int> gvar(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g) {
    const DcGenerator& gen = net.generators()[static_cast<std::size_t>(g)];
    GRIDSEC_ASSERT(gen.bus >= 0 && gen.bus < nb);
    gvar[static_cast<std::size_t>(g)] =
        p.add_variable("g." + gen.name, 0.0, gen.capacity, gen.cost);
  }
  std::vector<int> dvar(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    const DcLoad& load = net.loads()[static_cast<std::size_t>(d)];
    GRIDSEC_ASSERT(load.bus >= 0 && load.bus < nb);
    dvar[static_cast<std::size_t>(d)] =
        p.add_variable("d." + load.name, 0.0, load.demand, -load.price);
  }

  // Kirchhoff voltage coupling: f - B*theta_from + B*theta_to = 0.
  if (with_angles) {
    for (int l = 0; l < nl; ++l) {
      const DcLine& line = net.lines()[static_cast<std::size_t>(l)];
      p.add_constraint(
          "kvl." + line.name,
          lp::LinearExpr()
              .add(fvar[static_cast<std::size_t>(l)], 1.0)
              .add(theta[static_cast<std::size_t>(line.from)],
                   -line.susceptance)
              .add(theta[static_cast<std::size_t>(line.to)],
                   line.susceptance),
          lp::Sense::kEqual, 0.0);
    }
  }

  // Nodal balance rows (recorded order for LMP extraction).
  std::vector<int> balance_row(static_cast<std::size_t>(nb), -1);
  for (int b = 0; b < nb; ++b) {
    lp::LinearExpr expr;
    for (int g = 0; g < ng; ++g) {
      if (net.generators()[static_cast<std::size_t>(g)].bus == b) {
        expr.add(gvar[static_cast<std::size_t>(g)], 1.0);
      }
    }
    for (int d = 0; d < nd; ++d) {
      if (net.loads()[static_cast<std::size_t>(d)].bus == b) {
        expr.add(dvar[static_cast<std::size_t>(d)], -1.0);
      }
    }
    for (int l = 0; l < nl; ++l) {
      const DcLine& line = net.lines()[static_cast<std::size_t>(l)];
      if (line.from == b) expr.add(fvar[static_cast<std::size_t>(l)], -1.0);
      if (line.to == b) expr.add(fvar[static_cast<std::size_t>(l)], 1.0);
    }
    if (expr.empty()) continue;
    balance_row[static_cast<std::size_t>(b)] = p.add_constraint(
        "balance." + net.buses()[static_cast<std::size_t>(b)],
        std::move(expr), lp::Sense::kEqual, 0.0);
  }

  lp::Solution sol = lp::solve_lp(p);
  out.status = sol.status;
  if (!sol.optimal()) return out;
  out.welfare = -sol.objective;
  out.theta.assign(static_cast<std::size_t>(nb), 0.0);
  if (with_angles) {
    for (int b = 0; b < nb; ++b) {
      out.theta[static_cast<std::size_t>(b)] =
          sol.x[static_cast<std::size_t>(theta[static_cast<std::size_t>(b)])];
    }
  }
  out.line_flow.resize(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    out.line_flow[static_cast<std::size_t>(l)] =
        sol.x[static_cast<std::size_t>(fvar[static_cast<std::size_t>(l)])];
  }
  out.generation.resize(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g) {
    out.generation[static_cast<std::size_t>(g)] =
        sol.x[static_cast<std::size_t>(gvar[static_cast<std::size_t>(g)])];
  }
  out.served.resize(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    out.served[static_cast<std::size_t>(d)] =
        sol.x[static_cast<std::size_t>(dvar[static_cast<std::size_t>(d)])];
  }
  out.bus_price.assign(static_cast<std::size_t>(nb), 0.0);
  for (int b = 0; b < nb; ++b) {
    const int row = balance_row[static_cast<std::size_t>(b)];
    if (row >= 0 && static_cast<std::size_t>(row) < sol.duals.size()) {
      // Balance is gen − load − net_outflow = 0. Raising the rhs by one
      // forces one surplus unit at the bus with nowhere to go — i.e. one
      // extra unit must be produced for (free) consumption there. The
      // min-cost objective rises by exactly the marginal cost of energy at
      // the bus, so the dual IS the LMP.
      out.bus_price[static_cast<std::size_t>(b)] =
          sol.duals[static_cast<std::size_t>(row)];
    }
  }
  return out;
}

}  // namespace

int DcNetwork::add_bus(std::string name) {
  buses_.push_back(std::move(name));
  return num_buses() - 1;
}

int DcNetwork::add_line(std::string name, int from, int to,
                        double susceptance, double capacity) {
  GRIDSEC_ASSERT(from >= 0 && from < num_buses());
  GRIDSEC_ASSERT(to >= 0 && to < num_buses());
  GRIDSEC_ASSERT(from != to);
  GRIDSEC_ASSERT(susceptance > 0.0);
  GRIDSEC_ASSERT(capacity >= 0.0);
  lines_.push_back({std::move(name), from, to, susceptance, capacity});
  return static_cast<int>(lines_.size()) - 1;
}

int DcNetwork::add_generator(std::string name, int bus, double capacity,
                             double cost) {
  GRIDSEC_ASSERT(bus >= 0 && bus < num_buses());
  GRIDSEC_ASSERT(capacity >= 0.0);
  generators_.push_back({std::move(name), bus, capacity, cost});
  return static_cast<int>(generators_.size()) - 1;
}

int DcNetwork::add_load(std::string name, int bus, double demand,
                        double price) {
  GRIDSEC_ASSERT(bus >= 0 && bus < num_buses());
  GRIDSEC_ASSERT(demand >= 0.0);
  loads_.push_back({std::move(name), bus, demand, price});
  return static_cast<int>(loads_.size()) - 1;
}

DcSolution solve_dc_opf(const DcNetwork& net) {
  return solve_impl(net, /*with_angles=*/true);
}

DcSolution solve_transport_relaxation(const DcNetwork& net) {
  return solve_impl(net, /*with_angles=*/false);
}

}  // namespace gridsec::flow
