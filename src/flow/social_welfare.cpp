#include "gridsec/flow/social_welfare.hpp"

#include <cmath>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"

namespace gridsec::flow {

lp::Problem build_social_welfare_lp(const Network& net) {
  lp::Problem p(lp::Objective::kMinimize);
  // One variable per edge: delivered flow in [0, capacity] (Eq 2) with the
  // per-unit cost a(u,v) as objective coefficient (Eq 1).
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    p.add_variable(edge.name, 0.0, edge.capacity, edge.cost);
  }
  // Lossy conservation at each hub (Eq 7): what the hub sends (grossed up
  // by each outgoing edge's loss) equals what it receives.
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != NodeKind::kHub) continue;
    lp::LinearExpr expr;
    for (EdgeId e : net.out_edges(n)) {
      expr.add(e, 1.0 / (1.0 - net.edge(e).loss));
    }
    for (EdgeId e : net.in_edges(n)) {
      expr.add(e, -1.0);
    }
    if (expr.empty()) continue;  // isolated hub
    p.add_constraint("conserve." + net.node(n).name, std::move(expr),
                     lp::Sense::kEqual, 0.0);
  }
  return p;
}

FlowSolution solve_social_welfare(const Network& net,
                                  const SocialWelfareOptions& options) {
  GRIDSEC_TRACE_SPAN("flow.social_welfare.solve");
  static obs::Counter& c_solves =
      obs::default_registry().counter("flow.social_welfare.solves");
  c_solves.add();
  // Guardrail: perturbations may have driven edge data out of domain
  // (negative capacity, NaN cost, loss >= 1). Building the LP from such
  // data would trip Problem's bound invariants, so gate here and report a
  // typed verdict instead.
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    if (!std::isfinite(edge.cost) || std::isnan(edge.capacity) ||
        edge.capacity < 0.0 || !(edge.loss >= 0.0 && edge.loss < 1.0)) {
      static obs::Counter& c_bad = obs::default_registry().counter(
          "flow.social_welfare.invalid_data");
      c_bad.add();
      FlowSolution bad;
      bad.status = lp::SolveStatus::kNumericalError;
      return bad;
    }
  }
  lp::Problem p = build_social_welfare_lp(net);
  lp::SimplexSolver solver(options.simplex);
  lp::Solution lp_sol = solver.solve(p);

  FlowSolution out;
  out.status = lp_sol.status;
  out.recovered = !lp_sol.recovery_trail.empty();
  if (!lp_sol.optimal()) return out;

  out.welfare = -lp_sol.objective;  // min cost -> max welfare
  out.flow = std::move(lp_sol.x);

  // Map conservation-row duals back onto nodes. Rows were added in node
  // order for hubs with incident edges; replay the same walk.
  out.node_price.assign(static_cast<std::size_t>(net.num_nodes()), 0.0);
  int row = 0;
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != NodeKind::kHub) continue;
    if (net.out_edges(n).empty() && net.in_edges(n).empty()) continue;
    if (row < static_cast<int>(lp_sol.duals.size())) {
      // Dual of "outflow - inflow = 0": raising rhs by one unit forces one
      // unit of net withdrawal at the hub; the dual is thus the marginal
      // system cost of serving load there — the LMP (positive sign because
      // the internal problem is a minimization).
      out.node_price[static_cast<std::size_t>(n)] =
          -lp_sol.duals[static_cast<std::size_t>(row)];
    }
    ++row;
  }
  out.edge_reduced_cost = std::move(lp_sol.reduced_costs);
  out.basis = std::move(lp_sol.basis);
  return out;
}

}  // namespace gridsec::flow
