#include "gridsec/flow/social_welfare.hpp"

#include <cmath>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"

namespace gridsec::flow {

namespace {

// Guardrail: perturbations may have driven edge data out of domain
// (negative capacity, NaN cost, loss >= 1). Building the LP from such
// data would trip Problem's bound invariants, so gate here and report a
// typed verdict instead.
bool edge_data_valid(const Network& net) {
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    if (!std::isfinite(edge.cost) || std::isnan(edge.capacity) ||
        edge.capacity < 0.0 || !(edge.loss >= 0.0 && edge.loss < 1.0)) {
      static obs::Counter& c_bad = obs::default_registry().counter(
          "flow.social_welfare.invalid_data");
      c_bad.add();
      return false;
    }
  }
  return true;
}

// Maps the LP answer back into flow terms (shared by the one-shot and the
// model-reusing entry points, which must stay result-identical).
FlowSolution finish_solution(const Network& net, lp::Solution&& lp_sol) {
  FlowSolution out;
  out.status = lp_sol.status;
  out.recovered = !lp_sol.recovery_trail.empty();
  if (!lp_sol.optimal()) return out;

  out.welfare = -lp_sol.objective;  // min cost -> max welfare
  out.flow = std::move(lp_sol.x);

  // Map conservation-row duals back onto nodes. Rows were added in node
  // order for hubs with incident edges; replay the same walk.
  out.node_price.assign(static_cast<std::size_t>(net.num_nodes()), 0.0);
  int row = 0;
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != NodeKind::kHub) continue;
    if (net.out_edges(n).empty() && net.in_edges(n).empty()) continue;
    if (row < static_cast<int>(lp_sol.duals.size())) {
      // Dual of "outflow - inflow = 0": raising rhs by one unit forces one
      // unit of net withdrawal at the hub; the dual is thus the marginal
      // system cost of serving load there — the LMP (positive sign because
      // the internal problem is a minimization).
      out.node_price[static_cast<std::size_t>(n)] =
          -lp_sol.duals[static_cast<std::size_t>(row)];
    }
    ++row;
  }
  out.edge_reduced_cost = std::move(lp_sol.reduced_costs);
  out.basis = std::move(lp_sol.basis);
  return out;
}

obs::Counter& solves_counter() {
  static obs::Counter& c =
      obs::default_registry().counter("flow.social_welfare.solves");
  return c;
}

}  // namespace

lp::Problem build_social_welfare_lp(const Network& net) {
  lp::Problem p(lp::Objective::kMinimize);
  // One variable per edge: delivered flow in [0, capacity] (Eq 2) with the
  // per-unit cost a(u,v) as objective coefficient (Eq 1).
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    p.add_variable(edge.name, 0.0, edge.capacity, edge.cost);
  }
  // Lossy conservation at each hub (Eq 7): what the hub sends (grossed up
  // by each outgoing edge's loss) equals what it receives.
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != NodeKind::kHub) continue;
    lp::LinearExpr expr;
    for (EdgeId e : net.out_edges(n)) {
      expr.add(e, 1.0 / (1.0 - net.edge(e).loss));
    }
    for (EdgeId e : net.in_edges(n)) {
      expr.add(e, -1.0);
    }
    if (expr.empty()) continue;  // isolated hub
    p.add_constraint("conserve." + net.node(n).name, std::move(expr),
                     lp::Sense::kEqual, 0.0);
  }
  return p;
}

bool SocialWelfareModel::topology_matches(const Network& net) const {
  if (rebuilds_ == 0) return false;
  const auto ne = static_cast<std::size_t>(net.num_edges());
  const auto nn = static_cast<std::size_t>(net.num_nodes());
  if (edge_from_.size() != ne || node_is_hub_.size() != nn) return false;
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto es = static_cast<std::size_t>(e);
    const Edge& edge = net.edge(e);
    if (edge.from != edge_from_[es] || edge.to != edge_to_[es]) return false;
    // Variable names mirror edge names; a rename means dumps/audits of the
    // cached Problem would lie, so treat it as a topology change.
    if (edge.name != problem_.variable(e).name) return false;
  }
  for (int n = 0; n < net.num_nodes(); ++n) {
    const bool hub = net.node(n).kind == NodeKind::kHub;
    if (hub != (node_is_hub_[static_cast<std::size_t>(n)] != 0)) return false;
  }
  return true;
}

void SocialWelfareModel::refresh(const Network& net) {
  for (int e = 0; e < net.num_edges(); ++e) {
    const Edge& edge = net.edge(e);
    problem_.set_bounds(e, 0.0, edge.capacity);
    problem_.set_objective_coef(e, edge.cost);
  }
  // Replay build_social_welfare_lp's row walk. Only the out-edge
  // coefficients (1/(1-loss), never zero) carry mutable data; in-edge
  // terms are the constant -1 and the rhs is the constant 0.
  int row = 0;
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != NodeKind::kHub) continue;
    const auto& out = net.out_edges(n);
    if (out.empty() && net.in_edges(n).empty()) continue;  // isolated hub
    for (std::size_t k = 0; k < out.size(); ++k) {
      problem_.set_constraint_coef(
          row, static_cast<int>(k),
          1.0 / (1.0 - net.edge(out[k]).loss));
    }
    ++row;
  }
}

void SocialWelfareModel::sync(const Network& net) {
  if (topology_matches(net)) {
    refresh(net);
    return;
  }
  problem_ = build_social_welfare_lp(net);
  ++rebuilds_;
  const auto ne = static_cast<std::size_t>(net.num_edges());
  const auto nn = static_cast<std::size_t>(net.num_nodes());
  edge_from_.resize(ne);
  edge_to_.resize(ne);
  node_is_hub_.resize(nn);
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto es = static_cast<std::size_t>(e);
    edge_from_[es] = net.edge(e).from;
    edge_to_[es] = net.edge(e).to;
  }
  for (int n = 0; n < net.num_nodes(); ++n) {
    node_is_hub_[static_cast<std::size_t>(n)] =
        net.node(n).kind == NodeKind::kHub ? 1 : 0;
  }
}

FlowSolution solve_social_welfare(const Network& net,
                                  const SocialWelfareOptions& options) {
  GRIDSEC_TRACE_SPAN("flow.social_welfare.solve");
  solves_counter().add();
  if (!edge_data_valid(net)) {
    FlowSolution bad;
    bad.status = lp::SolveStatus::kNumericalError;
    return bad;
  }
  lp::Problem p = build_social_welfare_lp(net);
  return finish_solution(net, lp::solve_lp(p, options.simplex));
}

FlowSolution solve_social_welfare(const Network& net,
                                  SocialWelfareModel& model,
                                  const SocialWelfareOptions& options) {
  GRIDSEC_TRACE_SPAN("flow.social_welfare.solve");
  solves_counter().add();
  if (!edge_data_valid(net)) {
    FlowSolution bad;
    bad.status = lp::SolveStatus::kNumericalError;
    return bad;
  }
  model.sync(net);
  return finish_solution(net, lp::solve_lp(model.problem(), options.simplex));
}

}  // namespace gridsec::flow
