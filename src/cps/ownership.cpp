#include "gridsec/cps/ownership.hpp"

#include <algorithm>

namespace gridsec::cps {

Ownership::Ownership(std::vector<int> owners, int num_actors)
    : owners_(std::move(owners)), num_actors_(num_actors) {
  GRIDSEC_ASSERT(num_actors_ > 0);
  for (int o : owners_) {
    GRIDSEC_ASSERT_MSG(o >= 0 && o < num_actors_, "owner out of range");
  }
}

Ownership Ownership::random(int num_edges, int num_actors, Rng& rng) {
  GRIDSEC_ASSERT(num_edges >= 0 && num_actors > 0);
  std::vector<int> owners(static_cast<std::size_t>(num_edges));
  for (auto& o : owners) {
    o = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(num_actors)));
  }
  return Ownership(std::move(owners), num_actors);
}

Ownership Ownership::monolithic(int num_edges) {
  return Ownership(std::vector<int>(static_cast<std::size_t>(num_edges), 0),
                   1);
}

std::vector<flow::EdgeId> Ownership::assets_of(int actor) const {
  std::vector<flow::EdgeId> out;
  for (std::size_t e = 0; e < owners_.size(); ++e) {
    if (owners_[e] == actor) out.push_back(static_cast<flow::EdgeId>(e));
  }
  return out;
}

int Ownership::active_actors() const {
  std::vector<bool> seen(static_cast<std::size_t>(num_actors_), false);
  int count = 0;
  for (int o : owners_) {
    if (!seen[static_cast<std::size_t>(o)]) {
      seen[static_cast<std::size_t>(o)] = true;
      ++count;
    }
  }
  return count;
}

}  // namespace gridsec::cps
