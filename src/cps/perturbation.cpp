#include "gridsec/cps/perturbation.hpp"

#include <algorithm>
#include <cmath>

namespace gridsec::cps {

void apply_attack(flow::Network& net, const Attack& attack) {
  GRIDSEC_ASSERT(attack.target >= 0 && attack.target < net.num_edges());
  const flow::Edge& e = net.edge(attack.target);
  switch (attack.type) {
    case AttackType::kOutage:
      net.set_capacity(attack.target, 0.0);
      break;
    case AttackType::kCapacityScale: {
      const double frac = std::clamp(attack.magnitude, 0.0, 1.0);
      net.set_capacity(attack.target, e.capacity * (1.0 - frac));
      break;
    }
    case AttackType::kLossIncrease:
      net.set_loss(attack.target,
                   std::clamp(e.loss + attack.magnitude, 0.0, 0.95));
      break;
    case AttackType::kCostShift:
      net.set_cost(attack.target, e.cost + attack.magnitude);
      break;
  }
}

flow::Network attacked_network(const flow::Network& net,
                               std::span<const Attack> attacks) {
  flow::Network out = net;
  for (const Attack& a : attacks) apply_attack(out, a);
  return out;
}

flow::Network perturb_knowledge(const flow::Network& net,
                                const NoiseSpec& spec, Rng& rng) {
  GRIDSEC_ASSERT(spec.sigma >= 0.0);
  flow::Network out = net;
  if (spec.sigma == 0.0) return out;
  const auto draw = [&](double x) {
    const double stddev =
        spec.mode == NoiseMode::kRelative ? spec.sigma * std::fabs(x)
                                          : spec.sigma;
    return rng.normal(x, stddev);
  };
  for (int e = 0; e < out.num_edges(); ++e) {
    const flow::Edge& edge = out.edge(e);
    if (spec.perturb_capacity) {
      out.set_capacity(e, std::max(0.0, draw(edge.capacity)));
    }
    if (spec.perturb_cost) {
      out.set_cost(e, draw(edge.cost));
    }
    if (spec.perturb_loss) {
      out.set_loss(e, std::clamp(draw(edge.loss), 0.0, 0.95));
    }
  }
  return out;
}

}  // namespace gridsec::cps
