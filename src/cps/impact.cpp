#include "gridsec/cps/impact.hpp"

#include <algorithm>
#include <ostream>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "gridsec/obs/trace.hpp"

namespace gridsec::cps {

ImpactMatrix::ImpactMatrix(int num_actors, int num_targets)
    : num_actors_(num_actors),
      num_targets_(num_targets),
      values_(static_cast<std::size_t>(num_actors) *
                  static_cast<std::size_t>(num_targets),
              0.0),
      system_impact_(static_cast<std::size_t>(num_targets), 0.0) {
  GRIDSEC_ASSERT(num_actors > 0 && num_targets >= 0);
}

double ImpactMatrix::total_gain(int target) const {
  double gain = 0.0;
  for (int a = 0; a < num_actors_; ++a) {
    gain += std::max(at(a, target), 0.0);
  }
  return gain;
}

double ImpactMatrix::total_loss(int target) const {
  double loss = 0.0;
  for (int a = 0; a < num_actors_; ++a) {
    loss += std::min(at(a, target), 0.0);
  }
  return loss;
}

double ImpactMatrix::aggregate_gain() const {
  double gain = 0.0;
  for (int t = 0; t < num_targets_; ++t) gain += total_gain(t);
  return gain;
}

double ImpactMatrix::aggregate_loss() const {
  double loss = 0.0;
  for (int t = 0; t < num_targets_; ++t) loss += total_loss(t);
  return loss;
}

StatusOr<ImpactResult> compute_impact_matrix(const flow::Network& net,
                                             const Ownership& ownership,
                                             const ImpactOptions& options) {
  GRIDSEC_TRACE_SPAN("cps.impact.matrix");
  static obs::Counter& c_computes =
      obs::default_registry().counter("cps.impact.matrix_computes");
  // Targets whose attacked re-solve only succeeded because the
  // numerical-recovery ladder engaged: the matrix entry is certified, but
  // a sweep producing many of these is running close to the edge.
  static obs::Counter& c_recovered =
      obs::default_registry().counter("cps.impact.recovered_targets");
  c_computes.add();
  if (ownership.num_assets() != net.num_edges()) {
    return Status::invalid_argument(
        "compute_impact_matrix: ownership size != edge count");
  }
  const int n_actors = ownership.num_actors();
  const int n_targets = net.num_edges();

  flow::AllocationOptions alloc = options.allocation;
  alloc.warm_start = options.warm_start;
  // Every solve in this sweep — the base model and each single-edge attack
  // scenario — shares one topology, so one welfare model serves them all:
  // built once at the base solve, refreshed in place per target.
  flow::SocialWelfareModel welfare_model;
  if (alloc.model == nullptr) alloc.model = &welfare_model;
  flow::AllocationResult base = [&] {
    GRIDSEC_TRACE_SPAN("cps.impact.base_solve");
    return flow::allocate_profits(net, ownership.owners(), n_actors, alloc);
  }();
  if (!base.optimal()) {
    // Preserve the failure class (time limit / numerical / infeasible) so
    // robust sweeps can apply the right retry policy.
    return lp::to_status(base.status,
                         "compute_impact_matrix: base model not solvable");
  }

  ImpactResult out{ImpactMatrix(n_actors, n_targets), base.actor_profit,
                   base.welfare, 0, base.basis};

  // Every attacked scenario differs from the base model only in one
  // edge's data, so its LP re-solve warm-starts from the base basis.
  alloc.warm_start = base.basis;

  const bool capacity_attack = options.attack_type == AttackType::kOutage ||
                               options.attack_type ==
                                   AttackType::kCapacityScale;
  // One scratch network reused across targets: apply the attack, solve,
  // then restore the edge — instead of deep-copying the whole network per
  // target.
  flow::Network scratch = net;
  GRIDSEC_TRACE_SPAN("cps.impact.target_solves");
  obs::Progress progress("cps.impact.targets", n_targets);
  for (int t = 0; t < n_targets; ++t) {
    progress.advance();
    if (options.skip_unused_targets && capacity_attack &&
        base.flow[static_cast<std::size_t>(t)] <= 1e-12) {
      continue;  // zero column: capacity removal on an idle edge is inert
    }
    const flow::Edge saved = scratch.edge(t);
    apply_attack(scratch, {t, options.attack_type, options.attack_magnitude});
    flow::AllocationResult after =
        flow::allocate_profits(scratch, ownership.owners(), n_actors, alloc);
    scratch.set_capacity(t, saved.capacity);
    scratch.set_cost(t, saved.cost);
    scratch.set_loss(t, saved.loss);
    if (!after.optimal()) {
      ++out.failed_targets;
      continue;
    }
    if (after.recovered) c_recovered.add();
    for (int a = 0; a < n_actors; ++a) {
      out.matrix.set(a, t,
                     after.actor_profit[static_cast<std::size_t>(a)] -
                         base.actor_profit[static_cast<std::size_t>(a)]);
    }
    out.matrix.set_system_impact(t, after.welfare - base.welfare);
  }
  return out;
}

void write_impact_csv(std::ostream& os, const ImpactMatrix& im,
                      const flow::Network& net) {
  GRIDSEC_ASSERT(net.num_edges() == im.num_targets());
  os << "target,system";
  for (int a = 0; a < im.num_actors(); ++a) os << ",actor" << a;
  os << '\n';
  for (int t = 0; t < im.num_targets(); ++t) {
    os << net.edge(t).name << ',' << im.system_impact(t);
    for (int a = 0; a < im.num_actors(); ++a) os << ',' << im.at(a, t);
    os << '\n';
  }
}

}  // namespace gridsec::cps
