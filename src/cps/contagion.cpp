#include "gridsec/cps/contagion.hpp"

#include <cmath>
#include <queue>

namespace gridsec::cps {

std::vector<int> asset_hop_distances(const flow::Network& net) {
  const int ne = net.num_edges();
  // Adjacency: assets sharing any endpoint hub (terminals are private to
  // one edge, so only hub endpoints create adjacency).
  std::vector<std::vector<int>> adjacent(static_cast<std::size_t>(ne));
  for (int n = 0; n < net.num_nodes(); ++n) {
    if (net.node(n).kind != flow::NodeKind::kHub) continue;
    std::vector<int> incident;
    for (flow::EdgeId e : net.out_edges(n)) incident.push_back(e);
    for (flow::EdgeId e : net.in_edges(n)) incident.push_back(e);
    for (std::size_t i = 0; i < incident.size(); ++i) {
      for (std::size_t j = i + 1; j < incident.size(); ++j) {
        adjacent[static_cast<std::size_t>(incident[i])].push_back(
            incident[j]);
        adjacent[static_cast<std::size_t>(incident[j])].push_back(
            incident[i]);
      }
    }
  }
  std::vector<int> dist(static_cast<std::size_t>(ne) *
                            static_cast<std::size_t>(ne),
                        -1);
  for (int s = 0; s < ne; ++s) {
    const std::size_t base =
        static_cast<std::size_t>(s) * static_cast<std::size_t>(ne);
    dist[base + static_cast<std::size_t>(s)] = 0;
    std::queue<int> queue;
    queue.push(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int v : adjacent[static_cast<std::size_t>(u)]) {
        if (dist[base + static_cast<std::size_t>(v)] < 0) {
          dist[base + static_cast<std::size_t>(v)] =
              dist[base + static_cast<std::size_t>(u)] + 1;
          queue.push(v);
        }
      }
    }
  }
  return dist;
}

std::vector<double> contagion_expected_damage(const flow::Network& net,
                                              const ContagionModel& model) {
  GRIDSEC_ASSERT(model.transmission_prob >= 0.0 &&
                 model.transmission_prob <= 1.0);
  const int ne = net.num_edges();
  const std::vector<int> dist = asset_hop_distances(net);
  std::vector<double> damage(static_cast<std::size_t>(ne), 0.0);
  for (int t = 0; t < ne; ++t) {
    const std::size_t base =
        static_cast<std::size_t>(t) * static_cast<std::size_t>(ne);
    double total = 0.0;
    for (int e = 0; e < ne; ++e) {
      const int d = dist[base + static_cast<std::size_t>(e)];
      if (d < 0) continue;
      const double p = std::pow(model.transmission_prob, d);
      if (p < model.threshold) continue;
      total += p * net.edge(e).capacity;
    }
    damage[static_cast<std::size_t>(t)] = total;
  }
  return damage;
}

}  // namespace gridsec::cps
