#include "gridsec/cps/security.hpp"

#include <cmath>
#include <string>

#include "gridsec/lp/milp.hpp"

namespace gridsec::cps {

SecurityPosture::SecurityPosture(int num_targets, SecurityModel model)
    : layers_(static_cast<std::size_t>(num_targets), 0), model_(model) {
  GRIDSEC_ASSERT(num_targets >= 0);
  GRIDSEC_ASSERT(model.base_success_prob >= 0.0 &&
                 model.base_success_prob <= 1.0);
  GRIDSEC_ASSERT(model.success_decay_per_layer >= 0.0 &&
                 model.success_decay_per_layer <= 1.0);
}

int SecurityPosture::layers(int target) const {
  GRIDSEC_ASSERT(target >= 0 && target < num_targets());
  return layers_[static_cast<std::size_t>(target)];
}

void SecurityPosture::set_layers(int target, int layers) {
  GRIDSEC_ASSERT(target >= 0 && target < num_targets());
  GRIDSEC_ASSERT(layers >= 0);
  layers_[static_cast<std::size_t>(target)] = layers;
}

double SecurityPosture::success_prob(int target) const {
  return model_.base_success_prob *
         std::pow(model_.success_decay_per_layer, layers(target));
}

double SecurityPosture::attack_cost(int target) const {
  return model_.base_attack_cost +
         model_.attack_cost_per_layer * layers(target);
}

std::vector<double> SecurityPosture::success_prob_vector() const {
  std::vector<double> out(layers_.size());
  for (int t = 0; t < num_targets(); ++t) {
    out[static_cast<std::size_t>(t)] = success_prob(t);
  }
  return out;
}

std::vector<double> SecurityPosture::attack_cost_vector() const {
  std::vector<double> out(layers_.size());
  for (int t = 0; t < num_targets(); ++t) {
    out[static_cast<std::size_t>(t)] = attack_cost(t);
  }
  return out;
}

int LayeredDefensePlan::total_layers() const {
  int total = 0;
  for (int k : added_layers) total += k;
  return total;
}

LayeredDefensePlan defend_layered(const ImpactMatrix& im,
                                  const Ownership& ownership,
                                  const std::vector<double>& pa,
                                  const SecurityPosture& posture,
                                  const LayeredDefenseConfig& config) {
  const int nt = im.num_targets();
  const int na = im.num_actors();
  GRIDSEC_ASSERT(posture.num_targets() == nt);
  GRIDSEC_ASSERT(pa.size() == static_cast<std::size_t>(nt));
  GRIDSEC_ASSERT(config.budget.size() == static_cast<std::size_t>(na));
  GRIDSEC_ASSERT(ownership.num_assets() == nt);

  LayeredDefensePlan out;
  out.status = lp::SolveStatus::kOptimal;
  out.added_layers.assign(static_cast<std::size_t>(nt), 0);
  out.spending.assign(static_cast<std::size_t>(na), 0.0);

  const double decay = posture.model().success_decay_per_layer;

  // Decomposes per actor (each invests only in its own assets).
  for (int a = 0; a < na; ++a) {
    const auto assets = ownership.assets_of(a);
    if (assets.empty()) continue;

    lp::Problem p(lp::Objective::kMaximize);
    // Unit variable u_{t,j}: the j-th *additional* layer on target t.
    // Avoided expected loss of that unit: Pa·(−I)·Ps_current·decay^{j−1}·(1−decay).
    struct Unit {
      flow::EdgeId target;
      int var;
    };
    std::vector<Unit> units;
    lp::LinearExpr budget_row;
    for (flow::EdgeId t : assets) {
      const auto ts = static_cast<std::size_t>(t);
      const double harm = -im.at(a, t);  // positive when the actor is hurt
      if (harm <= 0.0) continue;
      const double ps_now = posture.success_prob(t);
      int prev = -1;
      for (int j = 1; j <= config.max_layers_per_target; ++j) {
        const double avoided =
            pa[ts] * harm * ps_now * std::pow(decay, j - 1) * (1.0 - decay);
        const int u = p.add_binary(
            "u" + std::to_string(t) + "_" + std::to_string(j),
            avoided - config.layer_cost);
        budget_row.add(u, config.layer_cost);
        // Ordering: the j-th layer only after the (j-1)-th.
        if (prev >= 0) {
          p.add_constraint("ord" + std::to_string(t) + "_" + std::to_string(j),
                           lp::LinearExpr().add(u, 1.0).add(prev, -1.0),
                           lp::Sense::kLessEqual, 0.0);
        }
        units.push_back({t, u});
        prev = u;
      }
    }
    if (units.empty()) continue;
    p.add_constraint("MD", std::move(budget_row), lp::Sense::kLessEqual,
                     config.budget[static_cast<std::size_t>(a)]);
    lp::Solution sol = lp::solve_milp(p);
    if (!sol.optimal()) {
      out.status = sol.status;
      return out;
    }
    out.objective += sol.objective;
    for (const Unit& u : units) {
      if (sol.x[static_cast<std::size_t>(u.var)] > 0.5) {
        ++out.added_layers[static_cast<std::size_t>(u.target)];
        out.spending[static_cast<std::size_t>(a)] += config.layer_cost;
      }
    }
  }
  return out;
}

}  // namespace gridsec::cps
