#include "gridsec/lp/problem.hpp"

#include <cmath>

namespace gridsec::lp {

int Problem::add_variable(std::string name, double lower, double upper,
                          double objective_coef, VarType type) {
  GRIDSEC_ASSERT_MSG(std::isfinite(lower), "lower bound must be finite");
  GRIDSEC_ASSERT_MSG(lower <= upper, "lower > upper");
  if (type == VarType::kBinary) {
    GRIDSEC_ASSERT_MSG(lower >= 0.0 && upper <= 1.0, "binary bounds");
  }
  variables_.push_back(
      {std::move(name), lower, upper, objective_coef, type});
  return num_variables() - 1;
}

int Problem::add_binary(std::string name, double objective_coef) {
  return add_variable(std::move(name), 0.0, 1.0, objective_coef,
                      VarType::kBinary);
}

int Problem::add_constraint(std::string name, LinearExpr expr, Sense sense,
                            double rhs) {
  for (const Term& t : expr.terms()) {
    GRIDSEC_ASSERT_MSG(t.var >= 0 && t.var < num_variables(),
                       "constraint references unknown variable");
  }
  constraints_.push_back({std::move(name), expr.terms(), sense, rhs});
  return num_constraints() - 1;
}

void Problem::set_objective_coef(int var, double coef) {
  GRIDSEC_ASSERT(var >= 0 && var < num_variables());
  variables_[static_cast<std::size_t>(var)].objective = coef;
}

void Problem::set_bounds(int var, double lower, double upper) {
  GRIDSEC_ASSERT(var >= 0 && var < num_variables());
  GRIDSEC_ASSERT_MSG(std::isfinite(lower) && lower <= upper, "bad bounds");
  auto& v = variables_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

void Problem::set_rhs(int row, double rhs) {
  GRIDSEC_ASSERT(row >= 0 && row < num_constraints());
  constraints_[static_cast<std::size_t>(row)].rhs = rhs;
}

bool Problem::has_integer_variables() const {
  for (const auto& v : variables_) {
    if (v.type != VarType::kContinuous) return true;
  }
  return false;
}

double Problem::objective_value(const std::vector<double>& x) const {
  GRIDSEC_ASSERT(x.size() == variables_.size());
  double obj = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    obj += variables_[i].objective * x[i];
  }
  return obj;
}

bool Problem::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (x[i] < variables_[i].lower - tol) return false;
    if (x[i] > variables_[i].upper + tol) return false;
    if (variables_[i].type != VarType::kContinuous &&
        std::fabs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const auto& con : constraints_) {
    double lhs = 0.0;
    for (const Term& t : con.terms) {
      lhs += t.coef * x[static_cast<std::size_t>(t.var)];
    }
    switch (con.sense) {
      case Sense::kLessEqual:
        if (lhs > con.rhs + tol) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < con.rhs - tol) return false;
        break;
      case Sense::kEqual:
        if (std::fabs(lhs - con.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string_view to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "OPTIMAL";
    case SolveStatus::kInfeasible:
      return "INFEASIBLE";
    case SolveStatus::kUnbounded:
      return "UNBOUNDED";
    case SolveStatus::kIterationLimit:
      return "ITERATION_LIMIT";
  }
  return "UNKNOWN";
}

}  // namespace gridsec::lp
