#include "gridsec/lp/problem.hpp"

#include <atomic>
#include <cmath>

namespace gridsec::lp {

namespace {
std::atomic<SolveHook> g_solve_hook{nullptr};
std::atomic<RecoveryHook> g_recovery_hook{nullptr};
thread_local int g_solve_hook_suppressed = 0;
}  // namespace

SolveHook set_solve_hook(SolveHook hook) {
  return g_solve_hook.exchange(hook, std::memory_order_acq_rel);
}

SolveHook solve_hook() {
  if (g_solve_hook_suppressed > 0) return nullptr;
  return g_solve_hook.load(std::memory_order_acquire);
}

ScopedSolveHookSuppress::ScopedSolveHookSuppress() {
  ++g_solve_hook_suppressed;
}

ScopedSolveHookSuppress::~ScopedSolveHookSuppress() {
  --g_solve_hook_suppressed;
}

int solve_hook_suppression_depth() { return g_solve_hook_suppressed; }

RecoveryHook set_recovery_hook(RecoveryHook hook) {
  return g_recovery_hook.exchange(hook, std::memory_order_acq_rel);
}

RecoveryHook recovery_hook() {
  return g_recovery_hook.load(std::memory_order_acquire);
}

int Problem::add_variable(std::string name, double lower, double upper,
                          double objective_coef, VarType type) {
  GRIDSEC_ASSERT_MSG(std::isfinite(lower), "lower bound must be finite");
  GRIDSEC_ASSERT_MSG(lower <= upper, "lower > upper");
  if (type == VarType::kBinary) {
    GRIDSEC_ASSERT_MSG(lower >= 0.0 && upper <= 1.0, "binary bounds");
  }
  variables_.push_back(
      {std::move(name), lower, upper, objective_coef, type});
  return num_variables() - 1;
}

int Problem::add_binary(std::string name, double objective_coef) {
  return add_variable(std::move(name), 0.0, 1.0, objective_coef,
                      VarType::kBinary);
}

int Problem::add_constraint(std::string name, LinearExpr expr, Sense sense,
                            double rhs) {
  for (const Term& t : expr.terms()) {
    GRIDSEC_ASSERT_MSG(t.var >= 0 && t.var < num_variables(),
                       "constraint references unknown variable");
  }
  constraints_.push_back({std::move(name), expr.terms(), sense, rhs});
  return num_constraints() - 1;
}

void Problem::set_objective_coef(int var, double coef) {
  GRIDSEC_ASSERT(var >= 0 && var < num_variables());
  variables_[static_cast<std::size_t>(var)].objective = coef;
}

void Problem::set_bounds(int var, double lower, double upper) {
  GRIDSEC_ASSERT(var >= 0 && var < num_variables());
  GRIDSEC_ASSERT_MSG(std::isfinite(lower) && lower <= upper, "bad bounds");
  auto& v = variables_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

void Problem::set_rhs(int row, double rhs) {
  GRIDSEC_ASSERT(row >= 0 && row < num_constraints());
  constraints_[static_cast<std::size_t>(row)].rhs = rhs;
}

void Problem::set_constraint_coef(int row, int term, double coef) {
  GRIDSEC_ASSERT(row >= 0 && row < num_constraints());
  auto& con = constraints_[static_cast<std::size_t>(row)];
  GRIDSEC_ASSERT(term >= 0 &&
                 term < static_cast<int>(con.terms.size()));
  GRIDSEC_ASSERT_MSG(coef != 0.0, "zero coef would change sparsity");
  con.terms[static_cast<std::size_t>(term)].coef = coef;
}

void Problem::scale_constraint(int row, double factor) {
  GRIDSEC_ASSERT(row >= 0 && row < num_constraints());
  GRIDSEC_ASSERT_MSG(factor > 0.0 && std::isfinite(factor),
                     "scale factor must be positive and finite");
  auto& con = constraints_[static_cast<std::size_t>(row)];
  for (Term& t : con.terms) t.coef *= factor;
  con.rhs *= factor;
}

bool Problem::has_integer_variables() const {
  for (const auto& v : variables_) {
    if (v.type != VarType::kContinuous) return true;
  }
  return false;
}

double Problem::objective_value(const std::vector<double>& x) const {
  GRIDSEC_ASSERT(x.size() == variables_.size());
  double obj = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    obj += variables_[i].objective * x[i];
  }
  return obj;
}

bool Problem::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (x[i] < variables_[i].lower - tol) return false;
    if (x[i] > variables_[i].upper + tol) return false;
    if (variables_[i].type != VarType::kContinuous &&
        std::fabs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const auto& con : constraints_) {
    double lhs = 0.0;
    for (const Term& t : con.terms) {
      lhs += t.coef * x[static_cast<std::size_t>(t.var)];
    }
    switch (con.sense) {
      case Sense::kLessEqual:
        if (lhs > con.rhs + tol) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < con.rhs - tol) return false;
        break;
      case Sense::kEqual:
        if (std::fabs(lhs - con.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string_view to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "OPTIMAL";
    case SolveStatus::kInfeasible:
      return "INFEASIBLE";
    case SolveStatus::kUnbounded:
      return "UNBOUNDED";
    case SolveStatus::kIterationLimit:
      return "ITERATION_LIMIT";
    case SolveStatus::kTimeLimit:
      return "TIME_LIMIT";
    case SolveStatus::kNumericalError:
      return "NUMERICAL_ERROR";
  }
  return "UNKNOWN";
}

Status to_status(SolveStatus s, std::string_view context) {
  std::string msg(context);
  msg += ": ";
  msg += to_string(s);
  switch (s) {
    case SolveStatus::kOptimal:
      return Status::ok();
    case SolveStatus::kInfeasible:
      return Status::infeasible(std::move(msg));
    case SolveStatus::kUnbounded:
      return Status::unbounded(std::move(msg));
    case SolveStatus::kIterationLimit:
      return Status::iteration_limit(std::move(msg));
    case SolveStatus::kTimeLimit:
      return Status::time_limit(std::move(msg));
    case SolveStatus::kNumericalError:
      return Status::numerical_error(std::move(msg));
  }
  return Status::internal(std::move(msg));
}

Status validate_problem(const Problem& problem) {
  const auto bad = [](const std::string& what, int index) {
    return Status::numerical_error("validate_problem: non-finite " + what +
                                   " at index " + std::to_string(index));
  };
  // Finite but beyond kMaxMagnitude: pivot products overflow to Inf
  // mid-solve, so such data is a modeling error, not a numerical accident.
  const auto huge = [](const std::string& what, int index) {
    return Status::invalid_argument(
        "validate_problem: " + what + " at index " + std::to_string(index) +
        " exceeds the magnitude cap 1e30");
  };
  const auto too_big = [](double v) {
    return std::isfinite(v) && std::fabs(v) > kMaxMagnitude;
  };
  for (int j = 0; j < problem.num_variables(); ++j) {
    const Variable& v = problem.variable(j);
    if (std::isnan(v.objective) || std::isinf(v.objective)) {
      return bad("objective coefficient", j);
    }
    if (too_big(v.objective)) return huge("objective coefficient", j);
    // Bounds: lower must be finite (solvers anchor nonbasic columns there),
    // upper may be +inf but never NaN or -inf, and the interval must be
    // non-empty. NaN comparisons are false, so test each way explicitly.
    if (!std::isfinite(v.lower) || std::isnan(v.upper) ||
        v.upper == -kInfinity) {
      return bad("variable bound", j);
    }
    if (too_big(v.lower) || too_big(v.upper)) {
      return huge("variable bound", j);
    }
    if (v.lower > v.upper) {
      return Status::numerical_error(
          "validate_problem: inconsistent bounds (lower > upper) at index " +
          std::to_string(j));
    }
  }
  for (int i = 0; i < problem.num_constraints(); ++i) {
    const Constraint& con = problem.constraint(i);
    if (!std::isfinite(con.rhs)) return bad("constraint rhs", i);
    if (too_big(con.rhs)) return huge("constraint rhs", i);
    for (const Term& t : con.terms) {
      if (t.var < 0 || t.var >= problem.num_variables()) {
        return Status::numerical_error(
            "validate_problem: constraint " + std::to_string(i) +
            " references unknown variable " + std::to_string(t.var));
      }
      if (!std::isfinite(t.coef)) return bad("constraint coefficient", i);
      if (too_big(t.coef)) return huge("constraint coefficient", i);
    }
  }
  return Status::ok();
}

}  // namespace gridsec::lp
