#include "gridsec/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "gridsec/lp/basis.hpp"
#include "gridsec/lp/workspace.hpp"
#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/deadline.hpp"
#include "gridsec/util/matrix.hpp"
#include "workspace_internal.hpp"

namespace gridsec::lp {
namespace {

// The working Tableau and all per-solve scratch live in a SolverWorkspace
// (see workspace.hpp / workspace_internal.hpp): spans carved from one
// arena, re-bound per solve, zero steady-state heap traffic.
using detail::copy_tableau;
using detail::Tableau;
using detail::VarState;
using detail::WorkspaceImpl;
using detail::WorkspaceLease;

struct IterationOutcome {
  SolveStatus status = SolveStatus::kOptimal;
  long iterations = 0;
  long degenerate_pivots = 0;
  long bound_flips = 0;
  long bland_pivots = 0;      // pivots taken under Bland's rule
  bool cycle_fallback = false;  // cycling detected; Bland forced early
  long refactorizations = 0;  // dense LU rebuilds of the basis matrix
  long eta_updates = 0;       // product-form pivot updates applied
  long refine_steps = 0;      // iterative-refinement corrections applied
  /// Refactorizations forced by a stability signal (refused or
  /// growth-flagged eta pivot, or a drift repair that moved the basic
  /// values) rather than the periodic chain-length schedule.
  long residual_refactorizations = 0;
  double pivot_growth = 0.0;  // max BasisFactorization::pivot_growth() seen
};

/// Extracts the basis matrix B (m x m) from the tableau into `out`
/// (capacity-reused across calls).
void build_basis_matrix(const Tableau& t, Matrix& out) {
  out.assign(static_cast<std::size_t>(t.m), static_cast<std::size_t>(t.m));
  for (int i = 0; i < t.m; ++i) {
    const int col = t.basis[static_cast<std::size_t>(i)];
    for (int r = 0; r < t.m; ++r) {
      out(static_cast<std::size_t>(r), static_cast<std::size_t>(i)) =
          t.a(static_cast<std::size_t>(r), static_cast<std::size_t>(col));
    }
  }
}

/// Computes x_B = B^{-1} (b - A_N x_N) into `out` (size m) via the
/// factorization's refined ftran (residual-checked iterative refinement)
/// without writing into the tableau. Correction steps accumulate into
/// *refine_steps; the final relative residual lands in *residual_out
/// (both optional).
void compute_basic_values(const Tableau& t, const BasisFactorization& factor,
                          std::span<double> out, long* refine_steps,
                          double* residual_out) {
  for (int i = 0; i < t.m; ++i) {
    out[static_cast<std::size_t>(i)] = t.b[static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < t.n_total; ++j) {
    if (t.state[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    const double xj = t.x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    for (int i = 0; i < t.m; ++i) {
      out[static_cast<std::size_t>(i)] -=
          t.a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) * xj;
    }
  }
  const int steps = factor.ftran_refined(out, residual_out);
  if (refine_steps != nullptr) *refine_steps += steps;
}

/// Recomputes the values of the basic variables from the nonbasic point
/// with iterative refinement, so ill-conditioned bases still yield
/// certificate-grade residuals. `factor` must be current for t's basis;
/// `xb` is m-sized scratch.
void recompute_basics(Tableau& t, const BasisFactorization& factor,
                      std::span<double> xb, long* refine_steps = nullptr,
                      double* residual_out = nullptr) {
  compute_basic_values(t, factor, xb, refine_steps, residual_out);
  for (int i = 0; i < t.m; ++i) {
    const auto is = static_cast<std::size_t>(i);
    t.x[static_cast<std::size_t>(t.basis[is])] = xb[is];
  }
}

/// Solves B^T y = c_B for the simplex multipliers via btran, into `y`.
void compute_multipliers(const Tableau& t, const BasisFactorization& factor,
                         std::span<double> y) {
  for (int i = 0; i < t.m; ++i) {
    y[static_cast<std::size_t>(i)] =
        t.cost[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)])];
  }
  factor.btran(y);
}

/// Runs primal simplex pivots on `t` (= ws.t) with the current cost vector
/// until optimal / unbounded / iteration budget exhausted. ws.factor must
/// be current for t's basis on entry and is kept current across pivots
/// with eta updates (refactorized on the update-count or accuracy
/// trigger). Pricing/direction vectors live in the workspace — zero heap
/// traffic per pivot. `phase` and `iter_base` only label observer events
/// (cumulative ids).
IterationOutcome iterate(Tableau& t, WorkspaceImpl& ws,
                         const SimplexOptions& opt,
                         long max_iters, long bland_after,
                         const Deadline& deadline, int phase,
                         long iter_base) {
  IterationOutcome out;
  BasisFactorization& factor = ws.factor;
  const double dtol = opt.optimality_tol;
  const double eps = 1e-11;
  const bool observed = static_cast<bool>(opt.observer);

  // Cycling detection: a run of degenerate pivots this long under the
  // steepest-violation rule is treated as (near-)cycling and the pricing
  // falls back to Bland's rule, which provably terminates.
  long cycle_limit = opt.cycle_streak_limit;
  if (cycle_limit <= 0) cycle_limit = std::max(20L, 2L * (t.m + t.n_total));
  long degen_streak = 0;
  bool forced_bland = false;

  for (long iter = 0; iter < max_iters; ++iter) {
    if (deadline.expired()) {
      out.status = SolveStatus::kTimeLimit;
      out.iterations = iter;
      return out;
    }
    const bool bland = forced_bland || iter >= bland_after;
    compute_multipliers(t, factor, ws.y);
    const std::span<const double> y = ws.y;

    // Pricing: pick an entering column.
    int entering = -1;
    double best_violation = dtol;
    int enter_dir = 0;  // +1 entering rises from lower, -1 falls from upper
    for (int j = 0; j < t.n_total; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (t.state[js] == VarState::kBasic) continue;
      if (t.upper[js] - t.lower[js] < eps) continue;  // fixed
      double dj = t.cost[js];
      for (int i = 0; i < t.m; ++i) {
        dj -= y[static_cast<std::size_t>(i)] *
              t.a(static_cast<std::size_t>(i), js);
      }
      int dir = 0;
      double violation = 0.0;
      if (t.state[js] == VarState::kAtLower && dj < -dtol) {
        dir = +1;
        violation = -dj;
      } else if (t.state[js] == VarState::kAtUpper && dj > dtol) {
        dir = -1;
        violation = dj;
      } else {
        continue;
      }
      if (bland) {
        entering = j;
        enter_dir = dir;
        break;  // first eligible index (Bland)
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        enter_dir = dir;
      }
    }
    if (entering < 0) {
      out.status = SolveStatus::kOptimal;
      out.iterations = iter;
      return out;
    }

    // Direction of basic variables: w = B^{-1} A_q; moving the entering
    // variable by t changes x_B by -enter_dir * w * t.
    const std::span<double> w = ws.w;
    for (int i = 0; i < t.m; ++i) {
      w[static_cast<std::size_t>(i)] =
          t.a(static_cast<std::size_t>(i), static_cast<std::size_t>(entering));
    }
    factor.ftran(w);

    const auto eq = static_cast<std::size_t>(entering);
    double t_limit = t.upper[eq] - t.lower[eq];  // bound-flip distance
    int leaving_row = -1;     // -1 = bound flip
    int leaving_bound = 0;    // -1 lower, +1 upper
    for (int i = 0; i < t.m; ++i) {
      const auto is = static_cast<std::size_t>(i);
      const double delta = -enter_dir * w[is];
      const auto bcol = static_cast<std::size_t>(t.basis[is]);
      double limit;
      int hit;
      if (delta < -eps) {
        limit = (t.x[bcol] - t.lower[bcol]) / (-delta);
        hit = -1;
      } else if (delta > eps) {
        if (!std::isfinite(t.upper[bcol])) continue;
        limit = (t.upper[bcol] - t.x[bcol]) / delta;
        hit = +1;
      } else {
        continue;
      }
      if (limit < 0.0) limit = 0.0;  // degenerate clip
      if (limit < t_limit - eps) {
        t_limit = limit;
        leaving_row = i;
        leaving_bound = hit;
      } else if (leaving_row >= 0 && limit < t_limit + eps) {
        // Tie: under Bland prefer the smallest basic index (termination);
        // otherwise the largest pivot magnitude (stability).
        const auto ls = static_cast<std::size_t>(leaving_row);
        const bool take = bland ? t.basis[is] < t.basis[ls]
                                : std::fabs(w[is]) > std::fabs(w[ls]);
        if (take) {
          t_limit = std::min(t_limit, limit);
          leaving_row = i;
          leaving_bound = hit;
        }
      }
    }

    if (!std::isfinite(t_limit)) {
      out.status = SolveStatus::kUnbounded;
      out.iterations = iter;
      return out;
    }

    // Apply the step.
    for (int i = 0; i < t.m; ++i) {
      const auto is = static_cast<std::size_t>(i);
      const auto bcol = static_cast<std::size_t>(t.basis[is]);
      t.x[bcol] += -enter_dir * w[is] * t_limit;
    }
    t.x[eq] += enter_dir * t_limit;

    const bool degenerate = t_limit <= eps;
    if (degenerate) ++out.degenerate_pivots;
    if (bland) ++out.bland_pivots;
    degen_streak = degenerate ? degen_streak + 1 : 0;
    if (!forced_bland && degen_streak >= cycle_limit) {
      forced_bland = true;  // takes effect from the next pivot on
      out.cycle_fallback = true;
    }

    if (leaving_row < 0) {
      // Bound flip: entering variable traverses to its opposite bound.
      t.state[eq] = enter_dir > 0 ? VarState::kAtUpper : VarState::kAtLower;
      t.x[eq] = enter_dir > 0 ? t.upper[eq] : t.lower[eq];
      ++out.bound_flips;
      if (observed) {
        obs::SimplexIterationEvent ev;
        ev.iteration = iter_base + iter;
        ev.phase = phase;
        ev.entering = entering;
        ev.leaving = -1;
        ev.step = t_limit;
        ev.bound_flip = true;
        ev.degenerate = degenerate;
        ev.bland = bland;
        opt.observer(ev);
      }
      continue;
    }

    const auto lrow = static_cast<std::size_t>(leaving_row);
    const auto lcol = static_cast<std::size_t>(t.basis[lrow]);
    t.state[lcol] =
        leaving_bound < 0 ? VarState::kAtLower : VarState::kAtUpper;
    t.x[lcol] = leaving_bound < 0 ? t.lower[lcol] : t.upper[lcol];
    t.basis[lrow] = entering;
    t.state[eq] = VarState::kBasic;
    // Keep the factorization current: product-form update, with a dense
    // rebuild when the eta chain is long, the update pivot is unsafe, or
    // the accumulated pivot growth says the chain amplifies rounding.
    const bool chain_full =
        factor.eta_count() + 1 >= BasisFactorization::kRefactorInterval;
    bool need_refactor = chain_full;
    bool stability_event = false;
    if (!need_refactor) {
      if (!factor.update(leaving_row, w)) {
        need_refactor = true;  // refused: pivot too small to trust
        stability_event = true;
      } else if (factor.pivot_growth() >
                 BasisFactorization::kGrowthRefactorLimit) {
        need_refactor = true;  // accepted but growth-flagged: rebuild early
        stability_event = true;
      } else {
        ++out.eta_updates;
      }
    }
    if (need_refactor) {
      ++out.refactorizations;
      out.pivot_growth = std::max(out.pivot_growth, factor.pivot_growth());
      build_basis_matrix(t, ws.bmat);
      if (!factor.refactorize(ws.bmat)) {
        out.status = SolveStatus::kNumericalError;
        out.iterations = iter + 1;
        return out;
      }
      // Drift repair: the pivot loop tracks x incrementally, so a rebuilt
      // factorization is the cheap moment to compare against the exact
      // x_B = B^{-1}(b - A_N x_N). Adopt the recomputed values only when
      // they moved measurably — clean solves keep bit-identical paths.
      double residual = 0.0;
      compute_basic_values(t, ws.factor, ws.xb, &out.refine_steps, &residual);
      const std::span<const double> xb = ws.xb;
      constexpr double kDriftRepairTol = 1e-9;
      double drift = 0.0;
      for (int i = 0; i < t.m; ++i) {
        const auto is = static_cast<std::size_t>(i);
        const auto bcol = static_cast<std::size_t>(t.basis[is]);
        drift = std::max(drift, std::fabs(xb[is] - t.x[bcol]) /
                                    (1.0 + std::fabs(xb[is])));
      }
      if (drift > kDriftRepairTol) {
        for (int i = 0; i < t.m; ++i) {
          const auto is = static_cast<std::size_t>(i);
          t.x[static_cast<std::size_t>(t.basis[is])] = xb[is];
        }
        stability_event = true;
      }
      if (stability_event) ++out.residual_refactorizations;
    }
    out.pivot_growth = std::max(out.pivot_growth, factor.pivot_growth());
    if (observed) {
      obs::SimplexIterationEvent ev;
      ev.iteration = iter_base + iter;
      ev.phase = phase;
      ev.entering = entering;
      ev.leaving = static_cast<int>(lcol);
      ev.step = t_limit;
      ev.degenerate = degenerate;
      ev.bland = bland;
      opt.observer(ev);
    }
  }
  out.status = SolveStatus::kIterationLimit;
  out.iterations = max_iters;
  return out;
}

/// Flushes per-solve pivot totals into the default metric registry on every
/// exit path. Registry handles are resolved once per process (function-local
/// statics), so the steady-state cost is a handful of relaxed atomic adds
/// per *solve* — never per iteration.
struct SimplexMetricsGuard {
  long pivots = 0;
  long degenerate = 0;
  long bound_flips = 0;
  long bland = 0;
  long cycle_fallbacks = 0;
  long refactorizations = 0;
  long eta_updates = 0;
  long basis_repairs = 0;
  long refine_steps = 0;
  long residual_refactorizations = 0;
  double pivot_growth_max = 0.0;
  bool warm_started = false;
  bool warm_rejected = false;
  SolveStatus status = SolveStatus::kOptimal;

  ~SimplexMetricsGuard() {
    auto& reg = obs::default_registry();
    static obs::Counter& solves = reg.counter("lp.simplex.solves");
    static obs::Counter& c_pivots = reg.counter("lp.simplex.pivots");
    static obs::Counter& c_degen =
        reg.counter("lp.simplex.degenerate_pivots");
    static obs::Counter& c_flips = reg.counter("lp.simplex.bound_flips");
    static obs::Counter& c_bland = reg.counter("lp.simplex.bland_pivots");
    static obs::Counter& c_failed = reg.counter("lp.simplex.non_optimal");
    static obs::Counter& c_cycles = reg.counter("lp.simplex.cycle_fallbacks");
    static obs::Counter& c_timeouts = reg.counter("lp.simplex.time_limits");
    static obs::Counter& c_numerical =
        reg.counter("lp.simplex.numerical_errors");
    static obs::Counter& c_refactor =
        reg.counter("lp.simplex.refactorizations");
    static obs::Counter& c_etas = reg.counter("lp.simplex.eta_updates");
    static obs::Counter& c_warm = reg.counter("lp.simplex.warm_starts");
    static obs::Counter& c_repairs = reg.counter("lp.simplex.basis_repairs");
    static obs::Counter& c_warm_rejects =
        reg.counter("lp.simplex.warm_start_rejects");
    static obs::Counter& c_refines = reg.counter("lp.basis.refine_steps");
    static obs::Counter& c_stability =
        reg.counter("lp.basis.residual_refactorizations");
    static obs::Gauge& g_growth = reg.gauge("lp.basis.pivot_growth_max");
    static obs::Histogram& h_pivots = reg.histogram(
        "lp.simplex.pivots_per_solve",
        {0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0});
    solves.add();
    c_pivots.add(pivots);
    c_degen.add(degenerate);
    c_flips.add(bound_flips);
    c_bland.add(bland);
    c_cycles.add(cycle_fallbacks);
    c_refactor.add(refactorizations);
    c_etas.add(eta_updates);
    c_repairs.add(basis_repairs);
    c_refines.add(refine_steps);
    c_stability.add(residual_refactorizations);
    // High-water mark, not a sum. The read-then-set is racy across
    // concurrent solves, but a missed update only understates a gauge
    // that the next extreme solve restores — fine for an indicator.
    if (pivot_growth_max > g_growth.value()) g_growth.set(pivot_growth_max);
    if (warm_started) c_warm.add();
    if (warm_rejected) c_warm_rejects.add();
    if (status != SolveStatus::kOptimal) c_failed.add();
    if (status == SolveStatus::kTimeLimit) c_timeouts.add();
    if (status == SolveStatus::kNumericalError) c_numerical.add();
    h_pivots.observe(static_cast<double>(pivots));
  }

  void absorb(const IterationOutcome& out) {
    pivots += out.iterations;
    degenerate += out.degenerate_pivots;
    bound_flips += out.bound_flips;
    bland += out.bland_pivots;
    refactorizations += out.refactorizations;
    eta_updates += out.eta_updates;
    refine_steps += out.refine_steps;
    residual_refactorizations += out.residual_refactorizations;
    pivot_growth_max = std::max(pivot_growth_max, out.pivot_growth);
    if (out.cycle_fallback) ++cycle_fallbacks;
  }
};

/// Demotes a would-be basic column to a nonbasic bound during crash
/// repair. Artificial columns are retired outright (fixed at zero).
void demote_candidate(Tableau& t, int col, int art_base,
                      std::span<unsigned char> artificial_used) {
  const auto cs = static_cast<std::size_t>(col);
  t.state[cs] = VarState::kAtLower;
  t.x[cs] = t.lower[cs];
  if (col >= art_base) {
    t.upper[cs] = 0.0;
    t.x[cs] = 0.0;
    artificial_used[static_cast<std::size_t>(col - art_base)] = 0;
  }
}

/// Installs row i's artificial column as basic (bounds [0, inf), unit
/// coefficient; phase 1 prices it at 1 and drives it out).
void install_artificial(Tableau& t, int i, int art_base,
                        std::span<unsigned char> artificial_used) {
  const int art = art_base + i;
  const auto is = static_cast<std::size_t>(i);
  const auto as = static_cast<std::size_t>(art);
  t.a(is, as) = 1.0;
  t.lower[as] = 0.0;
  t.upper[as] = kInfinity;
  t.x[as] = 0.0;
  t.state[as] = VarState::kBasic;
  t.basis[is] = art;
  artificial_used[is] = 1;
}

/// Applies SimplexOptions::warm_start to a freshly built tableau (states
/// and x set to cold defaults, basis unassigned). Three repair stages:
///   1. adopt the nonbasic statuses (stale at-upper states with an
///      infinite bound are demoted);
///   2. crash-select a linearly independent subset of the requested
///      basic columns by Gaussian elimination, demoting dependent ones
///      and filling uncovered rows with artificials;
///   3. restore primal feasibility: compute x_B, clamp any basic that
///      violates a bound onto that bound and hand its row to an
///      artificial — leaving exactly the cold-start phase-1 shape, so
///      the ordinary phase 1 removes the remaining infeasibility.
/// Every demotion/clamp/fill counts as one repair. Returns false when
/// the basis is unusable (singular after repair, or the feasibility pass
/// fails to settle) — the caller then restores the pre-warm snapshot and
/// solves cold. All scratch (row/column maps, the crash-elimination
/// matrix) comes from the workspace.
bool apply_warm_start(Tableau& t, WorkspaceImpl& ws,
                      const SimplexOptions& options, int art_base,
                      long& repairs, long& refactorizations) {
  const std::span<const int> slack_of_row = ws.slack_of_row;
  const std::span<unsigned char> artificial_used = ws.artificial_used;
  BasisFactorization& factor = ws.factor;
  const Basis& warm = options.warm_start;
  const double tol = options.feasibility_tol;
  const int m = t.m;
  const int n_warm = static_cast<int>(warm.variables.size());

  // Stage 1: nonbasic statuses for the covered structural columns;
  // uncovered ones keep the cold default (at lower bound).
  for (int j = 0; j < n_warm; ++j) {
    const auto js = static_cast<std::size_t>(j);
    VarStatus s = warm.variables[js];
    if (s == VarStatus::kAtUpper && !std::isfinite(t.upper[js])) {
      s = VarStatus::kAtLower;  // stale: the bound is no longer finite
      ++repairs;
    }
    switch (s) {
      case VarStatus::kBasic:
        t.state[js] = VarState::kBasic;  // value assigned in stage 3
        break;
      case VarStatus::kAtUpper:
        t.state[js] = VarState::kAtUpper;
        t.x[js] = t.upper[js];
        break;
      case VarStatus::kAtLower:
        t.state[js] = VarState::kAtLower;
        t.x[js] = t.lower[js];
        break;
    }
  }

  // Row statuses: a kBasic row contributes its slack — or, for an
  // equality row, its artificial — to the basic set. Nonbasic rows keep
  // the slack at its (lower) bound, which the cold defaults already are.
  const std::span<int> row_basic_col = ws.row_basic_col;
  std::fill(row_basic_col.begin(), row_basic_col.end(), -1);
  for (int i = 0; i < m; ++i) {
    const auto is = static_cast<std::size_t>(i);
    if (warm.rows[is] != VarStatus::kBasic) continue;
    int col = slack_of_row[is];
    if (col < 0) {
      col = art_base + i;
      const auto as = static_cast<std::size_t>(col);
      t.a(is, as) = 1.0;
      t.lower[as] = 0.0;
      t.upper[as] = kInfinity;
      artificial_used[is] = 1;
    }
    t.state[static_cast<std::size_t>(col)] = VarState::kBasic;
    row_basic_col[is] = col;
  }

  // Stage 2: crash selection. Eliminate over the candidate columns,
  // assigning each independent one a pivot row.
  const std::span<int> candidates = ws.candidates;
  std::size_t k = 0;
  for (int j = 0; j < n_warm; ++j) {
    if (t.state[static_cast<std::size_t>(j)] == VarState::kBasic) {
      candidates[k++] = j;
    }
  }
  for (int i = 0; i < m; ++i) {
    const int col = row_basic_col[static_cast<std::size_t>(i)];
    if (col >= 0) candidates[k++] = col;
  }
  Matrix& work = ws.crash_work;
  work.assign(static_cast<std::size_t>(m), k);
  for (std::size_t c = 0; c < k; ++c) {
    const auto col = static_cast<std::size_t>(candidates[c]);
    for (int r = 0; r < m; ++r) {
      work(static_cast<std::size_t>(r), c) =
          t.a(static_cast<std::size_t>(r), col);
    }
  }
  const std::span<unsigned char> used_row = ws.used_row;
  std::fill(used_row.begin(), used_row.end(), static_cast<unsigned char>(0));
  std::fill(t.basis.begin(), t.basis.end(), -1);
  constexpr double kCrashPivotTol = 1e-9;
  for (std::size_t c = 0; c < k; ++c) {
    int best_row = -1;
    double best = kCrashPivotTol;
    for (int r = 0; r < m; ++r) {
      const auto rs = static_cast<std::size_t>(r);
      if (used_row[rs]) continue;
      const double mag = std::fabs(work(rs, c));
      if (mag > best) {
        best = mag;
        best_row = r;
      }
    }
    if (best_row < 0) {
      // Linearly dependent on the columns already selected.
      demote_candidate(t, candidates[c], art_base, artificial_used);
      ++repairs;
      continue;
    }
    const auto ps = static_cast<std::size_t>(best_row);
    t.basis[ps] = candidates[c];
    used_row[ps] = 1;
    const double diag = work(ps, c);
    for (int r = 0; r < m; ++r) {
      const auto rs = static_cast<std::size_t>(r);
      if (used_row[rs] || work(rs, c) == 0.0) continue;
      const double f = work(rs, c) / diag;
      for (std::size_t c2 = c + 1; c2 < k; ++c2) {
        work(rs, c2) -= f * work(ps, c2);
      }
    }
  }
  for (int i = 0; i < m; ++i) {
    if (t.basis[static_cast<std::size_t>(i)] >= 0) continue;
    install_artificial(t, i, art_base, artificial_used);
    ++repairs;
  }

  // Stage 3: primal repair. Each pass either settles or permanently
  // demotes at least one basic, so m+2 passes always suffice.
  for (int pass = 0; pass <= m + 1; ++pass) {
    ++refactorizations;
    build_basis_matrix(t, ws.bmat);
    if (!factor.refactorize(ws.bmat)) return false;
    recompute_basics(t, factor, ws.xb);
    bool changed = false;
    for (int r = 0; r < m; ++r) {
      const auto rs = static_cast<std::size_t>(r);
      const int col = t.basis[rs];
      const auto cs = static_cast<std::size_t>(col);
      const double xv = t.x[cs];
      if (col >= art_base) {
        // A negative artificial: flip its column sign — negating a basis
        // column negates only that coordinate of x_B — so phase 1 sees a
        // nonnegative infeasibility to minimize.
        if (xv < -tol) {
          t.a(static_cast<std::size_t>(col - art_base), cs) *= -1.0;
          t.x[cs] = -xv;
          changed = true;
        }
        continue;
      }
      const bool below = xv < t.lower[cs] - tol;
      const bool above =
          std::isfinite(t.upper[cs]) && xv > t.upper[cs] + tol;
      if (!below && !above) continue;
      t.state[cs] = below ? VarState::kAtLower : VarState::kAtUpper;
      t.x[cs] = below ? t.lower[cs] : t.upper[cs];
      install_artificial(t, r, art_base, artificial_used);
      ++repairs;
      changed = true;
    }
    if (!changed) return true;
  }
  return false;  // never settled: numerical trouble, fall back to cold
}

/// Full solve; when `final_tableau` is non-null and the solve is optimal,
/// the final tableau *view* is copied out for post-optimal analysis — it
/// stays valid only while `ws` remains bound (analyze_sensitivity passes
/// a function-local workspace for exactly this reason).
Solution solve_impl_inner(const Problem& problem,
                          const SimplexOptions& options,
                          Tableau* final_tableau,
                          SimplexMetricsGuard& metrics,
                          WorkspaceImpl& ws) {
  Solution sol;
  if (!validate_problem(problem).is_ok()) {
    sol.status = SolveStatus::kNumericalError;
    return sol;
  }
  const Deadline deadline = Deadline::in_ms(options.time_limit_ms);
  const int n = problem.num_variables();
  const int m = problem.num_constraints();
  const bool maximize = problem.objective() == Objective::kMaximize;

  // Count slacks.
  int n_slack = 0;
  for (const auto& con : problem.constraints()) {
    if (con.sense != Sense::kEqual) ++n_slack;
  }

  // Bind the workspace to this problem's shape: one arena rewind, spans
  // carved, cold defaults installed (artificials allocated per row, used
  // lazily).
  ws.bind(m, n, n + n_slack + m);
  Tableau& t = ws.t;
  BasisFactorization& factor = ws.factor;

  // Structural columns.
  for (int j = 0; j < n; ++j) {
    const auto& v = problem.variable(j);
    const auto js = static_cast<std::size_t>(j);
    t.lower[js] = v.lower;
    t.upper[js] = v.upper;
    t.x[js] = v.lower;
    t.state[js] = VarState::kAtLower;
  }
  // Rows + slack columns.
  int slack_cursor = n;
  const std::span<int> slack_of_row = ws.slack_of_row;
  for (int i = 0; i < m; ++i) {
    const auto& con = problem.constraint(i);
    const auto is = static_cast<std::size_t>(i);
    for (const Term& term : con.terms) {
      t.a(is, static_cast<std::size_t>(term.var)) += term.coef;
    }
    t.b[is] = con.rhs;
    if (con.sense != Sense::kEqual) {
      const int s = slack_cursor++;
      const auto ss = static_cast<std::size_t>(s);
      t.a(is, ss) = con.sense == Sense::kLessEqual ? 1.0 : -1.0;
      t.lower[ss] = 0.0;
      t.upper[ss] = kInfinity;
      t.x[ss] = 0.0;
      slack_of_row[is] = s;
    }
  }

  const int art_base = n + n_slack;
  const std::span<unsigned char> artificial_used = ws.artificial_used;

  // Warm start: adopt the caller's basis when it is dimensionally
  // compatible, crash-repairing whatever does not fit. Any failure falls
  // back to the cold start below — a warm start can never make a solve
  // fail that would have succeeded cold.
  bool warm_applied = false;
  if (warm_start_enabled() && !options.warm_start.empty()) {
    if (static_cast<int>(options.warm_start.rows.size()) == m &&
        static_cast<int>(options.warm_start.variables.size()) <= n) {
      copy_tableau(ws.backup, t);
      long repairs = 0;
      long refactorizations = 0;
      if (apply_warm_start(t, ws, options, art_base, repairs,
                           refactorizations)) {
        warm_applied = true;
        metrics.warm_started = true;
        metrics.basis_repairs += repairs;
        metrics.refactorizations += refactorizations;
      } else {
        copy_tableau(t, ws.backup);
        std::fill(artificial_used.begin(), artificial_used.end(),
                  static_cast<unsigned char>(0));
        metrics.warm_rejected = true;
        metrics.refactorizations += refactorizations;
      }
    } else {
      metrics.warm_rejected = true;
    }
  }
  sol.warm_started = warm_applied;

  // Cold initial basis: slack when it yields a feasible basic value, else
  // an artificial sized to the residual.
  if (!warm_applied) {
    for (int i = 0; i < m; ++i) {
      const auto is = static_cast<std::size_t>(i);
      double residual = t.b[is];
      for (int j = 0; j < n; ++j) {
        residual -= t.a(is, static_cast<std::size_t>(j)) *
                    t.x[static_cast<std::size_t>(j)];
      }
      const auto& con = problem.constraint(i);
      const int s = slack_of_row[is];
      const bool slack_feasible =
          s >= 0 && ((con.sense == Sense::kLessEqual && residual >= 0.0) ||
                     (con.sense == Sense::kGreaterEqual && residual <= 0.0));
      if (slack_feasible) {
        const auto ss = static_cast<std::size_t>(s);
        t.basis[is] = s;
        t.state[ss] = VarState::kBasic;
        t.x[ss] = con.sense == Sense::kLessEqual ? residual : -residual;
        continue;
      }
      const int art = art_base + i;
      const auto as = static_cast<std::size_t>(art);
      t.a(is, as) = residual >= 0.0 ? 1.0 : -1.0;
      t.lower[as] = 0.0;
      t.upper[as] = kInfinity;
      t.x[as] = std::fabs(residual);
      t.basis[is] = art;
      t.state[as] = VarState::kBasic;
      artificial_used[is] = 1;
    }
    // The slack/artificial start basis is diagonal; factorize it once.
    ++metrics.refactorizations;
    build_basis_matrix(t, ws.bmat);
    if (!factor.refactorize(ws.bmat)) {
      sol.status = SolveStatus::kNumericalError;
      return sol;
    }
  }

  long max_iters = options.max_iterations;
  if (max_iters <= 0) max_iters = 2000 + 200L * (m + n);
  long bland_after = options.bland_after;
  if (bland_after == 0) bland_after = std::max(200L, 20L * (m + n));
  if (bland_after < 0) bland_after = 0;  // force Bland from the first pivot

  long total_iters = 0;
  bool any_artificial = false;
  for (int i = 0; i < m; ++i) {
    any_artificial = any_artificial || artificial_used[static_cast<std::size_t>(i)];
  }

  // Phase 1: drive artificials to zero. A warm start whose repair left
  // only zero-valued artificials is already feasible — skip straight to
  // phase 2 (cold starts always run phase 1, preserving their behaviour).
  double warm_art_total = 0.0;
  if (any_artificial && warm_applied) {
    for (int i = 0; i < m; ++i) {
      if (artificial_used[static_cast<std::size_t>(i)]) {
        warm_art_total += t.x[static_cast<std::size_t>(art_base + i)];
      }
    }
  }
  if (any_artificial &&
      (!warm_applied || warm_art_total > options.feasibility_tol)) {
    for (int i = 0; i < m; ++i) {
      if (artificial_used[static_cast<std::size_t>(i)]) {
        t.cost[static_cast<std::size_t>(art_base + i)] = 1.0;
      }
    }
    auto outcome = iterate(t, ws, options, max_iters, bland_after,
                           deadline, /*phase=*/1, /*iter_base=*/0);
    total_iters += outcome.iterations;
    metrics.absorb(outcome);
    if (outcome.status == SolveStatus::kIterationLimit ||
        outcome.status == SolveStatus::kTimeLimit ||
        outcome.status == SolveStatus::kNumericalError) {
      sol.status = outcome.status;
      sol.iterations = total_iters;
      return sol;
    }
    if (outcome.status == SolveStatus::kUnbounded) {
      // Phase 1 minimizes a sum of nonnegative artificials: an "unbounded"
      // verdict can only come from numerical breakdown.
      sol.status = SolveStatus::kNumericalError;
      sol.iterations = total_iters;
      return sol;
    }
    double phase1_obj = 0.0;
    for (int i = 0; i < m; ++i) {
      if (artificial_used[static_cast<std::size_t>(i)]) {
        phase1_obj += t.x[static_cast<std::size_t>(art_base + i)];
      }
    }
    if (phase1_obj > options.feasibility_tol) {
      sol.status = SolveStatus::kInfeasible;
      sol.iterations = total_iters;
      return sol;
    }
  }
  // Freeze artificials at zero for phase 2.
  if (any_artificial) {
    for (int i = 0; i < m; ++i) {
      if (!artificial_used[static_cast<std::size_t>(i)]) continue;
      const auto as = static_cast<std::size_t>(art_base + i);
      t.cost[as] = 0.0;
      t.lower[as] = 0.0;
      t.upper[as] = 0.0;
      if (t.state[as] != VarState::kBasic) t.x[as] = 0.0;
    }
  }

  // Phase 2: original costs (negated for maximization; internal = minimize).
  for (int j = 0; j < n; ++j) {
    const double c = problem.variable(j).objective;
    t.cost[static_cast<std::size_t>(j)] = maximize ? -c : c;
  }
  auto outcome = iterate(t, ws, options, max_iters, bland_after,
                         deadline, /*phase=*/2, /*iter_base=*/total_iters);
  total_iters += outcome.iterations;
  metrics.absorb(outcome);
  sol.iterations = total_iters;
  if (outcome.status != SolveStatus::kOptimal) {
    sol.status = outcome.status;
    return sol;
  }

  // Clean up drift accumulated through the eta chain before extraction:
  // one fresh factorization, then refined basic values from it. A
  // re-pricing pass on the fresh factorization then confirms the verdict:
  // the pivot loop prices with multipliers pushed through the eta chain,
  // so on a drifted chain "no attractive column" can be an artifact — a
  // marginal reduced cost the refined duals extracted below would
  // contradict at certificate grade. Resuming the pivot loop here repairs
  // such optima instead of shipping them (the resume cap bounds the cost
  // when an instance keeps re-tripping; the common case adds exactly one
  // pricing sweep and zero pivots).
  constexpr int kMaxOptimalityResumes = 3;
  for (int resume = 0;; ++resume) {
    ++metrics.refactorizations;
    build_basis_matrix(t, ws.bmat);
    if (!factor.refactorize(ws.bmat)) {
      sol.status = SolveStatus::kNumericalError;
      return sol;
    }
    recompute_basics(t, factor, ws.xb, &metrics.refine_steps);
    metrics.pivot_growth_max =
        std::max(metrics.pivot_growth_max, factor.pivot_growth());
    if (resume >= kMaxOptimalityResumes || max_iters <= total_iters) break;
    // Each confirmation pass gets a small budget: an instance whose
    // pricing keeps flip-flopping at the tolerance boundary must fail
    // fast into the recovery path, not grind away the caller's whole
    // iteration allowance.
    const long resume_budget =
        std::min(max_iters - total_iters, 4L * (m + n) + 16);
    outcome = iterate(t, ws, options, resume_budget, bland_after,
                      deadline, /*phase=*/2, /*iter_base=*/total_iters);
    total_iters += outcome.iterations;
    metrics.absorb(outcome);
    sol.iterations = total_iters;
    if (outcome.status == SolveStatus::kTimeLimit) {
      sol.status = outcome.status;
      return sol;
    }
    if (outcome.status != SolveStatus::kOptimal) {
      // The pivot loop said optimal, the confirmation pass now says
      // otherwise (budget churn, a spurious unbounded ray): that
      // contradiction is numerical instability, and reporting it as such
      // hands the solve to the warm→cold retry and the recovery ladder.
      sol.status = SolveStatus::kNumericalError;
      return sol;
    }
    if (outcome.iterations == 0) break;  // fresh-factor pricing agrees
  }


  // Self-check against eta-chain drift: the pivot loop tracks x
  // incrementally through the factorization, so if the factorization lost
  // accuracy mid-solve the exact recomputation above can land a basic
  // variable far outside its bounds. Returning that point as "optimal"
  // would be wrong; report the numerical breakdown instead (warm-started
  // solves are then retried cold by solve_impl).
  for (int i = 0; i < m; ++i) {
    const auto cs =
        static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)]);
    const double xv = t.x[cs];
    const double scale = 1.0 + std::fabs(xv);
    if (xv < t.lower[cs] - options.feasibility_tol * scale ||
        (std::isfinite(t.upper[cs]) &&
         xv > t.upper[cs] + options.feasibility_tol * scale)) {
      sol.status = SolveStatus::kNumericalError;
      return sol;
    }
  }

  sol.status = SolveStatus::kOptimal;
  sol.x.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double xj = t.x[static_cast<std::size_t>(j)];
    // Snap to bounds to remove O(tol) noise.
    const auto& v = problem.variable(j);
    if (std::fabs(xj - v.lower) < options.feasibility_tol) xj = v.lower;
    if (std::isfinite(v.upper) &&
        std::fabs(xj - v.upper) < options.feasibility_tol) {
      xj = v.upper;
    }
    sol.x[static_cast<std::size_t>(j)] = xj;
  }
  sol.objective = problem.objective_value(sol.x);

  // Duals from the final basis; convert to the problem's own sense.
  // Residual-checked iterative refinement keeps the reduced-cost
  // residuals certificate-grade on ill-conditioned bases.
  const std::span<double> y = ws.y;
  for (int i = 0; i < m; ++i) {
    y[static_cast<std::size_t>(i)] =
        t.cost[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)])];
  }
  metrics.refine_steps += factor.btran_refined(y);
  // Symmetric twin of the basic-value self-check above, for the dual
  // side: a basic column's reduced cost c_j − yᵀA_j is exactly the
  // residual of Bᵀy = c_B, so if refinement left any entry above
  // certificate grade — scaled per column the way the certificate scales
  // it — the duals and reduced costs derived from y below are fiction
  // (observed as near-O(1) duality gaps on near-singular bases, where
  // refinement stalls instead of converging). Report the breakdown;
  // warm-started solves then retry cold and the recovery ladder handles
  // the rest. The threshold sits just under the certificate's default
  // dual tolerance (1e-6), plus a rounding floor: computing c_j − yᵀA_j
  // itself rounds at eps per term of the dot product, so on extreme-range
  // columns (Σ|y_r·a_rj| ~ 1e11) even an exact y shows an O(1e-5)
  // residual. A residual under that floor is backward-error-perfect and
  // must not be mistaken for contamination.
  constexpr double kDualResidualTol = 5e-7;
  constexpr double kAccumulationTol = 1e-13;  // ~450·eps: rounding floor
  double gap_err = 0.0;    // Σ |r_i|·(1+|x_i|): duality-gap contamination
  double gap_mag = 1.0;    // Σ |c_i·x_i| over the basis: gap check scale
  double gap_floor = 0.0;  // Σ rounding-floor_i·(1+|x_i|): unavoidable
  for (int i = 0; i < m; ++i) {
    const auto cs =
        static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)]);
    double byi = 0.0;
    double acc = 0.0;  // Σ_r |y_r·a_ri|: the dot product's rounding scale
    for (int r = 0; r < m; ++r) {
      const double term = y[static_cast<std::size_t>(r)] *
                          t.a(static_cast<std::size_t>(r), cs);
      byi += term;
      acc += std::fabs(term);
    }
    const double ri = t.cost[cs] - byi;
    if (std::fabs(ri) > kDualResidualTol * (1.0 + std::fabs(t.cost[cs])) +
                            kAccumulationTol * acc) {
      sol.status = SolveStatus::kNumericalError;
      return sol;
    }
    gap_err += std::fabs(ri) * (1.0 + std::fabs(t.x[cs]));
    gap_mag += std::fabs(t.cost[cs] * t.x[cs]);
    gap_floor += kAccumulationTol * acc * (1.0 + std::fabs(t.x[cs]));
  }
  // A per-entry-clean residual can still poison the duality gap: a basic
  // variable parked at (or near) a huge bound multiplies its residual
  // into the dual objective via complementary slackness, so a 1e-8
  // residual on a 1e7-bounded column opens an O(0.1) gap no certifier
  // accepts. Weight each residual by its primal value and hold the sum
  // to gap grade.
  if (gap_err > kDualResidualTol * gap_mag + gap_floor) {
    sol.status = SolveStatus::kNumericalError;
    return sol;
  }
  sol.duals.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const double yi = y[static_cast<std::size_t>(i)];
    sol.duals[static_cast<std::size_t>(i)] = maximize ? -yi : yi;
  }
  sol.reduced_costs.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    double dj = t.cost[js];
    for (int i = 0; i < m; ++i) {
      dj -= y[static_cast<std::size_t>(i)] *
            t.a(static_cast<std::size_t>(i), js);
    }
    sol.reduced_costs[js] = maximize ? -dj : dj;
  }

  // Export the combinatorial basis so sibling solves can warm-start.
  sol.basis.variables.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    sol.basis.variables[js] =
        t.state[js] == VarState::kBasic
            ? VarStatus::kBasic
            : (t.state[js] == VarState::kAtUpper ? VarStatus::kAtUpper
                                                 : VarStatus::kAtLower);
  }
  sol.basis.rows.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const auto is = static_cast<std::size_t>(i);
    const int s = slack_of_row[is];
    const auto rcol = static_cast<std::size_t>(s >= 0 ? s : art_base + i);
    sol.basis.rows[is] = t.state[rcol] == VarState::kBasic
                             ? VarStatus::kBasic
                             : VarStatus::kAtLower;
  }

  if (final_tableau != nullptr) *final_tableau = t;
  return sol;
}

}  // namespace

Solution solve_impl(const Problem& problem, const SimplexOptions& options,
                    Tableau* final_tableau) {
  GRIDSEC_TRACE_SPAN("lp.simplex.solve");
  Solution sol;
  {
    // Lease the workspace for the solve (plus the built-in warm→cold
    // retry, which re-binds the same workspace). Released before the
    // recovery ladder below runs, so rung re-solves reuse the same
    // thread workspace instead of falling back to the heap.
    WorkspaceLease lease(options.workspace);
    {
      SimplexMetricsGuard metrics;
      sol = solve_impl_inner(problem, options, final_tableau, metrics,
                             lease.impl());
      metrics.status = sol.status;
      if (sol.warm_started && sol.status == SolveStatus::kNumericalError) {
        metrics.warm_rejected = true;
      }
    }
    if (sol.warm_started && sol.status == SolveStatus::kNumericalError) {
      // The warm basis steered the pivot sequence into numerical breakdown.
      // A warm start must never fail a solve that succeeds cold, so rerun
      // from the ordinary slack/artificial basis.
      GRIDSEC_LOG(kWarn, "lp.simplex")
          .field("vars", problem.num_variables())
          .field("rows", problem.num_constraints())
          .message("warm-started solve wedged; retrying cold");
      static obs::Counter& c_warm_cold_retries =
          obs::default_registry().counter("lp.simplex.warm_cold_retries");
      c_warm_cold_retries.add();
      SimplexOptions cold = options;
      cold.warm_start = Basis{};
      SimplexMetricsGuard metrics;
      sol = solve_impl_inner(problem, cold, final_tableau, metrics,
                             lease.impl());
      metrics.status = sol.status;
    }
  }
  // Numerical-recovery ladder (robust::recovery, when installed): a last
  // line of defense after the built-in warm→cold retry. Skipped on the
  // sensitivity path — ranging needs the tableau of the actual failed
  // solve, which a rung replacement would not match.
  if (sol.status == SolveStatus::kNumericalError && final_tableau == nullptr) {
    if (const RecoveryHook recover = recovery_hook(); recover != nullptr) {
      recover(problem, options, &sol);
    }
  }
  // Degraded verdicts are worth a record even at the default level; clean
  // solves only show up under GRIDSEC_LOG_LEVEL=debug.
  if (sol.status == SolveStatus::kNumericalError ||
      sol.status == SolveStatus::kTimeLimit ||
      sol.status == SolveStatus::kIterationLimit) {
    GRIDSEC_LOG(kWarn, "lp.simplex")
        .field("status", to_string(sol.status))
        .field("vars", problem.num_variables())
        .field("rows", problem.num_constraints())
        .field("pivots", sol.iterations)
        .message("simplex solve degraded");
  } else {
    GRIDSEC_LOG(kDebug, "lp.simplex")
        .field("status", to_string(sol.status))
        .field("vars", problem.num_variables())
        .field("rows", problem.num_constraints())
        .field("pivots", sol.iterations)
        .field("objective", sol.objective);
  }
  if (const SolveHook hook = solve_hook(); hook != nullptr) {
    hook(problem, sol, "lp.simplex");
  }
  return sol;
}

namespace {

constexpr double kRangeEps = 1e-11;

/// Reduced cost of column j under multipliers y (internal min sense).
double reduced_cost(const Tableau& t, const std::vector<double>& y, int j) {
  const auto js = static_cast<std::size_t>(j);
  double dj = t.cost[js];
  for (int i = 0; i < t.m; ++i) {
    dj -= y[static_cast<std::size_t>(i)] * t.a(static_cast<std::size_t>(i), js);
  }
  return dj;
}

}  // namespace

SensitivityReport analyze_sensitivity(const Problem& problem,
                                      const SimplexOptions& options) {
  SensitivityReport report;
  // The final tableau is a *view* into solver-workspace memory; ranging
  // reads it long after the solve returns, so back it with a local
  // workspace whose lifetime covers this whole function (the thread
  // workspace could be re-bound underneath us by any nested solve).
  SolverWorkspace sensitivity_ws;
  SimplexOptions opt = options;
  opt.workspace = &sensitivity_ws;
  Tableau t;
  report.solution = solve_impl(problem, opt, &t);
  if (report.solution.status != SolveStatus::kOptimal) return report;

  const bool maximize = problem.objective() == Objective::kMaximize;
  const int n = problem.num_variables();
  const int m = problem.num_constraints();

  // One factorization of the final basis serves every ranging query.
  BasisFactorization factor;
  Matrix bmat;
  build_basis_matrix(t, bmat);
  if (!factor.refactorize(bmat)) {
    return report;  // numerically wedged: no ranges
  }
  std::vector<double> y(static_cast<std::size_t>(m));
  compute_multipliers(t, factor, y);

  // Map basic structural columns to their basis row.
  std::vector<int> row_of_col(static_cast<std::size_t>(t.n_total), -1);
  for (int i = 0; i < t.m; ++i) {
    row_of_col[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)])] = i;
  }

  // ---- Objective-coefficient ranging (internal min sense first). ----
  report.objective_range.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double c_int = t.cost[js];
    SensitivityRange range;  // on the internal coefficient
    if (t.state[js] == VarState::kAtLower) {
      // d_j >= 0 must persist: c may drop by d_j, rise freely.
      const double dj = reduced_cost(t, y, j);
      range.lo = c_int - dj;
      range.hi = kInfinity;
    } else if (t.state[js] == VarState::kAtUpper) {
      const double dj = reduced_cost(t, y, j);  // <= 0 at optimum
      range.lo = -kInfinity;
      range.hi = c_int - dj;
    } else {
      // Basic in row r: perturbing c_j by delta shifts every nonbasic
      // reduced cost by -delta * alpha_rk; keep their signs.
      const int r = row_of_col[js];
      GRIDSEC_ASSERT(r >= 0);
      std::vector<double> z(static_cast<std::size_t>(t.m), 0.0);
      z[static_cast<std::size_t>(r)] = 1.0;
      factor.btran(z);
      double lo = -kInfinity, hi = kInfinity;
      for (int k = 0; k < t.n_total; ++k) {
        const auto ks = static_cast<std::size_t>(k);
        if (t.state[ks] == VarState::kBasic) continue;
        if (t.upper[ks] - t.lower[ks] < kRangeEps) continue;  // fixed col
        double alpha = 0.0;
        for (int i = 0; i < t.m; ++i) {
          alpha += z[static_cast<std::size_t>(i)] *
                   t.a(static_cast<std::size_t>(i), ks);
        }
        if (std::fabs(alpha) < kRangeEps) continue;
        const double dk = reduced_cost(t, y, k);
        // Constraint: for at-lower columns dk - delta*alpha >= 0;
        // for at-upper columns dk - delta*alpha <= 0.
        const bool ge = t.state[ks] == VarState::kAtLower;
        const double limit = dk / alpha;
        if ((ge && alpha > 0.0) || (!ge && alpha < 0.0)) {
          hi = std::min(hi, limit);
        } else {
          lo = std::max(lo, limit);
        }
      }
      range.lo = lo >= -kInfinity / 2 ? c_int + lo : -kInfinity;
      range.hi = hi <= kInfinity / 2 ? c_int + hi : kInfinity;
      if (!std::isfinite(lo)) range.lo = -kInfinity;
      if (!std::isfinite(hi)) range.hi = kInfinity;
    }
    // Map back to the user's sense.
    if (maximize) {
      report.objective_range[js] = {-range.hi, -range.lo};
    } else {
      report.objective_range[js] = range;
    }
  }

  // ---- RHS ranging: keep x_B within bounds as b_i moves. ----
  report.rhs_range.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    std::vector<double> w(static_cast<std::size_t>(t.m), 0.0);
    w[static_cast<std::size_t>(i)] = 1.0;
    factor.ftran(w);
    SensitivityRange range;
    {
      double lo = -kInfinity, hi = kInfinity;
      for (int r = 0; r < t.m; ++r) {
        const auto rs = static_cast<std::size_t>(r);
        const double wr = w[rs];
        if (std::fabs(wr) < kRangeEps) continue;
        const auto bcol = static_cast<std::size_t>(t.basis[rs]);
        const double xb = t.x[bcol];
        const double room_up = std::isfinite(t.upper[bcol])
                                   ? t.upper[bcol] - xb
                                   : kInfinity;
        const double room_dn = xb - t.lower[bcol];
        // x_B(r) moves by wr * delta.
        if (wr > 0.0) {
          hi = std::min(hi, room_up / wr);
          lo = std::max(lo, -room_dn / wr);
        } else {
          hi = std::min(hi, room_dn / -wr);
          lo = std::max(lo, -room_up / -wr);
        }
      }
      const double rhs = problem.constraint(i).rhs;
      range.lo = std::isfinite(lo) ? rhs + lo : -kInfinity;
      range.hi = std::isfinite(hi) ? rhs + hi : kInfinity;
    }
    report.rhs_range[static_cast<std::size_t>(i)] = range;
  }
  return report;
}

Solution SimplexSolver::solve(const Problem& problem) const {
  return solve_impl(problem, options_, nullptr);
}

Solution solve_lp(const Problem& problem) {
  return solve_impl(problem, SimplexOptions{}, nullptr);
}

Solution solve_lp(const Problem& problem, const SimplexOptions& options) {
  return solve_impl(problem, options, nullptr);
}

}  // namespace gridsec::lp
