#include "gridsec/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/deadline.hpp"
#include "gridsec/util/matrix.hpp"

namespace gridsec::lp {
namespace {

enum class VarState { kBasic, kAtLower, kAtUpper };

/// The working standard-form tableau: A x = b with per-column bounds,
/// columns ordered [structural | slack | artificial].
struct Tableau {
  Matrix a;                    // m x ncols
  std::vector<double> b;       // m
  std::vector<double> lower;   // ncols
  std::vector<double> upper;   // ncols
  std::vector<double> cost;    // ncols, phase-dependent
  std::vector<double> x;       // ncols, current point
  std::vector<int> basis;      // m, column basic in each row
  std::vector<VarState> state; // ncols
  int n_struct = 0;
  int n_total = 0;
  int m = 0;
};

struct IterationOutcome {
  SolveStatus status = SolveStatus::kOptimal;
  long iterations = 0;
  long degenerate_pivots = 0;
  long bound_flips = 0;
  long bland_pivots = 0;      // pivots taken under Bland's rule
  bool cycle_fallback = false;  // cycling detected; Bland forced early
};

/// Extracts the basis matrix B (m x m) from the tableau.
Matrix basis_matrix(const Tableau& t) {
  Matrix b(static_cast<std::size_t>(t.m), static_cast<std::size_t>(t.m));
  for (int i = 0; i < t.m; ++i) {
    const int col = t.basis[static_cast<std::size_t>(i)];
    for (int r = 0; r < t.m; ++r) {
      b(static_cast<std::size_t>(r), static_cast<std::size_t>(i)) =
          t.a(static_cast<std::size_t>(r), static_cast<std::size_t>(col));
    }
  }
  return b;
}

/// Recomputes the values of the basic variables from the nonbasic point:
/// x_B = B^{-1} (b - A_N x_N). Returns false if B is singular.
bool recompute_basics(Tableau& t) {
  std::vector<double> rhs = t.b;
  for (int j = 0; j < t.n_total; ++j) {
    if (t.state[static_cast<std::size_t>(j)] == VarState::kBasic) continue;
    const double xj = t.x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    for (int i = 0; i < t.m; ++i) {
      rhs[static_cast<std::size_t>(i)] -=
          t.a(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) * xj;
    }
  }
  auto sol = solve_linear_system(basis_matrix(t), std::move(rhs));
  if (!sol.is_ok()) return false;
  for (int i = 0; i < t.m; ++i) {
    t.x[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)])] =
        sol.value()[static_cast<std::size_t>(i)];
  }
  return true;
}

/// Solves B^T y = c_B for the simplex multipliers.
StatusOr<std::vector<double>> multipliers(const Tableau& t) {
  std::vector<double> cb(static_cast<std::size_t>(t.m));
  for (int i = 0; i < t.m; ++i) {
    cb[static_cast<std::size_t>(i)] =
        t.cost[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)])];
  }
  return solve_linear_system(basis_matrix(t).transposed(), std::move(cb));
}

/// Runs primal simplex pivots on `t` with the current cost vector until
/// optimal / unbounded / iteration budget exhausted. `phase` and
/// `iter_base` only label observer events (cumulative iteration ids).
IterationOutcome iterate(Tableau& t, const SimplexOptions& opt,
                         long max_iters, long bland_after,
                         const Deadline& deadline, int phase,
                         long iter_base) {
  IterationOutcome out;
  const double dtol = opt.optimality_tol;
  const double eps = 1e-11;
  const bool observed = static_cast<bool>(opt.observer);

  // Cycling detection: a run of degenerate pivots this long under the
  // steepest-violation rule is treated as (near-)cycling and the pricing
  // falls back to Bland's rule, which provably terminates.
  long cycle_limit = opt.cycle_streak_limit;
  if (cycle_limit <= 0) cycle_limit = std::max(20L, 2L * (t.m + t.n_total));
  long degen_streak = 0;
  bool forced_bland = false;

  for (long iter = 0; iter < max_iters; ++iter) {
    if (deadline.expired()) {
      out.status = SolveStatus::kTimeLimit;
      out.iterations = iter;
      return out;
    }
    const bool bland = forced_bland || iter >= bland_after;
    auto y_or = multipliers(t);
    if (!y_or.is_ok()) {
      // Singular basis: numerically wedged, not a budget problem.
      out.status = SolveStatus::kNumericalError;
      out.iterations = iter;
      return out;
    }
    const std::vector<double>& y = y_or.value();

    // Pricing: pick an entering column.
    int entering = -1;
    double best_violation = dtol;
    int enter_dir = 0;  // +1 entering rises from lower, -1 falls from upper
    for (int j = 0; j < t.n_total; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (t.state[js] == VarState::kBasic) continue;
      if (t.upper[js] - t.lower[js] < eps) continue;  // fixed
      double dj = t.cost[js];
      for (int i = 0; i < t.m; ++i) {
        dj -= y[static_cast<std::size_t>(i)] *
              t.a(static_cast<std::size_t>(i), js);
      }
      int dir = 0;
      double violation = 0.0;
      if (t.state[js] == VarState::kAtLower && dj < -dtol) {
        dir = +1;
        violation = -dj;
      } else if (t.state[js] == VarState::kAtUpper && dj > dtol) {
        dir = -1;
        violation = dj;
      } else {
        continue;
      }
      if (bland) {
        entering = j;
        enter_dir = dir;
        break;  // first eligible index (Bland)
      }
      if (violation > best_violation) {
        best_violation = violation;
        entering = j;
        enter_dir = dir;
      }
    }
    if (entering < 0) {
      out.status = SolveStatus::kOptimal;
      out.iterations = iter;
      return out;
    }

    // Direction of basic variables: w = B^{-1} A_q; moving the entering
    // variable by t changes x_B by -enter_dir * w * t.
    std::vector<double> aq(static_cast<std::size_t>(t.m));
    for (int i = 0; i < t.m; ++i) {
      aq[static_cast<std::size_t>(i)] =
          t.a(static_cast<std::size_t>(i), static_cast<std::size_t>(entering));
    }
    auto w_or = solve_linear_system(basis_matrix(t), std::move(aq));
    if (!w_or.is_ok()) {
      out.status = SolveStatus::kNumericalError;
      out.iterations = iter;
      return out;
    }
    const std::vector<double>& w = w_or.value();

    const auto eq = static_cast<std::size_t>(entering);
    double t_limit = t.upper[eq] - t.lower[eq];  // bound-flip distance
    int leaving_row = -1;     // -1 = bound flip
    int leaving_bound = 0;    // -1 lower, +1 upper
    for (int i = 0; i < t.m; ++i) {
      const auto is = static_cast<std::size_t>(i);
      const double delta = -enter_dir * w[is];
      const auto bcol = static_cast<std::size_t>(t.basis[is]);
      double limit;
      int hit;
      if (delta < -eps) {
        limit = (t.x[bcol] - t.lower[bcol]) / (-delta);
        hit = -1;
      } else if (delta > eps) {
        if (!std::isfinite(t.upper[bcol])) continue;
        limit = (t.upper[bcol] - t.x[bcol]) / delta;
        hit = +1;
      } else {
        continue;
      }
      if (limit < 0.0) limit = 0.0;  // degenerate clip
      if (limit < t_limit - eps) {
        t_limit = limit;
        leaving_row = i;
        leaving_bound = hit;
      } else if (leaving_row >= 0 && limit < t_limit + eps) {
        // Tie: under Bland prefer the smallest basic index (termination);
        // otherwise the largest pivot magnitude (stability).
        const auto ls = static_cast<std::size_t>(leaving_row);
        const bool take = bland ? t.basis[is] < t.basis[ls]
                                : std::fabs(w[is]) > std::fabs(w[ls]);
        if (take) {
          t_limit = std::min(t_limit, limit);
          leaving_row = i;
          leaving_bound = hit;
        }
      }
    }

    if (!std::isfinite(t_limit)) {
      out.status = SolveStatus::kUnbounded;
      out.iterations = iter;
      return out;
    }

    // Apply the step.
    for (int i = 0; i < t.m; ++i) {
      const auto is = static_cast<std::size_t>(i);
      const auto bcol = static_cast<std::size_t>(t.basis[is]);
      t.x[bcol] += -enter_dir * w[is] * t_limit;
    }
    t.x[eq] += enter_dir * t_limit;

    const bool degenerate = t_limit <= eps;
    if (degenerate) ++out.degenerate_pivots;
    if (bland) ++out.bland_pivots;
    degen_streak = degenerate ? degen_streak + 1 : 0;
    if (!forced_bland && degen_streak >= cycle_limit) {
      forced_bland = true;  // takes effect from the next pivot on
      out.cycle_fallback = true;
    }

    if (leaving_row < 0) {
      // Bound flip: entering variable traverses to its opposite bound.
      t.state[eq] = enter_dir > 0 ? VarState::kAtUpper : VarState::kAtLower;
      t.x[eq] = enter_dir > 0 ? t.upper[eq] : t.lower[eq];
      ++out.bound_flips;
      if (observed) {
        obs::SimplexIterationEvent ev;
        ev.iteration = iter_base + iter;
        ev.phase = phase;
        ev.entering = entering;
        ev.leaving = -1;
        ev.step = t_limit;
        ev.bound_flip = true;
        ev.degenerate = degenerate;
        ev.bland = bland;
        opt.observer(ev);
      }
      continue;
    }

    const auto lrow = static_cast<std::size_t>(leaving_row);
    const auto lcol = static_cast<std::size_t>(t.basis[lrow]);
    t.state[lcol] =
        leaving_bound < 0 ? VarState::kAtLower : VarState::kAtUpper;
    t.x[lcol] = leaving_bound < 0 ? t.lower[lcol] : t.upper[lcol];
    t.basis[lrow] = entering;
    t.state[eq] = VarState::kBasic;
    if (observed) {
      obs::SimplexIterationEvent ev;
      ev.iteration = iter_base + iter;
      ev.phase = phase;
      ev.entering = entering;
      ev.leaving = static_cast<int>(lcol);
      ev.step = t_limit;
      ev.degenerate = degenerate;
      ev.bland = bland;
      opt.observer(ev);
    }
  }
  out.status = SolveStatus::kIterationLimit;
  out.iterations = max_iters;
  return out;
}

/// Flushes per-solve pivot totals into the default metric registry on every
/// exit path. Registry handles are resolved once per process (function-local
/// statics), so the steady-state cost is a handful of relaxed atomic adds
/// per *solve* — never per iteration.
struct SimplexMetricsGuard {
  long pivots = 0;
  long degenerate = 0;
  long bound_flips = 0;
  long bland = 0;
  long cycle_fallbacks = 0;
  SolveStatus status = SolveStatus::kOptimal;

  ~SimplexMetricsGuard() {
    auto& reg = obs::default_registry();
    static obs::Counter& solves = reg.counter("lp.simplex.solves");
    static obs::Counter& c_pivots = reg.counter("lp.simplex.pivots");
    static obs::Counter& c_degen =
        reg.counter("lp.simplex.degenerate_pivots");
    static obs::Counter& c_flips = reg.counter("lp.simplex.bound_flips");
    static obs::Counter& c_bland = reg.counter("lp.simplex.bland_pivots");
    static obs::Counter& c_failed = reg.counter("lp.simplex.non_optimal");
    static obs::Counter& c_cycles = reg.counter("lp.simplex.cycle_fallbacks");
    static obs::Counter& c_timeouts = reg.counter("lp.simplex.time_limits");
    static obs::Counter& c_numerical =
        reg.counter("lp.simplex.numerical_errors");
    static obs::Histogram& h_pivots = reg.histogram(
        "lp.simplex.pivots_per_solve",
        {0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0});
    solves.add();
    c_pivots.add(pivots);
    c_degen.add(degenerate);
    c_flips.add(bound_flips);
    c_bland.add(bland);
    c_cycles.add(cycle_fallbacks);
    if (status != SolveStatus::kOptimal) c_failed.add();
    if (status == SolveStatus::kTimeLimit) c_timeouts.add();
    if (status == SolveStatus::kNumericalError) c_numerical.add();
    h_pivots.observe(static_cast<double>(pivots));
  }

  void absorb(const IterationOutcome& out) {
    pivots += out.iterations;
    degenerate += out.degenerate_pivots;
    bound_flips += out.bound_flips;
    bland += out.bland_pivots;
    if (out.cycle_fallback) ++cycle_fallbacks;
  }
};

/// Full solve; when `final_tableau` is non-null and the solve is optimal,
/// the cleaned final tableau is copied out for post-optimal analysis.
Solution solve_impl_inner(const Problem& problem,
                          const SimplexOptions& options,
                          Tableau* final_tableau,
                          SimplexMetricsGuard& metrics) {
  Solution sol;
  if (!validate_problem(problem).is_ok()) {
    sol.status = SolveStatus::kNumericalError;
    return sol;
  }
  const Deadline deadline = Deadline::in_ms(options.time_limit_ms);
  const int n = problem.num_variables();
  const int m = problem.num_constraints();
  const bool maximize = problem.objective() == Objective::kMaximize;

  // Count slacks.
  int n_slack = 0;
  for (const auto& con : problem.constraints()) {
    if (con.sense != Sense::kEqual) ++n_slack;
  }

  Tableau t;
  t.m = m;
  t.n_struct = n;
  t.n_total = n + n_slack + m;  // artificials allocated per row, used lazily
  t.a = Matrix(static_cast<std::size_t>(m), static_cast<std::size_t>(t.n_total));
  t.b.resize(static_cast<std::size_t>(m));
  t.lower.assign(static_cast<std::size_t>(t.n_total), 0.0);
  t.upper.assign(static_cast<std::size_t>(t.n_total), 0.0);
  t.cost.assign(static_cast<std::size_t>(t.n_total), 0.0);
  t.x.assign(static_cast<std::size_t>(t.n_total), 0.0);
  t.state.assign(static_cast<std::size_t>(t.n_total), VarState::kAtLower);
  t.basis.assign(static_cast<std::size_t>(m), -1);

  // Structural columns.
  for (int j = 0; j < n; ++j) {
    const auto& v = problem.variable(j);
    const auto js = static_cast<std::size_t>(j);
    t.lower[js] = v.lower;
    t.upper[js] = v.upper;
    t.x[js] = v.lower;
    t.state[js] = VarState::kAtLower;
  }
  // Rows + slack columns.
  int slack_cursor = n;
  std::vector<int> slack_of_row(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const auto& con = problem.constraint(i);
    const auto is = static_cast<std::size_t>(i);
    for (const Term& term : con.terms) {
      t.a(is, static_cast<std::size_t>(term.var)) += term.coef;
    }
    t.b[is] = con.rhs;
    if (con.sense != Sense::kEqual) {
      const int s = slack_cursor++;
      const auto ss = static_cast<std::size_t>(s);
      t.a(is, ss) = con.sense == Sense::kLessEqual ? 1.0 : -1.0;
      t.lower[ss] = 0.0;
      t.upper[ss] = kInfinity;
      t.x[ss] = 0.0;
      slack_of_row[is] = s;
    }
  }

  // Initial basis: slack when it yields a feasible basic value, else an
  // artificial sized to the residual.
  const int art_base = n + n_slack;
  std::vector<bool> artificial_used(static_cast<std::size_t>(m), false);
  for (int i = 0; i < m; ++i) {
    const auto is = static_cast<std::size_t>(i);
    double residual = t.b[is];
    for (int j = 0; j < n; ++j) {
      residual -= t.a(is, static_cast<std::size_t>(j)) *
                  t.x[static_cast<std::size_t>(j)];
    }
    const auto& con = problem.constraint(i);
    const int s = slack_of_row[is];
    const bool slack_feasible =
        s >= 0 && ((con.sense == Sense::kLessEqual && residual >= 0.0) ||
                   (con.sense == Sense::kGreaterEqual && residual <= 0.0));
    if (slack_feasible) {
      const auto ss = static_cast<std::size_t>(s);
      t.basis[is] = s;
      t.state[ss] = VarState::kBasic;
      t.x[ss] = con.sense == Sense::kLessEqual ? residual : -residual;
      continue;
    }
    const int art = art_base + i;
    const auto as = static_cast<std::size_t>(art);
    t.a(is, as) = residual >= 0.0 ? 1.0 : -1.0;
    t.lower[as] = 0.0;
    t.upper[as] = kInfinity;
    t.x[as] = std::fabs(residual);
    t.basis[is] = art;
    t.state[as] = VarState::kBasic;
    artificial_used[is] = true;
  }

  long max_iters = options.max_iterations;
  if (max_iters <= 0) max_iters = 2000 + 200L * (m + n);
  long bland_after = options.bland_after;
  if (bland_after <= 0) bland_after = std::max(200L, 20L * (m + n));

  long total_iters = 0;
  bool any_artificial = false;
  for (int i = 0; i < m; ++i) {
    any_artificial = any_artificial || artificial_used[static_cast<std::size_t>(i)];
  }

  // Phase 1: drive artificials to zero.
  if (any_artificial) {
    for (int i = 0; i < m; ++i) {
      if (artificial_used[static_cast<std::size_t>(i)]) {
        t.cost[static_cast<std::size_t>(art_base + i)] = 1.0;
      }
    }
    auto outcome = iterate(t, options, max_iters, bland_after, deadline,
                           /*phase=*/1, /*iter_base=*/0);
    total_iters += outcome.iterations;
    metrics.absorb(outcome);
    if (outcome.status == SolveStatus::kIterationLimit ||
        outcome.status == SolveStatus::kTimeLimit ||
        outcome.status == SolveStatus::kNumericalError) {
      sol.status = outcome.status;
      sol.iterations = total_iters;
      return sol;
    }
    if (outcome.status == SolveStatus::kUnbounded) {
      // Phase 1 minimizes a sum of nonnegative artificials: an "unbounded"
      // verdict can only come from numerical breakdown.
      sol.status = SolveStatus::kNumericalError;
      sol.iterations = total_iters;
      return sol;
    }
    double phase1_obj = 0.0;
    for (int i = 0; i < m; ++i) {
      if (artificial_used[static_cast<std::size_t>(i)]) {
        phase1_obj += t.x[static_cast<std::size_t>(art_base + i)];
      }
    }
    if (phase1_obj > options.feasibility_tol) {
      sol.status = SolveStatus::kInfeasible;
      sol.iterations = total_iters;
      return sol;
    }
    // Freeze artificials at zero for phase 2.
    for (int i = 0; i < m; ++i) {
      if (!artificial_used[static_cast<std::size_t>(i)]) continue;
      const auto as = static_cast<std::size_t>(art_base + i);
      t.cost[as] = 0.0;
      t.lower[as] = 0.0;
      t.upper[as] = 0.0;
      if (t.state[as] != VarState::kBasic) t.x[as] = 0.0;
    }
  }

  // Phase 2: original costs (negated for maximization; internal = minimize).
  for (int j = 0; j < n; ++j) {
    const double c = problem.variable(j).objective;
    t.cost[static_cast<std::size_t>(j)] = maximize ? -c : c;
  }
  auto outcome = iterate(t, options, max_iters, bland_after, deadline,
                         /*phase=*/2, /*iter_base=*/total_iters);
  total_iters += outcome.iterations;
  metrics.absorb(outcome);
  sol.iterations = total_iters;
  if (outcome.status != SolveStatus::kOptimal) {
    sol.status = outcome.status;
    return sol;
  }

  // Clean up accumulated drift before extraction.
  if (!recompute_basics(t)) {
    sol.status = SolveStatus::kNumericalError;
    return sol;
  }

  sol.status = SolveStatus::kOptimal;
  sol.x.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double xj = t.x[static_cast<std::size_t>(j)];
    // Snap to bounds to remove O(tol) noise.
    const auto& v = problem.variable(j);
    if (std::fabs(xj - v.lower) < options.feasibility_tol) xj = v.lower;
    if (std::isfinite(v.upper) &&
        std::fabs(xj - v.upper) < options.feasibility_tol) {
      xj = v.upper;
    }
    sol.x[static_cast<std::size_t>(j)] = xj;
  }
  sol.objective = problem.objective_value(sol.x);

  // Duals from the final basis; convert to the problem's own sense.
  auto y_or = multipliers(t);
  if (y_or.is_ok()) {
    sol.duals.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const double yi = y_or.value()[static_cast<std::size_t>(i)];
      sol.duals[static_cast<std::size_t>(i)] = maximize ? -yi : yi;
    }
    sol.reduced_costs.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const auto js = static_cast<std::size_t>(j);
      double dj = t.cost[js];
      for (int i = 0; i < m; ++i) {
        dj -= y_or.value()[static_cast<std::size_t>(i)] *
              t.a(static_cast<std::size_t>(i), js);
      }
      sol.reduced_costs[js] = maximize ? -dj : dj;
    }
  }
  if (final_tableau != nullptr) *final_tableau = t;
  return sol;
}

}  // namespace

Solution solve_impl(const Problem& problem, const SimplexOptions& options,
                    Tableau* final_tableau) {
  GRIDSEC_TRACE_SPAN("lp.simplex.solve");
  SimplexMetricsGuard metrics;
  Solution sol = solve_impl_inner(problem, options, final_tableau, metrics);
  metrics.status = sol.status;
  // Degraded verdicts are worth a record even at the default level; clean
  // solves only show up under GRIDSEC_LOG_LEVEL=debug.
  if (sol.status == SolveStatus::kNumericalError ||
      sol.status == SolveStatus::kTimeLimit ||
      sol.status == SolveStatus::kIterationLimit) {
    GRIDSEC_LOG(kWarn, "lp.simplex")
        .field("status", to_string(sol.status))
        .field("vars", problem.num_variables())
        .field("rows", problem.num_constraints())
        .field("pivots", sol.iterations)
        .message("simplex solve degraded");
  } else {
    GRIDSEC_LOG(kDebug, "lp.simplex")
        .field("status", to_string(sol.status))
        .field("vars", problem.num_variables())
        .field("rows", problem.num_constraints())
        .field("pivots", sol.iterations)
        .field("objective", sol.objective);
  }
  if (const SolveHook hook = solve_hook(); hook != nullptr) {
    hook(problem, sol, "lp.simplex");
  }
  return sol;
}

namespace {

constexpr double kRangeEps = 1e-11;

/// Reduced cost of column j under multipliers y (internal min sense).
double reduced_cost(const Tableau& t, const std::vector<double>& y, int j) {
  const auto js = static_cast<std::size_t>(j);
  double dj = t.cost[js];
  for (int i = 0; i < t.m; ++i) {
    dj -= y[static_cast<std::size_t>(i)] * t.a(static_cast<std::size_t>(i), js);
  }
  return dj;
}

}  // namespace

SensitivityReport analyze_sensitivity(const Problem& problem,
                                      const SimplexOptions& options) {
  SensitivityReport report;
  Tableau t;
  report.solution = solve_impl(problem, options, &t);
  if (report.solution.status != SolveStatus::kOptimal) return report;

  const bool maximize = problem.objective() == Objective::kMaximize;
  const int n = problem.num_variables();
  const int m = problem.num_constraints();

  auto y_or = multipliers(t);
  if (!y_or.is_ok()) return report;  // numerically wedged: no ranges
  const std::vector<double>& y = y_or.value();

  // Map basic structural columns to their basis row.
  std::vector<int> row_of_col(static_cast<std::size_t>(t.n_total), -1);
  for (int i = 0; i < t.m; ++i) {
    row_of_col[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(i)])] = i;
  }

  // ---- Objective-coefficient ranging (internal min sense first). ----
  report.objective_range.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const double c_int = t.cost[js];
    SensitivityRange range;  // on the internal coefficient
    if (t.state[js] == VarState::kAtLower) {
      // d_j >= 0 must persist: c may drop by d_j, rise freely.
      const double dj = reduced_cost(t, y, j);
      range.lo = c_int - dj;
      range.hi = kInfinity;
    } else if (t.state[js] == VarState::kAtUpper) {
      const double dj = reduced_cost(t, y, j);  // <= 0 at optimum
      range.lo = -kInfinity;
      range.hi = c_int - dj;
    } else {
      // Basic in row r: perturbing c_j by delta shifts every nonbasic
      // reduced cost by -delta * alpha_rk; keep their signs.
      const int r = row_of_col[js];
      GRIDSEC_ASSERT(r >= 0);
      std::vector<double> er(static_cast<std::size_t>(t.m), 0.0);
      er[static_cast<std::size_t>(r)] = 1.0;
      auto z_or = solve_linear_system(basis_matrix(t).transposed(),
                                      std::move(er));
      if (!z_or.is_ok()) continue;  // leave infinite (conservative skip)
      const std::vector<double>& z = z_or.value();
      double lo = -kInfinity, hi = kInfinity;
      for (int k = 0; k < t.n_total; ++k) {
        const auto ks = static_cast<std::size_t>(k);
        if (t.state[ks] == VarState::kBasic) continue;
        if (t.upper[ks] - t.lower[ks] < kRangeEps) continue;  // fixed col
        double alpha = 0.0;
        for (int i = 0; i < t.m; ++i) {
          alpha += z[static_cast<std::size_t>(i)] *
                   t.a(static_cast<std::size_t>(i), ks);
        }
        if (std::fabs(alpha) < kRangeEps) continue;
        const double dk = reduced_cost(t, y, k);
        // Constraint: for at-lower columns dk - delta*alpha >= 0;
        // for at-upper columns dk - delta*alpha <= 0.
        const bool ge = t.state[ks] == VarState::kAtLower;
        const double limit = dk / alpha;
        if ((ge && alpha > 0.0) || (!ge && alpha < 0.0)) {
          hi = std::min(hi, limit);
        } else {
          lo = std::max(lo, limit);
        }
      }
      range.lo = lo >= -kInfinity / 2 ? c_int + lo : -kInfinity;
      range.hi = hi <= kInfinity / 2 ? c_int + hi : kInfinity;
      if (!std::isfinite(lo)) range.lo = -kInfinity;
      if (!std::isfinite(hi)) range.hi = kInfinity;
    }
    // Map back to the user's sense.
    if (maximize) {
      report.objective_range[js] = {-range.hi, -range.lo};
    } else {
      report.objective_range[js] = range;
    }
  }

  // ---- RHS ranging: keep x_B within bounds as b_i moves. ----
  report.rhs_range.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    std::vector<double> ei(static_cast<std::size_t>(t.m), 0.0);
    ei[static_cast<std::size_t>(i)] = 1.0;
    auto w_or = solve_linear_system(basis_matrix(t), std::move(ei));
    SensitivityRange range;
    if (w_or.is_ok()) {
      const std::vector<double>& w = w_or.value();
      double lo = -kInfinity, hi = kInfinity;
      for (int r = 0; r < t.m; ++r) {
        const auto rs = static_cast<std::size_t>(r);
        const double wr = w[rs];
        if (std::fabs(wr) < kRangeEps) continue;
        const auto bcol = static_cast<std::size_t>(t.basis[rs]);
        const double xb = t.x[bcol];
        const double room_up = std::isfinite(t.upper[bcol])
                                   ? t.upper[bcol] - xb
                                   : kInfinity;
        const double room_dn = xb - t.lower[bcol];
        // x_B(r) moves by wr * delta.
        if (wr > 0.0) {
          hi = std::min(hi, room_up / wr);
          lo = std::max(lo, -room_dn / wr);
        } else {
          hi = std::min(hi, room_dn / -wr);
          lo = std::max(lo, -room_up / -wr);
        }
      }
      const double rhs = problem.constraint(i).rhs;
      range.lo = std::isfinite(lo) ? rhs + lo : -kInfinity;
      range.hi = std::isfinite(hi) ? rhs + hi : kInfinity;
    }
    report.rhs_range[static_cast<std::size_t>(i)] = range;
  }
  return report;
}

Solution SimplexSolver::solve(const Problem& problem) const {
  return solve_impl(problem, options_, nullptr);
}

Solution solve_lp(const Problem& problem) {
  return SimplexSolver().solve(problem);
}

}  // namespace gridsec::lp
