#include "gridsec/lp/workspace.hpp"

#include <algorithm>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/util/thread_pool.hpp"
#include "workspace_internal.hpp"

namespace gridsec::lp {

namespace detail {

void WorkspaceImpl::bind(int m, int n_struct, int n_total) {
  arena.reset();
  ++binds;
  const auto ms = static_cast<std::size_t>(m);
  const auto ns = static_cast<std::size_t>(n_total);

  auto carve_tableau = [&](Tableau& tab) {
    tab.a = MatrixView{arena.allocate_span<double>(ms * ns).data(), ms, ns};
    tab.b = arena.allocate_span<double>(ms);
    tab.lower = arena.allocate_span<double>(ns);
    tab.upper = arena.allocate_span<double>(ns);
    tab.cost = arena.allocate_span<double>(ns);
    tab.x = arena.allocate_span<double>(ns);
    tab.basis = arena.allocate_span<int>(ms);
    tab.state = arena.allocate_span<VarState>(ns);
    tab.m = m;
    tab.n_struct = n_struct;
    tab.n_total = n_total;
  };
  carve_tableau(t);
  carve_tableau(backup);  // filled only when a warm start snapshots

  y = arena.allocate_span<double>(ms);
  w = arena.allocate_span<double>(ms);
  xb = arena.allocate_span<double>(ms);
  slack_of_row = arena.allocate_span<int>(ms);
  row_basic_col = arena.allocate_span<int>(ms);
  candidates = arena.allocate_span<int>(ns + ms);
  artificial_used = arena.allocate_span<unsigned char>(ms);
  used_row = arena.allocate_span<unsigned char>(ms);

  // Cold-start defaults, identical to the values the solver historically
  // built its per-solve vectors with.
  std::fill(t.a.data, t.a.data + ms * ns, 0.0);
  std::fill(t.b.begin(), t.b.end(), 0.0);
  std::fill(t.lower.begin(), t.lower.end(), 0.0);
  std::fill(t.upper.begin(), t.upper.end(), 0.0);
  std::fill(t.cost.begin(), t.cost.end(), 0.0);
  std::fill(t.x.begin(), t.x.end(), 0.0);
  std::fill(t.basis.begin(), t.basis.end(), -1);
  std::fill(t.state.begin(), t.state.end(), VarState::kAtLower);
  std::fill(slack_of_row.begin(), slack_of_row.end(), -1);
  std::fill(artificial_used.begin(), artificial_used.end(),
            static_cast<unsigned char>(0));
}

WorkspaceLease::WorkspaceLease(SolverWorkspace* requested) {
  SolverWorkspace& ws =
      requested != nullptr ? *requested : thread_solver_workspace();
  if (ws.impl().in_use) {
    static obs::Counter& c_nested =
        obs::default_registry().counter("lp.workspace.nested_fallbacks");
    c_nested.add();
    owned_ = std::make_unique<WorkspaceImpl>();
    impl_ = owned_.get();
    impl_->in_use = true;
    return;
  }
  impl_ = &ws.impl();
  impl_->in_use = true;
}

WorkspaceLease::~WorkspaceLease() { impl_->in_use = false; }

}  // namespace detail

SolverWorkspace::SolverWorkspace()
    : impl_(std::make_unique<detail::WorkspaceImpl>()) {}

SolverWorkspace::~SolverWorkspace() = default;

void SolverWorkspace::reset() {
  GRIDSEC_ASSERT_MSG(!impl_->in_use, "reset during an active solve");
  const std::size_t binds = impl_->binds;
  impl_ = std::make_unique<detail::WorkspaceImpl>();
  impl_->binds = binds;
}

SolverWorkspace::Stats SolverWorkspace::stats() const {
  const util::Arena::Stats a = impl_->arena.stats();
  return Stats{a.capacity, a.high_water, impl_->binds};
}

util::Arena& SolverWorkspace::arena() { return impl_->arena; }

SolverWorkspace& thread_solver_workspace() {
  // On a pool worker the workspace must die with the worker (its arena may
  // be large), so it lives in the worker's scratch slot. Off-pool threads
  // get an ordinary thread_local.
  if (WorkerScratch* scratch = ThreadPool::current_scratch()) {
    return scratch->slot<SolverWorkspace>();
  }
  thread_local SolverWorkspace ws;
  return ws;
}

}  // namespace gridsec::lp
