#include "gridsec/lp/basis.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "gridsec/obs/trace.hpp"

namespace gridsec::lp {
namespace {

std::atomic<bool> g_warm_start_enabled{true};

char status_letter(VarStatus s) {
  switch (s) {
    case VarStatus::kBasic:
      return 'B';
    case VarStatus::kAtLower:
      return 'L';
    case VarStatus::kAtUpper:
      return 'U';
  }
  return '?';
}

StatusOr<std::vector<VarStatus>> parse_statuses(std::string_view text) {
  std::vector<VarStatus> out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case 'B':
        out.push_back(VarStatus::kBasic);
        break;
      case 'L':
        out.push_back(VarStatus::kAtLower);
        break;
      case 'U':
        out.push_back(VarStatus::kAtUpper);
        break;
      default:
        return Status::invalid_argument("parse_basis: unknown status letter");
    }
  }
  return out;
}

}  // namespace

void set_warm_start_enabled(bool enabled) {
  g_warm_start_enabled.store(enabled, std::memory_order_relaxed);
}

bool warm_start_enabled() {
  return g_warm_start_enabled.load(std::memory_order_relaxed);
}

std::string to_string(const Basis& basis) {
  std::string out;
  out.reserve(basis.variables.size() + basis.rows.size() + 4);
  out += "v:";
  for (const VarStatus s : basis.variables) out += status_letter(s);
  out += "|r:";
  for (const VarStatus s : basis.rows) out += status_letter(s);
  return out;
}

StatusOr<Basis> parse_basis(std::string_view text) {
  if (text.substr(0, 2) != "v:") {
    return Status::invalid_argument("parse_basis: missing 'v:' prefix");
  }
  const std::size_t sep = text.find("|r:");
  if (sep == std::string_view::npos) {
    return Status::invalid_argument("parse_basis: missing '|r:' separator");
  }
  auto vars = parse_statuses(text.substr(2, sep - 2));
  if (!vars.is_ok()) return vars.status();
  auto rows = parse_statuses(text.substr(sep + 3));
  if (!rows.is_ok()) return rows.status();
  Basis basis;
  basis.variables = std::move(vars).value();
  basis.rows = std::move(rows).value();
  return basis;
}

bool BasisFactorization::refactorize(const Matrix& b) {
  GRIDSEC_TRACE_SPAN("lp.simplex.refactorize");
  GRIDSEC_ASSERT(b.rows() == b.cols());
  const std::size_t m = b.rows();
  lu_ = b;  // copy-assign reuses lu_'s heap block when shapes repeat
  perm_.resize(m);
  for (std::size_t i = 0; i < m; ++i) perm_[i] = static_cast<int>(i);
  eta_pool_.clear();  // capacity kept for the next chain
  eta_rows_.clear();
  valid_ = false;
  pivot_growth_ = 1.0;

  double max_b = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      max_b = std::max(max_b, std::fabs(b(i, j)));
    }
  }

  for (std::size_t k = 0; k < m; ++k) {
    // Partial pivoting: largest magnitude in column k at or below row k.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < m; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < kPivotTol) {
      // Singular: wipe the half-built factors too, so a failed refactorize
      // mid-pivot cannot leave ftran/btran (or a later warm-start repair)
      // looking at inconsistent state.
      lu_ = Matrix();
      b_ = Matrix();
      perm_.clear();
      return false;
    }
    if (pivot != k) {
      lu_.swap_rows(pivot, k);
      std::swap(perm_[pivot], perm_[k]);
    }
    const double diag = lu_(k, k);
    for (std::size_t r = k + 1; r < m; ++r) {
      const double factor = lu_(r, k) / diag;
      lu_(r, k) = factor;  // L entry
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < m; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
  // Element-growth factor max|U| / max|B| — the classic LU stability
  // indicator; seeds pivot_growth(), which eta updates then only raise.
  double max_u = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      max_u = std::max(max_u, std::fabs(lu_(i, j)));
    }
  }
  if (max_b > 0.0) {
    pivot_growth_ = std::max(1.0, max_u / max_b);
  }
  b_ = b;
  valid_ = true;
  return true;
}

void BasisFactorization::ftran(std::span<double> x) const {
  GRIDSEC_ASSERT(valid_ && x.size() == perm_.size());
  const std::size_t m = perm_.size();
  // P*B = L*U, so B z = x  =>  L U z = P x.
  std::vector<double>& z = z_;
  z.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    z[i] = x[static_cast<std::size_t>(perm_[i])];
  }
  // Forward: L (unit lower) — z := L^{-1} z.
  for (std::size_t i = 1; i < m; ++i) {
    double acc = z[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * z[j];
    z[i] = acc;
  }
  // Backward: U — z := U^{-1} z.
  for (std::size_t i = m; i-- > 0;) {
    double acc = z[i];
    for (std::size_t j = i + 1; j < m; ++j) acc -= lu_(i, j) * z[j];
    z[i] = acc / lu_(i, i);
  }
  // Eta chain in application order: B_new = B * E_1 * ... * E_k, so
  // B_new^{-1} v = E_k^{-1} ... E_1^{-1} (B^{-1} v).
  for (std::size_t k = 0; k < eta_rows_.size(); ++k) {
    const double* w = eta_pool_.data() + k * m;
    const auto p = static_cast<std::size_t>(eta_rows_[k]);
    const double t = z[p] / w[p];
    for (std::size_t i = 0; i < m; ++i) z[i] -= w[i] * t;
    z[p] = t;
  }
  for (std::size_t i = 0; i < m; ++i) x[i] = z[i];
}

void BasisFactorization::btran(std::span<double> y) const {
  GRIDSEC_ASSERT(valid_ && y.size() == perm_.size());
  const std::size_t m = perm_.size();
  // B_new^{-T} v = B^{-T} E_1^{-T} ... E_k^{-T} v: etas in reverse order
  // first, then the LU transpose solve.
  for (std::size_t k = eta_rows_.size(); k-- > 0;) {
    // Solve E^T u = v in place: row p of E^T is w^T, other rows identity.
    const double* w = eta_pool_.data() + k * m;
    const auto p = static_cast<std::size_t>(eta_rows_[k]);
    double dot_rest = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (i != p) dot_rest += w[i] * y[i];
    }
    y[p] = (y[p] - dot_rest) / w[p];
  }
  // B^T q = v with B = P^T L U: U^T L^T P q = v.
  // Forward: U^T (lower triangular with U's diagonal).
  std::vector<double>& z = z_;
  z.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  // Backward: L^T (unit upper triangular).
  for (std::size_t i = m; i-- > 0;) {
    double acc = z[i];
    for (std::size_t j = i + 1; j < m; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc;
  }
  // q = P y_out: y_out[perm[i]] = z[i].
  for (std::size_t i = 0; i < m; ++i) {
    y[static_cast<std::size_t>(perm_[i])] = z[i];
  }
}

bool BasisFactorization::update(int p, std::span<const double> w) {
  GRIDSEC_ASSERT(valid_ && p >= 0 &&
                 static_cast<std::size_t>(p) < perm_.size() &&
                 w.size() == perm_.size());
  // Stability gate: a pivot that is small in absolute terms or relative
  // to the rest of the direction vector would amplify error through every
  // later ftran/btran (each application divides by w[p]); refuse it and
  // let the caller refactorize instead.
  const double pivot = std::fabs(w[static_cast<std::size_t>(p)]);
  if (pivot < kPivotTol) return false;
  double wmax = 0.0;
  for (const double v : w) wmax = std::max(wmax, std::fabs(v));
  if (pivot < kEtaStabilityTol * wmax) return false;
  // Accepted — but remember how much this eta can amplify rounding
  // (each ftran/btran application divides by w[p]).
  if (wmax > 0.0) pivot_growth_ = std::max(pivot_growth_, wmax / pivot);
  eta_pool_.insert(eta_pool_.end(), w.begin(), w.end());
  eta_rows_.push_back(p);
  return true;
}

double BasisFactorization::residual_ftran(std::span<const double> x,
                                          std::span<const double> rhs,
                                          std::vector<double>& r) const {
  const std::size_t m = perm_.size();
  // B_new = B · E_1 · … · E_k, so B_new·x = B·(E_1·(…·(E_k·x))).
  // Apply etas innermost-first (reverse append order). Multiplying by
  // E = I + (w − e_p)e_pᵀ: v_i += w_i·v_p for i ≠ p, v_p = w_p·v_p.
  std::vector<double>& v = resid_v_;
  v.assign(x.begin(), x.end());
  for (std::size_t k = eta_rows_.size(); k-- > 0;) {
    const double* w = eta_pool_.data() + k * m;
    const auto p = static_cast<std::size_t>(eta_rows_[k]);
    const double vp = v[p];
    if (vp != 0.0) {
      for (std::size_t i = 0; i < m; ++i) {
        if (i != p) v[i] += w[i] * vp;
      }
      v[p] = w[p] * vp;
    }
  }
  r.assign(m, 0.0);
  double norm = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double acc = rhs[i];
    for (std::size_t j = 0; j < m; ++j) acc -= b_(i, j) * v[j];
    r[i] = acc;
    norm = std::max(norm, std::fabs(acc));
  }
  return norm;
}

double BasisFactorization::residual_btran(std::span<const double> y,
                                          std::span<const double> rhs,
                                          std::vector<double>& r) const {
  const std::size_t m = perm_.size();
  // B_newᵀ = E_kᵀ·…·E_1ᵀ·Bᵀ, so B_newᵀ·y = E_kᵀ(…(E_1ᵀ(Bᵀ·y))):
  // Bᵀ first, then etas in append order. (Eᵀv)_p = Σ_j w_j v_j, others
  // unchanged.
  std::vector<double>& v = resid_v_;
  v.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += b_(i, j) * y[i];
    v[j] = acc;
  }
  for (std::size_t k = 0; k < eta_rows_.size(); ++k) {
    const double* w = eta_pool_.data() + k * m;
    const auto p = static_cast<std::size_t>(eta_rows_[k]);
    double dot = 0.0;
    for (std::size_t j = 0; j < m; ++j) dot += w[j] * v[j];
    v[p] = dot;
  }
  r.assign(m, 0.0);
  double norm = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double acc = rhs[i] - v[i];
    r[i] = acc;
    norm = std::max(norm, std::fabs(acc));
  }
  return norm;
}

int BasisFactorization::ftran_refined(std::span<double> x,
                                      double* residual_out) const {
  GRIDSEC_ASSERT(valid_ && x.size() == perm_.size());
  std::vector<double>& rhs = refine_rhs_;
  rhs.assign(x.begin(), x.end());
  ftran(x);
  double rhs_norm = 0.0;
  for (const double v : rhs) rhs_norm = std::max(rhs_norm, std::fabs(v));
  const double scale = 1.0 + rhs_norm;
  std::vector<double>& r = refine_r_;
  double rel = residual_ftran(x, rhs, r) / scale;
  int steps = 0;
  while (rel > kRefineTol && steps < kMaxRefineSteps) {
    std::vector<double>& d = refine_d_;
    d.assign(r.begin(), r.end());
    ftran(d);
    std::vector<double>& candidate = refine_cand_;
    candidate.assign(x.begin(), x.end());
    for (std::size_t i = 0; i < candidate.size(); ++i) candidate[i] += d[i];
    std::vector<double>& r2 = refine_r2_;
    const double rel2 = residual_ftran(candidate, rhs, r2) / scale;
    if (rel2 >= rel) break;  // correction no longer improves; stop
    std::copy(candidate.begin(), candidate.end(), x.begin());
    r.swap(r2);
    rel = rel2;
    ++steps;
  }
  if (residual_out != nullptr) *residual_out = rel;
  return steps;
}

int BasisFactorization::btran_refined(std::span<double> y,
                                      double* residual_out) const {
  GRIDSEC_ASSERT(valid_ && y.size() == perm_.size());
  std::vector<double>& rhs = refine_rhs_;
  rhs.assign(y.begin(), y.end());
  btran(y);
  double rhs_norm = 0.0;
  for (const double v : rhs) rhs_norm = std::max(rhs_norm, std::fabs(v));
  const double scale = 1.0 + rhs_norm;
  std::vector<double>& r = refine_r_;
  double rel = residual_btran(y, rhs, r) / scale;
  int steps = 0;
  while (rel > kRefineTol && steps < kMaxRefineSteps) {
    std::vector<double>& d = refine_d_;
    d.assign(r.begin(), r.end());
    btran(d);
    std::vector<double>& candidate = refine_cand_;
    candidate.assign(y.begin(), y.end());
    for (std::size_t i = 0; i < candidate.size(); ++i) candidate[i] += d[i];
    std::vector<double>& r2 = refine_r2_;
    const double rel2 = residual_btran(candidate, rhs, r2) / scale;
    if (rel2 >= rel) break;
    std::copy(candidate.begin(), candidate.end(), y.begin());
    r.swap(r2);
    rel = rel2;
    ++steps;
  }
  if (residual_out != nullptr) *residual_out = rel;
  return steps;
}

}  // namespace gridsec::lp
