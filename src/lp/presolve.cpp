#include "gridsec/lp/presolve.hpp"

#include <cmath>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"

namespace gridsec::lp {
namespace {

constexpr double kFeasTol = 1e-9;

std::string_view verdict_name(Presolved::Verdict v) {
  switch (v) {
    case Presolved::Verdict::kReduced: return "reduced";
    case Presolved::Verdict::kSolved: return "solved";
    case Presolved::Verdict::kInfeasible: return "infeasible";
    case Presolved::Verdict::kUnbounded: return "unbounded";
  }
  return "unknown";
}

/// Reduction counts go to the registry so B&B root presolve shows up in a
/// `--metrics` dump alongside node/pivot counters.
void record_presolve_metrics(const Presolved& p) {
  auto& reg = obs::default_registry();
  static obs::Counter& runs = reg.counter("lp.presolve.runs");
  static obs::Counter& fixed = reg.counter("lp.presolve.fixed_variables");
  static obs::Counter& rows = reg.counter("lp.presolve.removed_rows");
  static obs::Counter& bounds = reg.counter("lp.presolve.tightened_bounds");
  static obs::Counter& free_fixed =
      reg.counter("lp.presolve.free_variables_fixed");
  static obs::Counter& passes = reg.counter("lp.presolve.passes");
  runs.add();
  fixed.add(p.stats().fixed_variables);
  rows.add(p.stats().removed_rows);
  bounds.add(p.stats().tightened_bounds);
  free_fixed.add(p.stats().free_variables_fixed);
  passes.add(p.stats().passes);
  GRIDSEC_LOG(kDebug, "lp.presolve")
      .field("verdict", verdict_name(p.verdict()))
      .field("fixed_vars", p.stats().fixed_variables)
      .field("removed_rows", p.stats().removed_rows)
      .field("tightened_bounds", p.stats().tightened_bounds)
      .field("passes", p.stats().passes);
}

}  // namespace

Presolved presolve(const Problem& problem) {
  GRIDSEC_TRACE_SPAN("lp.presolve");
  // The reduction loop lives in a lambda so every early return (infeasible /
  // unbounded verdicts) still flows through the metrics recording below.
  Presolved out = [&problem]() -> Presolved {
  Presolved out;
  out.original_ = &problem;
  const int nv = problem.num_variables();
  const int nr = problem.num_constraints();

  std::vector<double> lower(static_cast<std::size_t>(nv));
  std::vector<double> upper(static_cast<std::size_t>(nv));
  for (int j = 0; j < nv; ++j) {
    lower[static_cast<std::size_t>(j)] = problem.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = problem.variable(j).upper;
  }
  std::vector<bool> fixed(static_cast<std::size_t>(nv), false);
  std::vector<double> fixed_at(static_cast<std::size_t>(nv), 0.0);
  std::vector<bool> row_alive(static_cast<std::size_t>(nr), true);

  const bool maximize = problem.objective() == Objective::kMaximize;
  const auto min_sense_obj = [&](int j) {
    const double c = problem.variable(j).objective;
    return maximize ? -c : c;
  };

  const auto fix = [&](int j, double value) {
    fixed[static_cast<std::size_t>(j)] = true;
    fixed_at[static_cast<std::size_t>(j)] = value;
    ++out.stats_.fixed_variables;
  };

  bool changed = true;
  while (changed && out.verdict_ == Presolved::Verdict::kReduced) {
    changed = false;
    ++out.stats_.passes;

    // Fixed-by-bounds variables.
    for (int j = 0; j < nv; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (!fixed[js] && upper[js] - lower[js] <= kFeasTol) {
        fix(j, lower[js]);
        changed = true;
      }
    }

    // Row reductions.
    for (int i = 0; i < nr; ++i) {
      const auto is = static_cast<std::size_t>(i);
      if (!row_alive[is]) continue;
      const Constraint& con = problem.constraint(i);
      double rhs = con.rhs;
      int live_terms = 0;  // counts term entries, so duplicate-variable
                           // rows are conservatively treated as non-singleton
      int live_var = -1;
      for (const Term& t : con.terms) {
        if (t.coef == 0.0) continue;
        const auto vs = static_cast<std::size_t>(t.var);
        if (fixed[vs]) {
          rhs -= t.coef * fixed_at[vs];
        } else {
          ++live_terms;
          live_var = t.var;
        }
      }
      if (live_terms == 0) {
        // Empty row: verify and drop.
        const bool ok = (con.sense == Sense::kLessEqual && 0.0 <= rhs + kFeasTol) ||
                        (con.sense == Sense::kGreaterEqual &&
                         0.0 >= rhs - kFeasTol) ||
                        (con.sense == Sense::kEqual &&
                         std::fabs(rhs) <= kFeasTol);
        if (!ok) {
          out.verdict_ = Presolved::Verdict::kInfeasible;
          return out;
        }
        row_alive[is] = false;
        ++out.stats_.removed_rows;
        changed = true;
      } else if (live_terms == 1) {
        // Singleton row -> bound tightening. Duplicate-variable rows are
        // rare; recompute the aggregate coefficient defensively.
        double agg = 0.0;
        for (const Term& t : con.terms) {
          if (t.var == live_var && !fixed[static_cast<std::size_t>(t.var)]) {
            agg += t.coef;
          }
        }
        if (agg == 0.0) continue;  // cancels out; treat next pass as empty
        const auto vs = static_cast<std::size_t>(live_var);
        const double bound = rhs / agg;
        const bool upper_bound =
            (con.sense == Sense::kLessEqual) == (agg > 0.0);
        if (con.sense == Sense::kEqual) {
          if (bound < lower[vs] - kFeasTol || bound > upper[vs] + kFeasTol) {
            out.verdict_ = Presolved::Verdict::kInfeasible;
            return out;
          }
          lower[vs] = upper[vs] = bound;
        } else if (upper_bound) {
          if (bound < upper[vs]) {
            upper[vs] = bound;
            ++out.stats_.tightened_bounds;
          }
        } else {
          if (bound > lower[vs]) {
            lower[vs] = bound;
            ++out.stats_.tightened_bounds;
          }
        }
        if (lower[vs] > upper[vs] + kFeasTol) {
          out.verdict_ = Presolved::Verdict::kInfeasible;
          return out;
        }
        row_alive[is] = false;
        ++out.stats_.removed_rows;
        changed = true;
      }
    }

    // Variables in no live row: fix at the objective-optimal bound.
    std::vector<bool> appears(static_cast<std::size_t>(nv), false);
    bool any_live_row = false;
    for (int i = 0; i < nr; ++i) {
      if (!row_alive[static_cast<std::size_t>(i)]) continue;
      any_live_row = true;
      for (const Term& t : problem.constraint(i).terms) {
        if (t.coef != 0.0) appears[static_cast<std::size_t>(t.var)] = true;
      }
    }
    for (int j = 0; j < nv; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (fixed[js] || appears[js]) continue;
      const double c = min_sense_obj(j);
      if (c < 0.0) {
        if (!std::isfinite(upper[js])) {
          // Improving ray — but it only proves unboundedness if a feasible
          // point exists. With no live rows left that is certain (every
          // removed row was verified consistent and bounds are ordered);
          // otherwise leave the column for the simplex, which establishes
          // feasibility in phase 1 before it can report unbounded.
          if (!any_live_row) {
            out.verdict_ = Presolved::Verdict::kUnbounded;
            return out;
          }
          continue;
        }
        fix(j, upper[js]);
      } else {
        fix(j, lower[js]);
      }
      ++out.stats_.free_variables_fixed;
      changed = true;
    }
  }

  // Build the reduced problem and the mappings.
  out.fixed_value_.assign(static_cast<std::size_t>(nv), std::nullopt);
  out.reduced_column_.assign(static_cast<std::size_t>(nv), -1);
  out.reduced_row_.assign(static_cast<std::size_t>(nr), -1);
  out.reduced_ = Problem(problem.objective());
  for (int j = 0; j < nv; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (fixed[js]) {
      out.fixed_value_[js] = fixed_at[js];
      out.objective_offset_ += problem.variable(j).objective * fixed_at[js];
    } else {
      const Variable& v = problem.variable(j);
      out.reduced_column_[js] = out.reduced_.add_variable(
          v.name, lower[js], upper[js], v.objective, v.type);
    }
  }
  for (int i = 0; i < nr; ++i) {
    const auto is = static_cast<std::size_t>(i);
    if (!row_alive[is]) continue;
    const Constraint& con = problem.constraint(i);
    double rhs = con.rhs;
    LinearExpr expr;
    for (const Term& t : con.terms) {
      const auto vs = static_cast<std::size_t>(t.var);
      if (out.fixed_value_[vs].has_value()) {
        rhs -= t.coef * *out.fixed_value_[vs];
      } else {
        expr.add(out.reduced_column_[vs], t.coef);
      }
    }
    out.reduced_row_[is] =
        out.reduced_.add_constraint(con.name, std::move(expr), con.sense, rhs);
  }
  if (out.reduced_.num_variables() == 0 &&
      out.verdict_ == Presolved::Verdict::kReduced) {
    out.verdict_ = Presolved::Verdict::kSolved;
  }
  return out;
  }();
  record_presolve_metrics(out);
  return out;
}

Solution Presolved::postsolve(const Solution& reduced_solution) const {
  GRIDSEC_ASSERT(original_ != nullptr);
  Solution out;
  out.status = reduced_solution.status;
  out.iterations = reduced_solution.iterations;
  if (verdict_ == Verdict::kInfeasible) {
    out.status = SolveStatus::kInfeasible;
    return out;
  }
  if (verdict_ == Verdict::kUnbounded) {
    out.status = SolveStatus::kUnbounded;
    return out;
  }
  if (verdict_ == Verdict::kSolved) out.status = SolveStatus::kOptimal;
  if (out.status != SolveStatus::kOptimal) return out;

  const int nv = original_->num_variables();
  const int nr = original_->num_constraints();
  out.x.resize(static_cast<std::size_t>(nv));
  for (int j = 0; j < nv; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (fixed_value_[js].has_value()) {
      out.x[js] = *fixed_value_[js];
    } else {
      out.x[js] = reduced_solution.x[static_cast<std::size_t>(
          reduced_column_[js])];
    }
  }
  out.objective = original_->objective_value(out.x);

  out.duals.assign(static_cast<std::size_t>(nr), 0.0);
  for (int i = 0; i < nr; ++i) {
    const int rr = reduced_row_[static_cast<std::size_t>(i)];
    if (rr >= 0 && static_cast<std::size_t>(rr) <
                       reduced_solution.duals.size()) {
      out.duals[static_cast<std::size_t>(i)] =
          reduced_solution.duals[static_cast<std::size_t>(rr)];
    }
  }
  out.reduced_costs.assign(static_cast<std::size_t>(nv), 0.0);
  for (int j = 0; j < nv; ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (reduced_column_[js] >= 0 &&
        static_cast<std::size_t>(reduced_column_[js]) <
            reduced_solution.reduced_costs.size()) {
      out.reduced_costs[js] = reduced_solution.reduced_costs[
          static_cast<std::size_t>(reduced_column_[js])];
    }
  }
  return out;
}

Equilibrated equilibrate(const Problem& problem,
                         const EquilibrateOptions& options) {
  GRIDSEC_TRACE_SPAN("lp.presolve.equilibrate");
  Equilibrated out;
  const int nr = problem.num_constraints();
  const int nv = problem.num_variables();
  out.row_scale_.assign(static_cast<std::size_t>(nr), 1.0);
  out.col_scale_.assign(static_cast<std::size_t>(nv), 1.0);

  // Nearest power of two to 1/sqrt(m): exp2(round(-log2(m)/2)). Powers of
  // two keep every scale/unscale multiplication exact.
  const auto ruiz_factor = [](double m) {
    if (!(m > 0.0) || !std::isfinite(m)) return 1.0;
    return std::exp2(std::round(-0.5 * std::log2(m)));
  };

  std::vector<double> row_max(static_cast<std::size_t>(nr));
  std::vector<double> col_max(static_cast<std::size_t>(nv));
  for (int pass = 0; pass < options.max_passes; ++pass) {
    row_max.assign(static_cast<std::size_t>(nr), 0.0);
    col_max.assign(static_cast<std::size_t>(nv), 0.0);
    for (int i = 0; i < nr; ++i) {
      const auto is = static_cast<std::size_t>(i);
      for (const Term& t : problem.constraint(i).terms) {
        const auto js = static_cast<std::size_t>(t.var);
        const double mag = std::fabs(t.coef) * out.row_scale_[is] *
                           out.col_scale_[js];
        row_max[is] = std::max(row_max[is], mag);
        col_max[js] = std::max(col_max[js], mag);
      }
    }
    bool any = false;
    for (int i = 0; i < nr; ++i) {
      const auto is = static_cast<std::size_t>(i);
      const double f = ruiz_factor(row_max[is]);
      if (f != 1.0) {
        out.row_scale_[is] *= f;
        any = true;
      }
    }
    for (int j = 0; j < nv; ++j) {
      const auto js = static_cast<std::size_t>(j);
      const double f = ruiz_factor(col_max[js]);
      if (f != 1.0) {
        out.col_scale_[js] *= f;
        any = true;
      }
    }
    if (any) out.scaled_any_ = true;
    if (!any) break;  // all row/col maxima already in [1/sqrt2, sqrt2)
  }

  // Build the scaled problem per the header contract.
  out.scaled_ = Problem(problem.objective());
  for (int j = 0; j < nv; ++j) {
    const auto js = static_cast<std::size_t>(j);
    const Variable& v = problem.variable(j);
    const double c = out.col_scale_[js];
    const double upper = std::isfinite(v.upper) ? v.upper / c : v.upper;
    out.scaled_.add_variable(v.name, v.lower / c, upper, v.objective * c,
                             v.type);
  }
  for (int i = 0; i < nr; ++i) {
    const auto is = static_cast<std::size_t>(i);
    const Constraint& con = problem.constraint(i);
    const double r = out.row_scale_[is];
    LinearExpr expr;
    for (const Term& t : con.terms) {
      expr.add(t.var,
               t.coef * r * out.col_scale_[static_cast<std::size_t>(t.var)]);
    }
    out.scaled_.add_constraint(con.name, std::move(expr), con.sense,
                               con.rhs * r);
  }
  GRIDSEC_LOG(kDebug, "lp.presolve")
      .field("rows", nr)
      .field("vars", nv)
      .field("scaled_any", out.scaled_any_ ? 1 : 0)
      .message("equilibrate");
  return out;
}

Solution Equilibrated::unscale(const Solution& scaled_solution) const {
  Solution out = scaled_solution;
  if (out.x.size() == col_scale_.size()) {
    for (std::size_t j = 0; j < out.x.size(); ++j) {
      out.x[j] *= col_scale_[j];
    }
  }
  if (out.reduced_costs.size() == col_scale_.size()) {
    for (std::size_t j = 0; j < out.reduced_costs.size(); ++j) {
      out.reduced_costs[j] /= col_scale_[j];
    }
  }
  if (out.duals.size() == row_scale_.size()) {
    for (std::size_t i = 0; i < out.duals.size(); ++i) {
      out.duals[i] *= row_scale_[i];
    }
  }
  // objective, status, iterations, basis, warm_started, recovery_trail
  // all pass through: the objective is bit-identical (obj'_j·x'_j =
  // obj_j·c_j·x_j/c_j with c_j a power of two) and basis statuses are
  // scale-invariant.
  return out;
}

Solution Equilibrated::rescale(const Solution& original_solution) const {
  Solution out = original_solution;
  if (out.x.size() == col_scale_.size()) {
    for (std::size_t j = 0; j < out.x.size(); ++j) {
      out.x[j] /= col_scale_[j];
    }
  }
  if (out.reduced_costs.size() == col_scale_.size()) {
    for (std::size_t j = 0; j < out.reduced_costs.size(); ++j) {
      out.reduced_costs[j] *= col_scale_[j];
    }
  }
  if (out.duals.size() == row_scale_.size()) {
    for (std::size_t i = 0; i < out.duals.size(); ++i) {
      out.duals[i] /= row_scale_[i];
    }
  }
  return out;
}

Solution solve_lp_with_presolve(const Problem& problem,
                                const SimplexOptions& options) {
  // Guardrail: presolve's reductions compare and fold coefficients, so
  // NaN/Inf data must be rejected before it can corrupt a verdict.
  if (!validate_problem(problem).is_ok()) {
    Solution out;
    out.status = SolveStatus::kNumericalError;
    return out;
  }
  Presolved pre = presolve(problem);
  switch (pre.verdict()) {
    case Presolved::Verdict::kInfeasible:
    case Presolved::Verdict::kUnbounded:
    case Presolved::Verdict::kSolved: {
      Solution dummy;
      dummy.status = SolveStatus::kOptimal;
      return pre.postsolve(dummy);
    }
    case Presolved::Verdict::kReduced:
      break;
  }
  SimplexSolver solver(options);
  return pre.postsolve(solver.solve(pre.reduced()));
}

}  // namespace gridsec::lp
