// Internal solver-facing view of lp::SolverWorkspace (see workspace.hpp
// for the ownership rules). Everything here is carved from the workspace
// arena at bind() time: the simplex works on spans into one contiguous
// buffer, and a re-bind is an arena rewind plus pointer carving — no heap
// traffic once the arena has grown to the problem's high-water mark.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "gridsec/lp/basis.hpp"
#include "gridsec/lp/workspace.hpp"
#include "gridsec/util/arena.hpp"
#include "gridsec/util/error.hpp"
#include "gridsec/util/matrix.hpp"

namespace gridsec::lp::detail {

enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

/// Row-major dense view over arena memory; the tableau's A matrix.
struct MatrixView {
  double* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  double& operator()(std::size_t r, std::size_t c) {
    GRIDSEC_ASSERT(r < rows && c < cols);
    return data[r * cols + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    GRIDSEC_ASSERT(r < rows && c < cols);
    return data[r * cols + c];
  }
};

/// The working standard-form tableau: A x = b with per-column bounds,
/// columns ordered [structural | slack | artificial]. All storage is
/// arena-backed; copying a Tableau copies the *view*, not the data (see
/// copy_tableau for a deep copy into a second carved tableau).
struct Tableau {
  MatrixView a;                 // m x n_total
  std::span<double> b;          // m
  std::span<double> lower;      // n_total
  std::span<double> upper;      // n_total
  std::span<double> cost;       // n_total, phase-dependent
  std::span<double> x;          // n_total, current point
  std::span<int> basis;         // m, column basic in each row
  std::span<VarState> state;    // n_total
  int n_struct = 0;
  int n_total = 0;
  int m = 0;
};

/// Deep copy between two tableaus carved with identical shapes.
inline void copy_tableau(Tableau& dst, const Tableau& src) {
  GRIDSEC_ASSERT(dst.m == src.m && dst.n_total == src.n_total);
  const std::size_t cells = src.a.rows * src.a.cols;
  std::copy(src.a.data, src.a.data + cells, dst.a.data);
  std::copy(src.b.begin(), src.b.end(), dst.b.begin());
  std::copy(src.lower.begin(), src.lower.end(), dst.lower.begin());
  std::copy(src.upper.begin(), src.upper.end(), dst.upper.begin());
  std::copy(src.cost.begin(), src.cost.end(), dst.cost.begin());
  std::copy(src.x.begin(), src.x.end(), dst.x.begin());
  std::copy(src.basis.begin(), src.basis.end(), dst.basis.begin());
  std::copy(src.state.begin(), src.state.end(), dst.state.begin());
  dst.n_struct = src.n_struct;
}

/// The whole per-solve state block. bind() carves every span below from
/// the arena and installs the solver's cold-start defaults; the simplex
/// then mutates in place. `factor`, `bmat`, and `crash_work` sit outside
/// the arena but reuse their own heap capacity across binds.
struct WorkspaceImpl {
  util::Arena arena;
  BasisFactorization factor;
  Matrix bmat;        // refactorization scratch: B extracted from the tableau
  Matrix crash_work;  // warm-start crash-selection elimination scratch

  Tableau t;
  Tableau backup;  // pre-warm-start snapshot for the cold fallback

  std::span<double> y;   // simplex multipliers (pricing)
  std::span<double> w;   // entering-column ftran image (ratio test)
  std::span<double> xb;  // recomputed basic values (drift repair)
  std::span<int> slack_of_row;    // m; -1 = equality row
  std::span<int> row_basic_col;   // warm start: basic column chosen per row
  std::span<int> candidates;      // warm start: crash candidate columns
  std::span<unsigned char> artificial_used;  // m flags
  std::span<unsigned char> used_row;         // warm start: crash row flags

  bool in_use = false;     // guards against nested-solve aliasing
  std::size_t binds = 0;

  /// Rewinds the arena and carves + cold-initializes all of the above for
  /// an m-row problem with n_struct structural and n_total total columns.
  void bind(int m, int n_struct, int n_total);
};

/// Resolves which workspace a solve uses: the one in SimplexOptions if
/// given, else the thread default — unless that one is already mid-solve
/// (a nested solve from an observer/hook), in which case a private heap
/// impl carries this solve and the counter lp.workspace.nested_fallbacks
/// records it.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(SolverWorkspace* requested);
  ~WorkspaceLease();

  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  [[nodiscard]] WorkspaceImpl& impl() { return *impl_; }

 private:
  WorkspaceImpl* impl_ = nullptr;
  std::unique_ptr<WorkspaceImpl> owned_;  // nested-solve fallback only
};

}  // namespace gridsec::lp::detail
