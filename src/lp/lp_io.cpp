#include "gridsec/lp/lp_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace gridsec::lp {
namespace {

std::string sanitize(const std::string& name, const char* prefix, int index) {
  if (name.empty()) {
    std::ostringstream ss;
    ss << prefix << index;
    return ss.str();
  }
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    out += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
  }
  if (std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_expr(std::ostream& os, const std::vector<Term>& terms,
                const Problem& problem) {
  bool first = true;
  for (const Term& t : terms) {
    const double c = t.coef;
    if (c == 0.0) continue;
    if (first) {
      if (c < 0.0) os << "- ";
      first = false;
    } else {
      os << (c < 0.0 ? " - " : " + ");
    }
    const double mag = std::fabs(c);
    if (mag != 1.0) os << mag << ' ';
    os << sanitize(problem.variable(t.var).name, "x", t.var);
  }
  if (first) os << "0";
}

}  // namespace

void write_lp_format(std::ostream& os, const Problem& problem) {
  // max_digits10 so a parse of this text reproduces every coefficient
  // bit-exactly — required for the committed ill-conditioned corpus,
  // whose whole point is pathological magnitudes.
  const std::streamsize old_precision = os.precision(17);
  os << (problem.objective() == Objective::kMinimize ? "Minimize\n"
                                                     : "Maximize\n");
  os << " obj: ";
  std::vector<Term> obj;
  for (int j = 0; j < problem.num_variables(); ++j) {
    obj.push_back({j, problem.variable(j).objective});
  }
  write_expr(os, obj, problem);
  os << "\nSubject To\n";
  for (int i = 0; i < problem.num_constraints(); ++i) {
    const auto& con = problem.constraint(i);
    os << ' ' << sanitize(con.name, "c", i) << ": ";
    write_expr(os, con.terms, problem);
    switch (con.sense) {
      case Sense::kLessEqual:
        os << " <= ";
        break;
      case Sense::kGreaterEqual:
        os << " >= ";
        break;
      case Sense::kEqual:
        os << " = ";
        break;
    }
    os << con.rhs << '\n';
  }
  os << "Bounds\n";
  for (int j = 0; j < problem.num_variables(); ++j) {
    const auto& v = problem.variable(j);
    os << ' ' << v.lower << " <= " << sanitize(v.name, "x", j);
    if (std::isfinite(v.upper)) os << " <= " << v.upper;
    os << '\n';
  }
  bool has_int = false;
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (problem.variable(j).type != VarType::kContinuous) {
      if (!has_int) {
        os << "General\n";
        has_int = true;
      }
      os << ' ' << sanitize(problem.variable(j).name, "x", j) << '\n';
    }
  }
  os << "End\n";
  os.precision(old_precision);
}

std::string to_lp_format(const Problem& problem) {
  std::ostringstream ss;
  write_lp_format(ss, problem);
  return ss.str();
}

Status write_lp_file(const std::string& path, const Problem& problem) {
  std::ofstream os(path);
  if (!os) return Status::internal("write_lp_file: cannot open " + path);
  write_lp_format(os, problem);
  os.flush();
  if (!os) return Status::internal("write_lp_file: write failed: " + path);
  return Status::ok();
}

namespace {

// ---- Parser for the dialect the writer above emits. ----

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string> tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

bool parse_number(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == tok.c_str()) return false;
  *out = v;
  return true;
}

Status bad_line(const char* what, const std::string& line) {
  return Status::invalid_argument(std::string("parse_lp_format: ") + what +
                                  ": '" + line + "'");
}

/// Parses "[-] [coef] name { +|- [coef] name }" (or the literal "0") from
/// tokens[begin, end) into name→coefficient terms (repeated names sum).
Status parse_expr(const std::vector<std::string>& tokens, std::size_t begin,
                  std::size_t end,
                  std::vector<std::pair<std::string, double>>* terms,
                  const std::string& line) {
  std::size_t i = begin;
  if (i == end) return bad_line("empty expression", line);
  if (end - begin == 1 && tokens[i] == "0") return Status::ok();
  double sign = 1.0;
  bool expect_term = true;
  if (tokens[i] == "-") {
    sign = -1.0;
    ++i;
  }
  while (i < end) {
    if (!expect_term) {
      if (tokens[i] == "+") {
        sign = 1.0;
      } else if (tokens[i] == "-") {
        sign = -1.0;
      } else {
        return bad_line("expected '+' or '-' between terms", line);
      }
      ++i;
      expect_term = true;
      continue;
    }
    if (i >= end) return bad_line("dangling sign", line);
    double coef = 1.0;
    double parsed = 0.0;
    if (parse_number(tokens[i], &parsed)) {
      coef = parsed;
      ++i;
      if (i >= end) return bad_line("coefficient without variable", line);
    }
    const std::string& name = tokens[i];
    if (parse_number(name, &parsed)) {
      return bad_line("expected a variable name", line);
    }
    terms->emplace_back(name, sign * coef);
    ++i;
    expect_term = false;
  }
  if (expect_term) return bad_line("dangling sign", line);
  return Status::ok();
}

struct ParsedConstraint {
  std::string name;
  std::vector<std::pair<std::string, double>> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

struct ParsedBound {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
};

}  // namespace

StatusOr<Problem> parse_lp_format(const std::string& text) {
  std::vector<std::string> lines;
  {
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
      const std::string t = trim(line);
      if (!t.empty()) lines.push_back(t);
    }
  }
  std::size_t pos = 0;
  const auto at_end = [&] { return pos >= lines.size(); };

  if (at_end()) {
    return Status::invalid_argument("parse_lp_format: empty input");
  }
  Objective sense_obj;
  if (lines[pos] == "Minimize") {
    sense_obj = Objective::kMinimize;
  } else if (lines[pos] == "Maximize") {
    sense_obj = Objective::kMaximize;
  } else {
    return bad_line("expected Minimize/Maximize", lines[pos]);
  }
  ++pos;

  // Objective expression (may wrap the "obj:" label only onto this line —
  // the writer always emits it as one line).
  if (at_end()) {
    return Status::invalid_argument("parse_lp_format: missing objective");
  }
  std::vector<std::pair<std::string, double>> objective_terms;
  {
    const std::string& line = lines[pos];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return bad_line("missing ':' after objective label", line);
    }
    const auto tokens = tokenize(line.substr(colon + 1));
    if (Status s = parse_expr(tokens, 0, tokens.size(), &objective_terms,
                              line);
        !s.is_ok()) {
      return s;
    }
    ++pos;
  }

  if (at_end() || lines[pos] != "Subject To") {
    return Status::invalid_argument("parse_lp_format: missing 'Subject To'");
  }
  ++pos;

  std::vector<ParsedConstraint> constraints;
  while (!at_end() && lines[pos] != "Bounds") {
    const std::string& line = lines[pos];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return bad_line("missing ':' after constraint name", line);
    }
    ParsedConstraint con;
    con.name = trim(line.substr(0, colon));
    const auto tokens = tokenize(line.substr(colon + 1));
    std::size_t sense_at = tokens.size();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i] == "<=" || tokens[i] == ">=" || tokens[i] == "=") {
        sense_at = i;
        // Keep scanning: the last relational token separates expr from
        // rhs (bound-style "a <= x <= b" never appears in rows).
      }
    }
    if (sense_at + 2 != tokens.size()) {
      return bad_line("expected '<expr> {<=,>=,=} <rhs>'", line);
    }
    con.sense = tokens[sense_at] == "<="
                    ? Sense::kLessEqual
                    : (tokens[sense_at] == ">=" ? Sense::kGreaterEqual
                                                : Sense::kEqual);
    if (!parse_number(tokens[sense_at + 1], &con.rhs)) {
      return bad_line("unparsable rhs", line);
    }
    if (Status s = parse_expr(tokens, 0, sense_at, &con.terms, line);
        !s.is_ok()) {
      return s;
    }
    constraints.push_back(std::move(con));
    ++pos;
  }
  if (at_end()) {
    return Status::invalid_argument("parse_lp_format: missing 'Bounds'");
  }
  ++pos;  // consume "Bounds"

  // Bounds lines define the variables and their order (the writer emits
  // one line per variable, in index order).
  std::vector<ParsedBound> bounds;
  std::unordered_map<std::string, int> var_index;
  while (!at_end() && lines[pos] != "General" && lines[pos] != "End") {
    const std::string& line = lines[pos];
    const auto tokens = tokenize(line);
    ParsedBound b;
    if (tokens.size() == 3 && tokens[1] == "<=") {
      // "L <= name"
      if (!parse_number(tokens[0], &b.lower)) {
        return bad_line("unparsable lower bound", line);
      }
      b.name = tokens[2];
    } else if (tokens.size() == 5 && tokens[1] == "<=" && tokens[3] == "<=") {
      // "L <= name <= U"
      if (!parse_number(tokens[0], &b.lower) ||
          !parse_number(tokens[4], &b.upper)) {
        return bad_line("unparsable bound", line);
      }
      b.name = tokens[2];
    } else {
      return bad_line("expected 'L <= name [<= U]'", line);
    }
    if (var_index.count(b.name) != 0) {
      return bad_line("duplicate variable in Bounds", line);
    }
    var_index.emplace(b.name, static_cast<int>(bounds.size()));
    bounds.push_back(std::move(b));
    ++pos;
  }

  // Optional General section: integer variables.
  std::unordered_map<std::string, bool> general;
  if (!at_end() && lines[pos] == "General") {
    ++pos;
    while (!at_end() && lines[pos] != "End") {
      const auto tokens = tokenize(lines[pos]);
      if (tokens.size() != 1) {
        return bad_line("expected one variable name", lines[pos]);
      }
      if (var_index.count(tokens[0]) == 0) {
        return bad_line("General names unknown variable", lines[pos]);
      }
      general[tokens[0]] = true;
      ++pos;
    }
  }
  if (at_end() || lines[pos] != "End") {
    return Status::invalid_argument("parse_lp_format: missing 'End'");
  }

  // Assemble. Objective coefficients come from the objective expression;
  // variables absent from it get 0.
  std::unordered_map<std::string, double> obj_coef;
  for (const auto& [name, coef] : objective_terms) {
    if (var_index.count(name) == 0) {
      return Status::invalid_argument(
          "parse_lp_format: objective references unknown variable '" + name +
          "'");
    }
    obj_coef[name] += coef;
  }
  Problem problem(sense_obj);
  for (const ParsedBound& b : bounds) {
    if (!(b.lower <= b.upper) || !std::isfinite(b.lower)) {
      return Status::invalid_argument(
          "parse_lp_format: inconsistent bounds for '" + b.name + "'");
    }
    VarType type = VarType::kContinuous;
    if (general.count(b.name) != 0) {
      type = (b.lower == 0.0 && b.upper == 1.0) ? VarType::kBinary
                                                : VarType::kInteger;
    }
    const auto it = obj_coef.find(b.name);
    problem.add_variable(b.name, b.lower, b.upper,
                         it != obj_coef.end() ? it->second : 0.0, type);
  }
  for (const ParsedConstraint& con : constraints) {
    LinearExpr expr;
    for (const auto& [name, coef] : con.terms) {
      const auto it = var_index.find(name);
      if (it == var_index.end()) {
        return Status::invalid_argument(
            "parse_lp_format: constraint '" + con.name +
            "' references unknown variable '" + name + "'");
      }
      expr.add(it->second, coef);
    }
    problem.add_constraint(con.name, std::move(expr), con.sense, con.rhs);
  }
  return problem;
}

StatusOr<Problem> read_lp_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::not_found("read_lp_file: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_lp_format(ss.str());
}

}  // namespace gridsec::lp
