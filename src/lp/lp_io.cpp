#include "gridsec/lp/lp_io.hpp"

#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

namespace gridsec::lp {
namespace {

std::string sanitize(const std::string& name, const char* prefix, int index) {
  if (name.empty()) {
    std::ostringstream ss;
    ss << prefix << index;
    return ss.str();
  }
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    out += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
  }
  if (std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_expr(std::ostream& os, const std::vector<Term>& terms,
                const Problem& problem) {
  bool first = true;
  for (const Term& t : terms) {
    const double c = t.coef;
    if (c == 0.0) continue;
    if (first) {
      if (c < 0.0) os << "- ";
      first = false;
    } else {
      os << (c < 0.0 ? " - " : " + ");
    }
    const double mag = std::fabs(c);
    if (mag != 1.0) os << mag << ' ';
    os << sanitize(problem.variable(t.var).name, "x", t.var);
  }
  if (first) os << "0";
}

}  // namespace

void write_lp_format(std::ostream& os, const Problem& problem) {
  os << (problem.objective() == Objective::kMinimize ? "Minimize\n"
                                                     : "Maximize\n");
  os << " obj: ";
  std::vector<Term> obj;
  for (int j = 0; j < problem.num_variables(); ++j) {
    obj.push_back({j, problem.variable(j).objective});
  }
  write_expr(os, obj, problem);
  os << "\nSubject To\n";
  for (int i = 0; i < problem.num_constraints(); ++i) {
    const auto& con = problem.constraint(i);
    os << ' ' << sanitize(con.name, "c", i) << ": ";
    write_expr(os, con.terms, problem);
    switch (con.sense) {
      case Sense::kLessEqual:
        os << " <= ";
        break;
      case Sense::kGreaterEqual:
        os << " >= ";
        break;
      case Sense::kEqual:
        os << " = ";
        break;
    }
    os << con.rhs << '\n';
  }
  os << "Bounds\n";
  for (int j = 0; j < problem.num_variables(); ++j) {
    const auto& v = problem.variable(j);
    os << ' ' << v.lower << " <= " << sanitize(v.name, "x", j);
    if (std::isfinite(v.upper)) os << " <= " << v.upper;
    os << '\n';
  }
  bool has_int = false;
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (problem.variable(j).type != VarType::kContinuous) {
      if (!has_int) {
        os << "General\n";
        has_int = true;
      }
      os << ' ' << sanitize(problem.variable(j).name, "x", j) << '\n';
    }
  }
  os << "End\n";
}

std::string to_lp_format(const Problem& problem) {
  std::ostringstream ss;
  write_lp_format(ss, problem);
  return ss.str();
}

}  // namespace gridsec::lp
