#include "gridsec/lp/milp.hpp"

#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#include "gridsec/lp/presolve.hpp"
#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/deadline.hpp"

namespace gridsec::lp {
namespace {

struct BoundChange {
  int var;
  double lower;
  double upper;
};

struct Node {
  double bound;  // internal (minimize-sense) relaxation objective
  std::vector<BoundChange> changes;
  /// Parent node's optimal relaxation basis: a child differs from its
  /// parent by one variable bound, so the parent basis is one crash
  /// repair away from primal feasible and usually re-optimizes in a
  /// handful of pivots. Empty at the root (cold start).
  Basis warm;

  bool operator>(const Node& other) const { return bound > other.bound; }
};

/// Returns the index of the most fractional integer variable, or -1 if the
/// point is integral within tol.
int most_fractional(const Problem& problem, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (problem.variable(j).type == VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double dist = std::fabs(v - std::round(v));
    if (dist > best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

Solution BranchAndBoundSolver::solve(const Problem& problem) const {
  GRIDSEC_TRACE_SPAN("lp.bnb.solve");
  static obs::Counter& c_solves =
      obs::default_registry().counter("lp.bnb.solves");
  c_solves.add();
  Solution sol = solve_search(problem);
  sol.bnb = stats_;
  if (sol.status == SolveStatus::kNumericalError ||
      sol.status == SolveStatus::kTimeLimit ||
      sol.status == SolveStatus::kIterationLimit) {
    GRIDSEC_LOG(kWarn, "lp.bnb")
        .field("status", to_string(sol.status))
        .field("vars", problem.num_variables())
        .field("rows", problem.num_constraints())
        .field("nodes", sol.bnb.nodes_explored)
        .field("lp_solves", sol.bnb.lp_solves)
        .message("branch-and-bound solve degraded");
  } else {
    GRIDSEC_LOG(kDebug, "lp.bnb")
        .field("status", to_string(sol.status))
        .field("vars", problem.num_variables())
        .field("rows", problem.num_constraints())
        .field("nodes", sol.bnb.nodes_explored)
        .field("incumbent_updates", sol.bnb.incumbent_updates)
        .field("objective", sol.objective);
  }
  if (const SolveHook hook = solve_hook(); hook != nullptr) {
    hook(problem, sol, "lp.bnb");
  }
  return sol;
}

Solution BranchAndBoundSolver::solve_search(const Problem& problem) const {
  stats_ = {};

  // Guardrails: reject NaN/Inf-poisoned data before presolve or any LP
  // arithmetic touches it, and arm the wall-clock deadline for the search.
  if (!validate_problem(problem).is_ok()) {
    Solution out;
    out.status = SolveStatus::kNumericalError;
    return out;
  }
  const Deadline deadline = Deadline::in_ms(options_.time_limit_ms);

  // Optional root presolve. Only usable when it does not fix any integer
  // variable at a fractional value (then its reductions are MILP-valid:
  // bounds only ever shrink further down the tree).
  if (options_.use_presolve) {
    Presolved pre = presolve(problem);
    bool integral_fixings = true;
    if (pre.verdict() == Presolved::Verdict::kReduced ||
        pre.verdict() == Presolved::Verdict::kSolved) {
      Solution dummy;
      dummy.status = SolveStatus::kOptimal;
      if (pre.verdict() == Presolved::Verdict::kSolved) {
        Solution mapped = pre.postsolve(dummy);
        if (problem.is_feasible(mapped.x, options_.integrality_tol)) {
          return mapped;
        }
        integral_fixings = false;  // a fixing violated integrality
      } else {
        // Check the fixings without solving: reconstruct fixed values by
        // postsolving a zero vector of reduced size.
        Solution zeros;
        zeros.status = SolveStatus::kOptimal;
        zeros.x.assign(
            static_cast<std::size_t>(pre.reduced().num_variables()), 0.0);
        Solution mapped = pre.postsolve(zeros);
        for (int j = 0; j < problem.num_variables(); ++j) {
          if (problem.variable(j).type == VarType::kContinuous) continue;
          const double v = mapped.x[static_cast<std::size_t>(j)];
          // Only fixed variables carry meaningful values here; reduced
          // columns were zeroed, and zero is always integral.
          if (std::fabs(v - std::round(v)) > options_.integrality_tol) {
            integral_fixings = false;
            break;
          }
        }
        if (integral_fixings) {
          BranchAndBoundOptions inner = options_;
          inner.use_presolve = false;
          if (inner.time_limit_ms > 0.0) {
            inner.time_limit_ms = deadline.remaining_ms();
          }
          BranchAndBoundSolver solver(inner);
          Solution reduced_sol = solver.solve(pre.reduced());
          stats_ = solver.stats();
          if (reduced_sol.status != SolveStatus::kOptimal) {
            // Map terminal statuses through unchanged.
            Solution out;
            out.status = reduced_sol.status;
            return out;
          }
          return pre.postsolve(reduced_sol);
        }
      }
    } else if (pre.verdict() == Presolved::Verdict::kInfeasible) {
      Solution out;
      out.status = SolveStatus::kInfeasible;
      return out;
    } else if (pre.verdict() == Presolved::Verdict::kUnbounded) {
      Solution out;
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    // Fractional integer fixing: fall through to the plain search.
  }

  const bool maximize = problem.objective() == Objective::kMaximize;
  const auto internal = [maximize](double obj) {
    return maximize ? -obj : obj;
  };

  // Working copy whose integer-variable bounds get overridden per node.
  Problem work = problem;
  // Per-node LP solves warm-start from the parent node's optimal basis
  // (one bound change away); the root and any node without a recorded
  // basis fall back to the ordinary cold start. The options copy is
  // hoisted out of the node loop: per node only the warm basis is
  // assigned (capacity-reusing) and solve_lp avoids the options copy a
  // SimplexSolver construction would add.
  SimplexOptions node_options = options_.lp_options;
  const auto solve_relaxation = [&](const Basis& warm) {
    node_options.warm_start = warm;
    return solve_lp(work, node_options);
  };
  std::vector<std::pair<double, double>> root_bounds;
  root_bounds.reserve(static_cast<std::size_t>(problem.num_variables()));
  for (int j = 0; j < problem.num_variables(); ++j) {
    const auto& v = problem.variable(j);
    root_bounds.emplace_back(v.lower, v.upper);
  }
  const auto apply = [&](const std::vector<BoundChange>& changes) {
    for (int j = 0; j < work.num_variables(); ++j) {
      const auto& rb = root_bounds[static_cast<std::size_t>(j)];
      work.set_bounds(j, rb.first, rb.second);
    }
    for (const auto& ch : changes) work.set_bounds(ch.var, ch.lower, ch.upper);
  };

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_internal = kInfinity;
  bool any_node_hit_limit = false;
  bool any_node_numerical = false;
  bool deadline_expired = false;

  auto& reg = obs::default_registry();
  static obs::Counter& c_nodes = reg.counter("lp.bnb.nodes");
  static obs::Counter& c_lp_solves = reg.counter("lp.bnb.lp_solves");
  static obs::Counter& c_incumbents = reg.counter("lp.bnb.incumbents");
  static obs::Counter& c_pruned = reg.counter("lp.bnb.pruned");

  const bool observed = static_cast<bool>(options_.observer);
  const auto emit = [&](obs::BnBNodeEvent::Kind kind, double bound_internal,
                        int depth, int branch_var = -1) {
    if (!observed) return;
    obs::BnBNodeEvent ev;
    ev.kind = kind;
    ev.node = stats_.nodes_explored;
    ev.depth = depth;
    ev.bound = maximize ? -bound_internal : bound_internal;
    ev.has_incumbent = incumbent.status == SolveStatus::kOptimal;
    ev.incumbent = ev.has_incumbent ? incumbent.objective : 0.0;
    ev.gap = ev.has_incumbent ? std::fabs(incumbent_internal - bound_internal)
                              : 0.0;
    ev.branch_var = branch_var;
    options_.observer(ev);
  };

  Basis root_warm;  // seeded by the dive's root relaxation, if it runs
  if (options_.diving_heuristic && problem.has_integer_variables()) {
    // One rounding dive from the root: cheap, and a feasible incumbent
    // prunes the best-first search dramatically.
    apply({});
    std::vector<BoundChange> dive;
    Basis dive_warm;
    for (;;) {
      if (deadline.expired()) {
        deadline_expired = true;
        break;
      }
      Solution relax = solve_relaxation(dive_warm);
      ++stats_.lp_solves;
      c_lp_solves.add();
      if (relax.status != SolveStatus::kOptimal) break;
      if (dive.empty()) root_warm = relax.basis;  // root relaxation basis
      dive_warm = relax.basis;
      const int frac =
          most_fractional(problem, relax.x, options_.integrality_tol);
      if (frac < 0) {
        for (int j = 0; j < problem.num_variables(); ++j) {
          if (problem.variable(j).type != VarType::kContinuous) {
            relax.x[static_cast<std::size_t>(j)] =
                std::round(relax.x[static_cast<std::size_t>(j)]);
          }
        }
        relax.objective = problem.objective_value(relax.x);
        relax.duals.clear();
        relax.reduced_costs.clear();
        incumbent = relax;
        incumbent_internal = internal(relax.objective);
        ++stats_.incumbent_updates;
        c_incumbents.add();
        emit(obs::BnBNodeEvent::Kind::kIncumbent, incumbent_internal,
             static_cast<int>(dive.size()));
        break;
      }
      const double v = relax.x[static_cast<std::size_t>(frac)];
      const auto& rv = problem.variable(frac);
      double rounded = std::round(v);
      rounded = std::max(rounded, std::ceil(rv.lower - 1e-9));
      rounded = std::min(rounded, std::floor(rv.upper + 1e-9));
      if (rounded < rv.lower - 1e-9 || rounded > rv.upper + 1e-9) {
        break;  // no integral point within this variable's bounds
      }
      dive.push_back({frac, rounded, rounded});
      apply(dive);
      if (dive.size() > static_cast<std::size_t>(problem.num_variables())) {
        break;  // defensive
      }
    }
  }

  std::priority_queue<Node, std::vector<Node>, std::greater<>> open;
  open.push({-kInfinity, {}, std::move(root_warm)});

  // Indeterminate total: the open set grows as nodes branch, so only the
  // explored count (and its rate) is meaningful for a live view.
  obs::Progress progress("lp.bnb.nodes", 0);
  while (!open.empty()) {
    if (stats_.nodes_explored >= options_.max_nodes) {
      any_node_hit_limit = true;
      break;
    }
    if (deadline.expired()) {
      deadline_expired = true;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_internal - options_.absolute_gap) {
      c_pruned.add();
      emit(obs::BnBNodeEvent::Kind::kPrunedByBound, node.bound,
           static_cast<int>(node.changes.size()));
      continue;  // cannot improve the incumbent
    }
    ++stats_.nodes_explored;
    c_nodes.add();
    progress.advance();
    emit(obs::BnBNodeEvent::Kind::kNodeExplored, node.bound,
         static_cast<int>(node.changes.size()));

    apply(node.changes);
    Solution relax = solve_relaxation(node.warm);
    ++stats_.lp_solves;
    c_lp_solves.add();
    if (relax.status == SolveStatus::kInfeasible) {
      emit(obs::BnBNodeEvent::Kind::kInfeasible, node.bound,
           static_cast<int>(node.changes.size()));
      continue;
    }
    if (relax.status == SolveStatus::kUnbounded) {
      // Unbounded relaxation at the root means the MILP is unbounded (our
      // binaries cannot bound it); deeper nodes inherit it too.
      Solution out;
      out.status = SolveStatus::kUnbounded;
      return out;
    }
    if (relax.status == SolveStatus::kIterationLimit) {
      any_node_hit_limit = true;
      continue;
    }
    if (relax.status == SolveStatus::kTimeLimit) {
      deadline_expired = true;  // the shared wall clock ran out mid-LP
      break;
    }
    if (relax.status == SolveStatus::kNumericalError) {
      // A wedged relaxation: skip the node (its subtree stays unexplored,
      // so any final answer is demoted from "proven" below).
      any_node_numerical = true;
      continue;
    }
    const double node_internal = internal(relax.objective);
    if (node_internal >= incumbent_internal - options_.absolute_gap) {
      c_pruned.add();
      emit(obs::BnBNodeEvent::Kind::kPrunedByBound, node_internal,
           static_cast<int>(node.changes.size()));
      continue;
    }

    const int branch_var =
        most_fractional(problem, relax.x, options_.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent. Snap integer values exactly.
      for (int j = 0; j < problem.num_variables(); ++j) {
        if (problem.variable(j).type != VarType::kContinuous) {
          relax.x[static_cast<std::size_t>(j)] =
              std::round(relax.x[static_cast<std::size_t>(j)]);
        }
      }
      relax.objective = problem.objective_value(relax.x);
      relax.duals.clear();
      relax.reduced_costs.clear();
      incumbent = relax;
      incumbent_internal = internal(relax.objective);
      ++stats_.incumbent_updates;
      c_incumbents.add();
      emit(obs::BnBNodeEvent::Kind::kIncumbent, node_internal,
           static_cast<int>(node.changes.size()));
      continue;
    }

    emit(obs::BnBNodeEvent::Kind::kBranched, node_internal,
         static_cast<int>(node.changes.size()), branch_var);

    const double v = relax.x[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(v);
    const auto& rb = root_bounds[static_cast<std::size_t>(branch_var)];

    Node down = node;
    down.bound = node_internal;
    down.changes.push_back({branch_var, rb.first, floor_v});
    down.warm = relax.basis;
    open.push(std::move(down));

    Node up = std::move(node);
    up.bound = node_internal;
    up.changes.push_back({branch_var, floor_v + 1.0, rb.second});
    up.warm = std::move(relax.basis);
    open.push(std::move(up));
  }

  // Demote the verdict when the search was cut short: the incumbent (if
  // any) is feasible but not proven optimal. The wall clock expiring labels
  // the result kTimeLimit; skipped-for-numerics subtrees alone demote an
  // "optimal" to kIterationLimit; a search that produced nothing because
  // every relaxation wedged reports kNumericalError.
  if (deadline_expired) {
    incumbent.status = SolveStatus::kTimeLimit;
  } else if (any_node_hit_limit) {
    incumbent.status = SolveStatus::kIterationLimit;
  } else if (any_node_numerical) {
    incumbent.status = incumbent.status == SolveStatus::kOptimal
                           ? SolveStatus::kIterationLimit
                           : SolveStatus::kNumericalError;
  }
  return incumbent;
}

Solution solve_milp(const Problem& problem) {
  return BranchAndBoundSolver().solve(problem);
}

Solution solve_milp_with_duals(const Problem& problem,
                               const BranchAndBoundOptions& options) {
  BranchAndBoundSolver solver(options);
  Solution incumbent = solver.solve(problem);
  if (incumbent.status != SolveStatus::kOptimal &&
      !is_budget_limited(incumbent.status)) {
    return incumbent;
  }
  if (incumbent.x.empty()) return incumbent;  // budgeted run with no plan
  Problem fixed = problem;
  for (int j = 0; j < problem.num_variables(); ++j) {
    if (problem.variable(j).type == VarType::kContinuous) continue;
    const double v = incumbent.x[static_cast<std::size_t>(j)];
    fixed.set_bounds(j, v, v);
  }
  // The incumbent's relaxation basis is primal-optimal for `fixed` up to
  // the bound fixings, so the dual re-solve is typically pivot-free.
  SimplexOptions lp_options = options.lp_options;
  lp_options.warm_start = incumbent.basis;
  Solution refined = solve_lp(fixed, lp_options);
  if (refined.status != SolveStatus::kOptimal) return incumbent;
  refined.status = incumbent.status;  // keep the proof status of the search
  refined.bnb = incumbent.bnb;        // and the search counters
  return refined;
}

}  // namespace gridsec::lp
