#include "gridsec/sim/western_us.hpp"

#include <cmath>
#include <numbers>

namespace gridsec::sim {
namespace {

struct GenUnit {
  const char* fuel;
  double capacity;  // GWh/day nameplate
  double cost;      // $/MWh
};

struct StateData {
  const char* code;
  double lat, lon;  // geographic centroid
  // Electric side.
  double elec_demand;       // GWh/day average
  double elec_price;        // $/MWh retail
  std::vector<GenUnit> gen; // non-gas generation
  double converter_capacity;  // gas->electric, GWh/day electric output
  // Gas side (thermal GWh/day; $/MWh thermal).
  double gas_demand;      // non-electric consumption
  double gas_price;       // retail
  double gas_production;  // in-state production capacity
  double gas_prod_cost;
  double gas_import;      // out-of-model import capacity (0 = none)
};

// Synthetic per-state constants with 2014-EIA-like magnitudes.
const std::vector<StateData>& state_table() {
  static const std::vector<StateData> kStates = {
      {"WA", 47.4, -120.5, 250.0, 62.0,
       {{"hydro", 700.0, 8.0}, {"coal", 120.0, 28.0}, {"nuclear", 90.0, 20.0}},
       60.0, 90.0, 22.0, 0.0, 0.0, 800.0},
      {"OR", 43.9, -120.6, 130.0, 70.0,
       {{"hydro", 400.0, 9.0}, {"coal", 60.0, 30.0}},
       90.0, 60.0, 23.0, 0.0, 0.0, 0.0},
      {"CA", 37.2, -119.3, 720.0, 92.0,
       {{"hydro", 260.0, 12.0},
        {"nuclear", 180.0, 22.0},
        {"solar", 170.0, 5.0},
        {"wind", 110.0, 7.0}},
       380.0, 350.0, 28.0, 200.0, 18.0, 400.0},
      {"NV", 39.3, -116.6, 100.0, 76.0,
       {{"solar", 90.0, 6.0}, {"coal", 100.0, 30.0}},
       120.0, 40.0, 25.0, 0.0, 0.0, 0.0},
      {"AZ", 34.3, -111.7, 210.0, 82.0,
       {{"nuclear", 220.0, 21.0}, {"coal", 210.0, 27.0}, {"solar", 90.0, 6.0}},
       150.0, 70.0, 24.0, 0.0, 0.0, 700.0},
      {"UT", 39.3, -111.7, 80.0, 66.0,
       {{"coal", 270.0, 25.0}, {"wind", 40.0, 9.0}},
       70.0, 50.0, 18.0, 1500.0, 14.0, 0.0},
  };
  return kStates;
}

struct Link {
  int from, to;     // state indices
  double capacity;  // GWh/day
  double cost;      // $/MWh transport fee
};

// Nine interstate gas pipelines (thermal GWh/day).
const std::vector<Link>& gas_links() {
  static const std::vector<Link> kLinks = {
      {0, 1, 400.0, 0.5},  // WA->OR (Canadian gas southbound)
      {1, 2, 350.0, 0.5},  // OR->CA
      {5, 3, 350.0, 0.5},  // UT->NV (Rockies westbound)
      {3, 2, 300.0, 0.5},  // NV->CA
      {5, 4, 300.0, 0.5},  // UT->AZ
      {4, 2, 350.0, 0.5},  // AZ->CA (southern route)
      {4, 3, 120.0, 0.5},  // AZ->NV
      {1, 0, 100.0, 0.5},  // OR->WA (reverse header)
      {3, 5, 60.0, 0.5},   // NV->UT (backhaul)
  };
  return kLinks;
}

// Nine interstate electric interties (GWh/day).
const std::vector<Link>& elec_links() {
  static const std::vector<Link> kLinks = {
      {0, 1, 250.0, 1.0},  // WA->OR
      {1, 2, 300.0, 1.0},  // OR->CA
      {0, 2, 250.0, 1.0},  // WA->CA (Pacific intertie)
      {3, 2, 150.0, 1.0},  // NV->CA
      {4, 2, 250.0, 1.0},  // AZ->CA
      {5, 3, 120.0, 1.0},  // UT->NV
      {5, 4, 120.0, 1.0},  // UT->AZ
      {3, 4, 80.0, 1.0},   // NV->AZ
      {1, 3, 80.0, 1.0},   // OR->NV
  };
  return kLinks;
}

constexpr double kConverterLoss = 0.52;  // ~48% gas-to-electric efficiency
constexpr double kConverterCost = 4.0;   // $/MWh non-fuel O&M

}  // namespace

double haversine_km(double lat1, double lon1, double lat2, double lon2) {
  constexpr double kEarthRadiusKm = 6371.0;
  const auto rad = [](double deg) {
    return deg * std::numbers::pi / 180.0;
  };
  const double dlat = rad(lat2 - lat1);
  const double dlon = rad(lon2 - lon1);
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(rad(lat1)) * std::cos(rad(lat2)) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(a));
}

double loss_from_distance(double km) { return 0.01 * km / 400.0; }

WesternUsModel build_western_us(const WesternUsOptions& options) {
  const auto& states = state_table();
  WesternUsModel m;

  const double cap_factor =
      options.apply_adjustments ? 1.0 - options.capacity_derating : 1.0;
  const double demand_factor =
      options.apply_adjustments ? 1.0 + options.demand_surge : 1.0;

  // Hubs.
  for (const StateData& s : states) {
    m.states.emplace_back(s.code);
    m.gas_hub.push_back(m.network.add_hub(std::string(s.code) + ".gas"));
    m.elec_hub.push_back(m.network.add_hub(std::string(s.code) + ".elec"));
  }

  // Per-state assets.
  for (std::size_t i = 0; i < states.size(); ++i) {
    const StateData& s = states[i];
    const std::string code = s.code;
    const flow::NodeId gh = m.gas_hub[i];
    const flow::NodeId eh = m.elec_hub[i];

    // Gas production and imports (imports priced 25% below local retail).
    if (s.gas_production > 0.0) {
      m.network.add_supply(code + ".gas.prod", gh, s.gas_production,
                           s.gas_prod_cost);
    }
    if (s.gas_import > 0.0) {
      m.network.add_supply(code + ".gas.import", gh, s.gas_import,
                           0.75 * s.gas_price);
    }
    // Gas consumer (demand edge).
    m.network.add_demand(code + ".gas.load", gh,
                         s.gas_demand * demand_factor, s.gas_price);

    // Electric generation mix (derated per the challenging model).
    for (const GenUnit& g : s.gen) {
      m.network.add_supply(code + ".elec." + g.fuel, eh,
                           g.capacity * cap_factor, g.cost);
    }
    // Gas-fired generation: the interconnection between the two systems.
    m.converters.push_back(m.network.add_edge(
        code + ".gas2elec", flow::EdgeKind::kConversion, gh, eh,
        s.converter_capacity * cap_factor, kConverterCost, kConverterLoss));
    // Electric consumer.
    m.network.add_demand(code + ".elec.load", eh,
                         s.elec_demand * demand_factor, s.elec_price);
  }

  // Long-haul edges: losses from inter-centroid distance (1% / 400 km).
  const auto add_links = [&](const std::vector<Link>& links,
                             const std::vector<flow::NodeId>& hubs,
                             const char* tag) {
    for (const Link& l : links) {
      const StateData& a = states[static_cast<std::size_t>(l.from)];
      const StateData& b = states[static_cast<std::size_t>(l.to)];
      const double loss =
          loss_from_distance(haversine_km(a.lat, a.lon, b.lat, b.lon));
      m.long_haul.push_back(m.network.add_edge(
          std::string(a.code) + "-" + b.code + "." + tag,
          flow::EdgeKind::kTransmission,
          hubs[static_cast<std::size_t>(l.from)],
          hubs[static_cast<std::size_t>(l.to)], l.capacity, l.cost, loss));
    }
  };
  add_links(gas_links(), m.gas_hub, "pipe");
  add_links(elec_links(), m.elec_hub, "line");

  return m;
}

}  // namespace gridsec::sim
