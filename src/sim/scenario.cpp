#include "gridsec/sim/scenario.hpp"

#include <string>

namespace gridsec::sim {

flow::Network make_chain(int segments, double supply_cost, double price,
                         double capacity, double segment_cost,
                         double segment_loss) {
  GRIDSEC_ASSERT(segments >= 0);
  flow::Network net;
  std::vector<flow::NodeId> hubs;
  for (int i = 0; i <= segments; ++i) {
    hubs.push_back(net.add_hub("hub" + std::to_string(i)));
  }
  net.add_supply("gen", hubs.front(), capacity, supply_cost);
  for (int i = 0; i < segments; ++i) {
    net.add_edge("seg" + std::to_string(i), flow::EdgeKind::kTransmission,
                 hubs[static_cast<std::size_t>(i)],
                 hubs[static_cast<std::size_t>(i + 1)], capacity,
                 segment_cost, segment_loss);
  }
  net.add_demand("load", hubs.back(), capacity, price);
  return net;
}

flow::Network make_duopoly(double cheap_capacity, double cheap_cost,
                           double dear_capacity, double dear_cost,
                           double demand, double price) {
  flow::Network net;
  const flow::NodeId h = net.add_hub("H");
  net.add_supply("cheap", h, cheap_capacity, cheap_cost);
  net.add_supply("dear", h, dear_capacity, dear_cost);
  net.add_demand("load", h, demand, price);
  return net;
}

flow::Network make_random_grid(const RandomGridOptions& options, Rng& rng) {
  GRIDSEC_ASSERT(options.hubs >= 2);
  flow::Network net;
  std::vector<flow::NodeId> hubs;
  for (int i = 0; i < options.hubs; ++i) {
    hubs.push_back(net.add_hub("h" + std::to_string(i)));
  }
  const auto cap = [&] {
    return rng.uniform(options.capacity_min, options.capacity_max);
  };
  // Generators and consumers. Guarantee at least one of each so the
  // network is economically non-trivial.
  bool any_supply = false, any_demand = false;
  for (int i = 0; i < options.hubs; ++i) {
    if (rng.bernoulli(options.supply_density) ||
        (!any_supply && i == options.hubs - 1)) {
      net.add_supply(
          "gen" + std::to_string(i), hubs[static_cast<std::size_t>(i)], cap(),
          rng.uniform(options.supply_cost_min, options.supply_cost_max));
      any_supply = true;
    }
    if (rng.bernoulli(options.demand_density) ||
        (!any_demand && i == options.hubs - 1)) {
      // Demand capacity kept below capacity_min so validate() holds: every
      // hub has at least its inbound ring edge, whose capacity is at least
      // capacity_min.
      any_demand = true;
      net.add_demand("load" + std::to_string(i),
                     hubs[static_cast<std::size_t>(i)],
                     rng.uniform(0.5 * options.capacity_min,
                                 options.capacity_min),
                     rng.uniform(options.price_min, options.price_max));
    }
  }
  // Ring for connectivity, then random chords.
  for (int i = 0; i < options.hubs; ++i) {
    const int j = (i + 1) % options.hubs;
    net.add_edge("ring" + std::to_string(i), flow::EdgeKind::kTransmission,
                 hubs[static_cast<std::size_t>(i)],
                 hubs[static_cast<std::size_t>(j)], cap(),
                 rng.uniform(0.0, 3.0),
                 rng.uniform(0.0, options.line_loss_max));
  }
  for (int i = 0; i < options.hubs; ++i) {
    for (int j = 0; j < options.hubs; ++j) {
      if (i == j || j == (i + 1) % options.hubs) continue;
      if (!rng.bernoulli(options.extra_edge_prob)) continue;
      net.add_edge("chord" + std::to_string(i) + "_" + std::to_string(j),
                   flow::EdgeKind::kTransmission,
                   hubs[static_cast<std::size_t>(i)],
                   hubs[static_cast<std::size_t>(j)], cap(),
                   rng.uniform(0.0, 3.0),
                   rng.uniform(0.0, options.line_loss_max));
    }
  }
  return net;
}

}  // namespace gridsec::sim
