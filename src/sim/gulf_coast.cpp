#include "gridsec/sim/gulf_coast.hpp"

namespace gridsec::sim {
namespace {

struct GulfState {
  const char* code;
  double lat, lon;
  double elec_demand;  // GWh/day
  double elec_price;   // $/MWh
  // Non-gas generation: {fuel, capacity, cost} triples.
  struct Gen {
    const char* fuel;
    double capacity;
    double cost;
  };
  std::vector<Gen> gen;
  double converter_capacity;  // gas-fired fleet, electric GWh/day
  double gas_demand;          // non-electric, thermal GWh/day
  double gas_price;           // $/MWh thermal
  double gas_production;
  double gas_prod_cost;
  double gas_export;   // out-of-region sales (modelled as a demand edge)
  double gas_export_price;
};

const std::vector<GulfState>& gulf_table() {
  static const std::vector<GulfState> kStates = {
      {"TX", 31.0, -99.0, 1100.0, 70.0,
       {{"wind", 420.0, 7.0}, {"nuclear", 140.0, 21.0}, {"coal", 380.0, 26.0},
        {"solar", 120.0, 5.0}},
       1400.0, 500.0, 20.0, 4200.0, 11.0, 900.0, 16.0},
      {"LA", 31.0, -92.0, 250.0, 75.0,
       {{"nuclear", 60.0, 22.0}, {"coal", 70.0, 27.0}},
       420.0, 300.0, 21.0, 1500.0, 12.0, 700.0, 17.0},
      {"OK", 35.5, -97.5, 180.0, 64.0,
       {{"wind", 180.0, 7.0}, {"coal", 110.0, 26.0}},
       250.0, 120.0, 19.0, 1100.0, 12.0, 250.0, 15.0},
      {"NM", 34.4, -106.1, 70.0, 68.0,
       {{"coal", 90.0, 25.0}, {"solar", 60.0, 5.0}, {"wind", 50.0, 8.0}},
       90.0, 60.0, 22.0, 700.0, 13.0, 200.0, 16.0},
  };
  return kStates;
}

struct GulfLink {
  int from, to;
  double capacity;
  double cost;
};

// Gas pipelines (thermal GWh/day): production basins feed the TX/LA hubs.
const std::vector<GulfLink>& gulf_gas_links() {
  static const std::vector<GulfLink> kLinks = {
      {2, 0, 700.0, 0.4},  // OK->TX
      {3, 0, 450.0, 0.4},  // NM->TX
      {0, 1, 900.0, 0.4},  // TX->LA (gulf corridor)
      {2, 1, 250.0, 0.4},  // OK->LA
      {1, 0, 200.0, 0.4},  // LA->TX backhaul
  };
  return kLinks;
}

const std::vector<GulfLink>& gulf_elec_links() {
  static const std::vector<GulfLink> kLinks = {
      {0, 1, 220.0, 1.0},  // TX->LA
      {2, 0, 180.0, 1.0},  // OK->TX
      {3, 0, 120.0, 1.0},  // NM->TX
      {2, 3, 60.0, 1.0},   // OK->NM
      {1, 0, 100.0, 1.0},  // LA->TX
  };
  return kLinks;
}

constexpr double kConverterLoss = 0.50;  // newer gas fleet
constexpr double kConverterCost = 3.5;

}  // namespace

WesternUsModel build_gulf_coast(const WesternUsOptions& options) {
  const auto& states = gulf_table();
  WesternUsModel m;
  const double cap_factor =
      options.apply_adjustments ? 1.0 - options.capacity_derating : 1.0;
  const double demand_factor =
      options.apply_adjustments ? 1.0 + options.demand_surge : 1.0;

  for (const GulfState& s : states) {
    m.states.emplace_back(s.code);
    m.gas_hub.push_back(m.network.add_hub(std::string(s.code) + ".gas"));
    m.elec_hub.push_back(m.network.add_hub(std::string(s.code) + ".elec"));
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    const GulfState& s = states[i];
    const std::string code = s.code;
    const flow::NodeId gh = m.gas_hub[i];
    const flow::NodeId eh = m.elec_hub[i];

    m.network.add_supply(code + ".gas.prod", gh, s.gas_production,
                         s.gas_prod_cost);
    m.network.add_demand(code + ".gas.load", gh, s.gas_demand * demand_factor,
                         s.gas_price);
    if (s.gas_export > 0.0) {
      // Out-of-region buyers: a demand edge at the export netback price.
      m.network.add_demand(code + ".gas.export", gh, s.gas_export,
                           s.gas_export_price);
    }
    for (const GulfState::Gen& g : s.gen) {
      m.network.add_supply(code + ".elec." + g.fuel, eh,
                           g.capacity * cap_factor, g.cost);
    }
    m.converters.push_back(m.network.add_edge(
        code + ".gas2elec", flow::EdgeKind::kConversion, gh, eh,
        s.converter_capacity * cap_factor, kConverterCost, kConverterLoss));
    m.network.add_demand(code + ".elec.load", eh,
                         s.elec_demand * demand_factor, s.elec_price);
  }

  const auto add_links = [&](const std::vector<GulfLink>& links,
                             const std::vector<flow::NodeId>& hubs,
                             const char* tag) {
    for (const GulfLink& l : links) {
      const GulfState& a = states[static_cast<std::size_t>(l.from)];
      const GulfState& b = states[static_cast<std::size_t>(l.to)];
      const double loss =
          loss_from_distance(haversine_km(a.lat, a.lon, b.lat, b.lon));
      m.long_haul.push_back(m.network.add_edge(
          std::string(a.code) + "-" + b.code + "." + tag,
          flow::EdgeKind::kTransmission,
          hubs[static_cast<std::size_t>(l.from)],
          hubs[static_cast<std::size_t>(l.to)], l.capacity, l.cost, loss));
    }
  };
  add_links(gulf_gas_links(), m.gas_hub, "pipe");
  add_links(gulf_elec_links(), m.elec_hub, "line");
  return m;
}

}  // namespace gridsec::sim
