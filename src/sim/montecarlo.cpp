#include "gridsec/sim/montecarlo.hpp"

namespace gridsec::sim {

RunningStats run_scalar_trials(
    ThreadPool* pool, std::size_t n, std::uint64_t seed,
    const std::function<double(std::size_t, Rng&)>& fn) {
  const std::vector<double> values = run_trials<double>(pool, n, seed, fn);
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats;
}

}  // namespace gridsec::sim
