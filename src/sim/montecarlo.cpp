#include "gridsec/sim/montecarlo.hpp"

#include <map>
#include <sstream>

#include "gridsec/obs/log.hpp"

namespace gridsec::sim {

RunningStats run_scalar_trials(
    ThreadPool* pool, std::size_t n, std::uint64_t seed,
    const std::function<double(std::size_t, Rng&)>& fn) {
  const std::vector<double> values = run_trials<double>(pool, n, seed, fn);
  RunningStats stats;
  for (double v : values) stats.add(v);
  return stats;
}

namespace detail {

void note_trial_failure(const Status& status, std::size_t trial,
                        std::uint64_t seed) {
  auto& reg = obs::default_registry();
  static obs::Counter& c_failed = reg.counter("sim.montecarlo.failed_trials");
  c_failed.add();
  // Per-code breakdown, e.g. sim.montecarlo.failed.NUMERICAL_ERROR. The
  // code set is small and closed, so the dynamic lookup stays cheap.
  reg.counter("sim.montecarlo.failed." +
              std::string(to_string(status.code())))
      .add();
  // trial + sweep seed reproduce the exact RNG stream of the failed trial:
  // Rng(seed).derive_stream(trial).
  GRIDSEC_LOG(kWarn, "sim.montecarlo")
      .field("trial", trial)
      .field("seed", seed)
      .field("code", to_string(status.code()))
      .message(status.message());
}

void note_trial_retries(std::size_t retries) {
  if (retries == 0) return;
  static obs::Counter& c_retries =
      obs::default_registry().counter("sim.montecarlo.retries");
  c_retries.add(static_cast<std::int64_t>(retries));
}

std::string summarize_failures(std::size_t n,
                               const std::vector<TrialFailure>& failures,
                               std::size_t skipped, std::size_t retries) {
  std::ostringstream os;
  if (failures.empty() && skipped == 0) {
    os << "all " << n << " trials succeeded";
    if (retries > 0) os << " (" << retries << " retries)";
    return os.str();
  }
  os << failures.size() << "/" << n << " trials failed";
  if (!failures.empty()) {
    std::map<std::string, int> by_code;
    for (const TrialFailure& f : failures) {
      ++by_code[std::string(to_string(f.status.code()))];
    }
    os << " (";
    bool first = true;
    for (const auto& [code, count] : by_code) {
      if (!first) os << ", ";
      os << code << " x" << count;
      first = false;
    }
    os << ")";
  }
  if (skipped > 0) os << ", " << skipped << " skipped";
  if (retries > 0) os << ", " << retries << " retries";
  return os.str();
}

}  // namespace detail

std::string RobustScalarResults::summary() const {
  return detail::summarize_failures(trials, failures, skipped, retries);
}

RobustScalarResults run_scalar_trials_robust(
    ThreadPool* pool, std::size_t n, std::uint64_t seed,
    const std::function<StatusOr<double>(std::size_t, Rng&, int)>& fn,
    const RobustTrialOptions& options) {
  const RobustTrialResults<double> raw =
      run_trials_robust<double>(pool, n, seed, fn, options);
  RobustScalarResults out;
  out.trials = n;
  out.failed = raw.failed;
  out.skipped = raw.skipped;
  out.retries = raw.retries;
  out.failures = raw.failures;
  for (const std::optional<double>& v : raw.results) {
    if (v.has_value()) out.stats.add(*v);
  }
  return out;
}

}  // namespace gridsec::sim
