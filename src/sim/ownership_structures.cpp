#include "gridsec/sim/ownership_structures.hpp"

#include <algorithm>

namespace gridsec::sim {
namespace {

/// State index of a hub node id, or -1.
int state_of_hub(const WesternUsModel& model, flow::NodeId hub) {
  for (std::size_t s = 0; s < model.gas_hub.size(); ++s) {
    if (model.gas_hub[s] == hub || model.elec_hub[s] == hub) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

}  // namespace

cps::Ownership ownership_by_state(const WesternUsModel& model) {
  const flow::Network& net = model.network;
  std::vector<int> owners(static_cast<std::size_t>(net.num_edges()), 0);
  for (int e = 0; e < net.num_edges(); ++e) {
    const flow::Edge& edge = net.edge(e);
    // Prefer the tail's state (origin) — covers long-haul edges; supply
    // edges have a terminal tail, so fall back to the head.
    int state = state_of_hub(model, edge.from);
    if (state < 0) state = state_of_hub(model, edge.to);
    GRIDSEC_ASSERT_MSG(state >= 0, "edge touches no state hub");
    owners[static_cast<std::size_t>(e)] = state;
  }
  return cps::Ownership(std::move(owners),
                        static_cast<int>(model.states.size()));
}

cps::Ownership ownership_by_sector(const WesternUsModel& model) {
  const flow::Network& net = model.network;
  std::vector<int> owners(static_cast<std::size_t>(net.num_edges()), 0);
  // Identify gas hubs for sector classification.
  std::vector<bool> is_gas_hub(static_cast<std::size_t>(net.num_nodes()),
                               false);
  for (flow::NodeId h : model.gas_hub) {
    is_gas_hub[static_cast<std::size_t>(h)] = true;
  }
  const auto touches_gas = [&](const flow::Edge& e) {
    const auto probe = [&](flow::NodeId n) {
      return n >= 0 && n < net.num_nodes() &&
             is_gas_hub[static_cast<std::size_t>(n)];
    };
    return probe(e.from) || probe(e.to);
  };
  for (int e = 0; e < net.num_edges(); ++e) {
    const flow::Edge& edge = net.edge(e);
    int sector;
    switch (edge.kind) {
      case flow::EdgeKind::kConversion:
        sector = 1;  // gas-fired generation belongs to the genco
        break;
      case flow::EdgeKind::kSupply:
        sector = touches_gas(edge) ? 0 : 1;
        break;
      case flow::EdgeKind::kDemand:
        sector = touches_gas(edge) ? 0 : 2;
        break;
      case flow::EdgeKind::kTransmission:
      default:
        sector = touches_gas(edge) ? 0 : 2;
        break;
    }
    owners[static_cast<std::size_t>(e)] = sector;
  }
  return cps::Ownership(std::move(owners), 3);
}

cps::Ownership ownership_concentrated(int num_edges, int num_actors,
                                      Rng& rng) {
  GRIDSEC_ASSERT(num_actors > 0);
  // Zipf-like weights 1/(k+1), normalized cumulative for inverse sampling.
  std::vector<double> cumulative(static_cast<std::size_t>(num_actors));
  double total = 0.0;
  for (int k = 0; k < num_actors; ++k) {
    total += 1.0 / (k + 1.0);
    cumulative[static_cast<std::size_t>(k)] = total;
  }
  std::vector<int> owners(static_cast<std::size_t>(num_edges));
  for (auto& o : owners) {
    const double u = rng.uniform(0.0, total);
    o = static_cast<int>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    o = std::min(o, num_actors - 1);
  }
  return cps::Ownership(std::move(owners), num_actors);
}

}  // namespace gridsec::sim
