#include "gridsec/sim/experiments.hpp"

#include <cmath>
#include <utility>

namespace gridsec::sim {
namespace {

/// Mixes experiment coordinates into a sub-seed so every (point, trial)
/// pair draws an independent, reproducible stream.
std::uint64_t point_seed(std::uint64_t base, std::uint64_t a,
                         std::uint64_t b) {
  SplitMix64 sm(base ^ (a * 0x9e3779b97f4a7c15ULL) ^
                (b * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}

}  // namespace

std::vector<GainLossPoint> experiment_gain_loss(
    const flow::Network& net, const std::vector<int>& actor_counts,
    const ExperimentOptions& options) {
  std::vector<GainLossPoint> out;
  obs::Progress progress("sim.experiments.gain_loss.points",
                         static_cast<std::int64_t>(actor_counts.size()));
  for (std::size_t pi = 0; pi < actor_counts.size(); ++pi) {
    const int n_actors = actor_counts[pi];
    struct Trial {
      double gain = 0.0, loss = 0.0, net = 0.0;
    };
    auto trials = run_trials_robust<Trial>(
        options.pool, static_cast<std::size_t>(options.trials),
        point_seed(options.seed, pi, 1),
        [&](std::size_t, Rng& rng, int, lp::Basis* warm) -> StatusOr<Trial> {
          auto own =
              cps::Ownership::random(net.num_edges(), n_actors, rng);
          cps::ImpactOptions impact = options.impact;
          impact.warm_start = *warm;
          auto im = cps::compute_impact_matrix(net, own, impact);
          if (!im.is_ok()) return im.status();
          *warm = std::move(im->base_basis);
          Trial t;
          t.gain = im->matrix.aggregate_gain();
          t.loss = im->matrix.aggregate_loss();
          t.net = t.gain + t.loss;
          return t;
        },
        options.robust);
    RunningStats gain, loss, netv;
    for (const auto& trial : trials.results) {
      if (!trial.has_value()) continue;
      gain.add(trial->gain);
      loss.add(trial->loss);
      netv.add(trial->net);
    }
    out.push_back({n_actors, gain.mean(), loss.mean(), netv.mean(),
                   gain.std_error(), loss.std_error(),
                   static_cast<int>(trials.failed + trials.skipped)});
    progress.advance();
  }
  return out;
}

std::vector<AdversaryNoisePoint> experiment_adversary_noise(
    const flow::Network& net, const AdversaryNoiseConfig& config,
    const ExperimentOptions& options) {
  std::vector<AdversaryNoisePoint> out;
  core::AdversaryConfig sa_cfg;
  sa_cfg.max_targets = config.max_targets;
  const core::StrategicAdversary sa(sa_cfg);

  obs::Progress progress("sim.experiments.adversary_noise.points",
                         static_cast<std::int64_t>(config.actor_counts.size()));
  for (std::size_t ai = 0; ai < config.actor_counts.size(); ++ai) {
    const int n_actors = config.actor_counts[ai];
    // One trial = one ownership draw; the ground-truth impact matrix is
    // computed once and reused across the whole sigma grid.
    struct Trial {
      std::vector<double> anticipated;
      std::vector<double> observed;
    };
    auto trials = run_trials_robust<Trial>(
        options.pool, static_cast<std::size_t>(options.trials),
        point_seed(options.seed, ai, 2),
        [&](std::size_t, Rng& rng, int, lp::Basis* warm) -> StatusOr<Trial> {
          auto own =
              cps::Ownership::random(net.num_edges(), n_actors, rng);
          cps::ImpactOptions impact = options.impact;
          impact.warm_start = *warm;
          auto truth = cps::compute_impact_matrix(net, own, impact);
          if (!truth.is_ok()) return truth.status();
          // A retry of this trial (a believed solve below may fail
          // numerically) restarts the truth solve from this basis.
          *warm = truth->base_basis;
          impact.warm_start = truth->base_basis;
          Trial t;
          for (double sigma : config.sigmas) {
            cps::NoiseSpec noise;
            noise.sigma = sigma;
            flow::Network view = cps::perturb_knowledge(net, noise, rng);
            auto believed = cps::compute_impact_matrix(view, own, impact);
            if (!believed.is_ok()) return believed.status();
            // Each sigma step perturbs the same topology; the previous
            // step's basis is the closest warm start for the next.
            impact.warm_start = std::move(believed->base_basis);
            core::AttackPlan plan = sa.plan(believed->matrix);
            if (!plan.optimal() && !lp::is_budget_limited(plan.status)) {
              return lp::to_status(plan.status,
                                   "experiment_adversary_noise: SA plan");
            }
            t.anticipated.push_back(plan.anticipated_return);
            t.observed.push_back(
                core::realized_return(truth->matrix, plan, sa_cfg));
          }
          return t;
        },
        options.robust);
    for (std::size_t si = 0; si < config.sigmas.size(); ++si) {
      RunningStats ant, obs;
      for (const auto& trial : trials.results) {
        if (!trial.has_value()) continue;
        ant.add(trial->anticipated[si]);
        obs.add(trial->observed[si]);
      }
      out.push_back({n_actors, config.sigmas[si], ant.mean(), obs.mean(),
                     ant.std_error(), obs.std_error(),
                     static_cast<int>(trials.failed + trials.skipped)});
    }
    progress.advance();
  }
  return out;
}

std::vector<DefensePoint> experiment_defense(
    const flow::Network& net, const DefenseExperimentConfig& config,
    const ExperimentOptions& options) {
  std::vector<DefensePoint> out;
  obs::Progress progress(
      "sim.experiments.defense.points",
      static_cast<std::int64_t>(config.actor_counts.size() *
                                config.defender_sigmas.size()));
  for (std::size_t ai = 0; ai < config.actor_counts.size(); ++ai) {
    const int n_actors = config.actor_counts[ai];
    for (std::size_t si = 0; si < config.defender_sigmas.size(); ++si) {
      const double sigma = config.defender_sigmas[si];

      core::GameConfig game;
      game.adversary.max_targets = config.adversary_max_targets;
      game.defender.defense_cost.assign(
          static_cast<std::size_t>(net.num_edges()), config.defense_cost);
      // Fixed system budget split evenly across the actors (§III-D).
      game.defender.budget.assign(
          static_cast<std::size_t>(n_actors),
          config.system_budget_assets * config.defense_cost / n_actors);
      game.defender_noise.sigma = sigma;
      game.speculated_adversary_noise.sigma =
          config.speculated_adversary_sigma;
      game.adversary_noise.sigma = config.adversary_sigma;
      game.pa_samples = config.pa_samples;
      game.collaborative = config.collaborative;
      game.per_defender_views = config.per_defender_views;
      game.impact = options.impact;

      struct Trial {
        double effectiveness = 0.0;
        double gain_undefended = 0.0;
      };
      // Salt is independent of the collaborative flag so individual and
      // collaborative sweeps see identical ownerships and noise draws —
      // their difference is then a paired comparison.
      auto trials = run_trials_robust<Trial>(
          options.pool, static_cast<std::size_t>(options.trials),
          point_seed(options.seed, ai * 1000 + si, 3),
          [&](std::size_t, Rng& rng, int) -> StatusOr<Trial> {
            auto own =
                cps::Ownership::random(net.num_edges(), n_actors, rng);
            auto outcome = core::play_defense_game(net, own, game, rng);
            if (!outcome.is_ok()) return outcome.status();
            return Trial{outcome->defense_effectiveness,
                         outcome->adversary_gain_undefended};
          },
          options.robust);
      RunningStats eff, gain, rel;
      for (const auto& trial : trials.results) {
        if (!trial.has_value()) continue;
        eff.add(trial->effectiveness);
        gain.add(trial->gain_undefended);
        if (std::fabs(trial->gain_undefended) > 1e-6) {
          rel.add(trial->effectiveness / trial->gain_undefended);
        }
      }
      out.push_back({n_actors, sigma, config.collaborative, eff.mean(),
                     eff.std_error(), gain.mean(), rel.mean(),
                     rel.std_error(),
                     static_cast<int>(trials.failed + trials.skipped)});
      progress.advance();
    }
  }
  return out;
}

}  // namespace gridsec::sim
