#include "gridsec/obs/audit.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "json.hpp"

namespace gridsec::obs {
namespace {

using lp::Objective;
using lp::Problem;
using lp::Sense;
using lp::Solution;
using lp::SolveStatus;
using lp::VarType;

// ---------------------------------------------------------------------------
// Small shared helpers

std::string utc_now_iso8601() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void write_number(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // JSON has no Inf/NaN literals; infinite bounds are elided by the writer
  // and anything else non-finite is a data bug worth preserving visibly.
  if (std::isfinite(v)) {
    os << buf;
  } else {
    os << '"' << buf << '"';
  }
}

std::string_view sense_token(Sense s) {
  switch (s) {
    case Sense::kLessEqual: return "<=";
    case Sense::kGreaterEqual: return ">=";
    case Sense::kEqual: return "=";
  }
  return "?";
}

bool parse_sense(std::string_view token, Sense* out) {
  if (token == "<=") { *out = Sense::kLessEqual; return true; }
  if (token == ">=") { *out = Sense::kGreaterEqual; return true; }
  if (token == "=") { *out = Sense::kEqual; return true; }
  return false;
}

std::string_view vartype_token(VarType t) {
  switch (t) {
    case VarType::kContinuous: return "cont";
    case VarType::kBinary: return "bin";
    case VarType::kInteger: return "int";
  }
  return "?";
}

bool parse_vartype(std::string_view token, VarType* out) {
  if (token == "cont") { *out = VarType::kContinuous; return true; }
  if (token == "bin") { *out = VarType::kBinary; return true; }
  if (token == "int") { *out = VarType::kInteger; return true; }
  return false;
}

bool parse_solve_status(std::string_view token, SolveStatus* out) {
  for (const SolveStatus s :
       {SolveStatus::kOptimal, SolveStatus::kInfeasible,
        SolveStatus::kUnbounded, SolveStatus::kIterationLimit,
        SolveStatus::kTimeLimit, SolveStatus::kNumericalError}) {
    if (token == lp::to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

bool parse_verdict(std::string_view token, CertVerdict* out) {
  for (const CertVerdict v :
       {CertVerdict::kVerified, CertVerdict::kFeasibleOnly,
        CertVerdict::kFailed, CertVerdict::kNotApplicable}) {
    if (token == to_string(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Certificate checker

/// Tracks the worst violation per check family and the narrative lines.
struct Residuals {
  Certificate cert;

  void note(double* slot, double violation, double scale,
            const char* fmt, auto... fmt_args) {
    const double rel = violation / scale;
    if (rel > *slot) *slot = rel;
    if (rel > limit_for(slot)) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), fmt, fmt_args...);
      char line[320];
      std::snprintf(line, sizeof(line), "%s (residual %.3e)", buf, rel);
      cert.violations.emplace_back(line);
    }
  }

  // Each slot's pass/fail threshold, bound at construction.
  double feasibility_tol = 1e-6;
  double dual_tol = 1e-6;
  double duality_gap_tol = 1e-6;
  double integrality_tol = 1e-5;

  double limit_for(const double* slot) const {
    if (slot == &cert.primal_residual || slot == &cert.bound_residual ||
        slot == &cert.objective_residual) {
      return feasibility_tol;
    }
    if (slot == &cert.integrality_residual) return integrality_tol;
    if (slot == &cert.duality_gap) return duality_gap_tol;
    return dual_tol;
  }
};

/// Row activity plus the absolute-magnitude sum used for relative scaling.
struct RowActivity {
  double value = 0.0;
  double abs_sum = 0.0;
};

RowActivity row_activity(const lp::Constraint& row,
                         const std::vector<double>& x) {
  RowActivity act;
  for (const lp::Term& t : row.terms) {
    const double contrib = t.coef * x[static_cast<std::size_t>(t.var)];
    act.value += contrib;
    act.abs_sum += std::fabs(contrib);
  }
  return act;
}

void check_primal(const Problem& problem, const std::vector<double>& x,
                  Residuals& r) {
  const int m = problem.num_constraints();
  for (int i = 0; i < m; ++i) {
    const lp::Constraint& row = problem.constraint(i);
    const RowActivity act = row_activity(row, x);
    const double scale = 1.0 + std::fabs(row.rhs) + act.abs_sum;
    double violation = 0.0;
    switch (row.sense) {
      case Sense::kLessEqual:
        violation = std::max(0.0, act.value - row.rhs);
        break;
      case Sense::kGreaterEqual:
        violation = std::max(0.0, row.rhs - act.value);
        break;
      case Sense::kEqual:
        violation = std::fabs(act.value - row.rhs);
        break;
    }
    r.note(&r.cert.primal_residual, violation, scale,
           "row %d '%s' violates %s %.6g by %.3e", i, row.name.c_str(),
           std::string(sense_token(row.sense)).c_str(), row.rhs, violation);
  }
  const int n = problem.num_variables();
  for (int j = 0; j < n; ++j) {
    const lp::Variable& v = problem.variable(j);
    const double xj = x[static_cast<std::size_t>(j)];
    const double scale = 1.0 + std::fabs(xj);
    const double below = std::max(0.0, v.lower - xj);
    const double above =
        std::isfinite(v.upper) ? std::max(0.0, xj - v.upper) : 0.0;
    r.note(&r.cert.bound_residual, std::max(below, above), scale,
           "var %d '%s' = %.6g outside [%.6g, %.6g]", j, v.name.c_str(), xj,
           v.lower, v.upper);
  }
}

void check_objective(const Problem& problem, const Solution& sol,
                     Residuals& r) {
  const double recomputed = problem.objective_value(sol.x);
  const double scale = 1.0 + std::fabs(recomputed) + std::fabs(sol.objective);
  r.note(&r.cert.objective_residual, std::fabs(recomputed - sol.objective),
         scale, "reported objective %.9g but c'x = %.9g", sol.objective,
         recomputed);
}

void check_integrality(const Problem& problem, const std::vector<double>& x,
                       Residuals& r) {
  const int n = problem.num_variables();
  for (int j = 0; j < n; ++j) {
    if (problem.variable(j).type == VarType::kContinuous) continue;
    const double xj = x[static_cast<std::size_t>(j)];
    const double frac = std::fabs(xj - std::round(xj));
    r.note(&r.cert.integrality_residual, frac, 1.0,
           "integer var %d '%s' = %.9g is fractional", j,
           problem.variable(j).name.c_str(), xj);
  }
}

void check_bnb_stats(const Solution& sol, Residuals& r) {
  const lp::BranchAndBoundStats& s = sol.bnb;
  auto fail = [&r](const char* what, long a, long b) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s (%ld vs %ld)", what, a, b);
    r.cert.violations.emplace_back(buf);
  };
  if (s.nodes_explored < 0 || s.lp_solves < 0 || s.incumbent_updates < 0) {
    fail("negative branch-and-bound counter", s.nodes_explored, s.lp_solves);
  }
  // Every explored node solves at least its own relaxation. A presolve-
  // solved root legitimately reports all-zero stats.
  if (s.lp_solves < s.nodes_explored) {
    fail("lp_solves < nodes_explored", s.lp_solves, s.nodes_explored);
  }
  if (sol.status == SolveStatus::kOptimal && s.nodes_explored > 0 &&
      s.incumbent_updates < 1) {
    fail("optimal MILP with explored nodes but no incumbent update",
         s.incumbent_updates, s.nodes_explored);
  }
}

/// Dual-side checks for an optimal LP solve that carries duals.
/// Everything is derived in the internal minimize sense:
///   c_int = maximize ? -c : c, y_int = maximize ? -duals : duals,
///   d_j = c_int_j - sum_i y_int_i a_ij.
/// Sign conditions (min sense): y <= 0 on <= rows, y >= 0 on >= rows,
/// free on = rows; d_j >= 0 when x_j sits at lower, d_j <= 0 at upper,
/// d_j = 0 strictly inside. Dual objective: y'b + sum_j (d_j > 0 ?
/// d_j l_j : d_j u_j) — a d_j < 0 on an unbounded-above column is itself
/// a dual infeasibility.
void check_dual(const Problem& problem, const Solution& sol, Residuals& r) {
  const bool maximize = problem.objective() == Objective::kMaximize;
  const int n = problem.num_variables();
  const int m = problem.num_constraints();

  std::vector<double> y(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const double yi = sol.duals[static_cast<std::size_t>(i)];
    y[static_cast<std::size_t>(i)] = maximize ? -yi : yi;
  }

  double dual_obj = 0.0;
  // Magnitude of the terms entering each objective, accumulated alongside
  // the sums: on wide-range instances (the fuzzer rescales coefficients by
  // ~1e9) the two objectives are small differences of huge products, and a
  // gap scale built only from the final values would demand absolute
  // precision the arithmetic cannot deliver.
  double dual_obj_mag = 0.0;
  for (int i = 0; i < m; ++i) {
    const lp::Constraint& row = problem.constraint(i);
    const double yi = y[static_cast<std::size_t>(i)];
    const double yscale = 1.0 + std::fabs(yi);
    double sign_violation = 0.0;
    if (row.sense == Sense::kLessEqual) sign_violation = std::max(0.0, yi);
    if (row.sense == Sense::kGreaterEqual) sign_violation = std::max(0.0, -yi);
    r.note(&r.cert.dual_residual, sign_violation, yscale,
           "row %d '%s' dual %.6g has the wrong sign for %s", i,
           row.name.c_str(), yi,
           std::string(sense_token(row.sense)).c_str());

    const RowActivity act = row_activity(row, sol.x);
    if (row.sense != Sense::kEqual) {
      const double slack = std::fabs(row.rhs - act.value);
      const double scale =
          (1.0 + std::fabs(yi)) * (1.0 + std::fabs(row.rhs) + act.abs_sum);
      r.note(&r.cert.complementary_slackness, std::fabs(yi) * slack, scale,
             "row %d '%s': dual %.6g nonzero on slack %.6g", i,
             row.name.c_str(), yi, slack);
    }
    dual_obj += yi * row.rhs;
    dual_obj_mag += std::fabs(yi * row.rhs);
  }

  // Reduced costs, recomputed from scratch. `dmag` tracks each column's
  // accumulation magnitude |c_j| + Σ|y_i·a_ij| alongside: the recompute
  // itself rounds at eps per term, so on a column whose duals reach 1e11
  // even exact duals leave an O(1e-5) remainder. Violations under that
  // floor are this check's own arithmetic, not the solver's.
  constexpr double kCertRoundTol = 1e-13;  // ~450·eps: rounding floor
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> dmag(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double cj = problem.variable(j).objective;
    d[static_cast<std::size_t>(j)] = maximize ? -cj : cj;
    dmag[static_cast<std::size_t>(j)] = std::fabs(cj);
  }
  for (int i = 0; i < m; ++i) {
    const double yi = y[static_cast<std::size_t>(i)];
    if (yi == 0.0) continue;
    for (const lp::Term& t : problem.constraint(i).terms) {
      d[static_cast<std::size_t>(t.var)] -= yi * t.coef;
      dmag[static_cast<std::size_t>(t.var)] += std::fabs(yi * t.coef);
    }
  }

  for (int j = 0; j < n; ++j) {
    const lp::Variable& v = problem.variable(j);
    const double xj = sol.x[static_cast<std::size_t>(j)];
    const double dj = d[static_cast<std::size_t>(j)];
    const double cscale = 1.0 + std::fabs(v.objective);
    const double dj_floor =
        kCertRoundTol * dmag[static_cast<std::size_t>(j)];
    const double at_tol = r.feasibility_tol * (1.0 + std::fabs(xj));
    const bool at_lower = xj - v.lower <= at_tol;
    const bool at_upper = std::isfinite(v.upper) && v.upper - xj <= at_tol;
    double violation = 0.0;
    if (at_lower && at_upper) {
      violation = 0.0;  // fixed variable, d free
    } else if (at_lower) {
      violation = std::max(0.0, -dj);
    } else if (at_upper) {
      violation = std::max(0.0, dj);
    } else {
      violation = std::fabs(dj);
    }
    violation = std::max(0.0, violation - dj_floor);
    r.note(&r.cert.complementary_slackness, violation, cscale,
           "var %d '%s': reduced cost %.6g inconsistent with x = %.6g", j,
           v.name.c_str(), dj, xj);

    if (!sol.reduced_costs.empty()) {
      const double reported = sol.reduced_costs[static_cast<std::size_t>(j)];
      const double mine = maximize ? -dj : dj;
      r.note(&r.cert.reduced_cost_residual, std::fabs(mine - reported),
             1.0 + std::fabs(mine) + std::fabs(reported),
             "var %d '%s': reported reduced cost %.6g, recomputed %.6g", j,
             v.name.c_str(), reported, mine);
    }

    // Dual objective contribution from the bound constraints. The bound
    // multipliers are reconstructed from the sign of dj, so a reduced
    // cost inside the dual tolerance band must count as zero here: the
    // complementarity check above already excuses |dj| <= tol·cscale as
    // noise, and branching on the sign of that noise would multiply it
    // by an arbitrarily large opposite bound (a 1e-8 "negative" dj on a
    // variable at lower with a 1e7 upper bound fakes an O(0.1) gap).
    const double dj_eff =
        std::fabs(dj) <= r.dual_tol * cscale + dj_floor ? 0.0 : dj;
    if (dj_eff > 0.0) {
      dual_obj += dj_eff * v.lower;
      dual_obj_mag += std::fabs(dj_eff * v.lower);
    } else if (dj_eff < 0.0 && std::isfinite(v.upper)) {
      dual_obj += dj_eff * v.upper;
      dual_obj_mag += std::fabs(dj_eff * v.upper);
    } else if (dj_eff < 0.0) {
      r.note(&r.cert.dual_residual, -dj_eff, cscale,
             "var %d '%s': negative reduced cost %.6g on an unbounded "
             "column",
             j, v.name.c_str(), dj_eff);
    }
  }

  double primal_obj = 0.0;
  double primal_obj_mag = 0.0;
  for (int j = 0; j < n; ++j) {
    const double cj = problem.variable(j).objective;
    const double term =
        (maximize ? -cj : cj) * sol.x[static_cast<std::size_t>(j)];
    primal_obj += term;
    primal_obj_mag += std::fabs(term);
  }
  r.note(&r.cert.duality_gap, std::fabs(primal_obj - dual_obj),
         1.0 + primal_obj_mag + dual_obj_mag,
         "duality gap: primal %.9g vs dual %.9g", primal_obj, dual_obj);
}

}  // namespace

std::string_view to_string(CertVerdict v) {
  switch (v) {
    case CertVerdict::kVerified: return "verified";
    case CertVerdict::kFeasibleOnly: return "feasible_only";
    case CertVerdict::kFailed: return "failed";
    case CertVerdict::kNotApplicable: return "not_applicable";
  }
  return "unknown";
}

bool context_is_relaxation(std::string_view context) {
  return context == "lp.simplex" || context == "lp.bnb.node";
}

Certificate certify(const Problem& problem, const Solution& solution,
                    const CertifyOptions& options) {
  static Counter& c_runs = default_registry().counter("obs.audit.certified");
  static Counter& c_failed =
      default_registry().counter("obs.audit.cert_failures");
  c_runs.add();

  Residuals r;
  r.feasibility_tol = options.feasibility_tol;
  r.dual_tol = options.dual_tol;
  r.duality_gap_tol = options.duality_gap_tol;
  r.integrality_tol = options.integrality_tol;
  // A relaxation solve legitimately returns fractional values for
  // declared-integer variables; certify it as the LP it actually solved.
  r.cert.milp = problem.has_integer_variables() && !options.relaxation;

  // Verdicts with no usable point carry nothing to check: the solver
  // already told us the model (or the arithmetic) is the problem.
  const bool has_point =
      solution.x.size() ==
      static_cast<std::size_t>(problem.num_variables());
  const bool checkable =
      has_point && (solution.status == SolveStatus::kOptimal ||
                    lp::is_budget_limited(solution.status));
  if (!checkable) {
    r.cert.verdict = CertVerdict::kNotApplicable;
    return r.cert;
  }

  check_primal(problem, solution.x, r);
  check_objective(problem, solution, r);
  if (r.cert.milp) check_integrality(problem, solution.x, r);

  bool optimality_checked = false;
  if (solution.status == SolveStatus::kOptimal) {
    if (r.cert.milp) {
      // MILP duals (when present) come from a fixed-integer LP, not from
      // an optimality proof of the integer program; the stats invariants
      // are the strongest consistency check available.
      check_bnb_stats(solution, r);
      optimality_checked = true;
    } else if (solution.duals.size() ==
               static_cast<std::size_t>(problem.num_constraints())) {
      check_dual(problem, solution, r);
      optimality_checked = true;
    }
  }

  if (!r.cert.violations.empty()) {
    r.cert.verdict = CertVerdict::kFailed;
    c_failed.add();
  } else if (optimality_checked) {
    r.cert.verdict = CertVerdict::kVerified;
  } else {
    r.cert.verdict = CertVerdict::kFeasibleOnly;
  }
  return r.cert;
}

std::vector<BindingConstraint> binding_constraints(const Problem& problem,
                                                   const Solution& solution,
                                                   double tol) {
  std::vector<BindingConstraint> out;
  if (solution.x.size() !=
      static_cast<std::size_t>(problem.num_variables())) {
    return out;
  }
  const bool have_duals =
      solution.duals.size() ==
      static_cast<std::size_t>(problem.num_constraints());
  for (int i = 0; i < problem.num_constraints(); ++i) {
    const lp::Constraint& row = problem.constraint(i);
    const RowActivity act = row_activity(row, solution.x);
    const double scale = 1.0 + std::fabs(row.rhs) + act.abs_sum;
    if (std::fabs(act.value - row.rhs) > tol * scale) continue;
    BindingConstraint b;
    b.row = i;
    b.name = row.name;
    b.sense = std::string(sense_token(row.sense));
    b.activity = act.value;
    b.rhs = row.rhs;
    b.dual = have_duals ? solution.duals[static_cast<std::size_t>(i)] : 0.0;
    out.push_back(std::move(b));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Attribution rows

namespace {
std::mutex g_attr_mu;
std::vector<AttributionRow> g_attr;
}  // namespace

void set_audit_attribution(std::vector<AttributionRow> rows) {
  const std::lock_guard<std::mutex> lock(g_attr_mu);
  g_attr = std::move(rows);
}

void add_audit_attribution(std::string key, std::string note) {
  const std::lock_guard<std::mutex> lock(g_attr_mu);
  g_attr.push_back({std::move(key), std::move(note)});
}

void clear_audit_attribution() {
  const std::lock_guard<std::mutex> lock(g_attr_mu);
  g_attr.clear();
}

std::vector<AttributionRow> audit_attribution() {
  const std::lock_guard<std::mutex> lock(g_attr_mu);
  return g_attr;
}

// ---------------------------------------------------------------------------
// Bundle assembly + JSON round trip

AuditBundle make_audit_bundle(const Problem& problem, const Solution& solution,
                              std::string context, std::string trigger,
                              const CertifyOptions& options) {
  AuditBundle b;
  b.context = std::move(context);
  b.trigger = std::move(trigger);
  b.created_utc = utc_now_iso8601();
  b.problem = problem;
  b.solution = solution;
  CertifyOptions opts = options;
  opts.relaxation = opts.relaxation || context_is_relaxation(b.context);
  b.certificate = certify(problem, solution, opts);
  b.binding = binding_constraints(problem, solution, opts.feasibility_tol);
  b.attribution = audit_attribution();
  b.log_tail = Logger::tail();
  return b;
}

namespace {

void write_problem(std::ostream& os, const Problem& p) {
  os << "{\"objective\":\""
     << (p.objective() == Objective::kMaximize ? "max" : "min")
     << "\",\"variables\":[";
  for (int j = 0; j < p.num_variables(); ++j) {
    const lp::Variable& v = p.variable(j);
    if (j > 0) os << ',';
    os << "{\"name\":";
    json::write_string(os, v.name);
    os << ",\"lower\":";
    write_number(os, v.lower);
    if (std::isfinite(v.upper)) {
      os << ",\"upper\":";
      write_number(os, v.upper);
    }
    os << ",\"obj\":";
    write_number(os, v.objective);
    os << ",\"type\":\"" << vartype_token(v.type) << "\"}";
  }
  os << "],\"constraints\":[";
  for (int i = 0; i < p.num_constraints(); ++i) {
    const lp::Constraint& row = p.constraint(i);
    if (i > 0) os << ',';
    os << "{\"name\":";
    json::write_string(os, row.name);
    os << ",\"sense\":\"" << sense_token(row.sense) << "\",\"rhs\":";
    write_number(os, row.rhs);
    os << ",\"terms\":[";
    for (std::size_t t = 0; t < row.terms.size(); ++t) {
      if (t > 0) os << ',';
      os << '[' << row.terms[t].var << ',';
      write_number(os, row.terms[t].coef);
      os << ']';
    }
    os << "]}";
  }
  os << "]}";
}

void write_double_array(std::ostream& os, const std::vector<double>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ',';
    write_number(os, v[i]);
  }
  os << ']';
}

void write_solution(std::ostream& os, const Solution& s) {
  os << "{\"status\":\"" << lp::to_string(s.status) << "\",\"objective\":";
  write_number(os, s.objective);
  os << ",\"iterations\":" << s.iterations << ",\"x\":";
  write_double_array(os, s.x);
  os << ",\"duals\":";
  write_double_array(os, s.duals);
  os << ",\"reduced_costs\":";
  write_double_array(os, s.reduced_costs);
  os << ",\"bnb\":{\"nodes_explored\":" << s.bnb.nodes_explored
     << ",\"lp_solves\":" << s.bnb.lp_solves
     << ",\"incumbent_updates\":" << s.bnb.incumbent_updates << "}";
  // Warm-start provenance: whether the solve started from a supplied basis,
  // and the final basis itself so a replay can reproduce the warm path.
  os << ",\"warm_started\":" << (s.warm_started ? "true" : "false");
  if (!s.basis.empty()) {
    os << ",\"basis\":";
    json::write_string(os, lp::to_string(s.basis));
  }
  // Recovery trail: present only when the numerical-recovery ladder
  // engaged. One entry per rung attempted, in order — the audit of a
  // failure shows the whole ladder, not just the verdict.
  if (!s.recovery_trail.empty()) {
    os << ",\"recovery_trail\":[";
    for (std::size_t i = 0; i < s.recovery_trail.size(); ++i) {
      const lp::RecoveryStepInfo& step = s.recovery_trail[i];
      if (i > 0) os << ',';
      os << "{\"rung\":";
      json::write_string(os, step.rung);
      os << ",\"status\":\"" << lp::to_string(step.status)
         << "\",\"certified\":" << (step.certified ? "true" : "false")
         << '}';
    }
    os << ']';
  }
  os << '}';
}

void write_certificate(std::ostream& os, const Certificate& c) {
  os << "{\"verdict\":\"" << to_string(c.verdict) << "\",\"milp\":"
     << (c.milp ? "true" : "false");
  const auto field = [&os](const char* name, double v) {
    os << ",\"" << name << "\":";
    write_number(os, v);
  };
  field("primal_residual", c.primal_residual);
  field("bound_residual", c.bound_residual);
  field("dual_residual", c.dual_residual);
  field("reduced_cost_residual", c.reduced_cost_residual);
  field("complementary_slackness", c.complementary_slackness);
  field("duality_gap", c.duality_gap);
  field("integrality_residual", c.integrality_residual);
  field("objective_residual", c.objective_residual);
  os << ",\"violations\":[";
  for (std::size_t i = 0; i < c.violations.size(); ++i) {
    if (i > 0) os << ',';
    json::write_string(os, c.violations[i]);
  }
  os << "]}";
}

}  // namespace

void write_audit_bundle(std::ostream& os, const AuditBundle& b) {
  os << "{\"schema\":\"gridsec.audit_bundle\",\"version\":" << b.version
     << ",\"context\":";
  json::write_string(os, b.context);
  os << ",\"trigger\":";
  json::write_string(os, b.trigger);
  os << ",\"created_utc\":";
  json::write_string(os, b.created_utc);
  os << ",\"problem\":";
  write_problem(os, b.problem);
  os << ",\"solution\":";
  write_solution(os, b.solution);
  os << ",\"certificate\":";
  write_certificate(os, b.certificate);
  os << ",\"binding_constraints\":[";
  for (std::size_t i = 0; i < b.binding.size(); ++i) {
    const BindingConstraint& bc = b.binding[i];
    if (i > 0) os << ',';
    os << "{\"row\":" << bc.row << ",\"name\":";
    json::write_string(os, bc.name);
    os << ",\"sense\":";
    json::write_string(os, bc.sense);
    os << ",\"activity\":";
    write_number(os, bc.activity);
    os << ",\"rhs\":";
    write_number(os, bc.rhs);
    os << ",\"dual\":";
    write_number(os, bc.dual);
    os << '}';
  }
  os << "],\"attribution\":[";
  for (std::size_t i = 0; i < b.attribution.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"key\":";
    json::write_string(os, b.attribution[i].key);
    os << ",\"note\":";
    json::write_string(os, b.attribution[i].note);
    os << '}';
  }
  os << "],\"log_tail\":[";
  for (std::size_t i = 0; i < b.log_tail.size(); ++i) {
    if (i > 0) os << ',';
    json::write_string(os, b.log_tail[i]);
  }
  os << "]}\n";
}

Status write_audit_bundle_file(const std::string& path,
                               const AuditBundle& bundle) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::invalid_argument("audit: cannot open " + path);
  }
  write_audit_bundle(out, bundle);
  out.flush();
  if (!out.good()) {
    return Status::internal("audit: short write to " + path);
  }
  static Counter& c_dumps = default_registry().counter("obs.audit.dumps");
  c_dumps.add();
  return Status::ok();
}

namespace {

Status parse_error(const std::string& what) {
  return Status::invalid_argument("audit_bundle: " + what);
}

Status parse_problem(const json::JsonValue& v, Problem* out) {
  const json::JsonValue* obj = v.find("objective");
  if (obj == nullptr) return parse_error("problem.objective missing");
  *out = Problem(obj->string_or("min") == "max" ? Objective::kMaximize
                                                : Objective::kMinimize);
  const json::JsonValue* vars = v.find("variables");
  if (vars == nullptr || vars->kind != json::JsonValue::Kind::kArray) {
    return parse_error("problem.variables missing");
  }
  for (const json::JsonValue& var : vars->array) {
    const json::JsonValue* type = var.find("type");
    VarType vt = VarType::kContinuous;
    if (type != nullptr && !parse_vartype(type->string_or("cont"), &vt)) {
      return parse_error("unknown variable type");
    }
    const json::JsonValue* upper = var.find("upper");
    const json::JsonValue* name = var.find("name");
    const json::JsonValue* lower = var.find("lower");
    const json::JsonValue* objc = var.find("obj");
    if (name == nullptr || lower == nullptr || objc == nullptr) {
      return parse_error("variable fields missing");
    }
    out->add_variable(name->string_or(""), lower->number_or(0.0),
                      upper != nullptr ? upper->number_or(lp::kInfinity)
                                       : lp::kInfinity,
                      objc->number_or(0.0), vt);
  }
  const json::JsonValue* rows = v.find("constraints");
  if (rows == nullptr || rows->kind != json::JsonValue::Kind::kArray) {
    return parse_error("problem.constraints missing");
  }
  for (const json::JsonValue& row : rows->array) {
    const json::JsonValue* name = row.find("name");
    const json::JsonValue* sense = row.find("sense");
    const json::JsonValue* rhs = row.find("rhs");
    const json::JsonValue* terms = row.find("terms");
    if (name == nullptr || sense == nullptr || rhs == nullptr ||
        terms == nullptr || terms->kind != json::JsonValue::Kind::kArray) {
      return parse_error("constraint fields missing");
    }
    Sense s = Sense::kLessEqual;
    if (!parse_sense(sense->string_or(""), &s)) {
      return parse_error("unknown constraint sense");
    }
    lp::LinearExpr expr;
    for (const json::JsonValue& t : terms->array) {
      if (t.kind != json::JsonValue::Kind::kArray || t.array.size() != 2) {
        return parse_error("malformed constraint term");
      }
      const int var = static_cast<int>(t.array[0].number_or(-1.0));
      if (var < 0 || var >= out->num_variables()) {
        return parse_error("constraint term references unknown variable");
      }
      expr.add(var, t.array[1].number_or(0.0));
    }
    out->add_constraint(name->string_or(""), std::move(expr), s,
                        rhs->number_or(0.0));
  }
  return Status::ok();
}

Status parse_double_array(const json::JsonValue* v, std::vector<double>* out) {
  out->clear();
  if (v == nullptr) return parse_error("array field missing");
  if (v->kind != json::JsonValue::Kind::kArray) {
    return parse_error("expected array");
  }
  out->reserve(v->array.size());
  for (const json::JsonValue& e : v->array) out->push_back(e.number_or(0.0));
  return Status::ok();
}

Status parse_solution(const json::JsonValue& v, Solution* out) {
  const json::JsonValue* status = v.find("status");
  if (status == nullptr ||
      !parse_solve_status(status->string_or(""), &out->status)) {
    return parse_error("solution.status missing or unknown");
  }
  out->objective = v.find("objective") != nullptr
                       ? v.find("objective")->number_or(0.0)
                       : 0.0;
  out->iterations = v.find("iterations") != nullptr
                        ? static_cast<long>(
                              v.find("iterations")->number_or(0.0))
                        : 0;
  Status st = parse_double_array(v.find("x"), &out->x);
  if (!st.is_ok()) return st;
  st = parse_double_array(v.find("duals"), &out->duals);
  if (!st.is_ok()) return st;
  st = parse_double_array(v.find("reduced_costs"), &out->reduced_costs);
  if (!st.is_ok()) return st;
  if (const json::JsonValue* bnb = v.find("bnb"); bnb != nullptr) {
    out->bnb.nodes_explored = static_cast<long>(
        bnb->find("nodes_explored") != nullptr
            ? bnb->find("nodes_explored")->number_or(0.0)
            : 0.0);
    out->bnb.lp_solves = static_cast<long>(
        bnb->find("lp_solves") != nullptr
            ? bnb->find("lp_solves")->number_or(0.0)
            : 0.0);
    out->bnb.incumbent_updates = static_cast<long>(
        bnb->find("incumbent_updates") != nullptr
            ? bnb->find("incumbent_updates")->number_or(0.0)
            : 0.0);
  }
  // Warm-start provenance (absent in pre-warm-start bundles).
  if (const json::JsonValue* ws = v.find("warm_started"); ws != nullptr) {
    out->warm_started =
        ws->kind == json::JsonValue::Kind::kBool && ws->boolean;
  }
  if (const json::JsonValue* basis = v.find("basis"); basis != nullptr) {
    auto parsed = lp::parse_basis(basis->string_or(""));
    if (!parsed.is_ok()) return parsed.status();
    out->basis = std::move(parsed.value());
  }
  // Recovery trail (absent in pre-recovery bundles and on clean solves).
  if (const json::JsonValue* trail = v.find("recovery_trail");
      trail != nullptr) {
    if (trail->kind != json::JsonValue::Kind::kArray) {
      return parse_error("solution.recovery_trail must be an array");
    }
    for (const json::JsonValue& e : trail->array) {
      const json::JsonValue* rung = e.find("rung");
      const json::JsonValue* step_status = e.find("status");
      lp::RecoveryStepInfo step;
      if (rung == nullptr || step_status == nullptr ||
          !parse_solve_status(step_status->string_or(""), &step.status)) {
        return parse_error("malformed recovery_trail entry");
      }
      step.rung = rung->string_or("");
      const json::JsonValue* cert = e.find("certified");
      step.certified = cert != nullptr &&
                       cert->kind == json::JsonValue::Kind::kBool &&
                       cert->boolean;
      out->recovery_trail.push_back(std::move(step));
    }
  }
  return Status::ok();
}

Status parse_certificate(const json::JsonValue& v, Certificate* out) {
  const json::JsonValue* verdict = v.find("verdict");
  if (verdict == nullptr ||
      !parse_verdict(verdict->string_or(""), &out->verdict)) {
    return parse_error("certificate.verdict missing or unknown");
  }
  const json::JsonValue* milp = v.find("milp");
  out->milp = milp != nullptr && milp->kind == json::JsonValue::Kind::kBool &&
              milp->boolean;
  const auto num = [&v](const char* name) {
    const json::JsonValue* f = v.find(name);
    return f != nullptr ? f->number_or(0.0) : 0.0;
  };
  out->primal_residual = num("primal_residual");
  out->bound_residual = num("bound_residual");
  out->dual_residual = num("dual_residual");
  out->reduced_cost_residual = num("reduced_cost_residual");
  out->complementary_slackness = num("complementary_slackness");
  out->duality_gap = num("duality_gap");
  out->integrality_residual = num("integrality_residual");
  out->objective_residual = num("objective_residual");
  if (const json::JsonValue* viol = v.find("violations");
      viol != nullptr && viol->kind == json::JsonValue::Kind::kArray) {
    for (const json::JsonValue& e : viol->array) {
      out->violations.push_back(e.string_or(""));
    }
  }
  return Status::ok();
}

}  // namespace

StatusOr<AuditBundle> parse_audit_bundle(const std::string& text) {
  json::JsonParser parser(text);
  StatusOr<json::JsonValue> parsed = parser.parse();
  if (!parsed.is_ok()) return parsed.status();
  const json::JsonValue& root = parsed.value();

  const json::JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->string_or("") != "gridsec.audit_bundle") {
    return parse_error("not a gridsec.audit_bundle document");
  }
  AuditBundle b;
  const json::JsonValue* version = root.find("version");
  if (version == nullptr) return parse_error("version missing");
  b.version = static_cast<int>(version->number_or(0.0));
  if (b.version != 1) {
    return parse_error("unsupported version " + std::to_string(b.version));
  }
  b.context =
      root.find("context") != nullptr ? root.find("context")->string_or("")
                                      : "";
  b.trigger =
      root.find("trigger") != nullptr ? root.find("trigger")->string_or("")
                                      : "";
  b.created_utc = root.find("created_utc") != nullptr
                      ? root.find("created_utc")->string_or("")
                      : "";
  const json::JsonValue* problem = root.find("problem");
  if (problem == nullptr) return parse_error("problem missing");
  Status st = parse_problem(*problem, &b.problem);
  if (!st.is_ok()) return st;
  const json::JsonValue* solution = root.find("solution");
  if (solution == nullptr) return parse_error("solution missing");
  st = parse_solution(*solution, &b.solution);
  if (!st.is_ok()) return st;
  const json::JsonValue* cert = root.find("certificate");
  if (cert == nullptr) return parse_error("certificate missing");
  st = parse_certificate(*cert, &b.certificate);
  if (!st.is_ok()) return st;

  if (const json::JsonValue* binding = root.find("binding_constraints");
      binding != nullptr && binding->kind == json::JsonValue::Kind::kArray) {
    for (const json::JsonValue& e : binding->array) {
      BindingConstraint bc;
      bc.row = static_cast<int>(
          e.find("row") != nullptr ? e.find("row")->number_or(-1.0) : -1.0);
      bc.name = e.find("name") != nullptr ? e.find("name")->string_or("") : "";
      bc.sense =
          e.find("sense") != nullptr ? e.find("sense")->string_or("") : "";
      bc.activity = e.find("activity") != nullptr
                        ? e.find("activity")->number_or(0.0)
                        : 0.0;
      bc.rhs = e.find("rhs") != nullptr ? e.find("rhs")->number_or(0.0) : 0.0;
      bc.dual =
          e.find("dual") != nullptr ? e.find("dual")->number_or(0.0) : 0.0;
      b.binding.push_back(std::move(bc));
    }
  }
  if (const json::JsonValue* attr = root.find("attribution");
      attr != nullptr && attr->kind == json::JsonValue::Kind::kArray) {
    for (const json::JsonValue& e : attr->array) {
      AttributionRow row;
      row.key = e.find("key") != nullptr ? e.find("key")->string_or("") : "";
      row.note =
          e.find("note") != nullptr ? e.find("note")->string_or("") : "";
      b.attribution.push_back(std::move(row));
    }
  }
  if (const json::JsonValue* tail = root.find("log_tail");
      tail != nullptr && tail->kind == json::JsonValue::Kind::kArray) {
    for (const json::JsonValue& e : tail->array) {
      b.log_tail.push_back(e.string_or(""));
    }
  }
  return b;
}

StatusOr<AuditBundle> read_audit_bundle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::invalid_argument("audit: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_audit_bundle(buf.str());
}

// ---------------------------------------------------------------------------
// The armed hook

namespace {

struct AuditState {
  std::mutex mu;
  AuditConfig config;
  bool armed = false;
  std::uint64_t dumps = 0;
  std::uint64_t cert_failures = 0;
  std::optional<AuditBundle> first_failure;
  std::optional<AuditBundle> last_capture;
};

AuditState& audit_state() {
  static AuditState* s = new AuditState();  // leaked; see Logger rationale
  return *s;
}

bool failure_status(SolveStatus s) {
  return s == SolveStatus::kNumericalError || s == SolveStatus::kTimeLimit;
}

void audit_solve_hook(const Problem& problem, const Solution& solution,
                      std::string_view context) {
  AuditState& st = audit_state();
  CertifyOptions certify_opts;
  bool capture_all = false;
  {
    const std::lock_guard<std::mutex> lock(st.mu);
    if (!st.armed) return;
    certify_opts = st.config.certify;
    capture_all = st.config.capture_all;
  }
  certify_opts.relaxation =
      certify_opts.relaxation || context_is_relaxation(context);

  const Certificate cert = certify(problem, solution, certify_opts);
  const bool failed_cert = !cert.ok();
  const bool failed_solve = failure_status(solution.status);
  if (!failed_cert && !failed_solve && !capture_all) return;

  if (failed_cert) {
    GRIDSEC_LOG(kError, context)
        .field("verdict", to_string(cert.verdict))
        .field("violations", cert.violations.size())
        .message("solve certificate failed");
  }

  AuditBundle bundle = make_audit_bundle(
      problem, solution, std::string(context),
      (failed_solve || failed_cert) ? "failure" : "capture", certify_opts);

  std::string dump_path;
  {
    const std::lock_guard<std::mutex> lock(st.mu);
    if (!st.armed) return;  // disarmed while certifying
    if (failed_cert) ++st.cert_failures;
    if (capture_all) st.last_capture = bundle;
    if (failed_solve || failed_cert) {
      if (!st.first_failure.has_value()) st.first_failure = bundle;
      if (!st.config.dump_dir.empty() &&
          st.dumps < static_cast<std::uint64_t>(st.config.max_dumps)) {
        dump_path = st.config.dump_dir + "/audit_fail_" +
                    std::to_string(st.dumps) + ".json";
        ++st.dumps;
      }
    }
  }
  if (!dump_path.empty()) {
    const Status written = write_audit_bundle_file(dump_path, bundle);
    if (written.is_ok()) {
      GRIDSEC_LOG(kWarn, "obs.audit")
          .field("path", dump_path)
          .field("status", lp::to_string(solution.status))
          .field("verdict", to_string(bundle.certificate.verdict))
          .message("audit bundle dumped");
    } else {
      GRIDSEC_LOG(kError, "obs.audit")
          .field("path", dump_path)
          .message(written.message());
    }
  }
}

}  // namespace

void arm_audit(AuditConfig config) {
  AuditState& st = audit_state();
  {
    const std::lock_guard<std::mutex> lock(st.mu);
    st.config = std::move(config);
    st.armed = true;
    st.dumps = 0;
    st.cert_failures = 0;
    st.first_failure.reset();
    st.last_capture.reset();
  }
  lp::set_solve_hook(&audit_solve_hook);
}

void disarm_audit() {
  lp::set_solve_hook(nullptr);
  AuditState& st = audit_state();
  const std::lock_guard<std::mutex> lock(st.mu);
  st.armed = false;
}

bool audit_armed() {
  AuditState& st = audit_state();
  const std::lock_guard<std::mutex> lock(st.mu);
  return st.armed;
}

std::uint64_t audit_dump_count() {
  AuditState& st = audit_state();
  const std::lock_guard<std::mutex> lock(st.mu);
  return st.dumps;
}

std::uint64_t audit_cert_failure_count() {
  AuditState& st = audit_state();
  const std::lock_guard<std::mutex> lock(st.mu);
  return st.cert_failures;
}

bool first_audit_failure(AuditBundle* out) {
  AuditState& st = audit_state();
  const std::lock_guard<std::mutex> lock(st.mu);
  if (!st.first_failure.has_value()) return false;
  *out = *st.first_failure;
  return true;
}

bool last_audit_capture(AuditBundle* out) {
  AuditState& st = audit_state();
  const std::lock_guard<std::mutex> lock(st.mu);
  if (!st.last_capture.has_value()) return false;
  *out = *st.last_capture;
  return true;
}

}  // namespace gridsec::obs
