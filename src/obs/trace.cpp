#include "gridsec/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "gridsec/obs/prof.hpp"

namespace gridsec::obs {

#ifndef GRIDSEC_NO_TRACING

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TraceEvent {
  const char* name;
  std::uint64_t open_ns;
  std::uint64_t close_ns;
};

/// One buffer per recording thread. The owning thread appends; the
/// exporter reads from another thread — both under the buffer mutex
/// (uncontended except during export).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TracerState {
  std::atomic<bool> enabled{false};
  std::uint64_t epoch_ns = now_ns();  // ts origin, set once at load
  std::mutex registry_mutex;
  // shared_ptr keeps buffers alive past thread exit so worker spans
  // survive until export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // leaked: see header
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TracerState& s = state();
    std::lock_guard lock(s.registry_mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

void Tracer::start() {
  state().enabled.store(true, std::memory_order_release);
}

void Tracer::stop() {
  state().enabled.store(false, std::memory_order_release);
}

bool Tracer::enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void Tracer::reset() {
  TracerState& s = state();
  std::lock_guard lock(s.registry_mutex);
  for (auto& b : s.buffers) {
    std::lock_guard buffer_lock(b->mutex);
    b->events.clear();
  }
}

std::size_t Tracer::event_count() {
  TracerState& s = state();
  std::lock_guard lock(s.registry_mutex);
  std::size_t n = 0;
  for (auto& b : s.buffers) {
    std::lock_guard buffer_lock(b->mutex);
    n += b->events.size();
  }
  return n;
}

void Tracer::write_chrome_json(std::ostream& os) {
  TracerState& s = state();
  std::lock_guard lock(s.registry_mutex);
  os << "[";
  bool first = true;
  for (auto& b : s.buffers) {
    std::lock_guard buffer_lock(b->mutex);
    for (const TraceEvent& e : b->events) {
      if (!first) os << ",\n";
      first = false;
      const std::uint64_t ts_us = (e.open_ns - s.epoch_ns) / 1000;
      const std::uint64_t dur_us = (e.close_ns - e.open_ns) / 1000;
      os << "{\"name\":\"" << e.name << "\",\"cat\":\"gridsec\","
         << "\"ph\":\"X\",\"ts\":" << ts_us << ",\"dur\":" << dur_us
         << ",\"pid\":1,\"tid\":" << b->tid << '}';
    }
  }
  os << "]\n";
}

TraceSpan::TraceSpan(const char* name)
    : name_(Tracer::enabled() ? name : nullptr),
      open_ns_(name_ != nullptr ? now_ns() : 0),
      prof_(Profiler::enabled()) {
  if (prof_) prof_detail::frame_push(name);
}

TraceSpan::~TraceSpan() {
  if (prof_) prof_detail::frame_pop();
  if (name_ == nullptr) return;
  const std::uint64_t close_ns = now_ns();
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back({name_, open_ns_, close_ns});
}

#else  // GRIDSEC_NO_TRACING

void Tracer::write_chrome_json(std::ostream& os) { os << "[]\n"; }

#endif  // GRIDSEC_NO_TRACING

}  // namespace gridsec::obs
