#include "gridsec/obs/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/obs/report.hpp"
#include "gridsec/util/thread_pool.hpp"
#include "json.hpp"

namespace gridsec::obs {
namespace {

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Round-trip-exact double formatting for the timeseries artifact (JSON
/// has no infinities; clamp like metrics.cpp does).
void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (v > 0 ? "1e308" : "-1e308");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

Counter& stalls_counter() {
  static Counter& c = default_registry().counter("obs.telemetry.stalls");
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Progress tracking.

namespace telemetry_detail {

struct ProgressTask {
  const char* name;
  std::atomic<std::int64_t> total;
  std::atomic<std::int64_t> done{0};
  std::uint64_t start_ns = 0;
  std::atomic<std::uint64_t> last_advance_ns{0};
  std::atomic<bool> stalled{false};
};

}  // namespace telemetry_detail

using telemetry_detail::ProgressTask;

namespace {

/// Live-scope registry. The enabled flag is the only thing dormant call
/// sites touch; the mutex guards the scope list against concurrent
/// construction/destruction/snapshot.
struct ProgressState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::vector<ProgressTask*> tasks;
};

ProgressState& progress_state() {
  static ProgressState* s = new ProgressState();
  return *s;
}

ProgressSnapshot snapshot_task(const ProgressTask& task,
                               std::uint64_t now) {
  ProgressSnapshot out;
  out.name = task.name;
  out.total = task.total.load(std::memory_order_relaxed);
  out.done = task.done.load(std::memory_order_relaxed);
  out.elapsed_seconds =
      static_cast<double>(now - task.start_ns) * 1e-9;
  if (out.done > 0 && out.elapsed_seconds > 0.0) {
    out.rate_per_second =
        static_cast<double>(out.done) / out.elapsed_seconds;
  }
  if (out.total > 0 && out.rate_per_second > 0.0 && out.done < out.total) {
    out.eta_seconds =
        static_cast<double>(out.total - out.done) / out.rate_per_second;
  } else if (out.total > 0 && out.done >= out.total) {
    out.eta_seconds = 0.0;
  }
  out.stalled = task.stalled.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

bool ProgressTracker::enabled() {
  return progress_state().enabled.load(std::memory_order_relaxed);
}

void ProgressTracker::set_enabled(bool enabled) {
  progress_state().enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<ProgressSnapshot> ProgressTracker::snapshot() {
  auto& state = progress_state();
  const std::uint64_t now = mono_ns();
  std::lock_guard lock(state.mutex);
  std::vector<ProgressSnapshot> out;
  out.reserve(state.tasks.size());
  for (const ProgressTask* task : state.tasks) {
    out.push_back(snapshot_task(*task, now));
  }
  return out;
}

std::size_t ProgressTracker::active_count() {
  auto& state = progress_state();
  std::lock_guard lock(state.mutex);
  return state.tasks.size();
}

std::size_t ProgressTracker::check_stalls(double stall_seconds) {
  if (stall_seconds <= 0.0) return 0;
  auto& state = progress_state();
  const std::uint64_t now = mono_ns();
  const auto threshold_ns =
      static_cast<std::uint64_t>(stall_seconds * 1e9);
  std::size_t fired = 0;
  std::lock_guard lock(state.mutex);
  for (ProgressTask* task : state.tasks) {
    const std::int64_t total = task->total.load(std::memory_order_relaxed);
    const std::int64_t done = task->done.load(std::memory_order_relaxed);
    if (total > 0 && done >= total) continue;  // complete, just not closed
    std::uint64_t last = task->last_advance_ns.load(std::memory_order_relaxed);
    if (last == 0) last = task->start_ns;
    if (now <= last || now - last < threshold_ns) continue;
    if (task->stalled.exchange(true, std::memory_order_relaxed)) continue;
    ++fired;
    stalls_counter().add();
    GRIDSEC_LOG(kWarn, "obs.telemetry")
        .field("scope", task->name)
        .field("done", done)
        .field("total", total)
        .field("seconds_since_progress",
               static_cast<double>(now - last) * 1e-9)
        .message("progress stalled");
  }
  return fired;
}

Progress::Progress(const char* name, std::int64_t total) {
  auto& state = progress_state();
  if (!state.enabled.load(std::memory_order_relaxed)) return;
  task_ = new ProgressTask();
  task_->name = name;
  task_->total.store(total, std::memory_order_relaxed);
  task_->start_ns = mono_ns();
  std::lock_guard lock(state.mutex);
  state.tasks.push_back(task_);
}

Progress::~Progress() {
  if (task_ == nullptr) return;
  auto& state = progress_state();
  {
    std::lock_guard lock(state.mutex);
    std::erase(state.tasks, task_);
  }
  delete task_;
}

void Progress::advance_slow(std::int64_t delta) {
  task_->done.fetch_add(delta, std::memory_order_relaxed);
  task_->last_advance_ns.store(mono_ns(), std::memory_order_relaxed);
  task_->stalled.store(false, std::memory_order_relaxed);
}

void Progress::set_total(std::int64_t total) {
  if (task_ != nullptr) task_->total.store(total, std::memory_order_relaxed);
}

std::int64_t Progress::done() const {
  return task_ != nullptr ? task_->done.load(std::memory_order_relaxed) : 0;
}

// ---------------------------------------------------------------------------
// Build provenance.

const BuildInfo& current_build_info() {
  static const BuildInfo* info = [] {
    const RunManifest m = RunManifest::capture("", 0, nullptr);
    return new BuildInfo{m.git_sha, m.build_type, m.compiler};
  }();
  return *info;
}

// ---------------------------------------------------------------------------
// Timeseries artifact.

namespace {

void write_progress_json(std::ostream& os, const ProgressSnapshot& p) {
  os << "{\"name\":";
  json::write_string(os, p.name);
  os << ",\"total\":" << p.total << ",\"done\":" << p.done
     << ",\"elapsed_seconds\":";
  write_double(os, p.elapsed_seconds);
  os << ",\"rate_per_second\":";
  write_double(os, p.rate_per_second);
  os << ",\"eta_seconds\":";
  write_double(os, p.eta_seconds);
  os << ",\"stalled\":" << (p.stalled ? "true" : "false") << '}';
}

void write_sample_json(std::ostream& os, const TelemetrySample& s) {
  os << "{\"t_seconds\":";
  write_double(os, s.t_seconds);
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) os << ',';
    first = false;
    json::write_string(os, name);
    os << ':' << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) os << ',';
    first = false;
    json::write_string(os, name);
    os << ':';
    write_double(os, v);
  }
  os << "},\"workers\":[";
  first = true;
  for (const auto& w : s.workers) {
    if (!first) os << ',';
    first = false;
    os << "{\"pool\":" << w.pool << ",\"worker\":" << w.worker
       << ",\"busy_ns\":" << w.busy_ns << ",\"idle_ns\":" << w.idle_ns
       << ",\"tasks\":" << w.tasks << '}';
  }
  os << "],\"progress\":[";
  first = true;
  for (const auto& p : s.progress) {
    if (!first) os << ',';
    first = false;
    write_progress_json(os, p);
  }
  os << "]}";
}

}  // namespace

void write_timeseries_json(std::ostream& os, const Timeseries& ts) {
  os << "{\"schema\":";
  json::write_string(os, kTimeseriesSchemaName);
  os << ",\"schema_version\":" << ts.schema_version
     << ",\"start_time_utc\":";
  json::write_string(os, ts.start_time_utc);
  os << ",\"cadence_ms\":";
  write_double(os, ts.cadence_ms);
  os << ",\"dropped\":" << ts.dropped << ",\"build\":{\"git_sha\":";
  json::write_string(os, ts.build.git_sha);
  os << ",\"build_type\":";
  json::write_string(os, ts.build.build_type);
  os << ",\"compiler\":";
  json::write_string(os, ts.build.compiler);
  os << "},\"samples\":[";
  bool first = true;
  for (const auto& s : ts.samples) {
    if (!first) os << ',';
    first = false;
    write_sample_json(os, s);
  }
  os << "]}\n";
}

void write_timeseries_csv(std::ostream& os, const Timeseries& ts) {
  os << "t_seconds,kind,name,value\n";
  for (const auto& s : ts.samples) {
    char t[40];
    std::snprintf(t, sizeof(t), "%.6f", s.t_seconds);
    for (const auto& [name, v] : s.counters) {
      os << t << ",counter," << name << ',' << v << '\n';
    }
    for (const auto& [name, v] : s.gauges) {
      os << t << ",gauge," << name << ',';
      write_double(os, v);
      os << '\n';
    }
    for (const auto& w : s.workers) {
      os << t << ",worker_busy_ns,pool" << w.pool << ".w" << w.worker << ','
         << w.busy_ns << '\n';
      os << t << ",worker_idle_ns,pool" << w.pool << ".w" << w.worker << ','
         << w.idle_ns << '\n';
      os << t << ",worker_tasks,pool" << w.pool << ".w" << w.worker << ','
         << w.tasks << '\n';
    }
    for (const auto& p : s.progress) {
      os << t << ",progress_done," << p.name << ',' << p.done << '\n';
      os << t << ",progress_total," << p.name << ',' << p.total << '\n';
    }
  }
}

namespace {

using json::JsonValue;

std::int64_t int_or(const JsonValue* v, std::int64_t fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber
             ? static_cast<std::int64_t>(v->number)
             : fallback;
}

double num_or(const JsonValue* v, double fallback) {
  return v != nullptr ? v->number_or(fallback) : fallback;
}

std::string str_or(const JsonValue* v, std::string fallback) {
  return v != nullptr ? v->string_or(std::move(fallback))
                      : std::move(fallback);
}

}  // namespace

StatusOr<Timeseries> parse_timeseries(const std::string& json_text) {
  json::JsonParser parser(json_text);
  auto parsed = parser.parse();
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::invalid_argument("timeseries: root is not an object");
  }
  const std::string schema = str_or(root.find("schema"), "");
  if (schema != kTimeseriesSchemaName) {
    return Status::invalid_argument("timeseries: schema is '" + schema +
                                    "', expected '" + kTimeseriesSchemaName +
                                    "'");
  }
  const auto version = int_or(root.find("schema_version"), -1);
  if (version != kTimeseriesSchemaVersion) {
    return Status::invalid_argument(
        "timeseries: unsupported schema_version " + std::to_string(version));
  }
  Timeseries ts;
  ts.schema_version = static_cast<int>(version);
  ts.start_time_utc = str_or(root.find("start_time_utc"), "");
  ts.cadence_ms = num_or(root.find("cadence_ms"), 0.0);
  ts.dropped = static_cast<std::uint64_t>(int_or(root.find("dropped"), 0));
  if (const JsonValue* build = root.find("build")) {
    ts.build.git_sha = str_or(build->find("git_sha"), "");
    ts.build.build_type = str_or(build->find("build_type"), "");
    ts.build.compiler = str_or(build->find("compiler"), "");
  }
  const JsonValue* samples = root.find("samples");
  if (samples == nullptr || samples->kind != JsonValue::Kind::kArray) {
    return Status::invalid_argument("timeseries: missing samples array");
  }
  ts.samples.reserve(samples->array.size());
  for (const JsonValue& sv : samples->array) {
    if (sv.kind != JsonValue::Kind::kObject) {
      return Status::invalid_argument("timeseries: sample is not an object");
    }
    TelemetrySample s;
    s.t_seconds = num_or(sv.find("t_seconds"), 0.0);
    if (const JsonValue* counters = sv.find("counters")) {
      for (const auto& [name, v] : counters->object) {
        s.counters[name] = static_cast<std::int64_t>(v.number_or(0.0));
      }
    }
    if (const JsonValue* gauges = sv.find("gauges")) {
      for (const auto& [name, v] : gauges->object) {
        s.gauges[name] = v.number_or(0.0);
      }
    }
    if (const JsonValue* workers = sv.find("workers")) {
      for (const JsonValue& wv : workers->array) {
        WorkerSample w;
        w.pool = static_cast<int>(int_or(wv.find("pool"), 0));
        w.worker = static_cast<int>(int_or(wv.find("worker"), 0));
        w.busy_ns = int_or(wv.find("busy_ns"), 0);
        w.idle_ns = int_or(wv.find("idle_ns"), 0);
        w.tasks = int_or(wv.find("tasks"), 0);
        s.workers.push_back(w);
      }
    }
    if (const JsonValue* progress = sv.find("progress")) {
      for (const JsonValue& pv : progress->array) {
        ProgressSnapshot p;
        p.name = str_or(pv.find("name"), "");
        p.total = int_or(pv.find("total"), 0);
        p.done = int_or(pv.find("done"), 0);
        p.elapsed_seconds = num_or(pv.find("elapsed_seconds"), 0.0);
        p.rate_per_second = num_or(pv.find("rate_per_second"), 0.0);
        p.eta_seconds = num_or(pv.find("eta_seconds"), -1.0);
        const JsonValue* stalled = pv.find("stalled");
        p.stalled = stalled != nullptr && stalled->boolean;
        s.progress.push_back(std::move(p));
      }
    }
    ts.samples.push_back(std::move(s));
  }
  return ts;
}

// ---------------------------------------------------------------------------
// Sampler.

struct TelemetrySampler::Impl {
  TelemetrySamplerOptions options;
  MetricRegistry* registry = nullptr;
  std::string start_time_utc;
  std::uint64_t start_ns = 0;

  mutable std::mutex ring_mutex;
  std::deque<TelemetrySample> ring;
  std::uint64_t dropped = 0;

  std::thread thread;
  bool thread_running = false;
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
  bool stop_requested = false;

  // Atomic: sample_now() runs take_sample() -> heartbeat() on the caller's
  // thread while the background sampler does the same concurrently.
  std::atomic<double> last_heartbeat_t{-1e18};

  void take_sample();
  void heartbeat(const TelemetrySample& sample);
  void loop();
};

void TelemetrySampler::Impl::take_sample() {
  // Publish allocation totals first so the counter snapshot includes live
  // heap traffic, and count this sample before reading so the ring entry
  // agrees with the registry's own obs.telemetry.samples value — which is
  // why the counter lives on the configured registry, not default_registry().
  sync_alloc_counters();
  registry->counter("obs.telemetry.samples").add();

  TelemetrySample s;
  s.t_seconds = static_cast<double>(mono_ns() - start_ns) * 1e-9;
  s.counters = registry->counter_values();
  s.gauges = registry->gauge_values();
  const auto pools = ThreadPool::stats_for_all_pools();
  for (std::size_t p = 0; p < pools.size(); ++p) {
    for (std::size_t w = 0; w < pools[p].size(); ++w) {
      s.workers.push_back({static_cast<int>(p), static_cast<int>(w),
                           pools[p][w].busy_ns, pools[p][w].idle_ns,
                           pools[p][w].tasks});
    }
  }
  s.progress = ProgressTracker::snapshot();
  ProgressTracker::check_stalls(options.stall_after_seconds);
  heartbeat(s);

  std::lock_guard lock(ring_mutex);
  ring.push_back(std::move(s));
  if (ring.size() > options.ring_capacity) {
    ring.pop_front();
    ++dropped;
    registry->counter("obs.telemetry.dropped_samples").add();
  }
}

void TelemetrySampler::Impl::heartbeat(const TelemetrySample& sample) {
  if (options.heartbeat_every_seconds <= 0.0) return;
  // CAS loop: exactly one of two concurrent samplers claims the beat.
  double last = last_heartbeat_t.load(std::memory_order_relaxed);
  do {
    if (sample.t_seconds - last < options.heartbeat_every_seconds) return;
  } while (!last_heartbeat_t.compare_exchange_weak(
      last, sample.t_seconds, std::memory_order_relaxed));
  registry->counter("obs.telemetry.heartbeats").add();
  const ProgressSnapshot* head =
      sample.progress.empty() ? nullptr : &sample.progress.front();
  GRIDSEC_LOG(kInfo, "obs.telemetry")
      .field("t_seconds", sample.t_seconds)
      .field("scopes", sample.progress.size())
      .field("scope", head != nullptr ? head->name : std::string("-"))
      .field("done", head != nullptr ? head->done : 0)
      .field("total", head != nullptr ? head->total : 0)
      .field("eta_seconds", head != nullptr ? head->eta_seconds : -1.0)
      .message("heartbeat");
  if (options.progress_to_stderr) {
    std::string line = "gridsec: t=" +
                       std::to_string(sample.t_seconds).substr(0, 6) + "s";
    for (std::size_t i = 0; i < sample.progress.size() && i < 3; ++i) {
      const ProgressSnapshot& p = sample.progress[i];
      line += "  " + p.name + " " + std::to_string(p.done);
      if (p.total > 0) line += "/" + std::to_string(p.total);
      char extra[64];
      if (p.eta_seconds >= 0.0) {
        std::snprintf(extra, sizeof(extra), " (%.1f/s, eta %.1fs)",
                      p.rate_per_second, p.eta_seconds);
      } else {
        std::snprintf(extra, sizeof(extra), " (%.1f/s)", p.rate_per_second);
      }
      line += extra;
      if (p.stalled) line += " STALLED";
    }
    if (sample.progress.empty()) line += "  (no active scopes)";
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void TelemetrySampler::Impl::loop() {
  take_sample();  // t≈0 baseline
  const auto cadence = std::chrono::duration<double, std::milli>(
      options.cadence_ms);
  std::unique_lock lock(wake_mutex);
  while (!stop_requested) {
    if (wake_cv.wait_for(lock, cadence, [this] { return stop_requested; })) {
      break;
    }
    lock.unlock();
    take_sample();
    lock.lock();
  }
}

TelemetrySampler::TelemetrySampler() : impl_(std::make_unique<Impl>()) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

Status TelemetrySampler::start(const TelemetrySamplerOptions& options) {
  if (impl_->thread_running) {
    return Status::invalid_argument("telemetry sampler already running");
  }
  if (!(options.cadence_ms > 0.0)) {
    return Status::invalid_argument("telemetry sampler cadence_ms must be > 0");
  }
  if (options.ring_capacity == 0) {
    return Status::invalid_argument(
        "telemetry sampler ring_capacity must be > 0");
  }
  if (options.stall_after_seconds < 0.0 ||
      options.heartbeat_every_seconds < 0.0) {
    return Status::invalid_argument(
        "telemetry sampler watchdog/heartbeat intervals must be >= 0");
  }
  impl_->options = options;
  impl_->registry =
      options.registry != nullptr ? options.registry : &default_registry();
  impl_->start_time_utc = RunManifest::capture("", 0, nullptr).start_time_utc;
  impl_->start_ns = mono_ns();
  impl_->stop_requested = false;
  ProgressTracker::set_enabled(true);
  impl_->thread = std::thread([this] { impl_->loop(); });
  impl_->thread_running = true;
  return Status::ok();
}

void TelemetrySampler::stop() {
  if (!impl_->thread_running) return;
  {
    std::lock_guard lock(impl_->wake_mutex);
    impl_->stop_requested = true;
  }
  impl_->wake_cv.notify_all();
  impl_->thread.join();
  impl_->thread_running = false;
  // Final sample: the ring's last entry is the registry's exit state.
  impl_->take_sample();
}

bool TelemetrySampler::running() const { return impl_->thread_running; }

void TelemetrySampler::sample_now() {
  if (impl_->registry == nullptr) {
    // Never started: sample the default registry against a fresh origin.
    impl_->registry = &default_registry();
    impl_->start_time_utc =
        RunManifest::capture("", 0, nullptr).start_time_utc;
    impl_->start_ns = mono_ns();
  }
  impl_->take_sample();
}

Timeseries TelemetrySampler::snapshot() const {
  Timeseries ts;
  ts.start_time_utc = impl_->start_time_utc;
  ts.cadence_ms = impl_->options.cadence_ms;
  ts.build = current_build_info();
  std::lock_guard lock(impl_->ring_mutex);
  ts.dropped = impl_->dropped;
  ts.samples.assign(impl_->ring.begin(), impl_->ring.end());
  return ts;
}

std::size_t TelemetrySampler::samples() const {
  std::lock_guard lock(impl_->ring_mutex);
  return impl_->ring.size();
}

std::uint64_t TelemetrySampler::dropped() const {
  std::lock_guard lock(impl_->ring_mutex);
  return impl_->dropped;
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition.

std::string openmetrics_name(const std::string& dotted) {
  std::string out = "gridsec_";
  out.reserve(out.size() + dotted.size());
  for (const char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string openmetrics_escape_label(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void write_om_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

void write_family_header(std::ostream& os, const std::string& name,
                         const char* type, const std::string& help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

void write_quantile_family(std::ostream& os, const std::string& base,
                           const std::string& source, const char* what,
                           const DistSnapshot& d) {
  write_family_header(os, base, "gauge",
                      std::string(what) + " quantiles of " + source + ".");
  os << base << "{quantile=\"0.5\"} ";
  write_om_value(os, d.p50);
  os << '\n' << base << "{quantile=\"0.9\"} ";
  write_om_value(os, d.p90);
  os << '\n' << base << "{quantile=\"0.99\"} ";
  write_om_value(os, d.p99);
  os << '\n';
  write_family_header(os, base + "_sum", "gauge",
                      std::string("Sum of observations of ") + source + ".");
  os << base << "_sum ";
  write_om_value(os, d.sum);
  os << '\n';
  write_family_header(os, base + "_observations", "counter",
                      std::string("Observations recorded by ") + source + ".");
  os << base << "_observations_total " << d.count << '\n';
}

}  // namespace

void write_openmetrics(std::ostream& os, const MetricRegistry& registry) {
  const BuildInfo& build = current_build_info();
  write_family_header(os, "gridsec_build_info", "gauge",
                      "Build provenance; the value is always 1.");
  os << "gridsec_build_info{git_sha=\""
     << openmetrics_escape_label(build.git_sha) << "\",build_type=\""
     << openmetrics_escape_label(build.build_type) << "\",compiler=\""
     << openmetrics_escape_label(build.compiler) << "\"} 1\n";

  for (const auto& [name, value] : registry.counter_values()) {
    const std::string om = openmetrics_name(name);
    write_family_header(os, om, "counter",
                        "Registry counter " + name + ".");
    os << om << "_total " << value << '\n';
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    const std::string om = openmetrics_name(name);
    write_family_header(os, om, "gauge", "Registry gauge " + name + ".");
    os << om << ' ';
    write_om_value(os, value);
    os << '\n';
  }
  for (const auto& [name, d] : registry.histogram_snapshots()) {
    write_quantile_family(os, openmetrics_name(name),
                          "registry histogram " + name, "Bucket-interpolated",
                          d);
  }
  for (const auto& [name, d] : registry.timer_snapshots()) {
    write_quantile_family(os, openmetrics_name(name) + "_seconds",
                          "registry timer " + name + " (seconds)",
                          "Reservoir-estimated", d);
  }
  os << "# EOF\n";
}

}  // namespace gridsec::obs
