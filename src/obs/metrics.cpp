#include "gridsec/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

#include "gridsec/util/error.hpp"

namespace gridsec::obs {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  GRIDSEC_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must be ascending");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, x);
}

std::vector<std::int64_t> Histogram::counts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const auto counts = this->counts();
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (bounds_.empty()) return 0.0;  // only the overflow bucket exists
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket < target || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) return bounds_.back();  // overflow: clamp
    const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction = (target - cumulative) / in_bucket;
    return lower + fraction * (upper - lower);
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void Timer::observe_seconds(double s) {
  std::lock_guard lock(mutex_);
  stats_.add(s);
  if (samples_.size() < kReservoirCapacity) {
    samples_.push_back(s);
    return;
  }
  // Vitter's algorithm R with a deterministic LCG: sample i replaces a
  // random reservoir slot with probability capacity / count.
  lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const std::uint64_t slot = lcg_ % stats_.count();
  if (slot < kReservoirCapacity) samples_[slot] = s;
}

RunningStats Timer::snapshot() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

double Timer::quantile(double q) const {
  std::lock_guard lock(mutex_);
  if (samples_.empty()) return 0.0;
  return percentile(samples_, std::min(1.0, std::max(0.0, q)) * 100.0);
}

void Timer::reset() {
  std::lock_guard lock(mutex_);
  stats_ = RunningStats();
  samples_.clear();
}

ScopedTimer::ScopedTimer(Timer* timer)
    : timer_(timer), start_ns_(timer != nullptr ? now_ns() : 0) {}

ScopedTimer::~ScopedTimer() {
  if (timer_ == nullptr) return;
  timer_->observe_seconds(static_cast<double>(now_ns() - start_ns_) * 1e-9);
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Timer& MetricRegistry::timer(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::map<std::string, std::int64_t> MetricRegistry::counter_values() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> MetricRegistry::gauge_values() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, DistSnapshot> MetricRegistry::histogram_snapshots()
    const {
  std::lock_guard lock(mutex_);
  std::map<std::string, DistSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    out[name] = DistSnapshot{h->count(), h->sum(), h->quantile(0.5),
                             h->quantile(0.9), h->quantile(0.99)};
  }
  return out;
}

std::map<std::string, DistSnapshot> MetricRegistry::timer_snapshots() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, DistSnapshot> out;
  for (const auto& [name, t] : timers_) {
    const RunningStats s = t->snapshot();
    out[name] = DistSnapshot{static_cast<std::int64_t>(s.count()), s.sum(),
                             t->quantile(0.5), t->quantile(0.9),
                             t->quantile(0.99)};
  }
  return out;
}

void MetricRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, t] : timers_) t->reset();
}

namespace {

/// JSON string escaping for metric names (conservative: names are plain
/// identifiers, but keep the export well-formed for any input).
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_json_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << (v > 0 ? "1e308" : "-1e308");  // JSON has no infinities
  }
}

}  // namespace

void MetricRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':' << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ':';
    write_json_double(os, g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    write_json_string(os, name);
    os << ":{\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) os << ',';
      write_json_double(os, bounds[i]);
    }
    os << "],\"counts\":[";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ',';
      os << counts[i];
    }
    os << "],\"count\":" << h->count() << ",\"sum\":";
    write_json_double(os, h->sum());
    os << ",\"p50\":";
    write_json_double(os, h->quantile(0.5));
    os << ",\"p90\":";
    write_json_double(os, h->quantile(0.9));
    os << ",\"p99\":";
    write_json_double(os, h->quantile(0.99));
    os << '}';
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) os << ',';
    first = false;
    const RunningStats s = t->snapshot();
    write_json_string(os, name);
    os << ":{\"count\":" << s.count() << ",\"mean\":";
    write_json_double(os, s.mean());
    os << ",\"stddev\":";
    write_json_double(os, s.stddev());
    os << ",\"min\":";
    write_json_double(os, s.count() ? s.min() : 0.0);
    os << ",\"max\":";
    write_json_double(os, s.count() ? s.max() : 0.0);
    os << ",\"p50\":";
    write_json_double(os, t->quantile(0.5));
    os << ",\"p90\":";
    write_json_double(os, t->quantile(0.9));
    os << ",\"p99\":";
    write_json_double(os, t->quantile(0.99));
    os << ",\"total\":";
    write_json_double(os, s.sum());
    os << '}';
  }
  os << "}}";
}

void MetricRegistry::write_csv(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ",value," << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ",value," << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h->count() << '\n';
    os << "histogram," << name << ",sum," << h->sum() << '\n';
    os << "histogram," << name << ",p50," << h->quantile(0.5) << '\n';
    os << "histogram," << name << ",p90," << h->quantile(0.9) << '\n';
    os << "histogram," << name << ",p99," << h->quantile(0.99) << '\n';
    const auto& bounds = h->bounds();
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << "histogram," << name << ",le_";
      if (i < bounds.size()) {
        os << bounds[i];
      } else {
        os << "inf";
      }
      os << ',' << counts[i] << '\n';
    }
  }
  for (const auto& [name, t] : timers_) {
    const RunningStats s = t->snapshot();
    os << "timer," << name << ",count," << s.count() << '\n';
    os << "timer," << name << ",mean," << s.mean() << '\n';
    os << "timer," << name << ",p50," << t->quantile(0.5) << '\n';
    os << "timer," << name << ",p90," << t->quantile(0.9) << '\n';
    os << "timer," << name << ",p99," << t->quantile(0.99) << '\n';
    os << "timer," << name << ",total," << s.sum() << '\n';
  }
}

MetricRegistry& default_registry() {
  // Leaked intentionally: instrumented code (thread-pool workers, solver
  // calls from static destructors in tests) may outlive ordinary statics.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace gridsec::obs
