#include "gridsec/obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <ostream>
#include <vector>

#include "gridsec/obs/metrics.hpp"
#include "json.hpp"

#ifndef GRIDSEC_NO_PROFILING
#include <malloc.h>  // malloc_usable_size (glibc)
#include <time.h>    // clock_gettime(CLOCK_THREAD_CPUTIME_ID)
#endif

namespace gridsec::obs {

// ---------------------------------------------------------------------------
// Artifact formatting/parsing — always compiled, so tools render profiles
// even in GRIDSEC_NO_PROFILING builds.
// ---------------------------------------------------------------------------

const ProfileNode* ProfileNode::find(const std::string& child) const {
  for (const ProfileNode& c : children) {
    if (c.name == child) return &c;
  }
  return nullptr;
}

namespace {

void write_node_json(std::ostream& os, const ProfileNode& n) {
  os << "{\"name\":";
  json::write_string(os, n.name);
  os << ",\"count\":" << n.count << ",\"wall_ns\":" << n.wall_ns
     << ",\"cpu_ns\":" << n.cpu_ns << ",\"excl_wall_ns\":" << n.excl_wall_ns
     << ",\"excl_cpu_ns\":" << n.excl_cpu_ns
     << ",\"alloc_count\":" << n.alloc_count
     << ",\"alloc_bytes\":" << n.alloc_bytes << ",\"children\":[";
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (i != 0) os << ',';
    write_node_json(os, n.children[i]);
  }
  os << "]}";
}

void fold_node(std::ostream& os, const ProfileNode& n, std::string path,
               ProfileWeight weight) {
  path += n.name;
  const std::int64_t value = profile_weight_value(n, weight);
  if (value > 0) os << path << ' ' << value << '\n';
  path += ';';
  for (const ProfileNode& c : n.children) fold_node(os, c, path, weight);
}

void flatten_node(const ProfileNode& n, std::string path,
                  std::vector<ProfileRow>* out) {
  path += n.name;
  out->push_back({path, &n});
  path += ';';
  for (const ProfileNode& c : n.children) flatten_node(c, path, out);
}

}  // namespace

std::int64_t profile_weight_value(const ProfileNode& node,
                                  ProfileWeight weight) {
  switch (weight) {
    case ProfileWeight::kWallMicros: return node.excl_wall_ns / 1000;
    case ProfileWeight::kCpuMicros: return node.excl_cpu_ns / 1000;
    case ProfileWeight::kAllocCount: return node.alloc_count;
    case ProfileWeight::kAllocBytes: return node.alloc_bytes;
  }
  return 0;
}

void write_profile_json(std::ostream& os, const Profile& profile) {
  os << "{\"schema\":\"" << kProfileSchemaName
     << "\",\"schema_version\":" << profile.schema_version
     << ",\"threads\":" << profile.threads << ",\"alloc\":{\"count\":"
     << profile.alloc.count << ",\"bytes\":" << profile.alloc.bytes
     << ",\"live_bytes\":" << profile.alloc.live_bytes
     << ",\"peak_bytes\":" << profile.alloc.peak_bytes
     << "},\"pool\":{\"busy_ns\":" << profile.pool_busy_ns
     << ",\"idle_ns\":" << profile.pool_idle_ns << "},\"tree\":";
  write_node_json(os, profile.root);
  os << "}\n";
}

void write_profile_folded(std::ostream& os, const Profile& profile,
                          ProfileWeight weight) {
  // The synthetic root is elided: top-level phases are the stack bases.
  for (const ProfileNode& c : profile.root.children) {
    fold_node(os, c, std::string(), weight);
  }
}

std::vector<ProfileRow> flatten_profile(const Profile& profile) {
  std::vector<ProfileRow> out;
  for (const ProfileNode& c : profile.root.children) {
    flatten_node(c, std::string(), &out);
  }
  return out;
}

namespace {

using json::JsonValue;

std::int64_t node_i64(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? static_cast<std::int64_t>(v->number_or(0.0)) : 0;
}

Status parse_node(const JsonValue& jn, ProfileNode* out) {
  if (jn.kind != JsonValue::Kind::kObject) {
    return Status::invalid_argument("profile: tree node is not an object");
  }
  const JsonValue* name = jn.find("name");
  if (name == nullptr || name->kind != JsonValue::Kind::kString) {
    return Status::invalid_argument("profile: tree node without a name");
  }
  out->name = name->string;
  out->count = node_i64(jn, "count");
  out->wall_ns = node_i64(jn, "wall_ns");
  out->cpu_ns = node_i64(jn, "cpu_ns");
  out->excl_wall_ns = node_i64(jn, "excl_wall_ns");
  out->excl_cpu_ns = node_i64(jn, "excl_cpu_ns");
  out->alloc_count = node_i64(jn, "alloc_count");
  out->alloc_bytes = node_i64(jn, "alloc_bytes");
  if (const JsonValue* children = jn.find("children");
      children != nullptr && children->kind == JsonValue::Kind::kArray) {
    out->children.resize(children->array.size());
    for (std::size_t i = 0; i < children->array.size(); ++i) {
      const Status st = parse_node(children->array[i], &out->children[i]);
      if (!st.is_ok()) return st;
    }
  }
  return Status::ok();
}

}  // namespace

StatusOr<Profile> parse_profile(const std::string& json_text) {
  json::JsonParser parser(json_text);
  StatusOr<JsonValue> root = parser.parse();
  if (!root.is_ok()) return root.status();
  if (root->kind != JsonValue::Kind::kObject) {
    return Status::invalid_argument(
        "profile: top-level value is not an object");
  }
  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || schema->string_or("") != kProfileSchemaName) {
    return Status::invalid_argument(
        "profile: missing or wrong \"schema\" (want gridsec.profile)");
  }
  const JsonValue* version = root->find("schema_version");
  if (version == nullptr ||
      static_cast<int>(version->number_or(-1)) != kProfileSchemaVersion) {
    return Status::invalid_argument(
        "profile: unsupported schema_version (want " +
        std::to_string(kProfileSchemaVersion) + ")");
  }
  Profile p;
  p.threads = node_i64(*root, "threads");
  if (const JsonValue* alloc = root->find("alloc");
      alloc != nullptr && alloc->kind == JsonValue::Kind::kObject) {
    p.alloc.count = node_i64(*alloc, "count");
    p.alloc.bytes = node_i64(*alloc, "bytes");
    p.alloc.live_bytes = node_i64(*alloc, "live_bytes");
    p.alloc.peak_bytes = node_i64(*alloc, "peak_bytes");
  }
  if (const JsonValue* pool = root->find("pool");
      pool != nullptr && pool->kind == JsonValue::Kind::kObject) {
    p.pool_busy_ns = node_i64(*pool, "busy_ns");
    p.pool_idle_ns = node_i64(*pool, "idle_ns");
  }
  const JsonValue* tree = root->find("tree");
  if (tree == nullptr) {
    return Status::invalid_argument("profile: missing \"tree\"");
  }
  const Status st = parse_node(*tree, &p.root);
  if (!st.is_ok()) return st;
  return p;
}

#ifndef GRIDSEC_NO_PROFILING

// ---------------------------------------------------------------------------
// Allocation accounting.
//
// Two tiers: plain thread_local counters (owner-thread only; feed phase
// attribution through the frame checkpoints below) and process-wide relaxed
// atomics (feed alloc_totals()/sync_alloc_counters()). The thread_locals
// are PODs with static initialization on purpose — the hooks run inside
// operator new, where a dynamically-initialized TLS object could recurse
// into the allocator it is instrumenting.
//
// The default-build hot path is kept to plain TLS arithmetic: per-thread
// counts fold into the global atomics only at flush points (thread-pool
// task boundaries, alloc_totals() reads, frame push/pop). Live/peak
// tracking needs a malloc_usable_size() call plus atomics per alloc AND
// per free, so it runs only while the profiler is recording
// (g_heap_track) — it is a namespace-scope constant-initialized atomic,
// not function-local state, because the hooks must not trip a static
// init guard inside operator new.
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};
std::atomic<bool> g_heap_track{false};

thread_local std::int64_t t_alloc_count = 0;
thread_local std::int64_t t_alloc_bytes = 0;
// Watermarks: how much of t_alloc_* has been folded into g_alloc_*.
thread_local std::int64_t t_flushed_count = 0;
thread_local std::int64_t t_flushed_bytes = 0;

inline void track_alloc(void* p, std::size_t requested) noexcept {
  t_alloc_count += 1;
  t_alloc_bytes += static_cast<std::int64_t>(requested);
  if (!g_heap_track.load(std::memory_order_relaxed)) return;
  const auto usable =
      static_cast<std::int64_t>(::malloc_usable_size(p));
  const std::int64_t live =
      g_live_bytes.fetch_add(usable, std::memory_order_relaxed) + usable;
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void track_free(void* p) noexcept {
  if (p == nullptr || !g_heap_track.load(std::memory_order_relaxed)) return;
  g_live_bytes.fetch_sub(
      static_cast<std::int64_t>(::malloc_usable_size(p)),
      std::memory_order_relaxed);
}

void* alloc_throwing(std::size_t n) {
  if (n == 0) n = 1;
  for (;;) {
    if (void* p = std::malloc(n)) {
      track_alloc(p, n);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* alloc_nothrow(std::size_t n) noexcept {
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p != nullptr) track_alloc(p, n);
  return p;
}

void free_tracked(void* p) noexcept {
  track_free(p);
  std::free(p);
}

// ---------------------------------------------------------------------------
// Frame recording.
// ---------------------------------------------------------------------------

std::uint64_t wall_ns_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t cpu_ns_now() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// One call-tree node. Span names are string literals; identical names from
/// different TUs may be distinct pointers, so matching tries the pointer
/// first and falls back to strcmp. Child counts are small — linear scan.
struct Node {
  explicit Node(const char* n) : name(n) {}
  const char* name;
  std::int64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
  std::int64_t alloc_count = 0;
  std::int64_t alloc_bytes = 0;
  std::vector<std::unique_ptr<Node>> children;

  Node* find_or_add(const char* child) {
    for (auto& c : children) {
      if (c->name == child || std::strcmp(c->name, child) == 0) {
        return c.get();
      }
    }
    children.push_back(std::make_unique<Node>(child));
    return children.back().get();
  }
};

struct Frame {
  Node* node;
  std::uint64_t open_wall_ns;
  std::uint64_t open_cpu_ns;
};

/// Per-thread profile state. The owning thread mutates under `mutex`; the
/// snapshot/reset paths take the same mutex from other threads.
struct ThreadProf {
  ThreadProf() { stack.reserve(64); }
  std::mutex mutex;
  Node root{"(root)"};
  std::vector<Frame> stack;
  // Checkpoint of the owner's t_alloc_* counters: the delta since the last
  // push/pop boundary is charged to whichever node was topmost then.
  std::int64_t ckpt_count = 0;
  std::int64_t ckpt_bytes = 0;
};

struct ProfState {
  std::atomic<bool> enabled{false};
  std::mutex registry_mutex;
  // shared_ptr keeps per-thread trees alive past thread exit so worker
  // frames survive until snapshot, mirroring the tracer's buffers.
  std::vector<std::shared_ptr<ThreadProf>> threads;
};

ProfState& state() {
  static ProfState* s = new ProfState();  // leaked: see header
  return *s;
}

ThreadProf& local_prof() {
  thread_local std::shared_ptr<ThreadProf> tp = [] {
    auto p = std::make_shared<ThreadProf>();
    ProfState& s = state();
    std::lock_guard lock(s.registry_mutex);
    s.threads.push_back(p);
    return p;
  }();
  return *tp;
}

/// Charges the owner's allocation delta since the last checkpoint to the
/// currently-topmost node. Caller holds tp.mutex and is the owner thread
/// (t_alloc_* are the caller's own TLS).
void charge_allocs_locked(ThreadProf& tp) {
  const std::int64_t dc = t_alloc_count - tp.ckpt_count;
  const std::int64_t db = t_alloc_bytes - tp.ckpt_bytes;
  tp.ckpt_count = t_alloc_count;
  tp.ckpt_bytes = t_alloc_bytes;
  if (dc == 0 && db == 0) return;
  Node* active = tp.stack.empty() ? &tp.root : tp.stack.back().node;
  active->alloc_count += dc;
  active->alloc_bytes += db;
}

void merge_node(const Node& from, ProfileNode* into) {
  into->count += from.count;
  into->wall_ns += from.wall_ns;
  into->cpu_ns += from.cpu_ns;
  into->alloc_count += from.alloc_count;
  into->alloc_bytes += from.alloc_bytes;
  for (const auto& child : from.children) {
    ProfileNode* slot = nullptr;
    for (ProfileNode& existing : into->children) {
      if (existing.name == child->name) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      into->children.emplace_back();
      slot = &into->children.back();
      slot->name = child->name;
    }
    merge_node(*child, slot);
  }
}

void finalize_node(ProfileNode* n) {
  std::sort(n->children.begin(), n->children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.name < b.name;
            });
  std::int64_t child_wall = 0;
  std::int64_t child_cpu = 0;
  for (ProfileNode& c : n->children) {
    finalize_node(&c);
    child_wall += c.wall_ns;
    child_cpu += c.cpu_ns;
  }
  // Clock jitter can push a child a hair past its parent; clamp at zero so
  // folded-stack weights stay non-negative.
  n->excl_wall_ns = std::max<std::int64_t>(0, n->wall_ns - child_wall);
  n->excl_cpu_ns = std::max<std::int64_t>(0, n->cpu_ns - child_cpu);
}

}  // namespace

namespace prof_detail {

void flush_thread_allocs() noexcept {
  const std::int64_t dc = t_alloc_count - t_flushed_count;
  const std::int64_t db = t_alloc_bytes - t_flushed_bytes;
  if (dc == 0 && db == 0) return;
  t_flushed_count = t_alloc_count;
  t_flushed_bytes = t_alloc_bytes;
  g_alloc_count.fetch_add(dc, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(db, std::memory_order_relaxed);
}

void frame_push(const char* name) {
  ThreadProf& tp = local_prof();
  const std::uint64_t wall = wall_ns_now();
  const std::uint64_t cpu = cpu_ns_now();
  std::lock_guard lock(tp.mutex);
  charge_allocs_locked(tp);
  Node* parent = tp.stack.empty() ? &tp.root : tp.stack.back().node;
  tp.stack.push_back({parent->find_or_add(name), wall, cpu});
}

void frame_pop() {
  ThreadProf& tp = local_prof();
  const std::uint64_t wall = wall_ns_now();
  const std::uint64_t cpu = cpu_ns_now();
  std::lock_guard lock(tp.mutex);
  if (tp.stack.empty()) return;  // reset() raced an open span: drop it
  charge_allocs_locked(tp);
  const Frame f = tp.stack.back();
  tp.stack.pop_back();
  f.node->count += 1;
  f.node->wall_ns += static_cast<std::int64_t>(wall - f.open_wall_ns);
  f.node->cpu_ns += static_cast<std::int64_t>(cpu - f.open_cpu_ns);
}

}  // namespace prof_detail

void Profiler::start() {
  g_heap_track.store(true, std::memory_order_relaxed);
  state().enabled.store(true, std::memory_order_release);
}

void Profiler::stop() {
  state().enabled.store(false, std::memory_order_release);
  g_heap_track.store(false, std::memory_order_relaxed);
}

bool Profiler::enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void Profiler::reset() {
  ProfState& s = state();
  std::lock_guard lock(s.registry_mutex);
  for (auto& tp : s.threads) {
    std::lock_guard tp_lock(tp->mutex);
    tp->root.children.clear();
    tp->root = Node{"(root)"};
    tp->stack.clear();
  }
}

Profile Profiler::snapshot() {
  Profile p;
  p.root.name = "(root)";
  {
    ProfState& s = state();
    std::lock_guard lock(s.registry_mutex);
    for (auto& tp : s.threads) {
      std::lock_guard tp_lock(tp->mutex);
      if (tp->root.children.empty() && tp->root.alloc_count == 0) continue;
      ++p.threads;
      merge_node(tp->root, &p.root);
    }
  }
  finalize_node(&p.root);
  p.root.excl_wall_ns = 0;  // the synthetic root carries no time of its own
  p.root.excl_cpu_ns = 0;
  p.alloc = alloc_totals();
  p.pool_busy_ns =
      default_registry().counter("util.threadpool.busy_ns").value();
  p.pool_idle_ns =
      default_registry().counter("util.threadpool.idle_ns").value();
  return p;
}

AllocTotals alloc_totals() {
  prof_detail::flush_thread_allocs();  // include the caller's own tail
  AllocTotals t;
  t.count = g_alloc_count.load(std::memory_order_relaxed);
  t.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  t.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  t.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  return t;
}

void sync_alloc_counters() {
  // Published as deltas so the registry counters stay monotonic and
  // registry.reset() (which zeroes values) keeps working: after a reset the
  // counters carry the traffic since the last sync, not process lifetime.
  static std::mutex mutex;
  static std::int64_t published_count = 0;
  static std::int64_t published_bytes = 0;
  static std::int64_t published_peak = 0;
  static Counter& c_count = default_registry().counter("obs.alloc.count");
  static Counter& c_bytes = default_registry().counter("obs.alloc.bytes");
  static Counter& c_peak =
      default_registry().counter("obs.alloc.peak_bytes");
  static Gauge& g_live = default_registry().gauge("obs.alloc.live_bytes");
  const AllocTotals t = alloc_totals();
  std::lock_guard lock(mutex);
  c_count.add(t.count - published_count);
  c_bytes.add(t.bytes - published_bytes);
  c_peak.add(t.peak_bytes - published_peak);
  published_count = t.count;
  published_bytes = t.bytes;
  published_peak = t.peak_bytes;
  g_live.set(static_cast<double>(t.live_bytes));
}

#endif  // GRIDSEC_NO_PROFILING

}  // namespace gridsec::obs

#ifndef GRIDSEC_NO_PROFILING

// ---------------------------------------------------------------------------
// Global operator new/delete replacement. Linked into every binary that
// pulls this object (trace.cpp references prof_detail::frame_push, so any
// target using TraceSpan gets the hooks). The replacements must not
// allocate, which is why the per-thread counters above are plain PODs.
// ---------------------------------------------------------------------------

void* operator new(std::size_t n) {
  return gridsec::obs::alloc_throwing(n);
}
void* operator new[](std::size_t n) {
  return gridsec::obs::alloc_throwing(n);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return gridsec::obs::alloc_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return gridsec::obs::alloc_nothrow(n);
}
void operator delete(void* p) noexcept { gridsec::obs::free_tracked(p); }
void operator delete[](void* p) noexcept { gridsec::obs::free_tracked(p); }
void operator delete(void* p, std::size_t) noexcept {
  gridsec::obs::free_tracked(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  gridsec::obs::free_tracked(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  gridsec::obs::free_tracked(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  gridsec::obs::free_tracked(p);
}

#endif  // GRIDSEC_NO_PROFILING
