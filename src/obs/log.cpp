#include "gridsec/obs/log.hpp"

#ifndef GRIDSEC_NO_LOGGING

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "gridsec/obs/metrics.hpp"
#include "json.hpp"

namespace gridsec::obs {
namespace {

// Millisecond-resolution UTC timestamp; the report manifest uses seconds,
// but log records need sub-second ordering within one solve.
std::string utc_now_iso8601_ms() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const std::size_t n =
      std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ", static_cast<int>(ms));
  return buf;
}

LogLevel level_from_env_or(LogLevel fallback) {
  const char* env = std::getenv("GRIDSEC_LOG_LEVEL");
  if (env == nullptr) return fallback;
  LogLevel parsed;
  if (!parse_log_level(env, &parsed)) return fallback;
  return parsed;
}

bool stderr_from_env() {
  const char* env = std::getenv("GRIDSEC_LOG_STDERR");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

struct LoggerState {
  // Hot-path gate; everything else is cold and sits behind the mutex.
  std::atomic<int> threshold;

  std::mutex mu;
  std::deque<std::string> ring;  // oldest first, bounded by ring capacity
  std::uint64_t emitted = 0;
  bool stderr_sink;
  std::ofstream file_sink;

  LoggerState()
      : threshold(static_cast<int>(level_from_env_or(LogLevel::kInfo))),
        stderr_sink(stderr_from_env()) {}
};

LoggerState& state() {
  // Leaked on purpose: detached/worker threads may log during static
  // destruction, and an intact logger beats a destructed one.
  static LoggerState* s = new LoggerState();
  return *s;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

bool parse_log_level(std::string_view text, LogLevel* out) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (lower == to_string(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool Logger::enabled(LogLevel level) {
  return static_cast<int>(level) >=
             state().threshold.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void Logger::set_level(LogLevel level) {
  state().threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() {
  return static_cast<LogLevel>(
      state().threshold.load(std::memory_order_relaxed));
}

void Logger::set_stderr_sink(bool enabled) {
  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.stderr_sink = enabled;
}

bool Logger::open_file_sink(const std::string& path) {
  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.file_sink.close();
  s.file_sink.clear();
  if (path.empty()) return true;
  s.file_sink.open(path, std::ios::out | std::ios::trunc);
  return s.file_sink.is_open();
}

void Logger::close_file_sink() {
  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.file_sink.close();
  s.file_sink.clear();
}

std::vector<std::string> Logger::tail(std::size_t max_records) {
  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = s.ring.size();
  if (max_records != 0 && max_records < n) n = max_records;
  return std::vector<std::string>(s.ring.end() - static_cast<long>(n),
                                  s.ring.end());
}

std::uint64_t Logger::records_emitted() {
  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.emitted;
}

void Logger::reset_ring() {
  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.ring.clear();
}

void Logger::emit(LogLevel level, std::string line) {
  static Counter& records = default_registry().counter("obs.log.records");
  static Counter& errors = default_registry().counter("obs.log.records.error");
  records.add();
  if (level >= LogLevel::kError) errors.add();

  LoggerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  ++s.emitted;
  if (s.stderr_sink) std::cerr << line << '\n';
  if (s.file_sink.is_open()) s.file_sink << line << '\n' << std::flush;
  s.ring.push_back(std::move(line));
  while (s.ring.size() > kDefaultRingCapacity) s.ring.pop_front();
}

LogEvent::LogEvent(LogLevel level, std::string_view component)
    : level_(level) {
  std::ostringstream os;
  os << "{\"ts\":\"" << utc_now_iso8601_ms() << "\",\"level\":\""
     << to_string(level) << "\",\"component\":";
  json::write_string(os, std::string(component));
  line_ = os.str();
}

LogEvent::~LogEvent() {
  std::ostringstream os;
  os << line_;
  if (!msg_.empty()) {
    os << ",\"msg\":";
    json::write_string(os, msg_);
  }
  os << '}';
  Logger::emit(level_, os.str());
}

LogEvent& LogEvent::field(std::string_view key, std::string_view value) {
  std::ostringstream os;
  os << ',';
  json::write_string(os, std::string(key));
  os << ':';
  json::write_string(os, std::string(value));
  line_ += os.str();
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::ostringstream os;
  os << ',';
  json::write_string(os, std::string(key));
  // JSON has no NaN/Inf literals; quote them so records stay parseable.
  if (value != value || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    os << ":\"" << buf << '"';
  } else {
    os << ':' << buf;
  }
  line_ += os.str();
  return *this;
}

LogEvent& LogEvent::int_field(std::string_view key, std::int64_t value) {
  std::ostringstream os;
  os << ',';
  json::write_string(os, std::string(key));
  os << ':' << value;
  line_ += os.str();
  return *this;
}

LogEvent& LogEvent::uint_field(std::string_view key, std::uint64_t value) {
  std::ostringstream os;
  os << ',';
  json::write_string(os, std::string(key));
  os << ':' << value;
  line_ += os.str();
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, bool value) {
  std::ostringstream os;
  os << ',';
  json::write_string(os, std::string(key));
  os << ':' << (value ? "true" : "false");
  line_ += os.str();
  return *this;
}

LogEvent& LogEvent::message(std::string_view msg) {
  msg_ = std::string(msg);
  return *this;
}

}  // namespace gridsec::obs

#else  // GRIDSEC_NO_LOGGING

namespace gridsec::obs {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

bool parse_log_level(std::string_view text, LogLevel* out) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (lower == to_string(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

}  // namespace gridsec::obs

#endif  // GRIDSEC_NO_LOGGING
