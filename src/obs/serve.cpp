#include "gridsec/obs/serve.hpp"

#ifndef GRIDSEC_NO_SERVE

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/obs/telemetry.hpp"
#include "json.hpp"

namespace gridsec::obs {
namespace {

/// Strips the query string and fragment: routing keys on the path only.
std::string request_path(const std::string& target) {
  const std::size_t cut = target.find_first_of("?#");
  return cut == std::string::npos ? target : target.substr(0, cut);
}

std::string progress_json() {
  std::ostringstream os;
  os << "{\"progress\":[";
  bool first = true;
  for (const auto& p : ProgressTracker::snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    json::write_string(os, p.name);
    os << ",\"total\":" << p.total << ",\"done\":" << p.done
       << ",\"rate_per_second\":" << p.rate_per_second
       << ",\"eta_seconds\":" << p.eta_seconds << ",\"stalled\":"
       << (p.stalled ? "true" : "false") << '}';
  }
  os << "]}\n";
  return os.str();
}

void write_response(int fd, int code, const char* reason,
                    const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  const std::string out = os.str();
  std::size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a scraper that disconnects mid-response must yield
    // EPIPE here, not a process-killing SIGPIPE on the serving thread.
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct TelemetryServer::Impl {
  MetricRegistry* registry = nullptr;
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};
  int bound_port = -1;
  std::thread thread;
  bool thread_running = false;
  std::atomic<std::uint64_t> requests{0};

  void serve_connection(int fd);
  void loop();
};

void TelemetryServer::Impl::serve_connection(int fd) {
  // One short request per connection. The 2 s receive timeout re-arms on
  // every recv(), so a trickling client could otherwise hold the (single)
  // serving thread indefinitely; the overall deadline bounds the whole
  // request read regardless of how the bytes arrive.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  char buf[4096];
  std::string request;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16384 &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // no request line at all
  std::istringstream line(request.substr(0, line_end));
  std::string method, target, version;
  line >> method >> target >> version;
  requests.fetch_add(1, std::memory_order_relaxed);
  if (method != "GET") {
    write_response(fd, 405, "Method Not Allowed", "text/plain; charset=utf-8",
                   "method not allowed\n");
    return;
  }
  const std::string path = request_path(target);
  if (path == "/metrics") {
    // On the configured registry (not default_registry()) so the scrape
    // count shows up in the exposition it belongs to.
    registry->counter("obs.telemetry.scrapes").add();
    sync_alloc_counters();
    std::ostringstream body;
    write_openmetrics(body, *registry);
    write_response(fd, 200, "OK", kOpenMetricsContentType, body.str());
  } else if (path == "/healthz") {
    write_response(fd, 200, "OK", "text/plain; charset=utf-8", "ok\n");
  } else if (path == "/progress") {
    write_response(fd, 200, "OK", "application/json; charset=utf-8",
                   progress_json());
  } else {
    write_response(fd, 404, "Not Found", "text/plain; charset=utf-8",
                   "not found\n");
  }
}

void TelemetryServer::Impl::loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {wake_pipe[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() wrote the pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

TelemetryServer::TelemetryServer() : impl_(std::make_unique<Impl>()) {}

TelemetryServer::~TelemetryServer() { stop(); }

Status TelemetryServer::start(const TelemetryServerOptions& options) {
  if (impl_->thread_running) {
    return Status::invalid_argument("telemetry server already running");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::invalid_argument("telemetry server port must be 0..65535");
  }
  impl_->registry =
      options.registry != nullptr ? options.registry : &default_registry();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal("telemetry server: socket() failed");
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return Status::internal("telemetry server: cannot bind 127.0.0.1:" +
                            std::to_string(options.port));
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Status::internal("telemetry server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::internal("telemetry server: getsockname() failed");
  }
  if (::pipe(impl_->wake_pipe) < 0) {
    ::close(fd);
    return Status::internal("telemetry server: pipe() failed");
  }
  impl_->listen_fd = fd;
  impl_->bound_port = ntohs(addr.sin_port);
  ProgressTracker::set_enabled(true);
  impl_->thread = std::thread([this] { impl_->loop(); });
  impl_->thread_running = true;
  GRIDSEC_LOG(kInfo, "obs.telemetry")
      .field("port", impl_->bound_port)
      .message("telemetry endpoint listening on 127.0.0.1");
  return Status::ok();
}

void TelemetryServer::stop() {
  if (!impl_->thread_running) return;
  const char byte = 'x';
  // A full pipe means a wake-up is already pending; either way the loop
  // sees POLLIN and exits.
  (void)!::write(impl_->wake_pipe[1], &byte, 1);
  impl_->thread.join();
  impl_->thread_running = false;
  ::close(impl_->listen_fd);
  ::close(impl_->wake_pipe[0]);
  ::close(impl_->wake_pipe[1]);
  impl_->listen_fd = -1;
  impl_->wake_pipe[0] = impl_->wake_pipe[1] = -1;
  impl_->bound_port = -1;
}

bool TelemetryServer::running() const { return impl_->thread_running; }

int TelemetryServer::port() const { return impl_->bound_port; }

std::uint64_t TelemetryServer::requests() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

}  // namespace gridsec::obs

#else  // GRIDSEC_NO_SERVE: the endpoint is compiled out entirely.

namespace gridsec::obs {

struct TelemetryServer::Impl {};

TelemetryServer::TelemetryServer() = default;
TelemetryServer::~TelemetryServer() = default;

Status TelemetryServer::start(const TelemetryServerOptions&) {
  return Status::invalid_argument(
      "telemetry endpoint compiled out (GRIDSEC_NO_SERVE)");
}

void TelemetryServer::stop() {}
bool TelemetryServer::running() const { return false; }
int TelemetryServer::port() const { return -1; }
std::uint64_t TelemetryServer::requests() const { return 0; }

}  // namespace gridsec::obs

#endif  // GRIDSEC_NO_SERVE
