// Minimal internal JSON reader shared by the obs artifact parsers
// (report.cpp, audit.cpp) and their tests. Header-only, recursive descent
// over a value tree, no external dependency. Deliberately NOT installed
// under include/ — the public surface stays parse_report/parse_audit_bundle;
// this is plumbing for round-tripping our own artifacts.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "gridsec/util/error.hpp"

namespace gridsec::obs::json {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Map keeps insertion order irrelevant; artifact keys are unique.
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(key);
    return it != object.end() ? &it->second : nullptr;
  }
  [[nodiscard]] double number_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string string_or(std::string fallback) const {
    return kind == Kind::kString ? string : std::move(fallback);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> parse() {
    JsonValue v;
    const Status st = parse_value(&v);
    if (!st.is_ok()) return st;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out->kind = JsonValue::Kind::kString;
                return parse_string(&out->string);
      case 't': return parse_literal("true", out, true);
      case 'f': return parse_literal("false", out, false);
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->kind = JsonValue::Kind::kNull;
          return Status::ok();
        }
        return error("bad literal");
      default: return parse_number(out);
    }
  }

  Status parse_literal(const char* word, JsonValue* out, bool value) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return error("bad literal");
    pos_ += n;
    out->kind = JsonValue::Kind::kBool;
    out->boolean = value;
    return Status::ok();
  }

  Status parse_number(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return error("malformed number");
    pos_ += static_cast<std::size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::ok();
  }

  Status parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          // Our writers only emit \u for control characters; keep it simple.
          out->push_back(static_cast<char>(code & 0x7f));
          break;
        }
        default: return error("unknown escape");
      }
    }
    return error("unterminated string");
  }

  Status parse_array(JsonValue* out) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::ok();
    }
    while (true) {
      JsonValue element;
      const Status st = parse_value(&element);
      if (!st.is_ok()) return st;
      out->array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Status::ok();
      if (c != ',') return error("expected ',' or ']' in array");
    }
  }

  Status parse_object(JsonValue* out) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::ok();
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected object key");
      }
      std::string key;
      Status st = parse_string(&key);
      if (!st.is_ok()) return st;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return error("expected ':' after object key");
      }
      JsonValue value;
      st = parse_value(&value);
      if (!st.is_ok()) return st;
      out->object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Status::ok();
      if (c != ',') return error("expected ',' or '}' in object");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status error(const std::string& what) const {
    return Status::invalid_argument("json: " + what + " at offset " +
                                    std::to_string(pos_));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Escapes and quotes `s` as a JSON string into `os`.
inline void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace gridsec::obs::json
