#include "gridsec/obs/report.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <ostream>
#include <sstream>
#include <thread>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/util/stats.hpp"
#include "json.hpp"

// Provenance baked in at configure time (src/obs/CMakeLists.txt). The
// fallbacks keep non-CMake builds (and unity test builds) compiling.
#ifndef GRIDSEC_GIT_SHA
#define GRIDSEC_GIT_SHA "unknown"
#endif
#ifndef GRIDSEC_BUILD_TYPE
#define GRIDSEC_BUILD_TYPE "unknown"
#endif
#ifndef GRIDSEC_CXX_FLAGS
#define GRIDSEC_CXX_FLAGS ""
#endif

namespace gridsec::obs {
namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string current_hostname() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
  const char* env = std::getenv("HOSTNAME");
  return env != nullptr ? env : "unknown";
}

std::string utc_now_iso8601() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void write_json_string(std::ostream& os, const std::string& s) {
  json::write_string(os, s);
}

void write_json_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << (v > 0 ? "1e308" : "-1e308");
  }
}

}  // namespace

RunManifest RunManifest::capture(std::string tool, int argc,
                                 const char* const* argv) {
  RunManifest m;
  m.tool = std::move(tool);
  const char* sha_env = std::getenv("GRIDSEC_GIT_SHA");
  m.git_sha = (sha_env != nullptr && sha_env[0] != '\0') ? sha_env
                                                         : GRIDSEC_GIT_SHA;
  m.build_type = GRIDSEC_BUILD_TYPE;
  m.compiler = compiler_id();
  m.cxx_flags = GRIDSEC_CXX_FLAGS;
  m.hostname = current_hostname();
  m.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  m.threads = m.hardware_threads;
  m.start_time_utc = utc_now_iso8601();
  for (int i = 1; i < argc; ++i) m.args.emplace_back(argv[i]);
  return m;
}

WallStats WallStats::from_samples(int warmup,
                                  std::span<const double> seconds) {
  WallStats w;
  w.reps = static_cast<int>(seconds.size());
  w.warmup = warmup;
  if (seconds.empty()) return w;
  w.min_seconds = *std::min_element(seconds.begin(), seconds.end());
  w.max_seconds = *std::max_element(seconds.begin(), seconds.end());
  w.mean_seconds = mean(seconds);
  w.median_seconds = percentile(seconds, 50.0);
  w.stddev_seconds = stddev(seconds);
  for (const double s : seconds) w.total_seconds += s;
  return w;
}

CaseResult make_case(std::string name, int warmup,
                     std::span<const double> rep_seconds,
                     const std::map<std::string, std::int64_t>& before,
                     const std::map<std::string, std::int64_t>& after) {
  CaseResult c;
  c.name = std::move(name);
  c.wall = WallStats::from_samples(warmup, rep_seconds);
  const int reps = std::max(1, c.wall.reps);
  for (const auto& [metric, value] : after) {
    const auto it = before.find(metric);
    const std::int64_t delta =
        value - (it != before.end() ? it->second : 0);
    if (delta == 0) continue;
    c.metrics[metric] =
        MetricDelta{delta, static_cast<double>(delta) / reps};
  }
  return c;
}

void RunReport::write_json(std::ostream& os,
                           const MetricRegistry* registry) const {
  os << "{\"schema\":\"" << kReportSchemaName
     << "\",\"schema_version\":" << schema_version << ",\"manifest\":{";
  os << "\"tool\":";
  write_json_string(os, manifest.tool);
  os << ",\"git_sha\":";
  write_json_string(os, manifest.git_sha);
  os << ",\"build_type\":";
  write_json_string(os, manifest.build_type);
  os << ",\"compiler\":";
  write_json_string(os, manifest.compiler);
  os << ",\"cxx_flags\":";
  write_json_string(os, manifest.cxx_flags);
  os << ",\"hostname\":";
  write_json_string(os, manifest.hostname);
  os << ",\"hardware_threads\":" << manifest.hardware_threads
     << ",\"threads\":" << manifest.threads << ",\"seed\":" << manifest.seed
     << ",\"trials\":" << manifest.trials << ",\"args\":[";
  for (std::size_t i = 0; i < manifest.args.size(); ++i) {
    if (i != 0) os << ',';
    write_json_string(os, manifest.args[i]);
  }
  os << "],\"start_time_utc\":";
  write_json_string(os, manifest.start_time_utc);
  os << ",\"wall_time_seconds\":";
  write_json_double(os, manifest.wall_time_seconds);
  os << "},\"cases\":[";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    if (i != 0) os << ',';
    os << "{\"name\":";
    write_json_string(os, c.name);
    os << ",\"reps\":" << c.wall.reps << ",\"warmup\":" << c.wall.warmup
       << ",\"wall_seconds\":{\"min\":";
    write_json_double(os, c.wall.min_seconds);
    os << ",\"median\":";
    write_json_double(os, c.wall.median_seconds);
    os << ",\"mean\":";
    write_json_double(os, c.wall.mean_seconds);
    os << ",\"stddev\":";
    write_json_double(os, c.wall.stddev_seconds);
    os << ",\"max\":";
    write_json_double(os, c.wall.max_seconds);
    os << ",\"total\":";
    write_json_double(os, c.wall.total_seconds);
    os << "},\"metrics\":{";
    bool first = true;
    for (const auto& [metric, delta] : c.metrics) {
      if (!first) os << ',';
      first = false;
      write_json_string(os, metric);
      os << ":{\"total\":" << delta.total << ",\"per_rep\":";
      write_json_double(os, delta.per_rep);
      os << '}';
    }
    os << "}}";
  }
  os << ']';
  if (registry != nullptr) {
    os << ",\"registry\":";
    registry->write_json(os);
  }
  os << "}\n";
}

// ---------------------------------------------------------------------------
// Parsing: the shared minimal JSON reader (json.hpp) does the lexing; this
// file only maps the value tree back onto RunReport.
// ---------------------------------------------------------------------------

using json::JsonParser;
using json::JsonValue;

StatusOr<RunReport> parse_report(const std::string& json_text) {
  JsonParser parser(json_text);
  StatusOr<JsonValue> root = parser.parse();
  if (!root.is_ok()) return root.status();
  if (root->kind != JsonValue::Kind::kObject) {
    return Status::invalid_argument("report: top-level value is not an object");
  }
  const JsonValue* schema = root->find("schema");
  if (schema == nullptr || schema->string_or("") != kReportSchemaName) {
    return Status::invalid_argument(
        "report: missing or wrong \"schema\" (want gridsec.bench_report)");
  }
  const JsonValue* version = root->find("schema_version");
  if (version == nullptr ||
      static_cast<int>(version->number_or(-1)) != kReportSchemaVersion) {
    return Status::invalid_argument(
        "report: unsupported schema_version (want " +
        std::to_string(kReportSchemaVersion) + ")");
  }

  RunReport report;
  report.schema_version = kReportSchemaVersion;

  const JsonValue* manifest = root->find("manifest");
  if (manifest == nullptr || manifest->kind != JsonValue::Kind::kObject) {
    return Status::invalid_argument("report: missing \"manifest\" object");
  }
  RunManifest& m = report.manifest;
  const auto man_str = [&](const char* key) {
    const JsonValue* v = manifest->find(key);
    return v != nullptr ? v->string_or("") : std::string();
  };
  const auto man_num = [&](const char* key) {
    const JsonValue* v = manifest->find(key);
    return v != nullptr ? v->number_or(0.0) : 0.0;
  };
  m.tool = man_str("tool");
  m.git_sha = man_str("git_sha");
  m.build_type = man_str("build_type");
  m.compiler = man_str("compiler");
  m.cxx_flags = man_str("cxx_flags");
  m.hostname = man_str("hostname");
  m.hardware_threads = static_cast<unsigned>(man_num("hardware_threads"));
  m.threads = static_cast<std::size_t>(man_num("threads"));
  m.seed = static_cast<std::uint64_t>(man_num("seed"));
  m.trials = static_cast<int>(man_num("trials"));
  m.start_time_utc = man_str("start_time_utc");
  m.wall_time_seconds = man_num("wall_time_seconds");
  if (const JsonValue* args = manifest->find("args");
      args != nullptr && args->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& a : args->array) m.args.push_back(a.string_or(""));
  }

  const JsonValue* cases = root->find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::kArray) {
    return Status::invalid_argument("report: missing \"cases\" array");
  }
  for (const JsonValue& jc : cases->array) {
    if (jc.kind != JsonValue::Kind::kObject) {
      return Status::invalid_argument("report: case is not an object");
    }
    CaseResult c;
    const JsonValue* name = jc.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return Status::invalid_argument("report: case without a name");
    }
    c.name = name->string;
    c.wall.reps = static_cast<int>(
        jc.find("reps") != nullptr ? jc.find("reps")->number_or(0) : 0);
    c.wall.warmup = static_cast<int>(
        jc.find("warmup") != nullptr ? jc.find("warmup")->number_or(0) : 0);
    if (const JsonValue* wall = jc.find("wall_seconds");
        wall != nullptr && wall->kind == JsonValue::Kind::kObject) {
      const auto wall_num = [&](const char* key) {
        const JsonValue* v = wall->find(key);
        return v != nullptr ? v->number_or(0.0) : 0.0;
      };
      c.wall.min_seconds = wall_num("min");
      c.wall.median_seconds = wall_num("median");
      c.wall.mean_seconds = wall_num("mean");
      c.wall.stddev_seconds = wall_num("stddev");
      c.wall.max_seconds = wall_num("max");
      c.wall.total_seconds = wall_num("total");
    }
    if (const JsonValue* metrics = jc.find("metrics");
        metrics != nullptr && metrics->kind == JsonValue::Kind::kObject) {
      for (const auto& [metric, jm] : metrics->object) {
        MetricDelta d;
        if (const JsonValue* total = jm.find("total")) {
          d.total = static_cast<std::int64_t>(total->number_or(0.0));
        }
        if (const JsonValue* per_rep = jm.find("per_rep")) {
          d.per_rep = per_rep->number_or(0.0);
        }
        c.metrics.emplace(metric, d);
      }
    }
    report.cases.push_back(std::move(c));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Diff engine.
// ---------------------------------------------------------------------------

namespace {

bool has_ignored_prefix(const std::string& name,
                        const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (!p.empty() && name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

bool has_time_suffix(const std::string& name,
                     const std::vector<std::string>& suffixes) {
  for (const std::string& s : suffixes) {
    if (!s.empty() && name.size() >= s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

double relative_change(double baseline, double current) {
  if (baseline == 0.0) return current == 0.0 ? 0.0 : 1e308;
  return (current - baseline) / std::abs(baseline);
}

}  // namespace

DiffReport diff_reports(const RunReport& baseline, const RunReport& current,
                        const DiffOptions& options) {
  DiffReport out;
  std::map<std::string, const CaseResult*> current_by_name;
  for (const CaseResult& c : current.cases) current_by_name[c.name] = &c;

  const auto push = [&out](DiffRow row) {
    if (row.verdict == DiffVerdict::kRegression) ++out.regressions;
    out.rows.push_back(std::move(row));
  };

  for (const CaseResult& base_case : baseline.cases) {
    const auto found = current_by_name.find(base_case.name);
    if (found == current_by_name.end()) {
      push({base_case.name, "(case)", 0.0, 0.0, 0.0, DiffVerdict::kRegression,
            "case missing from new report"});
      continue;
    }
    const CaseResult& cur_case = *found->second;

    // Wall time: always reported, gated only when opted in.
    {
      DiffRow row;
      row.case_name = base_case.name;
      row.quantity = "wall.median";
      row.baseline = base_case.wall.median_seconds;
      row.current = cur_case.wall.median_seconds;
      row.rel_change = relative_change(row.baseline, row.current);
      if (options.wall_rel_threshold > 0.0 &&
          row.rel_change > options.wall_rel_threshold) {
        row.verdict = DiffVerdict::kRegression;
        row.note = "median wall time regressed";
      } else if (options.wall_rel_threshold <= 0.0) {
        row.verdict = DiffVerdict::kInfo;
        row.note = "wall time not gated";
      }
      push(std::move(row));
    }

    for (const auto& [metric, base_delta] : base_case.metrics) {
      DiffRow row;
      row.case_name = base_case.name;
      row.quantity = metric;
      row.baseline = base_delta.per_rep;
      const auto cur_metric = cur_case.metrics.find(metric);
      const bool time_metric = has_time_suffix(metric, options.time_suffixes);
      if (time_metric || has_ignored_prefix(metric, options.ignore_prefixes)) {
        row.current = cur_metric != cur_case.metrics.end()
                          ? cur_metric->second.per_rep
                          : 0.0;
        row.rel_change = relative_change(row.baseline, row.current);
        row.verdict = DiffVerdict::kInfo;
        row.note = time_metric ? "time metric (not gated)" : "ignored prefix";
        push(std::move(row));
        continue;
      }
      if (cur_metric == cur_case.metrics.end()) {
        row.verdict = DiffVerdict::kRegression;
        row.note = "metric missing from new report";
        push(std::move(row));
        continue;
      }
      row.current = cur_metric->second.per_rep;
      row.rel_change = relative_change(row.baseline, row.current);
      const double abs_change = row.current - row.baseline;
      if (row.rel_change > options.metric_rel_threshold &&
          abs_change > options.metric_abs_slack) {
        row.verdict = DiffVerdict::kRegression;
        row.note = "metric regressed past threshold";
      }
      push(std::move(row));
    }

    // Metrics that appeared only in the new run: informational.
    for (const auto& [metric, cur_delta] : cur_case.metrics) {
      if (base_case.metrics.count(metric) != 0) continue;
      push({base_case.name, metric, 0.0, cur_delta.per_rep, 0.0,
            DiffVerdict::kInfo, "new metric (not in baseline)"});
    }
  }

  // Cases that appeared only in the new run: informational.
  std::map<std::string, const CaseResult*> baseline_by_name;
  for (const CaseResult& c : baseline.cases) baseline_by_name[c.name] = &c;
  for (const CaseResult& c : current.cases) {
    if (baseline_by_name.count(c.name) != 0) continue;
    push({c.name, "(case)", 0.0, 0.0, 0.0, DiffVerdict::kInfo,
          "new case (not in baseline)"});
  }
  return out;
}

}  // namespace gridsec::obs
