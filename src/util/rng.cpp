#include "gridsec/util/rng.hpp"

#include <cmath>

#include "gridsec/util/error.hpp"

namespace gridsec {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GRIDSEC_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GRIDSEC_ASSERT(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  GRIDSEC_ASSERT(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  GRIDSEC_ASSERT(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

Rng Rng::derive_stream(std::uint64_t index) const {
  // Mix the parent seed with the stream index through SplitMix64 twice; the
  // avalanche makes adjacent indices produce unrelated states.
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  std::uint64_t derived = sm.next() ^ rotl(sm.next(), 31);
  return Rng(derived);
}

}  // namespace gridsec
