#include "gridsec/util/error.hpp"

namespace gridsec {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kInfeasible:
      return "INFEASIBLE";
    case ErrorCode::kUnbounded:
      return "UNBOUNDED";
    case ErrorCode::kIterationLimit:
      return "ITERATION_LIMIT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kTimeLimit:
      return "TIME_LIMIT";
    case ErrorCode::kNumericalError:
      return "NUMERICAL_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(gridsec::to_string(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) {
  std::fprintf(stderr, "gridsec assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace detail
}  // namespace gridsec
