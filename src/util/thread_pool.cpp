#include "gridsec/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/util/error.hpp"

namespace gridsec {

namespace detail {
int next_scratch_type_id() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

namespace {

/// Pool gauges live in the default registry. Queue depth and active-worker
/// count are written under the pool mutex the code already holds, so the
/// extra cost is two relaxed stores per task transition. busy_ns/idle_ns
/// extend the gauges into cumulative time counters: busy accrues once per
/// completed task, idle once per condition-variable wait.
struct PoolMetrics {
  obs::Gauge& queue_depth =
      obs::default_registry().gauge("util.threadpool.queue_depth");
  obs::Gauge& active =
      obs::default_registry().gauge("util.threadpool.active_workers");
  obs::Counter& submitted =
      obs::default_registry().counter("util.threadpool.tasks_submitted");
  obs::Counter& completed =
      obs::default_registry().counter("util.threadpool.tasks_completed");
  obs::Counter& busy_ns =
      obs::default_registry().counter("util.threadpool.busy_ns");
  obs::Counter& idle_ns =
      obs::default_registry().counter("util.threadpool.idle_ns");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Live-pool registry behind stats_for_all_pools(). A pool registers after
/// its members are initialized (before workers run any task) and
/// deregisters first thing in its destructor, so a registered pointer is
/// always safe to call worker_stats() on. Leaked like the metric registry:
/// pools owned by statics may destruct after ordinary globals.
struct PoolRegistry {
  std::mutex mutex;
  std::vector<const ThreadPool*> pools;
};

PoolRegistry& pool_registry() {
  static PoolRegistry* r = new PoolRegistry();
  return *r;
}

thread_local WorkerScratch* t_worker_scratch = nullptr;

}  // namespace

WorkerScratch* ThreadPool::current_scratch() { return t_worker_scratch; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  stats_.resize(threads);
  waiting_since_.resize(threads, 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  {
    auto& reg = pool_registry();
    std::lock_guard lock(reg.mutex);
    reg.pools.push_back(this);
  }
}

ThreadPool::~ThreadPool() {
  {
    auto& reg = pool_registry();
    std::lock_guard lock(reg.mutex);
    std::erase(reg.pools, this);
  }
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<std::vector<ThreadPool::WorkerStats>>
ThreadPool::stats_for_all_pools() {
  auto& reg = pool_registry();
  std::lock_guard lock(reg.mutex);
  std::vector<std::vector<WorkerStats>> out;
  out.reserve(reg.pools.size());
  // worker_stats() takes the pool's own mutex while we hold the registry
  // mutex; the reverse order never occurs (pool code does not touch the
  // registry while holding its mutex), so the ordering cannot deadlock.
  for (const ThreadPool* pool : reg.pools) out.push_back(pool->worker_stats());
  return out;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mutex_);
    GRIDSEC_ASSERT_MSG(!stop_, "submit after shutdown");
    queue_.push_back(Task{nullptr, nullptr, std::move(pt)});
    pool_metrics().queue_depth.set(static_cast<double>(queue_.size()));
    pool_metrics().submitted.add();
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::submit_raw(void (*fn)(void*), void* ctx, std::size_t count) {
  {
    std::lock_guard lock(mutex_);
    GRIDSEC_ASSERT_MSG(!stop_, "submit after shutdown");
    for (std::size_t i = 0; i < count; ++i) {
      queue_.push_back(Task{fn, ctx, {}});
    }
    pool_metrics().queue_depth.set(static_cast<double>(queue_.size()));
    pool_metrics().submitted.add(static_cast<double>(count));
  }
  cv_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::lock_guard lock(mutex_);
  std::vector<WorkerStats> out = stats_;
  // Workers parked on the queue right now have an open wait that has not
  // been flushed into stats_ yet; add it so callers see live idle time.
  const std::uint64_t now = mono_ns();
  for (std::size_t w = 0; w < out.size(); ++w) {
    if (waiting_since_[w] != 0 && now > waiting_since_[w]) {
      out[w].idle_ns += static_cast<std::int64_t>(now - waiting_since_[w]);
    }
  }
  return out;
}

void ThreadPool::worker_loop(std::size_t worker) {
  // The worker's scratch (arena + typed slots, e.g. its solver workspace)
  // lives on this stack frame: born before the first task, destroyed only
  // when the pool joins, reused by every task in between.
  WorkerScratch scratch;
  t_worker_scratch = &scratch;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      const std::uint64_t wait_start = mono_ns();
      waiting_since_[worker] = wait_start;
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      waiting_since_[worker] = 0;
      const auto idle = static_cast<std::int64_t>(mono_ns() - wait_start);
      stats_[worker].idle_ns += idle;
      pool_metrics().idle_ns.add(idle);
      if (stop_ && queue_.empty()) {
        t_worker_scratch = nullptr;
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      pool_metrics().queue_depth.set(static_cast<double>(queue_.size()));
      pool_metrics().active.set(static_cast<double>(active_));
    }
    const std::uint64_t busy_start = mono_ns();
    // Raw tasks own their error signalling; packaged tasks capture
    // exceptions in their future.
    task.run();
    const auto busy = static_cast<std::int64_t>(mono_ns() - busy_start);
    // Fold this worker's allocation counts into the process totals at the
    // task boundary — the hooks themselves only touch thread_locals.
    obs::prof_detail::flush_thread_allocs();
    {
      std::lock_guard lock(mutex_);
      stats_[worker].busy_ns += busy;
      stats_[worker].tasks += 1;
      pool_metrics().busy_ns.add(busy);
      --active_;
      pool_metrics().active.set(static_cast<double>(active_));
      pool_metrics().completed.add();
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

/// parallel_for's whole control block lives on the caller's stack; workers
/// only touch it through the ctx pointer, and the caller blocks on done_cv
/// until every enqueued task has decremented `pending`, so the block always
/// outlives its last reader.
struct ParallelForCtl {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;  // tasks not yet finished, under mutex
  std::exception_ptr first_error;
};

void parallel_for_task(void* p) {
  auto* ctl = static_cast<ParallelForCtl*>(p);
  for (;;) {
    // Once any worker threw, stop claiming items: the caller is about to
    // rethrow and there is no point burning through the rest.
    if (ctl->failed.load(std::memory_order_relaxed)) break;
    const std::size_t i = ctl->cursor.fetch_add(1);
    if (i >= ctl->n) break;
    try {
      (*ctl->fn)(i);
    } catch (...) {
      ctl->failed.store(true, std::memory_order_relaxed);
      std::lock_guard lock(ctl->mutex);
      if (!ctl->first_error) ctl->first_error = std::current_exception();
    }
  }
  // Signal under the mutex so the caller cannot observe pending == 0 and
  // destroy the control block while this thread still holds a reference.
  std::lock_guard lock(ctl->mutex);
  if (--ctl->pending == 0) ctl->done_cv.notify_all();
}

}  // namespace

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Item claiming uses an atomic cursor so load stays balanced when item
  // costs vary (MILPs do). The control block — cursor, failure latch,
  // completion latch — is a single stack object shared by every worker via
  // the raw-task ctx pointer: no shared_ptr, no futures, no per-dispatch
  // heap traffic.
  ParallelForCtl ctl;
  ctl.fn = &fn;
  ctl.n = n;
  const std::size_t workers = std::min(pool->size(), n);
  ctl.pending = workers;
  pool->submit_raw(&parallel_for_task, &ctl, workers);
  std::unique_lock lock(ctl.mutex);
  ctl.done_cv.wait(lock, [&ctl] { return ctl.pending == 0; });
  // Every worker has finished fn before pending hits zero, so propagating
  // the first exception (and letting fn/ctl die) is safe here.
  if (ctl.first_error) std::rethrow_exception(ctl.first_error);
}

}  // namespace gridsec
