#include "gridsec/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "gridsec/util/error.hpp"

namespace gridsec {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GRIDSEC_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GRIDSEC_ASSERT_MSG(cells.size() == headers_.size(),
                     "row width != header width");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(format_double(v, precision));
  add_row(std::move(out));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

std::string Table::to_csv() const {
  std::ostringstream ss;
  print_csv(ss);
  return ss.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace gridsec
