#include "gridsec/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "gridsec/util/error.hpp"

namespace gridsec {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  GRIDSEC_ASSERT(!xs.empty());
  GRIDSEC_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys) {
  GRIDSEC_ASSERT(xs.size() == ys.size());
  const std::vector<double> rx = ranks(xs);
  const std::vector<double> ry = ranks(ys);
  return correlation(rx, ry);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  GRIDSEC_ASSERT(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace gridsec
