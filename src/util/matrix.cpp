#include "gridsec/util/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace gridsec {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    GRIDSEC_ASSERT_MSG(r.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::swap_rows(std::size_t a, std::size_t b) {
  GRIDSEC_ASSERT(a < rows_ && b < rows_);
  if (a == b) return;
  std::swap_ranges(data_.begin() + static_cast<std::ptrdiff_t>(a * cols_),
                   data_.begin() + static_cast<std::ptrdiff_t>((a + 1) * cols_),
                   data_.begin() + static_cast<std::ptrdiff_t>(b * cols_));
}

void Matrix::add_scaled_row(std::size_t dst, std::size_t src, double factor) {
  GRIDSEC_ASSERT(dst < rows_ && src < rows_);
  double* d = data_.data() + dst * cols_;
  const double* s = data_.data() + src * cols_;
  for (std::size_t c = 0; c < cols_; ++c) d[c] += factor * s[c];
}

void Matrix::scale_row(std::size_t r, double factor) {
  GRIDSEC_ASSERT(r < rows_);
  double* d = data_.data() + r * cols_;
  for (std::size_t c = 0; c < cols_; ++c) d[c] *= factor;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  GRIDSEC_ASSERT(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> x) const {
  GRIDSEC_ASSERT(cols_ == x.size());
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), x);
  return out;
}

StatusOr<std::vector<double>> solve_linear_system(Matrix a,
                                                  std::vector<double> b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::invalid_argument("solve_linear_system: shape mismatch");
  }
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::internal("solve_linear_system: singular matrix");
    }
    a.swap_rows(col, pivot);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = -a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      a.add_scaled_row(r, col, factor);
      a(r, col) = 0.0;  // exact zero below the pivot
      b[r] += factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a(i, j) * x[j];
    x[i] = sum / a(i, i);
  }
  return x;
}

double dot(std::span<const double> a, std::span<const double> b) {
  GRIDSEC_ASSERT(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace gridsec
