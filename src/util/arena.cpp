#include "gridsec/util/arena.hpp"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "gridsec/util/error.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRIDSEC_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GRIDSEC_ASAN 1
#endif

#ifdef GRIDSEC_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace gridsec::util {
namespace {

constexpr std::size_t kMinBlockBytes = 4096;
constexpr unsigned char kPoisonByte = 0xA5;

/// Poison-mode allocations are rounded to 8-byte granules so the ASan
/// shadow poisoning below never splits a granule between two live
/// allocations.
constexpr std::size_t kPoisonGranule = 8;

void poison_region([[maybe_unused]] void* p, [[maybe_unused]] std::size_t n) {
#ifdef GRIDSEC_ASAN
  __asan_poison_memory_region(p, n);
#endif
}

void unpoison_region([[maybe_unused]] void* p,
                     [[maybe_unused]] std::size_t n) {
#ifdef GRIDSEC_ASAN
  __asan_unpoison_memory_region(p, n);
#endif
}

}  // namespace

bool Arena::poison_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("GRIDSEC_ARENA_POISON");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return enabled;
}

Arena::Arena(std::size_t initial_capacity) {
  if (initial_capacity > 0) grow(initial_capacity);
}

Arena::~Arena() { free_chain(); }

void Arena::grow(std::size_t min_bytes) {
  // Geometric growth bounds the chain length; reset() collapses it to one
  // block anyway, so mid-cycle fragmentation is transient.
  std::size_t size = kMinBlockBytes;
  if (head_ != nullptr && head_->size > size) size = head_->size * 2;
  if (size < min_bytes) size = min_bytes;
  auto* block =
      static_cast<Block*>(::operator new(sizeof(Block) + size));
  block->prev = head_;
  block->size = size;
  head_ = block;
  cursor_ = 0;
  stats_.capacity += size;
  ++stats_.blocks;
  ++stats_.block_allocations;
  if (poison_enabled()) {
    std::memset(block->data(), kPoisonByte, size);
    poison_region(block->data(), size);
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  GRIDSEC_ASSERT(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  if (poison_enabled()) {
    if (align < kPoisonGranule) align = kPoisonGranule;
    bytes = (bytes + kPoisonGranule - 1) & ~(kPoisonGranule - 1);
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (head_ != nullptr) {
      // Align the absolute address, not just the offset: a fresh block's
      // payload is only guaranteed operator new's alignment.
      const auto base = reinterpret_cast<std::uintptr_t>(head_->data());
      const std::uintptr_t aligned =
          (base + cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
      const std::size_t offset = aligned - base;
      if (offset + bytes <= head_->size) {
        std::byte* p = head_->data() + offset;
        used_total_ += (offset - cursor_) + bytes;
        cursor_ = offset + bytes;
        stats_.used = used_total_;
        if (used_total_ > stats_.high_water) stats_.high_water = used_total_;
        if (poison_enabled()) unpoison_region(p, bytes);
        return p;
      }
    }
    grow(bytes + align);  // guarantees the retry fits
  }
  GRIDSEC_ASSERT_MSG(false, "arena grow failed to satisfy allocation");
  return nullptr;
}

void Arena::reset() {
  ++stats_.resets;
  const std::size_t target = stats_.high_water;
  if (head_ != nullptr && head_->prev == nullptr && head_->size >= target) {
    // Common steady state: one block, big enough. Just rewind.
    if (poison_enabled() && cursor_ > 0) {
      unpoison_region(head_->data(), cursor_);
      std::memset(head_->data(), kPoisonByte, cursor_);
      poison_region(head_->data(), cursor_);
    }
    cursor_ = 0;
    used_total_ = 0;
    stats_.used = 0;
    return;
  }
  // Consolidate: free the chain and reserve one block covering the
  // high-water mark, so the next cycle is contiguous and heap-free.
  free_chain();
  stats_.capacity = 0;
  stats_.blocks = 0;
  cursor_ = 0;
  used_total_ = 0;
  stats_.used = 0;
  if (target > 0) grow(target);
}

void Arena::release() {
  free_chain();
  stats_.capacity = 0;
  stats_.blocks = 0;
  cursor_ = 0;
  used_total_ = 0;
  stats_.used = 0;
}

void Arena::free_chain() {
  Block* b = head_;
  while (b != nullptr) {
    Block* prev = b->prev;
    if (poison_enabled()) unpoison_region(b->data(), b->size);
    ::operator delete(b);
    b = prev;
  }
  head_ = nullptr;
}

Arena::Stats Arena::stats() const { return stats_; }

}  // namespace gridsec::util
