#include "gridsec/core/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/deadline.hpp"

namespace gridsec::core {
namespace {

constexpr double kActiveTol = 1e-9;

double cost_of(const AdversaryConfig& cfg, int target) {
  if (cfg.attack_cost.empty()) return 0.0;
  return cfg.attack_cost[static_cast<std::size_t>(target)];
}

double ps_of(const AdversaryConfig& cfg, int target) {
  if (cfg.success_prob.empty()) return 1.0;
  return cfg.success_prob[static_cast<std::size_t>(target)];
}

void validate_config(const AdversaryConfig& cfg, int n_targets) {
  GRIDSEC_ASSERT(cfg.attack_cost.empty() ||
                 cfg.attack_cost.size() == static_cast<std::size_t>(n_targets));
  GRIDSEC_ASSERT(cfg.success_prob.empty() ||
                 cfg.success_prob.size() ==
                     static_cast<std::size_t>(n_targets));
}

}  // namespace

bool AttackPlan::attacks(int target) const {
  return std::find(targets.begin(), targets.end(), target) != targets.end();
}

double StrategicAdversary::evaluate_target_set(
    const cps::ImpactMatrix& im, const std::vector<int>& targets,
    std::vector<int>* best_actors) const {
  double value = 0.0;
  for (int t : targets) value -= cost_of(config_, t);
  if (best_actors != nullptr) best_actors->clear();
  for (int a = 0; a < im.num_actors(); ++a) {
    double swing = 0.0;
    for (int t : targets) swing += im.at(a, t) * ps_of(config_, t);
    if (swing > kActiveTol) {
      value += swing;
      if (best_actors != nullptr) best_actors->push_back(a);
    }
  }
  return value;
}

AttackPlan StrategicAdversary::plan(const cps::ImpactMatrix& im) const {
  GRIDSEC_TRACE_SPAN("core.adversary.plan");
  auto& reg = obs::default_registry();
  static obs::Counter& c_plans = reg.counter("core.adversary.plans");
  static obs::Counter& c_nodes = reg.counter("core.adversary.search_nodes");
  c_plans.add();
  validate_config(config_, im.num_targets());
  const int nt = im.num_targets();
  const int na = im.num_actors();

  // Candidate targets ordered by standalone worth w_i (see header); targets
  // with w_i <= 0 can never improve any plan and are dropped.
  struct Candidate {
    int target;
    double worth;  // w_i
    double cost;
  };
  std::vector<Candidate> cands;
  for (int i = 0; i < nt; ++i) {
    double pos = 0.0;
    for (int j = 0; j < na; ++j) {
      const double v = im.at(j, i) * ps_of(config_, i);
      if (v > 0.0) pos += v;
    }
    const double w = pos - cost_of(config_, i);
    if (w > kActiveTol && cost_of(config_, i) <= config_.budget) {
      cands.push_back({i, w, cost_of(config_, i)});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.worth > b.worth;
            });
  // Suffix table: bound_add[k][m] = sum of the m largest worths among
  // cands[k..]; since cands are sorted by worth, that is just the next m.
  const int max_pick =
      config_.max_targets >= 0
          ? std::min<int>(config_.max_targets, static_cast<int>(cands.size()))
          : static_cast<int>(cands.size());

  AttackPlan best;
  best.status = lp::SolveStatus::kOptimal;
  best.anticipated_return = 0.0;  // the empty attack is always available

  std::vector<double> swing(static_cast<std::size_t>(na), 0.0);
  std::vector<int> current;
  long nodes = 0;
  bool exhausted = false;
  bool timed_out = false;
  // Checked every 1024 nodes: a steady_clock read per node would dominate
  // the (very cheap) bound arithmetic on big searches.
  const Deadline deadline = Deadline::in_ms(config_.time_limit_ms);

  const auto value_of_swings = [&](double spent) {
    double v = -spent;
    for (double s : swing) v += std::max(0.0, s);
    return v;
  };

  const auto dfs = [&](auto&& self, std::size_t idx, double spent) -> void {
    if (exhausted) return;
    if (++nodes > config_.max_nodes) {
      exhausted = true;
      return;
    }
    if ((nodes & 1023) == 0 && deadline.expired()) {
      exhausted = true;
      timed_out = true;
      return;
    }
    const double value = value_of_swings(spent);
    if (value > best.anticipated_return + kActiveTol) {
      best.targets = current;
      best.anticipated_return = value;
    }
    if (static_cast<int>(current.size()) >= max_pick) return;
    // Subadditivity bound: the best any completion can add is the sum of
    // the top remaining worths that still fit the cardinality cap.
    const int slots = max_pick - static_cast<int>(current.size());
    double bound = value;
    int taken = 0;
    for (std::size_t k = idx; k < cands.size() && taken < slots; ++k) {
      bound += cands[k].worth;
      ++taken;
    }
    if (bound <= best.anticipated_return + kActiveTol) return;
    for (std::size_t k = idx; k < cands.size(); ++k) {
      const Candidate& c = cands[k];
      if (spent + c.cost > config_.budget + kActiveTol) continue;
      current.push_back(c.target);
      for (int j = 0; j < na; ++j) {
        swing[static_cast<std::size_t>(j)] +=
            im.at(j, c.target) * ps_of(config_, c.target);
      }
      self(self, k + 1, spent + c.cost);
      for (int j = 0; j < na; ++j) {
        swing[static_cast<std::size_t>(j)] -=
            im.at(j, c.target) * ps_of(config_, c.target);
      }
      current.pop_back();
      if (exhausted) return;
      // After declining the best remaining candidate, re-check the bound
      // for the weaker tail.
      const int slots_left = max_pick - static_cast<int>(current.size());
      double tail_bound = value;
      int t2 = 0;
      for (std::size_t k2 = k + 1; k2 < cands.size() && t2 < slots_left;
           ++k2) {
        tail_bound += cands[k2].worth;
        ++t2;
      }
      if (tail_bound <= best.anticipated_return + kActiveTol) break;
    }
  };
  dfs(dfs, 0, 0.0);
  c_nodes.add(nodes);

  if (exhausted) {
    // Keep whichever is better: the incumbent or the greedy plan.
    AttackPlan greedy = plan_greedy(im);
    if (greedy.anticipated_return > best.anticipated_return) {
      best = std::move(greedy);
    }
    best.status = timed_out ? lp::SolveStatus::kTimeLimit
                            : lp::SolveStatus::kIterationLimit;
    best.anticipated_return =
        evaluate_target_set(im, best.targets, &best.actors);
    GRIDSEC_LOG(kWarn, "core.adversary")
        .field("status", lp::to_string(best.status))
        .field("nodes", nodes)
        .field("targets", best.targets.size())
        .field("return", best.anticipated_return)
        .message("target search budget exhausted; best incumbent kept");
    return best;
  }
  best.anticipated_return =
      evaluate_target_set(im, best.targets, &best.actors);
  GRIDSEC_LOG(kDebug, "core.adversary")
      .field("nodes", nodes)
      .field("targets", best.targets.size())
      .field("return", best.anticipated_return);
  return best;
}

AttackPlan StrategicAdversary::plan_milp(const cps::ImpactMatrix& im) const {
  GRIDSEC_TRACE_SPAN("core.adversary.plan_milp");
  validate_config(config_, im.num_targets());
  const int nt = im.num_targets();
  const int na = im.num_actors();

  lp::Problem p(lp::Objective::kMaximize);
  // T(i): attack target i (Eq 9). Objective carries -Catk(i).
  std::vector<int> tvar(static_cast<std::size_t>(nt));
  for (int i = 0; i < nt; ++i) {
    tvar[static_cast<std::size_t>(i)] =
        p.add_binary("T" + std::to_string(i), -cost_of(config_, i));
  }
  // A(j) as a continuous gate in [0,1] (integrality is implied; see header)
  // and u_j = the SA's take from actor j's swing.
  std::vector<int> avar(static_cast<std::size_t>(na));
  std::vector<int> uvar(static_cast<std::size_t>(na));
  for (int j = 0; j < na; ++j) {
    double b_pos = 0.0;  // B_j: best possible positive swing
    double b_neg = 0.0;  // M_j: worst possible negative swing (magnitude)
    for (int i = 0; i < nt; ++i) {
      const double c = im.at(j, i) * ps_of(config_, i);
      if (c > 0.0) b_pos += c;
      if (c < 0.0) b_neg += -c;
    }
    avar[static_cast<std::size_t>(j)] =
        p.add_binary("A" + std::to_string(j), 0.0);
    uvar[static_cast<std::size_t>(j)] =
        p.add_variable("u" + std::to_string(j), 0.0, std::max(b_pos, 0.0),
                       1.0);
    // u_j <= B_j * A_j.
    p.add_constraint("gate" + std::to_string(j),
                     lp::LinearExpr()
                         .add(uvar[static_cast<std::size_t>(j)], 1.0)
                         .add(avar[static_cast<std::size_t>(j)], -b_pos),
                     lp::Sense::kLessEqual, 0.0);
    // u_j <= sum_i c_ij T_i + M_j (1 - A_j).
    lp::LinearExpr swing;
    swing.add(uvar[static_cast<std::size_t>(j)], 1.0);
    for (int i = 0; i < nt; ++i) {
      const double c = im.at(j, i) * ps_of(config_, i);
      if (c != 0.0) swing.add(tvar[static_cast<std::size_t>(i)], -c);
    }
    swing.add(avar[static_cast<std::size_t>(j)], b_neg);
    p.add_constraint("take" + std::to_string(j), std::move(swing),
                     lp::Sense::kLessEqual, b_neg);
  }
  // Budget (Eq 11).
  if (std::isfinite(config_.budget) && !config_.attack_cost.empty()) {
    lp::LinearExpr budget;
    for (int i = 0; i < nt; ++i) {
      budget.add(tvar[static_cast<std::size_t>(i)], cost_of(config_, i));
    }
    p.add_constraint("budget", std::move(budget), lp::Sense::kLessEqual,
                     config_.budget);
  }
  // Optional cardinality cap (the experiments' "maximum of six targets").
  if (config_.max_targets >= 0) {
    lp::LinearExpr card;
    for (int i = 0; i < nt; ++i) {
      card.add(tvar[static_cast<std::size_t>(i)], 1.0);
    }
    p.add_constraint("cardinality", std::move(card), lp::Sense::kLessEqual,
                     static_cast<double>(config_.max_targets));
  }

  lp::BranchAndBoundOptions bnb;
  bnb.time_limit_ms = config_.time_limit_ms;
  lp::Solution sol = lp::BranchAndBoundSolver(bnb).solve(p);
  AttackPlan out;
  out.status = sol.status;
  // A budget-limited solve still carries a feasible incumbent target set;
  // extract it (status stays non-optimal so callers know it is unproven).
  if (!sol.optimal() &&
      !(lp::is_budget_limited(sol.status) && !sol.x.empty())) {
    return out;
  }

  for (int i = 0; i < nt; ++i) {
    if (sol.x[static_cast<std::size_t>(tvar[static_cast<std::size_t>(i)])] >
        0.5) {
      out.targets.push_back(i);
    }
  }
  // Recover A and the exact objective from the chosen target set (cleans up
  // any LP-level ambiguity in the gates).
  out.anticipated_return = evaluate_target_set(im, out.targets, &out.actors);
  return out;
}

AttackPlan StrategicAdversary::plan_enumerate(
    const cps::ImpactMatrix& im) const {
  validate_config(config_, im.num_targets());
  const int nt = im.num_targets();
  // Prune targets that help no actor: they can only cost money.
  std::vector<int> candidates;
  for (int i = 0; i < nt; ++i) {
    for (int a = 0; a < im.num_actors(); ++a) {
      if (im.at(a, i) > kActiveTol) {
        candidates.push_back(i);
        break;
      }
    }
  }

  AttackPlan best;
  best.status = lp::SolveStatus::kOptimal;
  best.anticipated_return = 0.0;  // the empty attack is always available

  std::vector<int> current;
  const auto recurse = [&](auto&& self, std::size_t index,
                           double spent) -> void {
    if (config_.max_targets >= 0 &&
        static_cast<int>(current.size()) > config_.max_targets) {
      return;
    }
    std::vector<int> actors;
    const double value = evaluate_target_set(im, current, &actors);
    if (value > best.anticipated_return + kActiveTol) {
      best.targets = current;
      best.actors = std::move(actors);
      best.anticipated_return = value;
    }
    if (index >= candidates.size()) return;
    if (config_.max_targets >= 0 &&
        static_cast<int>(current.size()) == config_.max_targets) {
      return;
    }
    for (std::size_t k = index; k < candidates.size(); ++k) {
      const int t = candidates[k];
      const double c = cost_of(config_, t);
      if (spent + c > config_.budget + kActiveTol) continue;
      current.push_back(t);
      self(self, k + 1, spent + c);
      current.pop_back();
    }
  };
  recurse(recurse, 0, 0.0);
  return best;
}

AttackPlan StrategicAdversary::plan_greedy(const cps::ImpactMatrix& im) const {
  validate_config(config_, im.num_targets());
  const int nt = im.num_targets();
  AttackPlan out;
  out.status = lp::SolveStatus::kOptimal;
  std::vector<bool> chosen(static_cast<std::size_t>(nt), false);
  std::vector<int> current;
  double spent = 0.0;
  double value = 0.0;
  for (;;) {
    if (config_.max_targets >= 0 &&
        static_cast<int>(current.size()) >= config_.max_targets) {
      break;
    }
    int best_t = -1;
    double best_value = value + kActiveTol;
    for (int t = 0; t < nt; ++t) {
      if (chosen[static_cast<std::size_t>(t)]) continue;
      if (spent + cost_of(config_, t) > config_.budget + kActiveTol) continue;
      current.push_back(t);
      const double v = evaluate_target_set(im, current, nullptr);
      current.pop_back();
      if (v > best_value) {
        best_value = v;
        best_t = t;
      }
    }
    if (best_t < 0) break;
    chosen[static_cast<std::size_t>(best_t)] = true;
    current.push_back(best_t);
    spent += cost_of(config_, best_t);
    value = best_value;
  }
  out.targets = std::move(current);
  out.anticipated_return = evaluate_target_set(im, out.targets, &out.actors);
  return out;
}

AttackPlan random_attack_plan(const cps::ImpactMatrix& im,
                              const AdversaryConfig& config, Rng& rng) {
  const int nt = im.num_targets();
  const int k = config.max_targets >= 0 ? std::min(config.max_targets, nt)
                                        : nt;
  std::vector<int> order(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) order[static_cast<std::size_t>(t)] = t;
  rng.shuffle(order);

  AttackPlan out;
  out.status = lp::SolveStatus::kOptimal;
  double spent = 0.0;
  for (int t : order) {
    if (static_cast<int>(out.targets.size()) >= k) break;
    const double c = config.attack_cost.empty()
                         ? 0.0
                         : config.attack_cost[static_cast<std::size_t>(t)];
    if (spent + c > config.budget + kActiveTol) continue;
    out.targets.push_back(t);
    spent += c;
  }
  std::sort(out.targets.begin(), out.targets.end());
  // Positions are still chosen rationally for the random target set.
  out.anticipated_return = -spent;
  for (int a = 0; a < im.num_actors(); ++a) {
    double swing = 0.0;
    for (int t : out.targets) {
      const double ps = config.success_prob.empty()
                            ? 1.0
                            : config.success_prob[static_cast<std::size_t>(t)];
      swing += im.at(a, t) * ps;
    }
    if (swing > kActiveTol) {
      out.anticipated_return += swing;
      out.actors.push_back(a);
    }
  }
  return out;
}

double realized_return(const cps::ImpactMatrix& truth, const AttackPlan& plan,
                       const AdversaryConfig& config) {
  double value = 0.0;
  for (int t : plan.targets) {
    value -= config.attack_cost.empty()
                 ? 0.0
                 : config.attack_cost[static_cast<std::size_t>(t)];
    const double ps = config.success_prob.empty()
                          ? 1.0
                          : config.success_prob[static_cast<std::size_t>(t)];
    for (int a : plan.actors) {
      value += truth.at(a, t) * ps;
    }
  }
  return value;
}

StatusOr<double> realized_return_joint(const flow::Network& truth_net,
                                       const cps::Ownership& ownership,
                                       const AttackPlan& plan,
                                       const AdversaryConfig& config,
                                       const cps::ImpactOptions& options) {
  flow::AllocationOptions alloc = options.allocation;
  alloc.warm_start = options.warm_start;
  // Base and attacked models share one topology (attacks only change edge
  // data), so both welfare solves share one model: built at the base
  // solve, refreshed in place for the attacked re-solve.
  flow::SocialWelfareModel welfare_model;
  if (alloc.model == nullptr) alloc.model = &welfare_model;
  flow::AllocationResult base = flow::allocate_profits(
      truth_net, ownership.owners(), ownership.num_actors(), alloc);
  if (!base.optimal()) {
    return Status::infeasible("realized_return_joint: base not solvable");
  }
  // The attacked model differs from the base only in the struck edges.
  alloc.warm_start = base.basis;
  flow::Network hit = truth_net;
  double cost = 0.0;
  for (int t : plan.targets) {
    cps::apply_attack(hit, {t, options.attack_type, options.attack_magnitude});
    cost += config.attack_cost.empty()
                ? 0.0
                : config.attack_cost[static_cast<std::size_t>(t)];
  }
  flow::AllocationResult after = flow::allocate_profits(
      hit, ownership.owners(), ownership.num_actors(), alloc);
  if (!after.optimal()) {
    return Status::infeasible("realized_return_joint: attacked not solvable");
  }
  double value = -cost;
  for (int a : plan.actors) {
    value += after.actor_profit[static_cast<std::size_t>(a)] -
             base.actor_profit[static_cast<std::size_t>(a)];
  }
  return value;
}

}  // namespace gridsec::core
