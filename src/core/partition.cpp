#include "gridsec/core/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gridsec::core {
namespace {

/// Union-find over (targets, actors) packed as [0,nt) and [nt, nt+na).
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    parent_[static_cast<std::size_t>(find(a))] = find(b);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<int> ImpactPartition::targets_in(int component) const {
  std::vector<int> out;
  for (std::size_t t = 0; t < component_of_target.size(); ++t) {
    if (component_of_target[t] == component) {
      out.push_back(static_cast<int>(t));
    }
  }
  return out;
}

std::vector<int> ImpactPartition::actors_in(int component) const {
  std::vector<int> out;
  for (std::size_t a = 0; a < component_of_actor.size(); ++a) {
    if (component_of_actor[a] == component) {
      out.push_back(static_cast<int>(a));
    }
  }
  return out;
}

ImpactPartition partition_impact(const cps::ImpactMatrix& im, double tol) {
  const int nt = im.num_targets();
  const int na = im.num_actors();
  UnionFind uf(nt + na);
  std::vector<bool> target_active(static_cast<std::size_t>(nt), false);
  std::vector<bool> actor_active(static_cast<std::size_t>(na), false);
  for (int t = 0; t < nt; ++t) {
    for (int a = 0; a < na; ++a) {
      if (std::fabs(im.at(a, t)) > tol) {
        uf.unite(t, nt + a);
        target_active[static_cast<std::size_t>(t)] = true;
        actor_active[static_cast<std::size_t>(a)] = true;
      }
    }
  }
  ImpactPartition out;
  out.component_of_target.assign(static_cast<std::size_t>(nt), -1);
  out.component_of_actor.assign(static_cast<std::size_t>(na), -1);
  std::vector<int> root_to_component;
  const auto component_id = [&](int root) {
    for (std::size_t i = 0; i < root_to_component.size(); ++i) {
      if (root_to_component[i] == root) return static_cast<int>(i);
    }
    root_to_component.push_back(root);
    return static_cast<int>(root_to_component.size() - 1);
  };
  for (int t = 0; t < nt; ++t) {
    if (target_active[static_cast<std::size_t>(t)]) {
      out.component_of_target[static_cast<std::size_t>(t)] =
          component_id(uf.find(t));
    }
  }
  for (int a = 0; a < na; ++a) {
    if (actor_active[static_cast<std::size_t>(a)]) {
      out.component_of_actor[static_cast<std::size_t>(a)] =
          component_id(uf.find(nt + a));
    }
  }
  out.num_components = static_cast<int>(root_to_component.size());
  return out;
}

AttackPlan plan_partitioned(const cps::ImpactMatrix& im,
                            const AdversaryConfig& config) {
  GRIDSEC_ASSERT_MSG(config.max_targets >= 0,
                     "plan_partitioned needs a cardinality cap");
  // Exactness relies on per-target costs being uniform (the budget then
  // collapses into the cardinality cap).
  double uniform_cost = 0.0;
  if (!config.attack_cost.empty()) {
    uniform_cost = config.attack_cost.front();
    for (double c : config.attack_cost) {
      GRIDSEC_ASSERT_MSG(std::fabs(c - uniform_cost) < 1e-12,
                         "plan_partitioned requires uniform attack costs");
    }
  }
  int cap = config.max_targets;
  if (uniform_cost > 0.0 && std::isfinite(config.budget)) {
    cap = std::min(cap, static_cast<int>(config.budget / uniform_cost));
  }

  const ImpactPartition parts = partition_impact(im);
  // Per component: best value achievable with exactly <= k targets.
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(parts.num_components));
  std::vector<std::vector<std::vector<int>>> best_targets(
      static_cast<std::size_t>(parts.num_components));

  for (int c = 0; c < parts.num_components; ++c) {
    const std::vector<int> targets = parts.targets_in(c);
    const std::vector<int> actors = parts.actors_in(c);
    // Build the component's sub-matrix and sub-config.
    cps::ImpactMatrix sub(static_cast<int>(actors.size()),
                          static_cast<int>(targets.size()));
    for (std::size_t a = 0; a < actors.size(); ++a) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        sub.set(static_cast<int>(a), static_cast<int>(t),
                im.at(actors[a], targets[t]));
      }
    }
    AdversaryConfig sub_cfg;
    sub_cfg.budget = lp::kInfinity;
    sub_cfg.max_nodes = config.max_nodes;
    if (!config.attack_cost.empty()) {
      sub_cfg.attack_cost.resize(targets.size());
      for (std::size_t t = 0; t < targets.size(); ++t) {
        sub_cfg.attack_cost[t] =
            config.attack_cost[static_cast<std::size_t>(targets[t])];
      }
    }
    if (!config.success_prob.empty()) {
      sub_cfg.success_prob.resize(targets.size());
      for (std::size_t t = 0; t < targets.size(); ++t) {
        sub_cfg.success_prob[t] =
            config.success_prob[static_cast<std::size_t>(targets[t])];
      }
    }
    const int local_cap =
        std::min<int>(cap, static_cast<int>(targets.size()));
    auto& vals = best[static_cast<std::size_t>(c)];
    auto& tsets = best_targets[static_cast<std::size_t>(c)];
    vals.resize(static_cast<std::size_t>(local_cap) + 1, 0.0);
    tsets.resize(static_cast<std::size_t>(local_cap) + 1);
    for (int k = 1; k <= local_cap; ++k) {
      sub_cfg.max_targets = k;
      StrategicAdversary sa(sub_cfg);
      AttackPlan sub_plan = sa.plan(sub);
      vals[static_cast<std::size_t>(k)] = sub_plan.anticipated_return;
      auto& ts = tsets[static_cast<std::size_t>(k)];
      for (int t : sub_plan.targets) {
        ts.push_back(targets[static_cast<std::size_t>(t)]);
      }
    }
  }

  // DP over components on the shared cardinality cap.
  // dp[k] = best total with k targets used; choice[c][k] = k used in c.
  std::vector<double> dp(static_cast<std::size_t>(cap) + 1, 0.0);
  std::vector<std::vector<int>> choice(
      static_cast<std::size_t>(parts.num_components),
      std::vector<int>(static_cast<std::size_t>(cap) + 1, 0));
  for (int c = 0; c < parts.num_components; ++c) {
    std::vector<double> next = dp;
    const auto& vals = best[static_cast<std::size_t>(c)];
    for (int k = 0; k <= cap; ++k) {
      for (int use = 1;
           use < static_cast<int>(vals.size()) && use <= k; ++use) {
        const double cand =
            dp[static_cast<std::size_t>(k - use)] +
            vals[static_cast<std::size_t>(use)];
        if (cand > next[static_cast<std::size_t>(k)]) {
          next[static_cast<std::size_t>(k)] = cand;
          choice[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] =
              use;
        }
      }
      // Carry forward the per-k choice even when zero is best (default 0).
    }
    dp = std::move(next);
  }

  // dp is monotone in k (using fewer targets is always allowed); take cap.
  AttackPlan out;
  out.status = lp::SolveStatus::kOptimal;
  int k = cap;
  // Identify the best k (dp should be monotone, but guard numerically).
  for (int kk = 0; kk <= cap; ++kk) {
    if (dp[static_cast<std::size_t>(kk)] >
        dp[static_cast<std::size_t>(k)] + 1e-12) {
      k = kk;
    }
  }
  for (int c = parts.num_components - 1; c >= 0; --c) {
    const int use =
        choice[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
    if (use > 0) {
      const auto& ts =
          best_targets[static_cast<std::size_t>(c)][static_cast<std::size_t>(
              use)];
      out.targets.insert(out.targets.end(), ts.begin(), ts.end());
      k -= use;
    }
  }
  std::sort(out.targets.begin(), out.targets.end());

  // Recover actors and the exact combined value from the full matrix.
  out.anticipated_return = 0.0;
  for (int t : out.targets) {
    out.anticipated_return -=
        config.attack_cost.empty()
            ? 0.0
            : config.attack_cost[static_cast<std::size_t>(t)];
  }
  for (int a = 0; a < im.num_actors(); ++a) {
    double swing = 0.0;
    for (int t : out.targets) {
      const double ps =
          config.success_prob.empty()
              ? 1.0
              : config.success_prob[static_cast<std::size_t>(t)];
      swing += im.at(a, t) * ps;
    }
    if (swing > 1e-9) {
      out.anticipated_return += swing;
      out.actors.push_back(a);
    }
  }
  return out;
}

}  // namespace gridsec::core
