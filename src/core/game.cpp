#include "gridsec/core/game.hpp"

#include <algorithm>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"

namespace gridsec::core {

double GameOutcome::total_loss_undefended() const {
  double loss = 0.0;
  for (double v : actor_impact_undefended) loss += std::min(v, 0.0);
  return loss;
}

double GameOutcome::total_loss_defended() const {
  double loss = 0.0;
  for (double v : actor_impact_defended) loss += std::min(v, 0.0);
  return loss;
}

double evaluate_attack_with_defense(const cps::ImpactMatrix& truth,
                                    const AttackPlan& plan,
                                    const AdversaryConfig& adversary,
                                    const std::vector<bool>& defended,
                                    double mitigation,
                                    std::vector<double>* actor_impact) {
  if (actor_impact != nullptr) {
    actor_impact->assign(static_cast<std::size_t>(truth.num_actors()), 0.0);
  }
  double gain = 0.0;
  for (int t : plan.targets) {
    const auto ts = static_cast<std::size_t>(t);
    gain -= adversary.attack_cost.empty() ? 0.0 : adversary.attack_cost[ts];
    const double ps =
        adversary.success_prob.empty() ? 1.0 : adversary.success_prob[ts];
    const double effect =
        (ts < defended.size() && defended[ts]) ? (1.0 - mitigation) : 1.0;
    for (int a = 0; a < truth.num_actors(); ++a) {
      const double impact = truth.at(a, t) * ps * effect;
      if (actor_impact != nullptr) {
        (*actor_impact)[static_cast<std::size_t>(a)] += impact;
      }
    }
    for (int a : plan.actors) {
      gain += truth.at(a, t) * ps * effect;
    }
  }
  return gain;
}

StatusOr<GameOutcome> play_defense_game(const flow::Network& truth,
                                        const cps::Ownership& ownership,
                                        const GameConfig& config, Rng& rng) {
  GRIDSEC_TRACE_SPAN("core.game.play");
  static obs::Counter& c_games =
      obs::default_registry().counter("core.game.plays");
  c_games.add();
  GameOutcome out;

  // One warm-start chain through the whole round: every impact matrix in a
  // game is computed over a (noisy) view of the same topology, so each
  // solve's base basis seeds the next phase's base solve — and one welfare
  // model serves every solve in the round (perturb_knowledge never changes
  // topology, so after the first build each sync is an in-place refresh).
  cps::ImpactOptions impact = config.impact;
  flow::SocialWelfareModel round_model;
  if (impact.allocation.model == nullptr) {
    impact.allocation.model = &round_model;
  }

  {  // Defender phase (steps 1-3); the span closes before the SA plans.
  GRIDSEC_TRACE_SPAN("core.game.defender_phase");
  if (!config.per_defender_views) {
    // 1. One shared noisy view and its impact matrix I'.
    flow::Network defender_view =
        cps::perturb_knowledge(truth, config.defender_noise, rng);
    auto defender_im =
        cps::compute_impact_matrix(defender_view, ownership, impact);
    if (!defender_im.is_ok()) return defender_im.status();
    impact.warm_start = defender_im->base_basis;

    // 2. Attack-probability estimate via the defender's SA model on I''.
    auto pa = estimate_attack_probabilities(
        defender_view, ownership, config.adversary,
        config.speculated_adversary_noise, config.pa_samples, rng, impact);
    if (!pa.is_ok()) return pa.status();
    out.pa = std::move(pa.value());

    // 3. Defensive investment on the defender's beliefs.
    out.defense =
        config.collaborative
            ? defend_collaborative(defender_im->matrix, ownership, out.pa,
                                   config.defender)
            : defend_individual(defender_im->matrix, ownership, out.pa,
                                config.defender);
  } else {
    // 1-2. Each defender draws its own view, beliefs, and Pa estimate.
    // Row a of the composite matrix carries actor a's own believed impacts
    // (the only row the defense optimizations read for actor a).
    cps::ImpactMatrix composite(ownership.num_actors(), truth.num_edges());
    std::vector<std::vector<double>> pa_rows;
    pa_rows.reserve(static_cast<std::size_t>(ownership.num_actors()));
    for (int a = 0; a < ownership.num_actors(); ++a) {
      flow::Network view =
          cps::perturb_knowledge(truth, config.defender_noise, rng);
      auto im_a = cps::compute_impact_matrix(view, ownership, impact);
      if (!im_a.is_ok()) return im_a.status();
      impact.warm_start = im_a->base_basis;
      for (int t = 0; t < truth.num_edges(); ++t) {
        composite.set(a, t, im_a->matrix.at(a, t));
      }
      auto pa_a = estimate_attack_probabilities(
          view, ownership, config.adversary,
          config.speculated_adversary_noise, config.pa_samples, rng, impact);
      if (!pa_a.is_ok()) return pa_a.status();
      pa_rows.push_back(std::move(pa_a.value()));
    }
    // Report the mean belief as the headline Pa.
    out.pa.assign(static_cast<std::size_t>(truth.num_edges()), 0.0);
    for (const auto& row : pa_rows) {
      for (std::size_t t = 0; t < row.size(); ++t) out.pa[t] += row[t];
    }
    for (double& v : out.pa) v /= pa_rows.size();
    out.defense = config.collaborative
                      ? defend_collaborative(composite, ownership, pa_rows,
                                             config.defender)
                      : defend_individual(composite, ownership, pa_rows,
                                          config.defender);
  }
  // Budget-limited defenses (node or wall-clock) still carry a feasible
  // investment; degrade to the incumbent rather than failing the game.
  // Hard verdicts (infeasible / unbounded / numerical) surface typed.
  if (!out.defense.optimal() &&
      !(lp::is_budget_limited(out.defense.status) &&
        !out.defense.defended.empty())) {
    return lp::to_status(out.defense.status, "play_defense_game: defense");
  }
  }  // end defender phase

  // 4. The actual adversary plans on its own view.
  {
    GRIDSEC_TRACE_SPAN("core.game.adversary_phase");
    flow::Network adversary_view =
        cps::perturb_knowledge(truth, config.adversary_noise, rng);
    auto adversary_im =
        cps::compute_impact_matrix(adversary_view, ownership, impact);
    if (!adversary_im.is_ok()) return adversary_im.status();
    impact.warm_start = adversary_im->base_basis;
    StrategicAdversary sa(config.adversary);
    out.attack = sa.plan(adversary_im->matrix);
    // A budget-limited plan is a feasible (just unproven) attack — keep it.
    if (!out.attack.optimal() && !lp::is_budget_limited(out.attack.status)) {
      return lp::to_status(out.attack.status, "play_defense_game: adversary");
    }
  }

  // 5. Realize the attack against the ground truth, with and without the
  // defense in place.
  auto truth_im = cps::compute_impact_matrix(truth, ownership, impact);
  if (!truth_im.is_ok()) return truth_im.status();
  const std::vector<bool> no_defense(
      static_cast<std::size_t>(truth.num_edges()), false);
  out.adversary_gain_undefended = evaluate_attack_with_defense(
      truth_im->matrix, out.attack, config.adversary, no_defense, 0.0,
      &out.actor_impact_undefended);
  out.adversary_gain_defended = evaluate_attack_with_defense(
      truth_im->matrix, out.attack, config.adversary, out.defense.defended,
      config.mitigation, &out.actor_impact_defended);
  out.defense_effectiveness =
      out.adversary_gain_undefended - out.adversary_gain_defended;
  GRIDSEC_LOG(kDebug, "core.game")
      .field("collaborative", config.collaborative)
      .field("attack_status", lp::to_string(out.attack.status))
      .field("defense_status", lp::to_string(out.defense.status))
      .field("gain_undefended", out.adversary_gain_undefended)
      .field("gain_defended", out.adversary_gain_defended)
      .field("effectiveness", out.defense_effectiveness);
  return out;
}

}  // namespace gridsec::core
