#include "gridsec/core/defender.hpp"

#include <algorithm>
#include <string>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/trace.hpp"

namespace gridsec::core {
namespace {

constexpr double kImpactTol = 1e-9;

void log_plan(const char* mode, const DefensePlan& plan) {
  std::size_t defended = 0;
  for (const bool d : plan.defended) defended += d ? 1 : 0;
  double spend = 0.0;
  for (const double s : plan.spending) spend += s;
  GRIDSEC_LOG(kDebug, "core.defender")
      .field("mode", mode)
      .field("status", lp::to_string(plan.status))
      .field("defended", defended)
      .field("spend", spend)
      .field("objective", plan.objective);
}

void validate_config(const DefenderConfig& cfg, int n_targets, int n_actors) {
  GRIDSEC_ASSERT_MSG(
      cfg.defense_cost.size() == static_cast<std::size_t>(n_targets),
      "defense_cost must cover every target");
  GRIDSEC_ASSERT_MSG(cfg.budget.size() == static_cast<std::size_t>(n_actors),
                     "budget must cover every actor");
  GRIDSEC_ASSERT_MSG(cfg.success_prob.empty() ||
                         cfg.success_prob.size() ==
                             static_cast<std::size_t>(n_targets),
                     "success_prob must cover every target when given");
}

double ps_of(const DefenderConfig& cfg, int target) {
  if (cfg.success_prob.empty()) return 1.0;
  return cfg.success_prob[static_cast<std::size_t>(target)];
}

}  // namespace

int DefensePlan::num_defended() const {
  return static_cast<int>(
      std::count(defended.begin(), defended.end(), true));
}

DefensePlan defend_individual(const cps::ImpactMatrix& im,
                              const cps::Ownership& ownership,
                              const std::vector<double>& pa,
                              const DefenderConfig& config) {
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(im.num_actors()), pa);
  return defend_individual(im, ownership, rows, config);
}

DefensePlan defend_individual(
    const cps::ImpactMatrix& im, const cps::Ownership& ownership,
    const std::vector<std::vector<double>>& pa_per_actor,
    const DefenderConfig& config) {
  GRIDSEC_TRACE_SPAN("core.defender.individual");
  static obs::Counter& c_plans =
      obs::default_registry().counter("core.defender.individual_plans");
  c_plans.add();
  const int nt = im.num_targets();
  const int na = im.num_actors();
  validate_config(config, nt, na);
  GRIDSEC_ASSERT(pa_per_actor.size() == static_cast<std::size_t>(na));
  for (const auto& row : pa_per_actor) {
    GRIDSEC_ASSERT(row.size() == static_cast<std::size_t>(nt));
  }
  GRIDSEC_ASSERT(ownership.num_assets() == nt);

  DefensePlan out;
  out.status = lp::SolveStatus::kOptimal;
  out.defended.assign(static_cast<std::size_t>(nt), false);
  out.spending.assign(static_cast<std::size_t>(na), 0.0);

  // Eq 12 decomposes per actor: an independent knapsack over T_a.
  for (int a = 0; a < na; ++a) {
    const std::vector<flow::EdgeId> assets = ownership.assets_of(a);
    if (assets.empty()) continue;

    lp::Problem p(lp::Objective::kMaximize);
    std::vector<int> dvar;
    lp::LinearExpr budget_row;
    double baseline = 0.0;  // Σ Pa·I with nothing defended
    const std::vector<double>& pa =
        pa_per_actor[static_cast<std::size_t>(a)];
    for (flow::EdgeId t : assets) {
      const auto ts = static_cast<std::size_t>(t);
      const double exposure = pa[ts] * ps_of(config, t) * im.at(a, t);
      baseline += exposure;
      // Defending removes the exposure and incurs the cost:
      // coefficient of D(t) in Eq 12 is (-exposure - Cd(t)).
      dvar.push_back(p.add_binary("D" + std::to_string(t),
                                  -exposure - config.defense_cost[ts]));
      budget_row.add(dvar.back(), config.defense_cost[ts]);
    }
    p.add_constraint("MD", std::move(budget_row), lp::Sense::kLessEqual,
                     config.budget[static_cast<std::size_t>(a)]);
    lp::Solution sol = lp::solve_milp(p);
    if (!sol.optimal()) {
      out.status = sol.status;
      log_plan("individual", out);
      return out;
    }
    out.objective += baseline + sol.objective;
    for (std::size_t k = 0; k < assets.size(); ++k) {
      if (sol.x[static_cast<std::size_t>(dvar[k])] > 0.5) {
        const auto ts = static_cast<std::size_t>(assets[k]);
        out.defended[ts] = true;
        out.spending[static_cast<std::size_t>(a)] +=
            config.defense_cost[ts];
      }
    }
  }
  log_plan("individual", out);
  return out;
}

DefensePlan defend_collaborative(
    const cps::ImpactMatrix& im, const cps::Ownership& ownership,
    const std::vector<std::vector<double>>& pa_per_actor,
    const DefenderConfig& config) {
  GRIDSEC_TRACE_SPAN("core.defender.collaborative");
  static obs::Counter& c_plans =
      obs::default_registry().counter("core.defender.collaborative_plans");
  c_plans.add();
  const int nt = im.num_targets();
  const int na = im.num_actors();
  validate_config(config, nt, na);
  GRIDSEC_ASSERT(ownership.num_assets() == nt);
  GRIDSEC_ASSERT(pa_per_actor.size() == static_cast<std::size_t>(na));
  for (const auto& row : pa_per_actor) {
    GRIDSEC_ASSERT(row.size() == static_cast<std::size_t>(nt));
  }

  // Cooperating-defender sets CD(t) = {a : IM[a,t] < 0} and the
  // impact-proportional cost shares Ccd(a,t) (Eq 15).
  std::vector<std::vector<int>> cd(static_cast<std::size_t>(nt));
  std::vector<std::vector<double>> share(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    double total_harm = 0.0;
    for (int a = 0; a < na; ++a) {
      if (im.at(a, t) < -kImpactTol) {
        cd[static_cast<std::size_t>(t)].push_back(a);
        total_harm += im.at(a, t);
      }
    }
    for (int a : cd[static_cast<std::size_t>(t)]) {
      share[static_cast<std::size_t>(t)].push_back(
          config.defense_cost[static_cast<std::size_t>(t)] * im.at(a, t) /
          total_harm);
    }
  }

  // Joint MILP (Eqs 16-18) over all targets that anyone would defend.
  lp::Problem p(lp::Objective::kMaximize);
  std::vector<int> dvar(static_cast<std::size_t>(nt), -1);
  double baseline = 0.0;
  for (int t = 0; t < nt; ++t) {
    const auto ts = static_cast<std::size_t>(t);
    if (cd[ts].empty()) continue;  // nobody is hurt: not defendable jointly
    double exposure = 0.0;  // Σ_{j∈CD(t)} Pa(j,t)·IM[j,t]
    for (int j : cd[ts]) {
      exposure += pa_per_actor[static_cast<std::size_t>(j)][ts] *
                  ps_of(config, t) * im.at(j, t);
    }
    baseline += exposure;
    dvar[ts] = p.add_binary(
        "D" + std::to_string(t),
        -exposure - config.defense_cost[ts]);
  }
  // Per-actor budgets on the cost shares (Eq 18).
  for (int a = 0; a < na; ++a) {
    lp::LinearExpr row;
    for (int t = 0; t < nt; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      if (dvar[ts] < 0) continue;
      for (std::size_t k = 0; k < cd[ts].size(); ++k) {
        if (cd[ts][k] == a) {
          row.add(dvar[ts], share[ts][k]);
          break;
        }
      }
    }
    if (!row.empty()) {
      p.add_constraint("MD" + std::to_string(a), std::move(row),
                       lp::Sense::kLessEqual,
                       config.budget[static_cast<std::size_t>(a)]);
    }
  }

  DefensePlan out;
  lp::Solution sol = lp::solve_milp(p);
  out.status = sol.status;
  out.defended.assign(static_cast<std::size_t>(nt), false);
  out.spending.assign(static_cast<std::size_t>(na), 0.0);
  if (!sol.optimal()) {
    log_plan("collaborative", out);
    return out;
  }
  out.objective = baseline + sol.objective;
  for (int t = 0; t < nt; ++t) {
    const auto ts = static_cast<std::size_t>(t);
    if (dvar[ts] < 0) continue;
    if (sol.x[static_cast<std::size_t>(dvar[ts])] > 0.5) {
      out.defended[ts] = true;
      for (std::size_t k = 0; k < cd[ts].size(); ++k) {
        out.spending[static_cast<std::size_t>(cd[ts][k])] += share[ts][k];
      }
    }
  }
  return out;
}

DefensePlan defend_collaborative(const cps::ImpactMatrix& im,
                                 const cps::Ownership& ownership,
                                 const std::vector<double>& pa,
                                 const DefenderConfig& config) {
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(im.num_actors()), pa);
  return defend_collaborative(im, ownership, rows, config);
}

StatusOr<std::vector<double>> estimate_attack_probabilities(
    const flow::Network& defender_view, const cps::Ownership& ownership,
    const AdversaryConfig& adversary, const cps::NoiseSpec& speculated_noise,
    int num_samples, Rng& rng, const cps::ImpactOptions& impact_options) {
  GRIDSEC_TRACE_SPAN("core.defender.estimate_pa");
  GRIDSEC_ASSERT(num_samples > 0);
  std::vector<double> pa(static_cast<std::size_t>(defender_view.num_edges()),
                         0.0);
  StrategicAdversary sa(adversary);
  cps::ImpactOptions impact = impact_options;
  for (int s = 0; s < num_samples; ++s) {
    // I'' — the defender's speculation of what the adversary believes.
    flow::Network adv_view =
        cps::perturb_knowledge(defender_view, speculated_noise, rng);
    auto im = cps::compute_impact_matrix(adv_view, ownership, impact);
    if (!im.is_ok()) return im.status();
    // Each sample re-perturbs the same topology; carry the basis forward.
    impact.warm_start = im->base_basis;
    AttackPlan plan = sa.plan(im->matrix);
    // Budget-limited plans are feasible samples of the SA's behaviour;
    // anything else (infeasible / unbounded / numerical) is a typed error.
    if (!plan.optimal() && !lp::is_budget_limited(plan.status)) {
      return lp::to_status(plan.status, "estimate_attack_probabilities");
    }
    for (int t : plan.targets) {
      pa[static_cast<std::size_t>(t)] += 1.0;
    }
  }
  for (double& v : pa) v /= num_samples;
  return pa;
}

}  // namespace gridsec::core
