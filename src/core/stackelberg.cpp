#include "gridsec/core/stackelberg.hpp"

namespace gridsec::core {

AttackPlan follower_best_response(const cps::ImpactMatrix& im,
                                  const std::vector<bool>& defended,
                                  const AdversaryConfig& adversary,
                                  double mitigation) {
  GRIDSEC_ASSERT(defended.size() ==
                 static_cast<std::size_t>(im.num_targets()));
  cps::ImpactMatrix scaled = im;
  for (int t = 0; t < im.num_targets(); ++t) {
    if (!defended[static_cast<std::size_t>(t)]) continue;
    for (int a = 0; a < im.num_actors(); ++a) {
      scaled.set(a, t, im.at(a, t) * (1.0 - mitigation));
    }
  }
  StrategicAdversary sa(adversary);
  return sa.plan(scaled);
}

StackelbergPlan stackelberg_defense(const cps::ImpactMatrix& im,
                                    const StackelbergConfig& config) {
  const int nt = im.num_targets();
  StackelbergPlan out;
  out.defended.assign(static_cast<std::size_t>(nt), false);

  AttackPlan base = follower_best_response(im, out.defended,
                                           config.adversary,
                                           config.mitigation);
  out.undefended_return = base.anticipated_return;
  out.follower_response = base;
  out.follower_return = base.anticipated_return;

  while (out.spending + config.defense_cost <= config.budget + 1e-12) {
    // Candidates worth probing: only targets in the follower's current
    // best response can lower its value this round (defending anything
    // else leaves the current response available unchanged).
    double best_value = out.follower_return - 1e-9;
    int best_target = -1;
    AttackPlan best_response;
    for (int t : out.follower_response.targets) {
      if (out.defended[static_cast<std::size_t>(t)]) continue;
      out.defended[static_cast<std::size_t>(t)] = true;
      AttackPlan resp = follower_best_response(im, out.defended,
                                               config.adversary,
                                               config.mitigation);
      out.defended[static_cast<std::size_t>(t)] = false;
      if (resp.anticipated_return < best_value) {
        best_value = resp.anticipated_return;
        best_target = t;
        best_response = std::move(resp);
      }
    }
    if (best_target < 0) break;  // no commitment lowers the follower
    out.defended[static_cast<std::size_t>(best_target)] = true;
    out.spending += config.defense_cost;
    out.follower_return = best_value;
    out.follower_response = std::move(best_response);
    ++out.rounds;
  }
  return out;
}

}  // namespace gridsec::core
