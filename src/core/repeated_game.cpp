#include "gridsec/core/repeated_game.hpp"

#include <algorithm>

#include "gridsec/obs/telemetry.hpp"

namespace gridsec::core {

double RepeatedGameResult::total_adversary_gain() const {
  double total = 0.0;
  for (const RoundOutcome& r : rounds) total += r.adversary_gain;
  return total;
}

double RepeatedGameResult::total_defender_losses() const {
  double total = 0.0;
  for (const RoundOutcome& r : rounds) total += r.defender_losses;
  return total;
}

StatusOr<RepeatedGameResult> play_repeated_game(
    const flow::Network& truth, const cps::Ownership& ownership,
    const RepeatedGameConfig& config, Rng& rng) {
  GRIDSEC_ASSERT(config.rounds > 0);
  GRIDSEC_ASSERT(config.learning_rate >= 0.0 && config.learning_rate <= 1.0);
  const GameConfig& game = config.game;

  // One welfare model serves every impact compute across all rounds: the
  // views are data perturbations of one topology (see play_defense_game).
  cps::ImpactOptions impact = game.impact;
  flow::SocialWelfareModel series_model;
  if (impact.allocation.model == nullptr) {
    impact.allocation.model = &series_model;
  }

  auto truth_im = cps::compute_impact_matrix(truth, ownership, impact);
  if (!truth_im.is_ok()) return truth_im.status();

  // Round 0 beliefs: the defender's one-shot model-based estimate, from its
  // noisy view (same procedure as the one-shot game).
  flow::Network defender_view =
      cps::perturb_knowledge(truth, game.defender_noise, rng);
  auto defender_im =
      cps::compute_impact_matrix(defender_view, ownership, impact);
  if (!defender_im.is_ok()) return defender_im.status();
  auto pa0 = estimate_attack_probabilities(
      defender_view, ownership, game.adversary,
      game.speculated_adversary_noise, game.pa_samples, rng, impact);
  if (!pa0.is_ok()) return pa0.status();

  RepeatedGameResult out;
  std::vector<double> pa = std::move(pa0.value());
  std::vector<double> hits(static_cast<std::size_t>(truth.num_edges()), 0.0);
  StrategicAdversary sa(game.adversary);

  obs::Progress progress("core.game.rounds", config.rounds);
  for (int round = 0; round < config.rounds; ++round) {
    progress.advance();
    RoundOutcome ro;
    // Defender invests on current beliefs.
    ro.defense = game.collaborative
                     ? defend_collaborative(defender_im->matrix, ownership,
                                            pa, game.defender)
                     : defend_individual(defender_im->matrix, ownership, pa,
                                         game.defender);
    if (!ro.defense.optimal()) {
      return Status::internal("play_repeated_game: defense MILP failed");
    }

    // Adversary strikes from a fresh noisy view.
    flow::Network adv_view =
        cps::perturb_knowledge(truth, game.adversary_noise, rng);
    auto adv_im = cps::compute_impact_matrix(adv_view, ownership, impact);
    if (!adv_im.is_ok()) return adv_im.status();
    ro.attack = sa.plan(adv_im->matrix);
    if (ro.attack.status == lp::SolveStatus::kInfeasible ||
        ro.attack.status == lp::SolveStatus::kUnbounded) {
      return Status::internal("play_repeated_game: adversary plan failed");
    }

    // Realize against the truth, mitigated where defended.
    std::vector<double> actor_impact;
    ro.adversary_gain = evaluate_attack_with_defense(
        truth_im->matrix, ro.attack, game.adversary, ro.defense.defended,
        game.mitigation, &actor_impact);
    for (double v : actor_impact) ro.defender_losses += std::min(v, 0.0);

    // Learn: blend the observed attack frequency into Pa.
    for (int t : ro.attack.targets) {
      hits[static_cast<std::size_t>(t)] += 1.0;
    }
    const double n = static_cast<double>(round + 1);
    for (std::size_t t = 0; t < pa.size(); ++t) {
      pa[t] = (1.0 - config.learning_rate) * pa[t] +
              config.learning_rate * (hits[t] / n);
    }
    out.rounds.push_back(std::move(ro));
  }
  out.final_pa = std::move(pa);
  return out;
}

}  // namespace gridsec::core
