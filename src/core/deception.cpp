#include "gridsec/core/deception.hpp"

#include <algorithm>

namespace gridsec::core {
namespace {

flow::Network apply_misreports(const flow::Network& truth,
                               std::span<const Misreport> misreports) {
  flow::Network out = truth;
  for (const Misreport& m : misreports) {
    GRIDSEC_ASSERT(m.edge >= 0 && m.edge < out.num_edges());
    GRIDSEC_ASSERT(m.capacity_factor >= 0.0);
    out.set_capacity(m.edge, truth.edge(m.edge).capacity * m.capacity_factor);
  }
  return out;
}

}  // namespace

StatusOr<DeceptionOutcome> evaluate_deception(
    const flow::Network& truth, const cps::Ownership& ownership,
    std::span<const Misreport> misreports, const AdversaryConfig& adversary,
    const cps::ImpactOptions& impact_options) {
  const flow::Network published = apply_misreports(truth, misreports);
  // Misreports only falsify capacities, so the believed and actual
  // matrices share one topology — and one welfare model.
  cps::ImpactOptions impact = impact_options;
  flow::SocialWelfareModel shared_model;
  if (impact.allocation.model == nullptr) {
    impact.allocation.model = &shared_model;
  }
  auto believed =
      cps::compute_impact_matrix(published, ownership, impact);
  if (!believed.is_ok()) return believed.status();
  auto actual = cps::compute_impact_matrix(truth, ownership, impact);
  if (!actual.is_ok()) return actual.status();

  StrategicAdversary sa(adversary);
  DeceptionOutcome out;
  out.attack = sa.plan(believed->matrix);
  if (out.attack.status == lp::SolveStatus::kInfeasible ||
      out.attack.status == lp::SolveStatus::kUnbounded) {
    return Status::internal("evaluate_deception: SA plan failed");
  }
  out.anticipated = out.attack.anticipated_return;
  out.realized = realized_return(actual->matrix, out.attack, adversary);
  for (int t : out.attack.targets) {
    const double ps =
        adversary.success_prob.empty()
            ? 1.0
            : adversary.success_prob[static_cast<std::size_t>(t)];
    for (int a = 0; a < actual->matrix.num_actors(); ++a) {
      out.defender_losses +=
          std::min(0.0, actual->matrix.at(a, t)) * ps;
    }
  }
  return out;
}

StatusOr<DeceptionPlan> greedy_deception_plan(
    const flow::Network& truth, const cps::Ownership& ownership,
    const DeceptionPlanOptions& options) {
  DeceptionPlan plan;
  auto base = evaluate_deception(truth, ownership, {}, options.adversary,
                                 options.impact);
  if (!base.is_ok()) return base.status();
  plan.baseline = *base;
  plan.deceived = *base;

  std::vector<bool> used(static_cast<std::size_t>(truth.num_edges()), false);
  for (int round = 0; round < options.max_misreports; ++round) {
    double best_losses = plan.deceived.defender_losses;
    Misreport best;
    DeceptionOutcome best_outcome;
    bool improved = false;
    for (int e = 0; e < truth.num_edges(); ++e) {
      if (used[static_cast<std::size_t>(e)]) continue;
      for (double factor : options.factors) {
        std::vector<Misreport> trial = plan.misreports;
        trial.push_back({e, factor});
        auto outcome = evaluate_deception(truth, ownership, trial,
                                          options.adversary, options.impact);
        if (!outcome.is_ok()) continue;  // a misreport that breaks the LP
        // Defenders prefer fewer realized losses (losses are <= 0; larger
        // is better).
        if (outcome->defender_losses > best_losses + 1e-9) {
          best_losses = outcome->defender_losses;
          best = {e, factor};
          best_outcome = *outcome;
          improved = true;
        }
      }
    }
    if (!improved) break;
    plan.misreports.push_back(best);
    plan.deceived = best_outcome;
    used[static_cast<std::size_t>(best.edge)] = true;
  }
  return plan;
}

}  // namespace gridsec::core
