// Tests for the contagion-interdependence baseline.
#include "gridsec/cps/contagion.hpp"

#include <gtest/gtest.h>

#include "gridsec/sim/scenario.hpp"

namespace gridsec::cps {
namespace {

constexpr double kTol = 1e-9;

TEST(AssetDistances, ChainHopsCountEdges) {
  // supply - seg0 - seg1 - demand along one chain: asset distance = index
  // difference (adjacent assets share a hub).
  auto net = sim::make_chain(2, 1.0, 10.0, 5.0);  // edges: gen, s0, s1, load
  const int ne = net.num_edges();
  auto dist = asset_hop_distances(net);
  const auto d = [&](int a, int b) {
    return dist[static_cast<std::size_t>(a) * static_cast<std::size_t>(ne) +
                static_cast<std::size_t>(b)];
  };
  EXPECT_EQ(d(0, 0), 0);
  EXPECT_EQ(d(0, 1), 1);
  EXPECT_EQ(d(0, 2), 2);
  EXPECT_EQ(d(0, 3), 3);
  EXPECT_EQ(d(3, 0), 3);  // symmetric
}

TEST(AssetDistances, DisconnectedAssetsUnreachable) {
  flow::Network net;
  const auto a = net.add_hub("A");
  const auto b = net.add_hub("B");  // no connection between hubs
  net.add_supply("ga", a, 10.0, 1.0);
  net.add_supply("gb", b, 10.0, 1.0);
  auto dist = asset_hop_distances(net);
  EXPECT_EQ(dist[0 * 2 + 1], -1);
  EXPECT_EQ(dist[1 * 2 + 0], -1);
}

TEST(Contagion, SelfCountsFully) {
  auto net = sim::make_chain(0, 1.0, 10.0, 7.0);  // gen + load, capacity 7
  ContagionModel m;
  m.transmission_prob = 0.0;  // no spread at all
  auto damage = contagion_expected_damage(net, m);
  EXPECT_NEAR(damage[0], 7.0, kTol);  // only its own capacity
  EXPECT_NEAR(damage[1], 7.0, kTol);
}

TEST(Contagion, SpreadDecaysGeometrically) {
  auto net = sim::make_chain(2, 1.0, 10.0, 10.0);  // 4 assets, capacity 10
  ContagionModel m;
  m.transmission_prob = 0.5;
  auto damage = contagion_expected_damage(net, m);
  // From the first asset: 10·(1 + .5 + .25 + .125).
  EXPECT_NEAR(damage[0], 10.0 * 1.875, kTol);
  // Middle assets reach everything in fewer hops -> more damage.
  EXPECT_GT(damage[1], damage[0]);
}

TEST(Contagion, ThresholdTruncatesTail) {
  auto net = sim::make_chain(2, 1.0, 10.0, 10.0);
  ContagionModel strict;
  strict.transmission_prob = 0.5;
  strict.threshold = 0.3;  // drops contributions past 1 hop
  auto damage = contagion_expected_damage(net, strict);
  EXPECT_NEAR(damage[0], 10.0 * 1.5, kTol);
}

TEST(Contagion, CentralAssetsRankHighest) {
  // A star of consumers around one hub: the supply edge touches everything
  // at hop 1 and must out-rank peripheral consumers... all edges share the
  // single hub, so all are symmetric except capacity. Use a two-hub dumbbell
  // instead: the bridge is the most central.
  flow::Network net;
  const auto a = net.add_hub("A");
  const auto b = net.add_hub("B");
  net.add_supply("g1", a, 10.0, 1.0);
  net.add_supply("g2", a, 10.0, 1.0);
  const auto bridge =
      net.add_edge("bridge", flow::EdgeKind::kTransmission, a, b, 10.0, 0.0);
  net.add_demand("l1", b, 10.0, 5.0);
  net.add_demand("l2", b, 10.0, 5.0);
  ContagionModel m;
  m.transmission_prob = 0.4;
  auto damage = contagion_expected_damage(net, m);
  for (int e = 0; e < net.num_edges(); ++e) {
    if (e == bridge) continue;
    EXPECT_GE(damage[static_cast<std::size_t>(bridge)],
              damage[static_cast<std::size_t>(e)] - kTol);
  }
}

}  // namespace
}  // namespace gridsec::cps
