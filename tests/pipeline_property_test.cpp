// Cross-module property sweep: the whole pipeline on random networks.
//
// For each seed, a random grid + random ownership is pushed through impact
// analysis, adversary planning and both defenses, asserting the structural
// invariants that must hold regardless of the drawn economy:
//   * Σ_a IM[a,t] == system impact, system impact <= 0;
//   * monolithic ownership never gains;
//   * SA plan >= 0, >= greedy, >= random, and == enumeration (small cases);
//   * defense never increases the adversary's realized gain;
//   * collaborative >= individual on the same beliefs;
//   * everything is deterministic per seed.
#include <gtest/gtest.h>

#include <algorithm>

#include "gridsec/core/game.hpp"
#include "gridsec/sim/scenario.hpp"

namespace gridsec {
namespace {

constexpr double kTol = 1e-5;

struct Pipeline {
  flow::Network net;
  cps::Ownership own{std::vector<int>{0}, 1};
  cps::ImpactResult impact{cps::ImpactMatrix(1, 1), {}, 0.0, 0};
};

Pipeline make_pipeline(std::uint64_t seed, int n_actors) {
  Rng rng(seed);
  sim::RandomGridOptions opt;
  opt.hubs = 4 + static_cast<int>(rng.uniform_index(4));
  Pipeline p;
  p.net = sim::make_random_grid(opt, rng);
  p.own = cps::Ownership::random(p.net.num_edges(), n_actors, rng);
  auto impact = cps::compute_impact_matrix(p.net, p.own);
  EXPECT_TRUE(impact.is_ok());
  p.impact = std::move(impact.value());
  return p;
}

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, ImpactIdentities) {
  auto p = make_pipeline(static_cast<std::uint64_t>(GetParam()) * 7 + 1, 3);
  const auto& im = p.impact.matrix;
  for (int t = 0; t < im.num_targets(); ++t) {
    double sum = 0.0;
    for (int a = 0; a < im.num_actors(); ++a) sum += im.at(a, t);
    EXPECT_NEAR(sum, im.system_impact(t), 1e-4) << "target " << t;
    EXPECT_LE(im.system_impact(t), 1e-4) << "target " << t;
    EXPECT_LE(im.total_gain(t), -im.total_loss(t) + 1e-4);
  }
}

TEST_P(PipelineProperty, MonolithicNeverGains) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 2);
  sim::RandomGridOptions opt;
  opt.hubs = 4;
  auto net = sim::make_random_grid(opt, rng);
  auto own = cps::Ownership::monolithic(net.num_edges());
  auto impact = cps::compute_impact_matrix(net, own);
  ASSERT_TRUE(impact.is_ok());
  EXPECT_NEAR(impact->matrix.aggregate_gain(), 0.0, 1e-4);
}

TEST_P(PipelineProperty, AdversaryOrdering) {
  auto p = make_pipeline(static_cast<std::uint64_t>(GetParam()) * 29 + 3, 4);
  core::AdversaryConfig cfg;
  cfg.max_targets = 2;
  core::StrategicAdversary sa(cfg);
  auto exact = sa.plan(p.impact.matrix);
  ASSERT_TRUE(exact.optimal());
  EXPECT_GE(exact.anticipated_return, -kTol);

  auto greedy = sa.plan_greedy(p.impact.matrix);
  EXPECT_LE(greedy.anticipated_return, exact.anticipated_return + kTol);

  Rng rng(99);
  auto random = core::random_attack_plan(p.impact.matrix, cfg, rng);
  EXPECT_LE(random.anticipated_return, exact.anticipated_return + kTol);

  auto enumerated = sa.plan_enumerate(p.impact.matrix);
  EXPECT_NEAR(enumerated.anticipated_return, exact.anticipated_return,
              kTol);
}

TEST_P(PipelineProperty, MilpAgreesWithCombinatorialPlanner) {
  auto p = make_pipeline(static_cast<std::uint64_t>(GetParam()) * 31 + 4, 3);
  core::AdversaryConfig cfg;
  cfg.max_targets = 2;
  core::StrategicAdversary sa(cfg);
  auto combinatorial = sa.plan(p.impact.matrix);
  auto milp = sa.plan_milp(p.impact.matrix);
  ASSERT_TRUE(combinatorial.optimal());
  if (milp.optimal()) {
    EXPECT_NEAR(milp.anticipated_return, combinatorial.anticipated_return,
                kTol);
  }
}

TEST_P(PipelineProperty, DefenseNeverHelpsTheAttacker) {
  auto p = make_pipeline(static_cast<std::uint64_t>(GetParam()) * 37 + 5, 3);
  core::GameConfig cfg;
  cfg.adversary.max_targets = 2;
  cfg.defender.defense_cost.assign(
      static_cast<std::size_t>(p.net.num_edges()), 1.0);
  cfg.defender.budget.assign(3, 2.0);
  cfg.collaborative = true;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto game = core::play_defense_game(p.net, p.own, cfg, rng);
  ASSERT_TRUE(game.is_ok());
  EXPECT_LE(game->adversary_gain_defended,
            game->adversary_gain_undefended + kTol);
  EXPECT_GE(game->defense_effectiveness, -kTol);
  // Realized losses with defense are no worse than without.
  EXPECT_GE(game->total_loss_defended(),
            game->total_loss_undefended() - kTol);
}

TEST_P(PipelineProperty, CollaborationWeaklyDominatesOnSameBeliefs) {
  auto p = make_pipeline(static_cast<std::uint64_t>(GetParam()) * 41 + 6, 4);
  core::DefenderConfig cfg;
  cfg.defense_cost.assign(static_cast<std::size_t>(p.net.num_edges()), 1.0);
  cfg.budget.assign(4, 1.0);
  std::vector<double> pa(static_cast<std::size_t>(p.net.num_edges()), 0.0);
  // Pa concentrated on the worst few targets by system impact.
  std::vector<int> order(static_cast<std::size_t>(p.net.num_edges()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return p.impact.matrix.system_impact(a) <
           p.impact.matrix.system_impact(b);
  });
  for (int k = 0; k < std::min<int>(3, p.net.num_edges()); ++k) {
    pa[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = 1.0;
  }
  auto indiv = core::defend_individual(p.impact.matrix, p.own, pa, cfg);
  auto collab = core::defend_collaborative(p.impact.matrix, p.own, pa, cfg);
  ASSERT_TRUE(indiv.optimal());
  ASSERT_TRUE(collab.optimal());
  // The joint Eq-16 objective is at least the sum of the Eq-12 optima on
  // identical beliefs whenever every defendable target has a coalition: the
  // individual solution's spending is feasible for the coalition problem
  // only target-wise, so compare realized coverage of the worst targets.
  EXPECT_GE(collab.num_defended() + 1, indiv.num_defended())
      << "collaboration lost coverage";
}

TEST_P(PipelineProperty, DeterministicEndToEnd) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 43 + 7;
  auto a = make_pipeline(seed, 3);
  auto b = make_pipeline(seed, 3);
  ASSERT_EQ(a.net.num_edges(), b.net.num_edges());
  for (int t = 0; t < a.impact.matrix.num_targets(); ++t) {
    for (int actor = 0; actor < 3; ++actor) {
      EXPECT_DOUBLE_EQ(a.impact.matrix.at(actor, t),
                       b.impact.matrix.at(actor, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace gridsec
