// Tests for the time-domain extension (§II-D5).
#include "gridsec/flow/multiperiod.hpp"

#include <gtest/gtest.h>

#include "gridsec/sim/scenario.hpp"
#include "gridsec/sim/western_us.hpp"

namespace gridsec::flow {
namespace {

constexpr double kTol = 1e-6;

Network simple_market() {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 20.0);   // edge 0
  net.add_demand("load", h, 60.0, 50.0);   // edge 1
  return net;
}

TEST(MultiPeriod, SinglePeriodMatchesSocialWelfare) {
  Network net = simple_market();
  const PeriodSpec one[] = {{"only", 1.0, 1.0, 1.0}};
  auto mp = solve_multi_period(net, one);
  auto sw = solve_social_welfare(net);
  ASSERT_TRUE(mp.optimal());
  ASSERT_TRUE(sw.optimal());
  EXPECT_NEAR(mp.total_welfare, sw.welfare, kTol);
}

TEST(MultiPeriod, DurationWeightsWelfare) {
  Network net = simple_market();
  const PeriodSpec hours[] = {{"h", 5.0, 1.0, 1.0}};
  auto mp = solve_multi_period(net, hours);
  ASSERT_TRUE(mp.optimal());
  // Welfare per hour = (50-20)*60 = 1800; over 5 hours = 9000.
  EXPECT_NEAR(mp.total_welfare, 9000.0, kTol);
}

TEST(MultiPeriod, DemandScalingPerPeriod) {
  Network net = simple_market();
  const PeriodSpec periods[] = {{"night", 1.0, 0.5, 1.0},
                                {"peak", 1.0, 1.0, 1.0}};
  auto mp = solve_multi_period(net, periods);
  ASSERT_TRUE(mp.optimal());
  EXPECT_NEAR(mp.period_flow[0][1], 30.0, kTol);  // half demand at night
  EXPECT_NEAR(mp.period_flow[1][1], 60.0, kTol);
  EXPECT_NEAR(mp.total_welfare, 30.0 * 30.0 + 30.0 * 60.0, kTol);
}

TEST(MultiPeriod, PeriodWelfareSumsToTotal) {
  Network net = simple_market();
  auto periods = daily_periods();
  auto mp = solve_multi_period(net, periods);
  ASSERT_TRUE(mp.optimal());
  double sum = 0.0;
  for (double w : mp.period_welfare) sum += w;
  EXPECT_NEAR(sum, mp.total_welfare, kTol);
}

TEST(MultiPeriod, RampConstraintLimitsSwing) {
  // Demand swings 10 -> 100 but the generator may only ramp 20% of its
  // 100 capacity between periods: second-period output <= 10 + 20 = 30.
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 1.0);    // edge 0
  net.add_demand("load", h, 100.0, 50.0);  // edge 1
  const PeriodSpec periods[] = {{"low", 1.0, 0.1, 1.0},
                                {"high", 1.0, 1.0, 1.0}};
  RampSpec ramp;
  ramp.limit_fraction = 0.2;
  auto mp = solve_multi_period(net, periods, ramp);
  ASSERT_TRUE(mp.optimal());
  EXPECT_NEAR(mp.period_flow[0][0], 10.0, kTol);
  EXPECT_NEAR(mp.period_flow[1][0], 30.0, kTol);
  // Without the ramp limit the high period would serve all 100.
  auto unlimited = solve_multi_period(net, periods);
  ASSERT_TRUE(unlimited.optimal());
  EXPECT_NEAR(unlimited.period_flow[1][0], 100.0, kTol);
  EXPECT_GT(unlimited.total_welfare, mp.total_welfare);
}

TEST(MultiPeriod, RampCanMakeEarlyRunningWorthwhile) {
  // With a binding ramp, the optimum may *over-produce* early (relative to
  // myopic dispatch) to be allowed a high output later. Expensive gen, low
  // first-period demand value, high second-period value.
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 30.0);
  net.add_demand("load", h, 100.0, 35.0);
  const PeriodSpec periods[] = {{"early", 1.0, 0.0, 1.0},  // no demand
                                {"late", 1.0, 1.0, 1.0}};
  RampSpec ramp;
  ramp.limit_fraction = 0.4;
  auto mp = solve_multi_period(net, periods, ramp);
  ASSERT_TRUE(mp.optimal());
  // Early demand is zero, so early output is zero regardless; late output
  // is then capped at 40 by the ramp.
  EXPECT_NEAR(mp.period_flow[0][0], 0.0, kTol);
  EXPECT_NEAR(mp.period_flow[1][0], 40.0, kTol);
}

TEST(MultiPeriod, WesternUsDailyHorizonSolves) {
  auto m = sim::build_western_us();
  auto periods = daily_periods();
  RampSpec ramp;
  ramp.limit_fraction = 0.5;
  auto mp = solve_multi_period(m.network, periods, ramp);
  ASSERT_TRUE(mp.optimal());
  EXPECT_GT(mp.total_welfare, 0.0);
  EXPECT_EQ(mp.period_flow.size(), 4u);
}

TEST(MultiPeriod, AttackImpactAcrossHorizon) {
  // An outage persisting over the horizon costs the duration-weighted sum
  // of the per-period losses.
  Network net = simple_market();
  auto periods = daily_periods();
  auto base = solve_multi_period(net, periods);
  ASSERT_TRUE(base.optimal());
  Network hit = net;
  hit.set_capacity(0, 0.0);  // generator outage
  auto after = solve_multi_period(hit, periods);
  ASSERT_TRUE(after.optimal());
  EXPECT_NEAR(after.total_welfare, 0.0, kTol);
  EXPECT_LT(after.total_welfare, base.total_welfare);
}

TEST(MultiPeriod, SupplyScaleModelsAvailability) {
  // Solar-style: supply halves at night.
  Network net = simple_market();
  const PeriodSpec periods[] = {{"night", 1.0, 1.0, 0.3},
                                {"day", 1.0, 1.0, 1.0}};
  auto mp = solve_multi_period(net, periods);
  ASSERT_TRUE(mp.optimal());
  EXPECT_NEAR(mp.period_flow[0][0], 30.0, kTol);  // capped at 30% of 100
  EXPECT_NEAR(mp.period_flow[1][0], 60.0, kTol);  // demand-bound
}

}  // namespace
}  // namespace gridsec::flow
