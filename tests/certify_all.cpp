// Linked into every gridsec test binary (see gridsec_test() in
// CMakeLists.txt): arms the audit solve hook for the whole binary so every
// LP/MILP solve any test performs is certified by the independent checker.
// A certificate failure anywhere in the suite fails the binary with the
// first offending bundle's violations; the checker shares no code with the
// pivoting paths, so this is a differential oracle riding along for free.
//
// GRIDSEC_AUDIT_DIR, when set, receives auto-dumped bundles from failed
// solves (CI uploads the directory as an artifact on test failure).
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "gridsec/obs/audit.hpp"

namespace {

class CertifyAllEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    gridsec::obs::AuditConfig cfg;
    if (const char* dir = std::getenv("GRIDSEC_AUDIT_DIR")) {
      cfg.dump_dir = dir;
    }
    gridsec::obs::arm_audit(std::move(cfg));
  }

  void TearDown() override {
    const std::uint64_t failures = gridsec::obs::audit_cert_failure_count();
    if (failures != 0) {
      std::string detail;
      gridsec::obs::AuditBundle first;
      if (gridsec::obs::first_audit_failure(&first)) {
        detail = "first failing solve: " + first.context;
        for (const std::string& v : first.certificate.violations) {
          detail += "\n  " + v;
        }
      }
      ADD_FAILURE() << failures
                    << " solve certificate failure(s) in this binary. "
                    << detail;
    }
    gridsec::obs::disarm_audit();
  }
};

// Registered at static-init time so no test main() needs editing.
const ::testing::Environment* const g_certify_all =
    ::testing::AddGlobalTestEnvironment(new CertifyAllEnvironment);

}  // namespace
