// Tests for structural vulnerability analysis.
#include "gridsec/flow/analysis.hpp"

#include <gtest/gtest.h>

#include "gridsec/sim/scenario.hpp"
#include "gridsec/sim/western_us.hpp"

namespace gridsec::flow {
namespace {

constexpr double kTol = 1e-9;

TEST(Betweenness, ChainEdgesCarryTheOnlyPath) {
  // source -> h0 -> h1 -> h2 -> sink: one source-sink pair, one path.
  auto net = sim::make_chain(2, 1.0, 10.0, 5.0);
  auto bw = source_sink_betweenness(net);
  ASSERT_EQ(bw.size(), static_cast<std::size_t>(net.num_edges()));
  for (double v : bw) EXPECT_NEAR(v, 1.0, kTol);
}

TEST(Betweenness, ParallelPathsSplitCredit) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen", a, 10.0, 1.0);
  const EdgeId p1 = net.add_edge("p1", EdgeKind::kTransmission, a, b, 5.0, 0.0);
  const EdgeId p2 = net.add_edge("p2", EdgeKind::kTransmission, a, b, 5.0, 0.0);
  net.add_demand("load", b, 8.0, 9.0);
  auto bw = source_sink_betweenness(net);
  EXPECT_NEAR(bw[static_cast<std::size_t>(p1)], 0.5, kTol);
  EXPECT_NEAR(bw[static_cast<std::size_t>(p2)], 0.5, kTol);
}

TEST(Betweenness, ShorterPathWinsAllCredit) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  const NodeId c = net.add_hub("C");
  net.add_supply("gen", a, 10.0, 1.0);
  const EdgeId direct =
      net.add_edge("direct", EdgeKind::kTransmission, a, c, 5.0, 0.0);
  const EdgeId via1 = net.add_edge("via1", EdgeKind::kTransmission, a, b, 5.0, 0.0);
  const EdgeId via2 = net.add_edge("via2", EdgeKind::kTransmission, b, c, 5.0, 0.0);
  net.add_demand("load", c, 8.0, 9.0);
  auto bw = source_sink_betweenness(net);
  EXPECT_NEAR(bw[static_cast<std::size_t>(direct)], 1.0, kTol);
  EXPECT_NEAR(bw[static_cast<std::size_t>(via1)], 0.0, kTol);
  EXPECT_NEAR(bw[static_cast<std::size_t>(via2)], 0.0, kTol);
}

TEST(Betweenness, MultipleConsumersAccumulate) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen", a, 10.0, 1.0);           // e0
  const EdgeId trunk =
      net.add_edge("trunk", EdgeKind::kTransmission, a, b, 5.0, 0.0);  // e1
  net.add_demand("loadA", a, 3.0, 9.0);          // e2
  net.add_demand("loadB", b, 3.0, 9.0);          // e3
  auto bw = source_sink_betweenness(net);
  // Two source-sink pairs; the trunk carries only the B pair.
  EXPECT_NEAR(bw[static_cast<std::size_t>(trunk)], 1.0, kTol);
  EXPECT_NEAR(bw[0], 2.0, kTol);  // the supply edge feeds both consumers
}

TEST(Reachability, ConnectedChainReachable) {
  auto net = sim::make_chain(3, 1.0, 5.0, 2.0);
  EXPECT_TRUE(all_consumers_reachable(net));
}

TEST(Reachability, OrphanConsumerDetected) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");  // disconnected hub
  net.add_supply("gen", a, 10.0, 1.0);
  net.add_demand("loadA", a, 5.0, 9.0);
  net.add_demand("orphan", b, 5.0, 9.0);
  EXPECT_FALSE(all_consumers_reachable(net));
}

TEST(MaxDeliverable, RespectsBottleneck) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen", a, 100.0, 50.0);  // expensive: price must not matter
  net.add_edge("line", EdgeKind::kTransmission, a, b, 25.0, 3.0);
  const EdgeId load = net.add_demand("load", b, 60.0, 1.0);
  auto max = max_deliverable(net, load);
  ASSERT_TRUE(max.is_ok());
  EXPECT_NEAR(*max, 25.0, 1e-6);
}

TEST(MaxDeliverable, LossesShrinkDelivery) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen", a, 100.0, 1.0);
  net.add_edge("line", EdgeKind::kTransmission, a, b, 1000.0, 0.0, 0.2);
  const EdgeId load = net.add_demand("load", b, 500.0, 1.0);
  auto max = max_deliverable(net, load);
  ASSERT_TRUE(max.is_ok());
  EXPECT_NEAR(*max, 80.0, 1e-6);  // 100 injected, 20% lost
}

TEST(MaxDeliverable, OtherConsumersDoNotCompete) {
  Network net;
  const NodeId a = net.add_hub("A");
  net.add_supply("gen", a, 50.0, 1.0);
  const EdgeId l1 = net.add_demand("l1", a, 40.0, 9.0);
  net.add_demand("l2", a, 40.0, 99.0);  // would otherwise win the energy
  auto max = max_deliverable(net, l1);
  ASSERT_TRUE(max.is_ok());
  EXPECT_NEAR(*max, 40.0, 1e-6);
}

TEST(MaxDeliverable, RejectsNonDemandEdge) {
  auto net = sim::make_chain(1, 1.0, 5.0, 2.0);
  auto bad = max_deliverable(net, 0);  // the supply edge
  EXPECT_FALSE(bad.is_ok());
}

TEST(Analysis, WesternUsIsFullyReachable) {
  auto m = sim::build_western_us();
  EXPECT_TRUE(all_consumers_reachable(m.network));
  auto bw = source_sink_betweenness(m.network);
  double total = 0.0;
  for (double v : bw) total += v;
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace gridsec::flow
