// Tests for the parametric scenario generators.
#include "gridsec/sim/scenario.hpp"

#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::sim {
namespace {

TEST(Scenario, ChainStructureAndEconomics) {
  auto net = make_chain(/*segments=*/3, /*supply_cost=*/10.0, /*price=*/40.0,
                        /*capacity=*/50.0, /*segment_cost=*/1.0);
  // 1 supply + 3 segments + 1 demand.
  EXPECT_EQ(net.num_edges(), 5);
  EXPECT_TRUE(net.validate().is_ok());
  auto sol = flow::solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // Margin = 40 - 10 - 3 = 27 per unit on 50 units.
  EXPECT_NEAR(sol.welfare, 27.0 * 50.0, 1e-6);
}

TEST(Scenario, ZeroSegmentChainIsDirectSale) {
  auto net = make_chain(0, 5.0, 20.0, 10.0);
  EXPECT_EQ(net.num_edges(), 2);
  auto sol = flow::solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.welfare, 150.0, 1e-6);
}

TEST(Scenario, LossyChainGrossesUpSupply) {
  auto net = make_chain(2, 0.0, 10.0, 100.0, 0.0, 0.1);
  auto sol = flow::solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // The supply injects its full 100; two 10%-lossy segments deliver
  // 100 * 0.9 * 0.9 = 81 to the consumer.
  EXPECT_NEAR(sol.flow[0], 100.0, 1e-6);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(net.num_edges() - 1)], 81.0,
              1e-6);
}

TEST(Scenario, DuopolyDefaultsMatchDocumentedCase) {
  auto net = make_duopoly();
  auto sol = flow::solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // 60 cheap + 20 dear serve the 80 demand.
  EXPECT_NEAR(sol.flow[0], 60.0, 1e-6);
  EXPECT_NEAR(sol.flow[1], 20.0, 1e-6);
}

class RandomGridProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomGridProperty, AlwaysValidatesAndSolves) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  RandomGridOptions opt;
  opt.hubs = 3 + static_cast<int>(rng.uniform_index(6));
  auto net = make_random_grid(opt, rng);
  const Status st = net.validate();
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  auto sol = flow::solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_GE(sol.welfare, -1e-9);  // serving nobody is always an option
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGridProperty, ::testing::Range(0, 20));

TEST(Scenario, RandomGridDeterministicPerSeed) {
  RandomGridOptions opt;
  Rng a(7), b(7);
  auto na = make_random_grid(opt, a);
  auto nb = make_random_grid(opt, b);
  ASSERT_EQ(na.num_edges(), nb.num_edges());
  for (int e = 0; e < na.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(na.edge(e).capacity, nb.edge(e).capacity);
    EXPECT_DOUBLE_EQ(na.edge(e).cost, nb.edge(e).cost);
  }
}

}  // namespace
}  // namespace gridsec::sim
