// Tests for the energy network model.
#include "gridsec/flow/network.hpp"

#include <gtest/gtest.h>

namespace gridsec::flow {
namespace {

Network two_hub_line() {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen.A", a, 100.0, 20.0);
  net.add_edge("line.AB", EdgeKind::kTransmission, a, b, 80.0, 2.0, 0.05);
  net.add_demand("load.B", b, 60.0, 50.0);
  return net;
}

TEST(Network, BuildCountsNodesAndEdges) {
  Network net = two_hub_line();
  // 2 hubs + 1 source terminal + 1 sink terminal.
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.num_edges(), 3);
}

TEST(Network, SupplyHelperCreatesSourceTerminal) {
  Network net;
  const NodeId h = net.add_hub("H");
  const EdgeId e = net.add_supply("gen", h, 10.0, 5.0);
  EXPECT_EQ(net.edge(e).kind, EdgeKind::kSupply);
  EXPECT_EQ(net.node(net.edge(e).from).kind, NodeKind::kSource);
  EXPECT_EQ(net.edge(e).to, h);
  EXPECT_DOUBLE_EQ(net.edge(e).cost, 5.0);
}

TEST(Network, DemandHelperStoresNegativePrice) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 10.0, 5.0);
  const EdgeId e = net.add_demand("load", h, 10.0, 42.0);
  EXPECT_EQ(net.edge(e).kind, EdgeKind::kDemand);
  EXPECT_DOUBLE_EQ(net.edge(e).cost, -42.0);
  EXPECT_EQ(net.node(net.edge(e).to).kind, NodeKind::kSink);
}

TEST(Network, AdjacencyListsTrackEdges) {
  Network net = two_hub_line();
  auto line = net.find_edge("line.AB");
  ASSERT_TRUE(line.is_ok());
  const Edge& e = net.edge(line.value());
  EXPECT_EQ(net.out_edges(e.from).size(), 1u);  // hub A: line out
  EXPECT_EQ(net.in_edges(e.from).size(), 1u);   // hub A: supply in
  EXPECT_EQ(net.in_edges(e.to).size(), 1u);     // hub B: line in
}

TEST(Network, MutatorsUpdateParameters) {
  Network net = two_hub_line();
  auto line = net.find_edge("line.AB");
  ASSERT_TRUE(line.is_ok());
  net.set_capacity(line.value(), 10.0);
  net.set_cost(line.value(), 99.0);
  net.set_loss(line.value(), 0.2);
  EXPECT_DOUBLE_EQ(net.edge(line.value()).capacity, 10.0);
  EXPECT_DOUBLE_EQ(net.edge(line.value()).cost, 99.0);
  EXPECT_DOUBLE_EQ(net.edge(line.value()).loss, 0.2);
}

TEST(Network, CapacityTotals) {
  Network net = two_hub_line();
  EXPECT_DOUBLE_EQ(net.total_supply_capacity(), 100.0);
  EXPECT_DOUBLE_EQ(net.total_demand_capacity(), 60.0);
}

TEST(Network, ValidateAcceptsConsistentModel) {
  Network net = two_hub_line();
  EXPECT_TRUE(net.validate().is_ok());
}

TEST(Network, ValidateRejectsUnservableDemand) {
  Network net;
  const NodeId a = net.add_hub("A");
  net.add_supply("gen", a, 5.0, 1.0);
  net.add_demand("load", a, 50.0, 10.0);  // inbound capacity only 5
  const Status st = net.validate();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
}

TEST(Network, FindEdgeByName) {
  Network net = two_hub_line();
  EXPECT_TRUE(net.find_edge("gen.A").is_ok());
  EXPECT_FALSE(net.find_edge("nope").is_ok());
  EXPECT_EQ(net.find_edge("nope").status().code(), ErrorCode::kNotFound);
}

using NetworkDeathTest = Network;

TEST(NetworkDeathTest, RejectsWrongTerminalKinds) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  EXPECT_DEATH(net.add_edge("bad", EdgeKind::kSupply, a, b, 1.0, 1.0),
               "supply edge");
}

TEST(NetworkDeathTest, RejectsBadLoss) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  EXPECT_DEATH(
      net.add_edge("bad", EdgeKind::kTransmission, a, b, 1.0, 1.0, 1.0),
      "loss");
}

}  // namespace
}  // namespace gridsec::flow
