// Tests for attacks and knowledge noise.
#include "gridsec/cps/perturbation.hpp"

#include <gtest/gtest.h>

#include "gridsec/util/stats.hpp"

namespace gridsec::cps {
namespace {

flow::Network small_net() {
  flow::Network net;
  const auto a = net.add_hub("A");
  const auto b = net.add_hub("B");
  net.add_supply("gen", a, 100.0, 20.0);
  net.add_edge("line", flow::EdgeKind::kTransmission, a, b, 80.0, 2.0, 0.1);
  net.add_demand("load", b, 60.0, 50.0);
  return net;
}

TEST(Attack, OutageZeroesCapacity) {
  flow::Network net = small_net();
  apply_attack(net, {1, AttackType::kOutage, 1.0});
  EXPECT_DOUBLE_EQ(net.edge(1).capacity, 0.0);
  // Other parameters untouched.
  EXPECT_DOUBLE_EQ(net.edge(1).cost, 2.0);
  EXPECT_DOUBLE_EQ(net.edge(1).loss, 0.1);
}

TEST(Attack, CapacityScalePartial) {
  flow::Network net = small_net();
  apply_attack(net, {1, AttackType::kCapacityScale, 0.25});
  EXPECT_DOUBLE_EQ(net.edge(1).capacity, 60.0);
}

TEST(Attack, CapacityScaleClampsMagnitude) {
  flow::Network net = small_net();
  apply_attack(net, {1, AttackType::kCapacityScale, 2.0});
  EXPECT_DOUBLE_EQ(net.edge(1).capacity, 0.0);
}

TEST(Attack, LossIncreaseClampedBelowOne) {
  flow::Network net = small_net();
  apply_attack(net, {1, AttackType::kLossIncrease, 0.2});
  EXPECT_DOUBLE_EQ(net.edge(1).loss, 0.3);
  apply_attack(net, {1, AttackType::kLossIncrease, 5.0});
  EXPECT_DOUBLE_EQ(net.edge(1).loss, 0.95);
}

TEST(Attack, CostShift) {
  flow::Network net = small_net();
  apply_attack(net, {1, AttackType::kCostShift, 7.5});
  EXPECT_DOUBLE_EQ(net.edge(1).cost, 9.5);
}

TEST(Attack, AttackedNetworkLeavesOriginalIntact) {
  const flow::Network net = small_net();
  const Attack attacks[] = {{0, AttackType::kOutage, 1.0},
                            {1, AttackType::kCostShift, 1.0}};
  flow::Network hit = attacked_network(net, attacks);
  EXPECT_DOUBLE_EQ(net.edge(0).capacity, 100.0);
  EXPECT_DOUBLE_EQ(hit.edge(0).capacity, 0.0);
  EXPECT_DOUBLE_EQ(hit.edge(1).cost, 3.0);
}

TEST(Noise, ZeroSigmaIsExactCopy) {
  flow::Network net = small_net();
  Rng rng(1);
  flow::Network noisy = perturb_knowledge(net, {0.0, NoiseMode::kRelative},
                                          rng);
  for (int e = 0; e < net.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(noisy.edge(e).capacity, net.edge(e).capacity);
    EXPECT_DOUBLE_EQ(noisy.edge(e).cost, net.edge(e).cost);
    EXPECT_DOUBLE_EQ(noisy.edge(e).loss, net.edge(e).loss);
  }
}

TEST(Noise, RelativeNoiseIsUnbiasedAndScales) {
  flow::Network net = small_net();
  Rng rng(2);
  RunningStats caps;
  NoiseSpec spec;
  spec.sigma = 0.1;
  for (int i = 0; i < 3000; ++i) {
    flow::Network noisy = perturb_knowledge(net, spec, rng);
    caps.add(noisy.edge(0).capacity);
  }
  EXPECT_NEAR(caps.mean(), 100.0, 1.0);
  EXPECT_NEAR(caps.stddev(), 10.0, 1.0);
}

TEST(Noise, AbsoluteModeUsesRawSigma) {
  flow::Network net = small_net();
  Rng rng(3);
  RunningStats costs;
  NoiseSpec spec;
  spec.sigma = 2.0;
  spec.mode = NoiseMode::kAbsolute;
  spec.perturb_capacity = false;
  spec.perturb_loss = false;
  for (int i = 0; i < 3000; ++i) {
    flow::Network noisy = perturb_knowledge(net, spec, rng);
    costs.add(noisy.edge(0).cost);
  }
  EXPECT_NEAR(costs.mean(), 20.0, 0.2);
  EXPECT_NEAR(costs.stddev(), 2.0, 0.2);
}

TEST(Noise, CapacityNeverNegativeAndLossClamped) {
  flow::Network net = small_net();
  Rng rng(4);
  NoiseSpec spec;
  spec.sigma = 3.0;  // extreme noise to stress the clamps
  for (int i = 0; i < 500; ++i) {
    flow::Network noisy = perturb_knowledge(net, spec, rng);
    for (int e = 0; e < noisy.num_edges(); ++e) {
      EXPECT_GE(noisy.edge(e).capacity, 0.0);
      EXPECT_GE(noisy.edge(e).loss, 0.0);
      EXPECT_LE(noisy.edge(e).loss, 0.95);
    }
  }
}

TEST(Noise, SelectiveParameterPerturbation) {
  flow::Network net = small_net();
  Rng rng(5);
  NoiseSpec spec;
  spec.sigma = 0.5;
  spec.perturb_capacity = false;
  spec.perturb_cost = true;
  spec.perturb_loss = false;
  flow::Network noisy = perturb_knowledge(net, spec, rng);
  EXPECT_DOUBLE_EQ(noisy.edge(0).capacity, net.edge(0).capacity);
  EXPECT_DOUBLE_EQ(noisy.edge(1).loss, net.edge(1).loss);
  EXPECT_NE(noisy.edge(0).cost, net.edge(0).cost);
}

}  // namespace
}  // namespace gridsec::cps
