// Tests for the paper's literal capacity-reduction marginal-cost probe,
// including its duality bridge to the LP reduced costs.
#include "gridsec/flow/marginal_cost.hpp"

#include <gtest/gtest.h>

#include "gridsec/sim/scenario.hpp"
#include "gridsec/sim/western_us.hpp"

namespace gridsec::flow {
namespace {

TEST(CapacityProbe, UnsaturatedEdgesCarryNoRent) {
  // Generator 100 cap serving 60 demand: the supply edge has slack, so a
  // one-unit capacity cut costs nothing.
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto base = solve_social_welfare(net);
  ASSERT_TRUE(base.optimal());
  auto rents = probe_capacity_rents(net, base);
  ASSERT_TRUE(rents.is_ok());
  EXPECT_FALSE((*rents)[0].saturated);
  EXPECT_NEAR((*rents)[0].marginal_value, 0.0, 1e-9);
}

TEST(CapacityProbe, SaturatedSupplyEarnsTheMargin) {
  // Scarce generator: every unit of its capacity is worth price - cost.
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 40.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto base = solve_social_welfare(net);
  ASSERT_TRUE(base.optimal());
  auto rents = probe_capacity_rents(net, base);
  ASSERT_TRUE(rents.is_ok());
  EXPECT_TRUE((*rents)[0].saturated);
  EXPECT_NEAR((*rents)[0].marginal_value, 30.0, 1e-6);
}

TEST(CapacityProbe, CongestedLineEarnsThePriceSpread) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen.A", a, 1000.0, 10.0);
  net.add_supply("gen.B", b, 1000.0, 45.0);
  const EdgeId line =
      net.add_edge("line", EdgeKind::kTransmission, a, b, 30.0, 0.0);
  net.add_demand("load.B", b, 100.0, 60.0);
  auto base = solve_social_welfare(net);
  ASSERT_TRUE(base.optimal());
  auto rents = probe_capacity_rents(net, base);
  ASSERT_TRUE(rents.is_ok());
  // LMP spread 45 - 10 = 35 per unit of line capacity.
  EXPECT_TRUE((*rents)[static_cast<std::size_t>(line)].saturated);
  EXPECT_NEAR((*rents)[static_cast<std::size_t>(line)].marginal_value, 35.0,
              1e-6);
}

TEST(CapacityProbe, MatchesReducedCostDuality) {
  // For saturated edges, the probe must converge to the negated reduced
  // cost of the flow variable (capacity shadow price). Use a small delta.
  auto m = sim::build_western_us();
  auto base = solve_social_welfare(m.network);
  ASSERT_TRUE(base.optimal());
  CapacityProbeOptions opt;
  opt.delta = 1e-4;
  auto rents = probe_capacity_rents(m.network, base, opt);
  ASSERT_TRUE(rents.is_ok());
  int checked = 0;
  for (int e = 0; e < m.network.num_edges(); ++e) {
    const auto es = static_cast<std::size_t>(e);
    if (!(*rents)[es].saturated) continue;
    // reduced_cost <= 0 at upper bound in min form; shadow price = -rc.
    const double shadow = -base.edge_reduced_cost[es];
    EXPECT_NEAR((*rents)[es].marginal_value, shadow, 1e-2)
        << m.network.edge(e).name;
    ++checked;
  }
  EXPECT_GT(checked, 3);  // the challenged model must congest something
}

TEST(CapacityProbe, RelativeDeltaScales) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 40.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto base = solve_social_welfare(net);
  ASSERT_TRUE(base.optimal());
  CapacityProbeOptions opt;
  opt.relative = true;
  opt.delta = 0.25;  // cut 10 of the 40 units
  auto rents = probe_capacity_rents(net, base, opt);
  ASSERT_TRUE(rents.is_ok());
  EXPECT_NEAR((*rents)[0].marginal_value, 30.0, 1e-6);
}

TEST(CapacityProbe, RejectsStaleBase) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 40.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto base = solve_social_welfare(net);
  ASSERT_TRUE(base.optimal());
  net.add_supply("late", h, 5.0, 1.0);  // network changed after solving
  auto rents = probe_capacity_rents(net, base);
  EXPECT_FALSE(rents.is_ok());
}

}  // namespace
}  // namespace gridsec::flow
