// Tests for the embedded telemetry HTTP endpoint (gridsec/obs/serve.hpp).
// Under -DGRIDSEC_NO_SERVE=ON only the stub-refusal test runs.
#include "gridsec/obs/serve.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/telemetry.hpp"

#ifndef GRIDSEC_NO_SERVE

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gridsec::obs {
namespace {

struct HttpResponse {
  int code = 0;
  std::string content_type;
  std::string body;
};

/// Minimal blocking HTTP client against 127.0.0.1:port.
HttpResponse http_get(int port, const std::string& path,
                      const std::string& method = "GET") {
  HttpResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  const std::string request = method + " " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t line_end = response.find("\r\n");
  if (line_end != std::string::npos && line_end > 9) {
    out.code = std::atoi(response.c_str() + 9);
  }
  const std::size_t ct = response.find("Content-Type: ");
  if (ct != std::string::npos) {
    const std::size_t eol = response.find("\r\n", ct);
    out.content_type = response.substr(ct + 14, eol - ct - 14);
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    out.body = response.substr(header_end + 4);
  }
  return out;
}

TEST(ServeTest, EndpointsRespond) {
  MetricRegistry reg;
  reg.counter("tests.serve.requests_seen").add(11);
  TelemetryServer server;
  TelemetryServerOptions opts;
  opts.port = 0;  // ephemeral
  opts.registry = &reg;
  ASSERT_TRUE(server.start(opts).is_ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const HttpResponse health = http_get(server.port(), "/healthz");
  EXPECT_EQ(health.code, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpResponse metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.code, 200);
  EXPECT_EQ(metrics.content_type, kOpenMetricsContentType);
  EXPECT_NE(metrics.body.find("gridsec_tests_serve_requests_seen_total 11\n"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gridsec_build_info{"), std::string::npos);
  EXPECT_NE(metrics.body.find("# EOF\n"), std::string::npos);

  const HttpResponse progress = http_get(server.port(), "/progress");
  EXPECT_EQ(progress.code, 200);
  EXPECT_NE(progress.body.find("{\"progress\":["), std::string::npos);

  EXPECT_EQ(http_get(server.port(), "/nope").code, 404);
  EXPECT_EQ(http_get(server.port(), "/metrics", "POST").code, 405);
  // Query strings are stripped before routing.
  EXPECT_EQ(http_get(server.port(), "/healthz?verbose=1").code, 200);

  EXPECT_GE(server.requests(), 6u);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  server.stop();  // idempotent
}

TEST(ServeTest, MetricsReflectLiveRegistry) {
  MetricRegistry reg;
  Counter& c = reg.counter("tests.serve.live");
  TelemetryServer server;
  TelemetryServerOptions opts;
  opts.registry = &reg;
  ASSERT_TRUE(server.start(opts).is_ok());

  c.add(1);
  const HttpResponse first = http_get(server.port(), "/metrics");
  EXPECT_NE(first.body.find("gridsec_tests_serve_live_total 1\n"),
            std::string::npos);
  c.add(41);
  const HttpResponse second = http_get(server.port(), "/metrics");
  EXPECT_NE(second.body.find("gridsec_tests_serve_live_total 42\n"),
            std::string::npos);
  server.stop();
}

TEST(ServeTest, ScrapesCounterAdvances) {
  TelemetryServer server;
  ASSERT_TRUE(server.start({}).is_ok());
  Counter& scrapes = default_registry().counter("obs.telemetry.scrapes");
  const std::int64_t before = scrapes.value();
  static_cast<void>(http_get(server.port(), "/metrics"));
  static_cast<void>(http_get(server.port(), "/metrics"));
  EXPECT_EQ(scrapes.value(), before + 2);
  server.stop();
}

// Regression for the SIGPIPE hazard: a scraper that disconnects without
// reading the response (RST via zero-linger close) must not kill the
// process — write_response() sends with MSG_NOSIGNAL and treats EPIPE as
// peer-went-away. Repeated to give the abort a real chance to race in.
TEST(ServeTest, SurvivesClientDisconnectMidResponse) {
  TelemetryServer server;
  ASSERT_TRUE(server.start({}).is_ok());
  for (int i = 0; i < 20; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string request =
        "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
    static_cast<void>(
        ::send(fd, request.data(), request.size(), MSG_NOSIGNAL));
    linger lin{};
    lin.l_onoff = 1;
    lin.l_linger = 0;  // close() sends RST instead of FIN
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
    ::close(fd);
  }
  const HttpResponse alive = http_get(server.port(), "/healthz");
  EXPECT_EQ(alive.code, 200);
  server.stop();
}

TEST(ServeTest, ScrapesCountOnConfiguredRegistry) {
  MetricRegistry reg;
  TelemetryServer server;
  TelemetryServerOptions opts;
  opts.registry = &reg;
  ASSERT_TRUE(server.start(opts).is_ok());
  const std::int64_t default_before =
      default_registry().counter("obs.telemetry.scrapes").value();
  static_cast<void>(http_get(server.port(), "/metrics"));
  EXPECT_EQ(reg.counter("obs.telemetry.scrapes").value(), 1);
  EXPECT_EQ(default_registry().counter("obs.telemetry.scrapes").value(),
            default_before);
  server.stop();
}

TEST(ServeTest, StartValidation) {
  TelemetryServer server;
  TelemetryServerOptions opts;
  opts.port = 70000;
  EXPECT_FALSE(server.start(opts).is_ok());
  opts.port = 0;
  ASSERT_TRUE(server.start(opts).is_ok());
  EXPECT_FALSE(server.start(opts).is_ok());  // already running
  server.stop();
}

TEST(ServeTest, EnablesProgressTracker) {
  const bool was_enabled = ProgressTracker::enabled();
  ProgressTracker::set_enabled(false);
  TelemetryServer server;
  ASSERT_TRUE(server.start({}).is_ok());
  EXPECT_TRUE(ProgressTracker::enabled());
  server.stop();
  ProgressTracker::set_enabled(was_enabled);
}

// TSan coverage: scrapes race against registry writers.
TEST(ServeConcurrency, ScrapesWhileWriting) {
  MetricRegistry reg;
  TelemetryServer server;
  TelemetryServerOptions opts;
  opts.registry = &reg;
  ASSERT_TRUE(server.start(opts).is_ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&reg, &stop, w] {
      Counter& c = reg.counter("tests.serve.race." + std::to_string(w));
      while (!stop.load()) {
        c.add();
        reg.gauge("tests.serve.race_gauge").set(static_cast<double>(w));
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    const HttpResponse r = http_get(server.port(), "/metrics");
    EXPECT_EQ(r.code, 200);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  server.stop();
}

}  // namespace
}  // namespace gridsec::obs

#else  // GRIDSEC_NO_SERVE

namespace gridsec::obs {
namespace {

TEST(ServeTest, CompiledOutStubRefuses) {
  TelemetryServer server;
  const Status st = server.start({});
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.to_string().find("GRIDSEC_NO_SERVE"), std::string::npos);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  server.stop();  // harmless no-op
}

}  // namespace
}  // namespace gridsec::obs

#endif  // GRIDSEC_NO_SERVE
