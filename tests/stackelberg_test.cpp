// Tests for the Stackelberg (leader-follower) defense extension.
#include "gridsec/core/stackelberg.hpp"

#include <gtest/gtest.h>

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

cps::ImpactMatrix make_im(
    std::initializer_list<std::initializer_list<double>> rows) {
  const int na = static_cast<int>(rows.size());
  const int nt = static_cast<int>(rows.begin()->size());
  cps::ImpactMatrix im(na, nt);
  int a = 0;
  for (const auto& row : rows) {
    int t = 0;
    for (double v : row) im.set(a, t++, v);
    ++a;
  }
  return im;
}

TEST(FollowerBestResponse, UndefendedEqualsPlainPlan) {
  auto im = make_im({{100.0, 40.0}});
  AdversaryConfig adv;
  adv.max_targets = 1;
  std::vector<bool> none(2, false);
  auto resp = follower_best_response(im, none, adv, 1.0);
  StrategicAdversary sa(adv);
  auto plain = sa.plan(im);
  EXPECT_EQ(resp.targets, plain.targets);
  EXPECT_NEAR(resp.anticipated_return, plain.anticipated_return, kTol);
}

TEST(FollowerBestResponse, DefendedTargetLosesValue) {
  auto im = make_im({{100.0, 40.0}});
  AdversaryConfig adv;
  adv.max_targets = 1;
  std::vector<bool> defended{true, false};
  auto resp = follower_best_response(im, defended, adv, 1.0);
  // The 100-target is neutralized: the follower shifts to the 40-target.
  EXPECT_EQ(resp.targets, (std::vector<int>{1}));
  EXPECT_NEAR(resp.anticipated_return, 40.0, kTol);
}

TEST(FollowerBestResponse, PartialMitigationScales) {
  auto im = make_im({{100.0, 40.0}});
  AdversaryConfig adv;
  adv.max_targets = 1;
  std::vector<bool> defended{true, false};
  auto resp = follower_best_response(im, defended, adv, 0.4);
  // 100 * 0.6 = 60 still beats 40.
  EXPECT_EQ(resp.targets, (std::vector<int>{0}));
  EXPECT_NEAR(resp.anticipated_return, 60.0, kTol);
}

TEST(Stackelberg, CoversTargetsInValueOrder) {
  auto im = make_im({{100.0, 80.0, 10.0}});
  StackelbergConfig cfg;
  cfg.adversary.max_targets = 1;
  cfg.defense_cost = 1.0;
  cfg.budget = 2.0;
  auto plan = stackelberg_defense(im, cfg);
  EXPECT_TRUE(plan.defended[0]);
  EXPECT_TRUE(plan.defended[1]);
  EXPECT_FALSE(plan.defended[2]);
  EXPECT_NEAR(plan.undefended_return, 100.0, kTol);
  EXPECT_NEAR(plan.follower_return, 10.0, kTol);
  EXPECT_EQ(plan.rounds, 2);
}

TEST(Stackelberg, StopsWhenNoCommitmentHelps) {
  // One valuable target; once covered, the rest are worthless: spending
  // must stop even though budget remains.
  auto im = make_im({{100.0, -5.0, -7.0}});
  StackelbergConfig cfg;
  cfg.adversary.max_targets = 2;
  cfg.defense_cost = 1.0;
  cfg.budget = 3.0;
  auto plan = stackelberg_defense(im, cfg);
  EXPECT_TRUE(plan.defended[0]);
  EXPECT_EQ(plan.rounds, 1);
  EXPECT_NEAR(plan.spending, 1.0, kTol);
  EXPECT_NEAR(plan.follower_return, 0.0, kTol);
}

TEST(Stackelberg, ZeroBudgetDoesNothing) {
  auto im = make_im({{100.0}});
  StackelbergConfig cfg;
  cfg.adversary.max_targets = 1;
  cfg.defense_cost = 5.0;
  cfg.budget = 0.0;
  auto plan = stackelberg_defense(im, cfg);
  EXPECT_EQ(plan.rounds, 0);
  EXPECT_NEAR(plan.follower_return, plan.undefended_return, kTol);
}

TEST(Stackelberg, AnticipatesFollowerShift) {
  // Static defense guided by the *initial* attack would defend target 0
  // only; the Stackelberg leader sees the follower shift to target 1 of
  // near-equal value and covers both within budget.
  auto im = make_im({{100.0, 99.0, 1.0}});
  StackelbergConfig cfg;
  cfg.adversary.max_targets = 1;
  cfg.defense_cost = 1.0;
  cfg.budget = 2.0;
  auto plan = stackelberg_defense(im, cfg);
  EXPECT_TRUE(plan.defended[0]);
  EXPECT_TRUE(plan.defended[1]);
  EXPECT_NEAR(plan.follower_return, 1.0, kTol);
}

TEST(Stackelberg, MultiTargetFollower) {
  // Follower takes two targets; leader with budget 2 should remove the two
  // most valuable, leaving the follower the tail.
  auto im = make_im({{60.0, 50.0, 40.0, 30.0}});
  StackelbergConfig cfg;
  cfg.adversary.max_targets = 2;
  cfg.defense_cost = 1.0;
  cfg.budget = 2.0;
  auto plan = stackelberg_defense(im, cfg);
  EXPECT_NEAR(plan.undefended_return, 110.0, kTol);
  EXPECT_NEAR(plan.follower_return, 70.0, kTol);  // 40 + 30 remain
}

TEST(Stackelberg, MitigationBelowOneKeepsResidualValue) {
  auto im = make_im({{100.0}});
  StackelbergConfig cfg;
  cfg.adversary.max_targets = 1;
  cfg.defense_cost = 1.0;
  cfg.budget = 1.0;
  cfg.mitigation = 0.7;
  auto plan = stackelberg_defense(im, cfg);
  EXPECT_TRUE(plan.defended[0]);
  EXPECT_NEAR(plan.follower_return, 30.0, kTol);
}

}  // namespace
}  // namespace gridsec::core
