// Tests for the strategic adversary (Eqs 8-11).
#include "gridsec/core/adversary.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gridsec/util/rng.hpp"

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

// Hand-built impact matrices (actors x targets).
cps::ImpactMatrix make_im(std::initializer_list<std::initializer_list<double>> rows) {
  const int na = static_cast<int>(rows.size());
  const int nt = static_cast<int>(rows.begin()->size());
  cps::ImpactMatrix im(na, nt);
  int a = 0;
  for (const auto& row : rows) {
    int t = 0;
    for (double v : row) im.set(a, t++, v);
    ++a;
  }
  return im;
}

TEST(Adversary, PicksSingleProfitableTarget) {
  // Target 0 profits actor 0 by 100 and hurts actor 1 by 120.
  auto im = make_im({{100.0, -5.0}, {-120.0, -5.0}});
  StrategicAdversary sa;
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.targets, (std::vector<int>{0}));
  EXPECT_EQ(plan.actors, (std::vector<int>{0}));
  EXPECT_NEAR(plan.anticipated_return, 100.0, kTol);
}

TEST(Adversary, EmptyAttackWhenNothingProfits) {
  // Every impact negative: the rational SA stays home.
  auto im = make_im({{-10.0, -5.0}, {-20.0, -1.0}});
  StrategicAdversary sa;
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  EXPECT_TRUE(plan.targets.empty());
  EXPECT_NEAR(plan.anticipated_return, 0.0, kTol);
}

TEST(Adversary, ActorSetSharedAcrossTargets) {
  // Taking actor 0's position pays on target 0 (+100) but costs on target 1
  // (-80); target 1 pays actor 1 (+90). Attacking both targets while holding
  // both actors: 100 - 80 + 90 - 30(say actor1 on t0)...
  auto im = make_im({{100.0, -80.0}, {-30.0, 90.0}});
  StrategicAdversary sa;
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  // Candidates: {t0, A0} = 100; {t1, A1} = 90; {t0,t1}: A0 swing 20,
  // A1 swing 60 -> 80. Best: single target 0 with actor 0 = 100.
  EXPECT_EQ(plan.targets, (std::vector<int>{0}));
  EXPECT_NEAR(plan.anticipated_return, 100.0, kTol);
}

TEST(Adversary, AttackCostsDeterTargets) {
  auto im = make_im({{50.0, 40.0}});
  AdversaryConfig cfg;
  cfg.attack_cost = {45.0, 45.0};
  StrategicAdversary sa(cfg);
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  // Each target nets only 5 / -5; target 0 nets 5, target 1 nets -5.
  EXPECT_EQ(plan.targets, (std::vector<int>{0}));
  EXPECT_NEAR(plan.anticipated_return, 5.0, kTol);
}

TEST(Adversary, BudgetConstrainsSelection) {
  auto im = make_im({{60.0, 50.0, 40.0}});
  AdversaryConfig cfg;
  cfg.attack_cost = {10.0, 10.0, 10.0};
  cfg.budget = 20.0;  // only two attacks affordable
  StrategicAdversary sa(cfg);
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.targets.size(), 2u);
  EXPECT_TRUE(plan.attacks(0));
  EXPECT_TRUE(plan.attacks(1));
  EXPECT_NEAR(plan.anticipated_return, 60.0 + 50.0 - 20.0, kTol);
}

TEST(Adversary, MaxTargetsCap) {
  auto im = make_im({{60.0, 50.0, 40.0, 30.0}});
  AdversaryConfig cfg;
  cfg.max_targets = 2;
  StrategicAdversary sa(cfg);
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.targets.size(), 2u);
  EXPECT_NEAR(plan.anticipated_return, 110.0, kTol);
}

TEST(Adversary, SuccessProbabilityScalesValue) {
  auto im = make_im({{100.0, 0.0}, {0.0, 90.0}});
  AdversaryConfig cfg;
  cfg.success_prob = {0.5, 1.0};
  cfg.max_targets = 1;
  StrategicAdversary sa(cfg);
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  // Target 0 is worth 50 after Ps; target 1 is worth 90.
  EXPECT_EQ(plan.targets, (std::vector<int>{1}));
  EXPECT_NEAR(plan.anticipated_return, 90.0, kTol);
}

TEST(Adversary, AllActorsImpliesEmptyTargetSet) {
  // §II-E3: if A must effectively be every actor, the system being at the
  // social-welfare optimum means no attack profits. Model: every target's
  // column sums negative, and every actor is hit identically so taking all
  // positions is the only way to "cover" — SA should abstain.
  auto im = make_im({{-30.0, 10.0}, {10.0, -30.0}});
  StrategicAdversary sa;
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  // t0 with A1 = +10; t1 with A0 = +10; both targets with both actors:
  // A0: -20, A1: -20 -> 0. Best single: 10.
  EXPECT_NEAR(plan.anticipated_return, 10.0, kTol);
  EXPECT_EQ(plan.targets.size(), 1u);
}

TEST(Adversary, EnumerationMatchesMilpHandCase) {
  auto im = make_im({{100.0, -80.0, 20.0},
                     {-30.0, 90.0, 15.0},
                     {-10.0, -10.0, -50.0}});
  AdversaryConfig cfg;
  cfg.attack_cost = {12.0, 9.0, 3.0};
  cfg.budget = 21.0;
  StrategicAdversary sa(cfg);
  auto milp = sa.plan(im);
  auto enumerated = sa.plan_enumerate(im);
  ASSERT_TRUE(milp.optimal());
  EXPECT_NEAR(milp.anticipated_return, enumerated.anticipated_return, kTol);
}

TEST(Adversary, GreedyNeverBeatsExact) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    cps::ImpactMatrix im(3, 6);
    for (int a = 0; a < 3; ++a) {
      for (int t = 0; t < 6; ++t) {
        im.set(a, t, rng.uniform(-50.0, 50.0));
      }
    }
    AdversaryConfig cfg;
    cfg.max_targets = 3;
    StrategicAdversary sa(cfg);
    auto exact = sa.plan(im);
    auto greedy = sa.plan_greedy(im);
    ASSERT_TRUE(exact.optimal());
    EXPECT_LE(greedy.anticipated_return, exact.anticipated_return + kTol);
    EXPECT_GE(greedy.anticipated_return, -kTol);  // greedy never loses money
  }
}

// Randomized cross-validation: MILP == exhaustive enumeration.
class AdversaryMilpVsEnum : public ::testing::TestWithParam<int> {};

TEST_P(AdversaryMilpVsEnum, Agree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const int na = 2 + static_cast<int>(rng.uniform_index(3));
  const int nt = 4 + static_cast<int>(rng.uniform_index(5));
  cps::ImpactMatrix im(na, nt);
  for (int a = 0; a < na; ++a) {
    for (int t = 0; t < nt; ++t) {
      // Sparse-ish, like real impact matrices.
      im.set(a, t, rng.bernoulli(0.6) ? rng.uniform(-40.0, 40.0) : 0.0);
    }
  }
  AdversaryConfig cfg;
  cfg.max_targets = 3;
  if (rng.bernoulli(0.5)) {
    cfg.attack_cost.resize(static_cast<std::size_t>(nt));
    for (auto& c : cfg.attack_cost) c = rng.uniform(0.0, 10.0);
    cfg.budget = rng.uniform(5.0, 25.0);
  }
  StrategicAdversary sa(cfg);
  auto milp = sa.plan(im);
  auto enumerated = sa.plan_enumerate(im);
  ASSERT_TRUE(milp.optimal());
  EXPECT_NEAR(milp.anticipated_return, enumerated.anticipated_return, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryMilpVsEnum, ::testing::Range(0, 20));

TEST(Adversary, NodeBudgetFallsBackToFeasiblePlan) {
  // A dense matrix with a tiny node budget: the search cannot prove
  // optimality, but the returned plan must be feasible, at least as good
  // as greedy, and flagged kIterationLimit.
  Rng rng(7);
  cps::ImpactMatrix im(4, 20);
  for (int a = 0; a < 4; ++a) {
    for (int t = 0; t < 20; ++t) im.set(a, t, rng.uniform(-20.0, 20.0));
  }
  AdversaryConfig cfg;
  cfg.max_targets = 6;
  cfg.max_nodes = 3;
  StrategicAdversary sa(cfg);
  auto plan = sa.plan(im);
  EXPECT_EQ(plan.status, lp::SolveStatus::kIterationLimit);
  EXPECT_LE(static_cast<int>(plan.targets.size()), 6);
  auto greedy = sa.plan_greedy(im);
  EXPECT_GE(plan.anticipated_return, greedy.anticipated_return - kTol);
}

TEST(RandomAttack, RespectsCardinalityAndBudget) {
  auto im = make_im({{10.0, 20.0, 30.0, 40.0, 50.0}});
  AdversaryConfig cfg;
  cfg.max_targets = 2;
  cfg.attack_cost = {5.0, 5.0, 5.0, 5.0, 5.0};
  cfg.budget = 5.0;  // only one affordable despite the cap of 2
  Rng rng(3);
  auto plan = random_attack_plan(im, cfg, rng);
  EXPECT_EQ(plan.targets.size(), 1u);
}

TEST(RandomAttack, NeverBeatsStrategicPlan) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    cps::ImpactMatrix im(3, 8);
    for (int a = 0; a < 3; ++a) {
      for (int t = 0; t < 8; ++t) im.set(a, t, rng.uniform(-40.0, 40.0));
    }
    AdversaryConfig cfg;
    cfg.max_targets = 3;
    StrategicAdversary sa(cfg);
    auto strategic = sa.plan(im);
    auto random = random_attack_plan(im, cfg, rng);
    EXPECT_LE(random.anticipated_return,
              strategic.anticipated_return + kTol);
  }
}

TEST(RandomAttack, DeterministicPerSeed) {
  auto im = make_im({{1.0, 2.0, 3.0, 4.0}});
  AdversaryConfig cfg;
  cfg.max_targets = 2;
  Rng a(5), b(5);
  auto pa = random_attack_plan(im, cfg, a);
  auto pb = random_attack_plan(im, cfg, b);
  EXPECT_EQ(pa.targets, pb.targets);
}

TEST(RealizedReturn, MatchesAnticipatedOnTruth) {
  auto im = make_im({{100.0, -80.0}, {-30.0, 90.0}});
  StrategicAdversary sa;
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  EXPECT_NEAR(realized_return(im, plan, sa.config()),
              plan.anticipated_return, kTol);
}

TEST(RealizedReturn, DegradesOnDifferentTruth) {
  auto believed = make_im({{100.0, 0.0}});
  auto truth = make_im({{10.0, 0.0}});
  StrategicAdversary sa;
  auto plan = sa.plan(believed);
  ASSERT_TRUE(plan.optimal());
  EXPECT_NEAR(plan.anticipated_return, 100.0, kTol);
  EXPECT_NEAR(realized_return(truth, plan, sa.config()), 10.0, kTol);
}

TEST(RealizedReturn, EmptyPlanIsZero) {
  auto im = make_im({{-1.0}});
  AttackPlan plan;
  plan.status = lp::SolveStatus::kOptimal;
  EXPECT_DOUBLE_EQ(realized_return(im, plan, {}), 0.0);
}

}  // namespace
}  // namespace gridsec::core
