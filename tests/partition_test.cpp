// Tests for the divide-and-conquer strategic adversary (§II-E4).
#include "gridsec/core/partition.hpp"

#include <gtest/gtest.h>

#include "gridsec/util/rng.hpp"

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

TEST(PartitionImpact, BlockDiagonalSplits) {
  // Actors {0,1} interact with targets {0,1}; actor 2 with target 2.
  cps::ImpactMatrix im(3, 3);
  im.set(0, 0, 10.0);
  im.set(1, 0, -5.0);
  im.set(0, 1, -2.0);
  im.set(2, 2, 7.0);
  auto parts = partition_impact(im);
  EXPECT_EQ(parts.num_components, 2);
  EXPECT_EQ(parts.component_of_target[0], parts.component_of_target[1]);
  EXPECT_NE(parts.component_of_target[0], parts.component_of_target[2]);
  EXPECT_EQ(parts.component_of_actor[0], parts.component_of_actor[1]);
  EXPECT_EQ(parts.component_of_actor[2], parts.component_of_target[2]);
}

TEST(PartitionImpact, ZeroColumnsAreIsolated) {
  cps::ImpactMatrix im(2, 3);
  im.set(0, 0, 1.0);
  // target 1 touches nobody; target 2 touches actor 1.
  im.set(1, 2, -1.0);
  auto parts = partition_impact(im);
  EXPECT_EQ(parts.component_of_target[1], -1);
  EXPECT_EQ(parts.num_components, 2);
}

TEST(PartitionImpact, FullyCoupledIsOneComponent) {
  cps::ImpactMatrix im(2, 2);
  for (int a = 0; a < 2; ++a) {
    for (int t = 0; t < 2; ++t) im.set(a, t, 1.0);
  }
  auto parts = partition_impact(im);
  EXPECT_EQ(parts.num_components, 1);
}

TEST(PartitionImpact, MemberListsConsistent) {
  cps::ImpactMatrix im(3, 4);
  im.set(0, 0, 1.0);
  im.set(1, 1, 1.0);
  im.set(2, 2, 1.0);
  im.set(2, 3, 1.0);
  auto parts = partition_impact(im);
  ASSERT_EQ(parts.num_components, 3);
  int total_targets = 0;
  for (int c = 0; c < parts.num_components; ++c) {
    total_targets += static_cast<int>(parts.targets_in(c).size());
    EXPECT_EQ(parts.actors_in(c).size(), 1u);
  }
  EXPECT_EQ(total_targets, 4);
}

TEST(PlanPartitioned, MatchesMonolithicOnBlockDiagonal) {
  // Two independent 2x2 blocks with distinct values.
  cps::ImpactMatrix im(4, 4);
  im.set(0, 0, 50.0);
  im.set(1, 0, -20.0);
  im.set(0, 1, -10.0);
  im.set(1, 1, 30.0);
  im.set(2, 2, 40.0);
  im.set(3, 2, -5.0);
  im.set(2, 3, -15.0);
  im.set(3, 3, 25.0);
  AdversaryConfig cfg;
  cfg.max_targets = 2;
  StrategicAdversary sa(cfg);
  auto mono = sa.plan(im);
  auto part = plan_partitioned(im, cfg);
  ASSERT_TRUE(mono.optimal());
  EXPECT_NEAR(part.anticipated_return, mono.anticipated_return, kTol);
}

class PartitionedVsMonolithic : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedVsMonolithic, AgreeOnRandomBlockMatrices) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  // 2-4 independent blocks of 2x3 each.
  const int blocks = 2 + static_cast<int>(rng.uniform_index(3));
  const int na = blocks * 2;
  const int nt = blocks * 3;
  cps::ImpactMatrix im(na, nt);
  for (int b = 0; b < blocks; ++b) {
    for (int a = 0; a < 2; ++a) {
      for (int t = 0; t < 3; ++t) {
        if (rng.bernoulli(0.7)) {
          im.set(b * 2 + a, b * 3 + t, rng.uniform(-30.0, 30.0));
        }
      }
    }
  }
  AdversaryConfig cfg;
  cfg.max_targets = 1 + static_cast<int>(rng.uniform_index(4));
  StrategicAdversary sa(cfg);
  auto mono = sa.plan(im);
  auto part = plan_partitioned(im, cfg);
  ASSERT_TRUE(mono.optimal());
  EXPECT_NEAR(part.anticipated_return, mono.anticipated_return, kTol)
      << "blocks=" << blocks << " cap=" << cfg.max_targets;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedVsMonolithic,
                         ::testing::Range(0, 15));

TEST(PlanPartitioned, UniformCostsAndBudgetRespected) {
  cps::ImpactMatrix im(2, 4);
  im.set(0, 0, 50.0);
  im.set(0, 1, 40.0);
  im.set(1, 2, 30.0);
  im.set(1, 3, 20.0);
  AdversaryConfig cfg;
  cfg.max_targets = 4;
  cfg.attack_cost.assign(4, 10.0);
  cfg.budget = 20.0;  // two attacks affordable
  auto part = plan_partitioned(im, cfg);
  EXPECT_EQ(part.targets.size(), 2u);
  EXPECT_NEAR(part.anticipated_return, 50.0 + 40.0 - 20.0, kTol);
}

TEST(PlanPartitioned, EmptyWhenNothingProfits) {
  cps::ImpactMatrix im(2, 2);
  im.set(0, 0, -1.0);
  im.set(1, 1, -1.0);
  AdversaryConfig cfg;
  cfg.max_targets = 2;
  auto part = plan_partitioned(im, cfg);
  EXPECT_TRUE(part.targets.empty());
  EXPECT_NEAR(part.anticipated_return, 0.0, kTol);
}

}  // namespace
}  // namespace gridsec::core
