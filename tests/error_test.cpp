// Tests for the shared error vocabulary: ErrorCode/Status/StatusOr and the
// lp::SolveStatus bridge (to_status, is_budget_limited).
#include "gridsec/util/error.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gridsec/lp/problem.hpp"

namespace gridsec {
namespace {

TEST(ErrorCode, ToStringCoversEveryCode) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "OK");
  EXPECT_EQ(to_string(ErrorCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(to_string(ErrorCode::kInfeasible), "INFEASIBLE");
  EXPECT_EQ(to_string(ErrorCode::kUnbounded), "UNBOUNDED");
  EXPECT_EQ(to_string(ErrorCode::kIterationLimit), "ITERATION_LIMIT");
  EXPECT_EQ(to_string(ErrorCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(to_string(ErrorCode::kInternal), "INTERNAL");
  EXPECT_EQ(to_string(ErrorCode::kTimeLimit), "TIME_LIMIT");
  EXPECT_EQ(to_string(ErrorCode::kNumericalError), "NUMERICAL_ERROR");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    ErrorCode code;
  };
  const Case cases[] = {
      {Status::invalid_argument("m"), ErrorCode::kInvalidArgument},
      {Status::infeasible("m"), ErrorCode::kInfeasible},
      {Status::unbounded("m"), ErrorCode::kUnbounded},
      {Status::iteration_limit("m"), ErrorCode::kIterationLimit},
      {Status::not_found("m"), ErrorCode::kNotFound},
      {Status::internal("m"), ErrorCode::kInternal},
      {Status::time_limit("m"), ErrorCode::kTimeLimit},
      {Status::numerical_error("m"), ErrorCode::kNumericalError},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.is_ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    // "<CODE>: <message>" for logs.
    EXPECT_EQ(c.status.to_string(),
              std::string(to_string(c.code)) + ": m");
  }
}

TEST(StatusOr, HoldsValueOnSuccess) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(v.status().is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsStatusOnFailure) {
  StatusOr<int> v(Status::infeasible("no point"));
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInfeasible);
  EXPECT_EQ(v.status().message(), "no point");
}

TEST(StatusOr, ArrowDereferencesValue) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

using StatusOrDeathTest = ::testing::Test;

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v(Status::internal("boom"));
  EXPECT_DEATH((void)v.value(), "StatusOr::value\\(\\) on error state");
}

TEST(StatusOrDeathTest, DerefOnErrorAborts) {
  StatusOr<int> v(Status::internal("boom"));
  EXPECT_DEATH((void)*v, "StatusOr::operator\\* on error state");
}

TEST(StatusOrDeathTest, ArrowOnErrorAborts) {
  StatusOr<std::string> v(Status::internal("boom"));
  EXPECT_DEATH((void)v->size(), "StatusOr::operator-> on error state");
}

TEST(SolveStatus, ToStringCoversEveryVerdict) {
  using lp::SolveStatus;
  EXPECT_EQ(lp::to_string(SolveStatus::kOptimal), "OPTIMAL");
  EXPECT_EQ(lp::to_string(SolveStatus::kInfeasible), "INFEASIBLE");
  EXPECT_EQ(lp::to_string(SolveStatus::kUnbounded), "UNBOUNDED");
  EXPECT_EQ(lp::to_string(SolveStatus::kIterationLimit), "ITERATION_LIMIT");
  EXPECT_EQ(lp::to_string(SolveStatus::kTimeLimit), "TIME_LIMIT");
  EXPECT_EQ(lp::to_string(SolveStatus::kNumericalError), "NUMERICAL_ERROR");
}

TEST(SolveStatus, ToStatusMapsEveryVerdict) {
  using lp::SolveStatus;
  EXPECT_TRUE(lp::to_status(SolveStatus::kOptimal, "ctx").is_ok());
  EXPECT_EQ(lp::to_status(SolveStatus::kInfeasible, "ctx").code(),
            ErrorCode::kInfeasible);
  EXPECT_EQ(lp::to_status(SolveStatus::kUnbounded, "ctx").code(),
            ErrorCode::kUnbounded);
  EXPECT_EQ(lp::to_status(SolveStatus::kIterationLimit, "ctx").code(),
            ErrorCode::kIterationLimit);
  EXPECT_EQ(lp::to_status(SolveStatus::kTimeLimit, "ctx").code(),
            ErrorCode::kTimeLimit);
  EXPECT_EQ(lp::to_status(SolveStatus::kNumericalError, "ctx").code(),
            ErrorCode::kNumericalError);
  // The context prefixes the message so callers can trace the source.
  EXPECT_NE(lp::to_status(SolveStatus::kInfeasible, "solve_milp")
                .message()
                .find("solve_milp"),
            std::string::npos);
}

TEST(SolveStatus, BudgetLimitedVsPathology) {
  using lp::SolveStatus;
  // Budget exhaustion: the incumbent (if any) is feasible, just unproven.
  EXPECT_TRUE(lp::is_budget_limited(SolveStatus::kIterationLimit));
  EXPECT_TRUE(lp::is_budget_limited(SolveStatus::kTimeLimit));
  // Pathologies: no usable point.
  EXPECT_FALSE(lp::is_budget_limited(SolveStatus::kOptimal));
  EXPECT_FALSE(lp::is_budget_limited(SolveStatus::kInfeasible));
  EXPECT_FALSE(lp::is_budget_limited(SolveStatus::kUnbounded));
  EXPECT_FALSE(lp::is_budget_limited(SolveStatus::kNumericalError));
}

}  // namespace
}  // namespace gridsec
