// Tests for the allocation-free hot path: util::Arena (bump allocation,
// high-water recycling, GRIDSEC_ARENA_POISON), lp::SolverWorkspace
// (solve → reset → solve bit-identical reuse across the simplex, MILP
// branch-and-bound, and the numerical-recovery ladder), and per-worker
// workspace isolation on the thread pool.
//
// The WorkspaceConcurrency suite runs under TSan in CI: thread-pool
// workers each own a scratch-slot workspace, and concurrent solves must
// never share one.
#include "gridsec/lp/workspace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/lp/lp_io.hpp"
#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/solver_events.hpp"
#include "gridsec/robust/recovery.hpp"
#include "gridsec/util/arena.hpp"
#include "gridsec/util/thread_pool.hpp"

#ifndef GRIDSEC_ILLCOND_DIR
#define GRIDSEC_ILLCOND_DIR "tests/data/illcond"
#endif

#if defined(__SANITIZE_ADDRESS__)
#define GRIDSEC_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRIDSEC_TEST_ASAN 1
#endif
#endif

namespace gridsec {
namespace {

// Arm the poison mode before main() — the flag is read once per process,
// on the first arena operation, so a static initializer is early enough.
const bool g_poison_armed = [] {
#ifdef _WIN32
  _putenv_s("GRIDSEC_ARENA_POISON", "1");
#else
  setenv("GRIDSEC_ARENA_POISON", "1", 1);
#endif
  return true;
}();

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, BumpAllocationAndAlignment) {
  util::Arena arena;
  auto* a = arena.allocate(3, 1);
  auto* b = arena.allocate(8, 8);
  auto* c = arena.allocate(64, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  const auto s = arena.stats();
  EXPECT_GE(s.used, 3u + 8u + 64u);
  EXPECT_GE(s.capacity, s.used);
}

TEST(ArenaTest, ResetConsolidatesToOneHighWaterBlock) {
  util::Arena arena;
  // Force several growth blocks.
  for (int i = 0; i < 40; ++i) arena.allocate(1024);
  const auto grown = arena.stats();
  EXPECT_GE(grown.blocks, 2u);
  EXPECT_EQ(grown.high_water, grown.used);

  arena.reset();
  const auto recycled = arena.stats();
  EXPECT_EQ(recycled.blocks, 1u);
  EXPECT_EQ(recycled.used, 0u);
  EXPECT_GE(recycled.capacity, grown.high_water);

  // Steady state: the same allocation pattern fits the one block — no new
  // heap blocks, ever again.
  const std::size_t block_allocs = recycled.block_allocations;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 40; ++i) arena.allocate(1024);
    arena.reset();
  }
  const auto steady = arena.stats();
  EXPECT_EQ(steady.block_allocations, block_allocs);
  EXPECT_EQ(steady.blocks, 1u);
}

TEST(ArenaTest, ReleaseDropsAllCapacity) {
  util::Arena arena;
  arena.allocate(4096);
  arena.release();
  const auto s = arena.stats();
  EXPECT_EQ(s.capacity, 0u);
  EXPECT_EQ(s.blocks, 0u);
  // And the arena is reusable afterwards.
  EXPECT_NE(arena.allocate(16), nullptr);
}

TEST(ArenaTest, AllocateSpanCarvesTypedElements) {
  util::Arena arena;
  auto ints = arena.allocate_span<int>(100);
  ASSERT_EQ(ints.size(), 100u);
  for (std::size_t i = 0; i < ints.size(); ++i) {
    ints[i] = static_cast<int>(i);
  }
  auto doubles = arena.allocate_span<double>(50);
  ASSERT_EQ(doubles.size(), 50u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                alignof(double),
            0u);
  // The int span is untouched by the later carve.
  for (std::size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(ints[i], static_cast<int>(i));
  }
  EXPECT_TRUE(arena.allocate_span<char>(0).empty());
}

TEST(ArenaTest, ArenaAllocatorBacksStlContainers) {
  util::Arena arena;
  std::vector<int, util::ArenaAllocator<int>> v{
      util::ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
  EXPECT_GE(arena.stats().used, 1000u * sizeof(int));
}

TEST(ArenaTest, PoisonModeFillsRecycledMemory) {
  ASSERT_TRUE(g_poison_armed);
  ASSERT_TRUE(util::Arena::poison_enabled());
  util::Arena arena;
  auto span = arena.allocate_span<unsigned char>(64);
  std::memset(span.data(), 0xFF, span.size());
  arena.reset();
#ifndef GRIDSEC_TEST_ASAN
  // Without ASan the recycled bytes are readable and must carry the 0xA5
  // fill; under ASan the region is poisoned and reading it would (rightly)
  // abort, which is the stronger version of this assertion.
  auto again = arena.allocate_span<unsigned char>(64);
  for (const unsigned char b : again) {
    ASSERT_EQ(b, 0xA5);
  }
#endif
}

// ---------------------------------------------------------------------------
// Workspace reuse: solve → reset → solve must be bit-identical to a fresh
// workspace (the determinism contract of the arena refactor).

// Dense-enough LP to force a non-trivial pivot sequence.
lp::Problem pivoty_lp() {
  lp::Problem p(lp::Objective::kMinimize);
  for (int j = 0; j < 8; ++j) {
    p.add_variable("x" + std::to_string(j), 0.0, 10.0 + j,
                   (j % 3 == 0 ? -1.0 : 1.0) * (1.0 + 0.25 * j));
  }
  for (int i = 0; i < 6; ++i) {
    lp::LinearExpr row;
    for (int j = 0; j < 8; ++j) {
      row.add(j, ((i + j) % 4) - 1.5);
    }
    p.add_constraint("r" + std::to_string(i), std::move(row),
                     i % 2 == 0 ? lp::Sense::kLessEqual
                                : lp::Sense::kGreaterEqual,
                     i % 2 == 0 ? 20.0 + i : -5.0 - i);
  }
  return p;
}

void expect_bit_identical(const lp::Solution& a, const lp::Solution& b) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.objective, b.objective);  // exact, not NEAR: bit-identical
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
  ASSERT_EQ(a.duals.size(), b.duals.size());
  for (std::size_t i = 0; i < a.duals.size(); ++i) {
    EXPECT_EQ(a.duals[i], b.duals[i]);
  }
  ASSERT_EQ(a.reduced_costs.size(), b.reduced_costs.size());
  for (std::size_t i = 0; i < a.reduced_costs.size(); ++i) {
    EXPECT_EQ(a.reduced_costs[i], b.reduced_costs[i]);
  }
  EXPECT_EQ(lp::to_string(a.basis), lp::to_string(b.basis));
}

TEST(SolverWorkspaceTest, SolveResetSolveBitIdenticalToFreshWorkspace) {
  const lp::Problem p = pivoty_lp();

  lp::SolverWorkspace fresh;
  lp::SimplexOptions opt;
  opt.workspace = &fresh;
  const lp::Solution reference = lp::solve_lp(p, opt);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  lp::SolverWorkspace reused;
  opt.workspace = &reused;
  const lp::Solution first = lp::solve_lp(p, opt);
  reused.reset();
  const lp::Solution after_reset = lp::solve_lp(p, opt);
  const lp::Solution warm_reuse = lp::solve_lp(p, opt);  // no reset at all

  expect_bit_identical(reference, first);
  expect_bit_identical(reference, after_reset);
  expect_bit_identical(reference, warm_reuse);
}

TEST(SolverWorkspaceTest, EventStreamIdenticalAcrossReuse) {
  const lp::Problem p = pivoty_lp();
  struct Ev {
    long iteration;
    int phase, entering, leaving;
    double step;
    bool bound_flip, degenerate;
  };
  const auto run = [&](lp::SolverWorkspace* ws) {
    std::vector<Ev> events;
    lp::SimplexOptions opt;
    opt.workspace = ws;
    opt.observer = [&events](const obs::SimplexIterationEvent& e) {
      events.push_back({e.iteration, e.phase, e.entering, e.leaving, e.step,
                        e.bound_flip, e.degenerate});
    };
    const lp::Solution sol = lp::solve_lp(p, opt);
    EXPECT_EQ(sol.status, lp::SolveStatus::kOptimal);
    return events;
  };

  lp::SolverWorkspace fresh;
  const std::vector<Ev> reference = run(&fresh);
  ASSERT_FALSE(reference.empty());

  lp::SolverWorkspace reused;
  (void)run(&reused);
  reused.reset();
  const std::vector<Ev> replay = run(&reused);

  ASSERT_EQ(reference.size(), replay.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].iteration, replay[i].iteration);
    EXPECT_EQ(reference[i].phase, replay[i].phase);
    EXPECT_EQ(reference[i].entering, replay[i].entering);
    EXPECT_EQ(reference[i].leaving, replay[i].leaving);
    EXPECT_EQ(reference[i].step, replay[i].step);
    EXPECT_EQ(reference[i].bound_flip, replay[i].bound_flip);
    EXPECT_EQ(reference[i].degenerate, replay[i].degenerate);
  }
}

TEST(SolverWorkspaceTest, SteadyStateBindsWithoutGrowingTheArena) {
  const lp::Problem p = pivoty_lp();
  lp::SolverWorkspace ws;
  lp::SimplexOptions opt;
  opt.workspace = &ws;

  ASSERT_EQ(lp::solve_lp(p, opt).status, lp::SolveStatus::kOptimal);
  const auto s1 = ws.stats();
  ASSERT_EQ(lp::solve_lp(p, opt).status, lp::SolveStatus::kOptimal);
  const auto warm = ws.stats();
  const long binds_per_solve = warm.binds - s1.binds;
  EXPECT_GT(binds_per_solve, 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(lp::solve_lp(p, opt).status, lp::SolveStatus::kOptimal);
  }
  const auto steady = ws.stats();
  EXPECT_EQ(steady.binds, warm.binds + 5 * binds_per_solve);
  // The arena stopped growing once it saw the problem shape.
  EXPECT_EQ(steady.arena_capacity, warm.arena_capacity);
  EXPECT_EQ(steady.arena_high_water, warm.arena_high_water);
}

TEST(SolverWorkspaceTest, MilpReuseBitIdenticalAcrossReset) {
  // Small knapsack-style MILP: enough branching for dozens of node
  // relaxations through one workspace.
  lp::Problem p(lp::Objective::kMaximize);
  const double values[] = {5.0, 7.0, 3.0, 9.0, 4.0, 6.0};
  const double weights[] = {2.0, 3.0, 1.0, 4.0, 2.0, 3.0};
  lp::LinearExpr knap;
  for (int j = 0; j < 6; ++j) {
    p.add_binary("b" + std::to_string(j), values[j]);
    knap.add(j, weights[j]);
  }
  p.add_constraint("capacity", std::move(knap), lp::Sense::kLessEqual, 7.5);

  lp::BranchAndBoundOptions options;
  lp::SolverWorkspace ws;
  options.lp_options.workspace = &ws;

  const lp::Solution reference = lp::BranchAndBoundSolver(options).solve(p);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  ASSERT_GT(reference.bnb.lp_solves, 1);

  ws.reset();
  const lp::Solution replay = lp::BranchAndBoundSolver(options).solve(p);
  ASSERT_EQ(replay.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(reference.objective, replay.objective);
  EXPECT_EQ(reference.bnb.nodes_explored, replay.bnb.nodes_explored);
  EXPECT_EQ(reference.bnb.lp_solves, replay.bnb.lp_solves);
  ASSERT_EQ(reference.x.size(), replay.x.size());
  for (std::size_t i = 0; i < reference.x.size(); ++i) {
    EXPECT_EQ(reference.x[i], replay.x[i]);
  }
}

TEST(SolverWorkspaceTest, RecoveryLadderReuseBitIdentical) {
  // An ill-conditioned corpus LP drives the full ladder (all rungs run
  // through the same thread workspace, sequentially). Two engagements
  // must produce identical certified answers and identical trails.
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GRIDSEC_ILLCOND_DIR)) {
    if (entry.path().extension() == ".lp") {
      files.push_back(entry.path().string());
    }
  }
  ASSERT_FALSE(files.empty());
  std::sort(files.begin(), files.end());
  auto parsed = lp::read_lp_file(files.front());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

  const robust::RecoveryPolicy policy = robust::RecoveryPolicy::ladder();
  const lp::Solution a = robust::solve_with_recovery(parsed.value(), {},
                                                     policy);
  const lp::Solution b = robust::solve_with_recovery(parsed.value(), {},
                                                     policy);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.objective, b.objective);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
  ASSERT_EQ(a.recovery_trail.size(), b.recovery_trail.size());
  for (std::size_t i = 0; i < a.recovery_trail.size(); ++i) {
    EXPECT_EQ(a.recovery_trail[i].rung, b.recovery_trail[i].rung);
    EXPECT_EQ(a.recovery_trail[i].status, b.recovery_trail[i].status);
    EXPECT_EQ(a.recovery_trail[i].certified, b.recovery_trail[i].certified);
  }
}

TEST(SolverWorkspaceTest, NestedSolveFallsBackInsteadOfAliasing) {
  const lp::Problem outer = pivoty_lp();
  lp::Problem inner(lp::Objective::kMinimize);
  inner.add_variable("x", 0.0, 5.0, 1.0);
  lp::LinearExpr row;
  row.add(0, 1.0);
  inner.add_constraint("c", std::move(row), lp::Sense::kGreaterEqual, 1.0);

  obs::Counter& fallbacks =
      obs::default_registry().counter("lp.workspace.nested_fallbacks");
  const std::int64_t before = fallbacks.value();

  const lp::Solution inner_reference = lp::solve_lp(inner);
  bool nested_ran = false;
  lp::SimplexOptions opt;
  opt.observer = [&](const obs::SimplexIterationEvent&) {
    if (nested_ran) return;
    nested_ran = true;
    // This solve starts while the outer solve holds the thread workspace:
    // it must fall back to a private impl, not corrupt the outer tableau.
    const lp::Solution nested = lp::solve_lp(inner);
    EXPECT_EQ(nested.status, lp::SolveStatus::kOptimal);
    EXPECT_EQ(nested.objective, inner_reference.objective);
  };
  const lp::Solution sol = lp::solve_lp(outer, opt);
  EXPECT_EQ(sol.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(nested_ran);
  EXPECT_GT(fallbacks.value(), before);

  // And the outer answer is unaffected by the nested solve.
  lp::SimplexOptions plain;
  expect_bit_identical(lp::solve_lp(outer, plain), sol);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan-covered in CI): per-worker workspaces never alias.

TEST(WorkspaceConcurrency, PoolWorkersSolveOnPrivateWorkspaces) {
  const lp::Problem p = pivoty_lp();
  const lp::Solution reference = lp::solve_lp(p);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  ThreadPool pool(4);
  std::vector<lp::Solution> results(64);
  parallel_for(&pool, results.size(), [&](std::size_t i) {
    // Workers resolve thread_solver_workspace() to their scratch slot;
    // the off-pool caller (serial fallback) uses its thread_local.
    results[i] = lp::solve_lp(p);
  });
  for (const lp::Solution& sol : results) {
    expect_bit_identical(reference, sol);
  }
}

TEST(WorkspaceConcurrency, ExplicitWorkspacesSolveConcurrently) {
  const lp::Problem p = pivoty_lp();
  const lp::Solution reference = lp::solve_lp(p);

  ThreadPool pool(4);
  constexpr std::size_t kThreads = 8;
  std::vector<lp::SolverWorkspace> workspaces(kThreads);
  std::vector<lp::Solution> results(kThreads);
  parallel_for(&pool, kThreads, [&](std::size_t i) {
    lp::SimplexOptions opt;
    opt.workspace = &workspaces[i];
    for (int rep = 0; rep < 4; ++rep) {
      results[i] = lp::solve_lp(p, opt);
      workspaces[i].reset();
    }
  });
  for (const lp::Solution& sol : results) {
    expect_bit_identical(reference, sol);
  }
}

}  // namespace
}  // namespace gridsec
