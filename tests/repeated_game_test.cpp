// Tests for the repeated attack-defense game with defender learning.
#include "gridsec/core/repeated_game.hpp"

#include <gtest/gtest.h>

#include "gridsec/sim/scenario.hpp"

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

RepeatedGameConfig base_config(int n_edges, int n_actors) {
  RepeatedGameConfig cfg;
  cfg.game.adversary.max_targets = 1;
  cfg.game.defender.defense_cost.assign(static_cast<std::size_t>(n_edges),
                                        10.0);
  cfg.game.defender.budget.assign(static_cast<std::size_t>(n_actors), 10.0);
  cfg.game.collaborative = true;
  cfg.rounds = 5;
  return cfg;
}

TEST(RepeatedGame, RunsRequestedRounds) {
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  Rng rng(1);
  auto res = play_repeated_game(net, own, cfg, rng);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res->rounds.size(), 5u);
  EXPECT_EQ(res->final_pa.size(), static_cast<std::size_t>(net.num_edges()));
}

TEST(RepeatedGame, PerfectInformationNeutralizesEveryRound) {
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  Rng rng(2);
  auto res = play_repeated_game(net, own, cfg, rng);
  ASSERT_TRUE(res.is_ok());
  for (const auto& r : res->rounds) {
    EXPECT_NEAR(r.adversary_gain, 0.0, kTol);
    EXPECT_NEAR(r.defender_losses, 0.0, kTol);
  }
}

TEST(RepeatedGame, LearningConcentratesPaOnRepeatedTarget) {
  // The defender starts with a *wrong* model (heavy noise in its own view
  // and Pa estimate), but the adversary attacks the same best target with
  // perfect knowledge each round: the blended Pa must concentrate there.
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  cfg.game.defender_noise.sigma = 0.8;  // badly informed defender
  cfg.game.speculated_adversary_noise.sigma = 0.8;
  cfg.rounds = 12;
  cfg.learning_rate = 0.5;
  Rng rng(3);
  auto res = play_repeated_game(net, own, cfg, rng);
  ASSERT_TRUE(res.is_ok());
  // The SA (perfect knowledge) always hits edge 1 ("dear" generator).
  for (const auto& r : res->rounds) {
    ASSERT_EQ(r.attack.targets.size(), 1u);
    EXPECT_EQ(r.attack.targets[0], 1);
  }
  double max_other = 0.0;
  for (std::size_t t = 0; t < res->final_pa.size(); ++t) {
    if (t != 1) max_other = std::max(max_other, res->final_pa[t]);
  }
  EXPECT_GT(res->final_pa[1], 0.8);
  EXPECT_GT(res->final_pa[1], max_other);
}

TEST(RepeatedGame, LaterRoundsNoWorseWithLearning) {
  // With learning against a stationary attacker, the defender's realized
  // losses in the last round must not exceed the first round's.
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  cfg.game.defender_noise.sigma = 0.8;
  cfg.game.speculated_adversary_noise.sigma = 0.8;
  cfg.rounds = 10;
  cfg.learning_rate = 0.5;
  Rng rng(11);
  auto res = play_repeated_game(net, own, cfg, rng);
  ASSERT_TRUE(res.is_ok());
  EXPECT_GE(res->rounds.back().defender_losses,
            res->rounds.front().defender_losses - kTol);
}

TEST(RepeatedGame, ZeroLearningKeepsModelPa) {
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  cfg.learning_rate = 0.0;
  cfg.rounds = 4;
  Rng rng(5);
  auto res = play_repeated_game(net, own, cfg, rng);
  ASSERT_TRUE(res.is_ok());
  // With zero noise the model Pa is exactly the SA's deterministic target.
  EXPECT_NEAR(res->final_pa[1], 1.0, kTol);
}

TEST(RepeatedGame, DeterministicPerSeed) {
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  cfg.game.adversary_noise.sigma = 0.3;
  Rng a(7), b(7);
  auto ra = play_repeated_game(net, own, cfg, a);
  auto rb = play_repeated_game(net, own, cfg, b);
  ASSERT_TRUE(ra.is_ok());
  ASSERT_TRUE(rb.is_ok());
  EXPECT_DOUBLE_EQ(ra->total_adversary_gain(), rb->total_adversary_gain());
  EXPECT_DOUBLE_EQ(ra->total_defender_losses(),
                   rb->total_defender_losses());
}

TEST(RepeatedGame, TotalsAggregateRounds) {
  flow::Network net = sim::make_duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  auto cfg = base_config(net.num_edges(), 3);
  cfg.game.defender.budget.assign(3, 0.0);  // defenseless: attacks land
  Rng rng(9);
  auto res = play_repeated_game(net, own, cfg, rng);
  ASSERT_TRUE(res.is_ok());
  double gain = 0.0, losses = 0.0;
  for (const auto& r : res->rounds) {
    gain += r.adversary_gain;
    losses += r.defender_losses;
  }
  EXPECT_DOUBLE_EQ(res->total_adversary_gain(), gain);
  EXPECT_DOUBLE_EQ(res->total_defender_losses(), losses);
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(losses, 0.0);
}

}  // namespace
}  // namespace gridsec::core
