// Tests for streaming and batch statistics.
#include "gridsec/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gridsec {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BatchStats, MeanAndVariance) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(BatchStats, PercentileInterpolates) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(BatchStats, PercentileSingleton) {
  std::vector<double> xs{5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 37.0), 5.0);
}

TEST(BatchStats, CorrelationPerfectAndAnti) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(xs, zs), -1.0, 1e-12);
}

TEST(BatchStats, CorrelationOfConstantIsZero) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  std::vector<double> ys{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(correlation(xs, ys), 0.0);
}

TEST(RunningStats, StdErrorShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.std_error(), large.std_error());
}

}  // namespace
}  // namespace gridsec
