// Tests for the defender optimizations (Eqs 12-18) and Pa estimation.
#include "gridsec/core/defender.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

cps::ImpactMatrix make_im(
    std::initializer_list<std::initializer_list<double>> rows) {
  const int na = static_cast<int>(rows.size());
  const int nt = static_cast<int>(rows.begin()->size());
  cps::ImpactMatrix im(na, nt);
  int a = 0;
  for (const auto& row : rows) {
    int t = 0;
    for (double v : row) im.set(a, t++, v);
    ++a;
  }
  return im;
}

TEST(DefendIndividual, DefendsWhenExpectedLossExceedsCost) {
  // Actor 0 owns target 0; expected loss Pa*|I| = 1.0*100 > Cd = 10.
  auto im = make_im({{-100.0}});
  cps::Ownership own({0}, 1);
  DefenderConfig cfg;
  cfg.defense_cost = {10.0};
  cfg.budget = {100.0};
  auto plan = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_TRUE(plan.defended[0]);
  // Objective: -Cd = -10 (loss removed entirely).
  EXPECT_NEAR(plan.objective, -10.0, kTol);
  EXPECT_NEAR(plan.spending[0], 10.0, kTol);
}

TEST(DefendIndividual, SkipsWhenCostExceedsExpectedLoss) {
  // PsPaI < Cd: not worth defending (the paper's decision rule).
  auto im = make_im({{-100.0}});
  cps::Ownership own({0}, 1);
  DefenderConfig cfg;
  cfg.defense_cost = {150.0};
  cfg.budget = {1000.0};
  auto plan = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_FALSE(plan.defended[0]);
  EXPECT_NEAR(plan.objective, -100.0, kTol);  // bears the expected loss
}

TEST(DefendIndividual, AttackProbabilityGatesDecision) {
  auto im = make_im({{-100.0}});
  cps::Ownership own({0}, 1);
  DefenderConfig cfg;
  cfg.defense_cost = {10.0};
  cfg.budget = {100.0};
  // Pa = 0.05: expected loss 5 < cost 10 -> skip.
  auto plan = defend_individual(im, own, std::vector<double>{0.05}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_FALSE(plan.defended[0]);
}

TEST(DefendIndividual, SuccessProbabilityGatesDecision) {
  // Full paper rule Ps·Pa·I > Cd: with Ps = 0.05 the expected loss is
  // 5 < Cd = 10 even at Pa = 1.
  auto im = make_im({{-100.0}});
  cps::Ownership own({0}, 1);
  DefenderConfig cfg;
  cfg.defense_cost = {10.0};
  cfg.budget = {100.0};
  cfg.success_prob = {0.05};
  auto plan = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_FALSE(plan.defended[0]);
  cfg.success_prob = {0.5};  // expected loss 50 > 10 -> defend
  plan = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_TRUE(plan.defended[0]);
}

TEST(DefendCollaborative, SuccessProbabilityScalesExposure) {
  auto im = make_im({{-60.0}, {-40.0}});
  cps::Ownership own({0}, 2);
  DefenderConfig cfg;
  cfg.defense_cost = {80.0};
  cfg.budget = {50.0, 50.0};
  cfg.success_prob = {0.5};  // joint expected loss 50 < 80 -> skip
  auto plan = defend_collaborative(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_FALSE(plan.defended[0]);
}

TEST(DefendIndividual, BudgetLimitsDefenses) {
  // Three valuable targets but budget covers only one (the most exposed).
  auto im = make_im({{-100.0, -300.0, -200.0}});
  cps::Ownership own({0, 0, 0}, 1);
  DefenderConfig cfg;
  cfg.defense_cost = {10.0, 10.0, 10.0};
  cfg.budget = {10.0};
  auto plan = defend_individual(im, own, std::vector<double>{1.0, 1.0, 1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.num_defended(), 1);
  EXPECT_TRUE(plan.defended[1]);  // the -300 target
}

TEST(DefendIndividual, OnlyOwnerDefendsItsAssets) {
  // Target 0 hurts actor 1 badly but belongs to actor 0 (who is unhurt):
  // the owner has no incentive, the victim has no authority — the paper's
  // misaligned-incentives failure mode.
  auto im = make_im({{0.0}, {-500.0}});
  cps::Ownership own({0}, 2);
  DefenderConfig cfg;
  cfg.defense_cost = {10.0};
  cfg.budget = {100.0, 100.0};
  auto plan = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_FALSE(plan.defended[0]);
}

TEST(DefendIndividual, IgnoresTargetsThatBenefitOwner) {
  // A target whose outage *helps* its owner is never worth defending.
  auto im = make_im({{50.0}});
  cps::Ownership own({0}, 1);
  DefenderConfig cfg;
  cfg.defense_cost = {1.0};
  cfg.budget = {10.0};
  auto plan = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_FALSE(plan.defended[0]);
}

TEST(DefendCollaborative, VictimsShareCosts) {
  // Target 0 hurts actors 0 and 1 (-60/-40); cost 80 exceeds either
  // actor's solo budget of 50, but the 48/32 proportional split fits.
  auto im = make_im({{-60.0}, {-40.0}});
  cps::Ownership own({0}, 2);
  DefenderConfig cfg;
  cfg.defense_cost = {80.0};
  cfg.budget = {50.0, 50.0};
  auto collab = defend_collaborative(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(collab.optimal());
  EXPECT_TRUE(collab.defended[0]);
  EXPECT_NEAR(collab.spending[0], 48.0, kTol);  // 80 * 60/100
  EXPECT_NEAR(collab.spending[1], 32.0, kTol);  // 80 * 40/100
  // Individually, the owning actor 0 cannot afford it.
  auto indiv = defend_individual(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(indiv.optimal());
  EXPECT_FALSE(indiv.defended[0]);
}

TEST(DefendCollaborative, BeneficiaryExcludedFromCoalition) {
  // Actor 1 gains from the attack: CD(t) = {0, 2} only.
  auto im = make_im({{-60.0}, {25.0}, {-20.0}});
  cps::Ownership own({0}, 3);
  DefenderConfig cfg;
  cfg.defense_cost = {40.0};
  cfg.budget = {100.0, 100.0, 100.0};
  auto plan = defend_collaborative(im, own, std::vector<double>{1.0}, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_TRUE(plan.defended[0]);
  EXPECT_NEAR(plan.spending[0], 40.0 * 60.0 / 80.0, kTol);
  EXPECT_NEAR(plan.spending[1], 0.0, kTol);  // the beneficiary pays nothing
  EXPECT_NEAR(plan.spending[2], 40.0 * 20.0 / 80.0, kTol);
}

TEST(DefendCollaborative, ReducesToIndividualForSingleVictim) {
  // |CD(t)| = 1 for every target: Eqs 16-18 must equal Eqs 12-14 when the
  // single victim also owns the asset.
  auto im = make_im({{-100.0, -5.0}, {0.0, 0.0}});
  cps::Ownership own({0, 0}, 2);
  DefenderConfig cfg;
  cfg.defense_cost = {20.0, 20.0};
  cfg.budget = {25.0, 25.0};
  auto collab = defend_collaborative(im, own, std::vector<double>{1.0, 1.0},
                                     cfg);
  auto indiv = defend_individual(im, own, std::vector<double>{1.0, 1.0}, cfg);
  ASSERT_TRUE(collab.optimal());
  ASSERT_TRUE(indiv.optimal());
  EXPECT_EQ(collab.defended, indiv.defended);
  EXPECT_NEAR(collab.objective, indiv.objective, kTol);
}

TEST(DefendCollaborative, PerActorBeliefsRespected) {
  // Actor 0 believes the attack is certain; actor 1 believes it never
  // happens. Defense still proceeds if actor 0's stake justifies its share.
  auto im = make_im({{-100.0}, {-100.0}});
  cps::Ownership own({0}, 2);
  DefenderConfig cfg;
  cfg.defense_cost = {30.0};
  cfg.budget = {100.0, 100.0};
  std::vector<std::vector<double>> pa{{1.0}, {0.0}};
  auto plan = defend_collaborative(im, own, pa, cfg);
  ASSERT_TRUE(plan.optimal());
  // Exposure = 1*(-100) + 0*(-100) = -100; defending costs 30 < 100.
  EXPECT_TRUE(plan.defended[0]);
}

TEST(DefendCollaborative, NooneHurtNothingDefended) {
  auto im = make_im({{10.0, 0.0}, {5.0, 0.0}});
  cps::Ownership own({0, 1}, 2);
  DefenderConfig cfg;
  cfg.defense_cost = {1.0, 1.0};
  cfg.budget = {10.0, 10.0};
  auto plan = defend_collaborative(im, own, std::vector<double>{1.0, 1.0},
                                   cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.num_defended(), 0);
}

TEST(EstimateAttackProbabilities, DeterministicWithoutSpeculatedNoise) {
  // Duopoly where attacking the dear generator is the single best move.
  flow::Network net;
  const auto h = net.add_hub("H");
  net.add_supply("cheap", h, 60.0, 10.0);
  net.add_supply("dear", h, 100.0, 30.0);
  net.add_demand("load", h, 80.0, 50.0);
  cps::Ownership own({0, 1, 2}, 3);
  AdversaryConfig adv;
  adv.max_targets = 1;
  Rng rng(7);
  auto pa = estimate_attack_probabilities(net, own, adv, {0.0}, 3, rng);
  ASSERT_TRUE(pa.is_ok());
  // Attacking edge 1 (dear) lets the cheap owner gain 1200: certain target.
  EXPECT_NEAR((*pa)[1], 1.0, kTol);
  EXPECT_NEAR((*pa)[0], 0.0, kTol);
  EXPECT_NEAR((*pa)[2], 0.0, kTol);
}

TEST(EstimateAttackProbabilities, NoiseSpreadsProbabilityMass) {
  flow::Network net;
  const auto h = net.add_hub("H");
  net.add_supply("g1", h, 60.0, 20.0);
  net.add_supply("g2", h, 60.0, 21.0);  // near-symmetric competitors
  net.add_demand("load", h, 80.0, 50.0);
  cps::Ownership own({0, 1, 2}, 3);
  AdversaryConfig adv;
  adv.max_targets = 1;
  Rng rng(11);
  cps::NoiseSpec noise;
  noise.sigma = 0.4;
  auto pa = estimate_attack_probabilities(net, own, adv, noise, 40, rng);
  ASSERT_TRUE(pa.is_ok());
  double total = std::accumulate(pa->begin(), pa->end(), 0.0);
  EXPECT_GT(total, 0.5);  // attacks happen in most samples
  // Mass is spread: no single target should own every sample.
  for (double v : *pa) EXPECT_LT(v, 1.0);
}

}  // namespace
}  // namespace gridsec::core
