// Tests for the attack-defense game evaluator.
#include "gridsec/core/game.hpp"

#include <gtest/gtest.h>

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

// Duopoly with a consumer: attacking the dear generator (edge 1) makes the
// cheap one scarce and profitable; the consumer (actor 2) loses.
flow::Network duopoly() {
  flow::Network net;
  const auto h = net.add_hub("H");
  net.add_supply("cheap", h, 60.0, 10.0);  // edge 0, actor 0
  net.add_supply("dear", h, 100.0, 30.0);  // edge 1, actor 1
  net.add_demand("load", h, 80.0, 50.0);   // edge 2, actor 2
  return net;
}

GameConfig perfect_information_config(int n_edges, int n_actors) {
  GameConfig cfg;
  cfg.adversary.max_targets = 1;
  cfg.defender.defense_cost.assign(static_cast<std::size_t>(n_edges), 10.0);
  cfg.defender.budget.assign(static_cast<std::size_t>(n_actors), 10.0);
  cfg.pa_samples = 1;
  return cfg;
}

TEST(Game, PerfectInformationDefenseNeutralizesAttack) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  Rng rng(1);
  auto game = play_defense_game(net, own, cfg, rng);
  ASSERT_TRUE(game.is_ok());
  // The SA attacks the dear generator (gain 1200 undefended).
  EXPECT_EQ(game->attack.targets, (std::vector<int>{1}));
  EXPECT_NEAR(game->adversary_gain_undefended, 1200.0, kTol);
  // Actor 1 owns it, predicts the attack (Pa=1), loses nothing itself...
  // IM[1,1] = 0, so actor 1 won't defend. Actor 2 (the victim) cannot.
  // Individual defense therefore fails to stop this attack.
  EXPECT_FALSE(game->defense.defended[1]);
  EXPECT_NEAR(game->defense_effectiveness, 0.0, kTol);
}

TEST(Game, CollaborativeDefenseStopsMisalignedAttack) {
  // Same scenario but collaborative: the consumer (hurt -1600) joins
  // CD(dear) and funds the defense it cannot mount alone individually.
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  cfg.collaborative = true;
  Rng rng(1);
  auto game = play_defense_game(net, own, cfg, rng);
  ASSERT_TRUE(game.is_ok());
  EXPECT_TRUE(game->defense.defended[1]);
  EXPECT_NEAR(game->adversary_gain_defended, 0.0, kTol);
  EXPECT_NEAR(game->defense_effectiveness, 1200.0, kTol);
}

TEST(Game, PartialMitigationScalesEffect) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  cfg.collaborative = true;
  cfg.mitigation = 0.75;
  Rng rng(1);
  auto game = play_defense_game(net, own, cfg, rng);
  ASSERT_TRUE(game.is_ok());
  ASSERT_TRUE(game->defense.defended[1]);
  EXPECT_NEAR(game->adversary_gain_defended, 1200.0 * 0.25, kTol);
}

TEST(Game, ActorImpactsTrackDefense) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  cfg.collaborative = true;
  Rng rng(1);
  auto game = play_defense_game(net, own, cfg, rng);
  ASSERT_TRUE(game.is_ok());
  // Undefended: cheap gains 1200, consumer loses 1600.
  EXPECT_NEAR(game->actor_impact_undefended[0], 1200.0, kTol);
  EXPECT_NEAR(game->actor_impact_undefended[2], -1600.0, kTol);
  EXPECT_NEAR(game->total_loss_undefended(), -1600.0, kTol);
  // Defended: nothing happens.
  EXPECT_NEAR(game->actor_impact_defended[2], 0.0, kTol);
  EXPECT_NEAR(game->total_loss_defended(), 0.0, kTol);
}

TEST(Game, DeterministicGivenSeed) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  cfg.defender_noise.sigma = 0.2;
  cfg.adversary_noise.sigma = 0.2;
  cfg.speculated_adversary_noise.sigma = 0.2;
  cfg.pa_samples = 3;
  Rng rng_a(42), rng_b(42);
  auto ga = play_defense_game(net, own, cfg, rng_a);
  auto gb = play_defense_game(net, own, cfg, rng_b);
  ASSERT_TRUE(ga.is_ok());
  ASSERT_TRUE(gb.is_ok());
  EXPECT_EQ(ga->attack.targets, gb->attack.targets);
  EXPECT_EQ(ga->defense.defended, gb->defense.defended);
  EXPECT_DOUBLE_EQ(ga->defense_effectiveness, gb->defense_effectiveness);
}

TEST(Game, PerDefenderViewsMatchSharedAtZeroNoise) {
  // With sigma = 0 every private view equals the truth, so the per-defender
  // path must pick exactly the same defense as the shared path.
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  cfg.collaborative = true;
  Rng rng_a(5), rng_b(5);
  auto shared = play_defense_game(net, own, cfg, rng_a);
  cfg.per_defender_views = true;
  auto separate = play_defense_game(net, own, cfg, rng_b);
  ASSERT_TRUE(shared.is_ok());
  ASSERT_TRUE(separate.is_ok());
  EXPECT_EQ(shared->defense.defended, separate->defense.defended);
  EXPECT_DOUBLE_EQ(shared->defense_effectiveness,
                   separate->defense_effectiveness);
}

TEST(Game, PerDefenderViewsDeterministic) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  GameConfig cfg = perfect_information_config(net.num_edges(), 3);
  cfg.per_defender_views = true;
  cfg.defender_noise.sigma = 0.3;
  cfg.speculated_adversary_noise.sigma = 0.2;
  cfg.pa_samples = 2;
  Rng a(9), b(9);
  auto ga = play_defense_game(net, own, cfg, a);
  auto gb = play_defense_game(net, own, cfg, b);
  ASSERT_TRUE(ga.is_ok());
  ASSERT_TRUE(gb.is_ok());
  EXPECT_EQ(ga->defense.defended, gb->defense.defended);
  EXPECT_DOUBLE_EQ(ga->defense_effectiveness, gb->defense_effectiveness);
}

TEST(EvaluateAttackWithDefense, MixedDefenseCoverage) {
  cps::ImpactMatrix im(2, 3);
  im.set(0, 0, 100.0);
  im.set(0, 1, 80.0);
  im.set(1, 2, -40.0);
  AttackPlan plan;
  plan.status = lp::SolveStatus::kOptimal;
  plan.targets = {0, 1};
  plan.actors = {0};
  std::vector<bool> defended{true, false, false};
  const double gain =
      evaluate_attack_with_defense(im, plan, {}, defended, 1.0, nullptr);
  // Target 0 fully mitigated, target 1 lands: gain = 80.
  EXPECT_NEAR(gain, 80.0, kTol);
}

TEST(EvaluateAttackWithDefense, ReportsAllActorImpacts) {
  cps::ImpactMatrix im(2, 2);
  im.set(0, 0, 100.0);
  im.set(1, 0, -60.0);
  AttackPlan plan;
  plan.status = lp::SolveStatus::kOptimal;
  plan.targets = {0};
  plan.actors = {0};
  std::vector<double> impacts;
  std::vector<bool> defended{false, false};
  evaluate_attack_with_defense(im, plan, {}, defended, 1.0, &impacts);
  EXPECT_NEAR(impacts[0], 100.0, kTol);
  EXPECT_NEAR(impacts[1], -60.0, kTol);  // includes non-colluding victims
}

}  // namespace
}  // namespace gridsec::core
