// Tests for the DC optimal power flow and its transport relaxation.
#include "gridsec/flow/dcopf.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridsec::flow {
namespace {

constexpr double kTol = 1e-5;

// Classic 3-bus example: cheap generator at bus0, expensive at bus1, load
// at bus2; identical-susceptance lines 0-1, 0-2, 1-2. Only the direct
// line 0-2 carries the (optional) thermal limit.
DcNetwork three_bus(double direct_cap, double other_cap = 1000.0) {
  DcNetwork net;
  const int b0 = net.add_bus("b0");
  const int b1 = net.add_bus("b1");
  const int b2 = net.add_bus("b2");
  net.add_line("l01", b0, b1, 1.0, other_cap);
  net.add_line("l02", b0, b2, 1.0, direct_cap);
  net.add_line("l12", b1, b2, 1.0, other_cap);
  net.add_generator("cheap", b0, 300.0, 10.0);
  net.add_generator("dear", b1, 300.0, 40.0);
  net.add_load("city", b2, 90.0, 100.0);
  return net;
}

TEST(DcOpf, UncongestedMatchesTransport) {
  auto net = three_bus(1000.0);
  auto dc = solve_dc_opf(net);
  auto transport = solve_transport_relaxation(net);
  ASSERT_TRUE(dc.optimal());
  ASSERT_TRUE(transport.optimal());
  // Plenty of capacity: both serve the whole load from the cheap unit.
  EXPECT_NEAR(dc.generation[0], 90.0, kTol);
  EXPECT_NEAR(dc.welfare, transport.welfare, kTol);
  EXPECT_NEAR(dc.welfare, 90.0 * (100.0 - 10.0), kTol);
}

TEST(DcOpf, KirchhoffSplitsInjection) {
  // With equal susceptances, injecting P at b0 toward b2 splits 2/3 on the
  // direct line and 1/3 through b1 (impedance path ratio 1:2).
  auto net = three_bus(1000.0);
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  EXPECT_NEAR(dc.line_flow[1], 60.0, kTol);  // l02 direct
  EXPECT_NEAR(dc.line_flow[0], 30.0, kTol);  // l01
  EXPECT_NEAR(dc.line_flow[2], 30.0, kTol);  // l12 continues to the load
}

TEST(DcOpf, LoopFlowCongestionRaisesCost) {
  // Cap the direct line at 40. Physics: the direct line carries
  // (2/3)g0 + (1/3)g1, so with g0 + g1 = 90 the cheap unit is limited to
  // g0 <= 30 — far below the 40+50=90 a free router could ship. The
  // transport relaxation routes everything from the cheap unit.
  auto net = three_bus(40.0);
  auto dc = solve_dc_opf(net);
  auto transport = solve_transport_relaxation(net);
  ASSERT_TRUE(dc.optimal());
  ASSERT_TRUE(transport.optimal());
  EXPECT_NEAR(dc.line_flow[1], 40.0, kTol);       // direct line at limit
  EXPECT_NEAR(dc.generation[0], 30.0, kTol);      // cheap capped by physics
  EXPECT_NEAR(dc.generation[1], 60.0, kTol);      // dear covers the rest
  EXPECT_NEAR(transport.generation[0], 90.0, kTol);  // router ignores loops
  EXPECT_LT(dc.welfare, transport.welfare - 1.0);
}

TEST(DcOpf, TransportRelaxationNeverWorse) {
  for (double cap : {20.0, 40.0, 60.0, 1000.0}) {
    auto net = three_bus(cap);
    auto dc = solve_dc_opf(net);
    auto transport = solve_transport_relaxation(net);
    ASSERT_TRUE(dc.optimal());
    ASSERT_TRUE(transport.optimal());
    EXPECT_GE(transport.welfare, dc.welfare - kTol) << "cap " << cap;
  }
}

TEST(DcOpf, CongestionSeparatesBusPrices) {
  auto net = three_bus(40.0);
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  // The load bus pays more than the cheap bus once the direct line binds.
  EXPECT_GT(dc.bus_price[2], dc.bus_price[0] + 1.0);
  // Uncongested case: single system price.
  auto open = solve_dc_opf(three_bus(1000.0));
  ASSERT_TRUE(open.optimal());
  EXPECT_NEAR(open.bus_price[0], open.bus_price[2], kTol);
  EXPECT_NEAR(open.bus_price[0], 10.0, kTol);
}

TEST(DcOpf, FlowsObeyAngleLaw) {
  auto net = three_bus(40.0);
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  for (std::size_t l = 0; l < net.lines().size(); ++l) {
    const DcLine& line = net.lines()[l];
    const double expected =
        line.susceptance *
        (dc.theta[static_cast<std::size_t>(line.from)] -
         dc.theta[static_cast<std::size_t>(line.to)]);
    EXPECT_NEAR(dc.line_flow[l], expected, kTol) << line.name;
  }
  EXPECT_NEAR(dc.theta[0], 0.0, kTol);  // slack pinned
}

TEST(DcOpf, UnservedLoadWhenIslanded) {
  DcNetwork net;
  const int b0 = net.add_bus("gen_bus");
  const int b1 = net.add_bus("island");
  net.add_generator("g", b0, 100.0, 5.0);
  net.add_load("stranded", b1, 50.0, 80.0);
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  EXPECT_NEAR(dc.served[0], 0.0, kTol);
  EXPECT_NEAR(dc.welfare, 0.0, kTol);
}

TEST(DcOpf, SusceptanceSteersTheSplit) {
  // Doubling the direct line's susceptance pulls more flow onto it:
  // split becomes B_direct/(B_direct + B_series) with B_series = 1/2.
  DcNetwork net;
  const int b0 = net.add_bus("b0");
  const int b1 = net.add_bus("b1");
  const int b2 = net.add_bus("b2");
  net.add_line("l01", b0, b1, 1.0, 1000.0);
  net.add_line("l02", b0, b2, 2.0, 1000.0);
  net.add_line("l12", b1, b2, 1.0, 1000.0);
  net.add_generator("g", b0, 100.0, 10.0);
  net.add_load("d", b2, 100.0, 50.0);
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  // Direct share = 2 / (2 + 0.5) = 0.8.
  EXPECT_NEAR(dc.line_flow[1], 80.0, kTol);
  EXPECT_NEAR(dc.line_flow[0], 20.0, kTol);
}

TEST(DcOpf, ZeroCapacityPinsAnglesNotAnOutage) {
  // DC subtlety: zeroing a line's *capacity* while keeping its susceptance
  // forces θ_from == θ_to — the line still constrains the angle profile.
  // Here that makes the delivery path contradictory, so load is shed.
  auto net = three_bus(1000.0);
  net.mutable_lines()[1].capacity = 0.0;
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  EXPECT_NEAR(dc.served[0], 0.0, kTol);
}

TEST(DcOpf, LineOutageRedistributesByPhysics) {
  // A real outage removes the line from the susceptance matrix entirely:
  // everything must then flow b0 -> b1 -> b2.
  DcNetwork net;
  const int b0 = net.add_bus("b0");
  const int b1 = net.add_bus("b1");
  const int b2 = net.add_bus("b2");
  net.add_line("l01", b0, b1, 1.0, 1000.0);
  net.add_line("l12", b1, b2, 1.0, 1000.0);
  net.add_generator("cheap", b0, 300.0, 10.0);
  net.add_generator("dear", b1, 300.0, 40.0);
  net.add_load("city", b2, 90.0, 100.0);
  auto dc = solve_dc_opf(net);
  ASSERT_TRUE(dc.optimal());
  EXPECT_NEAR(dc.line_flow[0], 90.0, kTol);
  EXPECT_NEAR(dc.line_flow[1], 90.0, kTol);
  EXPECT_NEAR(dc.generation[0], 90.0, kTol);
}

}  // namespace
}  // namespace gridsec::flow
