// Tests for post-optimal sensitivity analysis (simplex ranging).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/obs/audit.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::lp {
namespace {

constexpr double kTol = 1e-6;

// Classic Hillier & Lieberman: max 3x + 5y; x <= 4, 2y <= 12, 3x+2y <= 18.
Problem wyndor() {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 3.0);
  int y = p.add_variable("y", 0.0, kInfinity, 5.0);
  p.add_constraint("c1", LinearExpr().add(x, 1.0), Sense::kLessEqual, 4.0);
  p.add_constraint("c2", LinearExpr().add(y, 2.0), Sense::kLessEqual, 12.0);
  p.add_constraint("c3", LinearExpr().add(x, 3.0).add(y, 2.0),
                   Sense::kLessEqual, 18.0);
  return p;
}

TEST(Sensitivity, WyndorObjectiveRanges) {
  auto report = analyze_sensitivity(wyndor());
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  // Textbook ranges: c_x in [0, 7.5], c_y in [2, +inf).
  EXPECT_NEAR(report.objective_range[0].lo, 0.0, kTol);
  EXPECT_NEAR(report.objective_range[0].hi, 7.5, kTol);
  EXPECT_NEAR(report.objective_range[1].lo, 2.0, kTol);
  EXPECT_TRUE(std::isinf(report.objective_range[1].hi));
}

TEST(Sensitivity, WyndorRhsRanges) {
  auto report = analyze_sensitivity(wyndor());
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  // Textbook: b2 in [6, 18], b3 in [12, 24]; b1 in [2, +inf).
  EXPECT_NEAR(report.rhs_range[1].lo, 6.0, kTol);
  EXPECT_NEAR(report.rhs_range[1].hi, 18.0, kTol);
  EXPECT_NEAR(report.rhs_range[2].lo, 12.0, kTol);
  EXPECT_NEAR(report.rhs_range[2].hi, 24.0, kTol);
  EXPECT_NEAR(report.rhs_range[0].lo, 2.0, kTol);
  EXPECT_TRUE(std::isinf(report.rhs_range[0].hi));
}

TEST(Sensitivity, RangesContainCurrentValues) {
  auto p = wyndor();
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  for (int j = 0; j < p.num_variables(); ++j) {
    const auto& r = report.objective_range[static_cast<std::size_t>(j)];
    EXPECT_LE(r.lo, p.variable(j).objective + kTol);
    EXPECT_GE(r.hi, p.variable(j).objective - kTol);
  }
  for (int i = 0; i < p.num_constraints(); ++i) {
    const auto& r = report.rhs_range[static_cast<std::size_t>(i)];
    EXPECT_LE(r.lo, p.constraint(i).rhs + kTol);
    EXPECT_GE(r.hi, p.constraint(i).rhs - kTol);
  }
}

TEST(Sensitivity, ObjectiveRangePredictsUnchangedOptimum) {
  // Inside the range (strictly), the optimal point must not move.
  auto p = wyndor();
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  const auto& r = report.objective_range[0];
  const double inside = 0.5 * (std::max(r.lo, 0.0) + std::min(r.hi, 7.0));
  Problem q = p;
  q.set_objective_coef(0, inside);
  auto sol = solve_lp(q);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], report.solution.x[0], 1e-5);
  EXPECT_NEAR(sol.x[1], report.solution.x[1], 1e-5);
}

TEST(Sensitivity, BeyondObjectiveRangeOptimumMoves) {
  auto p = wyndor();
  auto report = analyze_sensitivity(p);
  const auto& r = report.objective_range[0];
  ASSERT_TRUE(std::isfinite(r.hi));
  Problem q = p;
  q.set_objective_coef(0, r.hi + 1.0);  // past the breakpoint
  auto sol = solve_lp(q);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  const bool moved = std::fabs(sol.x[0] - report.solution.x[0]) > 1e-6 ||
                     std::fabs(sol.x[1] - report.solution.x[1]) > 1e-6;
  EXPECT_TRUE(moved);
}

TEST(Sensitivity, RhsRangePredictsLinearObjectiveChange) {
  auto p = wyndor();
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  // Move b3 within its range: objective must change by dual * delta.
  const double delta = 2.0;  // 18 -> 20, inside [12, 24]
  Problem q = p;
  q.set_rhs(2, 18.0 + delta);
  auto sol = solve_lp(q);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective - report.solution.objective,
              report.solution.duals[2] * delta, 1e-6);
}

TEST(Sensitivity, MinimizationRangesWork) {
  // min 2x + 3y s.t. x + y >= 10 -> all from x (cheaper): x=10.
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, kInfinity, 2.0);
  int y = p.add_variable("y", 0.0, kInfinity, 3.0);
  p.add_constraint("cover", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kGreaterEqual, 10.0);
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(report.solution.x[static_cast<std::size_t>(x)], 10.0, kTol);
  // c_x may rise to 3 (y's cost) before the basis changes.
  EXPECT_NEAR(report.objective_range[static_cast<std::size_t>(x)].hi, 3.0,
              kTol);
  // y nonbasic at lower: c_y may fall to 2 before y enters.
  EXPECT_NEAR(report.objective_range[static_cast<std::size_t>(y)].lo, 2.0,
              kTol);
}

TEST(Sensitivity, FailureCarriesEmptyRanges) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 1.0, 1.0);
  p.add_constraint("bad", LinearExpr().add(x, 1.0), Sense::kGreaterEqual,
                   5.0);
  auto report = analyze_sensitivity(p);
  EXPECT_EQ(report.solution.status, SolveStatus::kInfeasible);
  EXPECT_TRUE(report.objective_range.empty());
  EXPECT_TRUE(report.rhs_range.empty());
}

// Property: on random LPs, probing just inside each finite range edge keeps
// the optimum; the rhs dual-rate prediction holds inside the range.
class SensitivityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SensitivityProperty, RhsRateHoldsInsideRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 7);
  Problem p(Objective::kMinimize);
  const int nv = 3;
  for (int j = 0; j < nv; ++j) {
    p.add_variable("x", 0.0, rng.uniform(5.0, 20.0), rng.uniform(1.0, 8.0));
  }
  LinearExpr cover;
  for (int j = 0; j < nv; ++j) cover.add(j, rng.uniform(0.5, 2.0));
  p.add_constraint("cover", std::move(cover), Sense::kGreaterEqual,
                   rng.uniform(3.0, 10.0));
  LinearExpr cap;
  for (int j = 0; j < nv; ++j) cap.add(j, 1.0);
  p.add_constraint("cap", std::move(cap), Sense::kLessEqual,
                   rng.uniform(15.0, 40.0));

  auto report = analyze_sensitivity(p);
  if (report.solution.status != SolveStatus::kOptimal) GTEST_SKIP();
  for (int i = 0; i < p.num_constraints(); ++i) {
    const auto& r = report.rhs_range[static_cast<std::size_t>(i)];
    const double rhs = p.constraint(i).rhs;
    // Step 25% toward the upper edge (or +1 if infinite).
    double delta = std::isfinite(r.hi) ? 0.25 * (r.hi - rhs) : 1.0;
    if (delta < 1e-9) continue;  // degenerate
    Problem q = p;
    q.set_rhs(i, rhs + delta);
    auto sol = solve_lp(q);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective - report.solution.objective,
                report.solution.duals[static_cast<std::size_t>(i)] * delta,
                1e-5)
        << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivityProperty, ::testing::Range(0, 15));

TEST(Sensitivity, WesternUsLmpStability) {
  // Economic reading: the rhs range of a hub's conservation row tells how
  // much extra net injection the current price regime survives.
  auto m = sim::build_western_us();
  Problem p = flow::build_social_welfare_lp(m.network);
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  ASSERT_EQ(report.rhs_range.size(),
            static_cast<std::size_t>(p.num_constraints()));
  for (const auto& r : report.rhs_range) {
    EXPECT_LE(r.lo, 0.0 + kTol);  // all conservation rows have rhs 0
    EXPECT_GE(r.hi, 0.0 - kTol);
  }
}

// --- Degenerate bases --------------------------------------------------
// Three constraints through one 2D vertex (primal degeneracy) and exact
// duplicate rows (a guaranteed ratio-test tie). Shadow prices are
// non-unique at such vertices; whatever dual vector the solver reports
// must still satisfy dual feasibility, complementary slackness, and a zero
// duality gap — which is exactly what the independent certificate checker
// recomputes, so we cross-check the sensitivity solution against it.

// max x + y; x + y <= 2, x <= 1, y <= 1. Optimum (1,1) has all three rows
// binding: one more active constraint than dimensions.
Problem degenerate_vertex() {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  int y = p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint("sum", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kLessEqual, 2.0);
  p.add_constraint("xcap", LinearExpr().add(x, 1.0), Sense::kLessEqual, 1.0);
  p.add_constraint("ycap", LinearExpr().add(y, 1.0), Sense::kLessEqual, 1.0);
  return p;
}

TEST(SensitivityDegenerate, VertexSolveCertifies) {
  const Problem p = degenerate_vertex();
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(report.solution.objective, 2.0, kTol);
  EXPECT_NEAR(report.solution.x[0], 1.0, kTol);
  EXPECT_NEAR(report.solution.x[1], 1.0, kTol);

  // The reported duals are one of infinitely many valid vectors; the
  // certificate must accept it all the same.
  const obs::Certificate cert = obs::certify(p, report.solution);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kVerified) << [&] {
    std::string all;
    for (const auto& v : cert.violations) all += v + "\n";
    return all;
  }();
  EXPECT_LE(cert.dual_residual, kTol);
  EXPECT_LE(cert.complementary_slackness, kTol);
  EXPECT_LE(cert.duality_gap, kTol);
}

TEST(SensitivityDegenerate, VertexRangesStayConsistent) {
  const Problem p = degenerate_vertex();
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  ASSERT_EQ(report.rhs_range.size(), 3u);
  for (int i = 0; i < p.num_constraints(); ++i) {
    const auto& r = report.rhs_range[static_cast<std::size_t>(i)];
    // Degenerate vertices legitimately produce zero-width rhs ranges, but
    // the range must stay ordered and contain the current rhs.
    EXPECT_LE(r.lo, r.hi + kTol) << "row " << i;
    EXPECT_LE(r.lo, p.constraint(i).rhs + kTol) << "row " << i;
    EXPECT_GE(r.hi, p.constraint(i).rhs - kTol) << "row " << i;
  }
  for (int j = 0; j < p.num_variables(); ++j) {
    const auto& r = report.objective_range[static_cast<std::size_t>(j)];
    EXPECT_LE(r.lo, p.variable(j).objective + kTol) << "var " << j;
    EXPECT_GE(r.hi, p.variable(j).objective - kTol) << "var " << j;
  }
}

TEST(SensitivityDegenerate, DuplicateRowsTieTheRatioTest) {
  // max x s.t. x <= 1 twice: the entering column hits both rows at the
  // exact same ratio, so the leaving-row choice is a coin flip. The dual
  // weight may land on either copy (or split); the certificate and the
  // shadow-price total are invariant.
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_constraint("a", LinearExpr().add(x, 1.0), Sense::kLessEqual, 1.0);
  p.add_constraint("b", LinearExpr().add(x, 1.0), Sense::kLessEqual, 1.0);
  auto report = analyze_sensitivity(p);
  ASSERT_EQ(report.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(report.solution.objective, 1.0, kTol);
  ASSERT_EQ(report.solution.duals.size(), 2u);
  EXPECT_NEAR(report.solution.duals[0] + report.solution.duals[1], 1.0,
              kTol);

  const obs::Certificate cert = obs::certify(p, report.solution);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kVerified);
  EXPECT_LE(cert.duality_gap, kTol);

  // Both copies sit at activity == rhs, so both must be reported binding.
  const auto binding = obs::binding_constraints(p, report.solution);
  EXPECT_EQ(binding.size(), 2u);
}

TEST(SensitivityDegenerate, RandomDegenerateLpsCertify) {
  // Random LPs built to force ties: several duplicated capacity rows plus
  // a shared budget row through the same vertex. Every optimal solve's
  // duals must pass the certificate's dual-side checks.
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
    Problem p(Objective::kMaximize);
    const int nv = 3;
    for (int j = 0; j < nv; ++j) {
      p.add_variable("x", 0.0, kInfinity, rng.uniform(1.0, 4.0));
    }
    // Two identical copies of each variable cap: guaranteed ratio ties.
    for (int j = 0; j < nv; ++j) {
      const double cap = rng.uniform(1.0, 3.0);
      p.add_constraint("cap_a", LinearExpr().add(j, 1.0),
                       Sense::kLessEqual, cap);
      p.add_constraint("cap_b", LinearExpr().add(j, 1.0),
                       Sense::kLessEqual, cap);
    }
    LinearExpr budget;
    for (int j = 0; j < nv; ++j) budget.add(j, 1.0);
    p.add_constraint("budget", std::move(budget), Sense::kLessEqual,
                     rng.uniform(2.0, 6.0));

    auto report = analyze_sensitivity(p);
    ASSERT_EQ(report.solution.status, SolveStatus::kOptimal)
        << "seed " << seed;
    const obs::Certificate cert = obs::certify(p, report.solution);
    EXPECT_EQ(cert.verdict, obs::CertVerdict::kVerified)
        << "seed " << seed
        << (cert.violations.empty() ? "" : " " + cert.violations[0]);
    EXPECT_LE(cert.duality_gap, kTol) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gridsec::lp
