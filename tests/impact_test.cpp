// Tests for the impact matrix IM[a,t].
#include "gridsec/cps/impact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace gridsec::cps {
namespace {

constexpr double kTol = 1e-5;

// Two competing generators into one load: knocking out the cheap one makes
// the expensive one the sole (marginal) supplier — classic competitor
// elimination.
flow::Network duopoly() {
  flow::Network net;
  const auto h = net.add_hub("H");
  net.add_supply("cheap", h, 60.0, 10.0);  // edge 0
  net.add_supply("dear", h, 100.0, 30.0);  // edge 1
  net.add_demand("load", h, 80.0, 50.0);   // edge 2
  return net;
}

TEST(Impact, CompetitorEliminationCreatesWinnersAndLosers) {
  flow::Network net = duopoly();
  // Actor 0: cheap gen. Actor 1: dear gen. Actor 2: the consumer side.
  Ownership own({0, 1, 2}, 3);
  auto res = compute_impact_matrix(net, own);
  ASSERT_TRUE(res.is_ok());
  const ImpactMatrix& im = res->matrix;

  // Base: LMP = 30 (dear marginal). cheap profit (30-10)*60 = 1200;
  // dear profit 0; consumer (50-30)*80 = 1600. Welfare = 2800.
  EXPECT_NEAR(res->base_actor_profit[0], 1200.0, kTol);
  EXPECT_NEAR(res->base_actor_profit[1], 0.0, kTol);
  EXPECT_NEAR(res->base_actor_profit[2], 1600.0, kTol);

  // Attack target 0 (cheap gen outage): dear serves all 80 at LMP 50
  // (scarce? no - dear has 100 > 80, so LMP stays 30... wait: with only
  // dear, the marginal unit is still dear at cost 30 -> LMP 30, consumer
  // keeps (50-30)*80, dear still earns 0, cheap loses its 1200.
  EXPECT_NEAR(im.at(0, 0), -1200.0, kTol);
  EXPECT_NEAR(im.at(1, 0), 0.0, kTol);
  EXPECT_NEAR(im.at(2, 0), 0.0, kTol);

  // Attack target 1 (dear gen outage): cheap (60 cap) becomes scarce for
  // the 80-demand -> LMP rises to consumer price 50. cheap earns
  // (50-10)*60 = 2400 (gains 1200); consumer surplus drops to 0 (-1600).
  EXPECT_NEAR(im.at(0, 1), 1200.0, kTol);
  EXPECT_NEAR(im.at(2, 1), -1600.0, kTol);

  // System impact is never positive.
  for (int t = 0; t < im.num_targets(); ++t) {
    EXPECT_LE(im.system_impact(t), kTol);
  }
}

TEST(Impact, GainAndLossSummaries) {
  flow::Network net = duopoly();
  Ownership own({0, 1, 2}, 3);
  auto res = compute_impact_matrix(net, own);
  ASSERT_TRUE(res.is_ok());
  const ImpactMatrix& im = res->matrix;
  EXPECT_NEAR(im.total_gain(1), 1200.0, kTol);
  EXPECT_NEAR(im.total_loss(1), -1600.0, kTol);
  EXPECT_GE(im.aggregate_gain(), 0.0);
  EXPECT_LE(im.aggregate_loss(), 0.0);
  // Zero-sum-with-deadweight: gains never exceed losses in magnitude.
  EXPECT_LE(im.aggregate_gain(), -im.aggregate_loss() + kTol);
}

TEST(Impact, MonolithicOwnerNeverGains) {
  // With one actor owning everything, every attack is a pure self-loss:
  // the paper's premise for why multi-actor analysis matters.
  flow::Network net = duopoly();
  auto own = Ownership::monolithic(net.num_edges());
  auto res = compute_impact_matrix(net, own);
  ASSERT_TRUE(res.is_ok());
  for (int t = 0; t < res->matrix.num_targets(); ++t) {
    EXPECT_LE(res->matrix.at(0, t), kTol) << "target " << t;
    // Single actor's impact equals the system impact.
    EXPECT_NEAR(res->matrix.at(0, t), res->matrix.system_impact(t), kTol);
  }
}

TEST(Impact, ActorImpactsSumToSystemImpact) {
  flow::Network net = duopoly();
  Ownership own({0, 1, 2}, 3);
  auto res = compute_impact_matrix(net, own);
  ASSERT_TRUE(res.is_ok());
  for (int t = 0; t < res->matrix.num_targets(); ++t) {
    double sum = 0.0;
    for (int a = 0; a < res->matrix.num_actors(); ++a) {
      sum += res->matrix.at(a, t);
    }
    EXPECT_NEAR(sum, res->matrix.system_impact(t), kTol) << "target " << t;
  }
}

TEST(Impact, AttackOnUnusedEdgeIsHarmless) {
  flow::Network net = duopoly();
  // Add an idle backup generator that never runs (too expensive).
  const auto h = 0;  // hub H is node 0
  net.add_supply("idle", h, 50.0, 500.0);  // edge 3
  Ownership own({0, 1, 2, 3}, 4);
  auto res = compute_impact_matrix(net, own);
  ASSERT_TRUE(res.is_ok());
  for (int a = 0; a < 4; ++a) {
    EXPECT_NEAR(res->matrix.at(a, 3), 0.0, kTol);
  }
  EXPECT_NEAR(res->matrix.system_impact(3), 0.0, kTol);
}

TEST(Impact, PartialCapacityAttackScalesImpact) {
  flow::Network net = duopoly();
  Ownership own({0, 1, 2}, 3);
  ImpactOptions half;
  half.attack_type = AttackType::kCapacityScale;
  half.attack_magnitude = 0.5;
  auto full = compute_impact_matrix(net, own);
  auto part = compute_impact_matrix(net, own, half);
  ASSERT_TRUE(full.is_ok());
  ASSERT_TRUE(part.is_ok());
  // Halving the cheap generator hurts its owner less than a full outage.
  EXPECT_GT(part->matrix.at(0, 0), full->matrix.at(0, 0));
  EXPECT_LE(part->matrix.at(0, 0), 0.0 + kTol);
}

TEST(Impact, MismatchedOwnershipRejected) {
  flow::Network net = duopoly();
  Ownership own({0, 1}, 2);  // only 2 entries for 3 edges
  auto res = compute_impact_matrix(net, own);
  EXPECT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Impact, SkipUnusedTargetsIsExact) {
  // The idle backup generator's column must be zero either way; every
  // other column must match the full computation exactly.
  flow::Network net = duopoly();
  net.add_supply("idle", 0, 50.0, 500.0);
  Ownership own({0, 1, 2, 3}, 4);
  ImpactOptions full;
  full.skip_unused_targets = false;
  ImpactOptions fast;
  fast.skip_unused_targets = true;
  auto a = compute_impact_matrix(net, own, full);
  auto b = compute_impact_matrix(net, own, fast);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  for (int actor = 0; actor < 4; ++actor) {
    for (int t = 0; t < net.num_edges(); ++t) {
      EXPECT_NEAR(a->matrix.at(actor, t), b->matrix.at(actor, t), 1e-9)
          << "actor " << actor << " target " << t;
    }
  }
  for (int t = 0; t < net.num_edges(); ++t) {
    EXPECT_NEAR(a->matrix.system_impact(t), b->matrix.system_impact(t),
                1e-9);
  }
}

TEST(Impact, SkipDisabledForNonCapacityAttacks) {
  // A cost attack on an idle edge *can* matter (it could start flowing if
  // the shift is negative); the skip must not apply.
  flow::Network net = duopoly();
  net.add_supply("idle", 0, 50.0, 500.0);  // edge 3, idle at base
  Ownership own({0, 1, 2, 3}, 4);
  ImpactOptions opt;
  opt.attack_type = AttackType::kCostShift;
  opt.attack_magnitude = -495.0;  // idle becomes the cheapest source
  auto res = compute_impact_matrix(net, own, opt);
  ASSERT_TRUE(res.is_ok());
  // The idle generator's column is now nonzero somewhere.
  double col = 0.0;
  for (int a = 0; a < 4; ++a) col += std::abs(res->matrix.at(a, 3));
  EXPECT_GT(col, 1.0);
}

TEST(Impact, CsvExportWellFormed) {
  flow::Network net = duopoly();
  Ownership own({0, 1, 2}, 3);
  auto res = compute_impact_matrix(net, own);
  ASSERT_TRUE(res.is_ok());
  std::ostringstream ss;
  write_impact_csv(ss, res->matrix, net);
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("target,system,actor0,actor1,actor2"),
            std::string::npos);
  EXPECT_NE(csv.find("cheap,"), std::string::npos);
  // One header + one row per target.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')),
            net.num_edges() + 1);
}

TEST(Impact, PerturbationAllocatorAgreesOnDuopoly) {
  flow::Network net = duopoly();
  Ownership own({0, 1, 2}, 3);
  ImpactOptions opt;
  opt.allocation.kind = flow::AllocatorKind::kPerturbation;
  auto lmp = compute_impact_matrix(net, own);
  auto pert = compute_impact_matrix(net, own, opt);
  ASSERT_TRUE(lmp.is_ok());
  ASSERT_TRUE(pert.is_ok());
  for (int a = 0; a < 3; ++a) {
    for (int t = 0; t < 3; ++t) {
      EXPECT_NEAR(lmp->matrix.at(a, t), pert->matrix.at(a, t), 1.0)
          << "a=" << a << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace gridsec::cps
