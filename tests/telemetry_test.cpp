// Tests for gridsec::obs telemetry: OpenMetrics exposition conformance,
// gridsec.timeseries round-trips, the background sampler, progress/ETA
// tracking, and the stall watchdog.
#include "gridsec/obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "gridsec/obs/log.hpp"
#include "gridsec/obs/metrics.hpp"
#include "gridsec/sim/montecarlo.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::obs {
namespace {

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Restores the tracker's enabled flag on scope exit so tests cannot leak
/// an enabled tracker into unrelated suites.
struct TrackerGuard {
  bool was_enabled = ProgressTracker::enabled();
  ~TrackerGuard() { ProgressTracker::set_enabled(was_enabled); }
};

// ---------------------------------------------------------------------------
// OpenMetrics conformance.

TEST(OpenMetrics, NameSanitization) {
  EXPECT_EQ(openmetrics_name("lp.simplex.pivots"),
            "gridsec_lp_simplex_pivots");
  EXPECT_EQ(openmetrics_name("a.b-c/d e"), "gridsec_a_b_c_d_e");
  EXPECT_EQ(openmetrics_name("Already_OK:colon9"),
            "gridsec_Already_OK:colon9");
}

TEST(OpenMetrics, LabelEscaping) {
  EXPECT_EQ(openmetrics_escape_label("plain"), "plain");
  EXPECT_EQ(openmetrics_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(openmetrics_escape_label("quo\"te"), "quo\\\"te");
  EXPECT_EQ(openmetrics_escape_label("new\nline"), "new\\nline");
}

TEST(OpenMetrics, CountersAndGauges) {
  MetricRegistry reg;
  reg.counter("tests.om.hits").add(42);
  reg.gauge("tests.om.level").set(2.5);
  std::ostringstream os;
  write_openmetrics(os, reg);
  const std::string out = os.str();
  EXPECT_NE(out.find("# HELP gridsec_tests_om_hits "), std::string::npos);
  EXPECT_NE(out.find("# TYPE gridsec_tests_om_hits counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("\ngridsec_tests_om_hits_total 42\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE gridsec_tests_om_level gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("\ngridsec_tests_om_level 2.5\n"), std::string::npos);
  // The exposition must terminate with the OpenMetrics EOF marker.
  EXPECT_GE(out.size(), 6u);
  EXPECT_EQ(out.substr(out.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, HistogramQuantiles) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("tests.om.hist", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  std::ostringstream os;
  write_openmetrics(os, reg);
  const std::string out = os.str();
  EXPECT_NE(out.find("gridsec_tests_om_hist{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(out.find("gridsec_tests_om_hist{quantile=\"0.9\"} "),
            std::string::npos);
  EXPECT_NE(out.find("gridsec_tests_om_hist{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE gridsec_tests_om_hist_observations counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("gridsec_tests_om_hist_observations_total 100\n"),
            std::string::npos);
  EXPECT_NE(out.find("gridsec_tests_om_hist_sum 5050\n"), std::string::npos);
}

TEST(OpenMetrics, TimerSecondsSuffix) {
  MetricRegistry reg;
  Timer& t = reg.timer("tests.om.solve");
  t.observe_seconds(0.25);
  t.observe_seconds(0.75);
  std::ostringstream os;
  write_openmetrics(os, reg);
  const std::string out = os.str();
  EXPECT_NE(out.find("gridsec_tests_om_solve_seconds{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(out.find("gridsec_tests_om_solve_seconds_sum 1\n"),
            std::string::npos);
  EXPECT_NE(
      out.find("gridsec_tests_om_solve_seconds_observations_total 2\n"),
      std::string::npos);
}

TEST(OpenMetrics, BuildInfoGauge) {
  MetricRegistry reg;
  std::ostringstream os;
  write_openmetrics(os, reg);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE gridsec_build_info gauge\n"), std::string::npos);
  EXPECT_NE(out.find("gridsec_build_info{git_sha=\""), std::string::npos);
  EXPECT_NE(out.find("\"} 1\n"), std::string::npos);
  const BuildInfo& info = current_build_info();
  EXPECT_NE(out.find("build_type=\"" +
                     openmetrics_escape_label(info.build_type) + "\""),
            std::string::npos);
}

// Whole-exposition grammar check: every line is a comment, blank, the EOF
// marker, or `name[{labels}] value`; every sample's family was declared by
// a preceding # TYPE line.
TEST(OpenMetrics, ExpositionGrammar) {
  MetricRegistry reg;
  reg.counter("tests.om.c").add(7);
  reg.gauge("tests.om.g").set(-1.5);
  reg.histogram("tests.om.h", {1.0, 2.0}).observe(1.5);
  reg.timer("tests.om.t").observe_seconds(0.1);
  std::ostringstream os;
  write_openmetrics(os, reg);

  std::istringstream in(os.str());
  std::string line;
  std::vector<std::string> typed_families;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(saw_eof) << "content after # EOF: " << line;
    ASSERT_FALSE(line.empty());
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.compare(0, 7, "# TYPE ") == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge") << line;
      typed_families.push_back(family);
      continue;
    }
    if (line[0] == '#') {
      EXPECT_EQ(line.compare(0, 7, "# HELP "), 0) << line;
      continue;
    }
    // Sample line: name with optional {labels}, one space, value.
    const std::size_t space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    // The sample must belong to a declared family (counters append _total
    // to the family name).
    bool declared = false;
    for (const std::string& fam : typed_families) {
      if (name == fam || name == fam + "_total") declared = true;
    }
    EXPECT_TRUE(declared) << "undeclared sample: " << line;
    char* end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &end);
    const bool numeric = end != value.c_str() && *end == '\0';
    EXPECT_TRUE(numeric || value == "NaN" || value == "+Inf" ||
                value == "-Inf")
        << line;
  }
  EXPECT_TRUE(saw_eof);
}

// ---------------------------------------------------------------------------
// Timeseries artifact.

Timeseries make_timeseries() {
  Timeseries ts;
  ts.start_time_utc = "2026-01-02T03:04:05Z";
  ts.cadence_ms = 100.0;
  ts.build = {"abc123", "Release", "gcc 12"};
  ts.dropped = 3;
  TelemetrySample s1;
  s1.t_seconds = 0.001;
  s1.counters = {{"lp.simplex.pivots", 10}, {"sim.montecarlo.trials", 2}};
  s1.gauges = {{"obs.alloc.live_bytes", 512.0}};
  s1.workers = {{0, 0, 1000, 2000, 3}, {0, 1, 1500, 1500, 4}};
  ProgressSnapshot p;
  p.name = "sim.montecarlo.trials";
  p.total = 100;
  p.done = 2;
  p.elapsed_seconds = 0.5;
  p.rate_per_second = 4.0;
  p.eta_seconds = 24.5;
  p.stalled = true;
  s1.progress = {p};
  TelemetrySample s2;
  s2.t_seconds = 0.101;
  s2.counters = {{"lp.simplex.pivots", 50}};
  ts.samples = {s1, s2};
  return ts;
}

TEST(TimeseriesIo, JsonRoundTrip) {
  const Timeseries ts = make_timeseries();
  std::ostringstream os;
  write_timeseries_json(os, ts);
  const StatusOr<Timeseries> back = parse_timeseries(os.str());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const Timeseries& rt = back.value();
  EXPECT_EQ(rt.schema_version, kTimeseriesSchemaVersion);
  EXPECT_EQ(rt.start_time_utc, ts.start_time_utc);
  EXPECT_EQ(rt.cadence_ms, ts.cadence_ms);
  EXPECT_EQ(rt.build.git_sha, "abc123");
  EXPECT_EQ(rt.build.build_type, "Release");
  EXPECT_EQ(rt.build.compiler, "gcc 12");
  EXPECT_EQ(rt.dropped, 3u);
  ASSERT_EQ(rt.samples.size(), 2u);
  EXPECT_EQ(rt.samples[0].t_seconds, 0.001);
  EXPECT_EQ(rt.samples[0].counters, ts.samples[0].counters);
  EXPECT_EQ(rt.samples[0].gauges, ts.samples[0].gauges);
  ASSERT_EQ(rt.samples[0].workers.size(), 2u);
  EXPECT_EQ(rt.samples[0].workers[1].worker, 1);
  EXPECT_EQ(rt.samples[0].workers[1].busy_ns, 1500);
  ASSERT_EQ(rt.samples[0].progress.size(), 1u);
  EXPECT_EQ(rt.samples[0].progress[0].name, "sim.montecarlo.trials");
  EXPECT_EQ(rt.samples[0].progress[0].done, 2);
  EXPECT_EQ(rt.samples[0].progress[0].total, 100);
  EXPECT_EQ(rt.samples[0].progress[0].eta_seconds, 24.5);
  EXPECT_TRUE(rt.samples[0].progress[0].stalled);
  EXPECT_EQ(rt.samples[1].counters.at("lp.simplex.pivots"), 50);
}

TEST(TimeseriesIo, RejectsWrongSchema) {
  EXPECT_FALSE(parse_timeseries("{").is_ok());
  EXPECT_FALSE(parse_timeseries("[]").is_ok());
  EXPECT_FALSE(
      parse_timeseries(
          R"({"schema":"nope","schema_version":1,"samples":[]})")
          .is_ok());
  EXPECT_FALSE(
      parse_timeseries(
          R"({"schema":"gridsec.timeseries","schema_version":99,"samples":[]})")
          .is_ok());
  EXPECT_FALSE(
      parse_timeseries(R"({"schema":"gridsec.timeseries","schema_version":1})")
          .is_ok());
  EXPECT_TRUE(
      parse_timeseries(
          R"({"schema":"gridsec.timeseries","schema_version":1,"samples":[]})")
          .is_ok());
}

TEST(TimeseriesIo, CsvFlattening) {
  const Timeseries ts = make_timeseries();
  std::ostringstream os;
  write_timeseries_csv(os, ts);
  const std::string out = os.str();
  EXPECT_EQ(out.compare(0, 31, "t_seconds,kind,name,value\n0.001"), 0);
  EXPECT_NE(out.find(",counter,lp.simplex.pivots,10\n"), std::string::npos);
  EXPECT_NE(out.find(",gauge,obs.alloc.live_bytes,512\n"),
            std::string::npos);
  EXPECT_NE(out.find(",worker_busy_ns,pool0.w1,1500\n"), std::string::npos);
  EXPECT_NE(out.find(",progress_done,sim.montecarlo.trials,2\n"),
            std::string::npos);
  EXPECT_NE(out.find(",progress_total,sim.montecarlo.trials,100\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Progress tracking.

TEST(ProgressTest, DisabledScopesAreFree) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(false);
  Progress p("tests.progress.disabled", 10);
  EXPECT_FALSE(p.active());
  p.advance(5);
  EXPECT_EQ(p.done(), 0);
  EXPECT_EQ(ProgressTracker::active_count(), 0u);
}

TEST(ProgressTest, SnapshotRateAndEta) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(true);
  Progress p("tests.progress.math", 10);
  ASSERT_TRUE(p.active());
  EXPECT_EQ(ProgressTracker::active_count(), 1u);
  p.advance(4);
  sleep_ms(2);
  std::vector<ProgressSnapshot> snaps = ProgressTracker::snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "tests.progress.math");
  EXPECT_EQ(snaps[0].done, 4);
  EXPECT_EQ(snaps[0].total, 10);
  EXPECT_GT(snaps[0].elapsed_seconds, 0.0);
  EXPECT_GT(snaps[0].rate_per_second, 0.0);
  EXPECT_GT(snaps[0].eta_seconds, 0.0);
  p.advance(6);
  snaps = ProgressTracker::snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].done, 10);
  EXPECT_EQ(snaps[0].eta_seconds, 0.0);  // complete
}

TEST(ProgressTest, IndeterminateTotalHasNoEta) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(true);
  Progress p("tests.progress.indeterminate", 0);
  p.advance(100);
  sleep_ms(1);
  const std::vector<ProgressSnapshot> snaps = ProgressTracker::snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].total, 0);
  EXPECT_LT(snaps[0].eta_seconds, 0.0);
}

TEST(ProgressTest, SetTotalAndDeregistration) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(true);
  {
    Progress p("tests.progress.rescope", 0);
    p.set_total(50);
    const std::vector<ProgressSnapshot> snaps = ProgressTracker::snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].total, 50);
  }
  EXPECT_EQ(ProgressTracker::active_count(), 0u);
}

// ---------------------------------------------------------------------------
// Stall watchdog.

TEST(WatchdogTest, FiresOncePerEpisodeAndRearms) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(true);
  Counter& stalls = default_registry().counter("obs.telemetry.stalls");
  const std::int64_t before = stalls.value();

  Progress p("tests.watchdog.scope", 5);
  p.advance();
  sleep_ms(20);
  EXPECT_EQ(ProgressTracker::check_stalls(0.005), 1u);
  EXPECT_EQ(stalls.value(), before + 1);
  std::vector<ProgressSnapshot> snaps = ProgressTracker::snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].stalled);
  // Same episode: no re-fire until the scope advances again.
  EXPECT_EQ(ProgressTracker::check_stalls(0.005), 0u);
  EXPECT_EQ(stalls.value(), before + 1);

  p.advance();  // re-arms the watchdog
  snaps = ProgressTracker::snapshot();
  EXPECT_FALSE(snaps[0].stalled);
  sleep_ms(20);
  EXPECT_EQ(ProgressTracker::check_stalls(0.005), 1u);
  EXPECT_EQ(stalls.value(), before + 2);

  // The stall left a warn record behind.
  bool found = false;
  for (const std::string& line : Logger::tail(50)) {
    if (line.find("progress stalled") != std::string::npos &&
        line.find("tests.watchdog.scope") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WatchdogTest, CompleteScopesNeverStall) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(true);
  Progress p("tests.watchdog.complete", 3);
  p.advance(3);
  sleep_ms(15);
  EXPECT_EQ(ProgressTracker::check_stalls(0.005), 0u);
}

TEST(WatchdogTest, ZeroThresholdDisables) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(true);
  Progress p("tests.watchdog.off", 5);
  sleep_ms(10);
  EXPECT_EQ(ProgressTracker::check_stalls(0.0), 0u);
}

// Acceptance: an injected worker stall inside a real Monte-Carlo sweep is
// caught by the sampler's watchdog while the sweep is still running.
TEST(WatchdogTest, SamplerCatchesInjectedWorkerStall) {
  TrackerGuard guard;
  Counter& stalls = default_registry().counter("obs.telemetry.stalls");
  const std::int64_t before = stalls.value();

  TelemetrySampler sampler;
  TelemetrySamplerOptions opts;
  opts.cadence_ms = 5.0;
  opts.stall_after_seconds = 0.05;
  opts.heartbeat_every_seconds = 0.0;
  ASSERT_TRUE(sampler.start(opts).is_ok());

  // One serial "worker" that sits on its first trial far past the stall
  // threshold before making any progress.
  const std::vector<int> r = sim::run_trials<int>(
      nullptr, 2, 7, [](std::size_t i, Rng&) {
        if (i == 0) sleep_ms(150);
        return static_cast<int>(i);
      });
  sampler.stop();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_GT(stalls.value(), before);
}

// ---------------------------------------------------------------------------
// Sampler.

TEST(SamplerTest, StartValidation) {
  TrackerGuard guard;
  TelemetrySampler sampler;
  TelemetrySamplerOptions opts;
  opts.cadence_ms = 0.0;
  EXPECT_FALSE(sampler.start(opts).is_ok());
  opts.cadence_ms = 1.0;
  opts.ring_capacity = 0;
  EXPECT_FALSE(sampler.start(opts).is_ok());
  opts.ring_capacity = 8;
  opts.stall_after_seconds = -1.0;
  EXPECT_FALSE(sampler.start(opts).is_ok());
  opts.stall_after_seconds = 0.0;
  ASSERT_TRUE(sampler.start(opts).is_ok());
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.start(opts).is_ok());  // already running
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // idempotent
}

TEST(SamplerTest, FinalSampleMatchesRegistryExitSnapshot) {
  TrackerGuard guard;
  MetricRegistry reg;
  Counter& work = reg.counter("tests.sampler.work");
  reg.gauge("tests.sampler.level").set(1.0);

  TelemetrySampler sampler;
  TelemetrySamplerOptions opts;
  opts.cadence_ms = 2.0;
  opts.heartbeat_every_seconds = 0.0;
  opts.registry = &reg;
  ASSERT_TRUE(sampler.start(opts).is_ok());
  for (int i = 0; i < 10; ++i) {
    work.add(3);
    reg.gauge("tests.sampler.level").set(static_cast<double>(i));
    sleep_ms(2);
  }
  sampler.stop();

  const Timeseries ts = sampler.snapshot();
  ASSERT_GE(ts.samples.size(), 2u);
  EXPECT_EQ(ts.cadence_ms, 2.0);
  EXPECT_FALSE(ts.start_time_utc.empty());
  EXPECT_EQ(ts.build.git_sha, current_build_info().git_sha);
  // stop() appended one final sample; it must agree exactly with the
  // registry's exit state.
  const TelemetrySample& last = ts.samples.back();
  EXPECT_EQ(last.counters, reg.counter_values());
  EXPECT_EQ(last.gauges, reg.gauge_values());
  EXPECT_EQ(last.counters.at("tests.sampler.work"), 30);
  // The sample counter lives on the configured registry (not
  // default_registry()), so the ring entry agrees with it exactly: one
  // increment per take_sample, i.e. ring size plus evictions.
  EXPECT_EQ(last.counters.at("obs.telemetry.samples"),
            static_cast<std::int64_t>(ts.samples.size() + ts.dropped));
  // Monotone timestamps.
  for (std::size_t i = 1; i < ts.samples.size(); ++i) {
    EXPECT_GE(ts.samples[i].t_seconds, ts.samples[i - 1].t_seconds);
  }
  // And the artifact round-trips.
  std::ostringstream os;
  write_timeseries_json(os, ts);
  const StatusOr<Timeseries> back = parse_timeseries(os.str());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().samples.size(), ts.samples.size());
  EXPECT_EQ(back.value().samples.back().counters, last.counters);
}

TEST(SamplerTest, RingBoundEvictsOldest) {
  TrackerGuard guard;
  MetricRegistry reg;
  TelemetrySampler sampler;
  TelemetrySamplerOptions opts;
  opts.cadence_ms = 1.0;
  opts.ring_capacity = 4;
  opts.heartbeat_every_seconds = 0.0;
  opts.registry = &reg;
  ASSERT_TRUE(sampler.start(opts).is_ok());
  sleep_ms(40);
  sampler.stop();
  EXPECT_LE(sampler.samples(), 4u);
  EXPECT_GT(sampler.dropped(), 0u);
  EXPECT_EQ(sampler.snapshot().dropped, sampler.dropped());
}

TEST(SamplerTest, SampleNowWithoutStart) {
  TrackerGuard guard;
  TelemetrySampler sampler;
  sampler.sample_now();
  EXPECT_EQ(sampler.samples(), 1u);
  const Timeseries ts = sampler.snapshot();
  ASSERT_EQ(ts.samples.size(), 1u);
  EXPECT_FALSE(ts.samples[0].counters.empty());
}

TEST(SamplerTest, EnablesProgressTrackerAndRecordsScopes) {
  TrackerGuard guard;
  ProgressTracker::set_enabled(false);
  MetricRegistry reg;
  TelemetrySampler sampler;
  TelemetrySamplerOptions opts;
  opts.cadence_ms = 2.0;
  opts.heartbeat_every_seconds = 0.0;
  opts.registry = &reg;
  ASSERT_TRUE(sampler.start(opts).is_ok());
  EXPECT_TRUE(ProgressTracker::enabled());
  {
    Progress p("tests.sampler.scope", 8);
    p.advance(3);
    sleep_ms(10);
    sampler.stop();
  }
  const Timeseries ts = sampler.snapshot();
  bool saw_scope = false;
  for (const TelemetrySample& s : ts.samples) {
    for (const ProgressSnapshot& p : s.progress) {
      if (p.name == "tests.sampler.scope" && p.done >= 3) saw_scope = true;
    }
  }
  EXPECT_TRUE(saw_scope);
}

// ---------------------------------------------------------------------------
// TSan coverage: the sampler snapshots the registry, pools, and progress
// scopes while solver threads hammer all three.

TEST(TelemetryConcurrency, SamplerWhileSolving) {
  TrackerGuard guard;
  TelemetrySampler sampler;
  TelemetrySamplerOptions opts;
  opts.cadence_ms = 1.0;
  opts.stall_after_seconds = 0.001;  // exercise the watchdog path too
  // Non-zero so the observer's sample_now() races the background thread
  // through heartbeat()'s last-beat CAS, not just the ring.
  opts.heartbeat_every_seconds = 0.05;
  ASSERT_TRUE(sampler.start(opts).is_ok());

  Counter& work = default_registry().counter("tests.telemetry.race");
  ThreadPool pool(3);
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load()) {
      static_cast<void>(ProgressTracker::snapshot());
      static_cast<void>(sampler.samples());
      sampler.sample_now();
    }
  });
  for (int round = 0; round < 20; ++round) {
    Progress progress("tests.telemetry.round", 64);
    parallel_for(&pool, 64, [&](std::size_t) {
      work.add();
      default_registry().gauge("tests.telemetry.gauge").set(1.0);
      progress.advance();
    });
  }
  stop.store(true);
  observer.join();
  sampler.stop();
  EXPECT_EQ(work.value(), 20 * 64);
  EXPECT_GE(sampler.snapshot().samples.size(), 1u);
}

}  // namespace
}  // namespace gridsec::obs
