// Tracer: capture gating, span nesting/ordering in the exported Chrome
// trace JSON, and multi-thread buffers.
//
// Tracer state is process-global, so every test begins with reset() and
// ends with stop(); tests in this binary run sequentially.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/obs/trace.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::obs {
namespace {

// Minimal extraction of one numeric/string field per event object. The
// exported JSON is machine-written with a fixed key order, so scanning for
// `"key":` inside each line-delimited object is reliable.
#ifndef GRIDSEC_NO_TRACING
struct ParsedEvent {
  std::string name;
  long ts = 0;
  long dur = 0;
  long tid = 0;
};

std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::size_t pos = 0;
  while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
    ParsedEvent ev;
    const std::size_t name_start = pos + 9;
    const std::size_t name_end = json.find('"', name_start);
    ev.name = json.substr(name_start, name_end - name_start);
    const auto field = [&](const char* key) -> long {
      const std::size_t k = json.find(key, pos);
      return std::stol(json.substr(k + std::strlen(key)));
    };
    ev.ts = field("\"ts\":");
    ev.dur = field("\"dur\":");
    ev.tid = field("\"tid\":");
    out.push_back(ev);
    pos = name_end;
  }
  return out;
}
#endif  // GRIDSEC_NO_TRACING

std::string export_json() {
  std::ostringstream os;
  Tracer::write_chrome_json(os);
  return os.str();
}

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  Tracer::reset();
  Tracer::stop();
  {
    GRIDSEC_TRACE_SPAN("t.ignored");
  }
  EXPECT_EQ(Tracer::event_count(), 0u);
  EXPECT_EQ(export_json(), "[]\n");
}

#ifdef GRIDSEC_NO_TRACING

// With tracing compiled out, start() must stay inert and the export empty.
TEST(Tracer, CompiledOutIsAlwaysEmpty) {
  Tracer::start();
  {
    GRIDSEC_TRACE_SPAN("t.compiled_out");
  }
  Tracer::stop();
  EXPECT_FALSE(Tracer::enabled());
  EXPECT_EQ(Tracer::event_count(), 0u);
  EXPECT_EQ(export_json(), "[]\n");
}

#else  // capture-dependent tests below need real tracing compiled in

TEST(Tracer, NestedSpansExportWithContainment) {
  Tracer::reset();
  Tracer::start();
  {
    GRIDSEC_TRACE_SPAN("t.outer");
    {
      GRIDSEC_TRACE_SPAN("t.inner");
    }
    {
      GRIDSEC_TRACE_SPAN("t.inner2");
    }
  }
  Tracer::stop();
  ASSERT_EQ(Tracer::event_count(), 3u);
  const auto evs = parse_events(export_json());
  ASSERT_EQ(evs.size(), 3u);
  const auto find = [&](const std::string& n) {
    return *std::find_if(evs.begin(), evs.end(),
                         [&](const ParsedEvent& e) { return e.name == n; });
  };
  const ParsedEvent outer = find("t.outer");
  const ParsedEvent inner = find("t.inner");
  const ParsedEvent inner2 = find("t.inner2");
  // Containment: children open after and close before the parent. ts/dur
  // are truncated to whole microseconds, so end-time sums carry up to 2us
  // of rounding slack.
  constexpr long kSlackUs = 2;
  EXPECT_GE(inner.ts, outer.ts);
  EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur + kSlackUs);
  EXPECT_GE(inner2.ts, outer.ts);
  EXPECT_LE(inner2.ts + inner2.dur, outer.ts + outer.dur + kSlackUs);
  // Ordering: inner closed before inner2 opened.
  EXPECT_LE(inner.ts + inner.dur, inner2.ts + kSlackUs);
  // All on the same thread.
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_EQ(inner2.tid, outer.tid);
}

TEST(Tracer, SpanOpenedWhileDisabledIsNotRecorded) {
  Tracer::reset();
  Tracer::stop();
  {
    TraceSpan s("t.straddle");  // opened while off
    Tracer::start();
  }  // closes while on — still must not record
  Tracer::stop();
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST(Tracer, WorkerThreadSpansGetDistinctTids) {
  Tracer::reset();
  Tracer::start();
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 8; ++i) {
      futs.push_back(pool.submit([] { GRIDSEC_TRACE_SPAN("t.worker"); }));
    }
    for (auto& f : futs) f.get();
  }
  Tracer::stop();
  // Buffers must survive pool destruction.
  const auto evs = parse_events(export_json());
  std::size_t workers = 0;
  std::vector<long> tids;
  for (const auto& e : evs) {
    if (e.name == "t.worker") {
      ++workers;
      tids.push_back(e.tid);
    }
  }
  EXPECT_EQ(workers, 8u);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_GE(tids.size(), 1u);
  EXPECT_LE(tids.size(), 2u);
}

TEST(Tracer, ResetDiscardsEventsButKeepsCaptureState) {
  Tracer::reset();
  Tracer::start();
  {
    GRIDSEC_TRACE_SPAN("t.pre");
  }
  EXPECT_EQ(Tracer::event_count(), 1u);
  Tracer::reset();
  EXPECT_EQ(Tracer::event_count(), 0u);
  EXPECT_TRUE(Tracer::enabled());
  {
    GRIDSEC_TRACE_SPAN("t.post");
  }
  Tracer::stop();
  EXPECT_EQ(Tracer::event_count(), 1u);
  const auto evs = parse_events(export_json());
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "t.post");
}

#endif  // GRIDSEC_NO_TRACING

}  // namespace
}  // namespace gridsec::obs
