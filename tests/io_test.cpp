// Tests for network text serialization.
#include "gridsec/flow/io.hpp"

#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/western_us.hpp"

namespace gridsec::flow {
namespace {

Network sample() {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen", a, 100.0, 20.0);
  net.add_edge("line", EdgeKind::kTransmission, a, b, 80.0, 2.0, 0.05);
  net.add_edge("ccgt", EdgeKind::kConversion, b, a, 30.0, 4.0, 0.5);
  net.add_demand("load", b, 60.0, 50.0, 0.01);
  return net;
}

TEST(NetworkIo, RoundTripPreservesStructure) {
  const Network net = sample();
  auto parsed = parse_network_text(to_text(net));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Network& back = parsed->network;
  ASSERT_EQ(back.num_edges(), net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e).name, net.edge(e).name);
    EXPECT_EQ(back.edge(e).kind, net.edge(e).kind);
    EXPECT_DOUBLE_EQ(back.edge(e).capacity, net.edge(e).capacity);
    EXPECT_DOUBLE_EQ(back.edge(e).cost, net.edge(e).cost);
    EXPECT_DOUBLE_EQ(back.edge(e).loss, net.edge(e).loss);
  }
}

TEST(NetworkIo, RoundTripPreservesEconomics) {
  const Network net = sample();
  auto parsed = parse_network_text(to_text(net));
  ASSERT_TRUE(parsed.is_ok());
  auto a = solve_social_welfare(net);
  auto b = solve_social_welfare(parsed->network);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.welfare, b.welfare, 1e-9);
}

TEST(NetworkIo, OwnersRoundTrip) {
  const Network net = sample();
  std::vector<int> owners{0, 1, 2, 1};
  auto parsed = parse_network_text(to_text(net, owners));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->owners, owners);
}

TEST(NetworkIo, WesternUsRoundTrips) {
  auto m = sim::build_western_us();
  auto parsed = parse_network_text(to_text(m.network));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  auto a = solve_social_welfare(m.network);
  auto b = solve_social_welfare(parsed->network);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.welfare, b.welfare, 1e-6);
}

TEST(NetworkIo, CommentsAndBlankLinesIgnored) {
  const char* text = R"(
# a comment
hub A   # trailing comment

supply gen A 10 5
demand load A 8 20
)";
  auto parsed = parse_network_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->network.num_edges(), 2);
}

TEST(NetworkIo, ErrorsCarryLineNumbers) {
  auto bad = parse_network_text("hub A\nsupply gen NOPE 10 5\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(bad.status().message().find("NOPE"), std::string::npos);
}

TEST(NetworkIo, RejectsMalformedDeclarations) {
  EXPECT_FALSE(parse_network_text("frobnicate x\n").is_ok());
  EXPECT_FALSE(parse_network_text("hub\n").is_ok());
  EXPECT_FALSE(parse_network_text("hub A\nsupply g A -5 1\n").is_ok());
  EXPECT_FALSE(parse_network_text("hub A\nhub A\n").is_ok());
  EXPECT_FALSE(
      parse_network_text("hub A\nhub B\nedge e A B 10 1 1.5\n").is_ok());
  EXPECT_FALSE(parse_network_text("hub A\nedge e A A 10 1\n").is_ok());
}

TEST(NetworkIo, OwnerForUnknownEdgeRejected) {
  auto bad = parse_network_text("hub A\nsupply g A 5 1\nowner nope 0\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("nope"), std::string::npos);
}

TEST(NetworkIo, FileRoundTrip) {
  const Network net = sample();
  const std::string path = ::testing::TempDir() + "/gridsec_io_test.net";
  ASSERT_TRUE(write_network_file(path, net).is_ok());
  auto parsed = read_network_file(path);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->network.num_edges(), net.num_edges());
}

TEST(NetworkIo, MissingFileIsNotFound) {
  auto missing = read_network_file("/nonexistent/gridsec.net");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace gridsec::flow
