// Unit tests for the branch-and-bound MILP solver.
#include "gridsec/lp/milp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "gridsec/util/rng.hpp"

namespace gridsec::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Milp, PureLpPassesThrough) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, 4.0, 3.0);
  p.add_constraint("c", LinearExpr().add(x, 1.0), Sense::kLessEqual, 2.5);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.5, kTol);
}

TEST(Milp, SimpleKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> {a, c} = 17? vs {b,c}=20 w=6.
  Problem p(Objective::kMaximize);
  int a = p.add_binary("a", 10.0);
  int b = p.add_binary("b", 13.0);
  int c = p.add_binary("c", 7.0);
  p.add_constraint(
      "w", LinearExpr().add(a, 3.0).add(b, 4.0).add(c, 2.0),
      Sense::kLessEqual, 6.0);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 20.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(b)], 1.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(c)], 1.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(a)], 0.0, kTol);
}

TEST(Milp, IntegralityChangesOptimum) {
  // LP relaxation would take fractional x = 2.5; MILP must choose 2.
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, 10.0, 1.0, VarType::kInteger);
  p.add_constraint("c", LinearExpr().add(x, 2.0), Sense::kLessEqual, 5.0);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, kTol);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 2x = 3 has no integer solution for x in [0, 5].
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 5.0, 1.0, VarType::kInteger);
  p.add_constraint("odd", LinearExpr().add(x, 2.0), Sense::kEqual, 3.0);
  auto sol = solve_milp(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Milp, EqualityCoupledBinaries) {
  // Exactly two of four binaries, maximize weights.
  Problem p(Objective::kMaximize);
  std::vector<int> v;
  const double w[4] = {4.0, 1.0, 3.0, 2.0};
  LinearExpr sum;
  for (int i = 0; i < 4; ++i) {
    v.push_back(p.add_binary("b", w[i]));
    sum.add(v.back(), 1.0);
  }
  p.add_constraint("pick2", std::move(sum), Sense::kEqual, 2.0);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, kTol);  // picks weights 4 and 3
}

TEST(Milp, McCormickProductLinearization) {
  // y = a AND b via y <= a, y <= b, y >= a + b - 1. Maximizing y forces
  // both a and b on when y is profitable.
  Problem p(Objective::kMaximize);
  int a = p.add_binary("a", -1.0);  // small cost to activate
  int b = p.add_binary("b", -1.0);
  int y = p.add_variable("y", 0.0, 1.0, 5.0);
  p.add_constraint("y_le_a", LinearExpr().add(y, 1.0).add(a, -1.0),
                   Sense::kLessEqual, 0.0);
  p.add_constraint("y_le_b", LinearExpr().add(y, 1.0).add(b, -1.0),
                   Sense::kLessEqual, 0.0);
  p.add_constraint("y_ge", LinearExpr().add(y, 1.0).add(a, -1.0).add(b, -1.0),
                   Sense::kGreaterEqual, -1.0);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, kTol);  // 5 - 1 - 1
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 1.0, kTol);
}

TEST(Milp, MixedContinuousAndBinary) {
  // Facility-style: open (cost 10) to allow flow up to 8 worth 3/unit.
  Problem p(Objective::kMaximize);
  int open = p.add_binary("open", -10.0);
  int flow = p.add_variable("flow", 0.0, 8.0, 3.0);
  p.add_constraint("link", LinearExpr().add(flow, 1.0).add(open, -8.0),
                   Sense::kLessEqual, 0.0);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 14.0, kTol);  // 24 - 10
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(open)], 1.0, kTol);
}

TEST(Milp, NodeBudgetReportsIterationLimit) {
  BranchAndBoundOptions opts;
  opts.max_nodes = 1;
  BranchAndBoundSolver solver(opts);
  Problem p(Objective::kMaximize);
  LinearExpr sum;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    int b = p.add_binary("b", rng.uniform(1.0, 2.0));
    sum.add(b, rng.uniform(1.0, 2.0));
  }
  p.add_constraint("w", std::move(sum), Sense::kLessEqual, 8.0);
  auto sol = solver.solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kIterationLimit);
}

TEST(Milp, PresolveOptionMatchesPlain) {
  BranchAndBoundOptions opts;
  opts.use_presolve = true;
  BranchAndBoundSolver with_presolve(opts);
  Problem p(Objective::kMaximize);
  int fixed = p.add_variable("fixed", 2.0, 2.0, 1.0);  // presolve removes
  int a = p.add_binary("a", 10.0);
  int b = p.add_binary("b", 13.0);
  p.add_constraint("w", LinearExpr().add(a, 3.0).add(b, 4.0).add(fixed, 1.0),
                   Sense::kLessEqual, 8.0);
  auto plain = solve_milp(p);
  auto pre = with_presolve.solve(p);
  ASSERT_EQ(plain.status, SolveStatus::kOptimal);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_NEAR(plain.objective, pre.objective, 1e-6);
  EXPECT_NEAR(pre.x[static_cast<std::size_t>(fixed)], 2.0, 1e-9);
}

TEST(Milp, PresolveDetectsInfeasibleBeforeSearch) {
  BranchAndBoundOptions opts;
  opts.use_presolve = true;
  BranchAndBoundSolver solver(opts);
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 1.0, 1.0, VarType::kInteger);
  p.add_constraint("hi", LinearExpr().add(x, 1.0), Sense::kGreaterEqual, 3.0);
  auto sol = solver.solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Milp, PresolveFractionalIntegerFixingFallsBack) {
  // The singleton row fixes the integer x at 2.5; presolve must not emit
  // that as a solution — the plain search proves infeasibility.
  BranchAndBoundOptions opts;
  opts.use_presolve = true;
  BranchAndBoundSolver solver(opts);
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 5.0, 1.0, VarType::kInteger);
  p.add_constraint("half", LinearExpr().add(x, 2.0), Sense::kEqual, 5.0);
  auto sol = solver.solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Milp, DivingDisabledStillOptimal) {
  BranchAndBoundOptions opts;
  opts.diving_heuristic = false;
  BranchAndBoundSolver solver(opts);
  Problem p(Objective::kMaximize);
  int a = p.add_binary("a", 10.0);
  int b = p.add_binary("b", 13.0);
  int c = p.add_binary("c", 7.0);
  p.add_constraint("w", LinearExpr().add(a, 3.0).add(b, 4.0).add(c, 2.0),
                   Sense::kLessEqual, 6.0);
  auto sol = solver.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 20.0, 1e-6);
}

TEST(Milp, DivingSeedsIncumbentUnderTinyNodeBudget) {
  // With one node the search proves nothing, but the dive alone can find a
  // feasible (if suboptimal) plan: the incumbent survives with
  // kIterationLimit status.
  BranchAndBoundOptions opts;
  opts.max_nodes = 1;
  BranchAndBoundSolver solver(opts);
  Problem p(Objective::kMaximize);
  LinearExpr sum;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    sum.add(p.add_binary("b", rng.uniform(1.0, 2.0)), rng.uniform(1.0, 2.0));
  }
  p.add_constraint("w", std::move(sum), Sense::kLessEqual, 7.0);
  auto sol = solver.solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kIterationLimit);
  EXPECT_FALSE(sol.x.empty());  // the dive's incumbent is reported
  EXPECT_TRUE(p.is_feasible(sol.x, 1e-6));
}

TEST(Milp, FixedIntegerDualsRecovered) {
  // Facility problem: after fixing open=1, the LP duals price the linking
  // constraint like any continuous model.
  Problem p(Objective::kMaximize);
  int open = p.add_binary("open", -10.0);
  // Loose variable bound so the linking row is the unique binder (avoids a
  // degenerate dual split between the row and the bound).
  int flow = p.add_variable("flow", 0.0, 20.0, 3.0);
  p.add_constraint("link", LinearExpr().add(flow, 1.0).add(open, -8.0),
                   Sense::kLessEqual, 0.0);
  auto plain = solve_milp(p);
  auto with_duals = solve_milp_with_duals(p);
  ASSERT_EQ(with_duals.status, SolveStatus::kOptimal);
  EXPECT_NEAR(with_duals.objective, plain.objective, 1e-6);
  ASSERT_EQ(with_duals.duals.size(), 1u);
  // With open fixed at 1, the link row is flow <= 8, binding with dual 3.
  EXPECT_NEAR(with_duals.duals[0], 3.0, 1e-6);
  EXPECT_TRUE(plain.duals.empty());  // the plain MILP clears duals
}

TEST(Milp, FixedIntegerDualsInfeasiblePassesThrough) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 1.0, 1.0, VarType::kInteger);
  p.add_constraint("odd", LinearExpr().add(x, 2.0), Sense::kEqual, 3.0);
  auto sol = solve_milp_with_duals(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

// Brute-force cross-check: random binary knapsacks with <= 12 items,
// B&B must match exhaustive enumeration exactly.
class MilpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpVsBruteForce, MatchesEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const int n = 4 + static_cast<int>(rng.uniform_index(9));
  std::vector<double> value(static_cast<std::size_t>(n));
  std::vector<double> weight(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    value[static_cast<std::size_t>(i)] = rng.uniform(-5.0, 10.0);
    weight[static_cast<std::size_t>(i)] = rng.uniform(0.5, 5.0);
  }
  const double budget = rng.uniform(2.0, 12.0);

  Problem p(Objective::kMaximize);
  LinearExpr wsum;
  for (int i = 0; i < n; ++i) {
    int b = p.add_binary("b", value[static_cast<std::size_t>(i)]);
    wsum.add(b, weight[static_cast<std::size_t>(i)]);
  }
  p.add_constraint("budget", std::move(wsum), Sense::kLessEqual, budget);
  auto sol = solve_milp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);

  double best = 0.0;  // empty set always feasible
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    double v = 0.0, w = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        v += value[static_cast<std::size_t>(i)];
        w += weight[static_cast<std::size_t>(i)];
      }
    }
    if (w <= budget + 1e-9) best = std::max(best, v);
  }
  EXPECT_NEAR(sol.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpVsBruteForce, ::testing::Range(0, 20));

}  // namespace
}  // namespace gridsec::lp
