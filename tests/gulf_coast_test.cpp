// Tests for the Gulf-Coast scenario, including cross-topology checks that
// the paper's qualitative results are not western-US artifacts.
#include "gridsec/sim/gulf_coast.hpp"

#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/experiments.hpp"

namespace gridsec::sim {
namespace {

TEST(GulfCoast, StructureAsDocumented) {
  auto m = build_gulf_coast();
  EXPECT_EQ(m.states.size(), 4u);
  int hubs = 0;
  for (const auto& n : m.network.nodes()) {
    if (n.kind == flow::NodeKind::kHub) ++hubs;
  }
  EXPECT_EQ(hubs, 8);
  EXPECT_EQ(m.long_haul.size(), 10u);
  EXPECT_EQ(m.converters.size(), 4u);
}

TEST(GulfCoast, ValidatesAndSolves) {
  auto m = build_gulf_coast();
  const Status st = m.network.validate();
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  auto sol = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(sol.optimal());
  EXPECT_GT(sol.welfare, 0.0);
}

TEST(GulfCoast, GasDependencyTighterThanWesternUs) {
  // The Gulf fleet is gas-heavy: the share of electricity produced through
  // converters must exceed the western model's.
  const auto share = [](const WesternUsModel& m) {
    auto sol = flow::solve_social_welfare(m.network);
    EXPECT_TRUE(sol.optimal());
    double conv = 0.0, demand = 0.0;
    for (flow::EdgeId e : m.converters) {
      conv += sol.flow[static_cast<std::size_t>(e)];
    }
    for (int e = 0; e < m.network.num_edges(); ++e) {
      const auto& edge = m.network.edge(e);
      if (edge.kind == flow::EdgeKind::kDemand &&
          edge.name.find(".elec.") != std::string::npos) {
        demand += sol.flow[static_cast<std::size_t>(e)];
      }
    }
    return conv / demand;
  };
  EXPECT_GT(share(build_gulf_coast()), share(build_western_us()));
}

TEST(GulfCoast, GasFieldOutagePropagatesHard) {
  auto m = build_gulf_coast();
  auto base = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(base.optimal());
  auto tx = m.network.find_edge("TX.gas.prod");
  ASSERT_TRUE(tx.is_ok());
  flow::Network hit = m.network;
  hit.set_capacity(tx.value(), 0.0);
  auto after = flow::solve_social_welfare(hit);
  ASSERT_TRUE(after.optimal());
  // Losing the Permian proxy must cost a sizeable share of total welfare.
  EXPECT_LT(after.welfare, 0.9 * base.welfare);
}

TEST(GulfCoast, Figure2ShapeHolds) {
  // The Exp-1 result generalizes: gains grow with actor count, and
  // gain+loss is ownership-invariant.
  auto m = build_gulf_coast();
  ExperimentOptions opt;
  opt.trials = 5;
  opt.seed = 42;
  auto points = experiment_gain_loss(m.network, {1, 4, 12}, opt);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_NEAR(points[0].mean_gain, 0.0, 1e-6);
  EXPECT_GT(points[1].mean_gain, points[0].mean_gain);
  EXPECT_GT(points[2].mean_gain, points[1].mean_gain);
  EXPECT_NEAR(points[1].mean_net, points[0].mean_net, 1e-5);
  EXPECT_NEAR(points[2].mean_net, points[0].mean_net, 1e-5);
}

TEST(GulfCoast, ExportsCompeteWithLocalUse) {
  // Export demand must carry flow at the optimum (the netback price is
  // attractive for the gas-rich region).
  auto m = build_gulf_coast();
  auto sol = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(sol.optimal());
  auto exp = m.network.find_edge("TX.gas.export");
  ASSERT_TRUE(exp.is_ok());
  EXPECT_GT(sol.flow[static_cast<std::size_t>(exp.value())], 0.0);
}

}  // namespace
}  // namespace gridsec::sim
