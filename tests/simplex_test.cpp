// Unit tests for the bounded-variable two-phase simplex solver.
#include "gridsec/lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gridsec/lp/lp_io.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialBoundsOnlyMinimize) {
  Problem p(Objective::kMinimize);
  p.add_variable("x", 1.0, 5.0, 2.0);
  p.add_variable("y", -3.0, 4.0, -1.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 1.0, kTol);   // positive cost -> lower bound
  EXPECT_NEAR(sol.x[1], 4.0, kTol);   // negative cost -> upper bound
  EXPECT_NEAR(sol.objective, 2.0 * 1.0 - 4.0, kTol);
}

TEST(Simplex, ClassicTwoVariableMaximize) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier & Lieberman).
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 3.0);
  int y = p.add_variable("y", 0.0, kInfinity, 5.0);
  p.add_constraint("c1", LinearExpr().add(x, 1.0), Sense::kLessEqual, 4.0);
  p.add_constraint("c2", LinearExpr().add(y, 2.0), Sense::kLessEqual, 12.0);
  p.add_constraint("c3", LinearExpr().add(x, 3.0).add(y, 2.0),
                   Sense::kLessEqual, 18.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 36.0, kTol);
  EXPECT_NEAR(sol.x[0], 2.0, kTol);
  EXPECT_NEAR(sol.x[1], 6.0, kTol);
}

TEST(Simplex, EqualityConstraintsRequirePhase1) {
  // min x + 2y s.t. x + y = 10, x - y = 2  -> x=6, y=4.
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  int y = p.add_variable("y", 0.0, kInfinity, 2.0);
  p.add_constraint("sum", LinearExpr().add(x, 1.0).add(y, 1.0), Sense::kEqual,
                   10.0);
  p.add_constraint("diff", LinearExpr().add(x, 1.0).add(y, -1.0),
                   Sense::kEqual, 2.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 6.0, kTol);
  EXPECT_NEAR(sol.x[1], 4.0, kTol);
  EXPECT_NEAR(sol.objective, 14.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 1.0, 1.0);
  p.add_constraint("too_big", LinearExpr().add(x, 1.0), Sense::kGreaterEqual,
                   2.0);
  auto sol = solve_lp(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleConflictingRows) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, kInfinity, 0.0);
  int y = p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint("a", LinearExpr().add(x, 1.0).add(y, 1.0), Sense::kEqual,
                   1.0);
  p.add_constraint("b", LinearExpr().add(x, 1.0).add(y, 1.0), Sense::kEqual,
                   3.0);
  auto sol = solve_lp(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  int y = p.add_variable("y", 0.0, kInfinity, 0.0);
  p.add_constraint("c", LinearExpr().add(x, 1.0).add(y, -1.0),
                   Sense::kLessEqual, 5.0);
  auto sol = solve_lp(p);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(Simplex, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3.
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 2.0, kInfinity, 2.0);
  int y = p.add_variable("y", 3.0, kInfinity, 3.0);
  p.add_constraint("cover", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kGreaterEqual, 10.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 7.0, kTol);
  EXPECT_NEAR(sol.x[1], 3.0, kTol);
  EXPECT_NEAR(sol.objective, 23.0, kTol);
}

TEST(Simplex, UpperBoundedVariablesBoundFlip) {
  // max x + y with x,y in [0,1] and x + y <= 1.5: optimum uses a partial.
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, 1.0, 1.0);
  int y = p.add_variable("y", 0.0, 1.0, 1.0);
  p.add_constraint("cap", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kLessEqual, 1.5);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.5, kTol);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 1.5, kTol);
}

TEST(Simplex, NegativeLowerBounds) {
  // min |style| objective with variables allowed negative.
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", -10.0, 10.0, 1.0);
  int y = p.add_variable("y", -10.0, 10.0, 2.0);
  p.add_constraint("c", LinearExpr().add(x, 1.0).add(y, 1.0), Sense::kEqual,
                   -5.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Cheapest way to sum to -5: y at its lower bound -10, x = 5.
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 5.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], -10.0, kTol);
  EXPECT_NEAR(sol.objective, 5.0 - 20.0, kTol);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (cap 20, 30), 2 consumers (demand 25 each), unit costs:
  //   s0->c0: 1, s0->c1: 4, s1->c0: 2, s1->c1: 1
  // Optimal: s0->c0 20, s1->c0 5, s1->c1 25 -> cost 20 + 10 + 25 = 55.
  Problem p(Objective::kMinimize);
  int f00 = p.add_variable("f00", 0.0, kInfinity, 1.0);
  int f01 = p.add_variable("f01", 0.0, kInfinity, 4.0);
  int f10 = p.add_variable("f10", 0.0, kInfinity, 2.0);
  int f11 = p.add_variable("f11", 0.0, kInfinity, 1.0);
  p.add_constraint("s0", LinearExpr().add(f00, 1.0).add(f01, 1.0),
                   Sense::kLessEqual, 20.0);
  p.add_constraint("s1", LinearExpr().add(f10, 1.0).add(f11, 1.0),
                   Sense::kLessEqual, 30.0);
  p.add_constraint("d0", LinearExpr().add(f00, 1.0).add(f10, 1.0),
                   Sense::kGreaterEqual, 25.0);
  p.add_constraint("d1", LinearExpr().add(f01, 1.0).add(f11, 1.0),
                   Sense::kGreaterEqual, 25.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 55.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(f00)], 20.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(f11)], 25.0, kTol);
}

TEST(Simplex, DualsMatchShadowPrices) {
  // max 3x + 5y, x <= 4, 2y <= 12, 3x + 2y <= 18.
  // Known duals: y1 = 0, y2 = 3/2, y3 = 1.
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 3.0);
  int y = p.add_variable("y", 0.0, kInfinity, 5.0);
  p.add_constraint("c1", LinearExpr().add(x, 1.0), Sense::kLessEqual, 4.0);
  p.add_constraint("c2", LinearExpr().add(y, 2.0), Sense::kLessEqual, 12.0);
  p.add_constraint("c3", LinearExpr().add(x, 3.0).add(y, 2.0),
                   Sense::kLessEqual, 18.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  ASSERT_EQ(sol.duals.size(), 3u);
  EXPECT_NEAR(sol.duals[0], 0.0, kTol);
  EXPECT_NEAR(sol.duals[1], 1.5, kTol);
  EXPECT_NEAR(sol.duals[2], 1.0, kTol);
}

TEST(Simplex, DualsPredictRhsPerturbation) {
  // Numerically verify dual interpretation: obj(b + e) - obj(b) ~= y_i * e.
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, kInfinity, 2.0);
  int y = p.add_variable("y", 0.0, kInfinity, 3.0);
  p.add_constraint("need", LinearExpr().add(x, 1.0).add(y, 2.0),
                   Sense::kGreaterEqual, 8.0);
  p.add_constraint("mix", LinearExpr().add(x, 1.0).add(y, -1.0),
                   Sense::kLessEqual, 1.0);
  auto base = solve_lp(p);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  const double eps = 1e-3;
  for (int row = 0; row < p.num_constraints(); ++row) {
    Problem q = p;
    q.set_rhs(row, p.constraint(row).rhs + eps);
    auto pert = solve_lp(q);
    ASSERT_EQ(pert.status, SolveStatus::kOptimal);
    EXPECT_NEAR(pert.objective - base.objective,
                base.duals[static_cast<std::size_t>(row)] * eps, 1e-6)
        << "row " << row;
  }
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Beale's classic cycling example (converted to our builder); Bland's rule
  // fallback must terminate with optimum -0.05.
  Problem p(Objective::kMinimize);
  int x1 = p.add_variable("x1", 0.0, kInfinity, -0.75);
  int x2 = p.add_variable("x2", 0.0, kInfinity, 150.0);
  int x3 = p.add_variable("x3", 0.0, kInfinity, -0.02);
  int x4 = p.add_variable("x4", 0.0, kInfinity, 6.0);
  p.add_constraint(
      "r1",
      LinearExpr().add(x1, 0.25).add(x2, -60.0).add(x3, -0.04).add(x4, 9.0),
      Sense::kLessEqual, 0.0);
  p.add_constraint(
      "r2",
      LinearExpr().add(x1, 0.5).add(x2, -90.0).add(x3, -0.02).add(x4, 3.0),
      Sense::kLessEqual, 0.0);
  p.add_constraint("r3", LinearExpr().add(x3, 1.0), Sense::kLessEqual, 1.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, kTol);
}

TEST(Simplex, FixedVariablesRespected) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 2.5, 2.5, 10.0);  // fixed
  int y = p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint("c", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kLessEqual, 10.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.5, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 7.5, kTol);
}

TEST(Simplex, RedundantConstraintsHandled) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_constraint("a", LinearExpr().add(x, 1.0), Sense::kLessEqual, 5.0);
  p.add_constraint("b", LinearExpr().add(x, 1.0), Sense::kLessEqual, 5.0);
  p.add_constraint("c", LinearExpr().add(x, 2.0), Sense::kLessEqual, 10.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
}

TEST(Simplex, ZeroRowEqualityFeasible) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 1.0, 1.0);
  p.add_constraint("zero", LinearExpr().add(x, 0.0), Sense::kEqual, 0.0);
  auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, kTol);
}

// Property sweep: randomized bounded transportation LPs must (a) be declared
// optimal, (b) satisfy primal feasibility, and (c) satisfy weak duality
// bounds against a feasible reference point.
class SimplexRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomized, RandomTransportationFeasibleAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int ns = 2 + static_cast<int>(rng.uniform_index(4));  // suppliers
  const int nc = 2 + static_cast<int>(rng.uniform_index(4));  // consumers

  Problem p(Objective::kMinimize);
  std::vector<std::vector<int>> f(static_cast<std::size_t>(ns),
                                  std::vector<int>(static_cast<std::size_t>(nc)));
  for (int i = 0; i < ns; ++i) {
    for (int j = 0; j < nc; ++j) {
      f[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          p.add_variable("f", 0.0, rng.uniform(5.0, 50.0),
                         rng.uniform(1.0, 10.0));
    }
  }
  std::vector<double> supply(static_cast<std::size_t>(ns));
  double total_supply = 0.0;
  for (int i = 0; i < ns; ++i) {
    supply[static_cast<std::size_t>(i)] = rng.uniform(10.0, 40.0);
    total_supply += supply[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < ns; ++i) {
    LinearExpr e;
    for (int j = 0; j < nc; ++j) {
      e.add(f[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    }
    p.add_constraint("supply", std::move(e), Sense::kLessEqual,
                     supply[static_cast<std::size_t>(i)]);
  }
  // Keep demand satisfiable: total demand at 50% of supply, split evenly.
  const double demand_each = 0.5 * total_supply / nc;
  for (int j = 0; j < nc; ++j) {
    LinearExpr e;
    for (int i = 0; i < ns; ++i) {
      e.add(f[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    }
    p.add_constraint("demand", std::move(e), Sense::kGreaterEqual,
                     demand_each);
  }
  auto sol = solve_lp(p);
  // Edge capacities can still make a draw infeasible; both verdicts are
  // legitimate, but an optimal verdict must be backed by a feasible point.
  if (sol.status == SolveStatus::kOptimal) {
    EXPECT_TRUE(p.is_feasible(sol.x, 1e-5));
    EXPECT_GE(sol.objective, -1e-9);  // nonneg costs -> nonneg objective
  } else {
    EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomized, ::testing::Range(0, 25));

TEST(LpIo, SanitizesAwkwardNames) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("2nd stage", 0.0, 1.0, 1.0);  // leading digit
  p.add_constraint("", LinearExpr().add(x, -1.0), Sense::kGreaterEqual,
                   -0.5);  // unnamed row, negative leading coefficient
  const std::string text = to_lp_format(p);
  EXPECT_NE(text.find("_2nd_stage"), std::string::npos);
  EXPECT_NE(text.find("c0:"), std::string::npos);
  EXPECT_NE(text.find("- "), std::string::npos);
}

TEST(LpIo, WritesReadableModel) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("flow rate", 0.0, 10.0, 2.5);
  p.add_binary("pick", 1.0);
  p.add_constraint("cap limit", LinearExpr().add(x, 1.0), Sense::kLessEqual,
                   7.0);
  const std::string text = to_lp_format(p);
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("flow_rate"), std::string::npos);
  EXPECT_NE(text.find("cap_limit"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

}  // namespace
}  // namespace gridsec::lp
