// Tests for table/CSV rendering.
#include "gridsec/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gridsec {
namespace {

TEST(Table, AlignedOutputContainsHeadersAndRule) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

TEST(Table, DoubleRowsUsePrecision) {
  Table t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"k"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRowStructure) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CountsTracked) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"x", "y", "z"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace gridsec
