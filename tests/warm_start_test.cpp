// Warm-start semantics: Basis serialization, crash repair of stale or
// incompatible bases, warm-started branch-and-bound, and certificate
// parity between warm and cold solves. Every solve here is additionally
// re-verified by the certify_all hook riding in this binary.
#include <cmath>

#include <gtest/gtest.h>

#include "gridsec/lp/basis.hpp"
#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/audit.hpp"
#include "gridsec/obs/metrics.hpp"

namespace gridsec::lp {
namespace {

std::int64_t counter(const char* name) {
  return obs::default_registry().counter(name).value();
}

// ---------------------------------------------------------------------------
// Basis serialization.

TEST(BasisSerialization, RoundTripsMixedStatuses) {
  Basis b;
  b.variables = {VarStatus::kBasic, VarStatus::kAtLower, VarStatus::kAtUpper,
                 VarStatus::kAtLower};
  b.rows = {VarStatus::kAtLower, VarStatus::kBasic};
  EXPECT_EQ(to_string(b), "v:BLUL|r:LB");
  auto parsed = parse_basis(to_string(b));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), b);
}

TEST(BasisSerialization, RoundTripsEmpty) {
  Basis b;
  EXPECT_EQ(to_string(b), "v:|r:");
  auto parsed = parse_basis("v:|r:");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(BasisSerialization, RejectsMalformedText) {
  EXPECT_FALSE(parse_basis("").is_ok());
  EXPECT_FALSE(parse_basis("garbage").is_ok());
  EXPECT_FALSE(parse_basis("v:BL").is_ok());       // missing row frame
  EXPECT_FALSE(parse_basis("v:BLX|r:L").is_ok());  // unknown status letter
  EXPECT_FALSE(parse_basis("r:L|v:B").is_ok());    // frames out of order
}

// ---------------------------------------------------------------------------
// Warm LP re-solves and crash repair.

Problem small_lp() {
  Problem p(Objective::kMaximize);
  const int x = p.add_variable("x", 0.0, 10.0, 3.0);
  const int y = p.add_variable("y", 0.0, 10.0, 2.0);
  const int z = p.add_variable("z", 0.0, 5.0, 1.0);
  p.add_constraint("cap", LinearExpr().add(x, 1.0).add(y, 1.0).add(z, 1.0),
                   Sense::kLessEqual, 12.0);
  p.add_constraint("mix", LinearExpr().add(x, 2.0).add(y, 1.0),
                   Sense::kLessEqual, 15.0);
  return p;
}

TEST(WarmStart, ResolveFromOwnBasisIsPivotFree) {
  const Problem p = small_lp();
  const Solution cold = SimplexSolver(SimplexOptions{}).solve(p);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.basis.empty());
  EXPECT_FALSE(cold.warm_started);

  const std::int64_t warm_before = counter("lp.simplex.warm_starts");
  SimplexOptions options;
  options.warm_start = cold.basis;
  const Solution warm = SimplexSolver(options).solve(p);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(counter("lp.simplex.warm_starts"), warm_before + 1);
  // Same basis, same vertex: the re-solve confirms the optimum without
  // any phase-1 work.
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-9 * (1.0 + std::fabs(cold.objective)));
  EXPECT_EQ(warm.basis, cold.basis);
  EXPECT_EQ(warm.iterations, 0);
}

TEST(WarmStart, CrashRepairsStaleBasis) {
  Problem p = small_lp();
  const Solution cold = SimplexSolver(SimplexOptions{}).solve(p);
  ASSERT_TRUE(cold.optimal());

  // Perturb the problem so the old basis is stale (different optimal
  // vertex), then warm-start from it: the solver must repair and still
  // reach the perturbed problem's own optimum.
  Problem shifted = small_lp();
  shifted.set_objective_coef(0, -4.0);  // x now hurts the objective
  const Solution shifted_cold = SimplexSolver(SimplexOptions{}).solve(shifted);
  ASSERT_TRUE(shifted_cold.optimal());

  SimplexOptions options;
  options.warm_start = cold.basis;
  const Solution shifted_warm = SimplexSolver(options).solve(shifted);
  ASSERT_TRUE(shifted_warm.optimal());
  EXPECT_TRUE(shifted_warm.warm_started);
  EXPECT_NEAR(shifted_warm.objective, shifted_cold.objective,
              1e-9 * (1.0 + std::fabs(shifted_cold.objective)));
}

TEST(WarmStart, CrashRepairsOverfullBasis) {
  const Problem p = small_lp();
  const Solution cold = SimplexSolver(SimplexOptions{}).solve(p);
  ASSERT_TRUE(cold.optimal());

  // Every variable and every row marked basic: five candidate columns for
  // a two-row basis. The crash selection must demote the dependent ones
  // (each demotion is a counted repair) and still reach the optimum.
  Basis bogus;
  bogus.variables = {VarStatus::kBasic, VarStatus::kBasic, VarStatus::kBasic};
  bogus.rows = {VarStatus::kBasic, VarStatus::kBasic};
  const std::int64_t repairs_before = counter("lp.simplex.basis_repairs");
  SimplexOptions options;
  options.warm_start = bogus;
  const Solution warm = SimplexSolver(options).solve(p);
  ASSERT_TRUE(warm.optimal());
  EXPECT_GT(counter("lp.simplex.basis_repairs"), repairs_before);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-9 * (1.0 + std::fabs(cold.objective)));
}

TEST(WarmStart, RejectsBasisWithWrongRowCount) {
  const Problem p = small_lp();
  const Solution cold = SimplexSolver(SimplexOptions{}).solve(p);
  ASSERT_TRUE(cold.optimal());

  // A basis from a structurally different problem (wrong row count)
  // cannot be mapped onto this tableau; the solver falls back to a cold
  // solve rather than guessing.
  Basis foreign;
  foreign.variables = {VarStatus::kAtLower};
  foreign.rows = {VarStatus::kBasic, VarStatus::kBasic, VarStatus::kBasic};
  const std::int64_t rejects_before = counter("lp.simplex.warm_start_rejects");
  SimplexOptions options;
  options.warm_start = foreign;
  const Solution sol = SimplexSolver(options).solve(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_FALSE(sol.warm_started);
  EXPECT_EQ(counter("lp.simplex.warm_start_rejects"), rejects_before + 1);
  EXPECT_NEAR(sol.objective, cold.objective,
              1e-9 * (1.0 + std::fabs(cold.objective)));
}

TEST(WarmStart, KillSwitchForcesColdSolves) {
  const Problem p = small_lp();
  const Solution cold = SimplexSolver(SimplexOptions{}).solve(p);
  ASSERT_TRUE(cold.optimal());

  set_warm_start_enabled(false);
  SimplexOptions options;
  options.warm_start = cold.basis;
  const Solution sol = SimplexSolver(options).solve(p);
  set_warm_start_enabled(true);
  ASSERT_TRUE(sol.optimal());
  EXPECT_FALSE(sol.warm_started);
  EXPECT_NEAR(sol.objective, cold.objective,
              1e-9 * (1.0 + std::fabs(cold.objective)));
}

// ---------------------------------------------------------------------------
// Warm-started branch and bound.

Problem small_milp() {
  Problem p(Objective::kMaximize);
  const int a = p.add_binary("a", 5.0);
  const int b = p.add_binary("b", 4.0);
  const int c = p.add_binary("c", 3.0);
  const int x = p.add_variable("x", 0.0, 4.0, 1.0);
  p.add_constraint(
      "knap", LinearExpr().add(a, 4.0).add(b, 3.0).add(c, 2.0).add(x, 1.0),
      Sense::kLessEqual, 7.0);
  return p;
}

TEST(WarmStart, BranchAndBoundReachesSameIncumbent) {
  const Problem p = small_milp();
  const Solution first = BranchAndBoundSolver(BranchAndBoundOptions{}).solve(p);
  ASSERT_TRUE(first.optimal());
  ASSERT_FALSE(first.basis.empty());

  // Re-solving with the incumbent's relaxation basis as the root warm
  // start must reproduce the incumbent exactly.
  BranchAndBoundOptions options;
  options.lp_options.warm_start = first.basis;
  const Solution second = BranchAndBoundSolver(options).solve(p);
  ASSERT_TRUE(second.optimal());
  EXPECT_NEAR(second.objective, first.objective,
              1e-9 * (1.0 + std::fabs(first.objective)));
  ASSERT_EQ(second.x.size(), first.x.size());
  for (std::size_t j = 0; j < first.x.size(); ++j) {
    EXPECT_NEAR(second.x[j], first.x[j], 1e-6) << "variable " << j;
  }
}

// ---------------------------------------------------------------------------
// Certificate parity: a warm solve must be as certifiable as a cold one.

TEST(WarmStart, CertificateResidualsMatchColdSolve) {
  const Problem p = small_lp();
  const Solution cold = SimplexSolver(SimplexOptions{}).solve(p);
  ASSERT_TRUE(cold.optimal());
  SimplexOptions options;
  options.warm_start = cold.basis;
  const Solution warm = SimplexSolver(options).solve(p);
  ASSERT_TRUE(warm.optimal());

  const obs::Certificate cc = obs::certify(p, cold);
  const obs::Certificate wc = obs::certify(p, warm);
  EXPECT_EQ(cc.verdict, obs::CertVerdict::kVerified);
  EXPECT_EQ(wc.verdict, obs::CertVerdict::kVerified);
  // Identical basis => identical recomputed solution => identical
  // residuals (up to roundoff in the independent checker).
  EXPECT_NEAR(wc.primal_residual, cc.primal_residual, 1e-12);
  EXPECT_NEAR(wc.bound_residual, cc.bound_residual, 1e-12);
  EXPECT_NEAR(wc.dual_residual, cc.dual_residual, 1e-12);
  EXPECT_NEAR(wc.reduced_cost_residual, cc.reduced_cost_residual, 1e-12);
  EXPECT_NEAR(wc.complementary_slackness, cc.complementary_slackness, 1e-12);
  EXPECT_NEAR(wc.duality_gap, cc.duality_gap, 1e-12);
  EXPECT_NEAR(wc.objective_residual, cc.objective_residual, 1e-12);
}

}  // namespace
}  // namespace gridsec::lp
