// Tests for the thread pool and parallel_for.
#include "gridsec/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gridsec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(&pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(&pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic reduction: each index contributes a fixed value, so sums
  // must agree across pool sizes.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    const std::size_t n = 500;
    std::vector<double> out(n);
    parallel_for(&pool, n, [&](std::size_t i) {
      out[i] = static_cast<double>(i * i % 97);
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double s1 = run(1);
  const double s4 = run(4);
  EXPECT_DOUBLE_EQ(s1, s4);
}

TEST(ParallelFor, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(&pool, 8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace gridsec
