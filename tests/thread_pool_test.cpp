// Tests for the thread pool, parallel_for, and worker busy/idle accounting.
#include "gridsec/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gridsec/obs/metrics.hpp"

namespace gridsec {
namespace {

TEST(ThreadPool, WorkerStatsAccountBusyTimePerTask) {
  ThreadPool pool(1);
  for (int i = 0; i < 3; ++i) {
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
  }
  pool.wait_idle();
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].tasks, 3);
  // 3 x 5ms of sleeping inside task bodies; allow generous slack for
  // coarse schedulers but busy time must clearly register.
  EXPECT_GE(stats[0].busy_ns, 10'000'000);
}

TEST(ThreadPool, WorkerStatsIncludeLiveIdleForParkedWorkers) {
  ThreadPool pool(2);
  // No work submitted: both workers are parked from construction on. The
  // open waits must show up as idle time without any task transition.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.tasks, 0);
    EXPECT_EQ(s.busy_ns, 0);
    EXPECT_GE(s.idle_ns, 4'000'000);  // parked for ~10ms, allow slack
  }
}

TEST(ThreadPool, BusyAndIdleFlowIntoRegistryCounters) {
  auto& registry = obs::default_registry();
  const std::int64_t busy_before =
      registry.counter("util.threadpool.busy_ns").value();
  const std::int64_t idle_before =
      registry.counter("util.threadpool.idle_ns").value();
  {
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.submit([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });
    }
    pool.wait_idle();
  }  // destructor joins the workers, flushing their final idle waits
  EXPECT_GE(registry.counter("util.threadpool.busy_ns").value(),
            busy_before + 4'000'000);  // 4 x 2ms with slack
  EXPECT_GT(registry.counter("util.threadpool.idle_ns").value(),
            idle_before);
}

TEST(ThreadPool, WorkerStatsUnderConcurrentLoadCoverEveryWorker) {
  // TSan-exercised: stats are read while workers are mid-task.
  ThreadPool pool(4);
  std::atomic<bool> stop_poll{false};
  std::thread poller([&pool, &stop_poll] {
    while (!stop_poll.load(std::memory_order_relaxed)) {
      const auto stats = pool.worker_stats();
      EXPECT_EQ(stats.size(), 4u);
      for (const auto& s : stats) {
        EXPECT_GE(s.busy_ns, 0);
        EXPECT_GE(s.idle_ns, 0);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  parallel_for(&pool, 64, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  stop_poll.store(true, std::memory_order_relaxed);
  poller.join();
  pool.wait_idle();
  const auto stats = pool.worker_stats();
  std::int64_t total_tasks = 0;
  std::int64_t total_busy = 0;
  for (const auto& s : stats) {
    total_tasks += s.tasks;
    total_busy += s.busy_ns;
  }
  // parallel_for submits one pump task per worker (4 for 64 items).
  EXPECT_GE(total_tasks, 4);
  EXPECT_GT(total_busy, 0);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(&pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(&pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic reduction: each index contributes a fixed value, so sums
  // must agree across pool sizes.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    const std::size_t n = 500;
    std::vector<double> out(n);
    parallel_for(&pool, n, [&](std::size_t i) {
      out[i] = static_cast<double>(i * i % 97);
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double s1 = run(1);
  const double s4 = run(4);
  EXPECT_DOUBLE_EQ(s1, s4);
}

TEST(ParallelFor, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(&pool, 8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ThrowDrainsAllWorkersBeforeReturning) {
  // Regression: parallel_for must not rethrow while workers still hold
  // references to caller state. By the time the exception surfaces here,
  // no worker may touch `hits` or `in_flight` again; with an early-rethrow
  // implementation the captures go out of scope while workers still run,
  // which ASan flags as a stack-use-after-scope.
  ThreadPool pool(4);
  const std::size_t n = 64;
  {
    std::vector<std::atomic<int>> hits(n);
    std::atomic<int> in_flight{0};
    EXPECT_THROW(
        parallel_for(&pool, n,
                     [&](std::size_t i) {
                       in_flight.fetch_add(1);
                       if (i == 0) {
                         in_flight.fetch_sub(1);
                         throw std::runtime_error("early failure");
                       }
                       hits[i].fetch_add(1);
                       in_flight.fetch_sub(1);
                     }),
        std::runtime_error);
    // All workers have finished: nothing is still executing the lambda.
    EXPECT_EQ(in_flight.load(), 0);
    // Every index ran at most once (some are skipped after the failure).
    for (std::size_t i = 1; i < n; ++i) EXPECT_LE(hits[i].load(), 1);
  }
  // The pool survives and stays usable after a throwing parallel_for.
  std::atomic<int> ran{0};
  parallel_for(&pool, 16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, SurfacesFirstExceptionMessage) {
  ThreadPool pool(3);
  try {
    parallel_for(&pool, 32, [](std::size_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "parallel_for should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ParallelFor, ExceptionStopsClaimingNewIndices) {
  // After a failure is observed, workers stop claiming fresh work, so a
  // long range finishes promptly instead of running every index.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_for(&pool, 100000,
                   [&](std::size_t) {
                     executed.fetch_add(1);
                     throw std::runtime_error("stop");
                   }),
      std::runtime_error);
  // Cancellation is advisory, but most of the range must be skipped.
  EXPECT_LT(executed.load(), 100000);
}

TEST(ParallelFor, SerialPathPropagatesException) {
  std::vector<int> ran;
  EXPECT_THROW(parallel_for(nullptr, 5,
                            [&](std::size_t i) {
                              if (i == 2) throw std::runtime_error("serial");
                              ran.push_back(static_cast<int>(i));
                            }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace gridsec
