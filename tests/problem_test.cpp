// Tests for the LP/MILP model builder and the Status machinery.
#include "gridsec/lp/problem.hpp"

#include <gtest/gtest.h>

#include "gridsec/util/error.hpp"

namespace gridsec::lp {
namespace {

TEST(Problem, VariableAndConstraintBookkeeping) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 1.0, 5.0, 2.0);
  int b = p.add_binary("b", -1.0);
  EXPECT_EQ(p.num_variables(), 2);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(p.variable(b).type, VarType::kBinary);
  EXPECT_DOUBLE_EQ(p.variable(b).upper, 1.0);
  int row = p.add_constraint("c", LinearExpr().add(x, 1.0).add(b, 2.0),
                             Sense::kLessEqual, 7.0);
  EXPECT_EQ(p.num_constraints(), 1);
  EXPECT_EQ(row, 0);
  EXPECT_EQ(p.constraint(0).terms.size(), 2u);
  EXPECT_TRUE(p.has_integer_variables());
}

TEST(Problem, MutatorsApply) {
  Problem p;
  int x = p.add_variable("x", 0.0, 10.0, 1.0);
  p.add_constraint("c", LinearExpr().add(x, 1.0), Sense::kLessEqual, 5.0);
  p.set_objective_coef(x, 3.0);
  p.set_bounds(x, 1.0, 4.0);
  p.set_rhs(0, 9.0);
  EXPECT_DOUBLE_EQ(p.variable(x).objective, 3.0);
  EXPECT_DOUBLE_EQ(p.variable(x).lower, 1.0);
  EXPECT_DOUBLE_EQ(p.constraint(0).rhs, 9.0);
}

TEST(Problem, ZeroCoefficientsDropped) {
  LinearExpr e;
  e.add(0, 0.0).add(1, 2.0);
  EXPECT_EQ(e.terms().size(), 1u);
}

TEST(Problem, ObjectiveValueEvaluates) {
  Problem p(Objective::kMaximize);
  p.add_variable("x", 0.0, 10.0, 2.0);
  p.add_variable("y", 0.0, 10.0, -1.0);
  EXPECT_DOUBLE_EQ(p.objective_value({3.0, 4.0}), 2.0);
}

TEST(Problem, IsFeasibleChecksEverything) {
  Problem p;
  int x = p.add_variable("x", 0.0, 5.0, 1.0, VarType::kInteger);
  p.add_constraint("c", LinearExpr().add(x, 1.0), Sense::kGreaterEqual, 2.0);
  EXPECT_TRUE(p.is_feasible({3.0}));
  EXPECT_FALSE(p.is_feasible({1.0}));   // violates the row
  EXPECT_FALSE(p.is_feasible({6.0}));   // violates the bound
  EXPECT_FALSE(p.is_feasible({2.5}));   // violates integrality
  EXPECT_FALSE(p.is_feasible({}));      // wrong size
}

TEST(Problem, SenseEnumRoundTrip) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "OPTIMAL");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "INFEASIBLE");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "UNBOUNDED");
  EXPECT_EQ(to_string(SolveStatus::kIterationLimit), "ITERATION_LIMIT");
}

TEST(Status, FactoriesAndAccessors) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status bad = Status::infeasible("no flow");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInfeasible);
  EXPECT_EQ(bad.message(), "no flow");
  EXPECT_EQ(bad.to_string(), "INFEASIBLE: no flow");
  EXPECT_EQ(Status::ok().to_string(), "OK");
}

TEST(Status, CodeNames) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "OK");
  EXPECT_EQ(to_string(ErrorCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(to_string(ErrorCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(to_string(ErrorCode::kInternal), "INTERNAL");
  EXPECT_EQ(to_string(ErrorCode::kIterationLimit), "ITERATION_LIMIT");
}

TEST(StatusOr, ValueAndErrorPaths) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);
  StatusOr<int> err(Status::not_found("gone"));
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> s(std::string("payload"));
  std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

using ProblemDeathTest = Problem;

TEST(ProblemDeathTest, RejectsInfiniteLowerBound) {
  Problem p;
  EXPECT_DEATH(p.add_variable("x", -kInfinity, 1.0, 0.0), "finite");
}

TEST(ProblemDeathTest, RejectsInvertedBounds) {
  Problem p;
  EXPECT_DEATH(p.add_variable("x", 2.0, 1.0, 0.0), "lower");
}

TEST(ProblemDeathTest, RejectsUnknownVariableInRow) {
  Problem p;
  p.add_variable("x", 0.0, 1.0, 0.0);
  EXPECT_DEATH(
      p.add_constraint("c", LinearExpr().add(7, 1.0), Sense::kEqual, 0.0),
      "unknown");
}

}  // namespace
}  // namespace gridsec::lp
