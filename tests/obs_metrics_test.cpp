// Metrics registry: concurrency safety, histogram bucket edges, export
// shapes, and reset semantics.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::obs {
namespace {

TEST(MetricRegistry, FindOrCreateReturnsSameInstrument) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricRegistry, CounterConcurrentHammerExactTotal) {
  MetricRegistry reg;
  Counter& c = reg.counter("hammer.count");
  Gauge& g = reg.gauge("hammer.gauge");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&c, &g] {
      for (int i = 0; i < kAddsPerTask; ++i) {
        c.add();
        g.add(1.0);
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kTasks) * kAddsPerTask);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kTasks) * kAddsPerTask);
}

TEST(MetricRegistry, ConcurrentFindOrCreateSingleInstrument) {
  MetricRegistry reg;
  constexpr int kTasks = 32;
  ThreadPool pool(8);
  std::atomic<Counter*> first{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::future<void>> futs;
  for (int t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&] {
      Counter& c = reg.counter("race.count");
      c.add();
      Counter* expected = nullptr;
      if (!first.compare_exchange_strong(expected, &c) && expected != &c) {
        mismatches.fetch_add(1);
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reg.counter("race.count").value(), kTasks);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", {0.0, 10.0, 100.0});
  // Bucket semantics: counts[i] holds observations <= bounds[i] (first
  // matching bucket); the final slot is the overflow bucket.
  h.observe(-5.0);   // <= 0        -> bucket 0
  h.observe(0.0);    // <= 0        -> bucket 0 (edge is inclusive)
  h.observe(0.001);  // <= 10       -> bucket 1
  h.observe(10.0);   // <= 10       -> bucket 1 (edge)
  h.observe(10.001);  // <= 100     -> bucket 2
  h.observe(100.0);  // <= 100      -> bucket 2 (edge)
  h.observe(100.001);  // overflow  -> bucket 3
  h.observe(1e9);      // overflow  -> bucket 3
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.count(), 8);
}

TEST(Histogram, ConcurrentObservePreservesTotal) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("conc", {1.0, 2.0, 3.0});
  constexpr int kTasks = 16;
  constexpr int kObsPerTask = 5000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  for (int t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&h, t] {
      for (int i = 0; i < kObsPerTask; ++i) {
        h.observe(static_cast<double>((t + i) % 5));
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kTasks) * kObsPerTask);
}

TEST(Timer, SnapshotTracksObservations) {
  MetricRegistry reg;
  Timer& t = reg.timer("t");
  t.observe_seconds(1.0);
  t.observe_seconds(3.0);
  const RunningStats snap = t.snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 3.0);
}

TEST(Timer, ScopedTimerRecordsAndToleratesNull) {
  MetricRegistry reg;
  Timer& t = reg.timer("scoped");
  {
    ScopedTimer s(&t);
  }
  EXPECT_EQ(t.snapshot().count(), 1u);
  {
    ScopedTimer s(nullptr);  // must be a no-op, not a crash
  }
}

TEST(MetricRegistry, ResetZeroesWithoutInvalidatingReferences) {
  MetricRegistry reg;
  Counter& c = reg.counter("r.count");
  Gauge& g = reg.gauge("r.gauge");
  Histogram& h = reg.histogram("r.hist", {1.0});
  c.add(7);
  g.set(4.5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  c.add();  // old reference still writes into the registry
  EXPECT_EQ(reg.counter("r.count").value(), 1);
}

TEST(MetricRegistry, JsonExportContainsAllKinds) {
  MetricRegistry reg;
  reg.counter("c.one").add(5);
  reg.gauge("g.one").set(2.5);
  reg.histogram("h.one", {1.0, 2.0}).observe(1.5);
  reg.timer("t.one").observe_seconds(0.25);
  std::ostringstream os;
  reg.write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"c.one\":5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"g.one\""), std::string::npos);
  EXPECT_NE(j.find("\"h.one\""), std::string::npos);
  EXPECT_NE(j.find("\"bounds\":[1,2]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"t.one\""), std::string::npos);
}

TEST(MetricRegistry, CsvExportHasKindNameFieldValueRows) {
  MetricRegistry reg;
  reg.counter("c.two").add(3);
  reg.gauge("g.two").set(1.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("counter,c.two,value,3"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,g.two,value,1.5"), std::string::npos) << csv;
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("q", {10.0, 20.0});
  for (int i = 0; i < 5; ++i) h.observe(5.0);   // bucket (<=10)
  for (int i = 0; i < 5; ++i) h.observe(15.0);  // bucket (10, 20]
  // p50 lands exactly on the first bucket's upper edge; p90 interpolates
  // 80% into the second bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 18.0);
}

TEST(Histogram, QuantileClampsOverflowAndHandlesEmpty) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("q.over", {1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // no observations
  h.observe(50.0);                         // overflow bucket
  // Overflow has no upper edge; the estimate clamps to the last bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
}

TEST(Timer, QuantilesFromReservoirAreExactBelowCapacity) {
  MetricRegistry reg;
  Timer& t = reg.timer("t.q");
  for (int i = 1; i <= 100; ++i) t.observe_seconds(static_cast<double>(i));
  EXPECT_NEAR(t.quantile(0.5), 50.5, 1.0);
  EXPECT_NEAR(t.quantile(0.9), 90.1, 1.0);
  EXPECT_NEAR(t.quantile(0.99), 99.0, 1.0);
  EXPECT_LE(t.quantile(0.5), t.quantile(0.9));
  EXPECT_LE(t.quantile(0.9), t.quantile(0.99));
}

TEST(Timer, ReservoirStaysBoundedAndInRangeUnderLoad) {
  MetricRegistry reg;
  Timer& t = reg.timer("t.big");
  for (int i = 0; i < 10000; ++i) {
    t.observe_seconds(static_cast<double>(i % 1000));
  }
  // With 10k observations the reservoir subsamples; quantiles must still be
  // valid values from the observed range and ordered.
  const double p50 = t.quantile(0.5);
  const double p99 = t.quantile(0.99);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p99, 999.0);
  EXPECT_LE(p50, p99);
}

TEST(MetricRegistry, ExportsIncludeQuantiles) {
  MetricRegistry reg;
  reg.histogram("h.q", {1.0, 2.0}).observe(1.5);
  reg.timer("t.q").observe_seconds(0.5);
  std::ostringstream js;
  reg.write_json(js);
  const std::string j = js.str();
  EXPECT_NE(j.find("\"p50\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"p90\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
  std::ostringstream cs;
  reg.write_csv(cs);
  const std::string csv = cs.str();
  EXPECT_NE(csv.find("histogram,h.q,p50,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("timer,t.q,p99,"), std::string::npos) << csv;
}

TEST(MetricRegistry, CounterValuesSnapshotsAllCounters) {
  MetricRegistry reg;
  reg.counter("a.count").add(2);
  reg.counter("b.count").add(5);
  const auto values = reg.counter_values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("a.count"), 2);
  EXPECT_EQ(values.at("b.count"), 5);
}

TEST(MetricRegistry, DefaultRegistryIsProcessGlobal) {
  MetricRegistry& a = default_registry();
  MetricRegistry& b = default_registry();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace gridsec::obs
