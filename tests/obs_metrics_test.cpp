// Metrics registry: concurrency safety, histogram bucket edges, export
// shapes, and reset semantics.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::obs {
namespace {

TEST(MetricRegistry, FindOrCreateReturnsSameInstrument) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricRegistry, CounterConcurrentHammerExactTotal) {
  MetricRegistry reg;
  Counter& c = reg.counter("hammer.count");
  Gauge& g = reg.gauge("hammer.gauge");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&c, &g] {
      for (int i = 0; i < kAddsPerTask; ++i) {
        c.add();
        g.add(1.0);
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kTasks) * kAddsPerTask);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kTasks) * kAddsPerTask);
}

TEST(MetricRegistry, ConcurrentFindOrCreateSingleInstrument) {
  MetricRegistry reg;
  constexpr int kTasks = 32;
  ThreadPool pool(8);
  std::atomic<Counter*> first{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::future<void>> futs;
  for (int t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&] {
      Counter& c = reg.counter("race.count");
      c.add();
      Counter* expected = nullptr;
      if (!first.compare_exchange_strong(expected, &c) && expected != &c) {
        mismatches.fetch_add(1);
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reg.counter("race.count").value(), kTasks);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", {0.0, 10.0, 100.0});
  // Bucket semantics: counts[i] holds observations <= bounds[i] (first
  // matching bucket); the final slot is the overflow bucket.
  h.observe(-5.0);   // <= 0        -> bucket 0
  h.observe(0.0);    // <= 0        -> bucket 0 (edge is inclusive)
  h.observe(0.001);  // <= 10       -> bucket 1
  h.observe(10.0);   // <= 10       -> bucket 1 (edge)
  h.observe(10.001);  // <= 100     -> bucket 2
  h.observe(100.0);  // <= 100      -> bucket 2 (edge)
  h.observe(100.001);  // overflow  -> bucket 3
  h.observe(1e9);      // overflow  -> bucket 3
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.count(), 8);
}

TEST(Histogram, ConcurrentObservePreservesTotal) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("conc", {1.0, 2.0, 3.0});
  constexpr int kTasks = 16;
  constexpr int kObsPerTask = 5000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futs;
  for (int t = 0; t < kTasks; ++t) {
    futs.push_back(pool.submit([&h, t] {
      for (int i = 0; i < kObsPerTask; ++i) {
        h.observe(static_cast<double>((t + i) % 5));
      }
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kTasks) * kObsPerTask);
}

TEST(Timer, SnapshotTracksObservations) {
  MetricRegistry reg;
  Timer& t = reg.timer("t");
  t.observe_seconds(1.0);
  t.observe_seconds(3.0);
  const RunningStats snap = t.snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 3.0);
}

TEST(Timer, ScopedTimerRecordsAndToleratesNull) {
  MetricRegistry reg;
  Timer& t = reg.timer("scoped");
  {
    ScopedTimer s(&t);
  }
  EXPECT_EQ(t.snapshot().count(), 1u);
  {
    ScopedTimer s(nullptr);  // must be a no-op, not a crash
  }
}

TEST(MetricRegistry, ResetZeroesWithoutInvalidatingReferences) {
  MetricRegistry reg;
  Counter& c = reg.counter("r.count");
  Gauge& g = reg.gauge("r.gauge");
  Histogram& h = reg.histogram("r.hist", {1.0});
  c.add(7);
  g.set(4.5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  c.add();  // old reference still writes into the registry
  EXPECT_EQ(reg.counter("r.count").value(), 1);
}

TEST(MetricRegistry, JsonExportContainsAllKinds) {
  MetricRegistry reg;
  reg.counter("c.one").add(5);
  reg.gauge("g.one").set(2.5);
  reg.histogram("h.one", {1.0, 2.0}).observe(1.5);
  reg.timer("t.one").observe_seconds(0.25);
  std::ostringstream os;
  reg.write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"c.one\":5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"g.one\""), std::string::npos);
  EXPECT_NE(j.find("\"h.one\""), std::string::npos);
  EXPECT_NE(j.find("\"bounds\":[1,2]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"t.one\""), std::string::npos);
}

TEST(MetricRegistry, CsvExportHasKindNameFieldValueRows) {
  MetricRegistry reg;
  reg.counter("c.two").add(3);
  reg.gauge("g.two").set(1.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("counter,c.two,value,3"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,g.two,value,1.5"), std::string::npos) << csv;
}

TEST(MetricRegistry, DefaultRegistryIsProcessGlobal) {
  MetricRegistry& a = default_registry();
  MetricRegistry& b = default_registry();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace gridsec::obs
