// Tests for the six-state western-US gas-electric model (§III-A).
#include "gridsec/sim/western_us.hpp"

#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::sim {
namespace {

TEST(WesternUs, StructureMatchesPaper) {
  auto m = build_western_us();
  EXPECT_EQ(m.states.size(), 6u);
  EXPECT_EQ(m.gas_hub.size(), 6u);
  EXPECT_EQ(m.elec_hub.size(), 6u);
  // 12 hubs (plus terminals created by supply/demand helpers).
  int hubs = 0;
  for (const auto& n : m.network.nodes()) {
    if (n.kind == flow::NodeKind::kHub) ++hubs;
  }
  EXPECT_EQ(hubs, 12);
  // 18 long-haul edges (9 gas pipelines, 9 interties).
  EXPECT_EQ(m.long_haul.size(), 18u);
  // One gas->electric converter per state.
  EXPECT_EQ(m.converters.size(), 6u);
  // Two consumers per state.
  int demands = 0;
  for (const auto& e : m.network.edges()) {
    if (e.kind == flow::EdgeKind::kDemand) ++demands;
  }
  EXPECT_EQ(demands, 12);
}

TEST(WesternUs, Validates) {
  auto m = build_western_us();
  const Status st = m.network.validate();
  EXPECT_TRUE(st.is_ok()) << st.to_string();
}

TEST(WesternUs, SolvesWithPositiveWelfare) {
  auto m = build_western_us();
  auto sol = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(sol.optimal());
  EXPECT_GT(sol.welfare, 0.0);
}

TEST(WesternUs, ChallengingModelHasModestSpareCapacity) {
  // The paper calibrates to ~15% electric spare capacity. Check the solved
  // system: total served electric demand should be most of the demand cap,
  // and supply headroom should be modest.
  auto m = build_western_us();
  auto sol = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(sol.optimal());
  double served = 0.0, demand_cap = 0.0;
  for (int e = 0; e < m.network.num_edges(); ++e) {
    const auto& edge = m.network.edge(e);
    if (edge.kind == flow::EdgeKind::kDemand &&
        edge.name.find(".elec.") != std::string::npos) {
      served += sol.flow[static_cast<std::size_t>(e)];
      demand_cap += edge.capacity;
    }
  }
  // Peak demand is nearly fully served (deliverability, not generation,
  // binds in a ~15%-spare system).
  EXPECT_GT(served / demand_cap, 0.9);
}

TEST(WesternUs, BaselineServesEverythingEasily) {
  WesternUsOptions opt;
  opt.apply_adjustments = false;
  auto m = build_western_us(opt);
  auto sol = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(sol.optimal());
  for (int e = 0; e < m.network.num_edges(); ++e) {
    const auto& edge = m.network.edge(e);
    if (edge.kind == flow::EdgeKind::kDemand) {
      EXPECT_NEAR(sol.flow[static_cast<std::size_t>(e)], edge.capacity, 1e-4)
          << edge.name << " unserved in the baseline model";
    }
  }
}

TEST(WesternUs, AdjustmentsReduceWelfareHeadroom) {
  WesternUsOptions base;
  base.apply_adjustments = false;
  auto baseline = build_western_us(base);
  auto challenged = build_western_us();
  auto sol_b = flow::solve_social_welfare(baseline.network);
  auto sol_c = flow::solve_social_welfare(challenged.network);
  ASSERT_TRUE(sol_b.optimal());
  ASSERT_TRUE(sol_c.optimal());
  // More demand at fixed prices: absolute welfare rises, but scarcity must
  // show up as higher average electric LMPs.
  double lmp_b = 0.0, lmp_c = 0.0;
  for (std::size_t i = 0; i < challenged.elec_hub.size(); ++i) {
    lmp_b += sol_b.node_price[static_cast<std::size_t>(baseline.elec_hub[i])];
    lmp_c +=
        sol_c.node_price[static_cast<std::size_t>(challenged.elec_hub[i])];
  }
  EXPECT_GT(lmp_c, lmp_b);
}

TEST(WesternUs, GasElectricInterdependencyActive) {
  // The converters must actually run: gas flows into electricity.
  auto m = build_western_us();
  auto sol = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(sol.optimal());
  double converted = 0.0;
  for (flow::EdgeId e : m.converters) {
    converted += sol.flow[static_cast<std::size_t>(e)];
  }
  EXPECT_GT(converted, 0.0);
}

TEST(WesternUs, GasOutagePropagatesToElectricSide) {
  // Knocking out the big UT gas field must hurt electric consumers or
  // producers somewhere — the interdependency the paper is about.
  auto m = build_western_us();
  auto base = flow::solve_social_welfare(m.network);
  ASSERT_TRUE(base.optimal());
  auto ut_prod = m.network.find_edge("UT.gas.prod");
  ASSERT_TRUE(ut_prod.is_ok());
  flow::Network hit = m.network;
  hit.set_capacity(ut_prod.value(), 0.0);
  auto after = flow::solve_social_welfare(hit);
  ASSERT_TRUE(after.optimal());
  EXPECT_LT(after.welfare, base.welfare);
  // Some electric hub's price must rise (gas-fired generation got scarcer).
  double max_rise = 0.0;
  for (flow::NodeId h : m.elec_hub) {
    max_rise = std::max(max_rise,
                        after.node_price[static_cast<std::size_t>(h)] -
                            base.node_price[static_cast<std::size_t>(h)]);
  }
  EXPECT_GT(max_rise, 0.5);
}

TEST(WesternUs, LossesFollowDistanceRule) {
  EXPECT_NEAR(loss_from_distance(400.0), 0.01, 1e-12);
  EXPECT_NEAR(loss_from_distance(1000.0), 0.025, 1e-12);
  // WA->OR is ~390 km by centroid: loss just under 1%.
  auto m = build_western_us();
  auto e = m.network.find_edge("WA-OR.pipe");
  ASSERT_TRUE(e.is_ok());
  EXPECT_GT(m.network.edge(e.value()).loss, 0.005);
  EXPECT_LT(m.network.edge(e.value()).loss, 0.015);
}

TEST(WesternUs, HaversineSanity) {
  // Seattle to Portland is roughly 230 km.
  const double km = haversine_km(47.6, -122.3, 45.5, -122.7);
  EXPECT_GT(km, 200.0);
  EXPECT_LT(km, 260.0);
  EXPECT_NEAR(haversine_km(10.0, 20.0, 10.0, 20.0), 0.0, 1e-9);
}

TEST(WesternUs, ImportsPriced25PercentBelowRetail) {
  auto m = build_western_us();
  auto imp = m.network.find_edge("WA.gas.import");
  ASSERT_TRUE(imp.is_ok());
  EXPECT_NEAR(m.network.edge(imp.value()).cost, 0.75 * 22.0, 1e-9);
}

}  // namespace
}  // namespace gridsec::sim
