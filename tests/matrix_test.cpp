// Tests for the dense matrix and linear-system solver.
#include "gridsec/util/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsec {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -4.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, Identity) {
  auto id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RowOperations) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  m.swap_rows(0, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  m.add_scaled_row(1, 0, 2.0);  // row1 += 2*row0 = (1,2)+(6,8)
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 10.0);
  m.scale_row(0, 0.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatrixMultiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  auto c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatrixVectorMultiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<double> x{1.0, -1.0};
  auto y = a * std::span<const double>(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, IdentityTimesMatrixIsSame) {
  Matrix m{{2.0, -1.0}, {0.5, 3.0}};
  EXPECT_EQ(Matrix::identity(2) * m, m);
}

TEST(SolveLinear, SimpleSystem) {
  // x + 2y = 5; 3x - y = 1 -> x=1, y=2.
  Matrix a{{1.0, 2.0}, {3.0, -1.0}};
  auto sol = solve_linear_system(a, {5.0, 1.0});
  ASSERT_TRUE(sol.is_ok());
  EXPECT_NEAR(sol.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(sol.value()[1], 2.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero on diagonal forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  auto sol = solve_linear_system(a, {3.0, 4.0});
  ASSERT_TRUE(sol.is_ok());
  EXPECT_NEAR(sol.value()[0], 4.0, 1e-12);
  EXPECT_NEAR(sol.value()[1], 3.0, 1e-12);
}

TEST(SolveLinear, SingularDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  auto sol = solve_linear_system(a, {1.0, 2.0});
  EXPECT_FALSE(sol.is_ok());
  EXPECT_EQ(sol.status().code(), ErrorCode::kInternal);
}

TEST(SolveLinear, ShapeMismatchRejected) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  auto sol = solve_linear_system(a, {1.0, 2.0, 3.0});
  EXPECT_FALSE(sol.is_ok());
  EXPECT_EQ(sol.status().code(), ErrorCode::kInvalidArgument);
}

TEST(SolveLinear, LargerWellConditionedSystem) {
  const std::size_t n = 12;
  Matrix a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = static_cast<double>(i) - 5.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 10.0 : 1.0 / static_cast<double>(1 + i + j);
    }
  }
  std::vector<double> b = a * std::span<const double>(x_true);
  auto sol = solve_linear_system(a, b);
  ASSERT_TRUE(sol.is_ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sol.value()[i], x_true[i], 1e-9);
  }
}

TEST(Dot, Basic) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
}

}  // namespace
}  // namespace gridsec
