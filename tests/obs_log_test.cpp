// Tests for gridsec::obs structured logging: level parsing and gating,
// the retained ring tail, sinks, and the JSON shape of emitted records.
#include "gridsec/obs/log.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace obs = gridsec::obs;

namespace {

// Saves and restores the process-global logger configuration so tests in
// this binary do not leak levels/sinks into each other.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = obs::Logger::level();
    obs::Logger::set_level(obs::LogLevel::kDebug);
    obs::Logger::reset_ring();
  }
  void TearDown() override {
    obs::Logger::close_file_sink();
    obs::Logger::set_stderr_sink(false);
    obs::Logger::set_level(saved_level_);
    obs::Logger::reset_ring();
  }

  obs::LogLevel saved_level_ = obs::LogLevel::kInfo;
};

obs::json::JsonValue parse_record(const std::string& line) {
  obs::json::JsonParser parser(line);
  auto parsed = parser.parse();
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().message() << "\n" << line;
  return parsed.is_ok() ? parsed.value() : obs::json::JsonValue{};
}

TEST(LogLevel, ToStringParseRoundTrip) {
  const obs::LogLevel levels[] = {
      obs::LogLevel::kTrace, obs::LogLevel::kDebug, obs::LogLevel::kInfo,
      obs::LogLevel::kWarn,  obs::LogLevel::kError, obs::LogLevel::kOff,
  };
  for (const obs::LogLevel lvl : levels) {
    obs::LogLevel back = obs::LogLevel::kOff;
    ASSERT_TRUE(obs::parse_log_level(obs::to_string(lvl), &back))
        << obs::to_string(lvl);
    EXPECT_EQ(back, lvl);
  }
}

TEST(LogLevel, ParseIsCaseInsensitiveAndRejectsUnknown) {
  obs::LogLevel lvl = obs::LogLevel::kOff;
  EXPECT_TRUE(obs::parse_log_level("WARN", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::parse_log_level("Debug", &lvl));
  EXPECT_EQ(lvl, obs::LogLevel::kDebug);
  EXPECT_FALSE(obs::parse_log_level("loud", &lvl));
  EXPECT_FALSE(obs::parse_log_level("", &lvl));
}

TEST_F(LogTest, ThresholdGatesEmission) {
  obs::Logger::set_level(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::Logger::enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::Logger::enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::Logger::enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(obs::Logger::enabled(obs::LogLevel::kError));

  const std::uint64_t before = obs::Logger::records_emitted();
  GRIDSEC_LOG(kInfo, "test").message("suppressed");
  EXPECT_EQ(obs::Logger::records_emitted(), before);
  GRIDSEC_LOG(kWarn, "test").message("passes");
  EXPECT_EQ(obs::Logger::records_emitted(), before + 1);
}

TEST_F(LogTest, OffSilencesEverything) {
  obs::Logger::set_level(obs::LogLevel::kOff);
  const std::uint64_t before = obs::Logger::records_emitted();
  GRIDSEC_LOG(kError, "test").message("still silent");
  EXPECT_EQ(obs::Logger::records_emitted(), before);
}

TEST_F(LogTest, RecordIsOneParseableJsonObject) {
  GRIDSEC_LOG(kWarn, "unit.test")
      .field("text", "he said \"hi\"\n")
      .field("ratio", 0.5)
      .field("count", 42)
      .field("big", std::uint64_t{18446744073709551615ULL})
      .field("flag", true)
      .message("all field kinds");

  const std::vector<std::string> tail = obs::Logger::tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].find('\n'), std::string::npos)
      << "record must be a single line";

  const obs::json::JsonValue v = parse_record(tail[0]);
  ASSERT_EQ(v.kind, obs::json::JsonValue::Kind::kObject);
  ASSERT_NE(v.find("ts"), nullptr);
  EXPECT_FALSE(v.find("ts")->string.empty());
  EXPECT_EQ(v.find("level")->string_or(""), "warn");
  EXPECT_EQ(v.find("component")->string_or(""), "unit.test");
  EXPECT_EQ(v.find("text")->string_or(""), "he said \"hi\"\n");
  EXPECT_DOUBLE_EQ(v.find("ratio")->number_or(-1.0), 0.5);
  EXPECT_DOUBLE_EQ(v.find("count")->number_or(-1.0), 42.0);
  ASSERT_NE(v.find("big"), nullptr);
  EXPECT_EQ(v.find("big")->kind, obs::json::JsonValue::Kind::kNumber);
  ASSERT_NE(v.find("flag"), nullptr);
  EXPECT_TRUE(v.find("flag")->boolean);
  EXPECT_EQ(v.find("msg")->string_or(""), "all field kinds");
}

TEST_F(LogTest, NonFiniteDoublesStayValidJson) {
  GRIDSEC_LOG(kWarn, "unit.test")
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity());
  const std::vector<std::string> tail = obs::Logger::tail(1);
  ASSERT_EQ(tail.size(), 1u);
  const obs::json::JsonValue v = parse_record(tail[0]);
  // Non-finite values are quoted rather than emitted as bare tokens.
  EXPECT_EQ(v.find("nan")->kind, obs::json::JsonValue::Kind::kString);
  EXPECT_EQ(v.find("inf")->kind, obs::json::JsonValue::Kind::kString);
}

TEST_F(LogTest, TailIsOldestFirstAndBounded) {
  for (int i = 0; i < 5; ++i) {
    GRIDSEC_LOG(kInfo, "unit.test").field("i", i);
  }
  const std::vector<std::string> all = obs::Logger::tail();
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const obs::json::JsonValue v = parse_record(all[static_cast<size_t>(i)]);
    EXPECT_DOUBLE_EQ(v.find("i")->number_or(-1.0), static_cast<double>(i));
  }
  const std::vector<std::string> last2 = obs::Logger::tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[1], all[4]);
}

TEST_F(LogTest, RingOverwritesOldestBeyondCapacity) {
  const std::size_t cap = obs::Logger::kDefaultRingCapacity;
  for (std::size_t i = 0; i < cap + 10; ++i) {
    GRIDSEC_LOG(kInfo, "unit.test").field("i", i);
  }
  const std::vector<std::string> all = obs::Logger::tail();
  ASSERT_EQ(all.size(), cap);
  // The oldest retained record is i = 10.
  const obs::json::JsonValue v = parse_record(all.front());
  EXPECT_DOUBLE_EQ(v.find("i")->number_or(-1.0), 10.0);
}

TEST_F(LogTest, FileSinkWritesJsonl) {
  const std::string path =
      ::testing::TempDir() + "gridsec_obs_log_test.jsonl";
  ASSERT_TRUE(obs::Logger::open_file_sink(path));
  GRIDSEC_LOG(kInfo, "unit.test").field("i", 1).message("first");
  GRIDSEC_LOG(kWarn, "unit.test").field("i", 2).message("second");
  obs::Logger::close_file_sink();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse_record(lines[0]).find("msg")->string_or(""), "first");
  EXPECT_EQ(parse_record(lines[1]).find("level")->string_or(""), "warn");
  std::remove(path.c_str());
}

TEST_F(LogTest, OpenFileSinkFailsOnBadPath) {
  EXPECT_FALSE(obs::Logger::open_file_sink("/nonexistent-dir/x/y.jsonl"));
}

}  // namespace
