// Tests for the solver guardrails: NaN/Inf input validation, wall-clock
// time limits, and cycling detection with the Bland's-rule fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/presolve.hpp"
#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/metrics.hpp"

namespace gridsec::lp {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// A small LP that needs at least one pivot: maximize x+y subject to a
/// coupling row, optimum away from the initial all-lower-bound point.
Problem pivoting_lp() {
  Problem p(Objective::kMaximize);
  const int x = p.add_variable("x", 0.0, 10.0, 1.0);
  const int y = p.add_variable("y", 0.0, 10.0, 1.0);
  p.add_constraint("cap", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kLessEqual, 12.0);
  return p;
}

/// A knapsack with enough binaries that branch-and-bound explores nodes.
Problem knapsack_milp(int n) {
  Problem p(Objective::kMaximize);
  LinearExpr weight;
  for (int i = 0; i < n; ++i) {
    const int v = p.add_binary("item" + std::to_string(i),
                               1.0 + 0.37 * i - 0.01 * i * i);
    weight.add(v, 1.0 + 0.53 * ((i * 7) % 11));
  }
  p.add_constraint("budget", std::move(weight), Sense::kLessEqual,
                   1.7 * n);
  return p;
}

// ---------------------------------------------------------------------------
// NaN/Inf validation: poisoned data must come back as a typed verdict, never
// corrupt the pivoting arithmetic or abort.

TEST(Guardrails, ValidateProblemRejectsNanObjective) {
  Problem p;
  p.add_variable("x", 0.0, 1.0, kNan);
  EXPECT_FALSE(validate_problem(p).is_ok());
  EXPECT_EQ(validate_problem(p).code(), ErrorCode::kNumericalError);
}

TEST(Guardrails, ValidateProblemAcceptsCleanProblem) {
  EXPECT_TRUE(validate_problem(pivoting_lp()).is_ok());
}

TEST(Guardrails, SimplexRejectsNanObjective) {
  Problem p = pivoting_lp();
  p.set_objective_coef(0, kNan);
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kNumericalError);
}

TEST(Guardrails, SimplexRejectsInfConstraintCoefficient) {
  Problem p = pivoting_lp();
  p.add_constraint("bad", LinearExpr().add(0, kInfinity),
                   Sense::kLessEqual, 1.0);
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kNumericalError);
}

TEST(Guardrails, SimplexRejectsNanRhs) {
  Problem p = pivoting_lp();
  p.set_rhs(0, kNan);
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kNumericalError);
}

TEST(Guardrails, PresolvePipelineRejectsNan) {
  Problem p = pivoting_lp();
  p.set_objective_coef(1, kNan);
  EXPECT_EQ(solve_lp_with_presolve(p).status,
            SolveStatus::kNumericalError);
}

TEST(Guardrails, MilpRejectsNanData) {
  Problem p = knapsack_milp(6);
  p.set_objective_coef(2, kNan);
  EXPECT_EQ(solve_milp(p).status, SolveStatus::kNumericalError);
}

// ---------------------------------------------------------------------------
// Time limits: an expired deadline is a typed budget verdict.

TEST(Guardrails, SimplexTimeLimitExpires) {
  SimplexOptions opt;
  opt.time_limit_ms = 1e-9;  // armed and already expired at the first pivot
  const Solution sol = SimplexSolver(opt).solve(pivoting_lp());
  EXPECT_EQ(sol.status, SolveStatus::kTimeLimit);
  EXPECT_TRUE(is_budget_limited(sol.status));
}

TEST(Guardrails, SimplexGenerousTimeLimitSolves) {
  SimplexOptions opt;
  opt.time_limit_ms = 1e9;
  const Solution sol = SimplexSolver(opt).solve(pivoting_lp());
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
}

TEST(Guardrails, MilpTimeLimitReturnsTimeLimit) {
  BranchAndBoundOptions opt;
  opt.time_limit_ms = 1e-9;
  const Solution sol = BranchAndBoundSolver(opt).solve(knapsack_milp(24));
  EXPECT_EQ(sol.status, SolveStatus::kTimeLimit);
  // Whatever incumbent came back (possibly none) must be feasible.
  if (!sol.x.empty()) {
    EXPECT_TRUE(knapsack_milp(24).is_feasible(sol.x, 1e-6));
  }
}

TEST(Guardrails, MilpGenerousTimeLimitSolves) {
  BranchAndBoundOptions opt;
  opt.time_limit_ms = 1e9;
  const Solution sol = BranchAndBoundSolver(opt).solve(knapsack_milp(12));
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
}

// ---------------------------------------------------------------------------
// Cycling detection: a degenerate pivot streak forces Bland's rule, which
// provably terminates.

TEST(Guardrails, DegeneratePivotTriggersBlandFallback) {
  // maximize x s.t. x <= 0: the only pivot has step length zero, so with a
  // streak limit of one the fallback must fire on that pivot.
  Problem p(Objective::kMaximize);
  const int x = p.add_variable("x", 0.0, 10.0, 1.0);
  p.add_constraint("pin", LinearExpr().add(x, 1.0), Sense::kLessEqual, 0.0);

  auto& c_fallbacks =
      obs::default_registry().counter("lp.simplex.cycle_fallbacks");
  const std::int64_t before = c_fallbacks.value();

  SimplexOptions opt;
  opt.cycle_streak_limit = 1;
  const Solution sol = SimplexSolver(opt).solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  EXPECT_GE(c_fallbacks.value(), before + 1);
}

TEST(Guardrails, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP (minimize). Dantzig-style pricing cycles on
  // it without safeguards; the optimum is -1/20.
  Problem p(Objective::kMinimize);
  const int x1 = p.add_variable("x1", 0.0, kInfinity, -0.75);
  const int x2 = p.add_variable("x2", 0.0, kInfinity, 150.0);
  const int x3 = p.add_variable("x3", 0.0, kInfinity, -0.02);
  const int x4 = p.add_variable("x4", 0.0, kInfinity, 6.0);
  p.add_constraint(
      "r1",
      LinearExpr().add(x1, 0.25).add(x2, -60.0).add(x3, -0.04).add(x4, 9.0),
      Sense::kLessEqual, 0.0);
  p.add_constraint(
      "r2",
      LinearExpr().add(x1, 0.5).add(x2, -90.0).add(x3, -0.02).add(x4, 3.0),
      Sense::kLessEqual, 0.0);
  p.add_constraint("r3", LinearExpr().add(x3, 1.0), Sense::kLessEqual, 1.0);

  SimplexOptions opt;
  opt.cycle_streak_limit = 2;  // aggressive: fall back almost immediately
  const Solution sol = SimplexSolver(opt).solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

TEST(Guardrails, CycleFallbackPreservesOptimum) {
  // Forcing the fallback on every solve must not change the answer.
  const Problem p = pivoting_lp();
  SimplexOptions aggressive;
  aggressive.cycle_streak_limit = 1;
  const Solution a = SimplexSolver().solve(p);
  const Solution b = SimplexSolver(aggressive).solve(p);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

}  // namespace
}  // namespace gridsec::lp
