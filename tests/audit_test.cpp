// Tests for gridsec::obs solve certificates and audit bundles: the
// independent checker on known LPs/MILPs (including deliberately corrupted
// solutions), bundle JSON round-trips, and the armed hook auto-dumping
// bundles from failed solves — standalone and from inside a fault-injected
// Monte-Carlo sweep.
#include "gridsec/obs/audit.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/robust/faultinject.hpp"
#include "gridsec/sim/montecarlo.hpp"

namespace obs = gridsec::obs;
namespace lp = gridsec::lp;
namespace fs = std::filesystem;

namespace {

// max 3x + 2y  s.t.  x + y <= 4,  x <= 2,  y <= 3,  x,y >= 0.
// Optimum x=2, y=2, objective 10; rows 0 and 1 bind, row 2 is slack.
lp::Problem small_lp() {
  lp::Problem p(lp::Objective::kMaximize);
  const int x = p.add_variable("x", 0.0, lp::kInfinity, 3.0);
  const int y = p.add_variable("y", 0.0, lp::kInfinity, 2.0);
  p.add_constraint("cap", lp::LinearExpr().add(x, 1.0).add(y, 1.0),
                   lp::Sense::kLessEqual, 4.0);
  p.add_constraint("x_cap", lp::LinearExpr().add(x, 1.0),
                   lp::Sense::kLessEqual, 2.0);
  p.add_constraint("y_cap", lp::LinearExpr().add(y, 1.0),
                   lp::Sense::kLessEqual, 3.0);
  return p;
}

// Knapsack: max 5a + 4b + 3c  s.t.  2a + 3b + c <= 3, binaries.
// Optimum a=1, c=1, objective 8.
lp::Problem small_milp() {
  lp::Problem p(lp::Objective::kMaximize);
  const int a = p.add_binary("a", 5.0);
  const int b = p.add_binary("b", 4.0);
  const int c = p.add_binary("c", 3.0);
  p.add_constraint(
      "w", lp::LinearExpr().add(a, 2.0).add(b, 3.0).add(c, 1.0),
      lp::Sense::kLessEqual, 3.0);
  return p;
}

// An LP validate_problem rejects: NaN objective coefficient.
lp::Problem poisoned_lp() {
  lp::Problem p(lp::Objective::kMinimize);
  p.add_variable("x", 0.0, 1.0, std::nan(""));
  return p;
}

// Re-arm the suite-wide configuration installed by certify_all.cpp after a
// test replaced it (re-arming resets the failure/dump counters, which is
// exactly what the tests below rely on).
void rearm_suite_audit() {
  obs::AuditConfig cfg;
  if (const char* dir = std::getenv("GRIDSEC_AUDIT_DIR")) cfg.dump_dir = dir;
  obs::arm_audit(std::move(cfg));
}

TEST(Certify, VerifiesCorrectLpSolve) {
  const lp::Problem p = small_lp();
  const lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kVerified);
  EXPECT_FALSE(cert.milp);
  EXPECT_TRUE(cert.ok());
  EXPECT_TRUE(cert.violations.empty());
  EXPECT_LE(cert.primal_residual, 1e-6);
  EXPECT_LE(cert.dual_residual, 1e-6);
  EXPECT_LE(cert.duality_gap, 1e-6);
  EXPECT_LE(cert.objective_residual, 1e-6);
}

TEST(Certify, VerifiesCorrectMilpSolve) {
  const lp::Problem p = small_milp();
  const lp::Solution sol = lp::solve_milp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kVerified);
  EXPECT_TRUE(cert.milp);
  EXPECT_LE(cert.integrality_residual, 1e-5);
  EXPECT_TRUE(cert.ok());
}

TEST(Certify, RelaxationOptionAcceptsFractionalIntegers) {
  // solve_lp on a MILP model answers the LP relaxation (B&B node solves
  // report through the "lp.simplex" hook context the same way): declared
  // integers may legitimately come back fractional and the dual checks
  // apply instead.
  lp::Problem p(lp::Objective::kMaximize);
  const int a = p.add_binary("a", 1.0);
  p.add_constraint("half", lp::LinearExpr().add(a, 2.0),
                   lp::Sense::kLessEqual, 1.0);  // relaxation optimum a=0.5
  const lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  ASSERT_NEAR(sol.x[0], 0.5, 1e-9);

  obs::CertifyOptions opts;
  EXPECT_EQ(obs::certify(p, sol, opts).verdict, obs::CertVerdict::kFailed);
  opts.relaxation = true;
  const obs::Certificate cert = obs::certify(p, sol, opts);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kVerified);
  EXPECT_FALSE(cert.milp);

  EXPECT_TRUE(obs::context_is_relaxation("lp.simplex"));
  EXPECT_TRUE(obs::context_is_relaxation("lp.bnb.node"));
  EXPECT_FALSE(obs::context_is_relaxation("lp.bnb"));
}

TEST(Certify, CatchesTamperedPrimal) {
  const lp::Problem p = small_lp();
  lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  sol.x[0] += 1.0;  // x=3 violates both x<=2 and x+y<=4

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kFailed);
  EXPECT_FALSE(cert.ok());
  EXPECT_GT(cert.primal_residual, 1e-6);
  EXPECT_FALSE(cert.violations.empty());
}

TEST(Certify, CatchesTamperedObjective) {
  const lp::Problem p = small_lp();
  lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  sol.objective += 0.5;

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kFailed);
  EXPECT_GT(cert.objective_residual, 1e-6);
}

TEST(Certify, CatchesTamperedDuals) {
  const lp::Problem p = small_lp();
  lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  ASSERT_FALSE(sol.duals.empty());
  // Inflate every shadow price: breaks the duality gap (and with it the
  // dual-side checks the certificate recomputes from scratch).
  for (double& d : sol.duals) d = d * 3.0 + 1.0;

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kFailed);
}

TEST(Certify, CatchesTamperedMilpIntegrality) {
  const lp::Problem p = small_milp();
  lp::Solution sol = lp::solve_milp(p);
  ASSERT_TRUE(sol.optimal());
  sol.x[1] = 0.5;  // fractional binary

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kFailed);
  EXPECT_GT(cert.integrality_residual, 1e-5);
}

TEST(Certify, InfeasibleVerdictIsNotApplicable) {
  lp::Problem p(lp::Objective::kMinimize);
  const int x = p.add_variable("x", 0.0, lp::kInfinity, 1.0);
  p.add_constraint("lo", lp::LinearExpr().add(x, 1.0),
                   lp::Sense::kGreaterEqual, 2.0);
  p.add_constraint("hi", lp::LinearExpr().add(x, 1.0),
                   lp::Sense::kLessEqual, 1.0);
  const lp::Solution sol = lp::solve_lp(p);
  ASSERT_EQ(sol.status, lp::SolveStatus::kInfeasible);

  const obs::Certificate cert = obs::certify(p, sol);
  EXPECT_EQ(cert.verdict, obs::CertVerdict::kNotApplicable);
  EXPECT_TRUE(cert.ok());
}

TEST(BindingConstraints, ReportsActiveRowsWithShadowPrices) {
  const lp::Problem p = small_lp();
  const lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());

  const std::vector<obs::BindingConstraint> binding =
      obs::binding_constraints(p, sol);
  ASSERT_EQ(binding.size(), 2u);  // cap and x_cap bind; y_cap has slack
  EXPECT_EQ(binding[0].name, "cap");
  EXPECT_EQ(binding[0].sense, "<=");
  EXPECT_NEAR(binding[0].activity, 4.0, 1e-9);
  EXPECT_NEAR(binding[0].rhs, 4.0, 1e-9);
  EXPECT_NEAR(binding[0].dual, 2.0, 1e-6);  // marginal value of capacity
  EXPECT_EQ(binding[1].name, "x_cap");
  EXPECT_NEAR(binding[1].dual, 1.0, 1e-6);
}

TEST(AuditBundle, JsonRoundTripPreservesEverything) {
  const lp::Problem p = small_lp();
  const lp::Solution sol = lp::solve_lp(p);
  ASSERT_TRUE(sol.optimal());

  obs::clear_audit_attribution();
  obs::add_audit_attribution("attacker", "picked 2 targets");
  obs::add_audit_attribution("defender:edge_3", "hardened, cost 1.5");
  obs::AuditBundle bundle =
      obs::make_audit_bundle(p, sol, "lp.simplex", "manual");
  obs::clear_audit_attribution();

  std::ostringstream os;
  obs::write_audit_bundle(os, bundle);
  const auto parsed = obs::parse_audit_bundle(os.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const obs::AuditBundle& back = parsed.value();

  EXPECT_EQ(back.version, 1);
  EXPECT_EQ(back.context, "lp.simplex");
  EXPECT_EQ(back.trigger, "manual");
  EXPECT_EQ(back.created_utc, bundle.created_utc);
  ASSERT_EQ(back.problem.num_variables(), p.num_variables());
  ASSERT_EQ(back.problem.num_constraints(), p.num_constraints());
  EXPECT_EQ(back.problem.objective(), lp::Objective::kMaximize);
  EXPECT_EQ(back.problem.variable(0).name, "x");
  EXPECT_EQ(back.problem.constraint(1).name, "x_cap");
  EXPECT_DOUBLE_EQ(back.problem.constraint(0).rhs, 4.0);
  EXPECT_EQ(back.solution.status, lp::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(back.solution.objective, sol.objective);
  ASSERT_EQ(back.solution.x.size(), sol.x.size());
  EXPECT_DOUBLE_EQ(back.solution.x[0], sol.x[0]);
  ASSERT_EQ(back.solution.duals.size(), sol.duals.size());
  EXPECT_EQ(back.certificate.verdict, obs::CertVerdict::kVerified);
  EXPECT_EQ(back.binding.size(), bundle.binding.size());
  ASSERT_EQ(back.attribution.size(), 2u);
  EXPECT_EQ(back.attribution[0].key, "attacker");
  EXPECT_EQ(back.attribution[1].note, "hardened, cost 1.5");
  EXPECT_EQ(back.log_tail.size(), bundle.log_tail.size());
}

TEST(AuditBundle, RecertifyingAParsedBundleMatches) {
  const lp::Problem p = small_milp();
  const lp::Solution sol = lp::solve_milp(p);
  ASSERT_TRUE(sol.optimal());
  const obs::AuditBundle bundle =
      obs::make_audit_bundle(p, sol, "lp.bnb", "manual");

  std::ostringstream os;
  obs::write_audit_bundle(os, bundle);
  const auto parsed = obs::parse_audit_bundle(os.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();

  // The embedded problem + solution must recertify to the same verdict —
  // this is what `gridsec-inspect --validate` does.
  const obs::Certificate fresh =
      obs::certify(parsed.value().problem, parsed.value().solution);
  EXPECT_EQ(fresh.verdict, bundle.certificate.verdict);
  EXPECT_TRUE(fresh.ok());
}

TEST(AuditBundle, ParserRejectsForeignJson) {
  EXPECT_FALSE(obs::parse_audit_bundle("{}").is_ok());
  EXPECT_FALSE(obs::parse_audit_bundle("not json").is_ok());
  EXPECT_FALSE(
      obs::parse_audit_bundle("{\"schema\":\"something.else\",\"version\":1}")
          .is_ok());
}

TEST(AuditBundle, FileRoundTrip) {
  const lp::Problem p = small_lp();
  const lp::Solution sol = lp::solve_lp(p);
  const obs::AuditBundle bundle =
      obs::make_audit_bundle(p, sol, "lp.simplex", "manual");
  const std::string path = ::testing::TempDir() + "audit_roundtrip.json";

  ASSERT_TRUE(obs::write_audit_bundle_file(path, bundle).is_ok());
  const auto back = obs::read_audit_bundle_file(path);
  ASSERT_TRUE(back.is_ok()) << back.status().message();
  EXPECT_EQ(back.value().context, "lp.simplex");
  fs::remove(path);
}

TEST(ArmedAudit, DumpsBundleOnNumericalError) {
  const fs::path dir = fs::path(::testing::TempDir()) / "audit_dump_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::AuditConfig cfg;
  cfg.dump_dir = dir.string();
  obs::arm_audit(cfg);
  ASSERT_TRUE(obs::audit_armed());

  const lp::Solution sol = lp::solve_lp(poisoned_lp());
  EXPECT_EQ(sol.status, lp::SolveStatus::kNumericalError);
  EXPECT_GE(obs::audit_dump_count(), 1u);

  obs::AuditBundle first;
  ASSERT_TRUE(obs::first_audit_failure(&first));
  EXPECT_EQ(first.trigger, "failure");
  EXPECT_EQ(first.context, "lp.simplex");
  EXPECT_EQ(first.solution.status, lp::SolveStatus::kNumericalError);

  std::size_t parseable = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto parsed = obs::read_audit_bundle_file(entry.path().string());
    EXPECT_TRUE(parsed.is_ok())
        << entry.path() << ": " << parsed.status().message();
    if (parsed.is_ok()) ++parseable;
  }
  EXPECT_GE(parseable, 1u);

  fs::remove_all(dir);
  rearm_suite_audit();
}

TEST(ArmedAudit, MaxDumpsBoundsFilesWritten) {
  const fs::path dir = fs::path(::testing::TempDir()) / "audit_maxdump_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::AuditConfig cfg;
  cfg.dump_dir = dir.string();
  cfg.max_dumps = 2;
  obs::arm_audit(cfg);
  for (int i = 0; i < 5; ++i) (void)lp::solve_lp(poisoned_lp());
  EXPECT_EQ(obs::audit_dump_count(), 2u);

  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);

  fs::remove_all(dir);
  rearm_suite_audit();
}

TEST(ArmedAudit, FaultInjectedMonteCarloAutoDumpsBundle) {
  const fs::path dir = fs::path(::testing::TempDir()) / "audit_mc_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::AuditConfig cfg;
  cfg.dump_dir = dir.string();
  obs::arm_audit(cfg);

  // 6 seeded trials; even trials get a NaN cost injected, so their solves
  // end in kNumericalError and the armed hook dumps a bundle.
  constexpr std::uint64_t kSweepSeed = 0xC0FFEE;
  const auto results = gridsec::sim::run_trials_robust<double>(
      /*pool=*/nullptr, /*n=*/6, kSweepSeed,
      [](std::size_t trial, gridsec::Rng& rng, int) -> gridsec::StatusOr<double> {
        lp::Problem p = small_lp();
        if (trial % 2 == 0) {
          gridsec::robust::FaultInjector injector(rng.next());
          injector.inject(p, gridsec::robust::FaultKind::kNanCost);
        }
        const lp::Solution sol = lp::solve_lp(p);
        if (!sol.optimal()) return lp::to_status(sol.status, "audit_mc_test");
        return sol.objective;
      });

  EXPECT_EQ(results.failed, 3u);
  EXPECT_EQ(results.succeeded(), 3u);
  EXPECT_GE(obs::audit_dump_count(), 1u);

  std::size_t parseable = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto parsed = obs::read_audit_bundle_file(entry.path().string());
    ASSERT_TRUE(parsed.is_ok())
        << entry.path() << ": " << parsed.status().message();
    EXPECT_EQ(parsed.value().solution.status,
              lp::SolveStatus::kNumericalError);
    ++parseable;
  }
  EXPECT_GE(parseable, 1u);

  fs::remove_all(dir);
  rearm_suite_audit();
}

TEST(Attribution, GlobalRowsRoundTrip) {
  obs::clear_audit_attribution();
  EXPECT_TRUE(obs::audit_attribution().empty());
  obs::add_audit_attribution("a", "first");
  obs::set_audit_attribution({{"b", "second"}, {"c", "third"}});
  const auto rows = obs::audit_attribution();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "b");
  EXPECT_EQ(rows[1].note, "third");
  obs::clear_audit_attribution();
}

}  // namespace
