// Solver event streams: the simplex observer fires exactly once per
// counted pivot, the B&B observer's node trajectory matches the returned
// stats, and Solution::bnb is populated.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/lp/milp.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/solver_events.hpp"

namespace gridsec::lp {
namespace {

// A small LP that takes several pivots: maximize x+2y+3z under coupling
// rows.
Problem small_lp() {
  Problem p(Objective::kMaximize);
  const int x = p.add_variable("x", 0.0, 40.0, 1.0);
  const int y = p.add_variable("y", 0.0, kInfinity, 2.0);
  const int z = p.add_variable("z", 0.0, kInfinity, 3.0);
  LinearExpr r1;
  r1.add(x, 1.0).add(y, 1.0).add(z, 1.0);
  p.add_constraint("r1", std::move(r1), Sense::kLessEqual, 100.0);
  LinearExpr r2;
  r2.add(x, 2.0).add(y, 1.0).add(z, -1.0);
  p.add_constraint("r2", std::move(r2), Sense::kLessEqual, 210.0);
  LinearExpr r3;
  r3.add(y, 1.0).add(z, -1.0);
  p.add_constraint("r3", std::move(r3), Sense::kGreaterEqual, -30.0);
  return p;
}

// A knapsack MILP with enough fractional LP relaxations to branch.
Problem knapsack_milp() {
  Problem p(Objective::kMaximize);
  const std::vector<double> value{10, 13, 7, 11, 9, 8};
  const std::vector<double> weight{3, 4, 2, 3.5, 2.5, 2.2};
  LinearExpr cap;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const int v = p.add_binary("b" + std::to_string(i), value[i]);
    cap.add(v, weight[i]);
  }
  p.add_constraint("cap", std::move(cap), Sense::kLessEqual, 8.0);
  return p;
}

TEST(SimplexObserver, EventCountEqualsSolutionIterations) {
  SimplexOptions opt;
  std::vector<obs::SimplexIterationEvent> events;
  opt.observer = [&events](const obs::SimplexIterationEvent& ev) {
    events.push_back(ev);
  };
  SimplexSolver solver(opt);
  const Solution sol = solver.solve(small_lp());
  ASSERT_TRUE(sol.optimal());
  EXPECT_GT(sol.iterations, 0);
  EXPECT_EQ(static_cast<long>(events.size()), sol.iterations);
  // Iterations number 0..n-1 cumulatively across both phases.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].iteration, static_cast<long>(i));
    EXPECT_TRUE(events[i].phase == 1 || events[i].phase == 2);
    EXPECT_GE(events[i].entering, 0);
    if (events[i].bound_flip) {
      EXPECT_EQ(events[i].leaving, -1);
    } else {
      EXPECT_GE(events[i].leaving, 0);
    }
  }
}

TEST(SimplexObserver, NoObserverStillCountsIterations) {
  SimplexSolver solver;
  const Solution sol = solver.solve(small_lp());
  ASSERT_TRUE(sol.optimal());
  EXPECT_GT(sol.iterations, 0);
}

TEST(SimplexObserver, ObserverDoesNotChangeResult) {
  SimplexSolver plain;
  const Solution a = plain.solve(small_lp());
  SimplexOptions opt;
  long fired = 0;
  opt.observer = [&fired](const obs::SimplexIterationEvent&) { ++fired; };
  SimplexSolver observed(opt);
  const Solution b = observed.solve(small_lp());
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(fired, b.iterations);
}

TEST(BnBObserver, ExploredEventsMatchStatsAndSolutionBnb) {
  BranchAndBoundOptions opt;
  opt.use_presolve = false;  // keep the full tree so events are non-trivial
  long explored_events = 0;
  long incumbent_events = 0;
  double last_gap = -1.0;
  opt.observer = [&](const obs::BnBNodeEvent& ev) {
    using Kind = obs::BnBNodeEvent::Kind;
    if (ev.kind == Kind::kNodeExplored) ++explored_events;
    if (ev.kind == Kind::kIncumbent) ++incumbent_events;
    if (ev.has_incumbent) last_gap = ev.gap;
  };
  BranchAndBoundSolver solver(opt);
  const Solution sol = solver.solve(knapsack_milp());
  ASSERT_TRUE(sol.optimal());
  EXPECT_GT(sol.bnb.nodes_explored, 0);
  EXPECT_EQ(explored_events, sol.bnb.nodes_explored);
  EXPECT_GT(incumbent_events, 0);
  EXPECT_GE(sol.bnb.lp_solves, sol.bnb.nodes_explored);
  EXPECT_GE(last_gap, 0.0);  // final incumbent-bearing event carried a gap
}

TEST(BnBObserver, SolutionBnbPopulatedWithoutObserver) {
  BranchAndBoundSolver solver;
  const Solution sol = solver.solve(knapsack_milp());
  ASSERT_TRUE(sol.optimal());
  EXPECT_GT(sol.bnb.nodes_explored, 0);
  EXPECT_GT(sol.bnb.lp_solves, 0);
  EXPECT_GT(sol.bnb.incumbent_updates, 0);
}

TEST(BnBObserver, PlainLpLeavesBnbStatsZero) {
  SimplexSolver solver;
  const Solution sol = solver.solve(small_lp());
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(sol.bnb.nodes_explored, 0);
  EXPECT_EQ(sol.bnb.lp_solves, 0);
  EXPECT_EQ(sol.bnb.incumbent_updates, 0);
}

TEST(BnBObserver, BoundsReportedInProblemSense) {
  // Maximization: every reported node bound must be >= the final optimum
  // (the relaxation can only be optimistic).
  BranchAndBoundOptions opt;
  opt.use_presolve = false;
  std::vector<double> bounds;
  opt.observer = [&bounds](const obs::BnBNodeEvent& ev) {
    if (ev.kind == obs::BnBNodeEvent::Kind::kNodeExplored) {
      bounds.push_back(ev.bound);
    }
  };
  BranchAndBoundSolver solver(opt);
  const Solution sol = solver.solve(knapsack_milp());
  ASSERT_TRUE(sol.optimal());
  ASSERT_FALSE(bounds.empty());
  for (double b : bounds) {
    EXPECT_GE(b, sol.objective - 1e-6);
  }
}

}  // namespace
}  // namespace gridsec::lp
