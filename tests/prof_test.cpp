// gridsec::obs::prof — phase-attributed profiling: frame capture via
// TraceSpan, exclusive allocation attribution, folded/JSON export round
// trips, registry publication, and TSan-exercised concurrent recording.
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/prof.hpp"
#include "gridsec/obs/trace.hpp"
#include "gridsec/util/thread_pool.hpp"

namespace gridsec::obs {
namespace {

#ifndef GRIDSEC_NO_PROFILING

/// Allocates exactly one heap block of `bytes` requested bytes and keeps
/// it alive until the returned pointer dies.
std::unique_ptr<char[]> grab(std::size_t bytes) {
  std::unique_ptr<char[]> p(new char[bytes]);
  p[0] = 'x';  // touch so the allocation cannot be elided
  return p;
}

class ProfilerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::stop();
    Profiler::reset();
  }
  void TearDown() override {
    Profiler::stop();
    Profiler::reset();
  }
};

using ProfilerTest = ProfilerFixture;

TEST_F(ProfilerTest, DisabledByDefaultAndSpansRecordNothing) {
  ASSERT_FALSE(Profiler::enabled());
  { GRIDSEC_TRACE_SPAN("prof.test.unrecorded"); }
  const Profile p = Profiler::snapshot();
  EXPECT_EQ(p.root.find("prof.test.unrecorded"), nullptr);
}

TEST_F(ProfilerTest, BuildsCallTreeWithCountsAndTimes) {
  Profiler::start();
  for (int i = 0; i < 3; ++i) {
    GRIDSEC_TRACE_SPAN("prof.test.outer");
    {
      GRIDSEC_TRACE_SPAN("prof.test.inner");
      // Spin ~1ms of real CPU work so wall and cpu are both visibly > 0.
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
      volatile double sink = 0.0;
      while (std::chrono::steady_clock::now() < until) sink = sink + 1.0;
    }
  }
  Profiler::stop();
  const Profile p = Profiler::snapshot();
  ASSERT_EQ(p.threads, 1);
  const ProfileNode* outer = p.root.find("prof.test.outer");
  ASSERT_NE(outer, nullptr);
  const ProfileNode* inner = outer->find("prof.test.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3);
  EXPECT_EQ(inner->count, 3);
  // Inclusive nesting: the parent contains the child.
  EXPECT_GE(outer->wall_ns, inner->wall_ns);
  EXPECT_GT(inner->wall_ns, 2'000'000);  // 3 reps x ~1ms spin
  EXPECT_GT(inner->cpu_ns, 0);
  // Exclusive split: excl = incl - children, clamped non-negative.
  EXPECT_EQ(outer->excl_wall_ns, outer->wall_ns - inner->wall_ns);
  EXPECT_EQ(inner->excl_wall_ns, inner->wall_ns);  // leaf: no children
  EXPECT_GE(outer->excl_cpu_ns, 0);
}

TEST_F(ProfilerTest, AttributesAllocationsExclusivelyToTheActivePhase) {
  Profiler::start();
  {
    GRIDSEC_TRACE_SPAN("prof.test.alloc_outer");
    auto a = grab(1000);
    {
      GRIDSEC_TRACE_SPAN("prof.test.alloc_inner");
      auto b = grab(5000);
    }
    auto c = grab(300);
  }
  Profiler::stop();
  const Profile p = Profiler::snapshot();
  const ProfileNode* outer = p.root.find("prof.test.alloc_outer");
  ASSERT_NE(outer, nullptr);
  const ProfileNode* inner = outer->find("prof.test.alloc_inner");
  ASSERT_NE(inner, nullptr);
  // The inner 5000-byte block is charged to the inner phase only. The
  // profiler's own bookkeeping (tree nodes) adds a small constant, hence
  // bounds instead of equality.
  EXPECT_GE(inner->alloc_bytes, 5000);
  EXPECT_LT(inner->alloc_bytes, 5000 + 2048);
  EXPECT_GE(inner->alloc_count, 1);
  EXPECT_LT(inner->alloc_count, 16);
  // The outer phase carries its own 1000 + 300 bytes but NOT the inner
  // 5000 — alloc attribution is exclusive, unlike wall/cpu time.
  EXPECT_GE(outer->alloc_bytes, 1300);
  EXPECT_LT(outer->alloc_bytes, 5000);
}

TEST_F(ProfilerTest, ResetDiscardsRecordedFrames) {
  Profiler::start();
  { GRIDSEC_TRACE_SPAN("prof.test.discarded"); }
  Profiler::stop();
  ASSERT_NE(Profiler::snapshot().root.find("prof.test.discarded"), nullptr);
  Profiler::reset();
  EXPECT_EQ(Profiler::snapshot().root.find("prof.test.discarded"), nullptr);
}

TEST_F(ProfilerTest, SnapshotIsCallableWhileRecording) {
  Profiler::start();
  GRIDSEC_TRACE_SPAN("prof.test.still_open");
  const Profile p = Profiler::snapshot();
  // The open frame has not completed, so it contributes no count yet; the
  // call must simply not deadlock or crash.
  const ProfileNode* open = p.root.find("prof.test.still_open");
  if (open != nullptr) EXPECT_EQ(open->count, 0);
}

TEST_F(ProfilerTest, FoldedExportEmitsSemicolonPathsWithExclusiveWeights) {
  Profiler::start();
  {
    GRIDSEC_TRACE_SPAN("prof.test.fold_outer");
    auto a = grab(4096);
    {
      GRIDSEC_TRACE_SPAN("prof.test.fold_inner");
      auto b = grab(8192);
    }
  }
  Profiler::stop();
  const Profile p = Profiler::snapshot();
  std::ostringstream folded;
  write_profile_folded(folded, p, ProfileWeight::kAllocBytes);
  const std::string text = folded.str();
  EXPECT_NE(text.find("prof.test.fold_outer "), std::string::npos) << text;
  EXPECT_NE(text.find("prof.test.fold_outer;prof.test.fold_inner "),
            std::string::npos)
      << text;
}

TEST_F(ProfilerTest, JsonRoundTripPreservesTheTree) {
  Profiler::start();
  {
    GRIDSEC_TRACE_SPAN("prof.test.rt_outer");
    auto a = grab(2000);
    { GRIDSEC_TRACE_SPAN("prof.test.rt_inner"); }
  }
  Profiler::stop();
  const Profile p = Profiler::snapshot();
  std::ostringstream os;
  write_profile_json(os, p);
  const StatusOr<Profile> back = parse_profile(os.str());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back->schema_version, kProfileSchemaVersion);
  EXPECT_EQ(back->threads, p.threads);
  EXPECT_EQ(back->alloc.count, p.alloc.count);
  EXPECT_EQ(back->alloc.bytes, p.alloc.bytes);
  const ProfileNode* outer = back->root.find("prof.test.rt_outer");
  ASSERT_NE(outer, nullptr);
  const ProfileNode* orig = p.root.find("prof.test.rt_outer");
  ASSERT_NE(orig, nullptr);
  EXPECT_EQ(outer->count, orig->count);
  EXPECT_EQ(outer->wall_ns, orig->wall_ns);
  EXPECT_EQ(outer->excl_wall_ns, orig->excl_wall_ns);
  EXPECT_EQ(outer->alloc_bytes, orig->alloc_bytes);
  ASSERT_NE(outer->find("prof.test.rt_inner"), nullptr);
}

TEST_F(ProfilerTest, AllocTotalsTrackCountBytesLiveAndPeak) {
  // live/peak need the usable-size path, which only runs while recording.
  Profiler::start();
  const AllocTotals before = alloc_totals();
  auto block = grab(1 << 16);
  const AllocTotals during = alloc_totals();
  EXPECT_GE(during.count, before.count + 1);
  EXPECT_GE(during.bytes, before.bytes + (1 << 16));
  EXPECT_GE(during.live_bytes, before.live_bytes + (1 << 16));
  EXPECT_GE(during.peak_bytes, during.live_bytes);
  block.reset();
  const AllocTotals after = alloc_totals();
  EXPECT_LT(after.live_bytes, during.live_bytes);
  EXPECT_GE(after.peak_bytes, during.live_bytes);  // peak never shrinks
}

TEST_F(ProfilerTest, SyncAllocCountersPublishesMonotonicRegistryCounters) {
  sync_alloc_counters();
  const std::int64_t c1 =
      default_registry().counter("obs.alloc.count").value();
  const std::int64_t b1 =
      default_registry().counter("obs.alloc.bytes").value();
  EXPECT_GT(c1, 0);
  EXPECT_GT(b1, 0);
  auto block = grab(10000);
  sync_alloc_counters();
  const std::int64_t c2 =
      default_registry().counter("obs.alloc.count").value();
  const std::int64_t b2 =
      default_registry().counter("obs.alloc.bytes").value();
  EXPECT_GT(c2, c1);
  EXPECT_GE(b2, b1 + 10000);
  // Delta publication: the counter never overtakes the process totals.
  EXPECT_LE(c2, alloc_totals().count);
}

TEST_F(ProfilerTest, WeightValuesMatchNodeFields) {
  ProfileNode n;
  n.excl_wall_ns = 3'000'000;
  n.excl_cpu_ns = 2'000'000;
  n.alloc_count = 7;
  n.alloc_bytes = 4096;
  EXPECT_EQ(profile_weight_value(n, ProfileWeight::kWallMicros), 3000);
  EXPECT_EQ(profile_weight_value(n, ProfileWeight::kCpuMicros), 2000);
  EXPECT_EQ(profile_weight_value(n, ProfileWeight::kAllocCount), 7);
  EXPECT_EQ(profile_weight_value(n, ProfileWeight::kAllocBytes), 4096);
}

TEST_F(ProfilerTest, FlattenProfileListsEveryPathDepthFirst) {
  Profiler::start();
  {
    GRIDSEC_TRACE_SPAN("prof.test.flat_a");
    { GRIDSEC_TRACE_SPAN("prof.test.flat_b"); }
  }
  Profiler::stop();
  const Profile p = Profiler::snapshot();
  const std::vector<ProfileRow> rows = flatten_profile(p);
  bool found_a = false;
  bool found_ab = false;
  for (const ProfileRow& r : rows) {
    if (r.path == "prof.test.flat_a") found_a = true;
    if (r.path == "prof.test.flat_a;prof.test.flat_b") found_ab = true;
  }
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_ab);
}

// TSan coverage: workers record nested spans and allocate while the main
// thread snapshots mid-flight. The profiler must be data-race free.
TEST(Profiler, ConcurrentSpansAndAllocsAreTSanClean) {
  Profiler::stop();
  Profiler::reset();
  Profiler::start();
  ThreadPool pool(4);
  std::atomic<bool> stop_snapshots{false};
  std::thread snapshotter([&stop_snapshots] {
    while (!stop_snapshots.load(std::memory_order_relaxed)) {
      const Profile p = Profiler::snapshot();
      EXPECT_GE(p.alloc.count, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  parallel_for(&pool, 64, [](std::size_t i) {
    GRIDSEC_TRACE_SPAN("prof.test.worker_outer");
    std::vector<std::unique_ptr<char[]>> blocks;
    for (std::size_t j = 0; j < 8; ++j) {
      GRIDSEC_TRACE_SPAN("prof.test.worker_inner");
      blocks.push_back(grab(64 * (1 + (i % 7))));
    }
  });
  stop_snapshots.store(true, std::memory_order_relaxed);
  snapshotter.join();
  Profiler::stop();
  const Profile p = Profiler::snapshot();
  const ProfileNode* outer = p.root.find("prof.test.worker_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 64);
  const ProfileNode* inner = outer->find("prof.test.worker_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 64 * 8);
  EXPECT_GE(inner->alloc_count, 64 * 8);  // one grab() per inner span
  Profiler::reset();
}

#endif  // GRIDSEC_NO_PROFILING

// Parsing guards are available in every build flavor.
TEST(ParseProfile, RejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(parse_profile("not json").is_ok());
  EXPECT_FALSE(parse_profile("{}").is_ok());
  EXPECT_FALSE(
      parse_profile(
          R"({"schema":"gridsec.bench_report","schema_version":1,"tree":{}})")
          .is_ok());
  EXPECT_FALSE(
      parse_profile(
          R"({"schema":"gridsec.profile","schema_version":999,"tree":{}})")
          .is_ok());
  EXPECT_FALSE(
      parse_profile(R"({"schema":"gridsec.profile","schema_version":1})")
          .is_ok());
}

TEST(ParseProfile, AcceptsMinimalDocument) {
  const StatusOr<Profile> p = parse_profile(
      R"json({"schema":"gridsec.profile","schema_version":1,"threads":2,)json"
      R"json("alloc":{"count":10,"bytes":640,"live_bytes":0,"peak_bytes":640},)json"
      R"json("pool":{"busy_ns":5,"idle_ns":7},)json"
      R"json("tree":{"name":"(root)","children":[)json"
      R"json({"name":"a","count":1,"wall_ns":100,"excl_wall_ns":100}]}})json");
  ASSERT_TRUE(p.is_ok()) << p.status().to_string();
  EXPECT_EQ(p->threads, 2);
  EXPECT_EQ(p->alloc.bytes, 640);
  EXPECT_EQ(p->pool_busy_ns, 5);
  EXPECT_EQ(p->pool_idle_ns, 7);
  const ProfileNode* a = p->root.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->wall_ns, 100);
}

}  // namespace
}  // namespace gridsec::obs
