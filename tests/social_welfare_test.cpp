// Tests for the social-welfare LP (paper Eqs 1-7).
#include "gridsec/flow/social_welfare.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridsec::flow {
namespace {

constexpr double kTol = 1e-6;

TEST(SocialWelfare, SingleProducerConsumer) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // Serve all 60 units: welfare = (50 - 20) * 60.
  EXPECT_NEAR(sol.welfare, 1800.0, kTol);
  EXPECT_NEAR(sol.flow[0], 60.0, kTol);
  EXPECT_NEAR(sol.flow[1], 60.0, kTol);
}

TEST(SocialWelfare, UnprofitableDemandNotServed) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 80.0);
  net.add_demand("load", h, 60.0, 50.0);  // price < cost
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.welfare, 0.0, kTol);
  EXPECT_NEAR(sol.flow[0], 0.0, kTol);
}

TEST(SocialWelfare, CheapestGeneratorDispatchedFirst) {
  Network net;
  const NodeId h = net.add_hub("H");
  const EdgeId cheap = net.add_supply("cheap", h, 40.0, 10.0);
  const EdgeId dear = net.add_supply("dear", h, 100.0, 30.0);
  net.add_demand("load", h, 70.0, 50.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(cheap)], 40.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(dear)], 30.0, kTol);
  EXPECT_NEAR(sol.welfare, 40.0 * 40.0 + 30.0 * 20.0, kTol);
}

TEST(SocialWelfare, TransmissionCapacityBinds) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen.A", a, 100.0, 10.0);
  const EdgeId line =
      net.add_edge("line", EdgeKind::kTransmission, a, b, 25.0, 1.0);
  net.add_demand("load.B", b, 60.0, 40.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(line)], 25.0, kTol);
  EXPECT_NEAR(sol.welfare, 25.0 * (40.0 - 10.0 - 1.0), kTol);
}

TEST(SocialWelfare, LossyConservationGrossesUpInput) {
  // 20% loss: delivering f requires f/0.8 at the sending hub.
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  const EdgeId gen = net.add_supply("gen.A", a, 100.0, 10.0);
  const EdgeId line =
      net.add_edge("line", EdgeKind::kTransmission, a, b, 100.0, 0.0, 0.2);
  const EdgeId load = net.add_demand("load.B", b, 40.0, 50.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(load)], 40.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(line)], 40.0, kTol);
  // The generator must deliver 40/(1-0.2) = 50 into hub A.
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(gen)], 50.0, kTol);
  EXPECT_NEAR(sol.welfare, 50.0 * 40.0 - 10.0 * 50.0, kTol);
}

TEST(SocialWelfare, LossMakesDistantSupplyUncompetitive) {
  // Local dear generator vs remote cheap one across a very lossy line:
  // high loss means the remote energy effectively costs cost/(1-l).
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  const EdgeId remote = net.add_supply("remote", a, 100.0, 20.0);
  const EdgeId local = net.add_supply("local", b, 100.0, 30.0);
  net.add_edge("line", EdgeKind::kTransmission, a, b, 100.0, 0.0, 0.5);
  net.add_demand("load", b, 50.0, 100.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // Remote effective cost = 20/(1-0.5) = 40 > 30 local: local wins.
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(local)], 50.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(remote)], 0.0, kTol);
}

TEST(SocialWelfare, NodePricesReflectMarginalCost) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // Marginal unit comes from the (uncapped) generator: LMP = 20.
  EXPECT_NEAR(sol.node_price[static_cast<std::size_t>(h)], 20.0, kTol);
}

TEST(SocialWelfare, ScarcityRaisesNodePriceToDemandValue) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 40.0, 20.0);  // scarce
  net.add_demand("load", h, 60.0, 50.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // All supply consumed; marginal value of one more unit = consumer's 50.
  EXPECT_NEAR(sol.node_price[static_cast<std::size_t>(h)], 50.0, kTol);
}

TEST(SocialWelfare, CongestionSeparatesPrices) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen.A", a, 1000.0, 10.0);
  net.add_supply("gen.B", b, 1000.0, 45.0);
  net.add_edge("line", EdgeKind::kTransmission, a, b, 30.0, 0.0);
  net.add_demand("load.B", b, 100.0, 60.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  // Line congested: price at A stays at its generator cost, price at B
  // rises to the local generator's 45.
  EXPECT_NEAR(sol.node_price[static_cast<std::size_t>(a)], 10.0, kTol);
  EXPECT_NEAR(sol.node_price[static_cast<std::size_t>(b)], 45.0, kTol);
}

TEST(SocialWelfare, EmptyNetworkIsZeroWelfare) {
  Network net;
  net.add_hub("lonely");
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.welfare, 0.0, kTol);
}

TEST(SocialWelfare, ZeroCapacityEdgeCarriesNothing) {
  Network net;
  const NodeId h = net.add_hub("H");
  const EdgeId gen = net.add_supply("gen", h, 0.0, 10.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(gen)], 0.0, kTol);
  EXPECT_NEAR(sol.welfare, 0.0, kTol);
}

TEST(SocialWelfare, GasElectricConversionChain) {
  // Gas hub feeds an electric hub through a conversion edge with thermal
  // loss; the electric consumer's price must cover the grossed-up gas cost.
  Network net;
  const NodeId gas = net.add_hub("gas");
  const NodeId elec = net.add_hub("elec");
  const EdgeId well = net.add_supply("well", gas, 200.0, 15.0);
  const EdgeId conv =
      net.add_edge("ccgt", EdgeKind::kConversion, gas, elec, 100.0, 3.0, 0.5);
  const EdgeId load = net.add_demand("city", elec, 50.0, 80.0);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(load)], 50.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(conv)], 50.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(well)], 100.0, kTol);
  // Welfare = 50*80 - 100*15 - 50*3.
  EXPECT_NEAR(sol.welfare, 4000.0 - 1500.0 - 150.0, kTol);
  // Electric LMP = gas LMP grossed up by conversion loss plus adder:
  // 15/(1-0.5) + 3 = 33.
  EXPECT_NEAR(sol.node_price[static_cast<std::size_t>(elec)], 33.0, kTol);
  EXPECT_NEAR(sol.node_price[static_cast<std::size_t>(gas)], 15.0, kTol);
}

}  // namespace
}  // namespace gridsec::flow
