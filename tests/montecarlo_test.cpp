// Tests for the Monte-Carlo harness: determinism across thread counts.
#include "gridsec/sim/montecarlo.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsec::sim {
namespace {

double trial_value(std::size_t i, Rng& rng) {
  // Depends on both the index and the per-trial stream.
  return static_cast<double>(i) + rng.uniform();
}

TEST(MonteCarlo, ResultsInTrialOrder) {
  auto out = run_trials<double>(nullptr, 8, 1,
                                [](std::size_t i, Rng&) {
                                  return static_cast<double>(i) * 2.0;
                                });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(MonteCarlo, IdenticalAcrossThreadCounts) {
  ThreadPool pool1(1), pool4(4);
  auto serial = run_trials<double>(nullptr, 64, 42, trial_value);
  auto one = run_trials<double>(&pool1, 64, 42, trial_value);
  auto four = run_trials<double>(&pool4, 64, 42, trial_value);
  EXPECT_EQ(serial, one);
  EXPECT_EQ(serial, four);
}

TEST(MonteCarlo, SeedChangesResults) {
  auto a = run_trials<double>(nullptr, 16, 1, trial_value);
  auto b = run_trials<double>(nullptr, 16, 2, trial_value);
  EXPECT_NE(a, b);
}

TEST(MonteCarlo, TrialsAreIndependentStreams) {
  // Two trials with the same body must see different random values.
  auto out = run_trials<double>(nullptr, 2, 3,
                                [](std::size_t, Rng& rng) {
                                  return rng.uniform();
                                });
  EXPECT_NE(out[0], out[1]);
}

TEST(MonteCarlo, ScalarTrialsAggregate) {
  ThreadPool pool(2);
  auto stats = run_scalar_trials(&pool, 100, 7,
                                 [](std::size_t, Rng& rng) {
                                   return rng.uniform();
                                 });
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_GT(stats.mean(), 0.3);
  EXPECT_LT(stats.mean(), 0.7);
}

TEST(MonteCarlo, ZeroTrials) {
  auto out = run_trials<int>(nullptr, 0, 1,
                             [](std::size_t, Rng&) { return 1; });
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace gridsec::sim
