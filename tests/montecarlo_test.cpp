// Tests for the Monte-Carlo harness: determinism across thread counts and
// the degrade-don't-die robust variant (partial results, retries,
// fail-fast, failure metrics).
#include "gridsec/sim/montecarlo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "gridsec/obs/metrics.hpp"

namespace gridsec::sim {
namespace {

double trial_value(std::size_t i, Rng& rng) {
  // Depends on both the index and the per-trial stream.
  return static_cast<double>(i) + rng.uniform();
}

TEST(MonteCarlo, ResultsInTrialOrder) {
  auto out = run_trials<double>(nullptr, 8, 1,
                                [](std::size_t i, Rng&) {
                                  return static_cast<double>(i) * 2.0;
                                });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(MonteCarlo, IdenticalAcrossThreadCounts) {
  ThreadPool pool1(1), pool4(4);
  auto serial = run_trials<double>(nullptr, 64, 42, trial_value);
  auto one = run_trials<double>(&pool1, 64, 42, trial_value);
  auto four = run_trials<double>(&pool4, 64, 42, trial_value);
  EXPECT_EQ(serial, one);
  EXPECT_EQ(serial, four);
}

TEST(MonteCarlo, SeedChangesResults) {
  auto a = run_trials<double>(nullptr, 16, 1, trial_value);
  auto b = run_trials<double>(nullptr, 16, 2, trial_value);
  EXPECT_NE(a, b);
}

TEST(MonteCarlo, TrialsAreIndependentStreams) {
  // Two trials with the same body must see different random values.
  auto out = run_trials<double>(nullptr, 2, 3,
                                [](std::size_t, Rng& rng) {
                                  return rng.uniform();
                                });
  EXPECT_NE(out[0], out[1]);
}

TEST(MonteCarlo, ScalarTrialsAggregate) {
  ThreadPool pool(2);
  auto stats = run_scalar_trials(&pool, 100, 7,
                                 [](std::size_t, Rng& rng) {
                                   return rng.uniform();
                                 });
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_GT(stats.mean(), 0.3);
  EXPECT_LT(stats.mean(), 0.7);
}

TEST(MonteCarlo, ZeroTrials) {
  auto out = run_trials<int>(nullptr, 0, 1,
                             [](std::size_t, Rng&) { return 1; });
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// run_trials_robust: the degrade-don't-die harness.

TEST(MonteCarloRobust, MatchesPlainHarnessWhenAllTrialsSucceed) {
  // Attempt 0 carries the canonical per-trial stream, so a fully
  // successful robust sweep is bit-identical to run_trials.
  const auto plain = run_trials<double>(nullptr, 32, 42, trial_value);
  const auto robust = run_trials_robust<double>(
      nullptr, 32, 42,
      [](std::size_t i, Rng& rng, int) -> StatusOr<double> {
        return trial_value(i, rng);
      });
  EXPECT_TRUE(robust.all_ok());
  EXPECT_EQ(robust.succeeded(), 32u);
  ASSERT_EQ(robust.results.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(robust.results[i].has_value());
    EXPECT_EQ(*robust.results[i], plain[i]);  // bit-identical
  }
}

TEST(MonteCarloRobust, IdenticalAcrossThreadCounts) {
  auto run = [](ThreadPool* pool) {
    return run_trials_robust<double>(
        pool, 64, 7,
        [](std::size_t i, Rng& rng, int) -> StatusOr<double> {
          return trial_value(i, rng);
        });
  };
  ThreadPool pool4(4);
  const auto serial = run(nullptr);
  const auto four = run(&pool4);
  EXPECT_EQ(serial.results, four.results);
}

TEST(MonteCarloRobust, RecordsPartialResultsAndFailures) {
  auto& c_failed =
      obs::default_registry().counter("sim.montecarlo.failed_trials");
  auto& c_invalid = obs::default_registry().counter(
      "sim.montecarlo.failed.INVALID_ARGUMENT");
  const auto failed_before = c_failed.value();
  const auto invalid_before = c_invalid.value();

  const auto out = run_trials_robust<double>(
      nullptr, 10, 5,
      [](std::size_t i, Rng&, int) -> StatusOr<double> {
        if (i % 3 == 0) {
          return Status::invalid_argument("trial " + std::to_string(i));
        }
        return static_cast<double>(i);
      });
  EXPECT_FALSE(out.all_ok());
  EXPECT_EQ(out.failed, 4u);  // trials 0, 3, 6, 9
  EXPECT_EQ(out.skipped, 0u);
  EXPECT_EQ(out.succeeded(), 6u);
  ASSERT_EQ(out.failures.size(), 4u);
  EXPECT_EQ(out.failures[0].trial, 0u);
  EXPECT_EQ(out.failures[1].trial, 3u);
  EXPECT_EQ(out.failures[0].status.code(), ErrorCode::kInvalidArgument);
  for (std::size_t i = 0; i < 10; ++i) {
    if (i % 3 == 0) {
      EXPECT_FALSE(out.results[i].has_value());
    } else {
      ASSERT_TRUE(out.results[i].has_value());
      EXPECT_DOUBLE_EQ(*out.results[i], static_cast<double>(i));
    }
  }
  // Failures land in the obs metrics with a per-code breakdown.
  EXPECT_EQ(c_failed.value(), failed_before + 4);
  EXPECT_EQ(c_invalid.value(), invalid_before + 4);
}

TEST(MonteCarloRobust, RetriesNumericalFailures) {
  RobustTrialOptions opt;
  opt.max_attempts = 3;
  const auto out = run_trials_robust<double>(
      nullptr, 8, 9,
      [](std::size_t i, Rng&, int attempt) -> StatusOr<double> {
        if (attempt == 0) return Status::numerical_error("wedged");
        return static_cast<double>(i);
      },
      opt);
  EXPECT_TRUE(out.all_ok());
  EXPECT_EQ(out.succeeded(), 8u);
  EXPECT_EQ(out.retries, 8u);  // one retry per trial
}

TEST(MonteCarloRobust, RetryStreamsAreIndependent) {
  RobustTrialOptions opt;
  opt.max_attempts = 2;
  std::vector<double> attempt0(4, 0.0);
  std::vector<double> attempt1(4, 0.0);
  (void)run_trials_robust<double>(
      nullptr, 4, 11,
      [&](std::size_t i, Rng& rng, int attempt) -> StatusOr<double> {
        const double draw = rng.uniform();
        if (attempt == 0) {
          attempt0[i] = draw;
          return Status::numerical_error("retry me");
        }
        attempt1[i] = draw;
        return draw;
      },
      opt);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(attempt0[i], attempt1[i]);
  }
}

TEST(MonteCarloRobust, NoRetryForNonNumericalFailures) {
  RobustTrialOptions opt;
  opt.max_attempts = 3;
  int calls = 0;
  const auto out = run_trials_robust<double>(
      nullptr, 1, 13,
      [&](std::size_t, Rng&, int) -> StatusOr<double> {
        ++calls;
        return Status::infeasible("hard failure");
      },
      opt);
  EXPECT_EQ(calls, 1);  // kInfeasible is final; retries are for numerics
  EXPECT_EQ(out.failed, 1u);
  EXPECT_EQ(out.retries, 0u);
}

TEST(MonteCarloRobust, FailFastSkipsRemainingTrials) {
  RobustTrialOptions opt;
  opt.fail_fast = true;
  // Serial execution (null pool) makes the skip set deterministic.
  const auto out = run_trials_robust<double>(
      nullptr, 10, 17,
      [](std::size_t i, Rng&, int) -> StatusOr<double> {
        if (i == 2) return Status::internal("abort here");
        return static_cast<double>(i);
      },
      opt);
  EXPECT_EQ(out.failed, 1u);
  EXPECT_EQ(out.skipped, 7u);  // trials 3..9 never ran
  EXPECT_EQ(out.succeeded(), 2u);
  EXPECT_TRUE(out.results[0].has_value());
  EXPECT_TRUE(out.results[1].has_value());
  for (std::size_t i = 2; i < 10; ++i) {
    EXPECT_FALSE(out.results[i].has_value());
  }
}

TEST(MonteCarloRobust, ExceptionsBecomeInternalStatus) {
  const auto out = run_trials_robust<double>(
      nullptr, 3, 19,
      [](std::size_t i, Rng&, int) -> StatusOr<double> {
        if (i == 1) throw std::runtime_error("kaboom");
        return 1.0;
      });
  EXPECT_EQ(out.failed, 1u);
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].status.code(), ErrorCode::kInternal);
  EXPECT_NE(out.failures[0].status.message().find("kaboom"),
            std::string::npos);
}

TEST(MonteCarloRobust, ScalarSweepReportsPartialStatistics) {
  const auto out = run_scalar_trials_robust(
      nullptr, 10, 23,
      [](std::size_t i, Rng&, int) -> StatusOr<double> {
        if (i % 2 == 1) return Status::invalid_argument("odd trial");
        return static_cast<double>(i);
      });
  EXPECT_EQ(out.trials, 10u);
  EXPECT_EQ(out.failed, 5u);
  EXPECT_EQ(out.stats.count(), 5u);          // 0, 2, 4, 6, 8
  EXPECT_DOUBLE_EQ(out.stats.mean(), 4.0);
  EXPECT_FALSE(out.all_ok());
  const std::string summary = out.summary();
  EXPECT_NE(summary.find("5/10"), std::string::npos);
  EXPECT_NE(summary.find("INVALID_ARGUMENT"), std::string::npos);
}

TEST(MonteCarloRobust, ScalarSweepCleanSummary) {
  const auto out = run_scalar_trials_robust(
      nullptr, 4, 29,
      [](std::size_t, Rng& rng, int) -> StatusOr<double> {
        return rng.uniform();
      });
  EXPECT_TRUE(out.all_ok());
  EXPECT_EQ(out.stats.count(), 4u);
  EXPECT_NE(out.summary().find("all 4 trials succeeded"),
            std::string::npos);
}

}  // namespace
}  // namespace gridsec::sim
