// Tests for the deception-defense module (Figure-4 discussion).
#include "gridsec/core/deception.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gridsec/sim/scenario.hpp"

namespace gridsec::core {
namespace {

constexpr double kTol = 1e-6;

// Duopoly: attacking the dear generator (edge 1) nets the cheap owner 1200
// and costs the consumer 1600.
flow::Network duopoly() { return sim::make_duopoly(); }

TEST(Deception, HonestBaselineMatchesDirectPlan) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  AdversaryConfig adv;
  adv.max_targets = 1;
  auto outcome = evaluate_deception(net, own, {}, adv);
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome->attack.targets, (std::vector<int>{1}));
  EXPECT_NEAR(outcome->anticipated, 1200.0, kTol);
  EXPECT_NEAR(outcome->realized, 1200.0, kTol);
  EXPECT_NEAR(outcome->defender_losses, -1600.0, kTol);
}

TEST(Deception, MisreportDivertsTheAttack) {
  // Publish the cheap generator as enormous: then knocking out the dear one
  // no longer creates scarcity in the published model, and the attack
  // (computed on the falsified view) loses its believed value.
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  AdversaryConfig adv;
  adv.max_targets = 1;
  const Misreport lie[] = {{0, 2.0}};  // cheap gen published at 120 >= demand
  auto outcome = evaluate_deception(net, own, lie, adv);
  ASSERT_TRUE(outcome.is_ok());
  // On the published model, dear-gen outage creates no scarcity: the cheap
  // generator "covers" everything, so the believed gain of attacking edge 1
  // vanishes and the SA goes elsewhere (or stays home).
  EXPECT_LT(outcome->realized, 1200.0);
}

TEST(Deception, AnticipatedComputedOnFalseView) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  AdversaryConfig adv;
  adv.max_targets = 1;
  // Understate the cheap generator: believed scarcity (and believed profit)
  // grows, but reality pays the honest 1200.
  const Misreport lie[] = {{0, 0.5}};  // published capacity 30
  auto outcome = evaluate_deception(net, own, lie, adv);
  ASSERT_TRUE(outcome.is_ok());
  // The falsified view changes what the SA expects: anticipated (computed
  // on the published model) diverges from the realized (truth) value.
  EXPECT_GT(std::fabs(outcome->anticipated - outcome->realized), 1.0);
}

TEST(Deception, GreedyPlanNeverHurtsDefenders) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  DeceptionPlanOptions opt;
  opt.adversary.max_targets = 1;
  opt.max_misreports = 2;
  auto plan = greedy_deception_plan(net, own, opt);
  ASSERT_TRUE(plan.is_ok());
  // Greedy only accepts strict improvements of realized defender losses.
  EXPECT_GE(plan->deceived.defender_losses,
            plan->baseline.defender_losses - kTol);
  EXPECT_LE(static_cast<int>(plan->misreports.size()), 2);
}

TEST(Deception, GreedyFindsProtectiveLieInDuopoly) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  DeceptionPlanOptions opt;
  opt.adversary.max_targets = 1;
  opt.max_misreports = 1;
  opt.factors = {2.0};  // inflation lies only
  auto plan = greedy_deception_plan(net, own, opt);
  ASSERT_TRUE(plan.is_ok());
  // Baseline: consumer loses 1600. Publishing the cheap generator as larger
  // hides the scarcity opportunity; defenders end strictly better off.
  EXPECT_GT(plan->deceived.defender_losses,
            plan->baseline.defender_losses + 1.0);
}

TEST(Deception, RespectsMisreportBudget) {
  flow::Network net = duopoly();
  cps::Ownership own({0, 1, 2}, 3);
  DeceptionPlanOptions opt;
  opt.adversary.max_targets = 1;
  opt.max_misreports = 0;
  auto plan = greedy_deception_plan(net, own, opt);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan->misreports.empty());
  EXPECT_NEAR(plan->deceived.realized, plan->baseline.realized, kTol);
}

}  // namespace
}  // namespace gridsec::core
