// Tests for the actor-ownership model.
#include "gridsec/cps/ownership.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsec::cps {
namespace {

TEST(Ownership, ExplicitAssignment) {
  Ownership o({0, 1, 1, 2}, 3);
  EXPECT_EQ(o.num_actors(), 3);
  EXPECT_EQ(o.num_assets(), 4);
  EXPECT_EQ(o.owner(0), 0);
  EXPECT_EQ(o.owner(2), 1);
}

TEST(Ownership, AssetsOfActor) {
  Ownership o({0, 1, 1, 2, 1}, 3);
  EXPECT_EQ(o.assets_of(1), (std::vector<flow::EdgeId>{1, 2, 4}));
  EXPECT_EQ(o.assets_of(0), (std::vector<flow::EdgeId>{0}));
  EXPECT_TRUE(o.assets_of(2).size() == 1);
}

TEST(Ownership, MonolithicSingleActor) {
  auto o = Ownership::monolithic(7);
  EXPECT_EQ(o.num_actors(), 1);
  EXPECT_EQ(o.num_assets(), 7);
  for (int e = 0; e < 7; ++e) EXPECT_EQ(o.owner(e), 0);
}

TEST(Ownership, RandomIsReproducibleAndInRange) {
  Rng a(5), b(5);
  auto oa = Ownership::random(50, 4, a);
  auto ob = Ownership::random(50, 4, b);
  for (int e = 0; e < 50; ++e) {
    EXPECT_EQ(oa.owner(e), ob.owner(e));
    EXPECT_GE(oa.owner(e), 0);
    EXPECT_LT(oa.owner(e), 4);
  }
}

TEST(Ownership, RandomIsApproximatelyUniform) {
  Rng rng(99);
  auto o = Ownership::random(4000, 4, rng);
  std::vector<int> counts(4, 0);
  for (int e = 0; e < 4000; ++e) ++counts[static_cast<std::size_t>(o.owner(e))];
  for (int c : counts) EXPECT_NEAR(c, 1000, 120);  // ~4 sigma
}

TEST(Ownership, ActiveActorsCountsOnlyOwners) {
  Ownership o({0, 0, 2}, 5);
  EXPECT_EQ(o.active_actors(), 2);
}

TEST(Ownership, RandomWithMoreActorsThanAssets) {
  Rng rng(3);
  auto o = Ownership::random(3, 10, rng);
  EXPECT_LE(o.active_actors(), 3);
}

}  // namespace
}  // namespace gridsec::cps
