// Bench flag parsing and the harness-v2 run_case machinery.
//
// parse_args() terminates the process on malformed input (it is a CLI
// front door), so the rejection paths are exercised as gtest death tests.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "gridsec/obs/metrics.hpp"

namespace gridsec::bench {
namespace {

BenchArgs parse(std::vector<std::string> flags,
                const char* argv0 = "bench_common_test") {
  std::vector<char*> argv;
  static std::string prog;
  prog = argv0;
  argv.push_back(prog.data());
  static std::vector<std::string> storage;
  storage = std::move(flags);
  for (std::string& f : storage) argv.push_back(f.data());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgs, Defaults) {
  const BenchArgs args = parse({});
  EXPECT_EQ(args.trials, 20);
  EXPECT_EQ(args.seed, 2015u);
  EXPECT_FALSE(args.csv_only);
  EXPECT_EQ(args.threads, 0u);
  EXPECT_TRUE(args.json_file.empty());
  EXPECT_EQ(args.reps, 0);
  EXPECT_EQ(args.warmup, -1);
}

TEST(BenchArgs, ParsesEveryFlag) {
  const BenchArgs args =
      parse({"--trials=7", "--seed=42", "--threads=3", "--reps=5",
             "--warmup=2", "--csv", "--json=out.json", "--metrics-port=0",
             "--timeseries=ts.json", "--progress"});
  EXPECT_EQ(args.trials, 7);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(args.threads, 3u);
  EXPECT_EQ(args.reps, 5);
  EXPECT_EQ(args.warmup, 2);
  EXPECT_TRUE(args.csv_only);
  EXPECT_EQ(args.json_file, "out.json");
  EXPECT_EQ(args.metrics_port, 0);
  EXPECT_EQ(args.timeseries_file, "ts.json");
  EXPECT_TRUE(args.progress);
}

TEST(BenchArgs, TelemetryDefaultsOff) {
  const BenchArgs args = parse({});
  EXPECT_EQ(args.metrics_port, -1);
  EXPECT_TRUE(args.timeseries_file.empty());
  EXPECT_FALSE(args.progress);
}

TEST(BenchArgs, BareJsonDerivesFilenameFromProgram) {
  const BenchArgs args = parse({"--json"}, "/some/build/dir/micro_solvers");
  EXPECT_EQ(args.json_file, "BENCH_micro_solvers.json");
}

TEST(BenchArgs, DefaultJsonNameStripsDirectories) {
  EXPECT_EQ(default_json_name("/a/b/fig2_interdependent"),
            "BENCH_fig2_interdependent.json");
  EXPECT_EQ(default_json_name("bare"), "BENCH_bare.json");
  EXPECT_EQ(default_json_name("dir\\win_prog"), "BENCH_win_prog.json");
}

using BenchArgsDeathTest = ::testing::Test;

TEST(BenchArgsDeathTest, RejectsMalformedNumericValues) {
  EXPECT_EXIT(parse({"--trials=5x"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--trials=0"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--threads=-2"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--reps=0"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--warmup=-1"}), testing::ExitedWithCode(2),
              "malformed value");
}

TEST(BenchArgsDeathTest, RejectsNegativeSeedInsteadOfWrapping) {
  // strtoull would silently turn -1 into 2^64-1; the parser must refuse.
  EXPECT_EXIT(parse({"--seed=-1"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--seed=abc"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--seed="}), testing::ExitedWithCode(2),
              "malformed value");
}

TEST(BenchArgsDeathTest, RejectsMalformedTelemetryFlags) {
  EXPECT_EXIT(parse({"--metrics-port=70000"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--metrics-port=-1"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--metrics-port=abc"}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--timeseries="}), testing::ExitedWithCode(2),
              "malformed value");
}

TEST(BenchArgsDeathTest, RejectsEmptyJsonFileAndUnknownFlags) {
  EXPECT_EXIT(parse({"--json="}), testing::ExitedWithCode(2),
              "malformed value");
  EXPECT_EXIT(parse({"--bogus"}), testing::ExitedWithCode(2),
              "unknown option");
  EXPECT_EXIT(parse({"--help"}), testing::ExitedWithCode(0), "usage:");
}

TEST(Harness, RunCaseCountsRepsWarmupAndMetricDeltas) {
  BenchArgs args;
  args.reps = 3;    // override any case default
  args.warmup = 2;  // warmup calls run, but outside the measurement window
  char prog[] = "bench_common_test";
  char* argv[] = {prog};
  Harness harness("bench_common_test", args, 1, argv);

  int calls = 0;
  obs::Counter& counter =
      obs::default_registry().counter("benchtest.run_case.calls");
  const int result = harness.run_case("case_a", [&] {
    ++calls;
    counter.add();
    return calls;
  });
  EXPECT_EQ(calls, 5);   // 2 warmup + 3 measured
  EXPECT_EQ(result, 5);  // last measured invocation's return value

  ASSERT_EQ(harness.report().cases.size(), 1u);
  const obs::CaseResult& c = harness.report().cases.back();
  EXPECT_EQ(c.name, "case_a");
  EXPECT_EQ(c.wall.reps, 3);
  EXPECT_EQ(c.wall.warmup, 2);
  // The counter snapshot is taken after warmup: only measured reps count.
  ASSERT_EQ(c.metrics.count("benchtest.run_case.calls"), 1u);
  EXPECT_EQ(c.metrics.at("benchtest.run_case.calls").total, 3);
  EXPECT_DOUBLE_EQ(c.metrics.at("benchtest.run_case.calls").per_rep, 1.0);
}

TEST(Harness, VoidCasesAndManifestPropagation) {
  BenchArgs args;
  args.seed = 99;
  args.trials = 4;
  args.threads = 2;
  char prog[] = "bench_common_test";
  char* argv[] = {prog};
  Harness harness("bench_common_test", args, 1, argv);
  int calls = 0;
  harness.run_case("void_case", [&] { ++calls; });  // void return supported
  EXPECT_EQ(calls, 1);  // default_reps=1, default_warmup=0
  EXPECT_EQ(harness.report().manifest.seed, 99u);
  EXPECT_EQ(harness.report().manifest.trials, 4);
  EXPECT_EQ(harness.report().manifest.threads, 2u);
  EXPECT_EQ(harness.report().manifest.tool, "bench_common_test");
}

}  // namespace
}  // namespace gridsec::bench
