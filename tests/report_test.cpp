// Run reports: manifest capture, wall stats, JSON round-trip, and the
// benchdiff regression rules.
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/obs/metrics.hpp"
#include "gridsec/obs/report.hpp"

namespace gridsec::obs {
namespace {

RunReport small_report() {
  RunReport report;
  report.manifest.tool = "report_test";
  report.manifest.git_sha = "abc123def456";
  report.manifest.build_type = "Release";
  report.manifest.compiler = "gcc 12.2.0";
  report.manifest.cxx_flags = "-O3 -DNDEBUG";
  report.manifest.hostname = "testhost";
  report.manifest.hardware_threads = 8;
  report.manifest.threads = 2;
  report.manifest.seed = 2015;
  report.manifest.trials = 5;
  report.manifest.args = {"--trials=5", "--json"};
  report.manifest.start_time_utc = "2026-01-02T03:04:05Z";
  report.manifest.wall_time_seconds = 1.5;

  const double reps_a[] = {0.2, 0.1, 0.3};
  report.cases.push_back(make_case("case_a", 1, reps_a,
                                   {{"lp.simplex.pivots", 100}},
                                   {{"lp.simplex.pivots", 400}}));
  const double reps_b[] = {0.05};
  report.cases.push_back(make_case(
      "case_b", 0, reps_b, {}, {{"lp.bnb.nodes", 12}, {"lp.cuts", 3}}));
  return report;
}

TEST(RunManifest, CaptureFillsProvenance) {
  const char* argv[] = {"prog", "--trials=5", "--json"};
  const RunManifest m = RunManifest::capture("mytool", 3, argv);
  EXPECT_EQ(m.tool, "mytool");
  ASSERT_EQ(m.args.size(), 2u);  // argv[0] is the binary, not an argument
  EXPECT_EQ(m.args[0], "--trials=5");
  EXPECT_EQ(m.args[1], "--json");
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_FALSE(m.hostname.empty());
  EXPECT_GE(m.hardware_threads, 1);
  // ISO8601 UTC: "YYYY-MM-DDTHH:MM:SSZ"
  ASSERT_EQ(m.start_time_utc.size(), 20u) << m.start_time_utc;
  EXPECT_EQ(m.start_time_utc[10], 'T');
  EXPECT_EQ(m.start_time_utc.back(), 'Z');
}

TEST(WallStats, FromSamplesComputesOrderStats) {
  const double samples[] = {0.2, 0.1, 0.3};
  const WallStats w = WallStats::from_samples(1, samples);
  EXPECT_EQ(w.reps, 3);
  EXPECT_EQ(w.warmup, 1);
  EXPECT_DOUBLE_EQ(w.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(w.max_seconds, 0.3);
  EXPECT_DOUBLE_EQ(w.median_seconds, 0.2);
  EXPECT_NEAR(w.mean_seconds, 0.2, 1e-12);
  EXPECT_NEAR(w.total_seconds, 0.6, 1e-12);
}

TEST(MakeCase, ComputesPerRepDeltasAndDropsUnchanged) {
  const double reps[] = {0.1, 0.1};
  const CaseResult c = make_case(
      "c", 0, reps, {{"a", 10}, {"b", 5}}, {{"a", 16}, {"b", 5}, {"c", 3}});
  ASSERT_EQ(c.metrics.count("a"), 1u);
  EXPECT_EQ(c.metrics.at("a").total, 6);
  EXPECT_DOUBLE_EQ(c.metrics.at("a").per_rep, 3.0);
  EXPECT_EQ(c.metrics.count("b"), 0u);  // unchanged counters are dropped
  ASSERT_EQ(c.metrics.count("c"), 1u);  // counter born during the case
  EXPECT_EQ(c.metrics.at("c").total, 3);
  EXPECT_DOUBLE_EQ(c.metrics.at("c").per_rep, 1.5);
}

TEST(RunReport, JsonRoundTripPreservesEverythingDiffable) {
  const RunReport original = small_report();
  std::ostringstream os;
  original.write_json(os, nullptr);
  const auto parsed = parse_report(os.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();

  EXPECT_EQ(parsed->schema_version, kReportSchemaVersion);
  EXPECT_EQ(parsed->manifest.tool, "report_test");
  EXPECT_EQ(parsed->manifest.git_sha, "abc123def456");
  EXPECT_EQ(parsed->manifest.seed, 2015u);
  EXPECT_EQ(parsed->manifest.args, original.manifest.args);
  ASSERT_EQ(parsed->cases.size(), 2u);
  EXPECT_EQ(parsed->cases[0].name, "case_a");
  EXPECT_EQ(parsed->cases[0].wall.reps, 3);
  EXPECT_DOUBLE_EQ(parsed->cases[0].wall.median_seconds, 0.2);
  EXPECT_EQ(parsed->cases[0].metrics.at("lp.simplex.pivots").total, 300);
  EXPECT_DOUBLE_EQ(parsed->cases[0].metrics.at("lp.simplex.pivots").per_rep,
                   100.0);

  // Self-diff of a round-tripped report must be clean.
  const DiffReport diff = diff_reports(original, *parsed);
  EXPECT_TRUE(diff.clean()) << diff.regressions;
  EXPECT_FALSE(diff.rows.empty());
}

TEST(RunReport, JsonRoundTripWithRegistryBlobAndEscapes) {
  RunReport report = small_report();
  report.manifest.args = {"--path=C:\\tmp\\x", "--note=\"quoted\"\n\ttabbed"};
  MetricRegistry reg;  // embedded registry dump must parse (and be skipped)
  reg.counter("c").add(3);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.timer("t").observe_seconds(0.1);
  std::ostringstream os;
  report.write_json(os, &reg);
  const auto parsed = parse_report(os.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->manifest.args, report.manifest.args);
  EXPECT_TRUE(diff_reports(report, *parsed).clean());
}

TEST(ParseReport, RejectsWrongSchemaVersionAndGarbage) {
  EXPECT_FALSE(parse_report("").is_ok());
  EXPECT_FALSE(parse_report("[]").is_ok());
  EXPECT_FALSE(parse_report("{\"schema\":\"other\"}").is_ok());
  EXPECT_FALSE(
      parse_report(
          "{\"schema\":\"gridsec.bench_report\",\"schema_version\":999,"
          "\"manifest\":{},\"cases\":[]}")
          .is_ok());
  EXPECT_FALSE(parse_report("{\"schema\":\"gridsec.bench_report\"").is_ok());
  EXPECT_FALSE(parse_report("{\"schema\":12}").is_ok());
}

TEST(DiffReports, FlagsInflatedMetricButToleratesSmallAbsoluteNoise) {
  const RunReport baseline = small_report();
  RunReport current = small_report();
  // +50% pivots per rep: past the 10% relative threshold and 4.0 abs slack.
  current.cases[0].metrics["lp.simplex.pivots"].per_rep = 150.0;
  current.cases[0].metrics["lp.simplex.pivots"].total = 450;
  // +1 node on a tiny counter: 8.3% relative would be fine anyway, but even
  // a large relative change on a small counter is shielded by abs slack.
  current.cases[1].metrics["lp.cuts"].per_rep = 6.0;  // +100%, abs +3 < 4
  const DiffReport diff = diff_reports(baseline, current);
  EXPECT_EQ(diff.regressions, 1);
  bool found = false;
  for (const DiffRow& row : diff.rows) {
    if (row.quantity == "lp.simplex.pivots") {
      EXPECT_EQ(row.verdict, DiffVerdict::kRegression);
      EXPECT_NEAR(row.rel_change, 0.5, 1e-9);
      found = true;
    }
    if (row.quantity == "lp.cuts") {
      EXPECT_EQ(row.verdict, DiffVerdict::kOk);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiffReports, WallTimeGatingIsOptIn) {
  const RunReport baseline = small_report();
  RunReport current = small_report();
  current.cases[0].wall.median_seconds = 0.3;  // +50% slowdown
  // Default: wall time reported as info only.
  EXPECT_TRUE(diff_reports(baseline, current).clean());
  // Opted in at 20%: the injected slowdown trips the gate.
  DiffOptions options;
  options.wall_rel_threshold = 0.2;
  const DiffReport gated = diff_reports(baseline, current, options);
  EXPECT_FALSE(gated.clean());
  EXPECT_EQ(gated.regressions, 1);
}

TEST(DiffReports, MissingCoverageIsARegressionNewCoverageIsInfo) {
  const RunReport baseline = small_report();
  RunReport current = small_report();
  current.cases[0].metrics.erase("lp.simplex.pivots");  // metric vanished
  current.cases.pop_back();                             // case_b vanished
  const DiffReport shrunk = diff_reports(baseline, current);
  EXPECT_EQ(shrunk.regressions, 2);

  // The reverse direction (baseline lacks what current has) is only info.
  const DiffReport grown = diff_reports(current, baseline);
  EXPECT_TRUE(grown.clean());
}

TEST(DiffReports, IgnoredPrefixesNeverGate) {
  const RunReport baseline = small_report();
  RunReport current = small_report();
  current.cases[0].metrics["lp.simplex.pivots"].per_rep = 500.0;
  DiffOptions options;
  options.ignore_prefixes = {"lp.simplex."};
  const DiffReport diff = diff_reports(baseline, current, options);
  EXPECT_TRUE(diff.clean());
}

TEST(DiffReports, AllocCountersOnlyInCandidateAreInfoNotCoverageFailure) {
  // Baselines regenerated before the alloc counters existed must not fail
  // against candidates that carry them: candidate-only metrics are info.
  const RunReport baseline = small_report();
  RunReport current = small_report();
  current.cases[0].metrics["obs.alloc.count"] = {90000, 30000.0};
  current.cases[0].metrics["obs.alloc.bytes"] = {9000000, 3000000.0};
  const DiffReport diff = diff_reports(baseline, current);
  EXPECT_TRUE(diff.clean());
  int info_rows = 0;
  for (const DiffRow& row : diff.rows) {
    if (row.quantity.rfind("obs.alloc.", 0) == 0) {
      EXPECT_EQ(row.verdict, DiffVerdict::kInfo);
      ++info_rows;
    }
  }
  EXPECT_EQ(info_rows, 2);
}

TEST(DiffReports, AllocCountRegressionPastTenPercentIsCaught) {
  RunReport baseline = small_report();
  baseline.cases[0].metrics["obs.alloc.count"] = {90000, 30000.0};
  RunReport current = small_report();
  // A deliberate ~10% allocation-count regression (clears the 4.0 absolute
  // slack by orders of magnitude) must trip the default gate.
  current.cases[0].metrics["obs.alloc.count"] = {99090, 33030.0};
  const DiffReport diff = diff_reports(baseline, current);
  EXPECT_FALSE(diff.clean());
  bool found = false;
  for (const DiffRow& row : diff.rows) {
    if (row.quantity == "obs.alloc.count") {
      EXPECT_EQ(row.verdict, DiffVerdict::kRegression);
      EXPECT_NEAR(row.rel_change, 0.101, 1e-3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiffReports, TimeSuffixedMetricsNeverGateInEitherDirection) {
  RunReport baseline = small_report();
  baseline.cases[0].metrics["util.threadpool.busy_ns"] = {4000000, 1000000.0};
  baseline.cases[0].metrics["util.threadpool.idle_ns"] = {8000000, 2000000.0};

  // A 10x wall-time blowup in a _ns counter is hardware noise, not a gated
  // regression.
  RunReport slower = baseline;
  slower.cases[0].metrics["util.threadpool.busy_ns"].per_rep = 10000000.0;
  const DiffReport diff = diff_reports(baseline, slower);
  EXPECT_TRUE(diff.clean());
  bool found = false;
  for (const DiffRow& row : diff.rows) {
    if (row.quantity == "util.threadpool.busy_ns") {
      EXPECT_EQ(row.verdict, DiffVerdict::kInfo);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Disappearance of a time metric is not a coverage loss either (runs on
  // machines with different pool behavior simply lack the counter).
  RunReport missing = baseline;
  missing.cases[0].metrics.erase("util.threadpool.busy_ns");
  missing.cases[0].metrics.erase("util.threadpool.idle_ns");
  EXPECT_TRUE(diff_reports(baseline, missing).clean());

  // Opting out of the default suffix list restores strict gating.
  DiffOptions strict;
  strict.time_suffixes.clear();
  EXPECT_FALSE(diff_reports(baseline, slower, strict).clean());
  EXPECT_FALSE(diff_reports(baseline, missing, strict).clean());
}

}  // namespace
}  // namespace gridsec::obs
