// Tests for the series-competitor profit-sharing negotiation (§II-D2).
#include "gridsec/flow/series.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gridsec::flow {
namespace {

TEST(SeriesNegotiation, EqualSplitForIdenticalActors) {
  SeriesChain chain;
  chain.supply_cost = 10.0;
  chain.segment_cost = {1.0, 1.0, 1.0};  // three actors in series
  chain.consumer_price = 40.0;
  chain.flow = 50.0;
  auto res = negotiate_series_profits(chain);
  ASSERT_TRUE(res.converged);
  const double margin = 40.0 - 10.0 - 3.0;  // 27
  EXPECT_NEAR(res.chain_margin, margin, 1e-9);
  // The paper's stated outcome: each actor gets roughly 1/N of the profit.
  for (double m : res.markup) EXPECT_NEAR(m, margin / 3.0, margin * 0.01);
  for (double p : res.actor_profit) {
    EXPECT_NEAR(p, margin / 3.0 * 50.0, margin * 50.0 * 0.01);
  }
}

TEST(SeriesNegotiation, TwoActorsHalfEach) {
  SeriesChain chain;
  chain.supply_cost = 0.0;
  chain.segment_cost = {0.0, 0.0};
  chain.consumer_price = 10.0;
  chain.flow = 1.0;
  auto res = negotiate_series_profits(chain);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.markup[0], 5.0, 0.1);
  EXPECT_NEAR(res.markup[1], 5.0, 0.1);
}

TEST(SeriesNegotiation, SingleActorTakesWholeMargin) {
  SeriesChain chain;
  chain.supply_cost = 5.0;
  chain.segment_cost = {2.0};
  chain.consumer_price = 20.0;
  chain.flow = 10.0;
  auto res = negotiate_series_profits(chain);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.markup[0], 13.0, 0.15);
  EXPECT_NEAR(res.actor_profit[0], 130.0, 1.5);
}

TEST(SeriesNegotiation, NegativeMarginYieldsZero) {
  SeriesChain chain;
  chain.supply_cost = 50.0;
  chain.segment_cost = {5.0, 5.0};
  chain.consumer_price = 40.0;  // unprofitable chain
  chain.flow = 10.0;
  auto res = negotiate_series_profits(chain);
  ASSERT_TRUE(res.converged);
  for (double m : res.markup) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(SeriesNegotiation, ZeroFlowYieldsZeroProfit) {
  SeriesChain chain;
  chain.supply_cost = 1.0;
  chain.segment_cost = {1.0};
  chain.consumer_price = 10.0;
  chain.flow = 0.0;
  auto res = negotiate_series_profits(chain);
  ASSERT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.actor_profit[0], 0.0);
}

TEST(SeriesNegotiation, MarkupsSumToMarginAtConvergence) {
  SeriesChain chain;
  chain.supply_cost = 3.0;
  chain.segment_cost = {0.5, 1.5, 0.25, 0.75};
  chain.consumer_price = 30.0;
  chain.flow = 12.0;
  auto res = negotiate_series_profits(chain);
  ASSERT_TRUE(res.converged);
  const double total = std::accumulate(res.markup.begin(), res.markup.end(),
                                       0.0);
  EXPECT_NEAR(total, res.chain_margin, res.chain_margin * 0.02);
}

TEST(SeriesNegotiation, TighterToleranceGetsCloserToEqualSplit) {
  SeriesChain chain;
  chain.supply_cost = 0.0;
  chain.segment_cost = {0.0, 0.0, 0.0, 0.0, 0.0};
  chain.consumer_price = 100.0;
  chain.flow = 1.0;
  SeriesNegotiationOptions tight;
  tight.tolerance = 1e-8;
  auto res = negotiate_series_profits(chain, tight);
  ASSERT_TRUE(res.converged);
  for (double m : res.markup) EXPECT_NEAR(m, 20.0, 1e-4);
}

TEST(ExtractSeriesChain, SimpleThreeActorChain) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  const NodeId c = net.add_hub("C");
  net.add_supply("gen", a, 80.0, 10.0);                                // e0
  net.add_edge("ab", EdgeKind::kTransmission, a, b, 60.0, 1.0);        // e1
  net.add_edge("bc", EdgeKind::kTransmission, b, c, 70.0, 2.0);        // e2
  net.add_demand("load", c, 50.0, 40.0);                               // e3
  std::vector<int> owners{0, 1, 2, 2};
  std::vector<int> actors;
  auto chain = extract_series_chain(net, owners, &actors);
  ASSERT_TRUE(chain.is_ok());
  EXPECT_DOUBLE_EQ(chain->supply_cost, 10.0);
  EXPECT_DOUBLE_EQ(chain->consumer_price, 40.0);
  ASSERT_EQ(chain->segment_cost.size(), 2u);  // actor 1 then actor 2
  EXPECT_DOUBLE_EQ(chain->segment_cost[0], 1.0);
  EXPECT_DOUBLE_EQ(chain->segment_cost[1], 2.0);
  EXPECT_DOUBLE_EQ(chain->flow, 50.0);  // demand is the bottleneck
  EXPECT_EQ(actors, (std::vector<int>{1, 2}));
}

TEST(ExtractSeriesChain, MergesConsecutiveSegmentsOfSameActor) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  const NodeId c = net.add_hub("C");
  net.add_supply("gen", a, 80.0, 5.0);
  net.add_edge("ab", EdgeKind::kTransmission, a, b, 60.0, 1.0);
  net.add_edge("bc", EdgeKind::kTransmission, b, c, 70.0, 2.0);
  net.add_demand("load", c, 50.0, 40.0);
  std::vector<int> owners{0, 3, 3, 1};  // both segments owned by actor 3
  std::vector<int> actors;
  auto chain = extract_series_chain(net, owners, &actors);
  ASSERT_TRUE(chain.is_ok());
  ASSERT_EQ(chain->segment_cost.size(), 1u);
  EXPECT_DOUBLE_EQ(chain->segment_cost[0], 3.0);
  EXPECT_EQ(actors, (std::vector<int>{3}));
}

TEST(ExtractSeriesChain, RejectsBranchingNetwork) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  const NodeId c = net.add_hub("C");
  net.add_supply("gen", a, 80.0, 5.0);
  net.add_edge("ab", EdgeKind::kTransmission, a, b, 60.0, 1.0);
  net.add_edge("ac", EdgeKind::kTransmission, a, c, 60.0, 1.0);  // branch
  net.add_demand("load", b, 50.0, 40.0);
  std::vector<int> owners(static_cast<std::size_t>(net.num_edges()), 0);
  auto chain = extract_series_chain(net, owners, nullptr);
  EXPECT_FALSE(chain.is_ok());
}

TEST(ExtractSeriesChain, RejectsMultipleSupplies) {
  Network net;
  const NodeId a = net.add_hub("A");
  net.add_supply("g1", a, 10.0, 1.0);
  net.add_supply("g2", a, 10.0, 2.0);
  net.add_demand("load", a, 5.0, 9.0);
  std::vector<int> owners(static_cast<std::size_t>(net.num_edges()), 0);
  auto chain = extract_series_chain(net, owners, nullptr);
  EXPECT_FALSE(chain.is_ok());
}

TEST(ExtractSeriesChain, EndToEndEqualSplitOnNetworkChain) {
  // Full pipeline: network -> chain -> negotiation -> ~1/N shares.
  Network net;
  std::vector<NodeId> hubs;
  for (int i = 0; i < 4; ++i) hubs.push_back(net.add_hub("h" + std::to_string(i)));
  net.add_supply("gen", hubs[0], 100.0, 10.0);
  for (int i = 0; i < 3; ++i) {
    net.add_edge("seg" + std::to_string(i), EdgeKind::kTransmission,
                 hubs[static_cast<std::size_t>(i)],
                 hubs[static_cast<std::size_t>(i + 1)], 100.0, 0.0);
  }
  net.add_demand("load", hubs[3], 60.0, 40.0);
  std::vector<int> owners{9, 0, 1, 2, 9};  // three interior actors
  std::vector<int> actors;
  auto chain = extract_series_chain(net, owners, &actors);
  ASSERT_TRUE(chain.is_ok());
  auto res = negotiate_series_profits(*chain);
  ASSERT_TRUE(res.converged);
  const double margin = 30.0;
  for (double m : res.markup) EXPECT_NEAR(m, margin / 3.0, margin * 0.01);
}

}  // namespace
}  // namespace gridsec::flow
