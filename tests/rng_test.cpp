// Tests for the deterministic RNG stack.
#include "gridsec/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "gridsec/util/stats.hpp"

namespace gridsec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ZeroStddevNormalIsDegenerate) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, DerivedStreamsAreIndependentAndStable) {
  Rng parent(1234);
  Rng s0 = parent.derive_stream(0);
  Rng s1 = parent.derive_stream(1);
  Rng s0_again = parent.derive_stream(0);
  // Stable: same index -> same stream.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s0.next(), s0_again.next());
  // Distinct indices -> unrelated streams.
  Rng t0 = parent.derive_stream(0);
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    if (t0.next() == s1.next()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, DeriveStreamIndependentOfParentConsumption) {
  Rng a(99);
  Rng b(99);
  (void)b.next();  // consuming the parent must not change derived streams
  Rng da = a.derive_stream(5);
  Rng db = b.derive_stream(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(da.next(), db.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::vector<int> resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

}  // namespace
}  // namespace gridsec
