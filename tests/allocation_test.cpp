// Tests for multi-actor profit division (LMP and perturbation allocators).
#include "gridsec/flow/allocation.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gridsec/util/rng.hpp"

namespace gridsec::flow {
namespace {

constexpr double kTol = 1e-5;

// Two-hub system with congestion: generator at A (cost 10), expensive
// generator at B (cost 45), line A->B capacity 30, load at B (price 60,
// demand 100).
Network congested_pair() {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen.A", a, 1000.0, 10.0);   // edge 0
  net.add_supply("gen.B", b, 1000.0, 45.0);   // edge 1
  net.add_edge("line", EdgeKind::kTransmission, a, b, 30.0, 0.0);  // edge 2
  net.add_demand("load.B", b, 100.0, 60.0);   // edge 3
  return net;
}

TEST(Allocation, EdgeProfitsSumToWelfareLmp) {
  Network net = congested_pair();
  auto res = allocate_profits(net, {}, 0);
  ASSERT_TRUE(res.optimal());
  const double sum = std::accumulate(res.edge_profit.begin(),
                                     res.edge_profit.end(), 0.0);
  EXPECT_NEAR(sum, res.welfare, kTol);
}

TEST(Allocation, CongestionRentGoesToLineOwner) {
  Network net = congested_pair();
  auto res = allocate_profits(net, {}, 0);
  ASSERT_TRUE(res.optimal());
  // LMPs: A=10, B=45. Line earns (45-10)*30 = 1050 congestion rent.
  EXPECT_NEAR(res.edge_profit[2], 1050.0, kTol);
  // gen.A sells at its own marginal cost: zero profit.
  EXPECT_NEAR(res.edge_profit[0], 0.0, kTol);
  // gen.B is the marginal unit: zero profit.
  EXPECT_NEAR(res.edge_profit[1], 0.0, kTol);
  // Consumer surplus: (60-45)*100 = 1500.
  EXPECT_NEAR(res.edge_profit[3], 1500.0, kTol);
}

TEST(Allocation, ActorAggregationMatchesOwnership) {
  Network net = congested_pair();
  // Owners: actor 0 owns both generators, actor 1 owns line + load.
  std::vector<int> owners{0, 0, 1, 1};
  auto res = allocate_profits(net, owners, 2);
  ASSERT_TRUE(res.optimal());
  ASSERT_EQ(res.actor_profit.size(), 2u);
  EXPECT_NEAR(res.actor_profit[0], res.edge_profit[0] + res.edge_profit[1],
              kTol);
  EXPECT_NEAR(res.actor_profit[1], res.edge_profit[2] + res.edge_profit[3],
              kTol);
  EXPECT_NEAR(res.actor_profit[0] + res.actor_profit[1], res.welfare, kTol);
}

TEST(Allocation, InframarginalGeneratorEarnsRent) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("cheap", h, 40.0, 10.0);  // edge 0
  net.add_supply("dear", h, 100.0, 30.0);  // edge 1, marginal
  net.add_demand("load", h, 70.0, 50.0);   // edge 2
  auto res = allocate_profits(net, {}, 0);
  ASSERT_TRUE(res.optimal());
  // LMP = 30 (dear generator marginal). Cheap earns (30-10)*40 = 800.
  EXPECT_NEAR(res.edge_profit[0], 800.0, kTol);
  EXPECT_NEAR(res.edge_profit[1], 0.0, kTol);
  EXPECT_NEAR(res.edge_profit[2], (50.0 - 30.0) * 70.0, kTol);
}

TEST(Allocation, PerturbationMatchesLmpOnNondegenerateSystem) {
  Network net = congested_pair();
  AllocationOptions lmp_opt;
  lmp_opt.kind = AllocatorKind::kLmp;
  AllocationOptions pert_opt;
  pert_opt.kind = AllocatorKind::kPerturbation;
  auto lmp = allocate_profits(net, {}, 0, lmp_opt);
  auto pert = allocate_profits(net, {}, 0, pert_opt);
  ASSERT_TRUE(lmp.optimal());
  ASSERT_TRUE(pert.optimal());
  for (int n = 0; n < net.num_nodes(); ++n) {
    EXPECT_NEAR(lmp.node_price[static_cast<std::size_t>(n)],
                pert.node_price[static_cast<std::size_t>(n)], 1e-3)
        << net.node(n).name;
  }
  for (int e = 0; e < net.num_edges(); ++e) {
    EXPECT_NEAR(lmp.edge_profit[static_cast<std::size_t>(e)],
                pert.edge_profit[static_cast<std::size_t>(e)], 1.0)
        << net.edge(e).name;
  }
}

TEST(Allocation, ProbeNodePricesScarcity) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 40.0, 20.0);
  net.add_demand("load", h, 60.0, 50.0);
  auto base = solve_social_welfare(net);
  ASSERT_TRUE(base.optimal());
  auto prices = probe_node_prices(net, base, 1e-4);
  ASSERT_TRUE(prices.is_ok());
  // Scarce supply: free injection is worth the consumer's 50.
  EXPECT_NEAR(prices.value()[static_cast<std::size_t>(h)], 50.0, 1e-3);
}

TEST(Allocation, LossyChainProfitsStillSumToWelfare) {
  Network net;
  const NodeId a = net.add_hub("A");
  const NodeId b = net.add_hub("B");
  net.add_supply("gen", a, 200.0, 12.0);
  net.add_edge("line", EdgeKind::kTransmission, a, b, 150.0, 1.5, 0.08);
  net.add_demand("load", b, 90.0, 55.0);
  auto res = allocate_profits(net, {}, 0);
  ASSERT_TRUE(res.optimal());
  const double sum = std::accumulate(res.edge_profit.begin(),
                                     res.edge_profit.end(), 0.0);
  EXPECT_NEAR(sum, res.welfare, kTol);
}

// Property sweep: on random networks, both allocators' edge profits must sum
// to the social welfare (the telescoping identity), and actor profits must
// sum to the same total under any ownership.
class AllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocationProperty, ProfitsPartitionWelfare) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  Network net;
  const int n_hubs = 3 + static_cast<int>(rng.uniform_index(3));
  std::vector<NodeId> hubs;
  for (int i = 0; i < n_hubs; ++i) {
    hubs.push_back(net.add_hub("h" + std::to_string(i)));
  }
  for (int i = 0; i < n_hubs; ++i) {
    net.add_supply("gen" + std::to_string(i), hubs[static_cast<std::size_t>(i)],
                   rng.uniform(20.0, 120.0), rng.uniform(5.0, 40.0));
    net.add_demand("load" + std::to_string(i),
                   hubs[static_cast<std::size_t>(i)], rng.uniform(20.0, 80.0),
                   rng.uniform(30.0, 90.0));
  }
  // Ring of lossy lines.
  for (int i = 0; i < n_hubs; ++i) {
    net.add_edge("line" + std::to_string(i), EdgeKind::kTransmission,
                 hubs[static_cast<std::size_t>(i)],
                 hubs[static_cast<std::size_t>((i + 1) % n_hubs)],
                 rng.uniform(10.0, 60.0), rng.uniform(0.0, 3.0),
                 rng.uniform(0.0, 0.15));
  }
  std::vector<int> owners(static_cast<std::size_t>(net.num_edges()));
  const int n_actors = 3;
  for (auto& o : owners) o = static_cast<int>(rng.uniform_index(n_actors));

  auto res = allocate_profits(net, owners, n_actors);
  ASSERT_TRUE(res.optimal());
  const double edge_sum = std::accumulate(res.edge_profit.begin(),
                                          res.edge_profit.end(), 0.0);
  EXPECT_NEAR(edge_sum, res.welfare, 1e-4);
  const double actor_sum = std::accumulate(res.actor_profit.begin(),
                                           res.actor_profit.end(), 0.0);
  EXPECT_NEAR(actor_sum, res.welfare, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace gridsec::flow
