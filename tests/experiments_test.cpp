// Integration tests: the paper's qualitative experimental claims must hold
// on the reproduced western-US system. These are the shapes of Figures 2-7;
// absolute values are synthetic-data-dependent and not asserted.
#include "gridsec/sim/experiments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gridsec/sim/western_us.hpp"

namespace gridsec::sim {
namespace {

const flow::Network& western() {
  static const WesternUsModel m = build_western_us();
  return m.network;
}

ExperimentOptions fast_options(int trials) {
  ExperimentOptions opt;
  opt.trials = trials;
  opt.seed = 99;
  return opt;
}

TEST(ExperimentGainLoss, Figure2Shapes) {
  auto points = experiment_gain_loss(western(), {1, 2, 4, 8, 16},
                                     fast_options(6));
  ASSERT_EQ(points.size(), 5u);
  // Monolithic ownership cannot gain from attacks.
  EXPECT_NEAR(points[0].mean_gain, 0.0, 1e-6);
  // Gains grow with the number of actors...
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].mean_gain, points[i - 1].mean_gain)
        << "actors " << points[i].actors;
  }
  // ...with saturation: the marginal growth shrinks at the high end.
  const double early_growth = points[2].mean_gain - points[1].mean_gain;
  const double late_growth = points[4].mean_gain - points[3].mean_gain;
  EXPECT_LT(late_growth, early_growth);
  // Gains are met with losses; the net (system impact) is constant across
  // actor counts — it does not depend on ownership at all.
  for (const auto& p : points) {
    EXPECT_LE(p.mean_gain, -p.mean_loss + 1e-6);
    EXPECT_NEAR(p.mean_net, points[0].mean_net,
                std::max(1e-6, 1e-9 * std::fabs(points[0].mean_net)));
  }
}

TEST(ExperimentAdversaryNoise, Figure3Shapes) {
  AdversaryNoiseConfig cfg;
  cfg.actor_counts = {2, 6, 12};
  cfg.sigmas = {0.0, 0.2, 0.8};
  auto points = experiment_adversary_noise(western(), cfg, fast_options(6));
  ASSERT_EQ(points.size(), 9u);
  const auto at = [&](int actors, double sigma) -> const AdversaryNoisePoint& {
    for (const auto& p : points) {
      if (p.actors == actors && p.sigma == sigma) return p;
    }
    ADD_FAILURE() << "missing point";
    return points[0];
  };
  // More actors -> more profit opportunities at perfect knowledge.
  EXPECT_GT(at(6, 0.0).observed, at(2, 0.0).observed);
  EXPECT_GT(at(12, 0.0).observed, at(2, 0.0).observed);
  // Noise destroys realized profit.
  for (int actors : {2, 6, 12}) {
    EXPECT_GT(at(actors, 0.0).observed, at(actors, 0.8).observed)
        << actors << " actors";
  }
  // At zero noise, anticipated == observed exactly.
  for (int actors : {2, 6, 12}) {
    EXPECT_NEAR(at(actors, 0.0).anticipated, at(actors, 0.0).observed, 1e-6);
  }
}

TEST(ExperimentAdversaryNoise, Figure4OverconfidenceGap) {
  AdversaryNoiseConfig cfg;
  cfg.actor_counts = {6};
  cfg.sigmas = {0.0, 0.4};
  auto points = experiment_adversary_noise(western(), cfg, fast_options(6));
  ASSERT_EQ(points.size(), 2u);
  // The anticipated return does not decay the way the observed one does:
  // the overconfidence gap opens with noise.
  const double gap0 = points[0].anticipated - points[0].observed;
  const double gap4 = points[1].anticipated - points[1].observed;
  EXPECT_NEAR(gap0, 0.0, 1e-6);
  EXPECT_GT(gap4, 0.0);
  EXPECT_GT(points[1].anticipated, points[1].observed);
}

TEST(ExperimentDefense, Figure5NoiseDegradesDefense) {
  DefenseExperimentConfig cfg;
  cfg.actor_counts = {4};
  cfg.defender_sigmas = {0.0, 0.8};
  auto points = experiment_defense(western(), cfg, fast_options(6));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].effectiveness, points[1].effectiveness);
  EXPECT_GE(points[0].effectiveness, 0.0);
  EXPECT_GE(points[1].effectiveness, -1e-9);
}

TEST(ExperimentDefense, Figure6CollaborationNeverHurtsPaired) {
  DefenseExperimentConfig cfg;
  cfg.actor_counts = {4};
  cfg.defender_sigmas = {0.1};
  auto opt = fast_options(8);
  cfg.collaborative = false;
  auto ind = experiment_defense(western(), cfg, opt);
  cfg.collaborative = true;
  auto col = experiment_defense(western(), cfg, opt);
  ASSERT_EQ(ind.size(), 1u);
  ASSERT_EQ(col.size(), 1u);
  // Paired trials: collaboration is at least as effective on average.
  EXPECT_GE(col[0].effectiveness, ind[0].effectiveness - 1e-6);
}

TEST(ExperimentDefense, RelativeEffectivenessBounded) {
  DefenseExperimentConfig cfg;
  cfg.actor_counts = {2, 12};
  cfg.defender_sigmas = {0.0};
  auto points = experiment_defense(western(), cfg, fast_options(6));
  for (const auto& p : points) {
    EXPECT_GE(p.relative_effectiveness, -1e-9);
    EXPECT_LE(p.relative_effectiveness, 1.0 + 1e-9);
  }
}

TEST(Experiments, DeterministicAcrossRuns) {
  auto a = experiment_gain_loss(western(), {3}, fast_options(4));
  auto b = experiment_gain_loss(western(), {3}, fast_options(4));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[0].mean_gain, b[0].mean_gain);
  EXPECT_DOUBLE_EQ(a[0].mean_loss, b[0].mean_loss);
}

TEST(Experiments, ThreadCountInvariant) {
  ThreadPool pool(3);
  auto serial = experiment_gain_loss(western(), {4}, fast_options(4));
  auto opt = fast_options(4);
  opt.pool = &pool;
  auto parallel = experiment_gain_loss(western(), {4}, opt);
  EXPECT_DOUBLE_EQ(serial[0].mean_gain, parallel[0].mean_gain);
  EXPECT_DOUBLE_EQ(serial[0].mean_loss, parallel[0].mean_loss);
}

}  // namespace
}  // namespace gridsec::sim
