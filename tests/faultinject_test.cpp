// Tests for seeded fault injection and the differential fuzz harness.
#include "gridsec/robust/faultinject.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "gridsec/flow/network.hpp"
#include "gridsec/lp/problem.hpp"

namespace gridsec::robust {
namespace {

lp::Problem sample_problem() {
  lp::Problem p(lp::Objective::kMaximize);
  const int x = p.add_variable("x", 0.0, 4.0, 3.0);
  const int y = p.add_variable("y", 0.0, 6.0, 2.0);
  const int z = p.add_variable("z", 0.0, 5.0, 1.5);
  p.add_constraint("r1", lp::LinearExpr().add(x, 1.0).add(y, 2.0),
                   lp::Sense::kLessEqual, 8.0);
  p.add_constraint("r2", lp::LinearExpr().add(y, 1.0).add(z, 1.0),
                   lp::Sense::kLessEqual, 7.0);
  return p;
}

flow::Network sample_network() {
  flow::Network net;
  const auto a = net.add_hub("A");
  const auto b = net.add_hub("B");
  net.add_supply("gen.a", a, 100.0, 10.0);
  net.add_edge("line.ab", flow::EdgeKind::kTransmission, a, b, 80.0, 2.0,
               0.02);
  net.add_demand("load.b", b, 90.0, 40.0);
  return net;
}

bool same_problem_data(const lp::Problem& a, const lp::Problem& b) {
  if (a.num_variables() != b.num_variables() ||
      a.num_constraints() != b.num_constraints()) {
    return false;
  }
  auto same = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  for (int i = 0; i < a.num_variables(); ++i) {
    const auto& va = a.variable(i);
    const auto& vb = b.variable(i);
    if (!same(va.objective, vb.objective) || !same(va.lower, vb.lower) ||
        !same(va.upper, vb.upper)) {
      return false;
    }
  }
  for (int i = 0; i < a.num_constraints(); ++i) {
    if (!same(a.constraint(i).rhs, b.constraint(i).rhs)) return false;
    if (a.constraint(i).terms.size() != b.constraint(i).terms.size()) {
      return false;
    }
  }
  return true;
}

bool same_network_data(const flow::Network& a, const flow::Network& b) {
  if (a.num_edges() != b.num_edges()) return false;
  auto same = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  for (int e = 0; e < a.num_edges(); ++e) {
    if (!same(a.edge(e).cost, b.edge(e).cost) ||
        !same(a.edge(e).capacity, b.edge(e).capacity) ||
        !same(a.edge(e).loss, b.edge(e).loss)) {
      return false;
    }
  }
  return true;
}

TEST(FaultKind, ToStringIsStable) {
  EXPECT_EQ(to_string(FaultKind::kNanCost), "nan_cost");
  EXPECT_EQ(to_string(FaultKind::kInfCost), "inf_cost");
  EXPECT_EQ(to_string(FaultKind::kZeroCapacity), "zero_capacity");
  EXPECT_EQ(to_string(FaultKind::kNegativeCapacity), "negative_capacity");
  EXPECT_EQ(to_string(FaultKind::kDisconnectedHub), "disconnected_hub");
  EXPECT_EQ(to_string(FaultKind::kDegenerateTies), "degenerate_ties");
  EXPECT_EQ(to_string(FaultKind::kExtremeRange), "extreme_range");
  EXPECT_EQ(to_string(FaultKind::kExtremeDynamicRange),
            "extreme_dynamic_range");
  EXPECT_EQ(to_string(FaultKind::kNearDegenerateScaling),
            "near_degenerate_scaling");
  EXPECT_EQ(to_string(FaultKind::kBasisDrift), "basis_drift");
}

TEST(FaultReport, ClassifiesFaults) {
  FaultReport clean;
  EXPECT_FALSE(clean.poisons_data());
  EXPECT_FALSE(clean.breaks_network_domain());

  FaultReport nan;
  nan.applied.push_back(FaultKind::kNanCost);
  EXPECT_TRUE(nan.has(FaultKind::kNanCost));
  EXPECT_FALSE(nan.has(FaultKind::kInfCost));
  EXPECT_TRUE(nan.poisons_data());
  EXPECT_TRUE(nan.breaks_network_domain());

  FaultReport neg;
  neg.applied.push_back(FaultKind::kNegativeCapacity);
  EXPECT_FALSE(neg.poisons_data());
  EXPECT_TRUE(neg.breaks_network_domain());

  FaultReport ties;
  ties.applied.push_back(FaultKind::kDegenerateTies);
  EXPECT_FALSE(ties.poisons_data());
  EXPECT_FALSE(ties.breaks_network_domain());
}

TEST(FaultInjector, NanCostPoisonsProblem) {
  lp::Problem p = sample_problem();
  FaultInjector inj(7);
  ASSERT_TRUE(inj.inject(p, FaultKind::kNanCost));
  bool any_nan = false;
  for (const auto& v : p.variables()) any_nan |= std::isnan(v.objective);
  EXPECT_TRUE(any_nan);
  EXPECT_FALSE(lp::validate_problem(p).is_ok());
}

TEST(FaultInjector, DisconnectedHubZeroesIncidentCapacity) {
  flow::Network net = sample_network();
  FaultInjector inj(11);
  ASSERT_TRUE(inj.inject(net, FaultKind::kDisconnectedHub));
  // Some hub must have lost all incident capacity.
  bool found = false;
  for (int n = 0; n < net.num_nodes() && !found; ++n) {
    if (net.node(n).kind != flow::NodeKind::kHub) continue;
    bool all_zero = true;
    for (int e : net.in_edges(n)) all_zero &= net.edge(e).capacity == 0.0;
    for (int e : net.out_edges(n)) all_zero &= net.edge(e).capacity == 0.0;
    found = all_zero;
  }
  EXPECT_TRUE(found);
}

TEST(FaultInjector, SameSeedSameFaults) {
  lp::Problem p1 = sample_problem();
  lp::Problem p2 = sample_problem();
  FaultReport r1 = FaultInjector(123).inject_random(p1, 3);
  FaultReport r2 = FaultInjector(123).inject_random(p2, 3);
  EXPECT_EQ(r1.applied, r2.applied);
  EXPECT_TRUE(same_problem_data(p1, p2));

  flow::Network n1 = sample_network();
  flow::Network n2 = sample_network();
  FaultReport s1 = FaultInjector(456).inject_random(n1, 3);
  FaultReport s2 = FaultInjector(456).inject_random(n2, 3);
  EXPECT_EQ(s1.applied, s2.applied);
  EXPECT_TRUE(same_network_data(n1, n2));
}

TEST(FaultInjector, DifferentSeedsEventuallyDiffer) {
  // Not every pair of seeds differs, but across a handful at least one
  // must perturb the data differently.
  bool any_difference = false;
  for (std::uint64_t seed = 0; seed < 8 && !any_difference; ++seed) {
    flow::Network n1 = sample_network();
    flow::Network n2 = sample_network();
    FaultInjector(seed).inject_random(n1, 2);
    FaultInjector(seed + 100).inject_random(n2, 2);
    any_difference = !same_network_data(n1, n2);
  }
  EXPECT_TRUE(any_difference);
}

TEST(JitterCosts, PerturbsWithinRelativeScale) {
  lp::Problem p = sample_problem();
  const lp::Problem base = sample_problem();
  Rng rng(9);
  const double scale = 1e-7;
  jitter_costs(p, rng, scale);
  bool any_changed = false;
  for (int i = 0; i < p.num_variables(); ++i) {
    const double c0 = base.variable(i).objective;
    const double c1 = p.variable(i).objective;
    EXPECT_LE(std::fabs(c1 - c0), std::fabs(c0) * scale * (1.0 + 1e-12));
    any_changed |= c1 != c0;
  }
  EXPECT_TRUE(any_changed);
}

TEST(JitterCosts, DeterministicInSeed) {
  lp::Problem p1 = sample_problem();
  lp::Problem p2 = sample_problem();
  Rng r1(77), r2(77);
  jitter_costs(p1, r1);
  jitter_costs(p2, r2);
  EXPECT_TRUE(same_problem_data(p1, p2));
}

// ---------------------------------------------------------------------------
// The differential harness itself.

TEST(DifferentialFuzz, CleanInstancesAgree) {
  FuzzOptions opt;
  opt.instances = 50;
  opt.fault_prob = 0.0;  // no injected faults: everything must cross-check
  const FuzzStats stats = run_differential_fuzz(opt);
  EXPECT_TRUE(stats.ok()) << to_string(stats);
  EXPECT_EQ(stats.faulted, 0);
  EXPECT_EQ(stats.lp_checks, 50);
  EXPECT_EQ(stats.adversary_checks, 50);
  EXPECT_EQ(stats.network_checks, 50);
  EXPECT_EQ(stats.warm_checks, 50);
}

TEST(DifferentialFuzz, WarmStartLegMatchesColdSolves) {
  // Focused run of the warm-vs-cold leg: faulted instances included, and
  // the leg must actually exercise warm re-solves (not skip them all).
  FuzzOptions opt;
  opt.instances = 100;
  const FuzzStats stats = run_differential_fuzz(opt);
  EXPECT_TRUE(stats.ok()) << to_string(stats);
  EXPECT_EQ(stats.warm_checks, 100);
}

TEST(DifferentialFuzz, StressNumericsSmoke) {
  // Small always-on slice of the numerical-stress leg (CI scales it up
  // via GRIDSEC_FUZZ_INSTANCES + GRIDSEC_FUZZ_STRESS_NUMERICS): the
  // ladder must never certify a wrong optimum, at any scale.
  FuzzOptions opt;
  opt.instances = 60;
  opt.stress_numerics = true;
  const FuzzStats stats = run_differential_fuzz(opt);
  EXPECT_TRUE(stats.ok()) << to_string(stats);
  EXPECT_GT(stats.recovery_checks, 0) << to_string(stats);
}

TEST(DifferentialFuzz, DeterministicInSeed) {
  FuzzOptions opt;
  opt.instances = 25;
  const FuzzStats a = run_differential_fuzz(opt);
  const FuzzStats b = run_differential_fuzz(opt);
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_EQ(a.faulted, b.faulted);
  EXPECT_EQ(a.status_counts, b.status_counts);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(DifferentialFuzz, SeededFaultedInstancesPassAtScale) {
  // The acceptance bar: hundreds of seeded fault-injected instances, zero
  // crashes and zero cross-check disagreements. GRIDSEC_FUZZ_INSTANCES
  // scales the per-leg instance count up in CI fuzz runs.
  FuzzOptions opt;
  if (const char* env = std::getenv("GRIDSEC_FUZZ_INSTANCES")) {
    opt.instances = std::max(1, std::atoi(env));
  }
  // GRIDSEC_FUZZ_STRESS_NUMERICS=1 adds the numerical-stress leg: every
  // instance additionally runs the three-way (reference / plain / ladder)
  // recovery cross-check on stress-faulted data. The leg asserts the
  // ladder never certifies a wrong optimum and resolves >= 80% of the
  // instances the plain solve loses (checked below when enough plain
  // failures accumulated for the ratio to be meaningful).
  if (const char* env = std::getenv("GRIDSEC_FUZZ_STRESS_NUMERICS")) {
    opt.stress_numerics = std::atoi(env) != 0;
  }
  const FuzzStats stats = run_differential_fuzz(opt);
  EXPECT_TRUE(stats.ok()) << to_string(stats);
  EXPECT_GE(stats.instances, 500);
  EXPECT_GT(stats.faulted, 0);
  // `instances` counts every leg; the stress leg's work lands in
  // recovery_checks (oracle-skipped instances contribute nothing), so the
  // four classic tallies only cover the classic 4/5ths of the total.
  const long classic_instances =
      opt.stress_numerics ? (stats.instances * 4) / 5 : stats.instances;
  EXPECT_GE(stats.lp_checks + stats.adversary_checks + stats.network_checks +
                stats.warm_checks,
            classic_instances);
  if (opt.stress_numerics) {
    EXPECT_GT(stats.recovery_checks, 0) << to_string(stats);
    if (stats.recovery_failed_plain >= 20) {
      EXPECT_GE(stats.recovery_resolved,
                (stats.recovery_failed_plain * 8) / 10)
          << to_string(stats);
    }
  }
}

}  // namespace
}  // namespace gridsec::robust
