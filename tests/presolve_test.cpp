// Tests for LP presolve reductions and postsolve mapping.
#include "gridsec/lp/presolve.hpp"

#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/western_us.hpp"
#include "gridsec/util/rng.hpp"

namespace gridsec::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Presolve, FixedVariableSubstituted) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 3.0, 3.0, 2.0);  // fixed at 3
  int y = p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint("c", LinearExpr().add(x, 1.0).add(y, 1.0),
                   Sense::kGreaterEqual, 10.0);
  auto pre = presolve(p);
  // Cascade: x fixed -> the row becomes a singleton bound y >= 7 -> y is
  // row-free and fixes at its (tightened) lower bound: fully solved.
  EXPECT_EQ(pre.verdict(), Presolved::Verdict::kSolved);
  EXPECT_EQ(pre.stats().fixed_variables, 2);
  auto sol = solve_lp_with_presolve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 3.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 7.0, kTol);
  EXPECT_NEAR(sol.objective, 13.0, kTol);
}

TEST(Presolve, SingletonRowBecomesBound) {
  Problem p(Objective::kMaximize);
  int x = p.add_variable("x", 0.0, 100.0, 1.0);
  p.add_constraint("cap", LinearExpr().add(x, 2.0), Sense::kLessEqual, 10.0);
  auto pre = presolve(p);
  // The row is gone; x's upper bound became 5; x then has no rows, so it
  // gets fixed at its best bound and everything is solved in presolve.
  EXPECT_EQ(pre.verdict(), Presolved::Verdict::kSolved);
  auto sol = solve_lp_with_presolve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 5.0, kTol);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
}

TEST(Presolve, SingletonNegativeCoefficient) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 100.0, 1.0);
  p.add_constraint("floor", LinearExpr().add(x, -1.0), Sense::kLessEqual,
                   -8.0);  // -x <= -8  ->  x >= 8
  auto sol = solve_lp_with_presolve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 8.0, kTol);
}

TEST(Presolve, ConflictingSingletonsInfeasible) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 100.0, 1.0);
  p.add_constraint("hi", LinearExpr().add(x, 1.0), Sense::kGreaterEqual,
                   50.0);
  p.add_constraint("lo", LinearExpr().add(x, 1.0), Sense::kLessEqual, 10.0);
  auto pre = presolve(p);
  EXPECT_EQ(pre.verdict(), Presolved::Verdict::kInfeasible);
  auto sol = solve_lp_with_presolve(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Presolve, EmptyRowChecked) {
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 2.0, 2.0, 1.0);  // fixed
  p.add_constraint("ok", LinearExpr().add(x, 1.0), Sense::kLessEqual, 5.0);
  p.add_constraint("bad", LinearExpr().add(x, 1.0), Sense::kGreaterEqual,
                   7.0);
  auto pre = presolve(p);
  EXPECT_EQ(pre.verdict(), Presolved::Verdict::kInfeasible);
}

TEST(Presolve, UnconstrainedVariableFixedAtBestBound) {
  Problem p(Objective::kMaximize);
  p.add_variable("free_gain", 0.0, 9.0, 3.0);   // wants upper
  p.add_variable("free_cost", 1.0, 9.0, -2.0);  // wants lower
  auto sol = solve_lp_with_presolve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 9.0, kTol);
  EXPECT_NEAR(sol.x[1], 1.0, kTol);
  EXPECT_NEAR(sol.objective, 27.0 - 2.0, kTol);
}

TEST(Presolve, DetectsUnboundedFreeVariable) {
  Problem p(Objective::kMaximize);
  p.add_variable("x", 0.0, kInfinity, 1.0);  // no rows, infinite upper
  auto pre = presolve(p);
  EXPECT_EQ(pre.verdict(), Presolved::Verdict::kUnbounded);
  auto sol = solve_lp_with_presolve(p);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(Presolve, CascadingReductions) {
  // Singleton fixes x; substituting x empties the second row into a bound
  // on y; y then fixes; third row becomes empty and is checked.
  Problem p(Objective::kMinimize);
  int x = p.add_variable("x", 0.0, 10.0, 1.0);
  int y = p.add_variable("y", 0.0, 10.0, 1.0);
  p.add_constraint("fix_x", LinearExpr().add(x, 1.0), Sense::kEqual, 4.0);
  p.add_constraint("xy", LinearExpr().add(x, 1.0).add(y, 1.0), Sense::kEqual,
                   9.0);
  p.add_constraint("check", LinearExpr().add(y, 2.0), Sense::kLessEqual,
                   10.5);
  auto pre = presolve(p);
  EXPECT_EQ(pre.verdict(), Presolved::Verdict::kSolved);
  auto sol = solve_lp_with_presolve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 4.0, kTol);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 5.0, kTol);
}

TEST(Presolve, MatchesPlainSimplexOnWesternUs) {
  auto m = sim::build_western_us();
  Problem p = flow::build_social_welfare_lp(m.network);
  auto plain = solve_lp(p);
  auto pre = solve_lp_with_presolve(p);
  ASSERT_EQ(plain.status, SolveStatus::kOptimal);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_NEAR(plain.objective, pre.objective, 1e-5);
}

// Property: presolved and plain solves agree on random transportation LPs.
class PresolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(PresolveProperty, AgreesWithPlainSimplex) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  Problem p(Objective::kMinimize);
  const int ns = 2 + static_cast<int>(rng.uniform_index(3));
  const int nc = 2 + static_cast<int>(rng.uniform_index(3));
  std::vector<std::vector<int>> f(static_cast<std::size_t>(ns));
  for (int i = 0; i < ns; ++i) {
    for (int j = 0; j < nc; ++j) {
      // Occasionally fixed or degenerate bounds to exercise reductions.
      const double lo = rng.bernoulli(0.2) ? 2.0 : 0.0;
      const double hi = rng.bernoulli(0.15) ? lo : rng.uniform(5.0, 40.0);
      f[static_cast<std::size_t>(i)].push_back(
          p.add_variable("f", lo, hi, rng.uniform(1.0, 9.0)));
    }
  }
  for (int i = 0; i < ns; ++i) {
    LinearExpr e;
    for (int j = 0; j < nc; ++j) {
      e.add(f[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    }
    p.add_constraint("s", std::move(e), Sense::kLessEqual,
                     rng.uniform(10.0, 50.0));
  }
  for (int j = 0; j < nc; ++j) {
    LinearExpr e;
    for (int i = 0; i < ns; ++i) {
      e.add(f[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    }
    p.add_constraint("d", std::move(e), Sense::kGreaterEqual,
                     rng.uniform(2.0, 10.0));
  }
  auto plain = solve_lp(p);
  auto pre = solve_lp_with_presolve(p);
  EXPECT_EQ(plain.status, pre.status);
  if (plain.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(plain.objective, pre.objective, 1e-5);
    EXPECT_TRUE(p.is_feasible(pre.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace gridsec::lp
