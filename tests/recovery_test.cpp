// Tests for the numerical-resilience layer: input magnitude gating,
// factorization hygiene, Ruiz equilibration round trips, the recovery
// ladder (explicit and hook-installed), trail persistence in audit
// bundles, and the ill-conditioned LP corpus under tests/data/illcond.
//
// The RecoveryConcurrency suite runs under TSan in CI: the install /
// enable toggles and the hook itself are process-global and must stay
// data-race-free against concurrent solves.
#include "gridsec/robust/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gridsec/lp/basis.hpp"
#include "gridsec/lp/lp_io.hpp"
#include "gridsec/lp/presolve.hpp"
#include "gridsec/lp/problem.hpp"
#include "gridsec/lp/simplex.hpp"
#include "gridsec/obs/audit.hpp"
#include "gridsec/util/matrix.hpp"

namespace gridsec::robust {
namespace {

#ifndef GRIDSEC_ILLCOND_DIR
#define GRIDSEC_ILLCOND_DIR "tests/data/illcond"
#endif

// Uninstalls any hook a prior test left behind, restoring on exit, so the
// hook-centric tests compose in any order.
class HookSandbox : public ::testing::Test {
 protected:
  void SetUp() override { uninstall_recovery(); }
  void TearDown() override {
    uninstall_recovery();
    set_recovery_enabled(true);
  }
};

lp::Problem tiny_lp() {
  lp::Problem p(lp::Objective::kMinimize);
  p.add_variable("x", 0.0, 10.0, 1.0);
  p.add_variable("y", 0.0, 10.0, 2.0);
  lp::LinearExpr row;
  row.add(0, 1.0);
  row.add(1, 1.0);
  p.add_constraint("c0", std::move(row), lp::Sense::kGreaterEqual, 3.0);
  return p;
}

// A feasible LP whose rows span ~2^60 of dynamic range: equilibration has
// real work to do, and the factors must still round-trip exactly.
lp::Problem badly_scaled_lp() {
  lp::Problem p(lp::Objective::kMinimize);
  p.add_variable("x", 0.0, lp::kInfinity, 1.0);
  p.add_variable("y", 0.0, lp::kInfinity, 0x1p-30);
  lp::LinearExpr r0;
  r0.add(0, 0x1p30);
  r0.add(1, 0x1p28);
  p.add_constraint("big", std::move(r0), lp::Sense::kGreaterEqual, 0x1p31);
  lp::LinearExpr r1;
  r1.add(0, 0x1p-30);
  r1.add(1, 0x1p-29);
  p.add_constraint("small", std::move(r1), lp::Sense::kLessEqual, 0x1p-25);
  return p;
}

TEST(InputValidation, RejectsAstronomicalMagnitudes) {
  lp::Problem p = tiny_lp();
  p.set_objective_coef(0, 1e31);  // past the 1e30 magnitude cap
  const Status st = lp::validate_problem(p);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  // And the ladder refuses to "recover" rejected input: the verdict on
  // invalid data is final.
  const lp::Solution sol = solve_with_recovery(p);
  EXPECT_NE(sol.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(sol.recovery_trail.empty());
}

TEST(BasisFactorizationHygiene, SingularRefactorizeResetsState) {
  Matrix good(2, 2);
  good(0, 0) = 2.0;
  good(1, 1) = 3.0;
  lp::BasisFactorization f;
  ASSERT_TRUE(f.refactorize(good));
  ASSERT_TRUE(f.valid());

  Matrix singular(2, 2);  // rank 1
  singular(0, 0) = 1.0;
  singular(1, 0) = 1.0;
  EXPECT_FALSE(f.refactorize(singular));
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f.size(), 0u);       // no half-factorized leftovers
  EXPECT_EQ(f.eta_count(), 0u);

  // The object must be cleanly reusable after the failure.
  ASSERT_TRUE(f.refactorize(good));
  std::vector<double> x = {2.0, 3.0};
  f.ftran(x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Equilibration, PowerOfTwoFactorsAndExactRoundTrip) {
  const lp::Problem p = badly_scaled_lp();
  const lp::Equilibrated eq = lp::equilibrate(p);
  ASSERT_TRUE(eq.scaled_any());
  for (const double f : eq.row_scale()) {
    int exp2 = 0;
    EXPECT_EQ(std::frexp(f, &exp2), 0.5) << "row factor " << f;
  }
  for (const double f : eq.col_scale()) {
    int exp2 = 0;
    EXPECT_EQ(std::frexp(f, &exp2), 0.5) << "col factor " << f;
  }

  lp::Solution sol = lp::SimplexSolver(lp::SimplexOptions{}).solve(p);
  ASSERT_TRUE(sol.optimal());
  // rescale() is the exact inverse of unscale(): bit-for-bit round trip.
  const lp::Solution back = eq.unscale(eq.rescale(sol));
  ASSERT_EQ(back.x.size(), sol.x.size());
  for (std::size_t j = 0; j < sol.x.size(); ++j) {
    EXPECT_EQ(back.x[j], sol.x[j]);
  }
  for (std::size_t i = 0; i < sol.duals.size(); ++i) {
    EXPECT_EQ(back.duals[i], sol.duals[i]);
  }
}

TEST(Equilibration, WellScaledProblemIsIdentity) {
  const lp::Equilibrated eq = lp::equilibrate(tiny_lp());
  EXPECT_FALSE(eq.scaled_any());
}

TEST(RecoveryRungNames, AreStable) {
  EXPECT_EQ(to_string(RecoveryRung::kWarm), "warm");
  EXPECT_EQ(to_string(RecoveryRung::kRepairedBasis), "repaired_basis");
  EXPECT_EQ(to_string(RecoveryRung::kCold), "cold");
  EXPECT_EQ(to_string(RecoveryRung::kBland), "bland");
  EXPECT_EQ(to_string(RecoveryRung::kEquilibrated), "equilibrated");
  EXPECT_EQ(to_string(RecoveryRung::kPerturbed), "perturbed");
}

TEST(RecoveryPolicy, LadderAndOffShapes) {
  const RecoveryPolicy ladder = RecoveryPolicy::ladder();
  EXPECT_TRUE(ladder.enabled);
  const std::vector<RecoveryRung> expect = {
      RecoveryRung::kRepairedBasis, RecoveryRung::kCold, RecoveryRung::kBland,
      RecoveryRung::kEquilibrated, RecoveryRung::kPerturbed};
  EXPECT_EQ(ladder.rungs, expect);
  EXPECT_FALSE(RecoveryPolicy::off().enabled);
}

TEST(SolveWithRecovery, CleanSolveLeavesNoTrail) {
  const lp::Solution sol = solve_with_recovery(tiny_lp());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
  EXPECT_TRUE(sol.recovery_trail.empty());  // ladder never engaged
}

TEST(SolveWithRecovery, DisabledPolicyDegradesToPlainSolve) {
  const lp::Solution sol =
      solve_with_recovery(tiny_lp(), {}, RecoveryPolicy::off());
  EXPECT_TRUE(sol.optimal());
  EXPECT_TRUE(sol.recovery_trail.empty());
}

std::vector<std::string> illcond_corpus() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GRIDSEC_ILLCOND_DIR)) {
    if (entry.path().extension() == ".lp") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Strict scale-invariant certificate — the same acceptance bar the ladder
// itself applies before adopting a rung's answer.
bool strictly_certified(const lp::Problem& p, const lp::Solution& s) {
  if (!s.optimal()) return false;
  obs::CertifyOptions cert{.relaxation = true};
  cert.feasibility_tol = 1e-9;
  cert.dual_tol = 1e-9;
  cert.duality_gap_tol = 1e-9;
  if (!obs::certify(p, s, cert).ok()) return false;
  const lp::Equilibrated eq = lp::equilibrate(p);
  return !eq.scaled_any() ||
         obs::certify(eq.scaled(), eq.rescale(s), cert).ok();
}

TEST(IllConditionedCorpus, LadderRecoversEveryInstance) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_GE(files.size(), 4u) << "corpus missing from " GRIDSEC_ILLCOND_DIR;
  // The corpus solves are deliberately broken; keep the binary's armed
  // certify-all hook out of the diagnostic noise (the assertions below
  // re-certify the adopted answers with a tighter check than the hook's).
  lp::ScopedSolveHookSuppress no_audit;
  for (const std::string& file : files) {
    auto parsed = lp::read_lp_file(file);
    ASSERT_TRUE(parsed.is_ok()) << file << ": " << parsed.status().message();
    const lp::Problem p = std::move(parsed.value());

    lp::SimplexOptions so;
    so.time_limit_ms = 5000.0;
    lp::Solution plain;
    {
      ScopedRecoveryDisable off;
      plain = lp::SimplexSolver(so).solve(p);
    }
    EXPECT_FALSE(strictly_certified(p, plain))
        << file << " no longer stresses the plain solve";

    const lp::Solution sol = solve_with_recovery(p, so);
    EXPECT_TRUE(strictly_certified(p, sol)) << file << " not recovered";
    ASSERT_FALSE(sol.recovery_trail.empty()) << file;
    int adopted = 0;
    for (const lp::RecoveryStepInfo& step : sol.recovery_trail) {
      if (step.certified) ++adopted;
    }
    EXPECT_EQ(adopted, 1) << file << ": exactly one rung's answer adopted";
    EXPECT_TRUE(sol.recovery_trail.back().certified)
        << file << ": the adopted rung ends the trail";
  }
}

TEST(IllConditionedCorpus, SingleRungPoliciesCoverTheLadder) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  auto parsed = lp::read_lp_file(files.front());
  ASSERT_TRUE(parsed.is_ok());
  const lp::Problem p = std::move(parsed.value());
  lp::ScopedSolveHookSuppress no_audit;

  lp::SimplexOptions so;
  so.time_limit_ms = 5000.0;
  // Each single-rung policy must run exactly its rung (or skip it when
  // structurally unavailable) — never another rung's path.
  for (const RecoveryRung rung :
       {RecoveryRung::kWarm, RecoveryRung::kRepairedBasis, RecoveryRung::kCold,
        RecoveryRung::kBland, RecoveryRung::kEquilibrated,
        RecoveryRung::kPerturbed}) {
    RecoveryPolicy policy;
    policy.rungs = {rung};
    const lp::Solution sol = solve_with_recovery(p, so, policy);
    const bool needs_warm_basis = rung == RecoveryRung::kWarm ||
                                  rung == RecoveryRung::kRepairedBasis;
    for (const lp::RecoveryStepInfo& step : sol.recovery_trail) {
      if (step.certified) {
        EXPECT_EQ(step.rung, to_string(rung));
      }
    }
    if (needs_warm_basis) {
      // No warm basis was supplied: the rung is structurally unavailable,
      // so the trail records only the solver's own failed attempts.
      for (const lp::RecoveryStepInfo& step : sol.recovery_trail) {
        EXPECT_FALSE(step.certified);
      }
    }
  }
}

TEST(IllConditionedCorpus, WarmRungsRunWithSuppliedBasis) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  auto parsed = lp::read_lp_file(files.front());
  ASSERT_TRUE(parsed.is_ok());
  const lp::Problem p = std::move(parsed.value());
  lp::ScopedSolveHookSuppress no_audit;

  // Manufacture a (stale) warm basis: all-slack-basic, variables at lower.
  lp::SimplexOptions so;
  so.time_limit_ms = 5000.0;
  so.warm_start.variables.assign(
      static_cast<std::size_t>(p.num_variables()), lp::VarStatus::kAtLower);
  so.warm_start.rows.assign(static_cast<std::size_t>(p.num_constraints()),
                            lp::VarStatus::kBasic);
  RecoveryPolicy policy;
  policy.rungs = {RecoveryRung::kWarm, RecoveryRung::kRepairedBasis,
                  RecoveryRung::kCold, RecoveryRung::kBland,
                  RecoveryRung::kEquilibrated, RecoveryRung::kPerturbed};
  const lp::Solution sol = solve_with_recovery(p, so, policy);
  // With a basis supplied, the warm rungs must at least have been tried
  // whenever the ladder engaged at all.
  if (!sol.recovery_trail.empty()) {
    bool saw_warm_rung = false;
    for (const lp::RecoveryStepInfo& step : sol.recovery_trail) {
      if (step.rung == "warm" || step.rung == "repaired_basis") {
        saw_warm_rung = true;
      }
    }
    EXPECT_TRUE(saw_warm_rung);
  }
}

TEST_F(HookSandbox, InstallUninstallLifecycle) {
  EXPECT_FALSE(recovery_installed());
  install_recovery();
  EXPECT_TRUE(recovery_installed());
  uninstall_recovery();
  EXPECT_FALSE(recovery_installed());
}

TEST_F(HookSandbox, HookRecoversPlainSolverCalls) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  lp::ScopedSolveHookSuppress no_audit;
  install_recovery();
  lp::SimplexOptions so;
  so.time_limit_ms = 5000.0;
  int hook_recoveries = 0;
  for (const std::string& file : files) {
    auto parsed = lp::read_lp_file(file);
    ASSERT_TRUE(parsed.is_ok()) << file;
    const lp::Problem p = std::move(parsed.value());
    // Plain SimplexSolver call — no robust:: API in sight. The installed
    // hook fires on kNumericalError and escalates in place.
    const lp::Solution sol = lp::SimplexSolver(so).solve(p);
    if (!sol.recovery_trail.empty() && sol.optimal()) ++hook_recoveries;
  }
  // The corpus contains plain-kNumericalError instances by construction.
  EXPECT_GT(hook_recoveries, 0);
}

TEST_F(HookSandbox, RuntimeToggleSuppressesInstalledHook) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  lp::ScopedSolveHookSuppress no_audit;
  install_recovery();
  set_recovery_enabled(false);
  lp::SimplexOptions so;
  so.time_limit_ms = 5000.0;
  for (const std::string& file : files) {
    auto parsed = lp::read_lp_file(file);
    ASSERT_TRUE(parsed.is_ok());
    const lp::Solution sol = lp::SimplexSolver(so).solve(parsed.value());
    EXPECT_TRUE(sol.recovery_trail.empty()) << file;
  }
  set_recovery_enabled(true);
  EXPECT_TRUE(recovery_enabled());
}

TEST_F(HookSandbox, ScopedDisableIsThreadLocal) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  auto parsed = lp::read_lp_file(files.front());
  ASSERT_TRUE(parsed.is_ok());
  const lp::Problem p = std::move(parsed.value());
  lp::ScopedSolveHookSuppress no_audit;
  install_recovery();
  lp::SimplexOptions so;
  so.time_limit_ms = 5000.0;
  lp::Solution inside;
  {
    ScopedRecoveryDisable off;
    inside = lp::SimplexSolver(so).solve(p);
  }
  EXPECT_TRUE(inside.recovery_trail.empty());
  // After the scope ends the hook fires again on this thread.
  const lp::Solution outside = lp::SimplexSolver(so).solve(p);
  const lp::Solution explicit_ladder = solve_with_recovery(p, so);
  if (!explicit_ladder.recovery_trail.empty() &&
      explicit_ladder.optimal()) {
    EXPECT_FALSE(outside.recovery_trail.empty() && !outside.optimal());
  }
}

TEST(AuditTrail, RecoveryTrailRoundTripsThroughBundles) {
  lp::Problem p = tiny_lp();
  lp::Solution sol = lp::SimplexSolver(lp::SimplexOptions{}).solve(p);
  ASSERT_TRUE(sol.optimal());
  sol.recovery_trail = {
      {"cold", lp::SolveStatus::kNumericalError, false},
      {"bland", lp::SolveStatus::kOptimal, false},
      {"equilibrated", lp::SolveStatus::kOptimal, true},
  };
  const obs::AuditBundle bundle =
      obs::make_audit_bundle(p, sol, "test.recovery", "capture", {});
  std::ostringstream os;
  obs::write_audit_bundle(os, bundle);
  const std::string json = os.str();
  auto parsed = obs::parse_audit_bundle(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const auto& trail = parsed.value().solution.recovery_trail;
  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail[0].rung, "cold");
  EXPECT_EQ(trail[0].status, lp::SolveStatus::kNumericalError);
  EXPECT_FALSE(trail[0].certified);
  EXPECT_EQ(trail[2].rung, "equilibrated");
  EXPECT_TRUE(trail[2].certified);
}

TEST(LpIo, CorpusFilesRoundTripExactly) {
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    auto parsed = lp::read_lp_file(file);
    ASSERT_TRUE(parsed.is_ok()) << file;
    // write -> parse must be a fixpoint: bit-identical numbers
    // (precision-17 output) and identical structure.
    const std::string text = lp::to_lp_format(parsed.value());
    auto reparsed = lp::parse_lp_format(text);
    ASSERT_TRUE(reparsed.is_ok()) << file;
    EXPECT_EQ(text, lp::to_lp_format(reparsed.value())) << file;
  }
}

TEST(LpIo, ReadMissingFileIsNotFound) {
  auto parsed = lp::read_lp_file("/nonexistent/no_such.lp");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kNotFound);
}

TEST(LpIo, MalformedTextIsInvalidArgument) {
  auto parsed = lp::parse_lp_format("Minimize\n obj: 2 zebra\nEnd\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
}

TEST(BlandFromFirstPivot, MatchesDefaultPricingOnCleanInstance) {
  lp::SimplexOptions bland;
  bland.bland_after = -1;
  const lp::Solution a = lp::SimplexSolver(bland).solve(tiny_lp());
  const lp::Solution b = lp::SimplexSolver(lp::SimplexOptions{}).solve(tiny_lp());
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

// --- TSan-targeted suite (CI runs these under -fsanitize=thread) --------

TEST(RecoveryConcurrency, ConcurrentSolvesWithInstalledHook) {
  uninstall_recovery();
  install_recovery();
  lp::ScopedSolveHookSuppress no_audit;
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  std::vector<lp::Problem> corpus;
  for (const std::string& file : files) {
    auto parsed = lp::read_lp_file(file);
    ASSERT_TRUE(parsed.is_ok());
    corpus.push_back(std::move(parsed.value()));
  }
  std::atomic<int> recovered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&corpus, &recovered, t] {
      // Suppression scopes are thread-local: re-enter on each worker.
      lp::ScopedSolveHookSuppress worker_no_audit;
      lp::SimplexOptions so;
      so.time_limit_ms = 5000.0;
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        if ((i + static_cast<std::size_t>(t)) % 2 == 0) {
          ScopedRecoveryDisable off;
          (void)lp::SimplexSolver(so).solve(corpus[i]);
        } else {
          const lp::Solution sol = lp::SimplexSolver(so).solve(corpus[i]);
          if (!sol.recovery_trail.empty() && sol.optimal()) {
            recovered.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  uninstall_recovery();
  EXPECT_GT(recovered.load(), 0);
}

TEST(RecoveryConcurrency, InstallToggleRacesSolves) {
  uninstall_recovery();
  lp::ScopedSolveHookSuppress no_audit;
  const std::vector<std::string> files = illcond_corpus();
  ASSERT_FALSE(files.empty());
  auto parsed = lp::read_lp_file(files.front());
  ASSERT_TRUE(parsed.is_ok());
  const lp::Problem p = std::move(parsed.value());
  std::atomic<bool> stop{false};
  std::thread toggler([&stop] {
    RecoveryPolicy alt = RecoveryPolicy::ladder();
    while (!stop.load(std::memory_order_relaxed)) {
      install_recovery(alt);
      set_recovery_enabled(false);
      set_recovery_enabled(true);
      uninstall_recovery();
    }
  });
  std::vector<std::thread> solvers;
  for (int t = 0; t < 3; ++t) {
    solvers.emplace_back([&p] {
      lp::ScopedSolveHookSuppress worker_no_audit;
      lp::SimplexOptions so;
      so.time_limit_ms = 5000.0;
      for (int i = 0; i < 8; ++i) {
        (void)lp::SimplexSolver(so).solve(p);
      }
    });
  }
  for (std::thread& th : solvers) th.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  uninstall_recovery();
}

}  // namespace
}  // namespace gridsec::robust
