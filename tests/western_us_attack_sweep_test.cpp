// Exhaustive single-asset attack sweep over the western-US model: every
// outage must leave a solvable market, and the qualitative propagation
// directions must hold asset class by asset class.
#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"
#include "gridsec/sim/western_us.hpp"

namespace gridsec::sim {
namespace {

class WesternUsSweep : public ::testing::Test {
 protected:
  static const WesternUsModel& model() {
    static const WesternUsModel m = build_western_us();
    return m;
  }
  static const flow::FlowSolution& base() {
    static const flow::FlowSolution sol =
        flow::solve_social_welfare(model().network);
    return sol;
  }
};

TEST_F(WesternUsSweep, EveryOutageSolvesAndNeverImprovesWelfare) {
  ASSERT_TRUE(base().optimal());
  for (int e = 0; e < model().network.num_edges(); ++e) {
    flow::Network hit = model().network;
    hit.set_capacity(e, 0.0);
    auto sol = flow::solve_social_welfare(hit);
    ASSERT_TRUE(sol.optimal()) << model().network.edge(e).name;
    EXPECT_LE(sol.welfare, base().welfare + 1e-6)
        << model().network.edge(e).name;
  }
}

TEST_F(WesternUsSweep, ConsumerOutagesCostTheirSurplusExactly) {
  // Knocking out a demand edge removes exactly that consumer's surplus
  // plus the rents its purchases supported; welfare drop is at least its
  // surplus at current prices and never exceeds its gross willingness.
  for (int e = 0; e < model().network.num_edges(); ++e) {
    const auto& edge = model().network.edge(e);
    if (edge.kind != flow::EdgeKind::kDemand) continue;
    const double flow = base().flow[static_cast<std::size_t>(e)];
    if (flow <= 1e-9) continue;
    flow::Network hit = model().network;
    hit.set_capacity(e, 0.0);
    auto sol = flow::solve_social_welfare(hit);
    ASSERT_TRUE(sol.optimal());
    const double drop = base().welfare - sol.welfare;
    EXPECT_GT(drop, 0.0) << edge.name;
    EXPECT_LE(drop, -edge.cost * flow + 1e-6) << edge.name;
  }
}

TEST_F(WesternUsSweep, SupplyOutagesRaiseSomeLocalPrice) {
  // Any flowing generator's outage must weakly raise the LMP at its hub
  // (less merit-order supply can never lower the marginal cost).
  for (int e = 0; e < model().network.num_edges(); ++e) {
    const auto& edge = model().network.edge(e);
    if (edge.kind != flow::EdgeKind::kSupply) continue;
    if (base().flow[static_cast<std::size_t>(e)] <= 1e-9) continue;
    flow::Network hit = model().network;
    hit.set_capacity(e, 0.0);
    auto sol = flow::solve_social_welfare(hit);
    ASSERT_TRUE(sol.optimal());
    const auto hub = static_cast<std::size_t>(edge.to);
    EXPECT_GE(sol.node_price[hub], base().node_price[hub] - 1e-6)
        << edge.name;
  }
}

TEST_F(WesternUsSweep, ConverterOutagesNeverLowerElectricPrices) {
  for (flow::EdgeId e : model().converters) {
    if (base().flow[static_cast<std::size_t>(e)] <= 1e-9) continue;
    flow::Network hit = model().network;
    hit.set_capacity(e, 0.0);
    auto sol = flow::solve_social_welfare(hit);
    ASSERT_TRUE(sol.optimal());
    const auto hub = static_cast<std::size_t>(model().network.edge(e).to);
    EXPECT_GE(sol.node_price[hub], base().node_price[hub] - 1e-6)
        << model().network.edge(e).name;
  }
}

TEST_F(WesternUsSweep, LongHaulOutagesSeparateEndpointPrices) {
  // Cutting a flowing long-haul edge weakly widens the LMP spread across
  // it (the cheap side loses an export outlet, the dear side an import).
  int checked = 0;
  for (flow::EdgeId e : model().long_haul) {
    if (base().flow[static_cast<std::size_t>(e)] <= 1e-6) continue;
    const auto& edge = model().network.edge(e);
    flow::Network hit = model().network;
    hit.set_capacity(e, 0.0);
    auto sol = flow::solve_social_welfare(hit);
    ASSERT_TRUE(sol.optimal());
    const auto from = static_cast<std::size_t>(edge.from);
    const auto to = static_cast<std::size_t>(edge.to);
    const double spread_before =
        base().node_price[to] - base().node_price[from];
    const double spread_after = sol.node_price[to] - sol.node_price[from];
    EXPECT_GE(spread_after, spread_before - 1e-6) << edge.name;
    ++checked;
  }
  EXPECT_GT(checked, 5);  // most interstate edges flow in the peak model
}

}  // namespace
}  // namespace gridsec::sim
