// Tests for structured ownership models.
#include "gridsec/sim/ownership_structures.hpp"

#include <gtest/gtest.h>

#include "gridsec/cps/impact.hpp"
#include "gridsec/sim/gulf_coast.hpp"

namespace gridsec::sim {
namespace {

TEST(OwnershipByState, OneActorPerState) {
  auto m = build_western_us();
  auto own = ownership_by_state(m);
  EXPECT_EQ(own.num_actors(), 6);
  EXPECT_EQ(own.active_actors(), 6);
  EXPECT_EQ(own.num_assets(), m.network.num_edges());
}

TEST(OwnershipByState, InStateAssetsBelongToTheState) {
  auto m = build_western_us();
  auto own = ownership_by_state(m);
  // CA is state index 2 in the table; its converter belongs to actor 2.
  auto conv = m.network.find_edge("CA.gas2elec");
  ASSERT_TRUE(conv.is_ok());
  EXPECT_EQ(own.owner(conv.value()), 2);
  auto load = m.network.find_edge("CA.elec.load");
  ASSERT_TRUE(load.is_ok());
  EXPECT_EQ(own.owner(load.value()), 2);
}

TEST(OwnershipByState, LongHaulBelongsToOrigin) {
  auto m = build_western_us();
  auto own = ownership_by_state(m);
  auto pipe = m.network.find_edge("WA-OR.pipe");
  ASSERT_TRUE(pipe.is_ok());
  EXPECT_EQ(own.owner(pipe.value()), 0);  // WA is state 0
}

TEST(OwnershipBySector, ThreeSectorsCoverEverything) {
  auto m = build_western_us();
  auto own = ownership_by_sector(m);
  EXPECT_EQ(own.num_actors(), 3);
  EXPECT_EQ(own.active_actors(), 3);
}

TEST(OwnershipBySector, ClassificationSpotChecks) {
  auto m = build_western_us();
  auto own = ownership_by_sector(m);
  auto gas_prod = m.network.find_edge("UT.gas.prod");
  auto pipe = m.network.find_edge("WA-OR.pipe");
  auto hydro = m.network.find_edge("WA.elec.hydro");
  auto conv = m.network.find_edge("CA.gas2elec");
  auto line = m.network.find_edge("OR-CA.line");
  auto eload = m.network.find_edge("CA.elec.load");
  ASSERT_TRUE(gas_prod.is_ok() && pipe.is_ok() && hydro.is_ok() &&
              conv.is_ok() && line.is_ok() && eload.is_ok());
  EXPECT_EQ(own.owner(gas_prod.value()), 0);
  EXPECT_EQ(own.owner(pipe.value()), 0);
  EXPECT_EQ(own.owner(hydro.value()), 1);
  EXPECT_EQ(own.owner(conv.value()), 1);
  EXPECT_EQ(own.owner(line.value()), 2);
  EXPECT_EQ(own.owner(eload.value()), 2);
}

TEST(OwnershipConcentrated, FirstActorDominates) {
  Rng rng(7);
  auto own = ownership_concentrated(4000, 6, rng);
  std::vector<int> counts(6, 0);
  for (int e = 0; e < 4000; ++e) {
    ++counts[static_cast<std::size_t>(own.owner(e))];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[5], 0);  // the fringe still owns something
}

TEST(OwnershipConcentrated, Reproducible) {
  Rng a(9), b(9);
  auto oa = ownership_concentrated(100, 4, a);
  auto ob = ownership_concentrated(100, 4, b);
  for (int e = 0; e < 100; ++e) EXPECT_EQ(oa.owner(e), ob.owner(e));
}

TEST(OwnershipStructures, WorkOnGulfCoastToo) {
  auto m = build_gulf_coast();
  auto by_state = ownership_by_state(m);
  EXPECT_EQ(by_state.num_actors(), 4);
  auto by_sector = ownership_by_sector(m);
  EXPECT_EQ(by_sector.active_actors(), 3);
}

TEST(OwnershipStructures, ImpactPipelineAccepts) {
  auto m = build_western_us();
  for (const auto& own :
       {ownership_by_state(m), ownership_by_sector(m)}) {
    auto im = cps::compute_impact_matrix(m.network, own);
    ASSERT_TRUE(im.is_ok());
    EXPECT_GE(im->matrix.aggregate_gain(), 0.0);
  }
}

}  // namespace
}  // namespace gridsec::sim
