// Tests for elastic (tiered) demand.
#include "gridsec/flow/elastic.hpp"

#include <gtest/gtest.h>

#include "gridsec/flow/social_welfare.hpp"

namespace gridsec::flow {
namespace {

constexpr double kTol = 1e-6;

TEST(ElasticDemand, TiersCreateDemandEdges) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 10.0);
  const DemandTier tiers[] = {{20.0, 50.0}, {20.0, 30.0}, {20.0, 15.0}};
  auto edges = add_elastic_demand(net, "load", h, tiers);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(net.edge(edges[0]).kind, EdgeKind::kDemand);
  EXPECT_DOUBLE_EQ(net.edge(edges[1]).cost, -30.0);
  EXPECT_EQ(net.edge(edges[2]).name, "load.t2");
}

TEST(ElasticDemand, OnlyProfitableTiersServed) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 100.0, 20.0);  // cost 20
  const DemandTier tiers[] = {{30.0, 50.0}, {30.0, 25.0}, {30.0, 10.0}};
  auto edges = add_elastic_demand(net, "load", h, tiers);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(edges[0])], 30.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(edges[1])], 30.0, kTol);
  // The 10-price tier is below the 20 production cost: shed.
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(edges[2])], 0.0, kTol);
  EXPECT_NEAR(sol.welfare, 30.0 * 30.0 + 5.0 * 30.0, kTol);
}

TEST(ElasticDemand, ScarcityShedsCheapTiersFirst) {
  Network net;
  const NodeId h = net.add_hub("H");
  net.add_supply("gen", h, 40.0, 5.0);  // can only cover part of demand
  const DemandTier tiers[] = {{30.0, 50.0}, {30.0, 25.0}};
  auto edges = add_elastic_demand(net, "load", h, tiers);
  auto sol = solve_social_welfare(net);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(edges[0])], 30.0, kTol);
  EXPECT_NEAR(sol.flow[static_cast<std::size_t>(edges[1])], 10.0, kTol);
}

TEST(LinearDemandCurve, TiersDescendAndCoverQuantity) {
  auto tiers = linear_demand_curve(100.0, 60.0, 4);
  ASSERT_EQ(tiers.size(), 4u);
  double total = 0.0;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    total += tiers[i].quantity;
    if (i > 0) EXPECT_LT(tiers[i].price, tiers[i - 1].price);
  }
  EXPECT_NEAR(total, 60.0, kTol);
  EXPECT_NEAR(tiers[0].price, 87.5, kTol);   // midpoint of [100, 75]
  EXPECT_NEAR(tiers[3].price, 12.5, kTol);
}

TEST(ElasticDemand, SoftensAttackImpact) {
  // Same served quantity and scarcity; the elastic consumer loses less
  // welfare from a supply outage because it sheds its lowest-value usage
  // first, while the fixed-price consumer values every megawatt at retail.
  const auto welfare_drop = [](bool elastic) {
    Network net;
    const NodeId h = net.add_hub("H");
    const EdgeId main_gen = net.add_supply("gen", h, 60.0, 10.0);
    net.add_supply("backup", h, 30.0, 10.0);
    if (elastic) {
      auto tiers = linear_demand_curve(100.0, 60.0, 6);
      add_elastic_demand(net, "load", h, tiers);
    } else {
      net.add_demand("load", h, 60.0, 50.0);  // flat willingness to pay
    }
    auto base = solve_social_welfare(net);
    EXPECT_TRUE(base.optimal());
    Network hit = net;
    hit.set_capacity(main_gen, 0.0);
    auto after = solve_social_welfare(hit);
    EXPECT_TRUE(after.optimal());
    return base.welfare - after.welfare;
  };
  const double fixed_drop = welfare_drop(false);
  const double elastic_drop = welfare_drop(true);
  EXPECT_GT(fixed_drop, 0.0);
  EXPECT_GT(elastic_drop, 0.0);
  EXPECT_LT(elastic_drop, fixed_drop);
}

}  // namespace
}  // namespace gridsec::flow
