// Tests for layered security postures and the layered defender.
#include "gridsec/cps/security.hpp"

#include <gtest/gtest.h>

#include "gridsec/core/adversary.hpp"

namespace gridsec::cps {
namespace {

constexpr double kTol = 1e-9;

SecurityModel model() {
  SecurityModel m;
  m.base_success_prob = 0.8;
  m.success_decay_per_layer = 0.5;
  m.base_attack_cost = 2.0;
  m.attack_cost_per_layer = 3.0;
  return m;
}

TEST(SecurityPosture, LayersScalePsAndCatk) {
  SecurityPosture p(3, model());
  EXPECT_NEAR(p.success_prob(0), 0.8, kTol);
  EXPECT_NEAR(p.attack_cost(0), 2.0, kTol);
  p.set_layers(0, 2);
  EXPECT_NEAR(p.success_prob(0), 0.8 * 0.25, kTol);
  EXPECT_NEAR(p.attack_cost(0), 2.0 + 6.0, kTol);
  p.add_layer(0);
  EXPECT_EQ(p.layers(0), 3);
}

TEST(SecurityPosture, VectorsMaterialize) {
  SecurityPosture p(2, model());
  p.set_layers(1, 1);
  auto ps = p.success_prob_vector();
  auto cost = p.attack_cost_vector();
  EXPECT_NEAR(ps[0], 0.8, kTol);
  EXPECT_NEAR(ps[1], 0.4, kTol);
  EXPECT_NEAR(cost[0], 2.0, kTol);
  EXPECT_NEAR(cost[1], 5.0, kTol);
}

TEST(SecurityPosture, FeedsAdversaryConfig) {
  // Layering a target makes the SA prefer the unprotected one.
  ImpactMatrix im(1, 2);
  im.set(0, 0, 100.0);
  im.set(0, 1, 100.0);
  SecurityPosture p(2, model());
  p.set_layers(0, 3);  // Ps 0.1, cost 11

  core::AdversaryConfig cfg;
  cfg.success_prob = p.success_prob_vector();
  cfg.attack_cost = p.attack_cost_vector();
  cfg.max_targets = 1;
  core::StrategicAdversary sa(cfg);
  auto plan = sa.plan(im);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.targets, (std::vector<int>{1}));
  EXPECT_NEAR(plan.anticipated_return, 100.0 * 0.8 - 2.0, 1e-6);
}

TEST(DefendLayered, InvestsWhereExpectedLossJustifies) {
  ImpactMatrix im(1, 2);
  im.set(0, 0, -1000.0);  // big self-loss
  im.set(0, 1, -1.0);     // negligible
  Ownership own({0, 0}, 1);
  SecurityPosture posture(2, model());
  LayeredDefenseConfig cfg;
  cfg.layer_cost = 10.0;
  cfg.max_layers_per_target = 3;
  cfg.budget = {100.0};
  auto plan = defend_layered(im, own, {1.0, 1.0}, posture, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.added_layers[0], 3);  // stack the max on the big asset
  EXPECT_EQ(plan.added_layers[1], 0);  // 10 > 0.8*1*0.5: not worth a layer
  EXPECT_NEAR(plan.spending[0], 30.0, kTol);
}

TEST(DefendLayered, DiminishingReturnsStopInvestment) {
  // First layer avoids 0.8*0.5*L, second 0.8*0.25*L, ... with L=40 and
  // layer cost 10: layer1 avoids 16, layer2 avoids 8, layer3 avoids 4 —
  // only layers 1 and 2 clear the 10 cost? layer2 avoids 8 < 10: only 1.
  ImpactMatrix im(1, 1);
  im.set(0, 0, -40.0);
  Ownership own({0}, 1);
  SecurityPosture posture(1, model());
  LayeredDefenseConfig cfg;
  cfg.layer_cost = 10.0;
  cfg.budget = {100.0};
  auto plan = defend_layered(im, own, {1.0}, posture, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.added_layers[0], 1);
}

TEST(DefendLayered, BudgetCapsLayers) {
  ImpactMatrix im(1, 1);
  im.set(0, 0, -10000.0);
  Ownership own({0}, 1);
  SecurityPosture posture(1, model());
  LayeredDefenseConfig cfg;
  cfg.layer_cost = 10.0;
  cfg.max_layers_per_target = 5;
  cfg.budget = {25.0};  // only two layers affordable
  auto plan = defend_layered(im, own, {1.0}, posture, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.added_layers[0], 2);
  EXPECT_NEAR(plan.spending[0], 20.0, kTol);
}

TEST(DefendLayered, ExistingLayersReduceMarginalValue) {
  // A target already behind 2 layers has Ps = 0.2; the next layer avoids
  // only 0.2*0.5*L. With L=80 and cost 10: avoids 8 < 10 -> no investment.
  ImpactMatrix im(1, 1);
  im.set(0, 0, -80.0);
  Ownership own({0}, 1);
  SecurityPosture posture(1, model());
  posture.set_layers(0, 2);
  LayeredDefenseConfig cfg;
  cfg.layer_cost = 10.0;
  cfg.budget = {100.0};
  auto plan = defend_layered(im, own, {1.0}, posture, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.added_layers[0], 0);
}

TEST(DefendLayered, OnlyOwnAssetsConsidered) {
  ImpactMatrix im(2, 2);
  im.set(0, 0, -1000.0);
  im.set(1, 1, -1000.0);
  Ownership own({0, 1}, 2);
  SecurityPosture posture(2, model());
  LayeredDefenseConfig cfg;
  cfg.layer_cost = 10.0;
  cfg.budget = {100.0, 0.0};  // actor 1 has no budget
  auto plan = defend_layered(im, own, {1.0, 1.0}, posture, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_GT(plan.added_layers[0], 0);
  EXPECT_EQ(plan.added_layers[1], 0);
  EXPECT_NEAR(plan.spending[1], 0.0, kTol);
}

TEST(DefendLayered, AttackProbabilityGates) {
  ImpactMatrix im(1, 1);
  im.set(0, 0, -1000.0);
  Ownership own({0}, 1);
  SecurityPosture posture(1, model());
  LayeredDefenseConfig cfg;
  cfg.layer_cost = 10.0;
  cfg.budget = {100.0};
  // Pa = 0.01: expected avoided loss of layer 1 = 0.01*0.8*0.5*1000 = 4 < 10.
  auto plan = defend_layered(im, own, {0.01}, posture, cfg);
  ASSERT_TRUE(plan.optimal());
  EXPECT_EQ(plan.total_layers(), 0);
}

}  // namespace
}  // namespace gridsec::cps
