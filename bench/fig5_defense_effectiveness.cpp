// Figure 5 (Experiment 3): defense effectiveness (impact reduction against
// a fixed single-asset attack) vs. the defender's knowledge noise, for
// 2/4/6/12 actors with a fixed system-wide defense budget split evenly.
// Expected shape: effectiveness decreases with noise and with the number of
// actors (shrinking per-actor budgets + misaligned incentives).
#include "bench_common.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig5_defense_effectiveness", args, argc, argv);
  ThreadPool pool(args.threads);
  auto m = sim::build_western_us();

  sim::ExperimentOptions opt;
  opt.trials = args.trials;
  opt.seed = args.seed;
  opt.pool = &pool;

  sim::DefenseExperimentConfig cfg;  // individual defense, paper defaults
  auto points = harness.run_case("experiment_defense", [&] {
    return sim::experiment_defense(m.network, cfg, opt);
  });

  Table t({"actors", "defender_sigma", "effectiveness", "se",
           "relative_effectiveness", "se_rel", "adversary_gain_undefended"});
  for (const auto& p : points) {
    t.add_numeric_row({static_cast<double>(p.actors), p.sigma,
                       p.effectiveness, p.se, p.relative_effectiveness,
                       p.se_relative, p.mean_gain_undefended},
                      2);
  }
  bench::emit(t, args, "Figure 5: defense effectiveness vs defender noise");
  harness.emit_report();
  return 0;
}
