// Extension experiment: repeated rounds with defender learning.
//
// A badly-informed defender (heavy knowledge noise) faces a well-informed
// stationary adversary over many rounds, blending observed attack
// frequencies into its Pa beliefs. Reported: per-round defender losses with
// learning on vs off (paired ownership/noise draws) — the value of
// augmenting the paper's model-based Pa with operational observations.
#include "bench_common.hpp"
#include "gridsec/core/repeated_game.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("ext_learning", args, argc, argv);
  auto m = sim::build_western_us();
  const int n_actors = 6;
  const int rounds = 8;

  const auto run = [&](double learning_rate, std::uint64_t seed) {
    std::vector<double> losses(static_cast<std::size_t>(rounds), 0.0);
    const int trials = std::max(1, args.trials / 2);
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(seed);
      Rng trial_rng = rng.derive_stream(static_cast<std::uint64_t>(trial));
      auto own =
          cps::Ownership::random(m.network.num_edges(), n_actors, trial_rng);
      core::RepeatedGameConfig cfg;
      cfg.rounds = rounds;
      cfg.learning_rate = learning_rate;
      cfg.game.adversary.max_targets = 2;
      cfg.game.collaborative = true;
      cfg.game.defender.defense_cost.assign(
          static_cast<std::size_t>(m.network.num_edges()), 2000.0);
      cfg.game.defender.budget.assign(static_cast<std::size_t>(n_actors),
                                      12.0 * 2000.0 / n_actors);
      cfg.game.defender_noise.sigma = 0.5;  // badly informed
      cfg.game.speculated_adversary_noise.sigma = 0.2;
      cfg.game.pa_samples = 3;
      auto res = core::play_repeated_game(m.network, own, cfg, trial_rng);
      if (!res.is_ok()) continue;
      for (int r = 0; r < rounds; ++r) {
        losses[static_cast<std::size_t>(r)] +=
            res->rounds[static_cast<std::size_t>(r)].defender_losses /
            trials;
      }
    }
    return losses;
  };

  auto learning = harness.run_case("repeated_game_learning",
                                   [&] { return run(0.5, args.seed); });
  auto frozen = harness.run_case("repeated_game_frozen",
                                 [&] { return run(0.0, args.seed); });

  Table t({"round", "losses_no_learning", "losses_learning",
           "learning_benefit"});
  for (int r = 0; r < rounds; ++r) {
    const auto rs = static_cast<std::size_t>(r);
    t.add_numeric_row({static_cast<double>(r + 1), frozen[rs], learning[rs],
                       learning[rs] - frozen[rs]},
                      0);
  }
  bench::emit(t, args, "Extension: defender learning across repeated attacks");
  harness.emit_report();
  return 0;
}
