// Ablation benches for the design choices called out in DESIGN.md:
//  * LMP (dual-based) vs perturbation (probe-based) profit allocation;
//  * SA solvers: exact MILP vs exhaustive enumeration vs greedy;
//  * impact-matrix kernel cost as actor count varies.
// Runs on the harness-v2 report layer (--trials = measured reps per case).
#include "bench_common.hpp"
#include "gridsec/core/adversary.hpp"
#include "gridsec/core/partition.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/lp/milp.hpp"
#include "gridsec/sim/western_us.hpp"

namespace {

using namespace gridsec;

// SA solver comparison on a pruned 6-actor instance. Enumeration is capped
// at 3 targets to stay tractable; MILP and greedy use the same cap so the
// comparison is apples-to-apples.
struct SaFixture {
  cps::ImpactMatrix im{1, 1};
  SaFixture() {
    auto m = sim::build_western_us();
    Rng rng(3);
    auto own = cps::Ownership::random(m.network.num_edges(), 6, rng);
    auto res = cps::compute_impact_matrix(m.network, own);
    im = res->matrix;
  }
};

SaFixture& sa_fixture() {
  static SaFixture f;
  return f;
}

core::AdversaryConfig capped_config() {
  core::AdversaryConfig cfg;
  cfg.max_targets = 3;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("micro_ablation", args, argc, argv);
  const int reps = args.trials;

  Table t({"case", "median_ms", "mean_ms", "stddev_ms"});
  const auto record = [&](const std::string& name) {
    const auto& wall = harness.report().cases.back().wall;
    t.add_row({name, format_double(wall.median_seconds * 1e3, 3),
               format_double(wall.mean_seconds * 1e3, 3),
               format_double(wall.stddev_seconds * 1e3, 3)});
  };

  {
    auto m = sim::build_western_us();
    for (const auto kind :
         {flow::AllocatorKind::kLmp, flow::AllocatorKind::kPerturbation}) {
      flow::AllocationOptions opt;
      opt.kind = kind;
      const std::string name = kind == flow::AllocatorKind::kLmp
                                   ? "allocator_lmp"
                                   : "allocator_perturbation";
      harness.run_case(
          name,
          [&] { return flow::allocate_profits(m.network, {}, 0, opt).welfare; },
          reps, 1);
      record(name);
    }

    for (const int actors : {2, 6, 12}) {
      Rng rng(1);
      auto own = cps::Ownership::random(m.network.num_edges(), actors, rng);
      const std::string name = "impact_matrix/" + std::to_string(actors);
      harness.run_case(
          name,
          [&] { return cps::compute_impact_matrix(m.network, own)->base_welfare; },
          reps, 1);
      record(name);
    }

    // Exactness-preserving skip of zero-flow targets in the impact kernel.
    Rng rng(1);
    auto own = cps::Ownership::random(m.network.num_edges(), 6, rng);
    for (const bool skip : {false, true}) {
      cps::ImpactOptions opt;
      opt.skip_unused_targets = skip;
      const std::string name =
          skip ? "impact_skip_unused/on" : "impact_skip_unused/off";
      harness.run_case(
          name,
          [&] {
            return cps::compute_impact_matrix(m.network, own, opt)
                ->base_welfare;
          },
          reps, 1);
      record(name);
    }
  }

  {
    core::StrategicAdversary sa(capped_config());
    harness.run_case(
        "sa_milp", [&] { return sa.plan(sa_fixture().im).anticipated_return; },
        reps, 1);
    record("sa_milp");
    harness.run_case(
        "sa_enumerate",
        [&] { return sa.plan_enumerate(sa_fixture().im).anticipated_return; },
        reps, 1);
    record("sa_enumerate");
    harness.run_case(
        "sa_greedy",
        [&] { return sa.plan_greedy(sa_fixture().im).anticipated_return; },
        reps, 1);
    record("sa_greedy");
    harness.run_case(
        "sa_milp_formulation",
        [&] { return sa.plan_milp(sa_fixture().im).anticipated_return; },
        reps, 1);
    record("sa_milp_formulation");
    harness.run_case(
        "sa_partitioned",
        [&] {
          return core::plan_partitioned(sa_fixture().im, capped_config())
              .anticipated_return;
        },
        reps, 1);
    record("sa_partitioned");

    // Value of strategic targeting: strategic/random return ratio rides
    // along in the table next to the random baseline's runtime.
    const double strategic = sa.plan(sa_fixture().im).anticipated_return;
    Rng rng(5);
    double random_sum = 0.0;
    int samples = 0;
    harness.run_case(
        "sa_random_baseline",
        [&] {
          const auto plan = core::random_attack_plan(
              sa_fixture().im, capped_config(), rng);
          random_sum += plan.anticipated_return;
          ++samples;
          return plan.anticipated_return;
        },
        reps, 0);
    record("sa_random_baseline");
    if (samples > 0 && random_sum != 0.0) {
      t.add_row({"strategic_over_random",
                 format_double(strategic / (random_sum / samples), 3), "",
                 ""});
    }
  }

  // MILP diving heuristic on/off (knapsack formulation as workload).
  for (const bool diving : {false, true}) {
    lp::BranchAndBoundOptions opts;
    opts.diving_heuristic = diving;
    Rng rng(11);
    lp::Problem p(lp::Objective::kMaximize);
    lp::LinearExpr weights;
    for (int i = 0; i < 30; ++i) {
      weights.add(p.add_binary("b", rng.uniform(1.0, 10.0)),
                  rng.uniform(0.5, 5.0));
    }
    p.add_constraint("w", std::move(weights), lp::Sense::kLessEqual, 25.0);
    const std::string name =
        diving ? "milp_diving/on" : "milp_diving/off";
    harness.run_case(
        name,
        [&] {
          lp::BranchAndBoundSolver solver(opts);
          return solver.solve(p).objective;
        },
        reps, 1);
    record(name);
  }

  bench::emit(t, args, "Ablation micro-benchmarks (harness v2)");
  harness.emit_report();
  return 0;
}
