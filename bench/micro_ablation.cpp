// Ablation benches for the design choices called out in DESIGN.md:
//  * LMP (dual-based) vs perturbation (probe-based) profit allocation;
//  * SA solvers: exact MILP vs exhaustive enumeration vs greedy;
//  * impact-matrix kernel cost as actor count varies.
#include <benchmark/benchmark.h>

#include "gridsec/core/adversary.hpp"
#include "gridsec/core/partition.hpp"
#include "gridsec/cps/impact.hpp"
#include "gridsec/sim/western_us.hpp"

namespace {

using namespace gridsec;

void BM_AllocatorLmp(benchmark::State& state) {
  auto m = sim::build_western_us();
  flow::AllocationOptions opt;
  opt.kind = flow::AllocatorKind::kLmp;
  for (auto _ : state) {
    auto res = flow::allocate_profits(m.network, {}, 0, opt);
    benchmark::DoNotOptimize(res.welfare);
  }
}
BENCHMARK(BM_AllocatorLmp);

void BM_AllocatorPerturbation(benchmark::State& state) {
  auto m = sim::build_western_us();
  flow::AllocationOptions opt;
  opt.kind = flow::AllocatorKind::kPerturbation;
  for (auto _ : state) {
    auto res = flow::allocate_profits(m.network, {}, 0, opt);
    benchmark::DoNotOptimize(res.welfare);
  }
}
BENCHMARK(BM_AllocatorPerturbation);

void BM_ImpactMatrix(benchmark::State& state) {
  auto m = sim::build_western_us();
  Rng rng(1);
  auto own = cps::Ownership::random(m.network.num_edges(),
                                    static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    auto im = cps::compute_impact_matrix(m.network, own);
    benchmark::DoNotOptimize(im->base_welfare);
  }
}
BENCHMARK(BM_ImpactMatrix)->Arg(2)->Arg(6)->Arg(12);

// SA solver comparison on a pruned 6-actor instance. Enumeration is capped
// at 3 targets to stay tractable; MILP and greedy use the same cap so the
// comparison is apples-to-apples.
struct SaFixture {
  cps::ImpactMatrix im{1, 1};
  SaFixture() {
    auto m = sim::build_western_us();
    Rng rng(3);
    auto own = cps::Ownership::random(m.network.num_edges(), 6, rng);
    auto res = cps::compute_impact_matrix(m.network, own);
    im = res->matrix;
  }
};

SaFixture& sa_fixture() {
  static SaFixture f;
  return f;
}

core::AdversaryConfig capped_config() {
  core::AdversaryConfig cfg;
  cfg.max_targets = 3;
  return cfg;
}

void BM_SaMilp(benchmark::State& state) {
  core::StrategicAdversary sa(capped_config());
  for (auto _ : state) {
    auto plan = sa.plan(sa_fixture().im);
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
}
BENCHMARK(BM_SaMilp);

void BM_SaEnumerate(benchmark::State& state) {
  core::StrategicAdversary sa(capped_config());
  for (auto _ : state) {
    auto plan = sa.plan_enumerate(sa_fixture().im);
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
}
BENCHMARK(BM_SaEnumerate);

void BM_SaGreedy(benchmark::State& state) {
  core::StrategicAdversary sa(capped_config());
  for (auto _ : state) {
    auto plan = sa.plan_greedy(sa_fixture().im);
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
}
BENCHMARK(BM_SaGreedy);

void BM_SaMilpFormulation(benchmark::State& state) {
  core::StrategicAdversary sa(capped_config());
  for (auto _ : state) {
    auto plan = sa.plan_milp(sa_fixture().im);
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
}
BENCHMARK(BM_SaMilpFormulation);

void BM_SaPartitioned(benchmark::State& state) {
  for (auto _ : state) {
    auto plan = core::plan_partitioned(sa_fixture().im, capped_config());
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
}
BENCHMARK(BM_SaPartitioned);

// Value of strategic targeting: report the strategic/random return ratio
// as a counter alongside the random baseline's runtime.
void BM_SaRandomBaseline(benchmark::State& state) {
  core::StrategicAdversary sa(capped_config());
  const double strategic = sa.plan(sa_fixture().im).anticipated_return;
  Rng rng(5);
  double random_mean = 0.0;
  int samples = 0;
  for (auto _ : state) {
    auto plan = core::random_attack_plan(sa_fixture().im, capped_config(),
                                         rng);
    random_mean += plan.anticipated_return;
    ++samples;
    benchmark::DoNotOptimize(plan.anticipated_return);
  }
  if (samples > 0 && random_mean != 0.0) {
    state.counters["strategic_over_random"] =
        strategic / (random_mean / samples);
  }
}
BENCHMARK(BM_SaRandomBaseline);

// Exactness-preserving skip of zero-flow targets in the impact kernel.
void BM_ImpactSkipUnused(benchmark::State& state) {
  auto m = sim::build_western_us();
  Rng rng(1);
  auto own = cps::Ownership::random(m.network.num_edges(), 6, rng);
  cps::ImpactOptions opt;
  opt.skip_unused_targets = state.range(0) != 0;
  for (auto _ : state) {
    auto im = cps::compute_impact_matrix(m.network, own, opt);
    benchmark::DoNotOptimize(im->base_welfare);
  }
  state.SetLabel(opt.skip_unused_targets ? "skip_on" : "skip_off");
}
BENCHMARK(BM_ImpactSkipUnused)->Arg(0)->Arg(1);

// MILP diving heuristic on/off (adversary MILP formulation as workload).
void BM_MilpDiving(benchmark::State& state) {
  lp::BranchAndBoundOptions opts;
  opts.diving_heuristic = state.range(0) != 0;
  Rng rng(11);
  lp::Problem p(lp::Objective::kMaximize);
  lp::LinearExpr weights;
  for (int i = 0; i < 30; ++i) {
    weights.add(p.add_binary("b", rng.uniform(1.0, 10.0)),
                rng.uniform(0.5, 5.0));
  }
  p.add_constraint("w", std::move(weights), lp::Sense::kLessEqual, 25.0);
  for (auto _ : state) {
    lp::BranchAndBoundSolver solver(opts);
    auto sol = solver.solve(p);
    benchmark::DoNotOptimize(sol.objective);
  }
  state.SetLabel(opts.diving_heuristic ? "diving_on" : "diving_off");
}
BENCHMARK(BM_MilpDiving)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
