// Figure 6 (Experiment 3): the impact of defensive collaboration in a
// 4-actor system, across defender noise. Expected shape: collaborative
// cost-sharing beats individual defense, with the advantage eroding as
// noise grows and defenders lose track of which assets matter.
#include "bench_common.hpp"
#include "gridsec/sim/experiments.hpp"
#include "gridsec/sim/western_us.hpp"

int main(int argc, char** argv) {
  using namespace gridsec;
  const auto args = bench::parse_args(argc, argv);
  bench::Harness harness("fig6_collaboration", args, argc, argv);
  ThreadPool pool(args.threads);
  auto m = sim::build_western_us();

  sim::ExperimentOptions opt;
  opt.trials = args.trials;
  opt.seed = args.seed;
  opt.pool = &pool;

  sim::DefenseExperimentConfig cfg;
  cfg.actor_counts = {4};  // the paper's Fig 6 slice

  cfg.collaborative = false;
  auto individual = harness.run_case("experiment_defense_individual", [&] {
    return sim::experiment_defense(m.network, cfg, opt);
  });
  cfg.collaborative = true;
  auto collaborative =
      harness.run_case("experiment_defense_collaborative", [&] {
        return sim::experiment_defense(m.network, cfg, opt);
      });

  Table t({"defender_sigma", "individual", "collaborative", "improvement",
           "individual_rel", "collaborative_rel", "se_individual",
           "se_collaborative"});
  for (std::size_t i = 0; i < individual.size(); ++i) {
    t.add_numeric_row({individual[i].sigma, individual[i].effectiveness,
                       collaborative[i].effectiveness,
                       collaborative[i].effectiveness -
                           individual[i].effectiveness,
                       individual[i].relative_effectiveness,
                       collaborative[i].relative_effectiveness,
                       individual[i].se, collaborative[i].se},
                      2);
  }
  bench::emit(t, args,
              "Figure 6: collaboration vs individual defense (4 actors)");
  harness.emit_report();
  return 0;
}
